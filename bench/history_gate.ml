(* Shared tail for the bench executables: extract the headline numbers from
   the BENCH_*.json just written, diff them against results/history.jsonl
   (exact metrics only — wall-clock numbers would flake shared CI), append
   the new entry, and fail the gate on a regression. The full-width check,
   including wall-clock metrics, lives in `xpiler bench-diff`. *)

module BH = Xpiler_obs.Bench_history

let record_and_gate ~bench ~file =
  match BH.of_bench_file ~bench file with
  | Error m ->
    Printf.eprintf "history: %s\n%!" m;
    exit 1
  | Ok entry ->
    let entry = { entry with BH.time = Some (Unix.gettimeofday ()) } in
    let regs =
      match BH.record entry with
      | Ok regs -> regs
      | Error m ->
        (* a corrupt history means the gate cannot judge anything: fail loud
           rather than silently passing with no baseline *)
        Printf.eprintf "history: corrupt %s: %s\n%!" BH.default_path m;
        exit 1
    in
    Printf.printf "history: appended %s headline metrics to %s\n%!" bench BH.default_path;
    if regs <> [] then begin
      List.iter
        (fun (v : BH.verdict) ->
          Printf.eprintf "HISTORY REGRESSION %s/%s: %s\n%!" bench v.BH.metric v.BH.detail)
        regs;
      exit 1
    end
