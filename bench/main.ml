(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index).

   Usage:
     dune exec bench/main.exe                    # all experiments
     dune exec bench/main.exe table6 fig7        # a subset
     dune exec bench/main.exe -- -j 4 table6     # 4 worker domains
   XPILER_BENCH_SHAPES=8 runs the full 168-case suite (default 2 shapes/op).
   -j/--jobs N (or XPILER_JOBS=N) sizes the domain pool for the per-case
   loops; results, CSVs and trace journals are identical for any job count —
   only wall-clock changes. *)

let experiments =
  [ ("table2", Tables.table2);
    ("table3", Tables.table3);
    ("table5", Tables.table5);
    ("table6", Tables.table6);
    ("table7", Tables.table7);
    ("table8", Tables.table8);
    ("fig7", Tables.fig7);
    ("fig8", Tables.fig8);
    ("space", Tables.space);
    ("mcts_dse", Tables.mcts_dse);
    ("ablation", Ablation.run);
    ("micro", Micro.run) ]

(* Every experiment runs under an ambient tracer: each [Xpiler.transcompile]
   inside it (trace level Off in its config) emits into the experiment's
   shared timeline, and the whole event stream lands in
   results/trace_<experiment>.jsonl — replay with `xpiler trace`. Timestamps
   are virtual (Vclock) seconds, so the journal is deterministic even though
   the wall-clock timings printed alongside are not. *)
let traced name f =
  let tracer = Xpiler_obs.Tracer.create ~level:Xpiler_obs.Tracer.Detail () in
  Xpiler_obs.Trace.install tracer;
  Fun.protect ~finally:Xpiler_obs.Trace.uninstall f;
  if not (Sys.file_exists "results") then Sys.mkdir "results" 0o755;
  let path = Filename.concat "results" (Printf.sprintf "trace_%s.jsonl" name) in
  let events = Xpiler_obs.Tracer.events tracer in
  Xpiler_obs.Journal.write_file path events;
  Printf.printf "[trace journal: %s, %d events]\n%!" path (List.length events)

let () =
  let args = match Array.to_list Sys.argv with [] -> [] | _ :: rest -> rest in
  let rec parse names = function
    | [] -> List.rev names
    | ("-j" | "--jobs") :: v :: rest -> (
      match int_of_string_opt v with
      | Some j when j > 0 ->
        Xpiler_util.Pool.set_jobs j;
        parse names rest
      | _ ->
        Printf.eprintf "bad --jobs value %s\n" v;
        exit 2)
    | ("-j" | "--jobs") :: [] ->
      Printf.eprintf "--jobs needs a value\n";
      exit 2
    | a :: rest -> parse (a :: names) rest
  in
  let requested =
    match parse [] args with [] -> List.map fst experiments | names -> names
  in
  Printf.printf "QiMeng-Xpiler benchmark harness (%d cases per direction; set XPILER_BENCH_SHAPES=8 for the full suite)\n%!"
    (List.length (Tables.cases ()));
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        let t = Unix.gettimeofday () in
        traced name f;
        Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t)
      | None ->
        Printf.printf "unknown experiment %s (available: %s)\n%!" name
          (String.concat ", " (List.map fst experiments)))
    requested;
  Printf.printf "\nTotal: %.1fs\n%!" (Unix.gettimeofday () -. t0)
