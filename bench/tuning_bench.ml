(* Auto-tuner search-efficiency benchmark: the pre-PR brute-force search
   (no pruning, no composed candidates, no transposition sharing, no warm
   start) vs the overhauled one, on the same seeds. Writes
   BENCH_tuning.json (schema xpiler-tuning-bench/v2) into the current
   directory.

   Usage:
     dune exec bench/tuning_bench.exe            # full measurement
     dune exec bench/tuning_bench.exe -- --smoke # seconds-long sanity run

   The smoke run is attached to `dune runtest` via the @bench-smoke alias;
   its correctness gates always run: bound-based pruning must be lossless
   (pruned and exhaustive intra tuning find the same best throughput) and
   the overhauled search's best reward must never be worse than the
   baseline's on any benchmarked kernel.

   The headline metric is *reward evaluations* — actual Intra.tune runs,
   metered by Transposition.evals — needed to reach the baseline's final
   best reward. Search is deterministic, so the curves are reproducible.

   The store_warm_start section measures the durable knowledge store
   (Xpiler_store): a first "process" tunes a kernel with the store
   attached, the in-memory tables are then cleared (process death), and a
   second cold process re-tunes the same kernel either from the persisted
   store or from nothing. The warm arm must reach the cold arm's final
   best reward in strictly fewer fresh evaluations — that gate always
   runs, smoke included. *)

open Xpiler_machine
open Xpiler_ops
open Xpiler_tuning
module Listx = Xpiler_util.Listx

let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv
let now = Unix.gettimeofday

(* matmul (the paper's headline tuning target), convolution and a reduction *)
let bench_ops = [ "gemm"; "conv2d_nhwc"; "softmax" ]
let budgets = if smoke then [ 2; 4; 8 ] else [ 4; 8; 16; 32; 64 ]
let platform = Platform.bang

let base_config budget =
  { Mcts.default_config with
    simulations = budget;
    max_depth = 6;
    intra_candidates = 12;
    root_parallel = 4
  }

type point = { sims : int; evals : int; best : float; wall : float }

let run_search ~mode_config ~share ~db ~buffer_sizes kernel budget =
  Transposition.clear ();
  let t0 = now () in
  let r =
    Mcts.search ~config:(mode_config budget) ~buffer_sizes ~share ?db ~platform kernel
  in
  { sims = budget; evals = Transposition.evals (); best = r.Mcts.best_reward;
    wall = now () -. t0 }

(* first curve point whose reward reaches [target]; None when the curve
   never gets there *)
let evals_to curve target =
  List.find_opt (fun p -> p.best >= target) curve |> Option.map (fun p -> p.evals)

type row = {
  op_name : string;
  baseline : point list;
  tuned : point list;
  target : float;
  base_evals : int;
  tuned_evals : int option;
  prune_stats : Intra.stats;
  prune_lossless : bool;
  tuned_best : float;
}

let bench_op name =
  let op = Registry.find_exn name in
  let shapes = op.Opdef.shapes in
  let shape_a = List.hd shapes in
  (* warm-start priming uses a *different* shape of the same operator when
     the registry has one: the schedule database keys on structure, so the
     recorded specs must transfer across shapes to be useful *)
  let shape_b = match shapes with _ :: s :: _ -> s | _ -> shape_a in
  let kernel = op.Opdef.serial shape_a in
  let kernel_b = op.Opdef.serial shape_b in
  let buffer_sizes =
    List.map (fun (b : Opdef.buffer_spec) -> (b.buf_name, b.size shape_a)) op.Opdef.buffers
  in
  (* intra-level pruning: lossless by construction, counted for the report *)
  let exhaustive, _ =
    Intra.tune_with_stats ~prune:false ~compose:true ~max_candidates:64 ~platform kernel
  in
  let pruned_v, prune_stats =
    Intra.tune_with_stats ~prune:true ~compose:true ~max_candidates:64 ~platform kernel
  in
  let prune_lossless = pruned_v.Intra.throughput = exhaustive.Intra.throughput in
  if not prune_lossless then begin
    Printf.eprintf "pruning changed the intra result on %s: %.6g vs %.6g\n" name
      pruned_v.Intra.throughput exhaustive.Intra.throughput;
    exit 1
  end;
  (* warm both checker/cost-model memos so baseline and tuned wall-clocks
     see comparable cache state *)
  ignore
    (Mcts.search
       ~config:{ (base_config (List.hd (List.rev budgets))) with prune = false; compose = false }
       ~buffer_sizes ~share:false ~platform kernel);
  (* pre-PR baseline: exhaustive intra, private reward caches, cold start *)
  let baseline_config budget = { (base_config budget) with Mcts.prune = false; compose = false } in
  let baseline =
    List.map
      (fun b -> run_search ~mode_config:baseline_config ~share:false ~db:None ~buffer_sizes kernel b)
      budgets
  in
  let target = (List.hd (List.rev baseline)).best in
  (* overhauled search: prune + compose + shared table + warm start. The
     priming search stands for the *previous* translation of a similar
     kernel (same operator, different shape); its cost is that translation's,
     not this one's, so each measured budget starts from a freshly primed
     database rather than compounding its own results. *)
  let prime =
    let db = Schedule_db.create () in
    ignore
      (Mcts.search ~config:(base_config (List.hd (List.rev budgets))) ~buffer_sizes
         ~share:true ~db ~platform kernel_b);
    Schedule_db.lookup db platform.Platform.id kernel
  in
  let tuned =
    List.map
      (fun b ->
        let db = Schedule_db.create () in
        (match prime with
        | Some specs ->
          Schedule_db.record db platform.Platform.id kernel ~specs ~reward:1.0
        | None -> ());
        run_search ~mode_config:base_config ~share:true ~db:(Some db) ~buffer_sizes kernel b)
      budgets
  in
  (* never-worse gate over the whole sweep: every tuned point is an
     independent run at a budget no larger than the baseline's largest *)
  let tuned_best = List.fold_left (fun acc p -> Float.max acc p.best) 0.0 tuned in
  if tuned_best < target then
    Printf.eprintf "FAIL: search overhaul lost reward on %s: %.6g < %.6g\n" name
      tuned_best target;
  let base_evals =
    match evals_to baseline target with Some e -> e | None -> assert false
  in
  let tuned_evals = evals_to tuned target in
  Printf.printf
    "%-12s target %.4g | baseline %4d evals | tuned %s evals | intra pruned %d/%d\n%!"
    name target base_evals
    (match tuned_evals with Some e -> Printf.sprintf "%4d" e | None -> "  na")
    prune_stats.Intra.pruned
    (prune_stats.Intra.evaluated + prune_stats.Intra.pruned);
  { op_name = name; baseline; tuned; target; base_evals; tuned_evals; prune_stats;
    prune_lossless; tuned_best }

(* ---- durable-store warm start -------------------------------------------

   Cold-process experiment: "process 1" tunes the kernel with the durable
   store attached (every learned transposition entry and schedule-DB record
   streams to the write-ahead log), then every in-memory table is cleared —
   the moral equivalent of the process dying. "Process 2" re-tunes the same
   kernel per budget, either after replaying the persisted store (warm) or
   from empty tables (cold). Fresh reward evaluations are the meter; replay
   is silent, so restored entries never inflate it. *)

module Store = Xpiler_store.Store

type warm_row = {
  w_op : string;
  w_target : float;
  cold : point list;
  warm : point list;
  cold_evals : int;
  warm_evals : int option;
  store_records : int;
}

let rm_rf_flat dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let bench_store_warm name =
  let op = Registry.find_exn name in
  let shape = List.hd op.Opdef.shapes in
  let kernel = op.Opdef.serial shape in
  let buffer_sizes =
    List.map (fun (b : Opdef.buffer_spec) -> (b.buf_name, b.size shape)) op.Opdef.buffers
  in
  let top = List.hd (List.rev budgets) in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xpiler-tuning-store-%d-%s" (Unix.getpid ()) name)
  in
  rm_rf_flat dir;
  let store =
    match Store.open_store ~dir () with Ok s -> s | Error m -> failwith ("store: " ^ m)
  in
  (* process 1: tune at the top budget with the store write-through attached *)
  let db1 = Schedule_db.create () in
  Store.attach ~db:db1 store;
  Transposition.clear ();
  ignore (Mcts.search ~config:(base_config top) ~buffer_sizes ~share:true ~db:db1 ~platform kernel);
  Store.detach ();
  let info = Store.scan store in
  let store_records =
    Store.total info.Store.snapshot_records + Store.total info.Store.wal_records
  in
  (* process death: no in-memory state survives into either measured arm *)
  let cold =
    List.map
      (fun b ->
        let db = Schedule_db.create () in
        run_search ~mode_config:base_config ~share:true ~db:(Some db) ~buffer_sizes kernel b)
      budgets
  in
  let target = (List.hd (List.rev cold)).best in
  let warm =
    List.map
      (fun b ->
        Transposition.clear ();
        let db = Schedule_db.create () in
        ignore (Store.load ~db store);
        let t0 = now () in
        let r = Mcts.search ~config:(base_config b) ~buffer_sizes ~share:true ~db ~platform kernel in
        { sims = b; evals = Transposition.evals (); best = r.Mcts.best_reward;
          wall = now () -. t0 })
      budgets
  in
  rm_rf_flat dir;
  let cold_evals =
    match evals_to cold target with Some e -> e | None -> assert false
  in
  let warm_evals = evals_to warm target in
  (match warm_evals with
  | Some w when w < cold_evals -> ()
  | Some w ->
    Printf.eprintf "FAIL: warm start from the store did not save evals on %s: %d >= %d\n"
      name w cold_evals
  | None ->
    Printf.eprintf "FAIL: warm start from the store never reached %.6g on %s\n" target name);
  Printf.printf
    "%-12s store warm start: %4d cold evals | %s warm evals | %d persisted record(s)\n%!"
    name cold_evals
    (match warm_evals with Some e -> Printf.sprintf "%4d" e | None -> "  na")
    store_records;
  { w_op = name; w_target = target; cold; warm; cold_evals; warm_evals; store_records }

let warm_row_ok r = match r.warm_evals with Some w -> w < r.cold_evals | None -> false

let json_curve oc points =
  List.iteri
    (fun i p ->
      Printf.fprintf oc
        "        {\"simulations\": %d, \"evals\": %d, \"best_reward\": %.6e, \"wall_sec\": %.4f}%s\n"
        p.sims p.evals p.best p.wall
        (if i = List.length points - 1 then "" else ","))
    points

let () =
  Printf.printf "auto-tuner search-efficiency benchmark%s\n%!" (if smoke then " (smoke)" else "");
  let rows = List.map bench_op bench_ops in
  let warm_rows = List.map bench_store_warm bench_ops in
  let oc = open_out "BENCH_tuning.json" in
  Printf.fprintf oc "{\n  \"schema\": \"xpiler-tuning-bench/v2\",\n  \"smoke\": %b,\n" smoke;
  Printf.fprintf oc "  \"budgets\": [%s],\n"
    (String.concat ", " (List.map string_of_int budgets));
  Printf.fprintf oc "  \"kernels\": [\n";
  List.iteri
    (fun i r ->
      let reduction =
        match r.tuned_evals with
        | Some e -> 1.0 -. (float_of_int e /. float_of_int r.base_evals)
        | None -> 0.0
      in
      Printf.fprintf oc "    {\"op\": %S,\n" r.op_name;
      Printf.fprintf oc "      \"target_reward\": %.6e,\n" r.target;
      Printf.fprintf oc "      \"baseline\": [\n";
      json_curve oc r.baseline;
      Printf.fprintf oc "      ],\n      \"tuned\": [\n";
      json_curve oc r.tuned;
      Printf.fprintf oc "      ],\n";
      Printf.fprintf oc "      \"baseline_evals_to_target\": %d,\n" r.base_evals;
      (match r.tuned_evals with
      | Some e -> Printf.fprintf oc "      \"tuned_evals_to_target\": %d,\n" e
      | None -> Printf.fprintf oc "      \"tuned_evals_to_target\": null,\n");
      Printf.fprintf oc "      \"eval_reduction\": %.3f,\n" reduction;
      Printf.fprintf oc "      \"best_reward_ratio\": %.4f,\n" (r.tuned_best /. r.target);
      Printf.fprintf oc
        "      \"intra_pruning\": {\"evaluated\": %d, \"pruned\": %d, \"lossless\": %b}}%s\n"
        r.prune_stats.Intra.evaluated r.prune_stats.Intra.pruned r.prune_lossless
        (if i = List.length rows - 1 then "" else ",")
      )
    rows;
  Printf.fprintf oc "  ],\n";
  let warm_reduction r =
    match r.warm_evals with
    | Some w when r.cold_evals > 0 -> 1.0 -. (float_of_int w /. float_of_int r.cold_evals)
    | _ -> 0.0
  in
  Printf.fprintf oc "  \"store_warm_start\": {\n    \"kernels\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc "      {\"op\": %S,\n" r.w_op;
      Printf.fprintf oc "        \"target_reward\": %.6e,\n" r.w_target;
      Printf.fprintf oc "        \"store_records\": %d,\n" r.store_records;
      Printf.fprintf oc "        \"cold\": [\n";
      json_curve oc r.cold;
      Printf.fprintf oc "        ],\n        \"warm\": [\n";
      json_curve oc r.warm;
      Printf.fprintf oc "        ],\n";
      Printf.fprintf oc "        \"cold_evals_to_target\": %d,\n" r.cold_evals;
      (match r.warm_evals with
      | Some e -> Printf.fprintf oc "        \"warm_evals_to_target\": %d,\n" e
      | None -> Printf.fprintf oc "        \"warm_evals_to_target\": null,\n");
      Printf.fprintf oc "        \"warm_reduction\": %.3f}%s\n" (warm_reduction r)
        (if i = List.length warm_rows - 1 then "" else ","))
    warm_rows;
  Printf.fprintf oc "    ],\n    \"warm_reduction_mean\": %.3f\n  }\n"
    (List.fold_left (fun a r -> a +. warm_reduction r) 0.0 warm_rows
    /. float_of_int (List.length warm_rows));
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote BENCH_tuning.json\n%!";
  if
    List.exists (fun r -> r.tuned_best < r.target || not r.prune_lossless) rows
    || not (List.for_all warm_row_ok warm_rows)
  then exit 1;
  History_gate.record_and_gate ~bench:"tuning" ~file:"BENCH_tuning.json"
