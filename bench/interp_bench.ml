(* Evaluation-engine benchmark: tree-walking reference interpreter vs the
   closure-compiled engine vs the dynlinked native backend, plus
   parallel-tuning scaling. Writes BENCH_eval.json (schema
   xpiler-eval-bench/v2) into the current directory.

   Usage:
     dune exec bench/interp_bench.exe            # full measurement
     dune exec bench/interp_bench.exe -- --smoke # seconds-long sanity run

   The smoke run is attached to `dune runtest` via the @bench-smoke alias:
   it cross-checks that both engines produce identical outputs before
   timing them. *)

open Xpiler_machine
open Xpiler_ops
module Rng = Xpiler_util.Rng
module Pool = Xpiler_util.Pool
module Mcts = Xpiler_tuning.Mcts

let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv
let now = Unix.gettimeofday

(* ops exercising the scalar loop nest (gemm), index-heavy addressing
   (conv2d), transcendentals (softmax), reductions (layernorm), the fused
   LLM tail (self_attention) and a memory-bound elementwise op (relu) *)
let bench_ops = [ "gemm"; "conv2d_nhwc"; "softmax"; "layernorm"; "self_attention"; "relu" ]

type row = {
  op_name : string;
  elems_per_run : int;
  tree_eps : float;  (** tree-walker elements/second *)
  compiled_eps : float;
  speedup : float;
  native_eps : float option;  (** [None] when the native toolchain is absent *)
  native_speedup : float option;  (** native over compiled, same runs *)
}

let elems (s : Interp.stats) = s.stores + s.intrinsic_elems + s.memcpy_elems

let clone_args args =
  List.map
    (fun (n, a) -> (n, match a with Interp.Buf t -> Interp.Buf (Tensor.copy t) | s -> s))
    args

let out_tensors op args =
  List.filter_map
    (fun (b : Opdef.buffer_spec) ->
      match List.assoc_opt b.buf_name args with
      | Some (Interp.Buf t) -> Some (b.buf_name, t)
      | _ -> None)
    (Opdef.outputs op)

(* time [run] for at least [min_time] seconds (after one untimed warmup that
   also populates the compile cache) and return elements/second *)
let rate ~min_time ~elems_per_run run =
  ignore (run ());
  let t0 = now () in
  let iters = ref 0 in
  while now () -. t0 < min_time do
    ignore (run ());
    incr iters
  done;
  let dt = now () -. t0 in
  float_of_int (elems_per_run * !iters) /. dt

let bench_op name =
  let op = Registry.find_exn name in
  let shape = List.hd op.Opdef.shapes in
  let kernel = op.Opdef.serial shape in
  let args = Unit_test.make_args (Rng.create 20250706) op shape in
  (* correctness gate: both engines must agree bit-for-bit on the outputs *)
  let a_tree = clone_args args in
  let a_comp = clone_args args in
  let s_tree = Interp.run_tree kernel a_tree in
  let s_comp = Interp.run kernel a_comp in
  List.iter
    (fun ((n, t), (n', t')) ->
      assert (n = n');
      if Tensor.max_abs_diff t t' <> 0.0 then begin
        Printf.eprintf "engine divergence on %s output %s\n" name n;
        exit 1
      end)
    (List.combine (out_tensors op a_tree) (out_tensors op a_comp));
  if
    s_tree.Interp.steps <> s_comp.Interp.steps
    || s_tree.Interp.stores <> s_comp.Interp.stores
    || s_tree.Interp.intrinsic_elems <> s_comp.Interp.intrinsic_elems
    || s_tree.Interp.memcpy_elems <> s_comp.Interp.memcpy_elems
    || s_tree.Interp.barriers <> s_comp.Interp.barriers
  then begin
    Printf.eprintf "engine stats divergence on %s\n" name;
    exit 1
  end;
  (* same correctness gate for the native backend, when a toolchain exists:
     outputs bit-for-bit and observable stats identical to the closure
     engine. Native.run is called directly so the bench measures the backend
     regardless of the XPILER_NATIVE / --native dispatch toggle. *)
  let a_native = clone_args args in
  let native_run () =
    match Native.run kernel a_native with
    | Some s -> s
    | None ->
      Printf.eprintf "native backend failed on %s despite an available toolchain\n" name;
      exit 1
  in
  let native_ok =
    Native.available ()
    &&
    let s_nat = native_run () in
    List.iter
      (fun ((n, t), (n', t')) ->
        assert (n = n');
        if Tensor.max_abs_diff t t' <> 0.0 then begin
          Printf.eprintf "native divergence on %s output %s\n" name n;
          exit 1
        end)
      (List.combine (out_tensors op a_comp) (out_tensors op a_native));
    if
      s_nat.Interp.steps <> s_comp.Interp.steps
      || s_nat.Interp.stores <> s_comp.Interp.stores
      || s_nat.Interp.intrinsic_elems <> s_comp.Interp.intrinsic_elems
      || s_nat.Interp.memcpy_elems <> s_comp.Interp.memcpy_elems
      || s_nat.Interp.barriers <> s_comp.Interp.barriers
    then begin
      Printf.eprintf "native stats divergence on %s\n" name;
      exit 1
    end;
    true
  in
  let elems_per_run = elems s_tree in
  let min_time = if smoke then 0.05 else 0.5 in
  (* timed loops reuse one argument set: outputs are recomputed in place.
     The untimed warmup inside [rate] absorbs the native compile+dynlink
     cost (and on later runs the disk-cache hit), so rates are steady-state. *)
  let tree_eps = rate ~min_time ~elems_per_run (fun () -> Interp.run_tree kernel a_tree) in
  let compiled_eps = rate ~min_time ~elems_per_run (fun () -> Interp.run kernel a_comp) in
  let native_eps =
    if native_ok then Some (rate ~min_time ~elems_per_run native_run) else None
  in
  let r =
    { op_name = name; elems_per_run; tree_eps; compiled_eps;
      speedup = compiled_eps /. tree_eps;
      native_eps;
      native_speedup = Option.map (fun n -> n /. compiled_eps) native_eps }
  in
  Printf.printf
    "%-14s %10d elems/run | tree %12.3e elems/s | compiled %12.3e elems/s | %5.1fx | native %s\n%!"
    r.op_name r.elems_per_run r.tree_eps r.compiled_eps r.speedup
    (match (r.native_eps, r.native_speedup) with
    | Some n, Some s -> Printf.sprintf "%12.3e elems/s (%5.1fx)" n s
    | _ -> "n/a (no toolchain)");
  r

let bench_tuning () =
  let gemm = Registry.find_exn "gemm" in
  let shape = List.hd gemm.Opdef.shapes in
  let serial = gemm.Opdef.serial shape in
  let buffer_sizes =
    List.map (fun (b : Opdef.buffer_spec) -> (b.buf_name, b.size shape)) gemm.Opdef.buffers
  in
  let config =
    { Mcts.default_config with
      simulations = (if smoke then 8 else 96);
      max_depth = 6;
      root_parallel = 4
    }
  in
  let search jobs =
    let t0 = now () in
    let r = Mcts.search ~config ~buffer_sizes ~jobs ~platform:Platform.bang serial in
    (now () -. t0, r)
  in
  (* determinism gate first, with the domain clamp lifted so jobs=4 really
     crosses domains even on a single-core host *)
  let default_cap = Pool.get_max_domains () in
  Pool.set_max_domains 4;
  let _, r1 = search 1 in
  let _, r4 = search 4 in
  Pool.set_max_domains default_cap;
  let deterministic =
    r1.Mcts.best_reward = r4.Mcts.best_reward
    && r1.Mcts.simulations_run = r4.Mcts.simulations_run
    && Xpiler_ir.Kernel.equal r1.Mcts.best_kernel r4.Mcts.best_kernel
  in
  if not deterministic then begin
    Printf.eprintf "tuning nondeterminism: jobs=1 and jobs=4 disagree\n";
    exit 1
  end;
  (* wall-clock under the default clamp: on a multi-core host jobs=4 engages
     real domains; on this host the clamp may collapse it to inline, in which
     case the honest result is parity, not speedup. Memo tables are warm from
     the gate runs, so both timings see the same cache state. *)
  let t1, _ = search 1 in
  let t4, _ = search 4 in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "tuning (root_parallel=4, %d sims, %d core%s): jobs=1 %.3fs, jobs=4 %.3fs (%.2fx, \
     deterministic)\n%!"
    r1.Mcts.simulations_run cores
    (if cores = 1 then "" else "s")
    t1 t4 (t1 /. t4);
  (r1.Mcts.simulations_run, cores, t1, t4)

let () =
  Printf.printf "evaluation-engine benchmark%s\n%!" (if smoke then " (smoke)" else "");
  let rows = List.map bench_op bench_ops in
  let geomean xs =
    exp (List.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int (List.length xs))
  in
  let g = geomean (List.map (fun r -> r.speedup) rows) in
  Printf.printf "geomean speedup: %.1fx\n%!" g;
  let native_rows = List.filter_map (fun r -> r.native_speedup) rows in
  let native_g = if native_rows = [] then None else Some (geomean native_rows) in
  (match native_g with
  | Some ng -> Printf.printf "native speedup geomean: %.1fx over the closure engine\n%!" ng
  | None -> Printf.printf "native backend: toolchain unavailable, closure numbers only\n%!");
  let sims, cores, t1, t4 = bench_tuning () in
  let oc = open_out "BENCH_eval.json" in
  Printf.fprintf oc "{\n  \"schema\": \"xpiler-eval-bench/v2\",\n  \"smoke\": %b,\n" smoke;
  Printf.fprintf oc "  \"kernels\": [\n";
  List.iteri
    (fun i r ->
      let native_fields =
        match (r.native_eps, r.native_speedup) with
        | Some n, Some s ->
          Printf.sprintf ", \"native_elems_per_sec\": %.6e, \"native_speedup\": %.3f" n s
        | _ -> ""
      in
      Printf.fprintf oc
        "    {\"op\": %S, \"elems_per_run\": %d, \"tree_elems_per_sec\": %.6e, \
         \"compiled_elems_per_sec\": %.6e, \"speedup\": %.3f%s}%s\n"
        r.op_name r.elems_per_run r.tree_eps r.compiled_eps r.speedup native_fields
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n  \"geomean_speedup\": %.3f,\n" g;
  (match native_g with
  | Some ng -> Printf.fprintf oc "  \"native_speedup_geomean\": %.3f,\n" ng
  | None -> ());
  Printf.fprintf oc
    "  \"tuning\": {\"root_parallel\": 4, \"simulations\": %d, \"available_cores\": %d, \
     \"jobs1_sec\": %.4f, \"jobs4_sec\": %.4f, \"parallel_speedup\": %.3f, \
     \"deterministic\": true}\n}\n"
    sims cores t1 t4 (t1 /. t4);
  close_out oc;
  Printf.printf "wrote BENCH_eval.json\n%!";
  (* hard floor on the tentpole win: in a full measurement run with the
     toolchain present, the native backend must beat the closure engine by
     at least 2x geomean. Smoke runs keep the parity gates above but skip
     the wall-clock floor — 50 ms windows are too noisy to gate on. *)
  (match native_g with
  | Some ng when (not smoke) && ng < 2.0 ->
    Printf.eprintf "NATIVE GATE: speedup geomean %.2fx is below the 2.0x floor\n%!" ng;
    exit 1
  | _ -> ());
  History_gate.record_and_gate ~bench:"eval" ~file:"BENCH_eval.json"
