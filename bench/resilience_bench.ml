(* Resilience benchmark: broken-end-state rate of the pre-PR seed pipeline
   (commit-on-Gave_up, no escalation ladder) vs the resilient pipeline
   (hinted re-prompt -> SMT repair -> symbolic fallback -> skip-with-
   rollback), at matched injected-fault rates on the same seeds. Writes
   BENCH_resilience.json (schema xpiler-resilience-bench/v1) into the
   current directory.

   Usage:
     dune exec bench/resilience_bench.exe            # full measurement
     dune exec bench/resilience_bench.exe -- --smoke # seconds-long sanity run

   The smoke run is attached to `dune runtest` via the @bench-smoke alias
   and gates the PR's headline claim: at matched fault rates the ladder must
   end with *strictly fewer* broken kernels than the seed pipeline. Both
   arms are deterministic per seed, so the gate is reproducible. *)

open Xpiler_machine
open Xpiler_ops
open Xpiler_core

let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv
let now = Unix.gettimeofday

(* the paper's headline translation target plus a reduction and an
   elementwise op, in the hardest direction (SIMT -> Bang's explicit memory
   hierarchy) and one more direction for coverage *)
let cells =
  let full =
    [ ("gemm", Platform.Cuda, Platform.Bang);
      ("softmax", Platform.Cuda, Platform.Bang);
      ("relu", Platform.Cuda, Platform.Bang);
      ("gemm", Platform.Cuda, Platform.Vnni) ]
  in
  if smoke then [ ("gemm", Platform.Cuda, Platform.Bang); ("softmax", Platform.Cuda, Platform.Bang) ]
  else full

let fault_scales = if smoke then [ 20.0 ] else [ 5.0; 10.0; 20.0 ]
let n_seeds = if smoke then 10 else 32

type arm_stats = {
  broken : int;  (** end states failing target compile or the unit test *)
  degraded : int;  (** accepted, but with one or more passes rolled back *)
  skipped_passes : int;  (** total passes skipped across the arm's runs *)
  attempts : int;  (** total LLM calls spent (ledger sum) *)
  wall : float;
}

let run_arm config_of op_name src dst scale =
  let op = Registry.find_exn op_name in
  let shape = List.hd op.Opdef.shapes in
  let t0 = now () in
  let outcomes =
    List.init n_seeds (fun seed ->
        let config = Config.with_fault_scale (Config.with_seed (config_of ()) seed) scale in
        Xpiler.transcompile ~config ~src ~dst ~op ~shape ())
  in
  { broken =
      List.length (List.filter (fun o -> not (Xpiler.accepted o.Xpiler.status)) outcomes);
    degraded =
      List.length (List.filter (fun o -> o.Xpiler.status = Xpiler.Degraded) outcomes);
    skipped_passes =
      List.fold_left (fun n o -> n + List.length o.Xpiler.skipped_passes) 0 outcomes;
    attempts =
      List.fold_left
        (fun n o ->
          List.fold_left (fun n (e : Ledger.entry) -> n + e.Ledger.attempts) n o.Xpiler.ledger)
        0 outcomes;
    wall = now () -. t0
  }

type row = {
  op_name : string;
  src : Platform.id;
  dst : Platform.id;
  scale : float;
  seed_arm : arm_stats;
  ladder_arm : arm_stats;
}

let bench_cell scale (op_name, src, dst) =
  let seed_arm = run_arm (fun () -> Config.seed_pipeline) op_name src dst scale in
  let ladder_arm = run_arm (fun () -> Config.default) op_name src dst scale in
  Printf.printf "  %-8s %s->%s x%-4.0f broken %2d/%d -> %2d/%d (degraded %d, skips %d)\n%!"
    op_name (Platform.id_to_string src) (Platform.id_to_string dst) scale seed_arm.broken
    n_seeds ladder_arm.broken n_seeds ladder_arm.degraded ladder_arm.skipped_passes;
  { op_name; src; dst; scale; seed_arm; ladder_arm }

let json_arm oc label (a : arm_stats) last =
  Printf.fprintf oc
    "      %S: {\"broken\": %d, \"broken_rate\": %.4f, \"degraded\": %d, \"skipped_passes\": %d, \"llm_attempts\": %d, \"wall_sec\": %.3f}%s\n"
    label a.broken
    (float_of_int a.broken /. float_of_int n_seeds)
    a.degraded a.skipped_passes a.attempts a.wall
    (if last then "" else ",")

let () =
  Printf.printf "resilience benchmark%s\n%!" (if smoke then " (smoke)" else "");
  let rows =
    List.concat_map (fun scale -> List.map (bench_cell scale) cells) fault_scales
  in
  let total f = List.fold_left (fun n r -> n + f r) 0 rows in
  let seed_broken = total (fun r -> r.seed_arm.broken) in
  let ladder_broken = total (fun r -> r.ladder_arm.broken) in
  let gate_pass = ladder_broken < seed_broken in
  let oc = open_out "BENCH_resilience.json" in
  Printf.fprintf oc "{\n  \"schema\": \"xpiler-resilience-bench/v1\",\n  \"smoke\": %b,\n" smoke;
  Printf.fprintf oc "  \"runs_per_cell\": %d,\n" n_seeds;
  Printf.fprintf oc "  \"fault_scales\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "%.1f") fault_scales));
  Printf.fprintf oc "  \"cells\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc "    {\"op\": %S, \"src\": %S, \"dst\": %S, \"fault_scale\": %.1f,\n"
        r.op_name
        (Platform.id_to_string r.src)
        (Platform.id_to_string r.dst)
        r.scale;
      json_arm oc "seed_pipeline" r.seed_arm false;
      json_arm oc "ladder" r.ladder_arm true;
      Printf.fprintf oc "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"total_seed_broken\": %d,\n" seed_broken;
  Printf.fprintf oc "  \"total_ladder_broken\": %d,\n" ladder_broken;
  Printf.fprintf oc "  \"gate_strictly_fewer_broken\": %b\n}\n" gate_pass;
  close_out oc;
  Printf.printf "wrote BENCH_resilience.json\n%!";
  Printf.printf "total broken end states: seed %d, ladder %d\n%!" seed_broken ladder_broken;
  if not gate_pass then begin
    Printf.eprintf
      "GATE FAILED: escalation ladder must yield strictly fewer broken end states than the \
       seed pipeline (seed %d, ladder %d)\n%!"
      seed_broken ladder_broken;
    exit 1
  end;
  History_gate.record_and_gate ~bench:"resilience" ~file:"BENCH_resilience.json"
