(* Experiment implementations: one function per table/figure of the paper.
   Each prints paper-shaped rows; EXPERIMENTS.md records paper-vs-measured. *)

open Xpiler_machine
open Xpiler_ops
open Xpiler_core
module Baselines = Xpiler_baselines
module Vclock = Xpiler_util.Vclock
module Pool = Xpiler_util.Pool
module Trace = Xpiler_obs.Trace

let platforms = [ Platform.Cuda; Platform.Bang; Platform.Hip; Platform.Vnni ]

let shapes_per_op () =
  match Sys.getenv_opt "XPILER_BENCH_SHAPES" with
  | Some s -> (try max 1 (min 8 (int_of_string s)) with _ -> 2)
  | None -> 2

let cases () =
  let n = shapes_per_op () in
  List.filter
    (fun (c : Registry.case) ->
      List.exists (fun s -> s == c.shape) (List.filteri (fun i _ -> i < n) c.op.Opdef.shapes))
    (Registry.cases ())

let pct num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let header title =
  Printf.printf "\n=== %s ===\n%!" title

(* ---- Table 5: the evaluated benchmark -------------------------------------- *)

let table5 () =
  header "Table 5: evaluated benchmark (lines of code per interface, first shape)";
  Printf.printf "%-13s %-22s | %7s %7s %7s %12s\n" "Type" "Operator" "CUDA C" "BANG C" "HIP"
    "C w/ VNNI";
  List.iter
    (fun (op : Opdef.t) ->
      let shape = List.hd op.Opdef.shapes in
      let loc pid = Xpiler_lang.Codegen.lines_of_code (Idiom.source_text pid op shape) in
      Printf.printf "%-13s %-22s | %7d %7d %7d %12d\n%!" (Opdef.class_name op.Opdef.cls)
        op.Opdef.name (loc Platform.Cuda) (loc Platform.Bang) (loc Platform.Hip)
        (loc Platform.Vnni))
    Registry.all;
  Printf.printf "%d operators x 8 shapes = %d test cases\n%!" (List.length Registry.all)
    (List.length (Registry.cases ()))

(* ---- Table 2: single-step GPT-4 error breakdown (CUDA -> BANG) ------------- *)

let table2 () =
  header "Table 2: breakdown of unsuccessful GPT-4 transcompilations, CUDA C -> BANG C (%)";
  let run m =
    let cs = cases () in
    let total = List.length cs in
    let compile_fail = ref 0 and compute_fail = ref 0 in
    let cf_cat = Hashtbl.create 4 and xf_cat = Hashtbl.create 4 in
    let bump tbl cat =
      Hashtbl.replace tbl cat (1 + Option.value ~default:0 (Hashtbl.find_opt tbl cat))
    in
    (* translations are independent; evaluate on the pool (case order kept),
       then fold the counters sequentially *)
    let rs =
      Pool.map
        (fun _task (c : Registry.case) ->
          Trace.without (fun () ->
              Baselines.Llm_baseline.translate m ~src:Platform.Cuda ~dst:Platform.Bang
                ~op:c.op ~shape:c.shape))
        cs
    in
    List.iter
      (fun (r : Baselines.Llm_baseline.result) ->
        if not r.compiles then begin
          incr compile_fail;
          List.iter
            (fun cat ->
              match cat with
              | `Parallelism -> bump cf_cat "parallelism"
              | `Memory -> bump cf_cat "memory"
              | `Instruction -> bump cf_cat "instruction"
              | `Structural -> bump cf_cat "structural")
            r.compile_errors
        end
        else if not r.computes then begin
          incr compute_fail;
          List.iter
            (fun (cat : Xpiler_neural.Fault.category) ->
              bump xf_cat (Xpiler_neural.Fault.category_name cat))
            r.fault_categories
        end)
      rs;
    let get tbl k = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
    Printf.printf
      "%-22s | compile-fail: total %5.1f%% (parallelism %d, memory %d, instruction %d)\n"
      (Baselines.Llm_baseline.method_name m)
      (pct !compile_fail total)
      (get cf_cat "parallelism") (get cf_cat "memory") (get cf_cat "instruction");
    Printf.printf
      "%-22s | compute-fail: total %5.1f%% (parallelism %d, memory %d, instruction %d)\n%!"
      "" (pct !compute_fail total)
      (get xf_cat "parallelism") (get xf_cat "memory") (get xf_cat "instruction")
  in
  run Baselines.Llm_baseline.Gpt4_zero;
  run Baselines.Llm_baseline.Gpt4_few

(* ---- Table 3: sketch-level vs detail-level synthesis cost ------------------- *)

let table3 () =
  header "Table 3: search-based synthesis, high-level sketches vs low-level details";
  (* detail-level: fill the split factor hole of a loop-split (Figure 5) *)
  let t0 = Unix.gettimeofday () in
  let detail =
    Xpiler_smt.Synth.fill_holes
      ~holes:[ ("?f", Xpiler_smt.Solver.Enum (Xpiler_smt.Solver.divisors 512)) ]
      ~sketch:Xpiler_ir.Expr.(Binop (Mul, Var "?f", Var "outer"))
      ~examples:
        [ { env = [ ("outer", 8) ]; expected = 512 };
          { env = [ ("outer", 4) ]; expected = 256 } ]
      ()
  in
  let detail_time = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  (* sketch-level: recover the whole index expression i*K + k from examples *)
  let sketch, tried =
    Xpiler_smt.Synth.enumerate_affine ~vars:[ "i"; "k" ] ~consts:[ 2; 4; 8; 16; 32; 64 ]
      ~examples:
        [ { env = [ ("i", 0); ("k", 0) ]; expected = 0 };
          { env = [ ("i", 1); ("k", 0) ]; expected = 32 };
          { env = [ ("i", 1); ("k", 5) ]; expected = 37 };
          { env = [ ("i", 3); ("k", 7) ]; expected = 103 } ]
      ()
  in
  let sketch_time = Unix.gettimeofday () -. t1 in
  (match detail.Xpiler_smt.Synth.outcome with
  | Xpiler_smt.Solver.Sat model ->
    Printf.printf "low-level details  (SMT query)        : solved ?f=%d in %d steps, %.4fs  [+]\n"
      (List.assoc "?f" model) detail.Xpiler_smt.Synth.stats.Xpiler_smt.Solver.steps detail_time
  | _ -> Printf.printf "low-level details: UNSAT\n");
  (match sketch with
  | Some e ->
    Printf.printf
      "high-level sketch  (verified lifting)  : found %s after %d candidates, %.4fs  [+++]\n%!"
      (Xpiler_ir.Expr.to_string e) tried sketch_time
  | None -> Printf.printf "high-level sketch: not found after %d candidates\n%!" tried);
  Printf.printf "candidate-count ratio (sketch / detail): %.0fx\n%!"
    (float_of_int tried /. float_of_int (max 1 detail.Xpiler_smt.Synth.stats.Xpiler_smt.Solver.steps))

(* ---- Table 6: accuracy across directions and methods ------------------------ *)

type method_kind =
  | Llm of Baselines.Llm_baseline.method_
  | Xpiler of Config.t

let table6_methods =
  [ Llm Baselines.Llm_baseline.Gpt4_zero;
    Llm Baselines.Llm_baseline.O1_zero;
    Llm Baselines.Llm_baseline.Gpt4_few;
    Llm Baselines.Llm_baseline.O1_few;
    Xpiler Config.without_smt;
    Xpiler Config.without_smt_self_debug;
    Xpiler Config.default ]

let method_label = function
  | Llm m -> Baselines.Llm_baseline.method_name m
  | Xpiler c -> (
    match c.Config.name with
    | "qimeng-xpiler" -> "QiMeng-Xpiler"
    | "qimeng-xpiler-wo-smt" -> "QiMeng-Xpiler w/o SMT"
    | "qimeng-xpiler-wo-smt+self-debug" -> "QiMeng-Xpiler w/o SMT + Self-Debugging"
    | n -> n)

let eval_direction m ~src ~dst =
  let cs = cases () in
  let total = List.length cs in
  (* per-case translations run on the domain pool; each body is wrapped in
     [Trace.without] so per-case tracer emission is suppressed identically
     whatever the job count, keeping journals byte-stable under --jobs *)
  let outcomes =
    Pool.map
      (fun _task (c : Registry.case) ->
        Trace.without (fun () ->
            match m with
            | Llm lm ->
              let r = Baselines.Llm_baseline.translate lm ~src ~dst ~op:c.op ~shape:c.shape in
              (r.compiles, r.computes)
            | Xpiler config -> (
              let o = Xpiler.transcompile ~config ~src ~dst ~op:c.op ~shape:c.shape () in
              match o.status with
              | Xpiler.Success | Xpiler.Degraded -> (true, true)
              | Xpiler.Computation_error _ -> (true, false)
              | Xpiler.Compile_error _ -> (false, false))))
      cs
  in
  let compiled = List.length (List.filter fst outcomes) in
  let computed = List.length (List.filter snd outcomes) in
  (pct compiled total, pct computed total)

let table6 () =
  header
    (Printf.sprintf "Table 6: compilation / computation accuracy by direction (%%), %d cases per direction"
       (List.length (cases ())));
  List.iter
    (fun src ->
      let dsts = List.filter (fun d -> d <> src) platforms in
      let rows =
        List.map
          (fun m ->
            ( method_label m,
              List.map
                (fun dst ->
                  let cmp, cpt = eval_direction m ~src ~dst in
                  Report.Pair (cmp, cpt))
                dsts ))
          table6_methods
      in
      let report =
        Report.make
          ~title:
            (Printf.sprintf "Source: %s (compile / computation accuracy %%)"
               (Platform.of_id src).Platform.interface)
          ~cols:(List.map Platform.id_to_string dsts)
          rows
      in
      print_newline ();
      print_string (Report.render report);
      let path = Report.save_csv ~name:("table6_" ^ Platform.id_to_string src) report in
      Printf.printf "[saved %s]\n%!" path)
    platforms

(* ---- Table 7: rule-based comparison ------------------------------------------ *)

let table7 () =
  header "Table 7: accuracy comparison to rule-based methods (%)";
  let cs = cases () in
  let total = List.length cs in
  (* HIPIFY: CUDA -> HIP *)
  let h_compiled = ref 0 and h_computed = ref 0 in
  List.iter
    (fun (c : Registry.case) ->
      let r = Baselines.Hipify.translate c.op c.shape in
      if r.compiles then incr h_compiled;
      if r.computes then incr h_computed)
    cs;
  let x_cmp, x_cpt = eval_direction (Xpiler Config.default) ~src:Platform.Cuda ~dst:Platform.Hip in
  Printf.printf "CUDA C -> HIP     | HIPIFY        : compile %5.1f  computation %5.1f\n"
    (pct !h_compiled total) (pct !h_computed total);
  Printf.printf "CUDA C -> HIP     | QiMeng-Xpiler : compile %5.1f  computation %5.1f\n" x_cmp x_cpt;
  (* PPCG: C -> CUDA *)
  let p_compiled = ref 0 and p_computed = ref 0 in
  List.iter
    (fun (c : Registry.case) ->
      let r = Baselines.Ppcg.translate c.op c.shape in
      if r.compiles then incr p_compiled;
      if r.computes then incr p_computed)
    cs;
  let c_cmp, c_cpt =
    eval_direction (Xpiler Config.default) ~src:Platform.Vnni ~dst:Platform.Cuda
  in
  Printf.printf "C -> CUDA C       | PPCG          : compile %5.1f  computation %5.1f\n"
    (pct !p_compiled total) (pct !p_computed total);
  Printf.printf "C -> CUDA C       | QiMeng-Xpiler : compile %5.1f  computation %5.1f\n%!" c_cmp c_cpt

(* ---- Table 8: productivity ----------------------------------------------------- *)

let table8 () =
  header "Table 8: productivity improvement (Deformable Attention)";
  List.iter
    (fun (src, dst, label) ->
      Printf.printf "\nDirection: %s\n" label;
      List.iter
        (fun (e : Baselines.Productivity.entry) ->
          Printf.printf
            "  %-13s manual %6.1f h (perf %6.1f%%) | w/ QiMeng-Xpiler %5.2f h%s (perf %6.1f%%) | time saving ~%.1fx\n%!"
            (Baselines.Productivity.coder_name e.coder)
            e.manual_hours (100.0 *. e.manual_perf) e.xpiler_hours
            (if e.xpiler_correct then "" else " + debug")
            (100.0 *. e.xpiler_perf) e.time_saving)
        (Baselines.Productivity.study ~src ~dst ()))
    [ (Platform.Cuda, Platform.Bang, "CUDA C -> BANG C");
      (Platform.Vnni, Platform.Cuda, "C with VNNI -> CUDA C") ]

(* ---- Figure 7: performance vs vendor libraries ---------------------------------- *)

let fig7 () =
  header
    "Figure 7: translated-program performance vs vendor libraries (speedup, 1.0 = parity)";
  let directions =
    [ (Platform.Vnni, Platform.Cuda, "C w/ VNNI -> CUDA C (vs cuBLAS/cuDNN)");
      (Platform.Cuda, Platform.Bang, "CUDA C -> BANG C (vs CNNL)");
      (Platform.Cuda, Platform.Hip, "CUDA C -> HIP (vs rocBLAS/MIOpen)");
      (Platform.Cuda, Platform.Vnni, "CUDA C -> C w/ VNNI (vs oneDNN)") ]
  in
  let classes =
    [ Opdef.Matmul; Opdef.Convolution; Opdef.Activation; Opdef.Pooling; Opdef.Elementwise;
      Opdef.Llm ]
  in
  let all_speedups = ref [] in
  let csv_rows = ref [] in
  List.iter
    (fun (src, dst, label) ->
      Printf.printf "\n%s\n" label;
      List.iter
        (fun cls ->
          let class_cases =
            List.filter (fun (c : Registry.case) -> c.op.Opdef.cls = cls) (cases ())
          in
          let speedups =
            Pool.map
              (fun _task (c : Registry.case) ->
                Trace.without (fun () ->
                    let o =
                      Xpiler.transcompile ~config:Config.tuned ~src ~dst ~op:c.op
                        ~shape:c.shape ()
                    in
                    match (o.Xpiler.status, o.Xpiler.kernel) with
                    | (Xpiler.Success | Xpiler.Degraded), Some k ->
                      Some (Baselines.Vendor.speedup_of_translated dst c.op c.shape k)
                    | _ -> None))
              class_cases
            |> List.filter_map Fun.id
          in
          let correct = List.length speedups in
          all_speedups := speedups @ !all_speedups;
          let geomean xs =
            match xs with
            | [] -> 0.0
            | xs ->
              exp (List.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int (List.length xs))
          in
          let mx = List.fold_left Float.max 0.0 speedups in
          csv_rows :=
            !csv_rows
            @ [ ( Printf.sprintf "%s->%s %s" (Platform.id_to_string src)
                    (Platform.id_to_string dst) (Opdef.class_name cls),
                  [ Report.Ratio (geomean speedups); Report.Ratio mx; Report.Count correct;
                    Report.Count (List.length class_cases) ] ) ];
          Printf.printf "  %-12s: geomean %5.2fx  max %5.2fx  (correct %d/%d)\n%!"
            (Opdef.class_name cls) (geomean speedups) mx correct (List.length class_cases))
        classes)
    directions;
  let report =
    Report.make ~title:"Figure 7: speedup vs vendor libraries"
      ~cols:[ "geomean"; "max"; "correct"; "cases" ]
      !csv_rows
  in
  Printf.printf "[saved %s]\n%!" (Report.save_csv ~name:"fig7" report);
  let xs = !all_speedups in
  let geomean =
    match xs with
    | [] -> 0.0
    | xs -> exp (List.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int (List.length xs))
  in
  Printf.printf "\nOverall: geomean %.2fx, max %.2fx (paper: average 0.78x, up to 2.00x)\n%!"
    geomean
    (List.fold_left Float.max 0.0 xs)

(* ---- Figure 8: compilation-time breakdown ----------------------------------------- *)

let fig8 () =
  header "Figure 8: compilation-time breakdown, CUDA C -> BANG C (modelled hours)";
  let ops = [ "relu"; "add"; "softmax"; "layernorm"; "gemm"; "self_attention" ] in
  Printf.printf "%-16s %10s | %s\n" "operator" "total(h)"
    (String.concat " " (List.map (fun s -> Printf.sprintf "%14s" (Vclock.stage_name s)) Vclock.all_stages));
  List.iter
    (fun name ->
      let op = Registry.find_exn name in
      let shape = List.hd op.Opdef.shapes in
      let o =
        Xpiler.transcompile ~config:Config.tuned ~src:Platform.Cuda ~dst:Platform.Bang ~op
          ~shape ()
      in
      let clock = o.Xpiler.clock in
      let hours s = Vclock.stage_total clock s /. 3600.0 in
      Printf.printf "%-16s %10.2f | %s\n%!" name
        (Vclock.elapsed clock /. 3600.0)
        (String.concat " " (List.map (fun s -> Printf.sprintf "%14.3f" (hours s)) Vclock.all_stages)))
    ops

(* ---- §5.1: intra-pass search-space sizes -------------------------------------------- *)

let space () =
  header "Intra-pass search-space size (Matmul 512x512x512, paper: GPU ~150, MLU ~10)";
  let gemm = Registry.find_exn "gemm" in
  let shape = [ ("m", 512); ("n", 512); ("k", 512) ] in
  let serial = gemm.Opdef.serial shape in
  List.iter
    (fun pid ->
      let p = Platform.of_id pid in
      Printf.printf "  %-28s: %d candidate configurations\n%!" p.Platform.name
        (Xpiler_tuning.Knobs.space_size p serial))
    [ Platform.Cuda; Platform.Bang ]

(* ---- §5.2: MCTS design-space exploration --------------------------------------------- *)

let mcts_dse () =
  header "MCTS design-space exploration (reward vs depth and simulation budget)";
  let gemm = Registry.find_exn "gemm" in
  let shape = List.hd gemm.Opdef.shapes in
  let serial = gemm.Opdef.serial shape in
  let buffer_sizes =
    List.map (fun (b : Opdef.buffer_spec) -> (b.buf_name, b.size shape)) gemm.Opdef.buffers
  in
  Printf.printf "%8s %12s %14s %14s %8s\n" "depth" "simulations" "root reward" "best reward" "gain";
  List.iter
    (fun (depth, sims) ->
      let config =
        { Xpiler_tuning.Mcts.default_config with max_depth = depth; simulations = sims }
      in
      let r =
        Xpiler_tuning.Mcts.search ~config ~buffer_sizes ~platform:Platform.bang serial
      in
      Printf.printf "%8d %12d %14.3g %14.3g %7.1fx\n%!" depth sims
        r.Xpiler_tuning.Mcts.root_reward r.Xpiler_tuning.Mcts.best_reward
        (r.Xpiler_tuning.Mcts.best_reward /. Float.max r.Xpiler_tuning.Mcts.root_reward 1e-9))
    [ (2, 16); (4, 16); (6, 32); (8, 64); (13, 128) ]
