(* Ablations of this reproduction's own design choices (DESIGN.md):
   - program annotation on/off inside the full pipeline,
   - repair rounds (single- vs multi-fault hill climbing),
   - MCTS vs pure random search at equal budget,
   - reverse- vs in-order fiber scheduling (does the interpreter actually
     expose missing-barrier races?). *)

open Xpiler_ir
open Xpiler_machine
open Xpiler_ops
open Xpiler_core
module Mcts = Xpiler_tuning.Mcts
module Pass = Xpiler_passes.Pass
module Rng = Xpiler_util.Rng

let header title = Printf.printf "\n=== Ablation: %s ===\n%!" title

let sample_cases () =
  List.filter
    (fun (c : Registry.case) -> List.hd c.op.Opdef.shapes == c.shape)
    (Registry.cases ())

(* ---- annotation ------------------------------------------------------------ *)

let annotation () =
  header "program annotation (Algorithm 1) inside the full pipeline";
  let run annotate =
    let config = { Config.default with Config.annotate } in
    List.fold_left
      (fun acc (c : Registry.case) ->
        let o =
          Xpiler.transcompile ~config ~src:Platform.Cuda ~dst:Platform.Bang ~op:c.op
            ~shape:c.shape ()
        in
        if Xpiler.accepted o.Xpiler.status then acc + 1 else acc)
      0 (sample_cases ())
  in
  let total = List.length (sample_cases ()) in
  Printf.printf "  with annotation   : %d/%d correct\n%!" (run true) total;
  Printf.printf "  without annotation: %d/%d correct\n%!" (run false) total

(* ---- repair rounds ------------------------------------------------------------ *)

let repair_rounds () =
  header "repair rounds (multi-fault hill climbing)";
  let gemm = Registry.find_exn "gemm" in
  let shape = List.hd gemm.Opdef.shapes in
  let base = Idiom.source Platform.Cuda gemm shape in
  (* inject two simultaneous detail faults and try to repair with 1 vs 3 rounds *)
  let count rounds =
    let fixed = ref 0 and total = ref 0 in
    for seed = 0 to 19 do
      let rng = Rng.create (1000 + seed) in
      let broken =
        match Xpiler_neural.Fault.inject_param rng base with
        | None -> None
        | Some (k, _) -> (
          match Xpiler_neural.Fault.inject_index rng k with
          | None -> Some k
          | Some (k', _) -> Some k')
      in
      match broken with
      | Some broken when Unit_test.check ~trials:1 gemm shape broken <> Unit_test.Pass ->
        incr total;
        (match
           Xpiler_repair.Repairer.repair ~rounds ~platform:Platform.cuda ~op:gemm ~shape broken
         with
        | Xpiler_repair.Repairer.Repaired _ -> incr fixed
        | Xpiler_repair.Repairer.Gave_up _ -> ())
      | _ -> ()
    done;
    (!fixed, !total)
  in
  List.iter
    (fun rounds ->
      let fixed, total = count rounds in
      Printf.printf "  rounds=%d: repaired %d/%d double-fault kernels\n%!" rounds fixed total)
    [ 1; 2; 3 ]

(* ---- MCTS vs random search ------------------------------------------------------ *)

let mcts_vs_random () =
  header "inter-pass MCTS vs uniform random search (equal pass-application budget)";
  let conv = Registry.find_exn "conv2d_nhwc" in
  let shape = List.nth conv.Opdef.shapes 2 in
  let serial = conv.Opdef.serial shape in
  let buffer_sizes =
    List.map (fun (b : Opdef.buffer_spec) -> (b.buf_name, b.size shape)) conv.Opdef.buffers
  in
  let platform = Platform.bang in
  let random_search budget seed =
    (* repeated random pass chains of depth <= 8 *)
    let rng = Rng.create seed in
    let best = ref (Costmodel.throughput platform serial ~shapes:[]) in
    let applications = ref 0 in
    while !applications < budget do
      let rec chain k depth =
        if depth = 0 || !applications >= budget then ()
        else begin
          match Xpiler_tuning.Actions.enumerate ~buffer_sizes platform k with
          | [] -> ()
          | acts -> (
            incr applications;
            match Pass.apply ~platform (Rng.choose rng acts) k with
            | Error _ -> ()
            | Ok k' ->
              if Checker.compile platform k' = Ok () then
                best := Float.max !best (Costmodel.throughput platform k' ~shapes:[]);
              chain k' (depth - 1))
        end
      in
      chain serial 8
    done;
    !best
  in
  List.iter
    (fun sims ->
      let config = { Mcts.default_config with simulations = sims; max_depth = 8 } in
      let m = Mcts.search ~config ~buffer_sizes ~platform serial in
      (* MCTS applies roughly max_depth passes per simulation *)
      let rnd = random_search (sims * 8) 424 in
      Printf.printf "  budget %4d sims: MCTS %.3g  vs  random %.3g  (MCTS/random %.2fx)\n%!"
        sims m.Mcts.best_reward rnd (m.Mcts.best_reward /. rnd))
    [ 8; 32 ];
  Printf.printf
    "  (on these small kernels both searches saturate the space; the paper's\n\
    \   512-simulation budget targets much larger real-device spaces)\n%!"

(* ---- fiber scheduling ------------------------------------------------------------ *)

let race_exposure () =
  header "reverse-order fiber scheduling exposes missing barriers";
  (* the barrier kernel from the paper's parallelism error class, with the
     __syncthreads removed: the interpreter must detect the race *)
  let racy =
    let open Expr.Infix in
    Kernel.make ~name:"rev"
      ~params:[ Builder.buffer "inp"; Builder.buffer "out" ]
      ~launch:[ (Axis.Thread_x, 64) ]
      [ Builder.alloc "tile" Scope.Shared 64;
        Builder.par_for Axis.Thread_x "threadIdx.x" (int 64)
          [ Builder.store "tile" (v "threadIdx.x") (load "inp" (v "threadIdx.x"));
            (* missing __syncthreads() here *)
            Builder.store "out" (v "threadIdx.x") (load "tile" (int 63 - v "threadIdx.x"))
          ]
      ]
  in
  let check () =
    let rng = Rng.create 5 in
    let inp = Tensor.random rng 64 in
    let out = Tensor.create 64 in
    let _ = Interp.run racy [ ("inp", Interp.Buf inp); ("out", Interp.Buf out) ] in
    let wrong = ref 0 in
    for t = 0 to 63 do
      if Float.abs (Tensor.get out t -. Tensor.get inp (63 - t)) > 1e-9 then incr wrong
    done;
    !wrong
  in
  let wrong = ref (check ()) in
  Printf.printf
    "  missing-barrier kernel: %d/64 outputs wrong under reverse-order scheduling\n" !wrong;
  Printf.printf "  (in-order scheduling would report 0 wrong and hide the bug)\n%!"

let run () =
  annotation ();
  repair_rounds ();
  mcts_vs_random ();
  race_exposure ()
