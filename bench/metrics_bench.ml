(* Overhead gate for the metrics registry.

   The registry instruments the default translation path (compile cache, LLM
   attempts, escalation counters), so it runs even with tracing off — the
   production configuration. This gate asserts that the instrumentation adds
   less than 2% wall time to a translate with [trace_level = Off], comparing
   registry-enabled against registry-disabled batches.

   Both arms run identical deterministic work (same seeds), and we take the
   minimum over several alternating batches — the standard defence against
   scheduler noise — plus a small absolute slack so a sub-millisecond
   workload cannot fail on timer jitter.

   Usage:
     dune exec bench/metrics_bench.exe            # full measurement
     dune exec bench/metrics_bench.exe -- --smoke # seconds-long sanity run *)

open Xpiler_machine
open Xpiler_ops
open Xpiler_core
module Metrics = Xpiler_obs.Metrics

let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv

let op =
  match Registry.find "softmax" with Some op -> op | None -> failwith "softmax not registered"

let shape = List.hd op.Opdef.shapes

let translate_once seed =
  let config = Config.with_seed Config.default seed in
  ignore (Xpiler.transcompile ~config ~src:Platform.Cuda ~dst:Platform.Bang ~op ~shape ())

let batch n =
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    translate_once (1000 + i)
  done;
  Unix.gettimeofday () -. t0

let () =
  let n = if smoke then 4 else 8 in
  let k = if smoke then 4 else 5 in
  (* warm-up: fill the compile cache and JIT both paths so the measured
     batches see steady state *)
  ignore (batch n);
  let t_on = ref infinity and t_off = ref infinity in
  for _ = 1 to k do
    Metrics.set_enabled true;
    t_on := Float.min !t_on (batch n);
    Metrics.set_enabled false;
    t_off := Float.min !t_off (batch n)
  done;
  Metrics.set_enabled true;
  let overhead_pct = if !t_off > 0.0 then 100.0 *. ((!t_on /. !t_off) -. 1.0) else 0.0 in
  Printf.printf "metrics overhead: enabled %.4fs, disabled %.4fs (%+.2f%%, min of %d batches of %d)\n%!"
    !t_on !t_off overhead_pct k n;
  (* <2% relative, with 10ms absolute slack against timer jitter *)
  if !t_on > (!t_off *. 1.02) +. 0.010 then begin
    Printf.eprintf
      "GATE FAILED: metrics registry adds %.2f%% wall time to an untraced translate (budget 2%%)\n%!"
      overhead_pct;
    exit 1
  end
