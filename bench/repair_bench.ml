(* Repair/SMT hot-path benchmark: the pre-overhaul repair stack (naive
   re-checking solver, no memo, serial candidate testing) vs the overhauled
   one (incremental watched-constraint solver, process-global memo,
   speculative parallel candidate testing) on the resilience workload at
   matched injected-fault rates. Writes BENCH_repair.json (schema
   xpiler-repair-bench/v1) into the current directory.

   Usage:
     dune exec bench/repair_bench.exe            # full measurement (x5/x10/x20)
     dune exec bench/repair_bench.exe -- --smoke # seconds-long sanity run

   The smoke run is attached to `dune runtest` via the @repair and
   @bench-smoke aliases. Gates:
   - total fresh solver steps and constraint evaluations must drop >= 2x
     (exact: search work is deterministic, counted on the master domain);
   - the overhauled arm must not end with more broken kernels than the
     baseline (the overhaul changes time, not repair outcomes);
   - in the full run only, repair wall time must also drop >= 2x (wall
     clock flakes on shared CI, so the smoke run records it ungated).
   The headline numbers then feed the results/history.jsonl watchdog. *)

open Xpiler_machine
open Xpiler_ops
open Xpiler_core
module Solver = Xpiler_smt.Solver
module Memo = Xpiler_smt.Memo
module Repairer = Xpiler_repair.Repairer

let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv
let now = Unix.gettimeofday

(* the resilience workload: hardest direction (SIMT -> Bang's explicit
   memory hierarchy) plus one more direction for coverage *)
let cells =
  let full =
    [ ("gemm", Platform.Cuda, Platform.Bang);
      ("softmax", Platform.Cuda, Platform.Bang);
      ("relu", Platform.Cuda, Platform.Bang);
      ("gemm", Platform.Cuda, Platform.Vnni) ]
  in
  if smoke then [ ("gemm", Platform.Cuda, Platform.Bang); ("softmax", Platform.Cuda, Platform.Bang) ]
  else full

let fault_scales = if smoke then [ 20.0 ] else [ 5.0; 10.0; 20.0 ]
let n_seeds = if smoke then 8 else 32

type arm_stats = {
  broken : int;  (** end states failing target compile or the unit test *)
  solves : int;  (** fresh solver searches (memo hits excluded) *)
  steps : int;  (** assignment attempts across fresh searches *)
  evals : int;  (** constraint evaluations across fresh searches *)
  repairs : int;
  repair_wall : float;  (** wall seconds inside [Repairer.repair] *)
  solver_wall : float;  (** wall seconds inside fresh solver searches, process-wide *)
  wall_localize : float;
  wall_solve : float;
  wall_test : float;
  wall_score : float;
  memo_hits : int;
  memo_misses : int;
  spec : Repairer.spec_stats;
  wall : float;
}

let run_arm ~engine ~memo config_of op_name src dst scale =
  let op = Registry.find_exn op_name in
  let shape = List.hd op.Opdef.shapes in
  Solver.set_engine engine;
  Memo.clear ();
  Memo.reset_stats ();
  Memo.set_enabled memo;
  Solver.reset_work_totals ();
  Repairer.reset_verdict_memo ();
  Repairer.reset_wall_totals ();
  Repairer.reset_speculation_totals ();
  let t0 = now () in
  let outcomes =
    List.init n_seeds (fun seed ->
        let config = Config.with_fault_scale (Config.with_seed (config_of ()) seed) scale in
        Xpiler.transcompile ~config ~src ~dst ~op ~shape ())
  in
  let wall = now () -. t0 in
  let work = Solver.work_totals () in
  let rw = Repairer.wall_totals () in
  { broken =
      List.length (List.filter (fun o -> not (Xpiler.accepted o.Xpiler.status)) outcomes);
    solves = work.Solver.fresh_solves;
    steps = work.Solver.fresh_steps;
    evals = work.Solver.fresh_evals;
    repairs = rw.Repairer.repairs;
    repair_wall = rw.Repairer.wall_seconds;
    solver_wall = work.Solver.fresh_wall;
    wall_localize = rw.Repairer.localize_seconds;
    wall_solve = rw.Repairer.solve_seconds;
    wall_test = rw.Repairer.test_seconds;
    wall_score = rw.Repairer.score_seconds;
    memo_hits = Memo.hits ();
    memo_misses = Memo.misses ();
    spec = Repairer.speculation_totals ();
    wall
  }

(* the headline wall metric: everything the overhaul touches — time inside
   [Repairer.repair] plus fresh solver searches anywhere in the pipeline
   (candidate filtering, synthesis, symbolic fallback), minus the repair-
   internal solver share [wall_solve] already inside both meters *)
let hotpath_wall (a : arm_stats) = a.repair_wall -. a.wall_solve +. a.solver_wall

type row = {
  op_name : string;
  src : Platform.id;
  dst : Platform.id;
  scale : float;
  baseline : arm_stats;
  optimized : arm_stats;
}

let bench_cell scale (op_name, src, dst) =
  (* baseline = the pre-overhaul stack: naive engine, cold memo, serial
     candidate testing (speculation off) *)
  let baseline =
    run_arm ~engine:Solver.Naive ~memo:false
      (fun () -> { Config.default with Config.speculative_repair = false })
      op_name src dst scale
  in
  let optimized =
    run_arm ~engine:Solver.Incremental ~memo:true
      (fun () -> Config.with_jobs Config.default 4)
      op_name src dst scale
  in
  Printf.printf
    "  %-8s %s->%s x%-4.0f steps %9d -> %7d  evals %10d -> %7d  broken %d -> %d\n%!"
    op_name (Platform.id_to_string src) (Platform.id_to_string dst) scale baseline.steps
    optimized.steps baseline.evals optimized.evals baseline.broken optimized.broken;
  let breakdown tag (a : arm_stats) =
    Printf.printf
    "    %-9s hot-path %6.2fs = solver %5.2fs + localize %5.2fs + test %5.2fs + score %5.2fs \
     + other %5.2fs\n%!"
      tag (hotpath_wall a) a.solver_wall a.wall_localize a.wall_test a.wall_score
      (a.repair_wall -. a.wall_localize -. a.wall_solve -. a.wall_test -. a.wall_score)
  in
  breakdown "baseline" baseline;
  breakdown "optimized" optimized;
  { op_name; src; dst; scale; baseline; optimized }

let json_arm oc label (a : arm_stats) last =
  Printf.fprintf oc
    "      %S: {\"broken\": %d, \"solver_solves\": %d, \"solver_steps\": %d, \
     \"solver_evals\": %d, \"repairs\": %d, \"repair_wall_sec\": %.4f, \
     \"solver_wall_sec\": %.4f, \"hotpath_wall_sec\": %.4f, \
     \"repair_localize_sec\": %.4f, \"repair_solve_sec\": %.4f, \"repair_test_sec\": %.4f, \
     \"repair_score_sec\": %.4f, \"memo_hits\": %d, \
     \"memo_misses\": %d, \"spec_batches\": %d, \"spec_won\": %d, \"spec_cancelled\": %d, \
     \"wall_sec\": %.3f}%s\n"
    label a.broken a.solves a.steps a.evals a.repairs a.repair_wall a.solver_wall
    (hotpath_wall a) a.wall_localize
    a.wall_solve a.wall_test a.wall_score a.memo_hits a.memo_misses
    a.spec.Repairer.batches a.spec.Repairer.won a.spec.Repairer.cancelled a.wall
    (if last then "" else ",")

let ratio num den = if den <= 0.0 then Float.infinity else num /. den

let () =
  Printf.printf "repair hot-path benchmark%s\n%!" (if smoke then " (smoke)" else "");
  let rows =
    List.concat_map (fun scale -> List.map (bench_cell scale) cells) fault_scales
  in
  let total f = List.fold_left (fun n r -> n + f r) 0 rows in
  let totalf f = List.fold_left (fun n r -> n +. f r) 0.0 rows in
  let b_steps = total (fun r -> r.baseline.steps)
  and o_steps = total (fun r -> r.optimized.steps)
  and b_evals = total (fun r -> r.baseline.evals)
  and o_evals = total (fun r -> r.optimized.evals)
  and b_broken = total (fun r -> r.baseline.broken)
  and o_broken = total (fun r -> r.optimized.broken)
  and b_wall = totalf (fun r -> hotpath_wall r.baseline)
  and o_wall = totalf (fun r -> hotpath_wall r.optimized) in
  let hits = total (fun r -> r.optimized.memo_hits)
  and misses = total (fun r -> r.optimized.memo_misses) in
  let batches = total (fun r -> r.optimized.spec.Repairer.batches)
  and won = total (fun r -> r.optimized.spec.Repairer.won) in
  let steps_reduction = ratio (float_of_int b_steps) (float_of_int o_steps) in
  let evals_reduction = ratio (float_of_int b_evals) (float_of_int o_evals) in
  let wall_speedup = ratio b_wall o_wall in
  let memo_hit_rate = ratio (float_of_int hits) (float_of_int (hits + misses)) in
  let win_rate = ratio (float_of_int won) (float_of_int (max 1 batches)) in
  let gate_steps = steps_reduction >= 2.0 in
  let gate_evals = evals_reduction >= 2.0 in
  let gate_broken = o_broken <= b_broken in
  let gate_wall = smoke || wall_speedup >= 2.0 in
  let oc = open_out "BENCH_repair.json" in
  Printf.fprintf oc "{\n  \"schema\": \"xpiler-repair-bench/v1\",\n  \"smoke\": %b,\n" smoke;
  Printf.fprintf oc "  \"runs_per_cell\": %d,\n" n_seeds;
  Printf.fprintf oc "  \"fault_scales\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "%.1f") fault_scales));
  Printf.fprintf oc "  \"cells\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc "    {\"op\": %S, \"src\": %S, \"dst\": %S, \"fault_scale\": %.1f,\n"
        r.op_name
        (Platform.id_to_string r.src)
        (Platform.id_to_string r.dst)
        r.scale;
      json_arm oc "baseline" r.baseline false;
      json_arm oc "optimized" r.optimized true;
      Printf.fprintf oc "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"total_baseline_steps\": %d,\n  \"total_optimized_steps\": %d,\n"
    b_steps o_steps;
  Printf.fprintf oc "  \"total_baseline_evals\": %d,\n  \"total_optimized_evals\": %d,\n"
    b_evals o_evals;
  Printf.fprintf oc "  \"steps_reduction\": %.4f,\n  \"evals_reduction\": %.4f,\n"
    steps_reduction evals_reduction;
  Printf.fprintf oc
    "  \"baseline_hotpath_wall_sec\": %.4f,\n  \"optimized_hotpath_wall_sec\": %.4f,\n"
    b_wall o_wall;
  Printf.fprintf oc "  \"wall_speedup\": %.4f,\n" wall_speedup;
  Printf.fprintf oc "  \"baseline_broken\": %d,\n  \"optimized_broken\": %d,\n" b_broken
    o_broken;
  Printf.fprintf oc "  \"memo_hit_rate\": %.4f,\n  \"speculation_win_rate\": %.4f,\n"
    memo_hit_rate win_rate;
  Printf.fprintf oc
    "  \"gate_steps_reduction\": %b,\n  \"gate_evals_reduction\": %b,\n  \
     \"gate_broken\": %b,\n  \"gate_wall\": %b\n}\n"
    gate_steps gate_evals gate_broken gate_wall;
  close_out oc;
  Printf.printf "wrote BENCH_repair.json\n%!";
  Printf.printf
    "solver steps %d -> %d (%.1fx), evals %d -> %d (%.1fx), hot-path wall %.2fs -> %.2fs \
     (%.1fx), broken %d -> %d, memo hit rate %.0f%%, speculation win rate %.0f%%\n%!"
    b_steps o_steps steps_reduction b_evals o_evals evals_reduction b_wall o_wall wall_speedup
    b_broken o_broken (memo_hit_rate *. 100.0) (win_rate *. 100.0);
  let fail = ref false in
  if not gate_steps then begin
    Printf.eprintf "GATE FAILED: solver steps must drop >= 2x (got %.2fx)\n%!" steps_reduction;
    fail := true
  end;
  if not gate_evals then begin
    Printf.eprintf "GATE FAILED: constraint evals must drop >= 2x (got %.2fx)\n%!"
      evals_reduction;
    fail := true
  end;
  if not gate_broken then begin
    Printf.eprintf
      "GATE FAILED: the overhauled arm ended with more broken kernels (%d) than the baseline \
       (%d)\n%!"
      o_broken b_broken;
    fail := true
  end;
  if not gate_wall then begin
    Printf.eprintf
      "GATE FAILED: repair/SMT hot-path wall time must drop >= 2x (got %.2fx)\n%!" wall_speedup;
    fail := true
  end;
  if !fail then exit 1;
  History_gate.record_and_gate ~bench:"repair" ~file:"BENCH_repair.json"
