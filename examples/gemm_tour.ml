(* A tour of one GEMM across all four deep learning systems: idiomatic
   sources, automatic translation from CUDA to each target, and modelled
   performance against the vendor library.

   Run with: dune exec examples/gemm_tour.exe *)

open Xpiler_machine
open Xpiler_ops
open Xpiler_core

let () =
  let op = Registry.find_exn "gemm" in
  let shape = [ ("m", 32); ("n", 64); ("k", 32) ] in
  Printf.printf "GEMM %s\n\n"
    (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) shape));

  (* the idiomatic implementation on each platform *)
  List.iter
    (fun pid ->
      Printf.printf "=== idiomatic %s ===\n%s\n" (Platform.of_id pid).Platform.interface
        (Idiom.source_text pid op shape))
    [ Platform.Vnni; Platform.Cuda; Platform.Bang ];

  (* translate the CUDA version to every other platform *)
  print_endline "=== automatic translation from CUDA C ===";
  List.iter
    (fun dst ->
      let o =
        Xpiler.transcompile ~config:Config.tuned ~src:Platform.Cuda ~dst ~op ~shape ()
      in
      let vendor_ratio =
        match (o.Xpiler.status, o.Xpiler.kernel) with
        | (Xpiler.Success | Xpiler.Degraded), Some k -> Xpiler_baselines.Vendor.speedup_of_translated dst op shape k
        | _ -> 0.0
      in
      Printf.printf "  -> %-5s: %-40s vs vendor: %.2fx\n"
        (Platform.id_to_string dst)
        (Xpiler.status_to_string o.Xpiler.status)
        vendor_ratio)
    [ Platform.Bang; Platform.Hip; Platform.Vnni ]
