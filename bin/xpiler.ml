(* Command-line front-end for the QiMeng-Xpiler transcompiler. *)

open Cmdliner
open Xpiler_machine
open Xpiler_ops
open Xpiler_core

let platform_conv =
  let parse s =
    match Platform.id_of_string (String.lowercase_ascii s) with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown platform %s (cuda|bang|hip|vnni|c)" s))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Platform.id_to_string p))

let op_arg =
  let doc = "Operator name (see `xpiler list-ops`)." in
  Arg.(required & opt (some string) None & info [ "op" ] ~docv:"OP" ~doc)

let shape_arg =
  let doc = "Shape as comma-separated dims, e.g. m=16,n=64,k=32. Default: the operator's first benchmark shape." in
  Arg.(value & opt (some string) None & info [ "shape" ] ~docv:"SHAPE" ~doc)

let src_arg =
  let doc = "Source platform (cuda, bang, hip, vnni)." in
  Arg.(required & opt (some platform_conv) None & info [ "from" ] ~docv:"SRC" ~doc)

let dst_arg =
  let doc = "Target platform (cuda, bang, hip, vnni)." in
  Arg.(required & opt (some platform_conv) None & info [ "to" ] ~docv:"DST" ~doc)

let tune_arg =
  let doc = "Run hierarchical auto-tuning on the accepted translation." in
  Arg.(value & flag & info [ "tune" ] ~doc)

let seed_arg =
  let doc = "Seed for the (simulated) neural oracle." in
  Arg.(value & opt int 20250706 & info [ "seed" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for parallel auto-tuning. Deterministic: any value produces \
     identical results and traces, only wall-clock changes."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let no_prune_arg =
  let doc =
    "Disable bound-based pruning of intra-pass tuning candidates. Pruning is lossless \
     (the chosen schedule never changes, only modelled tuning time); the flag exists for \
     A/B measurement."
  in
  Arg.(value & flag & info [ "no-tune-prune" ] ~doc)

let no_warm_start_arg =
  let doc =
    "Disable warm-starting MCTS from the in-process schedule database (recorded best \
     schedules of previously tuned, structurally similar kernels)."
  in
  Arg.(value & flag & info [ "no-warm-start" ] ~doc)

let max_escalation_arg =
  let doc =
    "Cap the fault-class escalation ladder at rung $(docv) (0 validate-only, 1 +hinted \
     re-prompt, 2 +SMT repair, 3 +symbolic fallback, 4 +skip-with-rollback)."
  in
  Arg.(value & opt int 4 & info [ "max-escalation" ] ~docv:"RUNG" ~doc)

let no_rollback_arg =
  let doc =
    "Commit a pass's output even when validation failed and every repair rung gave up \
     (the pre-resilience behaviour); skipped-pass rollback is on by default."
  in
  Arg.(value & flag & info [ "no-rollback" ] ~doc)

let no_speculative_repair_arg =
  let doc =
    "Test SMT-repair candidates serially instead of speculatively over the worker pool. \
     Speculation is deterministic (lowest-index winner, canonical replayed effects), so \
     the flag exists for A/B measurement and debugging."
  in
  Arg.(value & flag & info [ "no-speculative-repair" ] ~doc)

let fault_scale_arg =
  let doc =
    "Multiplier on the simulated LLM's fault-injection rates (default 1.0, the \
     calibrated paper rates); raise it to watch the escalation ladder work."
  in
  Arg.(value & opt float 1.0 & info [ "fault-scale" ] ~docv:"F" ~doc)

let native_arg =
  let doc =
    "Execute kernels through the native backend: lower each kernel to OCaml source, \
     compile it out of process and dynlink the artifact, with compiled kernels cached \
     on disk under \\$XPILER_CACHE_DIR (default ~/.cache/xpiler). Falls back to the \
     closure engine per kernel when the toolchain is unavailable, so results never \
     change — only wall-clock does. Also enabled by \\$XPILER_NATIVE=1."
  in
  Arg.(value & flag & info [ "native" ] ~doc)

let store_dir_arg =
  let doc =
    "Durable knowledge store directory: the warm-start schedule DB, transposition \
     table and solver memo are loaded from it before translating and written through \
     (append-only WAL + snapshots) during it, so later processes warm-start from this \
     run's learning. Defaults to \\$XPILER_STORE_DIR when that is set. Persisted \
     entries carry their effect receipts: results and traces are identical with or \
     without the store — only evals-to-target and wall-clock change."
  in
  Arg.(value & opt (some string) None & info [ "store-dir" ] ~docv:"DIR" ~doc)

let no_store_arg =
  let doc = "Ignore \\$XPILER_STORE_DIR and run without the durable knowledge store." in
  Arg.(value & flag & info [ "no-store" ] ~doc)

(* CLI precedence: explicit flag > environment > off; --no-store vetoes both *)
let effective_store_dir store_dir no_store =
  if no_store then None
  else match store_dir with Some d -> Some d | None -> Xpiler_store.Store.env_dir ()

let trace_arg =
  let doc =
    "Write a JSONL trace journal of the translation to $(docv) (replay it with `xpiler \
     trace`)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_level_arg =
  let level_conv =
    let parse s =
      match Xpiler_obs.Tracer.level_of_string s with
      | Some l -> Ok l
      | None -> Error (`Msg (Printf.sprintf "unknown trace level %s (off|stages|detail)" s))
    in
    Arg.conv (parse, fun fmt l -> Format.pp_print_string fmt (Xpiler_obs.Tracer.level_to_string l))
  in
  let doc = "Trace level: off, stages (spans only) or detail (spans + metrics)." in
  Arg.(value & opt level_conv Xpiler_obs.Tracer.Detail & info [ "trace-level" ] ~docv:"LEVEL" ~doc)

let parse_shape op = function
  | None -> List.hd op.Opdef.shapes
  | Some s ->
    String.split_on_char ',' s
    |> List.map (fun kv ->
           match String.split_on_char '=' kv with
           | [ k; v ] -> (String.trim k, int_of_string (String.trim v))
           | _ -> failwith ("bad shape component " ^ kv))

let find_op name =
  match Registry.find name with
  | Some op -> op
  | None ->
    Printf.eprintf "unknown operator %s; try `xpiler list-ops`\n" name;
    exit 2

(* ---- translate ------------------------------------------------------------ *)

let translate op_name shape src dst tune seed jobs no_prune no_warm_start max_escalation
    no_rollback no_speculative_repair fault_scale native store_dir no_store trace
    trace_level =
  let op = find_op op_name in
  let shape = parse_shape op shape in
  let config =
    let base = if tune then Config.tuned else Config.default in
    let base = Config.with_seed base seed in
    let base = Config.with_jobs base jobs in
    let base =
      { base with
        Config.tuning_prune = not no_prune;
        tuning_warm_start = not no_warm_start;
        rollback = not no_rollback;
        speculative_repair = not no_speculative_repair;
        native_backend = native;
        store_dir = effective_store_dir store_dir no_store
      }
    in
    let base = Config.with_max_escalation base max_escalation in
    let base = Config.with_fault_scale base fault_scale in
    match trace with
    | Some sink -> Config.with_trace ~sink base trace_level
    | None -> base
  in
  Printf.printf "// source (%s):\n%s\n" (Platform.id_to_string src)
    (Idiom.source_text src op shape);
  let o = Xpiler.transcompile ~config ~src ~dst ~op ~shape () in
  Printf.printf "// status: %s\n" (Xpiler.status_to_string o.Xpiler.status);
  Printf.printf "// passes: %s\n"
    (String.concat " | " (List.map Xpiler_passes.Pass.describe o.Xpiler.specs_applied));
  Printf.printf "// repairs: %d attempted, %d succeeded\n" o.Xpiler.repairs_attempted
    o.Xpiler.repairs_succeeded;
  (match o.Xpiler.skipped_passes with
  | [] -> ()
  | skipped ->
    Printf.printf "// skipped (rolled back): %s\n"
      (String.concat " | " (List.map Xpiler_passes.Pass.describe skipped)));
  (match Ledger.escalated o.Xpiler.ledger with
  | [] -> ()
  | escalated ->
    print_string (Report.render (Ledger.report escalated)));
  Printf.printf "// modelled compile time: %.2f h\n"
    (Xpiler_util.Vclock.elapsed o.Xpiler.clock /. 3600.0);
  (match o.Xpiler.throughput with
  | Some t -> Printf.printf "// modelled throughput: %.3g ops/s\n" t
  | None -> ());
  (match trace with
  | Some path ->
    Printf.printf "// trace journal: %s (%d events)\n" path (List.length o.Xpiler.trace)
  | None -> ());
  match o.Xpiler.target_text with
  | Some text -> Printf.printf "\n// target (%s):\n%s" (Platform.id_to_string dst) text
  | None -> ()

let translate_cmd =
  let info = Cmd.info "translate" ~doc:"Transcompile an operator between platforms." in
  Cmd.v info
    Term.(
      const translate $ op_arg $ shape_arg $ src_arg $ dst_arg $ tune_arg $ seed_arg
      $ jobs_arg $ no_prune_arg $ no_warm_start_arg $ max_escalation_arg $ no_rollback_arg
      $ no_speculative_repair_arg $ fault_scale_arg $ native_arg $ store_dir_arg
      $ no_store_arg $ trace_arg $ trace_level_arg)

(* ---- show-source ----------------------------------------------------------- *)

let show_source op_name shape platform =
  let op = find_op op_name in
  let shape = parse_shape op shape in
  print_string (Idiom.source_text platform op shape)

let show_source_cmd =
  let info = Cmd.info "show-source" ~doc:"Print an operator's idiomatic source program." in
  let platform_pos =
    Arg.(required & pos 0 (some platform_conv) None & info [] ~docv:"PLATFORM")
  in
  Cmd.v info Term.(const show_source $ op_arg $ shape_arg $ platform_pos)

(* ---- list-ops --------------------------------------------------------------- *)

let list_ops () =
  List.iter
    (fun (op : Opdef.t) ->
      Printf.printf "%-22s %-12s shapes: %s\n" op.name (Opdef.class_name op.cls)
        (String.concat " | "
           (List.map
              (fun sh -> String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) sh))
              (List.filteri (fun i _ -> i < 2) op.shapes))))
    Registry.all;
  Printf.printf "(%d operators, %d benchmark cases)\n" (List.length Registry.all)
    (List.length (Registry.cases ()))

let list_ops_cmd =
  let info = Cmd.info "list-ops" ~doc:"List the benchmark operators." in
  Cmd.v info Term.(const list_ops $ const ())

(* ---- lint --------------------------------------------------------------------- *)

(* run the platform checker plus the static analyzer over idiom kernels; the
   same pre-validation stage the pipeline applies after every LLM pass *)
let lint_kernel ~platform ~extents kernel =
  let checker_diags =
    match Checker.compile (Platform.of_id platform) kernel with
    | Ok () -> []
    | Error es -> es
  in
  let analyzer_diags =
    Xpiler_analysis.Analyzer.analyze ~extents kernel
    |> List.map (fun (f : Xpiler_analysis.Analyzer.finding) -> f.Xpiler_analysis.Analyzer.diag)
  in
  checker_diags @ analyzer_diags

let lint op_filter shape platform_filter all =
  let ops =
    match (op_filter, all) with
    | Some name, _ -> [ find_op name ]
    | None, true -> Registry.all
    | None, false ->
      Printf.eprintf "lint: pass --op NAME or --all\n";
      exit 2
  in
  let platforms =
    match platform_filter with
    | Some p -> [ p ]
    | None -> List.map (fun (p : Platform.t) -> p.Platform.id) Platform.all
  in
  let dirty = ref 0 and checked = ref 0 in
  List.iter
    (fun (op : Opdef.t) ->
      let shape = parse_shape op shape in
      let extents =
        List.map (fun (b : Opdef.buffer_spec) -> (b.buf_name, b.size shape)) op.Opdef.buffers
      in
      List.iter
        (fun pid ->
          incr checked;
          let kernel = Idiom.source pid op shape in
          match lint_kernel ~platform:pid ~extents kernel with
          | [] -> ()
          | diags ->
            if List.exists Xpiler_ir.Diag.is_error diags then incr dirty;
            Printf.printf "%s @ %s:\n" op.name (Platform.id_to_string pid);
            List.iter (fun d -> Printf.printf "  %s\n" (Xpiler_ir.Diag.to_string d)) diags)
        platforms)
    ops;
  Printf.printf "%d kernels linted, %d with errors\n" !checked !dirty;
  if !dirty > 0 then exit 1

let lint_cmd =
  let info =
    Cmd.info "lint"
      ~doc:
        "Statically check kernels: platform compilation rules plus race, barrier, \
         bounds and def-use analysis."
  in
  let op_opt =
    let doc = "Operator to lint (default with --all: every operator)." in
    Arg.(value & opt (some string) None & info [ "op" ] ~docv:"OP" ~doc)
  in
  let platform_opt =
    let doc = "Platform whose idiom kernel to lint (default: all platforms)." in
    Arg.(value & opt (some platform_conv) None & info [ "on" ] ~docv:"PLATFORM" ~doc)
  in
  let all_flag =
    let doc = "Lint every registered operator." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  Cmd.v info Term.(const lint $ op_opt $ shape_arg $ platform_opt $ all_flag)

(* ---- trace ------------------------------------------------------------------- *)

(* replay a saved JSONL journal into the summary tables and, optionally,
   Chrome trace-event JSON loadable in chrome://tracing or Perfetto *)
let trace_replay journal chrome_out =
  match Xpiler_obs.Journal.read_file journal with
  | Error m ->
    Printf.eprintf "trace: cannot read %s: %s\n" journal m;
    exit 2
  | Ok events ->
    let summary = Xpiler_obs.Summary.of_events events in
    print_string (Obs_report.render summary);
    Printf.printf "\n%d events, %.2f modelled hours total\n" summary.Xpiler_obs.Summary.events
      (summary.Xpiler_obs.Summary.total_seconds /. 3600.0);
    (match chrome_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Xpiler_obs.Chrome.to_string events);
      close_out oc;
      Printf.printf "wrote Chrome trace JSON to %s (load in chrome://tracing or Perfetto)\n"
        path)

let trace_cmd =
  let info =
    Cmd.info "trace"
      ~doc:
        "Replay a trace journal (written by `translate --trace`) into summary tables and \
         Chrome trace-event JSON."
  in
  let journal_pos =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"JOURNAL.jsonl")
  in
  let chrome_opt =
    let doc = "Also export Chrome trace-event JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE" ~doc)
  in
  Cmd.v info Term.(const trace_replay $ journal_pos $ chrome_opt)

(* ---- metrics ----------------------------------------------------------------- *)

(* run a translation with the registry and the wall-clock profiler on, then
   print the registry snapshot and wall-vs-virtual stage tables; tuning is on
   by default so the cache/transposition meters have something to show *)
let metrics_run op_name shape src dst no_tune seed jobs fault_scale native store_dir
    no_store openmetrics_out json_out =
  let op = find_op op_name in
  let shape = parse_shape op shape in
  let config =
    let base = if no_tune then Config.default else Config.tuned in
    let base = Config.with_seed base seed in
    let base = Config.with_jobs base jobs in
    let base = Config.with_fault_scale base fault_scale in
    (* root-parallel search batches share the transposition table, which is
       what makes its hit/miss meters informative in a single run *)
    let mcts = { base.Config.mcts with Xpiler_tuning.Mcts.root_parallel = 4 } in
    { base with
      Config.profile = true;
      mcts;
      native_backend = native;
      store_dir = effective_store_dir store_dir no_store
    }
  in
  Xpiler_obs.Metrics.reset ();
  Xpiler_obs.Prof.reset ();
  let o = Xpiler.transcompile ~config ~src ~dst ~op ~shape () in
  Printf.printf "// %s: %s -> %s, status: %s%s\n\n" op.Opdef.name (Platform.id_to_string src)
    (Platform.id_to_string dst)
    (Xpiler.status_to_string o.Xpiler.status)
    (if no_tune then "" else " (tuned)");
  let samples = Xpiler_obs.Metrics.snapshot () in
  print_string (Obs_report.render_metrics samples);
  let prof = Xpiler_obs.Prof.report () in
  print_string (Obs_report.render_prof prof);
  (match openmetrics_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Xpiler_obs.Metrics.to_openmetrics samples);
    close_out oc;
    Printf.printf "wrote OpenMetrics text to %s\n" path);
  match json_out with
  | None -> ()
  | Some path ->
    let j =
      Xpiler_obs.Json.Obj
        [ ("metrics", Xpiler_obs.Metrics.to_json samples);
          ("profile", Xpiler_obs.Prof.to_json prof) ]
    in
    let oc = open_out path in
    output_string oc (Xpiler_obs.Json.to_string j);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote metrics JSON to %s\n" path

let metrics_cmd =
  let info =
    Cmd.info "metrics"
      ~doc:
        "Translate (with auto-tuning unless --no-tune) and print the metrics-registry \
         snapshot — cache hit rates, escalation rungs, SMT steps, pool usage — plus \
         wall-vs-virtual time per stage from the profiler."
  in
  let no_tune_flag =
    let doc = "Skip auto-tuning (the tuner is on by default here, unlike `translate`)." in
    Arg.(value & flag & info [ "no-tune" ] ~doc)
  in
  let openmetrics_opt =
    let doc = "Export the snapshot in OpenMetrics/Prometheus text format to $(docv)." in
    Arg.(value & opt (some string) None & info [ "openmetrics" ] ~docv:"FILE" ~doc)
  in
  let json_opt =
    let doc = "Export the snapshot and profiler report as a self-contained JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  Cmd.v info
    Term.(
      const metrics_run $ op_arg $ shape_arg $ src_arg $ dst_arg $ no_tune_flag $ seed_arg
      $ jobs_arg $ fault_scale_arg $ native_arg $ store_dir_arg $ no_store_arg
      $ openmetrics_opt $ json_opt)

(* ---- bench-diff -------------------------------------------------------------- *)

let bench_diff history eval_file tuning_file resilience_file repair_file threshold exact_only
    =
  let module BH = Xpiler_obs.Bench_history in
  let hist =
    match BH.load ~path:history () with
    | Ok h -> h
    | Error m ->
      Printf.eprintf "bench-diff: %s\n" m;
      exit 2
  in
  let regressions = ref 0 in
  let seen = ref 0 in
  let check bench path =
    if Sys.file_exists path then begin
      incr seen;
      match BH.of_bench_file ~bench path with
      | Error m ->
        Printf.eprintf "bench-diff: %s\n" m;
        exit 2
      | Ok entry ->
        Printf.printf "%s (%s%s):\n" path bench (if entry.BH.smoke then ", smoke" else "");
        let verdicts = BH.diff ~threshold_scale:threshold ~exact_only ~history:hist entry in
        if verdicts = [] then Printf.printf "  no spec'd metrics\n"
        else
          List.iter
            (fun (v : BH.verdict) ->
              if v.BH.regressed then incr regressions;
              Printf.printf "  %s %-24s %s\n"
                (if v.BH.regressed then "REGRESSION" else "ok        ")
                v.BH.metric v.BH.detail)
            verdicts
    end
  in
  check "eval" eval_file;
  check "tuning" tuning_file;
  check "resilience" resilience_file;
  check "repair" repair_file;
  if !seen = 0 then begin
    Printf.eprintf "bench-diff: no BENCH_*.json found (looked for %s, %s, %s, %s)\n" eval_file
      tuning_file resilience_file repair_file;
    exit 2
  end;
  if !regressions > 0 then begin
    Printf.printf "%d regression(s) against %s (%d history entries)\n" !regressions history
      (List.length hist);
    exit 1
  end
  else Printf.printf "no regressions against %s (%d history entries)\n" history (List.length hist)

let bench_diff_cmd =
  let info =
    Cmd.info "bench-diff"
      ~doc:
        "Compare current BENCH_eval.json / BENCH_tuning.json / BENCH_resilience.json / \
         BENCH_repair.json headline numbers against results/history.jsonl and fail \
         (exit 1) on regressions beyond the per-metric thresholds."
  in
  let history_opt =
    let doc = "History file (JSONL, appended by the bench executables)." in
    Arg.(value & opt string "results/history.jsonl" & info [ "history" ] ~docv:"FILE" ~doc)
  in
  let eval_opt =
    let doc = "Evaluation-engine bench report." in
    Arg.(value & opt string "BENCH_eval.json" & info [ "eval" ] ~docv:"FILE" ~doc)
  in
  let tuning_opt =
    let doc = "Auto-tuner bench report." in
    Arg.(value & opt string "BENCH_tuning.json" & info [ "tuning" ] ~docv:"FILE" ~doc)
  in
  let resilience_opt =
    let doc = "Resilience bench report." in
    Arg.(value & opt string "BENCH_resilience.json" & info [ "resilience" ] ~docv:"FILE" ~doc)
  in
  let repair_opt =
    let doc = "Repair/SMT hot-path bench report." in
    Arg.(value & opt string "BENCH_repair.json" & info [ "repair" ] ~docv:"FILE" ~doc)
  in
  let threshold_opt =
    let doc =
      "Scale factor on every per-metric regression threshold (2.0 = twice as tolerant, \
       0.5 = twice as strict)."
    in
    Arg.(value & opt float 1.0 & info [ "threshold" ] ~docv:"SCALE" ~doc)
  in
  let exact_only_flag =
    let doc =
      "Check only deterministic (schedule- and wall-clock-independent) metrics, as the \
       bench smoke gates do; wall-clock throughputs are skipped."
    in
    Arg.(value & flag & info [ "exact-only" ] ~doc)
  in
  Cmd.v info
    Term.(
      const bench_diff $ history_opt $ eval_opt $ tuning_opt $ resilience_opt $ repair_opt
      $ threshold_opt $ exact_only_flag)

(* ---- cache ------------------------------------------------------------------- *)

let cache clear =
  let module Native = Xpiler_machine.Native in
  if clear then begin
    let removed = Native.cache_clear () in
    Printf.printf "removed %d file%s from %s\n" removed
      (if removed = 1 then "" else "s")
      (Native.cache_dir ())
  end
  else begin
    let info = Native.cache_info () in
    Printf.printf "dir:    %s\n" info.Native.dir;
    Printf.printf "files:  %d\n" info.Native.files;
    Printf.printf "bytes:  %d (%.1f MiB)\n" info.Native.bytes
      (float_of_int info.Native.bytes /. (1024.0 *. 1024.0));
    Printf.printf "limit:  %d (%.1f MiB)\n" info.Native.limit_bytes
      (float_of_int info.Native.limit_bytes /. (1024.0 *. 1024.0))
  end

let cache_cmd =
  let info =
    Cmd.info "cache"
      ~doc:
        "Inspect the native-backend artifact cache (default: print dir, file count, \
         size, and the eviction limit) or empty it with $(b,--clear). The cache lives \
         under \\$XPILER_CACHE_DIR (default ~/.cache/xpiler) and is safe to delete at \
         any time; the backend recompiles on the next miss."
  in
  let clear_flag =
    let doc = "Remove every cached artifact and kept generated source." in
    Arg.(value & flag & info [ "clear" ] ~doc)
  in
  Cmd.v info Term.(const cache $ clear_flag)

(* ---- store ------------------------------------------------------------------- *)

let store_action dir action =
  let module Store = Xpiler_store.Store in
  let dir =
    match (dir, Store.env_dir ()) with
    | Some d, _ -> d
    | None, Some d -> d
    | None, None ->
      Printf.eprintf "store: no directory (pass --dir or set $XPILER_STORE_DIR)\n";
      exit 2
  in
  let t =
    match Store.open_store ~dir () with
    | Ok t -> t
    | Error m ->
      Printf.eprintf "store: %s\n" m;
      exit 2
  in
  let print_counts label (c : Store.counts) =
    Printf.printf "%-10s schedule %d | transposition %d | solver memo %d  (total %d)\n" label
      c.Store.schedule c.Store.transposition c.Store.solver_memo (Store.total c)
  in
  match action with
  | `Stats ->
    let info = Store.scan t in
    Printf.printf "dir:    %s\n" info.Store.info_dir;
    Printf.printf "shards: %d\n" info.Store.info_shards;
    print_counts "snapshot:" info.Store.snapshot_records;
    print_counts "wal:" info.Store.wal_records;
    Printf.printf "bytes:  %d (%.1f KiB)\n" info.Store.bytes
      (float_of_int info.Store.bytes /. 1024.0);
    if info.Store.damaged then
      Printf.printf "damaged: yes (torn tails load as a valid prefix; compact to heal)\n"
  | `Compact -> (
    match Store.compact t with
    | Ok s ->
      Printf.printf "compacted %d record(s) into %d (%d bytes) in %s\n" s.Store.records_in
        s.Store.records_out s.Store.bytes dir
    | Error m ->
      Printf.eprintf "store: %s\n" m;
      exit 2)
  | `Clear ->
    let removed = Store.clear_files t in
    Printf.printf "removed %d shard file%s from %s\n" removed
      (if removed = 1 then "" else "s")
      dir

let store_cmd =
  let info =
    Cmd.info "store"
      ~doc:
        "Inspect the durable knowledge store ($(b,stats), the default), fold its \
         write-ahead logs into fresh snapshots ($(b,compact)), or delete its contents \
         ($(b,clear)). The store persists the warm-start schedule DB, transposition \
         table and solver memo under \\$XPILER_STORE_DIR (or $(b,--dir)); it is safe \
         to delete at any time — later runs simply start cold."
  in
  let action_pos =
    let action_conv =
      Arg.enum [ ("stats", `Stats); ("compact", `Compact); ("clear", `Clear) ]
    in
    Arg.(value & pos 0 action_conv `Stats & info [] ~docv:"ACTION")
  in
  let dir_opt =
    let doc = "Store directory (default: \\$XPILER_STORE_DIR)." in
    Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  Cmd.v info Term.(const store_action $ dir_opt $ action_pos)

(* ---- manual ------------------------------------------------------------------ *)

let manual platform query =
  List.iter
    (fun (e : Xpiler_manual.Corpus.entry) -> Printf.printf "%-40s %s\n" e.id e.body)
    (Xpiler_manual.Corpus.search platform query 5)

let manual_cmd =
  let info = Cmd.info "manual" ~doc:"Search a platform's programming manual (BM25)." in
  let platform_pos =
    Arg.(required & pos 0 (some platform_conv) None & info [] ~docv:"PLATFORM")
  in
  let query_pos = Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v info Term.(const manual $ platform_pos $ query_pos)

let () =
  let info = Cmd.info "xpiler" ~version:"1.0.0" ~doc:"Neural-symbolic tensor-program transcompiler." in
  exit
    (Cmd.eval
       (Cmd.group info
          [ translate_cmd; show_source_cmd; list_ops_cmd; lint_cmd; trace_cmd; metrics_cmd;
            bench_diff_cmd; cache_cmd; store_cmd; manual_cmd ]))
