(* Static analyzer: the four check classes on seeded neural-oracle faults,
   zero false positives on every golden kernel, and the static fast path
   through localization/repair. *)

open Xpiler_ir
open Xpiler_machine
open Xpiler_ops
open Xpiler_neural
module A = Xpiler_analysis.Analyzer
module Rng = Xpiler_util.Rng
module Vclock = Xpiler_util.Vclock

let rng seed = Rng.create seed

let extents_of (op : Opdef.t) shape =
  List.map (fun (b : Opdef.buffer_spec) -> (b.buf_name, b.size shape)) op.Opdef.buffers

let has_check c fs = List.exists (fun (f : A.finding) -> f.A.check = c) fs

(* the paper's barrier kernel: reverse through a shared tile *)
let reversal ~sync =
  let open Expr.Infix in
  Kernel.make ~name:"rev"
    ~params:[ Builder.buffer "inp"; Builder.buffer "out" ]
    ~launch:[ (Axis.Thread_x, 64) ]
    [ Builder.alloc "tile" Scope.Shared 64;
      Builder.par_for Axis.Thread_x "threadIdx.x" (int 64)
        ([ Builder.store "tile" (v "threadIdx.x") (load "inp" (v "threadIdx.x")) ]
        @ (if sync then [ Builder.sync ] else [])
        @ [ Builder.store "out" (v "threadIdx.x") (load "tile" (int 63 - v "threadIdx.x")) ])
    ]

let rev_extents = [ ("inp", 64); ("out", 64) ]

(* ---- no false positives ------------------------------------------------------ *)

(* every golden idiom kernel, every operator, every platform: silence.
   This is the same sweep `dune build @lint` runs through the CLI. *)
let test_goldens_clean () =
  List.iter
    (fun (op : Opdef.t) ->
      let shape = List.hd op.Opdef.shapes in
      let extents = extents_of op shape in
      List.iter
        (fun (p : Platform.t) ->
          let k = Idiom.source p.Platform.id op shape in
          match A.analyze ~extents k with
          | [] -> ()
          | fs ->
            Alcotest.failf "%s @ %s: %s" op.name
              (Platform.id_to_string p.Platform.id)
              (String.concat "; " (List.map A.finding_to_string fs)))
        Platform.all)
    Registry.all

let test_sync_version_clean () =
  Alcotest.(check int) "no findings" 0 (List.length (A.analyze ~extents:rev_extents (reversal ~sync:true)))

(* ---- check 1: data race (missing barrier) ----------------------------------- *)

let test_race_missing_sync () =
  match Fault.inject_sync (rng 1) (reversal ~sync:true) with
  | None -> Alcotest.fail "no sync site"
  | Some (k', f) ->
    Alcotest.(check string) "fault class" "omitted a barrier" f.Fault.description;
    let fs = A.errors (A.analyze ~extents:rev_extents k') in
    Alcotest.(check bool) "race flagged" true (has_check A.Race fs);
    let race = List.find (fun (x : A.finding) -> x.A.check = A.Race) fs in
    Alcotest.(check bool) "parallelism category" true (race.A.diag.Diag.category = `Parallelism);
    Alcotest.(check bool) "names the shared tile" true (List.mem "tile" race.A.buffers);
    Alcotest.(check bool) "store sites attached" true (race.A.sites <> [])

(* block-level axes never share Shared-scope storage: binding the same loop
   to blockIdx.x must NOT race (each block owns its tile) *)
let test_no_race_across_blocks () =
  let open Expr.Infix in
  let k =
    Kernel.make ~name:"blocks"
      ~params:[ Builder.buffer "inp"; Builder.buffer "out" ]
      ~launch:[ (Axis.Block_x, 64) ]
      [ Builder.alloc "tile" Scope.Shared 64;
        Builder.par_for Axis.Block_x "blockIdx.x" (int 64)
          [ Builder.store "tile" (int 0) (load "inp" (v "blockIdx.x"));
            Builder.store "out" (v "blockIdx.x") (load "tile" (int 0))
          ]
      ]
  in
  Alcotest.(check int) "clean" 0 (List.length (A.analyze ~extents:rev_extents k))

(* ---- check 2: barrier divergence --------------------------------------------- *)

let divergent_sync =
  let open Expr.Infix in
  Kernel.make ~name:"div"
    ~params:[ Builder.buffer "inp"; Builder.buffer "out" ]
    ~launch:[ (Axis.Thread_x, 64) ]
    [ Builder.alloc "tile" Scope.Shared 64;
      Builder.par_for Axis.Thread_x "t" (int 64)
        [ Builder.store "tile" (v "t") (load "inp" (v "t"));
          Builder.if_ (v "t" < int 32) [ Builder.sync ];
          Builder.store "out" (v "t") (load "tile" (v "t"))
        ]
    ]

let test_barrier_divergence () =
  let fs = A.errors (A.analyze ~extents:rev_extents divergent_sync) in
  Alcotest.(check bool) "flagged" true (has_check A.Barrier_divergence fs);
  (* the interpreter is sequential and silently tolerates the divergent
     barrier — exactly the bug class only the static check can see *)
  let args =
    [ ("inp", Interp.Buf (Tensor.random (rng 3) 64)); ("out", Interp.Buf (Tensor.create 64)) ]
  in
  (match Interp.run divergent_sync args with
  | _ -> ()
  | exception _ -> Alcotest.fail "interpreter should tolerate the divergent sync");
  (* ... and it surfaces as a modelled runtime error for localization *)
  let report = Xpiler_repair.Localize.of_findings fs in
  match report.Xpiler_repair.Localize.runtime_error with
  | Some msg ->
    Alcotest.(check bool) "modelled deadlock" true
      (String.length msg >= 17 && String.sub msg 0 17 = "modelled deadlock")
  | None -> Alcotest.fail "barrier finding must produce a modelled runtime error"

(* ---- check 3: out-of-bounds --------------------------------------------------- *)

let relu = Registry.find_exn "relu"
let relu_shape = List.hd relu.Opdef.shapes
let relu_vnni () = Idiom.source Platform.Vnni relu relu_shape
let relu_extents = extents_of relu relu_shape

let test_oob_index_fault () =
  match Fault.inject_index (rng 3) (relu_vnni ()) with
  | None -> Alcotest.fail "no store site"
  | Some (k', _) ->
    let fs = A.errors (A.analyze ~extents:relu_extents k') in
    Alcotest.(check bool) "oob flagged" true (has_check A.Out_of_bounds fs);
    let f = List.find (fun (x : A.finding) -> x.A.check = A.Out_of_bounds) fs in
    Alcotest.(check bool) "memory category" true (f.A.diag.Diag.category = `Memory);
    Alcotest.(check bool) "repair sites attached" true (f.A.sites <> [])

let test_oob_bound_fault () =
  (* find a seed that grows a loop extent (shrinking one is benign) *)
  let rec find seed =
    if seed > 50 then Alcotest.fail "no growing bound fault in 50 seeds"
    else
      match Fault.inject_bound (rng seed) (relu_vnni ()) with
      | Some (k', f)
        when f.Fault.description = "loop bound off by 1"
             || f.Fault.description = "loop bound off by 2" -> k'
      | _ -> find (seed + 1)
  in
  let k' = find 0 in
  let fs = A.errors (A.analyze ~extents:relu_extents k') in
  Alcotest.(check bool) "oob flagged" true (has_check A.Out_of_bounds fs)

(* a guard that excludes the violating points must silence the report *)
let test_oob_guard_respected () =
  let open Expr.Infix in
  let k =
    Kernel.make ~name:"guarded"
      ~params:[ Builder.buffer "inp"; Builder.buffer "out" ]
      [ Builder.for_ "i" (int 64)
          [ Builder.if_ (v "i" < int 63)
              [ Builder.store "out" (v "i") (load "inp" (v "i" + int 1)) ]
          ]
      ]
  in
  let unguarded =
    Kernel.make ~name:"oob"
      ~params:[ Builder.buffer "inp"; Builder.buffer "out" ]
      [ Builder.for_ "i" (int 64)
          [ Builder.store "out" (v "i") (load "inp" (v "i" + int 1)) ]
      ]
  in
  let ex = [ ("inp", 64); ("out", 64) ] in
  Alcotest.(check int) "guarded clean" 0 (List.length (A.analyze ~extents:ex k));
  Alcotest.(check bool) "unguarded flagged" true
    (has_check A.Out_of_bounds (A.errors (A.analyze ~extents:ex unguarded)))

(* ---- check 4: def-before-use on staged buffers -------------------------------- *)

let gemm = Registry.find_exn "gemm"
let gemm_shape = List.hd gemm.Opdef.shapes

let test_uninit_staged_read () =
  let k = Idiom.source Platform.Bang gemm gemm_shape in
  let ex = extents_of gemm gemm_shape in
  (* seed 0 elides a staging copy-in on the bang gemm (verified stable: the
     fault injector is deterministic per seed) *)
  match Fault.inject (rng 0) ~target:Platform.bang Fault.Structural Fault.Memory k with
  | Some (k', f) ->
    Alcotest.(check string) "fault class" "omitted a staging copy" f.Fault.description;
    let fs = A.errors (A.analyze ~extents:ex k') in
    Alcotest.(check bool) "uninit flagged" true (has_check A.Uninit_read fs)
  | None -> Alcotest.fail "no memory fault site"

(* ---- static localization and repair ------------------------------------------- *)

(* analyzer findings alone localize a missing-sync fault: failing buffer and
   candidate sites appear in the report with no probe-execution search *)
let test_localize_without_probes () =
  match Fault.inject_sync (rng 1) (reversal ~sync:true) with
  | None -> Alcotest.fail "no sync site"
  | Some (k', _) ->
    let fs = A.errors (A.analyze ~extents:rev_extents k') in
    let report = Xpiler_repair.Localize.of_findings fs in
    Alcotest.(check bool) "tile implicated" true
      (List.mem "tile" report.Xpiler_repair.Localize.failing_buffers);
    Alcotest.(check bool) "sites ranked" true (report.Xpiler_repair.Localize.sites <> [])

(* the static fast path repairs the same fault strictly cheaper: analyzer
   sites skip the 240s-per-round probe localization (Vclock charges 30s) *)
let test_static_repair_cheaper () =
  match Fault.inject_index (rng 3) (relu_vnni ()) with
  | None -> Alcotest.fail "no store site"
  | Some (broken, _) ->
    let findings = A.errors (A.analyze ~extents:relu_extents broken) in
    Alcotest.(check bool) "statically diagnosed" true (findings <> []);
    let c_static = Vclock.create () and c_dyn = Vclock.create () in
    let repaired = function
      | Xpiler_repair.Repairer.Repaired { kernel; _ } -> Some kernel
      | Xpiler_repair.Repairer.Gave_up _ -> None
    in
    let r_static =
      repaired
        (Xpiler_repair.Repairer.repair ~static:findings ~clock:c_static
           ~platform:Platform.vnni ~op:relu ~shape:relu_shape broken)
    in
    let r_dyn =
      repaired
        (Xpiler_repair.Repairer.repair ~clock:c_dyn ~platform:Platform.vnni ~op:relu
           ~shape:relu_shape broken)
    in
    (match (r_static, r_dyn) with
    | Some ks, Some kd ->
      Alcotest.(check bool) "static fix passes" true
        (Unit_test.check relu relu_shape ks = Unit_test.Pass);
      Alcotest.(check bool) "dynamic fix passes" true
        (Unit_test.check relu relu_shape kd = Unit_test.Pass)
    | _ -> Alcotest.fail "both paths must repair");
    Alcotest.(check bool)
      (Printf.sprintf "static (%.0fs) strictly cheaper than dynamic (%.0fs)"
         (Vclock.elapsed c_static) (Vclock.elapsed c_dyn))
      true
      (Vclock.elapsed c_static < Vclock.elapsed c_dyn)

(* the pre-validation stage must not change what the pipeline can translate *)
let test_pipeline_outcome_parity () =
  let cases =
    [ (Platform.Cuda, Platform.Bang, "gemm"); (Platform.Cuda, Platform.Vnni, "relu");
      (Platform.Bang, Platform.Cuda, "softmax") ]
  in
  List.iter
    (fun (src, dst, name) ->
      let op = Registry.find_exn name in
      let shape = List.hd op.Opdef.shapes in
      let run config = Xpiler_core.Xpiler.transcompile ~config ~src ~dst ~op ~shape () in
      let with_a = run Xpiler_core.Config.default in
      let without_a = run Xpiler_core.Config.without_analysis in
      Alcotest.(check string)
        (Printf.sprintf "%s %s->%s" name (Platform.id_to_string src) (Platform.id_to_string dst))
        (Xpiler_core.Xpiler.status_to_string without_a.Xpiler_core.Xpiler.status)
        (Xpiler_core.Xpiler.status_to_string with_a.Xpiler_core.Xpiler.status))
    cases

(* statically-diagnosed programs skip the interpreter: the Static_analysis
   stage is charged, and on analyzer-clean validations nothing else changes *)
let test_vclock_stage_charged () =
  let op = Registry.find_exn "gemm" in
  let shape = List.hd op.Opdef.shapes in
  let o =
    Xpiler_core.Xpiler.transcompile ~config:Xpiler_core.Config.default ~src:Platform.Cuda
      ~dst:Platform.Bang ~op ~shape ()
  in
  Alcotest.(check bool) "static-analysis stage charged" true
    (Vclock.stage_total o.Xpiler_core.Xpiler.clock Vclock.Static_analysis > 0.0)

let () =
  Alcotest.run "analysis"
    [ ( "clean",
        [ Alcotest.test_case "all goldens lint clean" `Quick test_goldens_clean;
          Alcotest.test_case "reversal with barrier is clean" `Quick test_sync_version_clean;
          Alcotest.test_case "no race across block axes" `Quick test_no_race_across_blocks;
          Alcotest.test_case "guards silence oob" `Quick test_oob_guard_respected
        ] );
      ( "faults",
        [ Alcotest.test_case "missing sync races" `Quick test_race_missing_sync;
          Alcotest.test_case "divergent barrier deadlocks" `Quick test_barrier_divergence;
          Alcotest.test_case "index fault out of bounds" `Quick test_oob_index_fault;
          Alcotest.test_case "bound fault out of bounds" `Quick test_oob_bound_fault;
          Alcotest.test_case "elided staging copy uninit" `Quick test_uninit_staged_read
        ] );
      ( "repair",
        [ Alcotest.test_case "localize without probes" `Quick test_localize_without_probes;
          Alcotest.test_case "static repair strictly cheaper" `Quick test_static_repair_cheaper;
          Alcotest.test_case "pipeline outcome parity" `Quick test_pipeline_outcome_parity;
          Alcotest.test_case "vclock stage charged" `Quick test_vclock_stage_charged
        ] )
    ]
