(* Repair/SMT hot-path guarantees: the overhauled stack — incremental
   watched-constraint solver, process-global solver + verdict memos,
   speculative parallel candidate testing — changes wall-clock time, never
   outcomes or journals. The three contracts asserted here:

   - jobs invariance: with speculative repair on, jobs=1 and jobs=4 produce
     byte-identical trace journals (lowest-index-wins selection + master-side
     canonical effect replay);
   - cold vs warm: re-running a traced translation against warm memos yields
     a byte-identical journal (memo entries carry their original search
     receipts, and the verdict memo bypasses itself while tracing);
   - speculative vs serial: both engines accept the same repair (the first
     passing candidate in batch order). *)

open Xpiler_machine
open Xpiler_ops
open Xpiler_neural
open Xpiler_core
module Solver = Xpiler_smt.Solver
module Memo = Xpiler_smt.Memo
module Repairer = Xpiler_repair.Repairer
module Pool = Xpiler_util.Pool
module Journal = Xpiler_obs.Journal

let rng seed = Xpiler_util.Rng.create seed
let gemm = Registry.find_exn "gemm"
let gemm_shape = List.hd gemm.Opdef.shapes

let run ~config =
  Xpiler.transcompile ~config ~src:Platform.Cuda ~dst:Platform.Bang ~op:gemm ~shape:gemm_shape ()

let journal o = Journal.encode o.Xpiler.trace

(* force real worker domains even on a single-core host, where the pool
   otherwise clamps to inline execution and the test would be vacuous *)
let with_max_domains n f =
  let prev = Pool.get_max_domains () in
  Pool.set_max_domains n;
  Fun.protect ~finally:(fun () -> Pool.set_max_domains prev) f

let traced ?(seed = 11) ~jobs scale =
  Config.with_jobs
    (Config.with_trace (Config.with_fault_scale (Config.with_seed Config.default seed) scale)
       Xpiler_obs.Tracer.Detail)
    jobs

let cold () =
  Memo.clear ();
  Memo.reset_stats ();
  Repairer.reset_verdict_memo ()

(* [Unit_test.reference_outputs_seeded] caches the serial reference run
   process-globally (pre-overhaul behaviour): a cold-cache run emits the
   reference's interp.* trace counts, a warm one doesn't. Journal
   comparisons must therefore compare runs on equal cache footing — warm
   the reference entries for a config once, then compare. *)
let warm_refs config =
  cold ();
  ignore (run ~config)

let test_jobs_invariant_journal () =
  with_max_domains 4 @@ fun () ->
  warm_refs (traced ~jobs:1 20.0);
  let mk jobs =
    cold ();
    run ~config:(traced ~jobs 20.0)
  in
  let o1 = mk 1 and o4 = mk 4 in
  Alcotest.(check bool) "speculation actually ran" true
    ((Repairer.speculation_totals ()).Repairer.batches > 0);
  Alcotest.(check bool) "same status" true (o1.Xpiler.status = o4.Xpiler.status);
  Alcotest.(check bool) "byte-identical target text" true
    (o1.Xpiler.target_text = o4.Xpiler.target_text);
  Alcotest.(check string) "byte-identical journal" (journal o1) (journal o4)

let test_cold_vs_warm_journal () =
  let config = traced ~seed:5 ~jobs:1 18.0 in
  warm_refs config;
  cold ();
  let o_cold = run ~config in
  let hits_after_cold = Memo.hits () in
  let o_warm = run ~config in
  Alcotest.(check bool) "warm run hit the solver memo" true
    (Memo.hits () > hits_after_cold);
  Alcotest.(check bool) "same status" true (o_cold.Xpiler.status = o_warm.Xpiler.status);
  Alcotest.(check string) "byte-identical journal" (journal o_cold) (journal o_warm)

let test_speculative_matches_serial_pipeline () =
  let base jobs speculative =
    Config.with_jobs
      { (Config.with_fault_scale (Config.with_seed Config.default 7) 20.0) with
        Config.speculative_repair = speculative
      }
      jobs
  in
  cold ();
  let serial = run ~config:(base 1 false) in
  cold ();
  let spec = with_max_domains 4 (fun () -> run ~config:(base 4 true)) in
  Alcotest.(check bool) "same status" true (serial.Xpiler.status = spec.Xpiler.status);
  Alcotest.(check bool) "byte-identical target text" true
    (serial.Xpiler.target_text = spec.Xpiler.target_text);
  Alcotest.(check bool) "same ledger" true (serial.Xpiler.ledger = spec.Xpiler.ledger)

(* direct repairer-level equality on injected single faults: the speculative
   engine must select exactly the candidate serial first-pass-wins testing
   accepts, with the same test count *)
let test_speculative_matches_serial_repairer () =
  with_max_domains 4 @@ fun () ->
  let checked = ref 0 in
  List.iter
    (fun seed ->
      match Fault.inject_bound (rng seed) (Idiom.source Platform.Cuda gemm gemm_shape) with
      | None -> ()
      | Some (broken, _) ->
        cold ();
        let serial =
          Repairer.repair ~platform:Platform.cuda ~op:gemm ~shape:gemm_shape broken
        in
        cold ();
        let spec =
          Repairer.repair ~speculative:true ~jobs:4 ~platform:Platform.cuda ~op:gemm
            ~shape:gemm_shape broken
        in
        incr checked;
        Alcotest.(check bool)
          (Printf.sprintf "identical outcome for injected fault (seed %d)" seed)
          true
          (serial = spec))
    [ 0; 1; 2; 3; 5; 7; 11 ];
  Alcotest.(check bool) "at least one fault exercised" true (!checked > 0)

(* the fused one-run oracle must agree with the two-run path it replaces *)
let test_fused_oracle_matches_check () =
  let clean = Idiom.source Platform.Bang gemm gemm_shape in
  Alcotest.(check bool) "clean kernel: pass with zero mismatches" true
    (Unit_test.check_scored gemm gemm_shape clean = (Unit_test.Pass, 0));
  let exercised = ref 0 in
  List.iter
    (fun seed ->
      match Fault.inject_bound (rng seed) (Idiom.source Platform.Cuda gemm gemm_shape) with
      | None -> ()
      | Some (broken, _) ->
        incr exercised;
        let fused, score = Unit_test.check_scored gemm gemm_shape broken in
        let plain = Unit_test.check ~trials:1 gemm gemm_shape broken in
        Alcotest.(check bool)
          (Printf.sprintf "verdicts agree (seed %d)" seed)
          true (fused = plain);
        if fused <> Unit_test.Pass then
          Alcotest.(check bool)
            (Printf.sprintf "failing candidate has a positive score (seed %d)" seed)
            true (score > 0))
    [ 0; 1; 2; 3; 5 ];
  Alcotest.(check bool) "at least one fault exercised" true (!exercised > 0)

let () =
  Alcotest.run "repair-hotpath"
    [ ( "determinism",
        [ Alcotest.test_case "jobs=1 vs jobs=4 byte-identical journal" `Slow
            test_jobs_invariant_journal;
          Alcotest.test_case "cold vs warm byte-identical journal" `Slow
            test_cold_vs_warm_journal;
          Alcotest.test_case "speculative matches serial (pipeline)" `Slow
            test_speculative_matches_serial_pipeline;
          Alcotest.test_case "speculative matches serial (repairer)" `Quick
            test_speculative_matches_serial_repairer
        ] );
      ( "oracle",
        [ Alcotest.test_case "fused check+score matches check" `Quick
            test_fused_oracle_matches_check
        ] )
    ]
