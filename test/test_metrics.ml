(* Observability-layer guarantees: the typed metrics registry, the wall-clock
   profiler and the bench-history watchdog. The two load-bearing invariants —
   the reasons this layer is safe to leave on in production — are (1) the
   stable-only registry snapshot is byte-identical across --jobs values, and
   (2) the profiler stream is fully segregated from the tracer, so golden
   journals do not change when profiling is enabled. *)

open Xpiler_machine
open Xpiler_ops
open Xpiler_tuning
open Xpiler_core
module Pool = Xpiler_util.Pool
module Json = Xpiler_obs.Json
module Event = Xpiler_obs.Event
module Tracer = Xpiler_obs.Tracer
module Journal = Xpiler_obs.Journal
module Summary = Xpiler_obs.Summary
module Metrics = Xpiler_obs.Metrics
module Prof = Xpiler_obs.Prof
module BH = Xpiler_obs.Bench_history

let gemm = Registry.find_exn "gemm"
let gemm_shape = [ ("m", 32); ("n", 64); ("k", 64) ]
let serial () = gemm.Opdef.serial gemm_shape

let buffer_sizes =
  List.map (fun (b : Opdef.buffer_spec) -> (b.buf_name, b.size gemm_shape)) gemm.Opdef.buffers

let find_sample name labels samples =
  List.find_opt
    (fun (s : Metrics.sample) -> s.Metrics.name = name && s.Metrics.labels = labels)
    samples

let counter_value name labels samples =
  match find_sample name labels samples with
  | Some { Metrics.value = Metrics.Vcounter n; _ } -> Some n
  | _ -> None

let gauge_value name labels samples =
  match find_sample name labels samples with
  | Some { Metrics.value = Metrics.Vgauge v; _ } -> Some v
  | _ -> None

let hist_value name labels samples =
  match find_sample name labels samples with
  | Some { Metrics.value = Metrics.Vhist h; _ } -> Some h
  | _ -> None

(* ---- registry basics ---------------------------------------------------- *)

let test_counter_gauge_histogram () =
  let c = Metrics.counter ~help:"test counter" "testm_basic_total" in
  let g = Metrics.gauge "testm_basic_gauge" in
  let h = Metrics.histogram ~bounds:[| 1.0; 2.0; 5.0 |] "testm_basic_hist" in
  Metrics.inc c;
  Metrics.inc ~n:4 c;
  Metrics.set g 2.5;
  Metrics.add g 1.25;
  List.iter (Metrics.observe h) [ 0.5; 1.5; 10.0 ];
  let s = Metrics.snapshot () in
  Alcotest.(check (option int)) "counter total" (Some 5) (counter_value "testm_basic_total" [] s);
  Alcotest.(check (option (float 1e-9))) "gauge value" (Some 3.75)
    (gauge_value "testm_basic_gauge" [] s);
  (match hist_value "testm_basic_hist" [] s with
  | None -> Alcotest.fail "histogram sample missing"
  | Some h ->
    Alcotest.(check int) "observations" 3 h.Metrics.count;
    Alcotest.(check (array int)) "bucket counts" [| 1; 1; 0; 1 |] h.Metrics.counts;
    Alcotest.(check (float 1e-9)) "sum" 12.0 h.Metrics.sum;
    Alcotest.(check (float 1e-9)) "min" 0.5 h.Metrics.hmin;
    Alcotest.(check (float 1e-9)) "max" 10.0 h.Metrics.hmax);
  (* registering the same (name, labels) again returns the same handle *)
  Metrics.inc (Metrics.counter "testm_basic_total");
  Alcotest.(check (option int)) "interned handle" (Some 6)
    (counter_value "testm_basic_total" [] (Metrics.snapshot ()))

let test_labels () =
  (* labels sort by key at registration, so insertion order is irrelevant *)
  let a = Metrics.counter ~labels:[ ("z", "1"); ("a", "2") ] "testm_labeled_total" in
  let b = Metrics.counter ~labels:[ ("a", "2"); ("z", "9") ] "testm_labeled_total" in
  Metrics.inc a;
  Metrics.inc ~n:2 b;
  let s = Metrics.snapshot () in
  Alcotest.(check (option int)) "series a" (Some 1)
    (counter_value "testm_labeled_total" [ ("a", "2"); ("z", "1") ] s);
  Alcotest.(check (option int)) "series b" (Some 2)
    (counter_value "testm_labeled_total" [ ("a", "2"); ("z", "9") ] s)

let test_kind_conflict () =
  ignore (Metrics.counter "testm_conflict_total");
  let raised =
    try
      ignore (Metrics.gauge "testm_conflict_total");
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "name reuse across kinds raises" true raised

let test_disabled_noop () =
  let c = Metrics.counter "testm_disabled_total" in
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled true)
    (fun () ->
      Metrics.inc c;
      Metrics.set_enabled false;
      Alcotest.(check bool) "reports disabled" false (Metrics.is_enabled ());
      Metrics.inc ~n:100 c);
  Alcotest.(check (option int)) "updates dropped while disabled" (Some 1)
    (counter_value "testm_disabled_total" [] (Metrics.snapshot ()))

let test_stable_only_filter () =
  let stable = Metrics.counter "testm_stable_total" in
  let unstable = Metrics.counter ~stable:false "testm_unstable_total" in
  Metrics.inc stable;
  Metrics.inc unstable;
  let s = Metrics.snapshot ~stable_only:true () in
  Alcotest.(check (option int)) "stable kept" (Some 1) (counter_value "testm_stable_total" [] s);
  Alcotest.(check (option int)) "unstable dropped" None
    (counter_value "testm_unstable_total" [] s);
  Alcotest.(check bool) "pool metrics dropped" true
    (not
       (List.exists
          (fun (x : Metrics.sample) ->
            String.length x.Metrics.name >= 12 && String.sub x.Metrics.name 0 12 = "xpiler_pool_")
          s));
  (* the full snapshot keeps both and synthesizes the pool series *)
  let full = Metrics.snapshot () in
  Alcotest.(check (option int)) "unstable in full snapshot" (Some 1)
    (counter_value "testm_unstable_total" [] full);
  Alcotest.(check bool) "pool gauge synthesized" true
    (gauge_value "xpiler_pool_max_jobs" [] full <> None)

let test_merge () =
  let c = Metrics.counter "testm_merge_total" in
  let g = Metrics.gauge "testm_merge_gauge" in
  let h = Metrics.histogram ~bounds:[| 1.0; 10.0 |] "testm_merge_hist" in
  Metrics.inc ~n:3 c;
  Metrics.set g 5.0;
  Metrics.observe h 0.5;
  let a = Metrics.snapshot () in
  Metrics.reset ();
  Metrics.inc ~n:4 c;
  Metrics.set g 2.0;
  Metrics.observe h 20.0;
  let b = Metrics.snapshot () in
  let m = Metrics.merge a b in
  Alcotest.(check (option int)) "counters add" (Some 7) (counter_value "testm_merge_total" [] m);
  Alcotest.(check (option (float 1e-9))) "gauges take max" (Some 5.0)
    (gauge_value "testm_merge_gauge" [] m);
  match hist_value "testm_merge_hist" [] m with
  | None -> Alcotest.fail "merged histogram missing"
  | Some h ->
    Alcotest.(check (array int)) "buckets add" [| 1; 0; 1 |] h.Metrics.counts;
    Alcotest.(check int) "counts add" 2 h.Metrics.count;
    Alcotest.(check (float 1e-9)) "sums add" 20.5 h.Metrics.sum

let test_hist_quantile_edges () =
  let h = Metrics.histogram ~bounds:[| 1.0; 2.0; 5.0 |] "testm_quant_hist" in
  let snap () =
    match hist_value "testm_quant_hist" [] (Metrics.snapshot ()) with
    | Some h -> h
    | None -> Alcotest.fail "histogram missing"
  in
  Alcotest.(check (float 1e-9)) "empty histogram -> 0, no exception" 0.0
    (Metrics.hist_quantile (snap ()) 0.5);
  Metrics.observe h 3.0;
  let one = snap () in
  Alcotest.(check (float 1e-9)) "single sample p50" 3.0 (Metrics.hist_quantile one 0.5);
  Alcotest.(check (float 1e-9)) "single sample p99" 3.0 (Metrics.hist_quantile one 0.99);
  Metrics.observe h 0.5;
  Metrics.observe h 10.0;
  let three = snap () in
  Alcotest.(check (float 1e-9)) "q<=0 -> min" 0.5 (Metrics.hist_quantile three 0.0);
  Alcotest.(check (float 1e-9)) "q>=1 -> max" 10.0 (Metrics.hist_quantile three 1.0);
  (* nearest rank 2 of 3 lands in the (2, 5] bucket; its upper bound is 5 *)
  Alcotest.(check (float 1e-9)) "p50 bucket bound" 5.0 (Metrics.hist_quantile three 0.5)

let test_openmetrics_format () =
  Metrics.reset ();
  let c = Metrics.counter ~help:"a counter" ~labels:[ ("k", "v") ] "testm_om_total" in
  let h = Metrics.histogram ~bounds:[| 1.0; 2.0 |] "testm_om_hist" in
  Metrics.inc ~n:2 c;
  Metrics.observe h 0.5;
  Metrics.observe h 1.5;
  Metrics.observe h 9.0;
  let keep = [ "testm_om_total"; "testm_om_hist" ] in
  let s =
    List.filter (fun (x : Metrics.sample) -> List.mem x.Metrics.name keep) (Metrics.snapshot ())
  in
  let text = Metrics.to_openmetrics s in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle -> Alcotest.(check bool) ("contains " ^ needle) true (contains needle))
    [ "# HELP testm_om_total a counter";
      "# TYPE testm_om_total counter";
      "testm_om_total{k=\"v\"} 2";
      "# TYPE testm_om_hist histogram";
      (* buckets are cumulative in the exposition format *)
      "testm_om_hist_bucket{le=\"1.0\"} 1";
      "testm_om_hist_bucket{le=\"2.0\"} 2";
      "testm_om_hist_bucket{le=\"+Inf\"} 3";
      "testm_om_hist_sum 11.0";
      "testm_om_hist_count 3"
    ];
  let eof = "# EOF\n" in
  Alcotest.(check string) "terminated by EOF"
    eof
    (String.sub text (String.length text - String.length eof) (String.length eof))

let test_json_parseable () =
  Metrics.inc (Metrics.counter "testm_json_total");
  let s = Metrics.snapshot () in
  match Json.parse (Json.to_string (Metrics.to_json s)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("metrics JSON does not parse: " ^ e)

(* ---- summary quantiles --------------------------------------------------- *)

let summary_hist values =
  let t = Tracer.create ~level:Tracer.Detail () in
  List.iter (Tracer.observe t "h") values;
  match List.assoc_opt "h" (Summary.of_events (Tracer.events t)).Summary.histograms with
  | Some h -> h
  | None -> Alcotest.fail "summary histogram missing"

let test_summary_quantile_edges () =
  Alcotest.(check (float 1e-9)) "empty hist -> 0, no exception" 0.0
    (Summary.quantile Summary.empty_hist 0.5);
  let one = summary_hist [ 3.0 ] in
  Alcotest.(check (float 1e-9)) "single sample, any q" 3.0 (Summary.quantile one 0.73);
  let four = summary_hist [ 4.0; 1.0; 3.0; 2.0 ] in
  Alcotest.(check (float 1e-9)) "q=0 -> min" 1.0 (Summary.quantile four 0.0);
  Alcotest.(check (float 1e-9)) "q=1 -> max" 4.0 (Summary.quantile four 1.0);
  Alcotest.(check (float 1e-9)) "nearest-rank p50" 2.0 (Summary.quantile four 0.5);
  Alcotest.(check (float 1e-9)) "nearest-rank p75" 3.0 (Summary.quantile four 0.75);
  Alcotest.(check (float 1e-9)) "q clamped above" 4.0 (Summary.quantile four 1.5)

(* ---- journal sink -------------------------------------------------------- *)

let sample_events n =
  let t = Tracer.create ~level:Tracer.Detail () in
  for i = 1 to n do
    Tracer.count t ~n:i "alpha";
    Tracer.observe t "h" (float_of_int i)
  done;
  Tracer.events t

let read_all path = In_channel.with_open_bin path In_channel.input_all

let test_journal_sink () =
  let evs = sample_events 3 in
  let batch1 = List.filteri (fun i _ -> i < 2) evs in
  let batch2 = List.filteri (fun i _ -> i >= 2) evs in
  let p_oneshot = Filename.temp_file "xpiler_oneshot" ".jsonl" in
  let p_sink = Filename.temp_file "xpiler_sink" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove p_oneshot;
      Sys.remove p_sink)
    (fun () ->
      (* the one-shot path: write then append *)
      Journal.write_file p_oneshot batch1;
      Journal.append_file p_oneshot batch2;
      (* the sink path: one open channel, two emits *)
      let sink = Journal.open_sink p_sink in
      Journal.emit sink batch1;
      Journal.emit sink batch2;
      Journal.close sink;
      Alcotest.(check string) "sink and one-shots agree byte-for-byte" (read_all p_oneshot)
        (read_all p_sink);
      (match Journal.read_file p_sink with
      | Ok back -> Alcotest.(check string) "decodes to the same events"
          (Journal.encode evs) (Journal.encode back)
      | Error e -> Alcotest.fail e);
      Journal.close sink;  (* idempotent *)
      let raised = try Journal.emit sink []; false with Invalid_argument _ -> true in
      Alcotest.(check bool) "emit after close raises" true raised;
      (* ~append:true continues an existing file *)
      let sink2 = Journal.open_sink ~append:true p_sink in
      Journal.emit sink2 batch1;
      Journal.close sink2;
      Alcotest.(check string) "append sink extends the file"
        (read_all p_oneshot ^ Journal.encode batch1)
        (read_all p_sink))

(* ---- profiler ------------------------------------------------------------ *)

let test_prof_aggregation () =
  Prof.reset ();
  Prof.enable ();
  Fun.protect ~finally:Prof.disable (fun () ->
      let v = Prof.span "testm.work" (fun () -> Array.length (Array.make 4096 0.0)) in
      Alcotest.(check int) "span passes the value through" 4096 v;
      ignore (Prof.span "testm.work" (fun () -> ()));
      Prof.stage_charge "llm-transform" 2.0;
      Prof.stage_charge "llm-transform" 0.5;
      Prof.stage_charge "unit-test" 1.0);
  let r = Prof.report () in
  (match List.find_opt (fun (s : Prof.span_row) -> s.Prof.span = "testm.work") r.Prof.span_rows with
  | None -> Alcotest.fail "span row missing"
  | Some s ->
    Alcotest.(check int) "span count" 2 s.Prof.count;
    Alcotest.(check bool) "wall time non-negative" true (s.Prof.wall_s >= 0.0));
  (match
     List.find_opt (fun (s : Prof.stage_row) -> s.Prof.stage = "llm-transform") r.Prof.stage_rows
   with
  | None -> Alcotest.fail "stage row missing"
  | Some s ->
    Alcotest.(check int) "stage charges" 2 s.Prof.charges;
    Alcotest.(check (float 1e-9)) "virtual seconds accumulate" 2.5 s.Prof.virtual_s);
  (* canonical Vclock order: llm-transform precedes unit-test *)
  let stages = List.map (fun (s : Prof.stage_row) -> s.Prof.stage) r.Prof.stage_rows in
  let idx name = Option.get (List.find_index (( = ) name) stages) in
  Alcotest.(check bool) "canonical stage order" true (idx "llm-transform" < idx "unit-test");
  (* JSON export parses back *)
  (match Json.parse (Json.to_string (Prof.to_json r)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("profile JSON does not parse: " ^ e));
  (* disabled: spans pass through without aggregating *)
  Prof.reset ();
  ignore (Prof.span "testm.off" (fun () -> ()));
  let r = Prof.report () in
  Alcotest.(check int) "no rows while disabled" 0 (List.length r.Prof.span_rows)

let test_prof_trace_segregation () =
  let run profile =
    let config =
      { (Config.with_seed Config.default 7) with
        Config.trace_level = Tracer.Detail;
        profile
      }
    in
    let o =
      Xpiler.transcompile ~config ~src:Platform.Cuda ~dst:Platform.Bang ~op:gemm
        ~shape:gemm_shape ()
    in
    Journal.encode o.Xpiler.trace
  in
  (* one warm-up translation so both compared runs see the same steady-state
     caches (a cold compile/reference cache changes interp.* trace counters
     between consecutive runs, which has nothing to do with profiling) *)
  ignore (run false);
  let off = run false in
  let on = run true in
  Alcotest.(check bool) "trace is non-trivial" true (String.length off > 0);
  Alcotest.(check string) "journal byte-identical with profiling on" off on

(* ---- stable snapshot determinism across jobs ----------------------------- *)

let forcing_domains f =
  let saved = Pool.get_max_domains () in
  Pool.set_max_domains 4;
  Fun.protect ~finally:(fun () -> Pool.set_max_domains saved) f

let test_snapshot_jobs_deterministic () =
  forcing_domains @@ fun () ->
  let config =
    { Mcts.default_config with simulations = 24; max_depth = 6; root_parallel = 3 }
  in
  let platform = Platform.bang in
  (* warm-start specs recorded by a previous translation of the same kernel *)
  let prime =
    let db = Schedule_db.create () in
    ignore (Mcts.search ~config ~buffer_sizes ~share:true ~db ~platform (serial ()));
    Schedule_db.lookup db platform.Platform.id (serial ())
  in
  let run jobs =
    Transposition.clear ();
    Metrics.reset ();
    let db = Schedule_db.create () in
    (match prime with
    | Some specs -> Schedule_db.record db platform.Platform.id (serial ()) ~specs ~reward:1.0
    | None -> ());
    ignore (Mcts.search ~config ~buffer_sizes ~jobs ~share:true ~db ~platform (serial ()));
    Json.to_string (Metrics.to_json (Metrics.snapshot ~stable_only:true ()))
  in
  (* one warm-up of the measured workload so both compared runs see identical
     compile-cache state (cache contents survive Metrics.reset) *)
  ignore (run 1);
  let s1 = run 1 in
  let s4 = run 4 in
  Alcotest.(check string) "stable snapshot byte-identical across jobs" s1 s4;
  (* the run did exercise the schedule-dependent counters we excluded *)
  Alcotest.(check bool) "transposition lookups happened" true
    (Transposition.hits () + Transposition.misses () > 0);
  Alcotest.(check bool) "stable snapshot is non-trivial" true
    (String.length s1 > String.length "[]")

(* ---- bench history ------------------------------------------------------- *)

let entry ?(smoke = true) ?time bench metrics = { BH.bench; smoke; time; metrics }

let test_history_roundtrip () =
  let e = entry ~time:1754600000.5 "eval" [ ("a_metric", 1.5); ("b_metric", 2.0) ] in
  (match BH.entry_of_json (BH.entry_to_json e) with
  | Ok back -> Alcotest.(check bool) "roundtrips" true (back = e)
  | Error err -> Alcotest.fail err);
  let no_time = entry "tuning" [ ("m", 0.25) ] in
  match BH.entry_of_json (BH.entry_to_json no_time) with
  | Ok back -> Alcotest.(check bool) "roundtrips without time" true (back = no_time)
  | Error err -> Alcotest.fail err

let test_history_append_load () =
  let path = Filename.temp_file "xpiler_hist" ".jsonl" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (match BH.load ~path () with
      | Ok [] -> ()
      | Ok _ -> Alcotest.fail "missing file should load as empty"
      | Error e -> Alcotest.fail e);
      let e1 = entry "eval" [ ("geomean_speedup", 3.0) ] in
      let e2 = entry "tuning" [ ("eval_reduction_mean", 0.5) ] in
      BH.append ~path e1;
      BH.append ~path e2;
      match BH.load ~path () with
      | Ok entries -> Alcotest.(check bool) "two entries back" true (entries = [ e1; e2 ])
      | Error e -> Alcotest.fail e)

let doctored_eval_bench path ~speedup ~eps =
  let oc = open_out path in
  Printf.fprintf oc
    {|{
  "schema": "xpiler-eval-bench/v1", "smoke": true,
  "kernels": [
    {"op": "gemm", "compiled_elems_per_sec": %e, "speedup": %f},
    {"op": "softmax", "compiled_elems_per_sec": %e, "speedup": %f}
  ],
  "geomean_speedup": %f,
  "tuning": {"parallel_speedup": 1.1, "deterministic": true}
}
|}
    eps speedup eps speedup speedup;
  close_out oc

let test_of_bench_file_and_regression () =
  let path = Filename.temp_file "xpiler_bencheval" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      doctored_eval_bench path ~speedup:2.0 ~eps:1e6;
      let current =
        match BH.of_bench_file ~bench:"eval" path with
        | Ok e -> e
        | Error e -> Alcotest.fail e
      in
      Alcotest.(check (option (float 1e-6))) "geomean extracted" (Some 2.0)
        (List.assoc_opt "geomean_speedup" current.BH.metrics);
      Alcotest.(check (option (float 1.0))) "eps geomean extracted" (Some 1e6)
        (List.assoc_opt "compiled_eps_geomean" current.BH.metrics);
      (* a history full of much faster runs: the doctored current entry must
         register as a regression on the wall-clock throughput metrics *)
      let fast = entry "eval" [ ("geomean_speedup", 100.0); ("compiled_eps_geomean", 1e9) ] in
      let verdicts = BH.diff ~history:[ fast; fast; fast ] current in
      let bad = BH.regressions verdicts in
      Alcotest.(check bool) "inflated history flags a regression" true (bad <> []);
      Alcotest.(check bool) "geomean_speedup among the regressions" true
        (List.exists (fun (v : BH.verdict) -> v.BH.metric = "geomean_speedup") bad);
      (* exact-only mode skips the Wall-noise metrics entirely *)
      let exact = BH.diff ~exact_only:true ~history:[ fast; fast; fast ] current in
      Alcotest.(check bool) "exact-only skips wall metrics" true (BH.regressions exact = []);
      (* matching history: no regression *)
      let same = entry "eval" current.BH.metrics in
      Alcotest.(check bool) "parity is not a regression" true
        (BH.regressions (BH.diff ~history:[ same; same ] current) = []);
      (* no matching history at all: baseline None, never regressed *)
      let full_run = { current with BH.smoke = false } in
      let v = BH.diff ~history:[ fast ] full_run in
      Alcotest.(check bool) "smoke and full runs never compare" true
        (List.for_all (fun (x : BH.verdict) -> x.BH.baseline = None && not x.BH.regressed) v))

let test_history_zero_baseline () =
  (* a zero median makes the relative drop undefined; the defined semantics:
     any worsening move off zero is an unbounded relative change, so only
     the absolute slack can excuse it (eval_reduction_mean: Higher, slack
     0.05) *)
  let hist = [ entry "tuning" [ ("eval_reduction_mean", 0.0); ("best_reward_ratio_min", 1.0) ] ] in
  let v_of m verdicts = List.find (fun (v : BH.verdict) -> v.BH.metric = m) verdicts in
  let worse = entry "tuning" [ ("eval_reduction_mean", -0.5); ("best_reward_ratio_min", 1.0) ] in
  let v = v_of "eval_reduction_mean" (BH.diff ~history:hist worse) in
  Alcotest.(check bool) "beyond-slack move off zero regresses" true v.BH.regressed;
  Alcotest.(check bool) "detail names the zero median" true
    (let needle = "zero median" in
     let len = String.length needle in
     let rec has i =
       i + len <= String.length v.BH.detail && (String.sub v.BH.detail i len = needle || has (i + 1))
     in
     has 0);
  let within = entry "tuning" [ ("eval_reduction_mean", -0.04); ("best_reward_ratio_min", 1.0) ] in
  Alcotest.(check bool) "within-slack move off zero passes" false
    (v_of "eval_reduction_mean" (BH.diff ~history:hist within)).BH.regressed;
  let better = entry "tuning" [ ("eval_reduction_mean", 0.3); ("best_reward_ratio_min", 1.0) ] in
  Alcotest.(check bool) "improvement off zero passes" false
    (v_of "eval_reduction_mean" (BH.diff ~history:hist better)).BH.regressed

let test_history_record_corrupt () =
  let path = Filename.temp_file "xpiler_hist" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let e = entry "tuning" [ ("eval_reduction_mean", 0.5) ] in
      (* intact history: record appends and reports verdicts *)
      (match BH.record ~path e with
      | Ok [] -> ()
      | Ok _ -> Alcotest.fail "no history yet, nothing can regress"
      | Error m -> Alcotest.fail m);
      (* corrupt history: record must surface the error, not append to the
         broken file as if the baseline were merely empty *)
      let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
      output_string oc "{not json\n";
      close_out oc;
      let size_before = (Unix.stat path).Unix.st_size in
      (match BH.record ~path e with
      | Ok _ -> Alcotest.fail "corrupt history must be an error"
      | Error _ -> ());
      Alcotest.(check int) "nothing appended past the corruption" size_before
        (Unix.stat path).Unix.st_size)

let doctored_tuning_bench path ~store_warm =
  let oc = open_out path in
  Printf.fprintf oc
    {|{
  "schema": "xpiler-tuning-bench/v2", "smoke": true,
  "kernels": [
    {"op": "gemm", "eval_reduction": 0.5, "best_reward_ratio": 1.0},
    {"op": "softmax", "eval_reduction": 0.3, "best_reward_ratio": 1.0}
  ]%s
}
|}
    (match store_warm with
    | Some mean ->
      Printf.sprintf
        {|,
  "store_warm_start": {"kernels": [{"op": "gemm", "warm_reduction": %f}], "warm_reduction_mean": %f}|}
        mean mean
    | None -> "");
  close_out oc

let test_store_warm_metric_absent_not_zero () =
  let path = Filename.temp_file "xpiler_benchtuning" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* pre-store (v1-shaped) file: the metric must be absent, so histories
         spanning the schema change skip the spec instead of reading the old
         runs as total regressions *)
      doctored_tuning_bench path ~store_warm:None;
      let old_run =
        match BH.of_bench_file ~bench:"tuning" path with Ok e -> e | Error m -> Alcotest.fail m
      in
      Alcotest.(check (option (float 1e-9))) "absent without store section" None
        (List.assoc_opt "store_warm_reduction_mean" old_run.BH.metrics);
      doctored_tuning_bench path ~store_warm:(Some 0.9);
      let current =
        match BH.of_bench_file ~bench:"tuning" path with Ok e -> e | Error m -> Alcotest.fail m
      in
      Alcotest.(check (option (float 1e-6))) "extracted when present" (Some 0.9)
        (List.assoc_opt "store_warm_reduction_mean" current.BH.metrics);
      (* the spec is live and gated: a collapse against a better history
         regresses, and old-run entries without the metric contribute no
         baseline *)
      let degraded = { current with BH.metrics = [ ("store_warm_reduction_mean", 0.1) ] } in
      let bad = BH.regressions (BH.diff ~history:[ current; current ] degraded) in
      Alcotest.(check bool) "collapsed warm reduction regresses" true
        (List.exists (fun (v : BH.verdict) -> v.BH.metric = "store_warm_reduction_mean") bad);
      let v = BH.diff ~history:[ old_run ] degraded in
      Alcotest.(check bool) "old runs give no baseline" true
        (List.for_all
           (fun (x : BH.verdict) ->
             x.BH.metric <> "store_warm_reduction_mean" || x.BH.baseline = None)
           v))

let test_history_direction_lower_better () =
  (* resilience ladder_broken: lower is better, abs_slack 0.5 absorbs +-0 *)
  let hist = [ entry "resilience" [ ("ladder_broken", 1.0); ("seed_broken", 6.0) ] ] in
  let worse = entry "resilience" [ ("ladder_broken", 5.0); ("seed_broken", 6.0) ] in
  let bad = BH.regressions (BH.diff ~history:hist worse) in
  Alcotest.(check bool) "more broken kernels regresses" true
    (List.exists (fun (v : BH.verdict) -> v.BH.metric = "ladder_broken") bad);
  let same = entry "resilience" [ ("ladder_broken", 1.0); ("seed_broken", 6.0) ] in
  Alcotest.(check bool) "equal count passes" true
    (BH.regressions (BH.diff ~history:hist same) = []);
  (* threshold_scale widens the gate: a huge scale forgives the regression *)
  Alcotest.(check bool) "threshold scale widens slack" true
    (BH.regressions (BH.diff ~threshold_scale:100.0 ~history:hist worse) = [])

let () =
  Alcotest.run "metrics"
    [ ( "registry",
        [ Alcotest.test_case "counter gauge histogram" `Quick test_counter_gauge_histogram;
          Alcotest.test_case "labels" `Quick test_labels;
          Alcotest.test_case "kind conflict" `Quick test_kind_conflict;
          Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
          Alcotest.test_case "stable-only filter" `Quick test_stable_only_filter;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "hist quantile edges" `Quick test_hist_quantile_edges;
          Alcotest.test_case "openmetrics format" `Quick test_openmetrics_format;
          Alcotest.test_case "json parseable" `Quick test_json_parseable
        ] );
      ( "summary",
        [ Alcotest.test_case "quantile edges" `Quick test_summary_quantile_edges ] );
      ( "journal",
        [ Alcotest.test_case "buffered sink" `Quick test_journal_sink ] );
      ( "profiler",
        [ Alcotest.test_case "aggregation" `Quick test_prof_aggregation;
          Alcotest.test_case "trace segregation" `Quick test_prof_trace_segregation
        ] );
      ( "determinism",
        [ Alcotest.test_case "stable snapshot across jobs" `Quick
            test_snapshot_jobs_deterministic
        ] );
      ( "bench-history",
        [ Alcotest.test_case "entry roundtrip" `Quick test_history_roundtrip;
          Alcotest.test_case "append and load" `Quick test_history_append_load;
          Alcotest.test_case "bench extraction and regression" `Quick
            test_of_bench_file_and_regression;
          Alcotest.test_case "zero baseline semantics" `Quick test_history_zero_baseline;
          Alcotest.test_case "corrupt history surfaces" `Quick test_history_record_corrupt;
          Alcotest.test_case "store warm metric absent-not-zero" `Quick
            test_store_warm_metric_absent_not_zero;
          Alcotest.test_case "lower-is-better direction" `Quick
            test_history_direction_lower_better
        ] )
    ]
