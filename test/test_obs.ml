(* Tests for the observability layer: JSON, tracer semantics, journal and
   Chrome exporters, summaries, and the end-to-end guarantee that stage
   span durations sum to exactly the Vclock breakdown. *)

open Xpiler_obs
module Vclock = Xpiler_util.Vclock

(* ---- json -------------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("a", Json.Int 42);
        ("b", Json.Float 0.1);
        ("c", Json.Str "he said \"hi\"\n\ttab");
        ("d", Json.List [ Json.Null; Json.Bool true; Json.Bool false ]);
        ("e", Json.Obj [ ("nested", Json.Float (-1.5e-7)) ])
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
  | Error m -> Alcotest.fail m

let test_json_float_exact () =
  (* the printer promises shortest round-tripping decimals *)
  List.iter
    (fun f ->
      match Json.parse (Json.to_string (Json.Float f)) with
      | Error m -> Alcotest.fail m
      | Ok j ->
        (match Json.to_float j with
        | Some f' ->
          Alcotest.(check bool) (Printf.sprintf "float %h round-trips" f) true (f' = f)
        | None -> Alcotest.fail "not a number"))
    [ 0.0; 1.0; 0.1; 1.0 /. 3.0; 1e300; 5e-324; -2.5 ]

let test_json_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

(* ---- tracer ------------------------------------------------------------------ *)

let test_tracer_stage_charge_advances () =
  let t = Tracer.create () in
  Alcotest.(check (float 1e-9)) "starts at 0" 0.0 (Tracer.now t);
  Tracer.stage_charge t "annotation" 2.0;
  Tracer.stage_charge t "smt-solving" 0.5;
  Alcotest.(check (float 1e-9)) "now = sum of charges" 2.5 (Tracer.now t);
  let stage_spans =
    List.filter_map
      (function
        | Event.Span { cat = "stage"; name; ts; dur; _ } -> Some (name, ts, dur)
        | _ -> None)
      (Tracer.events t)
  in
  Alcotest.(check int) "one span per charge" 2 (List.length stage_spans);
  Alcotest.(check bool) "charge timestamps abut" true
    (stage_spans = [ ("annotation", 0.0, 2.0); ("smt-solving", 2.0, 0.5) ])

let test_tracer_span_nesting () =
  let t = Tracer.create () in
  Tracer.with_span t "outer" (fun () ->
      Tracer.stage_charge t "annotation" 1.0;
      Tracer.with_span t ~cat:"pass" ~attrs:[ ("k", "v") ] "inner" (fun () ->
          Tracer.stage_charge t "unit-test" 3.0));
  let spans =
    List.filter_map
      (function
        | Event.Span { cat = "stage"; _ } -> None
        | Event.Span { name; ts; dur; depth; attrs; _ } -> Some (name, ts, dur, depth, attrs)
        | _ -> None)
      (Tracer.events t)
  in
  (* children close before parents, so inner is emitted first *)
  Alcotest.(check bool) "inner span" true
    (List.mem ("inner", 1.0, 3.0, 1, [ ("k", "v") ]) spans);
  Alcotest.(check bool) "outer span covers both charges" true
    (List.mem ("outer", 0.0, 4.0, 0, []) spans);
  Alcotest.(check int) "stack empty" 0 (Tracer.depth t)

let test_tracer_span_end_unwinds () =
  (* an exception inside nested spans must not leave the stack misaligned *)
  let t = Tracer.create () in
  (try
     Tracer.with_span t "outer" (fun () ->
         let _inner = Tracer.span_begin t "leaked" in
         Tracer.stage_charge t "annotation" 1.0;
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "stack unwound" 0 (Tracer.depth t);
  let names =
    List.filter_map
      (function Event.Span { name; _ } -> Some name | _ -> None)
      (Tracer.events t)
  in
  Alcotest.(check bool) "leaked span closed" true (List.mem "leaked" names);
  Alcotest.(check bool) "outer span closed" true (List.mem "outer" names)

let test_tracer_levels () =
  let stages = Tracer.create ~level:Tracer.Stages () in
  Tracer.count stages "c";
  Tracer.observe stages "h" 1.0;
  Tracer.instant stages "i";
  Alcotest.(check int) "Stages drops metrics" 0 (List.length (Tracer.events stages));
  Tracer.with_span stages "s" (fun () -> Tracer.stage_charge stages "annotation" 1.0);
  Alcotest.(check int) "Stages keeps spans" 2 (List.length (Tracer.events stages));
  let detail = Tracer.create ~level:Tracer.Detail () in
  Tracer.count detail ~n:3 "c";
  Tracer.count detail "c";
  Tracer.observe detail "h" 1.0;
  Tracer.instant detail "i";
  Alcotest.(check int) "Detail keeps metrics" 4 (List.length (Tracer.events detail));
  Alcotest.(check int) "counter total" 4 (Tracer.counter_total detail "c")

let test_trace_facade_noop () =
  Trace.uninstall ();
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  (* all of these must be silent no-ops *)
  Trace.count "c";
  Trace.observe "h" 1.0;
  Trace.instant "i";
  Alcotest.(check int) "span still runs body" 7 (Trace.span "s" (fun () -> 7));
  let t = Tracer.create () in
  Trace.install t;
  Trace.count "c";
  Trace.uninstall ();
  Trace.count "c";
  Alcotest.(check int) "installed tracer saw one count" 1 (Tracer.counter_total t "c")

(* ---- events and journal ------------------------------------------------------ *)

let sample_events =
  [ Event.Span
      { name = "translate:gemm"; cat = "translate"; ts = 0.0; dur = 12.5; depth = 0;
        attrs = [ ("src", "cuda"); ("dst", "bang") ] };
    Event.Span { name = "annotation"; cat = "stage"; ts = 0.0; dur = 2.0; depth = 1; attrs = [] };
    Event.Instant { name = "status"; ts = 12.5; attrs = [ ("status", "success") ] };
    Event.Count { name = "llm.attempts"; ts = 3.0; n = 2 };
    Event.Observe { name = "mcts.reward"; ts = 4.0; v = 0.875 }
  ]

let test_event_roundtrip () =
  List.iter
    (fun e ->
      match Event.decode_line (Event.encode_line e) with
      | Ok e' -> Alcotest.(check bool) (Event.name e) true (e = e')
      | Error m -> Alcotest.fail m)
    sample_events

let test_journal_roundtrip () =
  let s = Journal.encode sample_events in
  Alcotest.(check int) "one line per event"
    (List.length sample_events)
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' s)));
  (match Journal.decode s with
  | Ok es -> Alcotest.(check bool) "decode inverts encode" true (es = sample_events)
  | Error m -> Alcotest.fail m);
  (* blank lines are tolerated, malformed lines abort with their number *)
  (match Journal.decode ("\n" ^ s ^ "\n") with
  | Ok es -> Alcotest.(check int) "blanks skipped" (List.length sample_events) (List.length es)
  | Error m -> Alcotest.fail m);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  match Journal.decode (s ^ "{oops\n") with
  | Ok _ -> Alcotest.fail "accepted malformed line"
  | Error m -> Alcotest.(check bool) "error carries line number" true (contains m "line 6")

let test_journal_file_io () =
  let path = Filename.temp_file "xpiler_obs" ".jsonl" in
  Journal.write_file path sample_events;
  Journal.append_file path sample_events;
  (match Journal.read_file path with
  | Ok es -> Alcotest.(check int) "append doubles" (2 * List.length sample_events) (List.length es)
  | Error m -> Alcotest.fail m);
  Sys.remove path

(* ---- chrome export ----------------------------------------------------------- *)

let test_chrome_export_valid () =
  let s = Chrome.to_string sample_events in
  match Json.parse s with
  | Error m -> Alcotest.fail ("chrome JSON does not parse: " ^ m)
  | Ok j ->
    let events =
      match Json.member "traceEvents" j with
      | Some (Json.List es) -> es
      | _ -> Alcotest.fail "no traceEvents array"
    in
    let phases =
      List.filter_map
        (fun e -> Option.bind (Json.member "ph" e) Json.to_str)
        events
    in
    Alcotest.(check bool) "has complete events" true (List.mem "X" phases);
    Alcotest.(check bool) "has instant" true (List.mem "i" phases);
    Alcotest.(check bool) "has counter track" true (List.mem "C" phases);
    (* seconds -> microseconds: the 12.5 s root span is 12_500_000 us *)
    let root_dur =
      List.find_map
        (fun e ->
          match (Json.member "name" e, Json.member "dur" e) with
          | Some (Json.Str "translate:gemm"), Some d -> Json.to_float d
          | _ -> None)
        events
    in
    Alcotest.(check (option (float 0.5))) "us timebase" (Some 12_500_000.0) root_dur

(* ---- summary ----------------------------------------------------------------- *)

let test_summary_aggregation () =
  let t = Tracer.create () in
  Tracer.with_span t "root" (fun () ->
      Tracer.stage_charge t "smt-solving" 5.0;
      Tracer.stage_charge t "annotation" 1.0;
      Tracer.stage_charge t "annotation" 2.0;
      Tracer.count t ~n:2 "b.ctr";
      Tracer.count t "a.ctr";
      Tracer.observe t "h" 1.0;
      Tracer.observe t "h" 3.0);
  let s = Summary.of_events (Tracer.events t) in
  Alcotest.(check (float 1e-9)) "total = sum of charges" 8.0 s.Summary.total_seconds;
  (* canonical Vclock order with zero stages omitted *)
  Alcotest.(check (list (pair string (float 1e-9)))) "stage rows"
    [ ("annotation", 3.0); ("smt-solving", 5.0) ]
    s.Summary.stages;
  Alcotest.(check (float 1e-9)) "stage_total" 3.0 (Summary.stage_total s "annotation");
  Alcotest.(check (float 1e-9)) "stage_total absent" 0.0 (Summary.stage_total s "unit-test");
  Alcotest.(check (list string)) "counters sorted" [ "a.ctr"; "b.ctr" ]
    (List.map fst s.Summary.counters);
  (match s.Summary.histograms with
  | [ ("h", h) ] ->
    Alcotest.(check int) "hist n" 2 h.Summary.n;
    Alcotest.(check (float 1e-9)) "hist min" 1.0 h.Summary.min;
    Alcotest.(check (float 1e-9)) "hist max" 3.0 h.Summary.max;
    Alcotest.(check (float 1e-9)) "hist mean" 2.0 h.Summary.mean
  | _ -> Alcotest.fail "expected one histogram");
  match s.Summary.spans with
  | [ ("root", 1, d) ] -> Alcotest.(check (float 1e-9)) "root covers charges" 8.0 d
  | _ -> Alcotest.fail "expected one non-stage span"

(* ---- end-to-end: tracing a real translation ---------------------------------- *)

open Xpiler_machine
open Xpiler_ops
open Xpiler_core

let traced_outcome ?(seed = 20250706) () =
  let op = Registry.find_exn "softmax" in
  let shape = List.hd op.Opdef.shapes in
  let config = Config.with_trace (Config.with_seed Config.default seed) Tracer.Detail in
  Xpiler.transcompile ~config ~src:Platform.Cuda ~dst:Platform.Bang ~op ~shape ()

let test_pipeline_stage_totals_match_vclock () =
  let o = traced_outcome () in
  Alcotest.(check bool) "trace recorded" true (o.Xpiler.trace <> []);
  let s = Summary.of_events o.Xpiler.trace in
  (* acceptance criterion: span durations per stage sum to exactly the
     Vclock breakdown — same floats, not just approximately *)
  List.iter
    (fun st ->
      Alcotest.(check (float 0.0))
        (Vclock.stage_name st)
        (Vclock.stage_total o.Xpiler.clock st)
        (Summary.stage_total s (Vclock.stage_name st)))
    Vclock.all_stages;
  Alcotest.(check (float 0.0)) "grand total" (Vclock.elapsed o.Xpiler.clock)
    s.Summary.total_seconds

let test_pipeline_trace_deterministic () =
  let enc o = Journal.encode o.Xpiler.trace in
  let a = enc (traced_outcome ()) and b = enc (traced_outcome ()) in
  Alcotest.(check bool) "byte-identical across runs" true (String.equal a b);
  let c = enc (traced_outcome ~seed:7 ()) in
  Alcotest.(check bool) "seed changes the stream" true (not (String.equal a c))

let test_pipeline_trace_replays () =
  let o = traced_outcome () in
  match Journal.decode (Journal.encode o.Xpiler.trace) with
  | Error m -> Alcotest.fail m
  | Ok es ->
    let live = Summary.of_events o.Xpiler.trace in
    let replayed = Summary.of_events es in
    Alcotest.(check bool) "replayed summary identical" true (live = replayed);
    Alcotest.(check bool) "root span present" true
      (List.exists
         (function
           | Event.Span { cat = "translate"; depth = 0; _ } -> true
           | _ -> false)
         es);
    (* the instrumented layers actually reported in *)
    List.iter
      (fun ctr ->
        Alcotest.(check bool) (ctr ^ " counted") true
          (List.mem_assoc ctr live.Summary.counters))
      [ "llm.attempts"; "pass.applied"; "interp.runs"; "costmodel.evals" ]

let test_pipeline_off_by_default () =
  let op = Registry.find_exn "relu" in
  let shape = List.hd op.Opdef.shapes in
  let o = Xpiler.transcompile ~src:Platform.Cuda ~dst:Platform.Hip ~op ~shape () in
  Alcotest.(check int) "no trace when off" 0 (List.length o.Xpiler.trace)

let () =
  Alcotest.run "obs"
    [ ( "json",
        [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "float exactness" `Quick test_json_float_exact;
          Alcotest.test_case "malformed rejected" `Quick test_json_errors
        ] );
      ( "tracer",
        [ Alcotest.test_case "stage charges advance time" `Quick
            test_tracer_stage_charge_advances;
          Alcotest.test_case "span nesting" `Quick test_tracer_span_nesting;
          Alcotest.test_case "exception unwinds stack" `Quick test_tracer_span_end_unwinds;
          Alcotest.test_case "levels gate metrics" `Quick test_tracer_levels;
          Alcotest.test_case "ambient facade" `Quick test_trace_facade_noop
        ] );
      ( "journal",
        [ Alcotest.test_case "event roundtrip" `Quick test_event_roundtrip;
          Alcotest.test_case "encode/decode" `Quick test_journal_roundtrip;
          Alcotest.test_case "file io" `Quick test_journal_file_io
        ] );
      ("chrome", [ Alcotest.test_case "valid trace JSON" `Quick test_chrome_export_valid ]);
      ("summary", [ Alcotest.test_case "aggregation" `Quick test_summary_aggregation ]);
      ( "pipeline",
        [ Alcotest.test_case "stage totals = vclock breakdown" `Quick
            test_pipeline_stage_totals_match_vclock;
          Alcotest.test_case "deterministic journal" `Quick test_pipeline_trace_deterministic;
          Alcotest.test_case "replay equals live" `Quick test_pipeline_trace_replays;
          Alcotest.test_case "off by default" `Quick test_pipeline_off_by_default
        ] )
    ]
