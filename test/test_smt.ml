open Xpiler_ir
open Xpiler_smt


(* ---- solver ------------------------------------------------------------- *)

let test_solve_linear () =
  (* the Figure 5 loop-split constraint: i1*4 + i2 == 10, 0 <= i2 < 4 *)
  let open Expr.Infix in
  let problem : Solver.problem =
    { vars =
        [ ("i1", Solver.Range { lo = 0; hi = 16; stride = 1 });
          ("i2", Solver.Range { lo = 0; hi = 3; stride = 1 }) ];
      constraints = [ (v "i1" * int 4) + v "i2" = int 10 ]
    }
  in
  match Solver.solve problem with
  | Solver.Sat model, _ ->
    Alcotest.(check int) "i1" 2 (List.assoc "i1" model);
    Alcotest.(check int) "i2" 2 (List.assoc "i2" model)
  | _ -> Alcotest.fail "expected sat"

let test_solve_unsat () =
  let open Expr.Infix in
  let problem : Solver.problem =
    { vars = [ ("x", Solver.Range { lo = 0; hi = 10; stride = 1 }) ];
      constraints = [ v "x" > int 5; v "x" < int 3 ]
    }
  in
  match Solver.solve problem with
  | Solver.Unsat, _ -> ()
  | _ -> Alcotest.fail "expected unsat"

let test_solve_alignment () =
  let open Expr.Infix in
  let problem : Solver.problem =
    { vars = [ ("len", Solver.Enum [ 100; 128; 192; 2309; 2304 ]) ];
      constraints = [ v "len" % int 64 = int 0; v "len" > int 128 ]
    }
  in
  let models = Solver.solve_all problem in
  Alcotest.(check (list (list (pair string int)))) "aligned lengths"
    [ [ ("len", 192) ]; [ ("len", 2304) ] ]
    models

let test_solve_timeout () =
  let open Expr.Infix in
  let problem : Solver.problem =
    { vars =
        [ ("a", Solver.Range { lo = 0; hi = 10000; stride = 1 });
          ("b", Solver.Range { lo = 0; hi = 10000; stride = 1 }) ];
      constraints = [ v "a" * v "b" = int (-1) ]
    }
  in
  match Solver.solve ~max_steps:1000 problem with
  | Solver.Timeout, stats ->
    Alcotest.(check bool) "bounded" true (Stdlib.( <= ) stats.Solver.steps 1001)
  | Solver.Unsat, _ -> Alcotest.fail "should time out before proving unsat"
  | Solver.Sat _, _ -> Alcotest.fail "unsatisfiable"

let test_divisors () =
  Alcotest.(check (list int)) "divisors 12" [ 1; 2; 3; 4; 6; 12 ] (Solver.divisors 12);
  Alcotest.(check (list int)) "divisors 1" [ 1 ] (Solver.divisors 1)

(* the O(sqrt n) paired enumeration must agree with trial division, squares
   and primes included *)
let test_divisors_sqrt () =
  let naive n = List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1)) in
  List.iter
    (fun n ->
      Alcotest.(check (list int)) (Printf.sprintf "divisors %d" n) (naive n) (Solver.divisors n))
    [ 1; 12; 36; 97; 1024 ]

let test_forall () =
  let open Expr.Infix in
  (* forall i in [0,4): i*2 < 8 *)
  let f = Solver.forall_range "i" ~lo:0 ~hi:4 (v "i" * int 2 < int 8) in
  Alcotest.(check int) "valid" 1 (Expr.eval_int (fun _ -> 0) f);
  let g = Solver.forall_range "i" ~lo:0 ~hi:5 (v "i" * int 2 < int 8) in
  Alcotest.(check int) "invalid at i=4" 0 (Expr.eval_int (fun _ -> 0) g)

(* ---- solver memo ----------------------------------------------------------- *)

(* negative verdicts are sound memo entries: the key includes the step
   budget, so an Unsat or Timeout under one budget can never answer a query
   under another *)
let test_memo_unsat_and_timeout () =
  let open Expr.Infix in
  Solver.set_engine Solver.Incremental;
  Memo.clear ();
  Memo.reset_stats ();
  let unsat_p : Solver.problem =
    { vars = [ ("x", Solver.Range { lo = 0; hi = 50; stride = 1 }) ];
      constraints = [ v "x" > int 60 ]
    }
  in
  let o1 = Solver.solve unsat_p in
  let o2 = Solver.solve unsat_p in
  Alcotest.(check bool) "unsat memoized with its receipt" true (Stdlib.( = ) o1 o2);
  Alcotest.(check bool) "unsat is an unsat" true
    (match o1 with Solver.Unsat, _ -> true | _ -> false);
  Alcotest.(check int) "one hit" 1 (Memo.hits ());
  let timeout_p : Solver.problem =
    { vars =
        [ ("a", Solver.Range { lo = 0; hi = 10000; stride = 1 });
          ("b", Solver.Range { lo = 0; hi = 10000; stride = 1 }) ];
      constraints = [ v "a" * v "b" = int (-1) ]
    }
  in
  let t1 = Solver.solve ~max_steps:1000 timeout_p in
  let t2 = Solver.solve ~max_steps:1000 timeout_p in
  Alcotest.(check bool) "timeout memoized with its receipt" true (Stdlib.( = ) t1 t2);
  Alcotest.(check bool) "timeout is a timeout" true
    (match t1 with Solver.Timeout, _ -> true | _ -> false);
  let misses_before = Memo.misses () in
  let t3 = Solver.solve ~max_steps:5000 timeout_p in
  Alcotest.(check int) "a different budget is a fresh search, not a stale hit"
    (Stdlib.( + ) misses_before 1) (Memo.misses ());
  Alcotest.(check bool) "larger budget searches further" true
    (match t3 with _, s -> Stdlib.( > ) s.Solver.steps 1001)

let test_memo_disabled_is_silent () =
  Solver.set_engine Solver.Incremental;
  Memo.clear ();
  Memo.reset_stats ();
  Memo.set_enabled false;
  Fun.protect ~finally:(fun () -> Memo.set_enabled true) @@ fun () ->
  let open Expr.Infix in
  let p : Solver.problem =
    { vars = [ ("x", Solver.Range { lo = 0; hi = 8; stride = 1 }) ];
      constraints = [ v "x" > int 3 ]
    }
  in
  let o1 = Solver.solve p in
  let o2 = Solver.solve p in
  Alcotest.(check bool) "same result without the memo" true (Stdlib.( = ) o1 o2);
  Alcotest.(check int) "no lookups counted" 0 (Stdlib.( + ) (Memo.hits ()) (Memo.misses ()));
  Alcotest.(check int) "nothing stored" 0 (Memo.size ())

(* ---- synthesis ------------------------------------------------------------- *)

let test_fill_holes_split_factor () =
  let r =
    Synth.fill_holes
      ~holes:[ ("?f", Solver.Enum (Solver.divisors 256)) ]
      ~sketch:Expr.Infix.(v "?f" * v "outer")
      ~examples:[ { env = [ ("outer", 4) ]; expected = 256 } ]
      ~side_constraints:Expr.Infix.[ v "?f" % int 64 = int 0 ]
      ()
  in
  match r.outcome with
  | Solver.Sat model -> Alcotest.(check int) "factor" 64 (List.assoc "?f" model)
  | _ -> Alcotest.fail "expected sat"

let test_fill_holes_offset () =
  (* recover the base offset of a staged window: idx - ?base = local index *)
  let r =
    Synth.fill_holes
      ~holes:[ ("?base", Solver.Range { lo = 0; hi = 1024; stride = 64 }) ]
      ~sketch:Expr.Infix.(v "idx" - v "?base")
      ~examples:
        [ { env = [ ("idx", 192) ]; expected = 0 }; { env = [ ("idx", 200) ]; expected = 8 } ]
      ()
  in
  match r.outcome with
  | Solver.Sat model -> Alcotest.(check int) "base" 192 (List.assoc "?base" model)
  | _ -> Alcotest.fail "expected sat"

let test_holes_of () =
  Alcotest.(check (list string)) "holes"
    [ "?a"; "?b" ]
    (Synth.holes_of Expr.Infix.(v "?a" + (v "x" * v "?b")))

let test_enumerate_affine () =
  let found, tried =
    Synth.enumerate_affine ~vars:[ "i"; "j" ] ~consts:[ 2; 3; 4 ]
      ~examples:
        [ { env = [ ("i", 0); ("j", 0) ]; expected = 0 };
          { env = [ ("i", 1); ("j", 0) ]; expected = 4 };
          { env = [ ("i", 2); ("j", 3) ]; expected = 11 } ]
      ()
  in
  (match found with
  | Some e ->
    List.iter
      (fun (iv, jv, want) ->
        let env = function "i" -> iv | "j" -> jv | _ -> 0 in
        Alcotest.(check int) "consistent" want (Expr.eval_int env e))
      [ (0, 0, 0); (1, 0, 4); (2, 3, 11); (5, 1, 21) ]
  | None -> Alcotest.fail "no expression found");
  Alcotest.(check bool) "sketch search is much larger than a detail query" true (tried > 50)

let test_apply_model () =
  let sketch = Expr.Infix.(v "?f" * v "x") in
  let filled = Synth.apply_model [ ("?f", 8) ] sketch in
  Alcotest.(check int) "applied" 24 (Expr.eval_int (fun _ -> 3) filled)

(* ---- properties --------------------------------------------------------------- *)

let prop_sat_models_satisfy =
  QCheck.Test.make ~name:"returned models satisfy all constraints" ~count:200
    QCheck.(triple (int_range 1 30) (int_range 0 29) (int_range 1 10))
    (fun (hi, target, m) ->
      let open Expr.Infix in
      let problem : Solver.problem =
        { vars =
            [ ("x", Solver.Range { lo = 0; hi; stride = 1 });
              ("y", Solver.Enum [ 0; 1; 2; 3 ]) ];
          constraints = [ v "x" + v "y" = int target; v "x" % int m = int 0 ]
        }
      in
      let ok_model x y = Stdlib.( && ) (Stdlib.( = ) (Stdlib.( + ) x y) target) (Stdlib.( = ) (x mod m) 0) in
      match Solver.solve problem with
      | Solver.Sat model, _ ->
        let env x = List.assoc x model in
        ok_model (env "x") (env "y")
      | (Solver.Unsat | Solver.Timeout), _ ->
        (* verify by brute force there really is no model *)
        not
          (List.exists
             (fun x -> List.exists (fun y -> ok_model x y) [ 0; 1; 2; 3 ])
             (List.init (Stdlib.( + ) hi 1) Fun.id)))

let prop_solve_all_distinct =
  QCheck.Test.make ~name:"solve_all returns distinct models" ~count:100
    QCheck.(int_range 2 40)
    (fun n ->
      let open Expr.Infix in
      let problem : Solver.problem =
        { vars = [ ("x", Solver.Range { lo = 0; hi = n; stride = 1 }) ];
          constraints = [ v "x" % int 2 = int 0 ]
        }
      in
      let ms = Solver.solve_all problem in
      Stdlib.( && )
        (Stdlib.( = ) (List.length (List.sort_uniq compare ms)) (List.length ms))
        (Stdlib.( = ) (List.length ms) (Stdlib.( + ) (Stdlib.( / ) n 2) 1)))

(* differential fuzz: the incremental watched-constraint engine (plus memo,
   which may serve repeated problems) must agree with the retained naive
   engine on outcome, model set and model order *)
let prop_incremental_matches_naive =
  QCheck.Test.make ~name:"incremental engine matches naive engine" ~count:300
    QCheck.(quad (int_range 0 25) (int_range 1 4) (int_range 0 30) (int_range 1 6))
    (fun (hi, stride, target, m) ->
      let problem : Solver.problem =
        let open Expr.Infix in
        { vars =
            [ ("x", Solver.Range { lo = 0; hi; stride });
              ("y", Solver.Enum [ 0; 1; 3; 7; target ]);
              ("z", Solver.Range { lo = -2; hi = 3; stride = 1 }) ];
          constraints =
            [ v "x" + v "y" + v "z" = int target;
              v "x" % int m = int 0;
              v "y" > v "z" - int 8 ]
        }
      in
      let inc_models = Solver.solve_all ~limit:64 problem in
      let naive_models, _ = Solver.solve_all_naive ~limit:64 problem in
      let inc_outcome, _ = Solver.solve problem in
      let naive_outcome, _ = Solver.solve_naive problem in
      Stdlib.( && )
        (Stdlib.( = ) inc_models naive_models)
        (Stdlib.( = ) inc_outcome naive_outcome))

let () =
  Solver.set_engine Solver.Incremental;
  Alcotest.run "smt"
    [ ( "solver",
        [ Alcotest.test_case "figure-5 split constraint" `Quick test_solve_linear;
          Alcotest.test_case "unsat" `Quick test_solve_unsat;
          Alcotest.test_case "alignment filter" `Quick test_solve_alignment;
          Alcotest.test_case "timeout" `Quick test_solve_timeout;
          Alcotest.test_case "divisors" `Quick test_divisors;
          Alcotest.test_case "divisors O(sqrt n)" `Quick test_divisors_sqrt;
          Alcotest.test_case "bounded forall" `Quick test_forall
        ] );
      ( "memo",
        [ Alcotest.test_case "unsat and timeout memoized" `Quick test_memo_unsat_and_timeout;
          Alcotest.test_case "disabled memo is silent" `Quick test_memo_disabled_is_silent
        ] );
      ( "synthesis",
        [ Alcotest.test_case "split factor hole" `Quick test_fill_holes_split_factor;
          Alcotest.test_case "window offset hole" `Quick test_fill_holes_offset;
          Alcotest.test_case "holes_of" `Quick test_holes_of;
          Alcotest.test_case "affine enumeration" `Quick test_enumerate_affine;
          Alcotest.test_case "apply model" `Quick test_apply_model
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sat_models_satisfy; prop_solve_all_distinct; prop_incremental_matches_naive ]
      )
    ]
