(* Fuzzing over randomly generated kernels: the strongest invariants in the
   system — front-end round trips and pass-sequence semantic preservation. *)

open Xpiler_ir
open Xpiler_machine
open Xpiler_lang
module Pass = Xpiler_passes.Pass
module Rng = Xpiler_util.Rng
module Kgen = Test_support.Kgen
module Tcommon = Test_support.Tcommon

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 1_000_000)

let kernel_of_seed seed = Kgen.kernel (Rng.create seed)
let buf_size b = List.assoc b Kgen.buffer_sizes

(* every generated kernel is well-formed and executes without error *)
let prop_generator_sound =
  QCheck.Test.make ~name:"generated kernels are valid and executable" ~count:200 arb_seed
    (fun seed ->
      let k = kernel_of_seed seed in
      match Validate.check k with
      | Error _ -> false
      | Ok () -> (
        let rng = Rng.create (seed + 1) in
        let args = Tcommon.make_args rng ~buf_size k [] in
        match Interp.run k args with _ -> true | exception _ -> false))

(* printer/parser round trip on every dialect that can express the kernel *)
let roundtrip_dialect d seed =
  let k = kernel_of_seed seed in
  let text = Codegen.emit d k in
  match Parser.parse d text with
  | k' -> Tcommon.divergence ~buf_size ~seed:(seed + 7) k k' = None
  | exception Parser.Parse_error _ -> false

let prop_roundtrip_vnni =
  QCheck.Test.make ~name:"roundtrip through C (vnni dialect)" ~count:150 arb_seed
    (roundtrip_dialect Dialect.vnni)

let prop_roundtrip_cuda =
  QCheck.Test.make ~name:"roundtrip through CUDA C" ~count:150 arb_seed
    (roundtrip_dialect Dialect.cuda)

let prop_roundtrip_bang =
  QCheck.Test.make ~name:"roundtrip through BANG C" ~count:150 arb_seed
    (roundtrip_dialect Dialect.bang)

(* random applicable pass sequences preserve semantics *)
let prop_pass_sequences_preserve =
  QCheck.Test.make ~name:"random pass sequences preserve semantics" ~count:80 arb_seed
    (fun seed ->
      let k0 = kernel_of_seed seed in
      let rng = Rng.create (seed * 31 + 5) in
      let platform = Platform.bang in
      let rec apply k n =
        if n = 0 then k
        else begin
          match
            Xpiler_tuning.Actions.enumerate ~buffer_sizes:Kgen.buffer_sizes platform k
          with
          | [] -> k
          | acts -> (
            match Pass.apply ~platform (Rng.choose rng acts) k with
            | Ok k' -> apply k' (n - 1)
            | Error _ -> apply k (n - 1))
        end
      in
      let k' = apply k0 (1 + Rng.int rng 5) in
      Tcommon.divergence ~buf_size ~seed:(seed + 13) k0 k' = None)

(* the intra-pass tuner's chosen variant is always equivalent *)
let prop_intra_preserves =
  QCheck.Test.make ~name:"intra-pass tuning preserves semantics" ~count:60 arb_seed
    (fun seed ->
      let k = kernel_of_seed seed in
      let v = Xpiler_tuning.Intra.tune ~platform:Platform.cuda k in
      Tcommon.divergence ~buf_size ~seed:(seed + 3) k v.Xpiler_tuning.Intra.kernel = None)

(* analyzer soundness: any kernel the static analyzer passes clean must not
   hit an interpreter runtime error (out-of-bounds or otherwise) on random
   inputs. Two thirds of the corpus is perturbed with detail faults so the
   property also exercises genuinely broken kernels. *)
let prop_analyzer_clean_executes =
  QCheck.Test.make ~name:"analyzer-clean kernels execute without runtime errors" ~count:200
    arb_seed (fun seed ->
      let k = kernel_of_seed seed in
      let frng = Rng.create (seed + 13) in
      let k =
        match seed mod 3 with
        | 0 -> k
        | 1 -> (
          match Xpiler_neural.Fault.inject_index frng k with
          | Some (k', _) -> k'
          | None -> k)
        | _ -> (
          match Xpiler_neural.Fault.inject_bound frng k with
          | Some (k', _) -> k'
          | None -> k)
      in
      match
        Xpiler_analysis.Analyzer.errors
          (Xpiler_analysis.Analyzer.analyze ~extents:Kgen.buffer_sizes k)
      with
      | _ :: _ -> true (* diagnosed: the property claims nothing *)
      | [] -> (
        let args = Tcommon.make_args (Rng.create (seed + 2)) ~buf_size k [] in
        match Interp.run k args with
        | _ -> true
        | exception Interp.Runtime_error _ -> false))

(* differential property over the two evaluation engines: the closure
   compiler and the tree-walker must agree on outputs (bit-for-bit), stats,
   the scalar-store trace stream and runtime errors — on clean kernels, on
   fault-injected ones, and under fuel exhaustion. [compare] rather than [=]
   so NaN-producing kernels count as agreeing when both engines produce the
   same NaN. *)
let run_engine
    (runner :
      ?fuel:int ->
      ?trace:(string -> int -> float -> unit) ->
      Kernel.t ->
      (string * Interp.arg) list ->
      Interp.stats) ~fuel k args =
  let trace = ref [] in
  match runner ~fuel ~trace:(fun b i x -> trace := (b, i, x) :: !trace) k args with
  | (s : Interp.stats) ->
    Ok (s.steps, s.stores, s.intrinsic_elems, s.memcpy_elems, s.barriers, List.rev !trace)
  | exception Interp.Runtime_error m -> Error m

let prop_engines_agree =
  QCheck.Test.make ~name:"compiled and tree engines agree" ~count:200 arb_seed
    (fun seed ->
      let k = kernel_of_seed seed in
      let frng = Rng.create (seed + 17) in
      let k =
        match seed mod 3 with
        | 0 -> k
        | 1 -> (
          match Xpiler_neural.Fault.inject_index frng k with
          | Some (k', _) -> k'
          | None -> k)
        | _ -> (
          match Xpiler_neural.Fault.inject_bound frng k with
          | Some (k', _) -> k'
          | None -> k)
      in
      (* a fifth of the corpus runs out of fuel: exhaustion must strike at
         the same step with the same message in both engines *)
      let fuel = if seed mod 5 = 0 then 100 else 200_000_000 in
      let args = Tcommon.make_args (Rng.create (seed + 2)) ~buf_size k [] in
      let a_tree = Tcommon.clone_args args in
      let a_comp = Tcommon.clone_args args in
      let r_tree = run_engine Interp.run_tree ~fuel k a_tree in
      let r_comp = run_engine Interp.run ~fuel k a_comp in
      compare r_tree r_comp = 0
      && compare (Tcommon.buffers a_tree) (Tcommon.buffers a_comp) = 0)

(* the dynlinked native backend joins the differential as a third engine.
   Native.run is invoked directly (bypassing the Interp dispatch toggle) so
   the property holds whatever XPILER_NATIVE says; if the toolchain is
   absent the native column degenerates and the property reduces to the
   two-way agreement already covered above. Compile cost is bounded by the
   on-disk artifact cache: re-runs of the pinned corpus are all cache hits. *)
let native_runner ?fuel ?trace k args =
  match Native.run ?fuel ?trace k args with
  | Some s -> s
  | None -> Alcotest.fail "native backend returned None despite an available toolchain"

let prop_three_engines_agree =
  QCheck.Test.make ~name:"compiled, tree and native engines agree" ~count:40 arb_seed
    (fun seed ->
      (not (Native.available ()))
      ||
      let k = kernel_of_seed seed in
      let frng = Rng.create (seed + 17) in
      let k =
        match seed mod 3 with
        | 0 -> k
        | 1 -> (
          match Xpiler_neural.Fault.inject_index frng k with
          | Some (k', _) -> k'
          | None -> k)
        | _ -> (
          match Xpiler_neural.Fault.inject_bound frng k with
          | Some (k', _) -> k'
          | None -> k)
      in
      let fuel = if seed mod 5 = 0 then 100 else 200_000_000 in
      let args = Tcommon.make_args (Rng.create (seed + 2)) ~buf_size k [] in
      let a_comp = Tcommon.clone_args args in
      let a_nat = Tcommon.clone_args args in
      let r_comp = run_engine Interp.run ~fuel k a_comp in
      let r_nat = run_engine native_runner ~fuel k a_nat in
      compare r_comp r_nat = 0
      && compare (Tcommon.buffers a_comp) (Tcommon.buffers a_nat) = 0)

(* handcrafted dynamic errors: both engines must raise Runtime_error with the
   exact same message *)
let test_engine_error_parity () =
  let open Expr.Infix in
  let out = Builder.buffer "out" in
  let mk name body = Kernel.make ~name ~params:[ out ] ~launch:[] body in
  let cases =
    [ ( "div0",
        mk "div0"
          [ Builder.for_ "i" (int 4)
              [ Builder.let_ "x" (int 7 / (v "i" - v "i"));
                Builder.store "out" (v "i") (v "x")
              ]
          ] );
      ( "mod0",
        mk "mod0" [ Builder.store "out" (int 0) (Expr.Cast (Dtype.F32, int 5 % int 0)) ] );
      ("oob_store", mk "oob_store" [ Builder.store "out" (int 100_000) (flt 1.0) ]);
      ( "oob_load",
        mk "oob_load" [ Builder.store "out" (int 0) (load "out" (int (-1))) ] );
      ( "neg_extent",
        mk "neg_extent"
          [ Builder.for_ "i" (int 0 - int 3) [ Builder.store "out" (v "i") (flt 0.0) ] ] )
    ]
  in
  List.iter
    (fun (name, k) ->
      let args () = [ ("out", Interp.Buf (Tensor.create 1024)) ] in
      let err runner = match run_engine runner ~fuel:1000 k (args ()) with
        | Ok _ -> Alcotest.failf "%s: expected Runtime_error" name
        | Error m -> m
      in
      Alcotest.(check string)
        (name ^ ": same error") (err Interp.run_tree) (err Interp.run);
      if Native.available () then
        Alcotest.(check string)
          (name ^ ": native raises the same error")
          (err Interp.run) (err native_runner))
    cases

(* regression: a comparison over float operands is an integer-valued
   expression with non-integer children — the closure compiler once
   diverged (infinite dispatch loop) compiling it, and the random generator
   never produces the shape *)
let test_engine_float_compare () =
  let k =
    let open Expr.Infix in
    Kernel.make ~name:"relu_mask"
      ~params:[ Builder.buffer "a"; Builder.buffer "out" ]
      ~launch:[]
      [ Builder.for_ "i" (int 16)
          [ Builder.store "out" (v "i")
              (Expr.Select (load "a" (v "i") > flt 0.0, load "a" (v "i"), flt 0.0))
          ]
      ]
  in
  let args () =
    [ ("a", Interp.Buf (Tensor.random (Rng.create 5) 16));
      ("out", Interp.Buf (Tensor.create 16))
    ]
  in
  let a_tree = args () and a_comp = args () in
  let r_tree = run_engine Interp.run_tree ~fuel:10_000 k a_tree in
  let r_comp = run_engine Interp.run ~fuel:10_000 k a_comp in
  Alcotest.(check bool) "engines agree" true
    (compare r_tree r_comp = 0
    && compare (Tcommon.buffers a_tree) (Tcommon.buffers a_comp) = 0)

(* detail-level fault injection + repair round trip: every repairable fault
   class the oracle injects is fixed by the repairer on these kernels *)
let prop_inject_repair =
  QCheck.Test.make ~name:"injected detail faults are repaired or benign" ~count:40 arb_seed
    (fun seed ->
      let k = kernel_of_seed seed in
      (* wrap as a pseudo-operator so the unit-test oracle applies *)
      let op : Xpiler_ops.Opdef.t =
        { name = "fuzz";
          cls = Xpiler_ops.Opdef.Elementwise;
          shapes = [ [] ];
          buffers =
            List.map
              (fun (name, size) ->
                { Xpiler_ops.Opdef.buf_name = name; dtype = Dtype.F32;
                  size = (fun _ -> size);
                  is_output = String.equal name "out"
                })
              Kgen.buffer_sizes;
          serial = (fun _ -> k);
          flops = (fun _ -> 1.0)
        }
      in
      let rng = Rng.create (seed + 99) in
      match Xpiler_neural.Fault.inject_index rng k with
      | None -> true
      | Some (broken, _) -> (
        match Xpiler_ops.Unit_test.check ~trials:1 op [] broken with
        | Xpiler_ops.Unit_test.Pass -> true (* benign *)
        | Xpiler_ops.Unit_test.Fail _ -> (
          match
            Xpiler_repair.Repairer.repair ~platform:Platform.vnni ~op ~shape:[] broken
          with
          | Xpiler_repair.Repairer.Repaired { kernel; _ } ->
            Xpiler_ops.Unit_test.check op [] kernel = Xpiler_ops.Unit_test.Pass
          | Xpiler_repair.Repairer.Gave_up _ ->
            (* acceptable only when the fault hides under control flow *)
            (Xpiler_repair.Localize.localize ~op ~shape:[] broken).Xpiler_repair.Localize
              .unrepairable
            <> [])))

let () =
  (* pinned RNG: the fuzz corpus is reproducible run to run (development used
     many seeds; see DESIGN.md for the bugs the campaign caught) *)
  let rand = Random.State.make [| 20250706 |] in
  Alcotest.run "fuzz"
    [ ( "properties",
        List.map
          (QCheck_alcotest.to_alcotest ~rand)
          [ prop_generator_sound; prop_roundtrip_vnni; prop_roundtrip_cuda;
            prop_roundtrip_bang; prop_pass_sequences_preserve; prop_intra_preserves;
            prop_engines_agree; prop_three_engines_agree; prop_analyzer_clean_executes;
            prop_inject_repair ] );
      ( "engines",
        [ Alcotest.test_case "error parity" `Quick test_engine_error_parity;
          Alcotest.test_case "float comparison" `Quick test_engine_float_compare ] )
    ]
