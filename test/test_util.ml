module Rng = Xpiler_util.Rng
module Vclock = Xpiler_util.Vclock
module Pool = Xpiler_util.Pool

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail (Printf.sprintf "out of range: %d" v)
  done

let test_rng_int_in () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.int_in r (-5) 5 in
    if v < -5 || v > 5 then Alcotest.fail "range"
  done

let test_rng_split_independent () =
  let r = Rng.create 1 in
  let a = Rng.split r in
  let b = Rng.split r in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_choose_weighted () =
  let r = Rng.create 3 in
  let hits = ref 0 in
  for _ = 1 to 1000 do
    if Rng.choose_weighted r [ (0.9, `A); (0.1, `B) ] = `A then incr hits
  done;
  Alcotest.(check bool) "weighting respected" true (!hits > 800)

let test_rng_shuffle_permutation () =
  let r = Rng.create 5 in
  let xs = [ 1; 2; 3; 4; 5; 6; 7 ] in
  let ys = Rng.shuffle r xs in
  Alcotest.(check (list int)) "same multiset" xs (List.sort compare ys)

let test_vclock () =
  let c = Vclock.create () in
  Vclock.charge c Vclock.Annotation 10.0;
  Vclock.charge c Vclock.Smt_solving 5.0;
  Vclock.charge c Vclock.Annotation 2.5;
  Alcotest.(check (float 1e-9)) "stage total" 12.5 (Vclock.stage_total c Vclock.Annotation);
  Alcotest.(check (float 1e-9)) "elapsed" 17.5 (Vclock.elapsed c);
  let d = Vclock.create () in
  Vclock.charge d Vclock.Unit_test 1.0;
  Vclock.merge c d;
  Alcotest.(check (float 1e-9)) "merged" 18.5 (Vclock.elapsed c);
  Vclock.reset c;
  Alcotest.(check (float 1e-9)) "reset" 0.0 (Vclock.elapsed c)

let test_vclock_merge () =
  let a = Vclock.create () and b = Vclock.create () in
  Vclock.charge a Vclock.Annotation 3.0;
  Vclock.charge b Vclock.Annotation 4.0;
  Vclock.charge b Vclock.Auto_tuning 7.0;
  Vclock.merge a b;
  Alcotest.(check (float 1e-9)) "stages add" 7.0 (Vclock.stage_total a Vclock.Annotation);
  Alcotest.(check (float 1e-9)) "new stage carried" 7.0
    (Vclock.stage_total a Vclock.Auto_tuning);
  Alcotest.(check (float 1e-9)) "src untouched" 11.0 (Vclock.elapsed b);
  (* merge must not fire dst's observer: those charges were already observed
     (if at all) on src's timeline *)
  let fired = ref 0 in
  Vclock.set_observer a (fun _ _ -> incr fired);
  Vclock.merge a b;
  Alcotest.(check int) "merge silent" 0 !fired;
  Vclock.charge a Vclock.Smt_solving 1.0;
  Alcotest.(check int) "charge observed" 1 !fired

let test_vclock_reset () =
  let c = Vclock.create () in
  Vclock.charge c Vclock.Llm_transform 9.0;
  Vclock.charge c Vclock.Unit_test 1.0;
  Vclock.reset c;
  Alcotest.(check (float 1e-9)) "elapsed zero" 0.0 (Vclock.elapsed c);
  List.iter
    (fun st ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "stage %s zero" (Vclock.stage_name st))
        0.0 (Vclock.stage_total c st))
    Vclock.all_stages;
  Vclock.charge c Vclock.Annotation 2.0;
  Alcotest.(check (float 1e-9)) "usable after reset" 2.0 (Vclock.elapsed c)

let test_vclock_breakdown_omits_zero () =
  let c = Vclock.create () in
  Alcotest.(check int) "empty clock" 0 (List.length (Vclock.breakdown c));
  Vclock.charge c Vclock.Smt_solving 5.0;
  Vclock.charge c Vclock.Annotation 1.0;
  let b = Vclock.breakdown c in
  Alcotest.(check int) "only charged stages" 2 (List.length b);
  (* canonical stage order, not charge order *)
  Alcotest.(check (list string)) "canonical order"
    [ "annotation"; "smt-solving" ]
    (List.map (fun (st, _) -> Vclock.stage_name st) b);
  Alcotest.(check bool) "no zero totals" true
    (List.for_all (fun (_, s) -> s > 0.0) b)

let test_vclock_observer () =
  let c = Vclock.create () in
  let seen = ref [] in
  Vclock.set_observer c (fun st s -> seen := (Vclock.stage_name st, s) :: !seen);
  Vclock.charge c Vclock.Annotation 2.0;
  Vclock.charge c Vclock.Unit_test 0.5;
  Alcotest.(check (list (pair string (float 1e-9)))) "charges observed in order"
    [ ("annotation", 2.0); ("unit-test", 0.5) ]
    (List.rev !seen);
  Vclock.clear_observer c;
  Vclock.charge c Vclock.Annotation 1.0;
  Alcotest.(check int) "cleared observer silent" 2 (List.length !seen)

let test_vclock_negative () =
  let c = Vclock.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Vclock.charge: negative duration")
    (fun () -> Vclock.charge c Vclock.Annotation (-1.0))

(* ---- pool: the determinism contract ------------------------------------ *)

(* the host may expose a single core, which would clamp jobs>1 to inline
   execution; lift the cap so these tests exercise real worker domains *)
let forcing_domains f =
  let saved = Pool.get_max_domains () in
  Pool.set_max_domains 4;
  Fun.protect ~finally:(fun () -> Pool.set_max_domains saved) f

let test_pool_order () =
  forcing_domains @@ fun () ->
  let inputs = List.init 23 Fun.id in
  let f _ x = x * x in
  let expect = List.map (fun x -> x * x) inputs in
  Alcotest.(check (list int)) "jobs=1" expect (Pool.map ~jobs:1 f inputs);
  Alcotest.(check (list int)) "jobs=4" expect (Pool.map ~jobs:4 f inputs)

let test_pool_rng_schedule_independent () =
  forcing_domains @@ fun () ->
  let draw task _ = List.init 5 (fun _ -> Rng.int (Pool.rng task) 1_000_000) in
  let a = Pool.map ~jobs:1 ~seed:11 draw (List.init 8 Fun.id) in
  let b = Pool.map ~jobs:4 ~seed:11 draw (List.init 8 Fun.id) in
  Alcotest.(check (list (list int))) "streams depend on (seed,index) only" a b;
  let c = Pool.map ~jobs:4 ~seed:12 draw (List.init 8 Fun.id) in
  Alcotest.(check bool) "seed matters" true (b <> c)

let test_pool_replay_order () =
  forcing_domains @@ fun () ->
  let replayed jobs =
    let log = ref [] in
    let clock = Vclock.create () in
    Vclock.set_observer clock (fun st s -> log := `C (Vclock.stage_name st, s) :: !log);
    ignore
      (Pool.map ~jobs ~clock
         (fun task i ->
           (* defer/charge interleave; replay must preserve per-task order
              and input order across tasks, whatever the schedule *)
           Pool.defer task (fun () -> log := `D (2 * i) :: !log);
           Pool.charge task Vclock.Auto_tuning (float_of_int i);
           Pool.defer task (fun () -> log := `D ((2 * i) + 1) :: !log);
           i)
         (List.init 9 Fun.id));
    (List.rev !log, Vclock.elapsed clock)
  in
  let l1, e1 = replayed 1 in
  let l4, e4 = replayed 4 in
  Alcotest.(check bool) "same event stream" true (l1 = l4);
  Alcotest.(check (float 1e-9)) "same clock" e1 e4;
  (* spot-check the canonical order for task 0 and 1 *)
  let prefix = [ `D 0; `C ("auto-tuning", 0.0); `D 1; `D 2; `C ("auto-tuning", 1.0); `D 3 ] in
  let rec take n = function x :: tl when n > 0 -> x :: take (n - 1) tl | _ -> [] in
  Alcotest.(check bool) "input-order replay" true (take 6 l1 = prefix)

exception Boom of int

let test_pool_first_error_by_index () =
  forcing_domains @@ fun () ->
  List.iter
    (fun jobs ->
      let effects = ref [] in
      (try
         ignore
           (Pool.map ~jobs
              (fun task i ->
                Pool.defer task (fun () -> effects := i :: !effects);
                if i = 1 || i = 3 then raise (Boom i))
              (List.init 6 Fun.id))
       with Boom n ->
         Alcotest.(check int) (Printf.sprintf "jobs=%d: earliest error wins" jobs) 1 n);
      (* effects up to and including the failing task replay; later ones drop *)
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d: effect prefix" jobs)
        [ 0; 1 ] (List.rev !effects))
    [ 1; 4 ]

let test_pool_nested_inline () =
  forcing_domains @@ fun () ->
  let r =
    Pool.map ~jobs:4
      (fun _ i ->
        (* nested maps run inline on the worker; results are unaffected *)
        List.fold_left ( + ) 0 (Pool.map ~jobs:4 (fun _ j -> i * j) [ 1; 2; 3 ]))
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list int)) "nested results" [ 6; 12; 18; 24 ] r

let test_pool_jobs_clamp () =
  (* with the cap at 1, jobs=8 must degrade to inline and still work *)
  let saved = Pool.get_max_domains () in
  Pool.set_max_domains 1;
  Fun.protect
    ~finally:(fun () -> Pool.set_max_domains saved)
    (fun () ->
      Alcotest.(check (list int))
        "clamped map" [ 2; 4; 6 ]
        (Pool.map ~jobs:8 (fun _ x -> 2 * x) [ 1; 2; 3 ]))

let prop_bernoulli_frequency =
  QCheck.Test.make ~name:"bernoulli frequency tracks p" ~count:20
    QCheck.(float_range 0.1 0.9)
    (fun p ->
      let r = Rng.create 77 in
      let hits = ref 0 in
      let n = 5000 in
      for _ = 1 to n do
        if Rng.bernoulli r p then incr hits
      done;
      Float.abs ((float_of_int !hits /. float_of_int n) -. p) < 0.05)

module Listx = Xpiler_util.Listx

let test_listx_take () =
  Alcotest.(check (list int)) "shorter list" [ 1; 2 ] (Listx.take 5 [ 1; 2 ]);
  Alcotest.(check (list int)) "exact" [ 1; 2; 3 ] (Listx.take 3 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "prefix" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "zero" [] (Listx.take 0 [ 1; 2 ]);
  Alcotest.(check (list int)) "negative" [] (Listx.take (-1) [ 1; 2 ])

let test_listx_top_k () =
  let score = float_of_int in
  Alcotest.(check (list int)) "best first" [ 9; 7; 4 ]
    (Listx.top_k ~k:3 ~score [ 4; 9; 1; 7; 2 ]);
  Alcotest.(check (list int)) "k exceeds length" [ 2; 1 ]
    (Listx.top_k ~k:10 ~score [ 1; 2 ]);
  (* ties keep input order (stable) *)
  Alcotest.(check (list (pair int string))) "stable on ties"
    [ (1, "a"); (1, "b") ]
    (Listx.top_k ~k:2 ~score:(fun (s, _) -> float_of_int s) [ (1, "a"); (0, "z"); (1, "b") ])

let () =
  Alcotest.run "util"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "weighted choice" `Quick test_rng_choose_weighted;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation
        ] );
      ( "vclock",
        [ Alcotest.test_case "charge/merge/reset" `Quick test_vclock;
          Alcotest.test_case "merge" `Quick test_vclock_merge;
          Alcotest.test_case "reset" `Quick test_vclock_reset;
          Alcotest.test_case "breakdown omits zero stages" `Quick
            test_vclock_breakdown_omits_zero;
          Alcotest.test_case "observer" `Quick test_vclock_observer;
          Alcotest.test_case "negative rejected" `Quick test_vclock_negative
        ] );
      ( "pool",
        [ Alcotest.test_case "input-order results" `Quick test_pool_order;
          Alcotest.test_case "rng schedule-independent" `Quick
            test_pool_rng_schedule_independent;
          Alcotest.test_case "deterministic replay" `Quick test_pool_replay_order;
          Alcotest.test_case "first error by index" `Quick test_pool_first_error_by_index;
          Alcotest.test_case "nested maps inline" `Quick test_pool_nested_inline;
          Alcotest.test_case "domain clamp" `Quick test_pool_jobs_clamp
        ] );
      ( "listx",
        [ Alcotest.test_case "take" `Quick test_listx_take;
          Alcotest.test_case "top_k" `Quick test_listx_top_k
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_bernoulli_frequency ])
    ]
