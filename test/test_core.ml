open Xpiler_machine
open Xpiler_ops
open Xpiler_core
module Vclock = Xpiler_util.Vclock

let gemm = Registry.find_exn "gemm"
let gemm_shape = List.hd gemm.Opdef.shapes
let relu = Registry.find_exn "relu"
let relu_shape = List.hd relu.Opdef.shapes
let softmax = Registry.find_exn "softmax"
let softmax_shape = List.hd softmax.Opdef.shapes

let run ?config ~src ~dst op shape =
  Xpiler.transcompile ?config ~src ~dst ~op ~shape ()

(* ---- end-to-end translation, all 12 directions on one easy operator ---------- *)

let test_all_directions_relu () =
  let plats = [ Platform.Cuda; Platform.Bang; Platform.Hip; Platform.Vnni ] in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then begin
            let o = run ~src ~dst relu relu_shape in
            match o.Xpiler.status with
            | Xpiler.Success -> ()
            | s ->
              Alcotest.fail
                (Printf.sprintf "%s->%s: %s" (Platform.id_to_string src)
                   (Platform.id_to_string dst) (Xpiler.status_to_string s))
          end)
        plats)
    plats

let test_gemm_cuda_to_bang_tensorized () =
  let o = run ~src:Platform.Cuda ~dst:Platform.Bang gemm gemm_shape in
  Alcotest.(check bool) "success" true (o.Xpiler.status = Xpiler.Success);
  match o.Xpiler.kernel with
  | Some k ->
    Alcotest.(check bool) "uses mlp" true
      (List.exists
         (fun (i : Xpiler_ir.Intrin.t) -> Xpiler_ir.Intrin.equal_op i.op Xpiler_ir.Intrin.Mlp)
         (Xpiler_ir.Stmt.intrinsics k.Xpiler_ir.Kernel.body))
  | None -> Alcotest.fail "no kernel"

let test_target_text_is_valid_dialect () =
  let o = run ~src:Platform.Cuda ~dst:Platform.Bang softmax softmax_shape in
  match (o.Xpiler.status, o.Xpiler.target_text) with
  | Xpiler.Success, Some text -> (
    match Xpiler_lang.Parser.parse_platform Platform.Bang text with
    | k ->
      Alcotest.(check bool) "re-parsed kernel compiles" true
        (Checker.compile Platform.bang k = Ok ())
    | exception Xpiler_lang.Parser.Parse_error m -> Alcotest.fail ("unparseable output: " ^ m))
  | s, _ ->
    Alcotest.fail
      (match s with
      | Xpiler.Success -> "missing text"
      | s -> Xpiler.status_to_string s)

let test_deterministic () =
  let o1 = run ~src:Platform.Cuda ~dst:Platform.Bang gemm gemm_shape in
  let o2 = run ~src:Platform.Cuda ~dst:Platform.Bang gemm gemm_shape in
  Alcotest.(check bool) "same status" true (o1.Xpiler.status = o2.Xpiler.status);
  Alcotest.(check bool) "same text" true (o1.Xpiler.target_text = o2.Xpiler.target_text)

let test_seed_changes_faults () =
  (* different seeds explore different fault draws over many attempts *)
  let distinct = Hashtbl.create 8 in
  for seed = 0 to 7 do
    let config = Config.with_seed Config.default seed in
    let o = run ~config ~src:Platform.Cuda ~dst:Platform.Bang gemm gemm_shape in
    Hashtbl.replace distinct (List.length o.Xpiler.faults_seen) ()
  done;
  Alcotest.(check bool) "fault counts vary across seeds" true (Hashtbl.length distinct > 1)

(* ---- ablations ---------------------------------------------------------------- *)

let count_success config ~src ~dst cases =
  List.fold_left
    (fun acc (c : Registry.case) ->
      let o = run ~config ~src ~dst c.op c.shape in
      if o.Xpiler.status = Xpiler.Success then acc + 1 else acc)
    0 cases

let test_smt_ablation_ordering () =
  (* over a case sample, full >= w/o SMT on the hardest direction *)
  let cs =
    List.filter
      (fun (c : Registry.case) -> List.hd c.op.Opdef.shapes == c.shape)
      (Registry.cases ())
  in
  let full = count_success Config.default ~src:Platform.Cuda ~dst:Platform.Bang cs in
  let wo = count_success Config.without_smt ~src:Platform.Cuda ~dst:Platform.Bang cs in
  Alcotest.(check bool)
    (Printf.sprintf "full (%d) >= w/o SMT (%d)" full wo)
    true (full >= wo)

let test_clock_breakdown_populated () =
  let o = run ~src:Platform.Cuda ~dst:Platform.Bang softmax softmax_shape in
  let clock = o.Xpiler.clock in
  Alcotest.(check bool) "annotation charged" true
    (Vclock.stage_total clock Vclock.Annotation > 0.0);
  Alcotest.(check bool) "llm charged" true
    (Vclock.stage_total clock Vclock.Llm_transform > 0.0);
  Alcotest.(check bool) "unit tests charged" true
    (Vclock.stage_total clock Vclock.Unit_test > 0.0)

let test_tuned_config_improves_throughput () =
  let o_plain = run ~src:Platform.Cuda ~dst:Platform.Bang gemm gemm_shape in
  let o_tuned =
    run ~config:Config.tuned ~src:Platform.Cuda ~dst:Platform.Bang gemm gemm_shape
  in
  match (o_plain.Xpiler.throughput, o_tuned.Xpiler.throughput) with
  | Some p, Some t ->
    Alcotest.(check bool) (Printf.sprintf "tuned %.3g >= plain %.3g" t p) true (t >= p)
  | _ -> Alcotest.fail "missing throughput"

let test_complexity_multiplier_ordering () =
  let da = Registry.find_exn "deformable_attention" in
  let da_k = da.Opdef.serial (List.hd da.Opdef.shapes) in
  let relu_k = relu.Opdef.serial relu_shape in
  Alcotest.(check bool) "deformable attention is the hardest" true
    (Xpiler.complexity_multiplier da_k > 3.0 *. Xpiler.complexity_multiplier relu_k)

(* ---- report ------------------------------------------------------------------ *)

let test_report_render_and_csv () =
  let r =
    Report.make ~title:"t" ~cols:[ "a"; "b" ]
      [ ("row1", [ Report.Pct 97.61; Report.Pair (100.0, 91.7) ]);
        ("row2", [ Report.Ratio 0.784; Report.Count 42 ]);
        ("comma, quote\"", [ Report.Text "x"; Report.Num 1.5 ]) ]
  in
  let text = Report.render r in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "title" true (contains text "=== t ===");
  Alcotest.(check bool) "pct" true (contains text "97.6");
  Alcotest.(check bool) "pair" true (contains text "100.0 / 91.7");
  Alcotest.(check bool) "ratio" true (contains text "0.78x");
  let csv = Report.to_csv r in
  Alcotest.(check bool) "csv header" true (contains csv ",a,b");
  Alcotest.(check bool) "csv escaping" true (contains csv "\"comma, quote\"\"\"");
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "xpiler_report_test" in
  let path = Report.save_csv ~dir ~name:"t" r in
  Alcotest.(check bool) "file written" true (Sys.file_exists path);
  Sys.remove path

(* regression: delimiter characters inside a Text *cell* (not just the row
   label) must be quoted, else downstream CSV readers mis-split the row *)
let test_report_csv_cell_escaping () =
  let r =
    Report.make ~title:"cells" ~cols:[ "c" ]
      [ ("plain", [ Report.Text "a,b" ]);
        ("quoted", [ Report.Text "say \"hi\"" ]);
        ("multiline", [ Report.Text "two\nlines" ]);
        ("cr", [ Report.Text "carriage\rreturn" ]) ]
  in
  let lines = String.split_on_char '\n' (Report.to_csv r) in
  Alcotest.(check (option string)) "comma cell quoted" (Some "plain,\"a,b\"")
    (List.nth_opt lines 1);
  Alcotest.(check (option string)) "quote cell doubled"
    (Some "quoted,\"say \"\"hi\"\"\"")
    (List.nth_opt lines 2);
  (* the embedded newline splits the physical line; both halves stay inside
     one quoted field *)
  Alcotest.(check (option string)) "newline cell opens quote" (Some "multiline,\"two")
    (List.nth_opt lines 3);
  Alcotest.(check (option string)) "newline cell closes quote" (Some "lines\"")
    (List.nth_opt lines 4);
  Alcotest.(check (option string)) "cr cell quoted" (Some "cr,\"carriage\rreturn\"")
    (List.nth_opt lines 5)

(* ---- config ----------------------------------------------------------------- *)

let test_configs () =
  Alcotest.(check bool) "default uses smt" true Config.default.Config.use_smt;
  Alcotest.(check bool) "ablation disables smt" false Config.without_smt.Config.use_smt;
  Alcotest.(check bool) "self-debug flag" true
    Config.without_smt_self_debug.Config.self_debugging;
  Alcotest.(check bool) "tuned tunes" true Config.tuned.Config.tune

let () =
  Alcotest.run "core"
    [ ( "end-to-end",
        [ Alcotest.test_case "all 12 directions (relu)" `Quick test_all_directions_relu;
          Alcotest.test_case "gemm tensorized on bang" `Quick test_gemm_cuda_to_bang_tensorized;
          Alcotest.test_case "target text valid" `Quick test_target_text_is_valid_dialect;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seeds vary" `Quick test_seed_changes_faults
        ] );
      ( "ablations",
        [ Alcotest.test_case "smt ordering" `Slow test_smt_ablation_ordering;
          Alcotest.test_case "clock breakdown" `Quick test_clock_breakdown_populated;
          Alcotest.test_case "tuning improves" `Quick test_tuned_config_improves_throughput;
          Alcotest.test_case "complexity ordering" `Quick test_complexity_multiplier_ordering
        ] );
      ( "report",
        [ Alcotest.test_case "render and csv" `Quick test_report_render_and_csv;
          Alcotest.test_case "csv cell escaping" `Quick test_report_csv_cell_escaping
        ] );
      ("config", [ Alcotest.test_case "variants" `Quick test_configs ])
    ]
