(* Native-backend guarantees: the dynlinked engine is observably identical to
   the closure engine (outputs, stats, traces, error messages), the on-disk
   artifact cache is transparent (cold vs warm runs byte-identical, corrupted
   artifacts degrade to a miss, the LRU stays under its byte budget), the
   fallback path is deterministic when the toolchain is absent, and the
   pipeline produces byte-identical journals with the backend on at any jobs
   count. `dune build @native` runs just this suite; it is also attached to
   `dune runtest`. Everything that needs `ocamlfind ocamlopt` skips cleanly
   when the toolchain is missing. *)

open Xpiler_ir
open Xpiler_machine
open Xpiler_core
module Rng = Xpiler_util.Rng
module Pool = Xpiler_util.Pool
module Kgen = Test_support.Kgen
module Tcommon = Test_support.Tcommon
module Journal = Xpiler_obs.Journal
module Metrics = Xpiler_obs.Metrics
module Registry = Xpiler_ops.Registry
module Opdef = Xpiler_ops.Opdef

(* every test runs against a private cache directory so developer caches and
   parallel test runners never interfere *)
let cache_root =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xpiler-native-test-%d" (Unix.getpid ()))
  in
  Unix.putenv "XPILER_CACHE_DIR" d;
  d

let fresh_cache =
  let n = ref 0 in
  fun () ->
    incr n;
    Unix.putenv "XPILER_CACHE_DIR" (Filename.concat cache_root (string_of_int !n));
    Native.reset_memo_for_testing ()

let buf_size b = List.assoc b Kgen.buffer_sizes
let kernel_of_seed seed = Kgen.kernel (Rng.create seed)

let skip_unless_toolchain () =
  if not (Native.available ()) then
    Alcotest.skip ()

(* observation of one engine run: stats tuple + scalar-store trace + error *)
let observe runner k args =
  let trace = ref [] in
  match runner ~trace:(fun b i x -> trace := (b, i, x) :: !trace) k args with
  | Some (s : Interp.stats) ->
    Ok (s.steps, s.stores, s.intrinsic_elems, s.memcpy_elems, s.barriers, List.rev !trace)
  | None -> Error "no-native-execution"
  | exception Interp.Runtime_error m -> Error ("Runtime_error: " ^ m)

let closure_runner ~trace k args = Some (Compile.run ~trace (Compile.cached k) args)
let native_runner ~trace k args = Native.run ~trace k args

(* the native engine agrees with the closure engine — outputs bit-for-bit,
   stats, trace stream, error messages — across a generated corpus *)
let test_native_matches_closure () =
  skip_unless_toolchain ();
  fresh_cache ();
  let checked = ref 0 in
  List.iter
    (fun seed ->
      let k = kernel_of_seed seed in
      let args = Tcommon.make_args (Rng.create (seed + 2)) ~buf_size k [] in
      let a_c = Tcommon.clone_args args in
      let a_n = Tcommon.clone_args args in
      let r_c = observe closure_runner k a_c in
      let r_n = observe native_runner k a_n in
      (match r_n with
      | Error "no-native-execution" ->
        Alcotest.failf "seed %d: native backend refused a valid kernel" seed
      | _ -> ());
      incr checked;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: engines agree" seed)
        true
        (compare r_c r_n = 0 && compare (Tcommon.buffers a_c) (Tcommon.buffers a_n) = 0))
    [ 0; 3; 17; 42; 100; 271; 828; 1000 ];
  Alcotest.(check bool) "corpus non-empty" true (!checked > 0)

(* handcrafted dynamic errors: byte-identical Runtime_error messages *)
let test_error_parity () =
  skip_unless_toolchain ();
  fresh_cache ();
  let open Expr.Infix in
  let out = Builder.buffer "out" in
  let mk name body = Kernel.make ~name ~params:[ out ] ~launch:[] body in
  let cases =
    [ mk "n_div0"
        [ Builder.for_ "i" (int 4)
            [ Builder.let_ "x" (int 7 / (v "i" - v "i"));
              Builder.store "out" (v "i") (v "x")
            ]
        ];
      mk "n_oob_store" [ Builder.store "out" (int 100_000) (flt 1.0) ];
      mk "n_oob_load" [ Builder.store "out" (int 0) (load "out" (int (-1))) ];
      mk "n_neg_extent"
        [ Builder.for_ "i" (int 0 - int 3) [ Builder.store "out" (v "i") (flt 0.0) ] ];
      mk "n_fuel" [ Builder.for_ "i" (int 1_000_000) [ Builder.let_ "x" (v "i") ] ]
    ]
  in
  List.iter
    (fun k ->
      let args () = [ ("out", Interp.Buf (Tensor.create 1024)) ] in
      let msg runner =
        match runner k (args ()) with
        | Some _ -> Alcotest.failf "%s: expected Runtime_error" k.Kernel.name
        | None -> Alcotest.failf "%s: native backend refused the kernel" k.Kernel.name
        | exception Interp.Runtime_error m -> m
      in
      let fuel = 1000 in
      Alcotest.(check string)
        (k.Kernel.name ^ ": same error")
        (msg (fun k a -> Some (Compile.run ~fuel (Compile.cached k) a)))
        (msg (fun k a -> Native.run ~fuel k a)))
    cases

(* cold vs warm: a fresh-directory (compile) run and a warm-disk (dynlink
   only) run produce identical outputs and stats, and the second run is
   served from disk without recompiling *)
let test_cold_vs_warm () =
  skip_unless_toolchain ();
  fresh_cache ();
  let k = kernel_of_seed 7 in
  let args = Tcommon.make_args (Rng.create 9) ~buf_size k [] in
  let a_cold = Tcommon.clone_args args in
  let a_warm = Tcommon.clone_args args in
  let r_cold = observe native_runner k a_cold in
  let info = Native.cache_info () in
  Alcotest.(check bool) "artifact on disk" true (info.Native.files > 0);
  let src_before = Native.emit_source k in
  (* drop the in-process memo: the next run must come from the disk cache *)
  Native.reset_memo_for_testing ();
  let r_warm = observe native_runner k a_warm in
  Alcotest.(check bool) "cold = warm (stats+trace)" true (compare r_cold r_warm = 0);
  Alcotest.(check bool) "cold = warm (buffers)" true
    (compare (Tcommon.buffers a_cold) (Tcommon.buffers a_warm) = 0);
  Alcotest.(check string) "codegen is deterministic" src_before (Native.emit_source k)

(* the stable metrics snapshot — the cross-jobs/cross-run determinism
   contract — must be untouched by native activity (all native metrics are
   registered unstable) *)
let test_stable_metrics_untouched () =
  skip_unless_toolchain ();
  fresh_cache ();
  let k = kernel_of_seed 11 in
  let args = Tcommon.make_args (Rng.create 4) ~buf_size k [] in
  let before = Metrics.snapshot ~stable_only:true () in
  (match Native.run k (Tcommon.clone_args args) with
  | Some _ -> ()
  | None -> Alcotest.fail "native run refused");
  let after = Metrics.snapshot ~stable_only:true () in
  Alcotest.(check bool) "stable snapshot unchanged" true (before = after)

(* a corrupted or truncated artifact on disk is a cache miss, never a crash.
   The garbage file is planted before this process ever loads the key — the
   scenario is an artifact damaged by a crashed writer or bit rot, found at
   lookup time. (Live artifacts are never overwritten in place: builds land
   in a scratch directory and are renamed over, so a mapped .cmxs can only
   be unlinked, never truncated under a running process.) *)
let test_corrupt_artifact_is_miss () =
  skip_unless_toolchain ();
  fresh_cache ();
  let k = kernel_of_seed 23 in
  let args = Tcommon.make_args (Rng.create 6) ~buf_size k [] in
  let dir = Native.cache_dir () in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let planted = Filename.concat dir (Native.kernel_key k ^ ".cmxs") in
  let oc = open_out_bin planted in
  output_string oc "corrupt";
  close_out oc;
  let r1 = observe native_runner k (Tcommon.clone_args args) in
  (match r1 with
  | Error "no-native-execution" -> Alcotest.fail "corrupt artifact was not recompiled"
  | _ -> ());
  let a_c = Tcommon.clone_args args in
  let r_c = observe closure_runner k a_c in
  Alcotest.(check bool) "recompiled run agrees with closure engine" true (compare r1 r_c = 0);
  (* the replacement artifact must be valid: a warm re-load still works *)
  Native.reset_memo_for_testing ();
  let r2 = observe native_runner k (Tcommon.clone_args args) in
  Alcotest.(check bool) "replacement artifact loads warm" true (compare r1 r2 = 0)

(* toolchain absent: the backend reports no execution, Interp falls back to
   the closure engine, and results are exactly the closure engine's *)
let test_fallback_determinism () =
  fresh_cache ();
  Native.set_toolchain_override (Some false);
  let was = Native.enabled () in
  Native.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Native.set_toolchain_override None;
      Native.set_enabled was)
    (fun () ->
      let k = kernel_of_seed 31 in
      let args = Tcommon.make_args (Rng.create 8) ~buf_size k [] in
      Alcotest.(check bool) "backend declines" true
        (Native.run k (Tcommon.clone_args args) = None);
      let a_i = Tcommon.clone_args args in
      let a_c = Tcommon.clone_args args in
      let s_i = Interp.run k a_i in
      let s_c = Compile.run (Compile.cached k) a_c in
      Alcotest.(check bool) "fallback = closure engine" true
        (compare s_i s_c = 0 && compare (Tcommon.buffers a_i) (Tcommon.buffers a_c) = 0))

(* the size-bounded LRU keeps the directory under its byte budget *)
let test_cache_eviction () =
  skip_unless_toolchain ();
  fresh_cache ();
  Native.set_cache_limit_bytes (Some 1);
  Fun.protect
    ~finally:(fun () -> Native.set_cache_limit_bytes None)
    (fun () ->
      List.iter
        (fun seed ->
          let k = kernel_of_seed seed in
          let args = Tcommon.make_args (Rng.create (seed + 1)) ~buf_size k [] in
          match Native.run k args with
          | Some _ -> ()
          | None -> Alcotest.failf "seed %d: native run refused" seed)
        [ 51; 52 ];
      let info = Native.cache_info () in
      Alcotest.(check bool)
        (Printf.sprintf "directory evicted under budget (%d bytes left)" info.Native.bytes)
        true
        (info.Native.bytes <= 1))

(* cache maintenance: clear removes everything and reports a count *)
let test_cache_clear () =
  skip_unless_toolchain ();
  fresh_cache ();
  let k = kernel_of_seed 61 in
  let args = Tcommon.make_args (Rng.create 3) ~buf_size k [] in
  (match Native.run k args with Some _ -> () | None -> Alcotest.fail "native run refused");
  let removed = Native.cache_clear () in
  Alcotest.(check bool) "clear removed files" true (removed > 0);
  Alcotest.(check int) "directory empty" 0 (Native.cache_info ()).Native.files

(* content keying: structurally equal kernels share a key; the codegen salt
   separates artifact generations *)
let test_cache_key () =
  let k1 = kernel_of_seed 77 in
  let k2 = kernel_of_seed 77 in
  let k3 = kernel_of_seed 78 in
  Alcotest.(check string) "equal kernels, equal key" (Native.kernel_key k1)
    (Native.kernel_key k2);
  Alcotest.(check bool) "distinct kernels, distinct keys" true
    (Native.kernel_key k1 <> Native.kernel_key k3);
  Alcotest.(check bool) "salt separates generations" true
    (Kernel.cache_key ~salt:"a" k1 <> Kernel.cache_key ~salt:"b" k1)

(* pipeline determinism with the backend on: jobs=1 and jobs=4 produce
   byte-identical trace journals, and native-on equals native-off *)
let gemm = Registry.find_exn "gemm"
let gemm_shape = List.hd gemm.Opdef.shapes

let traced ~native ~jobs =
  { (Config.with_jobs
       (Config.with_trace (Config.with_fault_scale (Config.with_seed Config.default 11) 20.0)
          Xpiler_obs.Tracer.Detail)
       jobs)
    with
    Config.native_backend = native
  }

let run_pipeline ~config =
  Xpiler.transcompile ~config ~src:Platform.Cuda ~dst:Platform.Bang ~op:gemm ~shape:gemm_shape
    ()

let with_max_domains n f =
  let prev = Pool.get_max_domains () in
  Pool.set_max_domains n;
  Fun.protect ~finally:(fun () -> Pool.set_max_domains prev) f

let test_pipeline_jobs_invariant () =
  skip_unless_toolchain ();
  fresh_cache ();
  with_max_domains 4 @@ fun () ->
  (* warm the process-global reference-output cache so every compared run is
     on equal footing (same discipline as the repair hot-path suite) *)
  ignore (run_pipeline ~config:(traced ~native:false ~jobs:1));
  let journal o = Journal.encode o.Xpiler.trace in
  let o_off = run_pipeline ~config:(traced ~native:false ~jobs:1) in
  let o_n1 = run_pipeline ~config:(traced ~native:true ~jobs:1) in
  let o_n4 = run_pipeline ~config:(traced ~native:true ~jobs:4) in
  Alcotest.(check bool) "toggle restored" false (Native.enabled ());
  Alcotest.(check string) "native on = native off (journal)" (journal o_off) (journal o_n1);
  Alcotest.(check string) "jobs=1 = jobs=4 with native on (journal)" (journal o_n1)
    (journal o_n4);
  Alcotest.(check bool) "same target text" true
    (o_n1.Xpiler.target_text = o_n4.Xpiler.target_text
    && o_off.Xpiler.target_text = o_n1.Xpiler.target_text)

let () =
  Alcotest.run "native"
    [ ( "parity",
        [ Alcotest.test_case "native matches closure engine" `Slow test_native_matches_closure;
          Alcotest.test_case "error-message parity" `Slow test_error_parity
        ] );
      ( "cache",
        [ Alcotest.test_case "cold vs warm identical" `Slow test_cold_vs_warm;
          Alcotest.test_case "stable metrics untouched" `Slow test_stable_metrics_untouched;
          Alcotest.test_case "corrupt artifact is a miss" `Slow test_corrupt_artifact_is_miss;
          Alcotest.test_case "LRU eviction under byte budget" `Slow test_cache_eviction;
          Alcotest.test_case "cache clear" `Slow test_cache_clear;
          Alcotest.test_case "content keying" `Quick test_cache_key
        ] );
      ( "pipeline",
        [ Alcotest.test_case "fallback determinism" `Quick test_fallback_determinism;
          Alcotest.test_case "jobs invariance with native on" `Slow
            test_pipeline_jobs_invariant
        ] )
    ]
