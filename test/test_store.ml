(* Durable-store guarantees: a record stream appended to the write-ahead
   log replays back into the in-memory tables bit-for-bit, effect receipts
   included (QCheck property); a torn tail loads as the valid prefix and is
   repaired before the next append; a corrupt snapshot degrades to a
   log-only rebuild, never an error; compaction preserves content exactly
   while emptying the logs; and the persisted state of a tuning search is
   identical at any jobs count. `dune build @store` runs just this suite;
   it is also attached to `dune runtest`. *)

open Xpiler_machine
open Xpiler_ir
module Rng = Xpiler_util.Rng
module Kgen = Test_support.Kgen
module Pass = Xpiler_passes.Pass
module Problem = Xpiler_smt.Problem
module Memo = Xpiler_smt.Memo
module Schedule_db = Xpiler_tuning.Schedule_db
module Transposition = Xpiler_tuning.Transposition
module Mcts = Xpiler_tuning.Mcts
module Wal = Xpiler_store.Wal
module Store = Xpiler_store.Store
module Registry = Xpiler_ops.Registry
module Opdef = Xpiler_ops.Opdef

let root =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "xpiler-store-test-%d" (Unix.getpid ()))

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat root (string_of_int !n)

let ok_exn = function Ok v -> v | Error m -> Alcotest.fail m

let clear_tables () =
  Transposition.clear ();
  Memo.clear ()

let pid = Platform.bang.Platform.id

(* ---- record generation ---------------------------------------------------

   Small key spaces on purpose: colliding keys exercise the last-wins
   replay/compaction semantics, not just plain accumulation. *)

let gen_kernel rng = Kgen.kernel (Rng.create (100 + Rng.int rng 6))

let gen_specs rng =
  List.filteri
    (fun i _ -> i <= Rng.int rng 3)
    [ Pass.Loop_split { var = "i0"; factor = 2 + Rng.int rng 6 };
      Pass.Loop_fuse { var = "i1" };
      Pass.Loop_recovery;
      Pass.Tensorize ]

let gen_problem rng =
  let var = Rng.choose rng [ "x"; "y"; "len" ] in
  { Problem.vars = [ (var, Problem.Range { lo = 0; hi = 4 + Rng.int rng 8; stride = 1 }) ];
    constraints = [ Expr.Var var ]
  }

let gen_payload rng =
  match Rng.int rng 4 with
  | 0 -> Memo.Outcome (Problem.Sat [ ("x", Rng.int rng 9) ])
  | 1 -> Memo.Outcome Problem.Unsat
  | 2 -> Memo.Outcome Problem.Timeout
  | _ -> Memo.Model_list [ [ ("x", Rng.int rng 9) ]; [ ("x", 9 + Rng.int rng 9) ] ]

let gen_record rng =
  match Rng.int rng 3 with
  | 0 ->
    let kernel = gen_kernel rng in
    Store.Schedule
      { signature = Schedule_db.signature pid kernel;
        entry =
          { Schedule_db.specs = Pass.Loop_recovery :: gen_specs rng;
            reward = float_of_int (1 + Rng.int rng 16) /. 4.0
          }
      }
  | 1 ->
    Store.Transposition
      ( { Transposition.Key.platform = pid;
          budget = 4 + Rng.int rng 3;
          prune = Rng.bernoulli rng 0.5;
          compose = Rng.bernoulli rng 0.5;
          kernel = gen_kernel rng
        },
        { Transposition.reward = float_of_int (Rng.int rng 64) /. 8.0;
          evaluated = Rng.int rng 50;
          pruned = Rng.int rng 50
        } )
  | _ ->
    Store.Solver_memo
      ( { Memo.Key.mode =
            (if Rng.bernoulli rng 0.5 then Memo.Solve else Memo.Models { limit = 1 + Rng.int rng 4 });
          max_steps = 100 * (1 + Rng.int rng 3);
          problem = gen_problem rng
        },
        { Memo.payload = gen_payload rng; stats = { Problem.steps = Rng.int rng 200; evals = Rng.int rng 500 } } )

let gen_records rng n =
  let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (gen_record rng :: acc) in
  go n []

(* the expected final table contents: last-wins over the stream, computed
   independently of the store with the modules' own key equalities *)
let upsert equal k v l = (k, v) :: List.filter (fun (k', _) -> not (equal k k')) l

let expected records =
  let sched, trans, memo =
    List.fold_left
      (fun (s, t, m) r ->
        match r with
        | Store.Schedule { signature; entry } -> (upsert Int.equal signature entry s, t, m)
        | Store.Transposition (k, e) -> (s, upsert Transposition.Key.equal k e t, m)
        | Store.Solver_memo (k, e) -> (s, t, upsert Memo.Key.equal k e m))
      ([], [], []) records
  in
  (List.sort compare sched, List.sort compare trans, List.sort compare memo)

let dump_tables db =
  ( List.sort compare (Schedule_db.fold db (fun k e acc -> (k, e) :: acc) []),
    List.sort compare (Transposition.fold (fun k e acc -> (k, e) :: acc) []),
    List.sort compare (Memo.fold (fun k e acc -> (k, e) :: acc) []) )

let load_fresh store =
  clear_tables ();
  let db = Schedule_db.create () in
  let stats = Store.load ~db store in
  (db, stats)

(* ---- WAL round-trip property --------------------------------------------- *)

let prop_roundtrip seed =
  let rng = Rng.create seed in
  let records = gen_records rng (1 + Rng.int rng 40) in
  let store = ok_exn (Store.open_store ~shards:3 ~dir:(fresh_dir ()) ()) in
  List.iter (Store.append store) records;
  let exp = expected records in
  (* replay reconstructs the tables bit-for-bit, receipts included *)
  let db, stats = load_fresh store in
  if stats.Store.torn_tails <> 0 || stats.Store.corrupt_snapshots <> 0 || stats.Store.dropped <> 0
  then QCheck.Test.fail_report "clean store reported damage";
  if Store.total stats.Store.loaded <> List.length records then
    QCheck.Test.fail_report "replay count mismatch";
  if dump_tables db <> exp then QCheck.Test.fail_report "replayed tables differ from the stream";
  (* two loads of the same store fingerprint identically *)
  let fp1 = Store.fingerprint ~db () in
  let db2, _ = load_fresh store in
  if Store.fingerprint ~db:db2 () <> fp1 then QCheck.Test.fail_report "reload changed fingerprint";
  (* compaction folds the stream into a snapshot without changing content *)
  let cs = ok_exn (Store.compact store) in
  if cs.Store.records_in <> List.length records then
    QCheck.Test.fail_report "compaction lost input records";
  let db3, stats3 = load_fresh store in
  if Store.total stats3.Store.loaded <> cs.Store.records_out then
    QCheck.Test.fail_report "snapshot replay count differs from compaction output";
  if dump_tables db3 <> exp then QCheck.Test.fail_report "compaction changed table contents";
  if Store.fingerprint ~db:db3 () <> fp1 then
    QCheck.Test.fail_report "compaction changed fingerprint";
  let info = Store.scan store in
  Store.total info.Store.wal_records = 0 && not info.Store.damaged

let roundtrip_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25 ~name:"wal roundtrip reconstructs tables"
       QCheck.(int_bound 1_000_000)
       prop_roundtrip)

(* ---- torn tails ----------------------------------------------------------- *)

let flip_byte path pos =
  let ic = open_in_bin path in
  let bytes = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string bytes in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_torn_tail () =
  let rng = Rng.create 42 in
  let records = gen_records rng 8 in
  let dir = fresh_dir () in
  let store = ok_exn (Store.open_store ~shards:1 ~dir ()) in
  List.iter (Store.append store) records;
  Store.close store;
  (* crash mid-append: cut into the last frame *)
  let wal = Filename.concat dir "shard-000.wal" in
  let size = (Unix.stat wal).Unix.st_size in
  Wal.truncate wal (size - 3);
  let db, stats = load_fresh store in
  Alcotest.(check int) "one torn tail" 1 stats.Store.torn_tails;
  Alcotest.(check int) "valid prefix replayed" 7 (Store.total stats.Store.loaded);
  let prefix = List.filteri (fun i _ -> i < 7) records in
  Alcotest.(check bool) "prefix contents exact" true (dump_tables db = expected prefix);
  (* the next append repairs the tail before writing after it *)
  let extra = gen_record rng in
  Store.append store extra;
  let db2, stats2 = load_fresh store in
  Alcotest.(check int) "repaired" 0 stats2.Store.torn_tails;
  Alcotest.(check int) "prefix plus the new record" 8 (Store.total stats2.Store.loaded);
  Alcotest.(check bool) "repaired contents exact" true
    (dump_tables db2 = expected (prefix @ [ extra ]))

(* ---- snapshot corruption -------------------------------------------------- *)

let test_corrupt_snapshot () =
  let rng = Rng.create 7 in
  let before = gen_records rng 6 in
  let dir = fresh_dir () in
  let store = ok_exn (Store.open_store ~shards:1 ~dir ()) in
  List.iter (Store.append store) before;
  let cs = ok_exn (Store.compact store) in
  let after = gen_records rng 3 in
  List.iter (Store.append store) after;
  Store.close store;
  let snap = Filename.concat dir "shard-000.snap" in
  (* a flipped payload byte cuts the snapshot short at that frame; the
     valid prefix and the whole log still replay *)
  flip_byte snap ((Unix.stat snap).Unix.st_size - 1);
  let _db, stats = load_fresh store in
  Alcotest.(check int) "snapshot counted corrupt" 1 stats.Store.corrupt_snapshots;
  Alcotest.(check int) "valid snapshot prefix plus the whole log"
    (cs.Store.records_out - 1 + 3)
    (Store.total stats.Store.loaded);
  (* a smashed header drops the snapshot entirely: the store degrades to
     exactly what the log holds *)
  flip_byte snap 0;
  let db2, stats2 = load_fresh store in
  Alcotest.(check int) "header corruption counted" 1 stats2.Store.corrupt_snapshots;
  Alcotest.(check int) "only the log replays" 3 (Store.total stats2.Store.loaded);
  Alcotest.(check bool) "rebuilt from log exactly" true (dump_tables db2 = expected after)

(* ---- write-through attachment --------------------------------------------- *)

let test_attach_write_through () =
  let dir = fresh_dir () in
  let store = ok_exn (Store.open_store ~dir ()) in
  let db = Schedule_db.create () in
  clear_tables ();
  Store.attach ~db store;
  Alcotest.(check bool) "attached" true (Store.active () <> None);
  let rng = Rng.create 11 in
  let kernel = gen_kernel rng in
  Schedule_db.record db pid kernel ~specs:[ Pass.Loop_recovery ] ~reward:2.0;
  Transposition.store ~platform:pid ~budget:8 ~prune:true ~compose:true kernel
    { Transposition.reward = 1.5; evaluated = 3; pruned = 1 };
  Memo.store ~mode:Memo.Solve ~max_steps:100 (gen_problem rng)
    { Memo.payload = Memo.Outcome Problem.Unsat; stats = { Problem.steps = 5; evals = 9 } };
  Store.detach ();
  let info = Store.scan store in
  Alcotest.(check int) "schedule record persisted" 1 info.Store.wal_records.Store.schedule;
  Alcotest.(check int) "transposition record persisted" 1 info.Store.wal_records.Store.transposition;
  Alcotest.(check int) "memo record persisted" 1 info.Store.wal_records.Store.solver_memo;
  (* detached: fresh learning no longer streams to the log *)
  Transposition.store ~platform:pid ~budget:9 ~prune:true ~compose:true kernel
    { Transposition.reward = 1.0; evaluated = 1; pruned = 0 };
  Alcotest.(check int) "no append after detach" 3
    (Store.total (Store.scan store).Store.wal_records);
  (* ensure is idempotent: same dir, same attachment *)
  let t1 = ok_exn (Store.ensure ~db ~dir ()) in
  let t2 = ok_exn (Store.ensure ~db ~dir ()) in
  Alcotest.(check bool) "ensure is idempotent" true (t1 == t2);
  Store.detach ()

(* ---- jobs determinism of the persisted state ------------------------------ *)

let test_jobs_determinism () =
  let op = Registry.find_exn "gemm" in
  let shape = List.hd op.Opdef.shapes in
  let kernel = op.Opdef.serial shape in
  let buffer_sizes =
    List.map (fun (b : Opdef.buffer_spec) -> (b.buf_name, b.size shape)) op.Opdef.buffers
  in
  let config =
    { Mcts.default_config with
      simulations = 4; max_depth = 4; intra_candidates = 6; root_parallel = 2 }
  in
  let persisted jobs =
    let dir = fresh_dir () in
    let store = ok_exn (Store.open_store ~dir ()) in
    let db = Schedule_db.create () in
    clear_tables ();
    Store.attach ~db store;
    ignore (Mcts.search ~config ~buffer_sizes ~jobs ~share:true ~db ~platform:Platform.bang kernel);
    Store.detach ();
    store
  in
  let s1 = persisted 1 and s4 = persisted 4 in
  let db1, st1 = load_fresh s1 in
  let d1 = dump_tables db1 in
  let db4, st4 = load_fresh s4 in
  let d4 = dump_tables db4 in
  Alcotest.(check bool) "the search persisted something" true (Store.total st1.Store.loaded > 0);
  Alcotest.(check int) "same record count at any jobs" (Store.total st1.Store.loaded)
    (Store.total st4.Store.loaded);
  Alcotest.(check bool) "identical persisted state at jobs=1 and jobs=4" true (d1 = d4);
  ignore db4

let () =
  clear_tables ();
  Alcotest.run "store"
    [ ( "wal",
        [ roundtrip_test;
          Alcotest.test_case "torn tail is a valid prefix" `Quick test_torn_tail;
          Alcotest.test_case "corrupt snapshot rebuilt from log" `Quick test_corrupt_snapshot
        ] );
      ( "wiring",
        [ Alcotest.test_case "attach write-through" `Quick test_attach_write_through ] );
      ( "determinism",
        [ Alcotest.test_case "jobs=1 vs jobs=4 persisted state" `Quick test_jobs_determinism ] )
    ]
