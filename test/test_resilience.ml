(* Resilient-pipeline guarantees: the escalation ladder and checkpoint
   rollback. The core invariant — the motivation for this layer — is that
   with rollback on, no pass ever commits a checker-rejected kernel to
   pipeline state, so a single unlucky pass can no longer poison the rest of
   the sequence (the Gave_up -> commit-broken path of the seed pipeline). *)

open Xpiler_machine
open Xpiler_ops
open Xpiler_core

let gemm = Registry.find_exn "gemm"
let gemm_shape = List.hd gemm.Opdef.shapes

let run ~config ~src ~dst op shape = Xpiler.transcompile ~config ~src ~dst ~op ~shape ()

let unit_passes op shape k = Unit_test.check ~trials:1 op shape k = Unit_test.Pass

(* rollback on, but with the recovery rungs below "skip" disabled so that a
   failed validation goes LLM -> SMT -> skip: the configuration that
   exercises the Gave_up path the hardest *)
let rollback_only scale seed =
  { (Config.with_seed Config.default seed) with
    Config.escalation = Config.no_escalation;
    fault_scale = scale
  }

let seed_like scale seed =
  Config.with_fault_scale (Config.with_seed Config.seed_pipeline seed) scale

(* ---- the Gave_up regression ---------------------------------------------------- *)

(* With rollback on, every kernel ever committed passed validation, so the
   final kernel always computes correctly (the unit test is part of [valid]),
   whatever the final status is. The seed pipeline committed the broken
   kernel instead; at the same fault rates it must show at least one
   miscomputing end state over the same seeds — the bug this PR fixes. *)
let test_gave_up_never_commits_broken () =
  let seeds = List.init 16 (fun i -> i) in
  let scale = 25.0 in
  let miscomputes config seed =
    let o = run ~config:(config scale seed) ~src:Platform.Cuda ~dst:Platform.Bang gemm gemm_shape in
    match o.Xpiler.kernel with
    | Some k -> not (unit_passes gemm gemm_shape k)
    | None -> true
  in
  let rollback_bad = List.filter (miscomputes rollback_only) seeds in
  let seed_bad = List.filter (miscomputes seed_like) seeds in
  Alcotest.(check (list int)) "rollback never commits a miscomputing kernel" [] rollback_bad;
  Alcotest.(check bool)
    (Printf.sprintf "seed pipeline miscomputes on %d/16 seeds (must be > 0 for the \
                     regression to bite)"
       (List.length seed_bad))
    true
    (List.length seed_bad > 0)

(* the skip rung is actually reached (the test above is vacuous otherwise) *)
let test_skip_rung_exercised () =
  let seeds = List.init 16 (fun i -> i) in
  let skipped =
    List.exists
      (fun seed ->
        let o =
          run ~config:(rollback_only 25.0 seed) ~src:Platform.Cuda ~dst:Platform.Bang gemm
            gemm_shape
        in
        o.Xpiler.skipped_passes <> []
        && List.exists
             (fun (e : Ledger.entry) -> e.Ledger.rung = Ledger.Skip)
             o.Xpiler.ledger)
      seeds
  in
  Alcotest.(check bool) "some seed rolls a pass back" true skipped

(* a Degraded outcome is reported as such: skipped passes nonempty, checks ok *)
let test_degraded_distinguishable () =
  let seeds = List.init 32 (fun i -> i) in
  let degraded =
    List.filter_map
      (fun seed ->
        let o =
          run ~config:(rollback_only 25.0 seed) ~src:Platform.Cuda ~dst:Platform.Bang gemm
            gemm_shape
        in
        if o.Xpiler.status = Xpiler.Degraded then Some o else None)
      seeds
  in
  Alcotest.(check bool) "at least one Degraded outcome over 32 seeds" true (degraded <> []);
  List.iter
    (fun (o : Xpiler.outcome) ->
      Alcotest.(check bool) "degraded => skipped passes recorded" true
        (o.Xpiler.skipped_passes <> []);
      match o.Xpiler.kernel with
      | Some k ->
        Alcotest.(check bool) "degraded kernel computes" true (unit_passes gemm gemm_shape k)
      | None -> Alcotest.fail "degraded outcome without kernel")
    degraded

(* ---- fuzz: accepted outcomes never contain checker-rejected kernels ----------- *)

let arb_case =
  QCheck.make
    ~print:(fun (seed, scale_x10, dst) ->
      Printf.sprintf "seed=%d scale=%.1f dst=%s" seed
        (float_of_int scale_x10 /. 10.0)
        (Platform.id_to_string dst))
    QCheck.Gen.(
      triple (int_range 0 100_000) (int_range 50 300)
        (oneofl [ Platform.Bang; Platform.Vnni; Platform.Cuda ]))

(* full default ladder at elevated injection rates: whatever the ladder did
   (re-prompt, repair, symbolic fallback, skip), an outcome reported as
   [Success] or [Degraded] compiles on the target and computes correctly *)
let prop_accepted_outcomes_are_valid =
  QCheck.Test.make ~name:"Degraded/Ok outcomes never contain rejected kernels" ~count:40
    arb_case (fun (seed, scale_x10, dst) ->
      let scale = float_of_int scale_x10 /. 10.0 in
      let config = Config.with_fault_scale (Config.with_seed Config.default seed) scale in
      let src = if dst = Platform.Cuda then Platform.Bang else Platform.Cuda in
      let o = run ~config ~src ~dst gemm gemm_shape in
      if not (Xpiler.accepted o.Xpiler.status) then true
      else
        match o.Xpiler.kernel with
        | None -> false
        | Some k ->
          Checker.compile (Platform.of_id dst) k = Ok () && unit_passes gemm gemm_shape k)

(* rollback invariant under fuzz: the committed kernel always computes, even
   when the final status is a (target) compile error after a skipped pass *)
let prop_rollback_commits_only_validated =
  QCheck.Test.make ~name:"rollback commits only unit-test-validated kernels" ~count:40
    arb_case (fun (seed, scale_x10, dst) ->
      let scale = float_of_int scale_x10 /. 10.0 in
      let config =
        { (Config.with_seed Config.default seed) with
          Config.escalation =
            Config.{ default_escalation with symbolic_fallback = false };
          fault_scale = scale
        }
      in
      let src = if dst = Platform.Cuda then Platform.Bang else Platform.Cuda in
      let o = run ~config ~src ~dst gemm gemm_shape in
      match o.Xpiler.kernel with Some k -> unit_passes gemm gemm_shape k | None -> false)

(* ---- ladder bookkeeping -------------------------------------------------------- *)

let test_ledger_consistency () =
  let config = Config.with_fault_scale Config.default 20.0 in
  let o = run ~config ~src:Platform.Cuda ~dst:Platform.Bang gemm gemm_shape in
  Alcotest.(check bool) "one ledger entry per attempted pass" true
    (List.length o.Xpiler.ledger
     >= List.length o.Xpiler.specs_applied + List.length o.Xpiler.skipped_passes);
  List.iter
    (fun (e : Ledger.entry) ->
      Alcotest.(check bool) "attempts positive unless inapplicable" true
        (e.Ledger.attempts >= 1
         || match e.Ledger.result with Ledger.Not_applicable _ -> true | _ -> false);
      Alcotest.(check bool) "time charged is nonnegative" true (e.Ledger.time_charged >= 0.0);
      match e.Ledger.result with
      | Ledger.Applied -> Alcotest.(check bool) "clean apply = rung 0" true (e.Ledger.rung = Ledger.Validate)
      | Ledger.Applied_reprompt ->
        Alcotest.(check bool) "reprompt result implies reprompt rung" true
          (Ledger.rung_index e.Ledger.rung >= Ledger.rung_index Ledger.Reprompt)
      | Ledger.Repaired ->
        Alcotest.(check bool) "repair implies smt rung" true
          (Ledger.rung_index e.Ledger.rung >= Ledger.rung_index Ledger.Smt)
      | Ledger.Symbolic_applied ->
        Alcotest.(check bool) "symbolic implies symbolic rung" true
          (Ledger.rung_index e.Ledger.rung >= Ledger.rung_index Ledger.Symbolic)
      | Ledger.Skipped ->
        Alcotest.(check bool) "skip implies skip rung" true (e.Ledger.rung = Ledger.Skip)
      | Ledger.Committed_broken | Ledger.Not_applicable _ -> ())
    o.Xpiler.ledger

let test_ledger_report_renders () =
  let config = Config.with_fault_scale Config.default 20.0 in
  let o = run ~config ~src:Platform.Cuda ~dst:Platform.Bang gemm gemm_shape in
  let text = Report.render (Ledger.report o.Xpiler.ledger) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "title present" true (contains text "Pass attempt ledger");
  Alcotest.(check bool) "rung column present" true (contains text "rung")

(* escalation is observable on the trace: the ladder emits per-rung counters
   and a pass.ledger instant per attempted pass *)
let test_trace_surfaces_escalation () =
  let config =
    Config.with_trace
      (Config.with_fault_scale Config.default 20.0)
      Xpiler_obs.Tracer.Detail
  in
  let o = run ~config ~src:Platform.Cuda ~dst:Platform.Bang gemm gemm_shape in
  let instants =
    List.filter
      (fun e -> match e with Xpiler_obs.Event.Instant { name = "pass.ledger"; _ } -> true | _ -> false)
      o.Xpiler.trace
  in
  Alcotest.(check int) "one pass.ledger instant per ledger entry"
    (List.length o.Xpiler.ledger) (List.length instants);
  let reprompts =
    List.exists
      (fun (e : Ledger.entry) -> Ledger.rung_index e.Ledger.rung >= 1)
      o.Xpiler.ledger
  in
  let counted =
    List.exists
      (fun e ->
        match e with Xpiler_obs.Event.Count { name = "escalate.reprompt"; _ } -> true | _ -> false)
      o.Xpiler.trace
  in
  Alcotest.(check bool) "escalate.* counter mirrors the ledger" reprompts counted

(* ---- config derivation --------------------------------------------------------- *)

let test_max_escalation_mapping () =
  let open Config in
  let c0 = with_max_escalation default 0 in
  Alcotest.(check bool) "rung 0 disables everything" true
    (c0.escalation = no_escalation && (not c0.use_smt) && not c0.rollback);
  let c2 = with_max_escalation default 2 in
  Alcotest.(check bool) "rung 2 keeps smt, drops symbolic+rollback" true
    (c2.use_smt && (not c2.escalation.symbolic_fallback) && not c2.rollback);
  let c4 = with_max_escalation default 4 in
  Alcotest.(check bool) "rung 4 is the full ladder" true
    (c4.use_smt && c4.escalation.symbolic_fallback && c4.rollback);
  (* never re-enables what the config already disabled *)
  let c4' = with_max_escalation without_smt 4 in
  Alcotest.(check bool) "without_smt stays without smt" false c4'.use_smt

(* ---- determinism --------------------------------------------------------------- *)

(* the ladder must not break jobs-count invariance: tuning fan-out is the
   only parallel stage, and escalation happens before it *)
let test_jobs_invariance_under_faults () =
  let mk jobs =
    let config =
      Config.with_jobs
        (Config.with_fault_scale (Config.with_seed Config.tuned 3) 15.0)
        jobs
    in
    run ~config ~src:Platform.Cuda ~dst:Platform.Bang gemm gemm_shape
  in
  let o1 = mk 1 and o4 = mk 4 in
  Alcotest.(check bool) "same status" true (o1.Xpiler.status = o4.Xpiler.status);
  Alcotest.(check bool) "byte-identical target text" true
    (o1.Xpiler.target_text = o4.Xpiler.target_text);
  Alcotest.(check bool) "same ledger" true (o1.Xpiler.ledger = o4.Xpiler.ledger)

let test_repeat_determinism () =
  let config = Config.with_fault_scale Config.default 18.0 in
  let o1 = run ~config ~src:Platform.Cuda ~dst:Platform.Bang gemm gemm_shape in
  let o2 = run ~config ~src:Platform.Cuda ~dst:Platform.Bang gemm gemm_shape in
  Alcotest.(check bool) "same text" true (o1.Xpiler.target_text = o2.Xpiler.target_text);
  Alcotest.(check bool) "same ledger" true (o1.Xpiler.ledger = o2.Xpiler.ledger);
  Alcotest.(check bool) "same skipped" true (o1.Xpiler.skipped_passes = o2.Xpiler.skipped_passes)

let () =
  Alcotest.run "resilience"
    [ ( "rollback",
        [ Alcotest.test_case "Gave_up never commits broken" `Slow test_gave_up_never_commits_broken;
          Alcotest.test_case "skip rung exercised" `Slow test_skip_rung_exercised;
          Alcotest.test_case "degraded distinguishable" `Slow test_degraded_distinguishable
        ] );
      ( "fuzz",
        [ QCheck_alcotest.to_alcotest prop_accepted_outcomes_are_valid;
          QCheck_alcotest.to_alcotest prop_rollback_commits_only_validated
        ] );
      ( "ledger",
        [ Alcotest.test_case "consistency" `Quick test_ledger_consistency;
          Alcotest.test_case "report renders" `Quick test_ledger_report_renders;
          Alcotest.test_case "trace surfaces escalation" `Quick test_trace_surfaces_escalation
        ] );
      ("config", [ Alcotest.test_case "max-escalation mapping" `Quick test_max_escalation_mapping ]);
      ( "determinism",
        [ Alcotest.test_case "jobs invariance under faults" `Slow test_jobs_invariance_under_faults;
          Alcotest.test_case "repeat determinism" `Quick test_repeat_determinism
        ] )
    ]
