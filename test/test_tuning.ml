open Xpiler_ir
open Xpiler_machine
open Xpiler_ops
open Xpiler_tuning
open Test_support.Tcommon

let gemm = Registry.find_exn "gemm"
let gemm_shape = [ ("m", 32); ("n", 64); ("k", 64) ]
let serial () = gemm.Opdef.serial gemm_shape

let buffer_sizes =
  List.map (fun (b : Opdef.buffer_spec) -> (b.buf_name, b.size gemm_shape)) gemm.Opdef.buffers

(* ---- knobs -------------------------------------------------------------- *)

let test_split_factors () =
  let fs = Knobs.split_factors Platform.cuda ~extent:64 in
  Alcotest.(check (list int)) "divisors" [ 2; 4; 8; 16; 32 ] fs;
  List.iter
    (fun f -> Alcotest.(check bool) "divides" true (512 mod f = 0))
    (Knobs.split_factors Platform.bang ~extent:512)

let test_splittable_loops () =
  let loops = Knobs.splittable_loops (serial ()) in
  Alcotest.(check (list (pair string int))) "loops"
    [ ("i", 32); ("j", 64); ("p", 64) ]
    loops

let test_space_size_ordering () =
  let big = [ ("m", 512); ("n", 512); ("k", 512) ] in
  let k = gemm.Opdef.serial big in
  let gpu = Knobs.space_size Platform.cuda k in
  let mlu = Knobs.space_size Platform.bang k in
  Alcotest.(check bool)
    (Printf.sprintf "gpu space (%d) much larger than mlu (%d)" gpu mlu)
    true
    (gpu > 10 * mlu && mlu >= 1)

let test_bindable_axes () =
  let axes = Knobs.bindable_axes Platform.bang (serial ()) in
  Alcotest.(check bool) "taskId available" true (List.mem Axis.Task_id axes)

(* ---- knob edge cases ---------------------------------------------------- *)

let store v = Stmt.Store { buf = "a"; index = Expr.Var v; value = Expr.Float 1.0 }

let loop ?(kind = Stmt.Serial) var extent body =
  Stmt.For { var; lo = Expr.Int 0; extent = Expr.Int extent; kind; body }

let test_split_factors_edges () =
  Alcotest.(check (list int)) "extent 1" [] (Knobs.split_factors Platform.cuda ~extent:1);
  Alcotest.(check (list int)) "prime extent" [] (Knobs.split_factors Platform.bang ~extent:7);
  List.iter
    (fun p ->
      List.iter
        (fun f ->
          Alcotest.(check bool) "proper divisor" true (f > 1 && f < 48 && 48 mod f = 0))
        (Knobs.split_factors p ~extent:48))
    [ Platform.cuda; Platform.bang; Platform.hip; Platform.vnni ]

let test_splittable_skips_unit_and_parallel () =
  let k =
    Kernel.make ~name:"edge" ~params:[ Builder.buffer "a" ]
      [ loop "one" 1 [ store "one" ];
        loop ~kind:(Stmt.Parallel Axis.Task_id) "t" 4 [ loop "i" 8 [ store "i" ] ]
      ]
  in
  (* the extent-1 loop and the parallel axis are not splittable; the serial
     loop nested under the parallel axis is *)
  Alcotest.(check (list (pair string int))) "loops" [ ("i", 8) ] (Knobs.splittable_loops k)

let test_reorderable_requires_serial_perfect_nest () =
  let perfect =
    Kernel.make ~name:"p" ~params:[ Builder.buffer "a" ]
      [ loop "i" 4 [ loop "j" 8 [ store "j" ] ] ]
  in
  Alcotest.(check (list string)) "perfect 2-nest" [ "i" ] (Knobs.reorderable_loops perfect);
  let parallel_inner =
    Kernel.make ~name:"q" ~params:[ Builder.buffer "a" ]
      [ loop "i" 4 [ loop ~kind:(Stmt.Parallel Axis.Task_id) "j" 8 [ store "j" ] ] ]
  in
  Alcotest.(check (list string)) "parallel inner loop" []
    (Knobs.reorderable_loops parallel_inner)

let test_pipelinable_needs_copy_and_compute () =
  let copy =
    Stmt.Memcpy
      { dst = { Intrin.buf = "a"; offset = Expr.Int 0 };
        src = { Intrin.buf = "a"; offset = Expr.Int 0 };
        len = Expr.Int 8
      }
  in
  let both =
    Kernel.make ~name:"b" ~params:[ Builder.buffer "a" ]
      [ loop "i" 4 [ copy; store "i" ] ]
  in
  Alcotest.(check (list string)) "copy+compute" [ "i" ] (Knobs.pipelinable_loops both);
  let copy_only =
    Kernel.make ~name:"c" ~params:[ Builder.buffer "a" ] [ loop "i" 4 [ copy ] ]
  in
  Alcotest.(check (list string)) "copy only" [] (Knobs.pipelinable_loops copy_only);
  let compute_only =
    Kernel.make ~name:"d" ~params:[ Builder.buffer "a" ] [ loop "i" 4 [ store "i" ] ]
  in
  Alcotest.(check (list string)) "compute only" [] (Knobs.pipelinable_loops compute_only)

(* ---- intra-pass tuning ----------------------------------------------------- *)

let test_intra_never_regresses () =
  let k = serial () in
  let v = Intra.tune ~platform:Platform.cuda k in
  let base = Costmodel.throughput Platform.cuda k ~shapes:[] in
  Alcotest.(check bool) "no regression" true (v.Intra.throughput >= base)

let test_intra_result_correct () =
  let k = serial () in
  let v = Intra.tune ~platform:Platform.cuda k in
  check_equivalent ~buf_size:(fun b -> List.assoc b buffer_sizes) "intra variant" k
    v.Intra.kernel

let test_intra_clock_charged () =
  let clock = Xpiler_util.Vclock.create () in
  let _ = Intra.tune ~clock ~platform:Platform.cuda (serial ()) in
  Alcotest.(check bool) "tuning time recorded" true
    (Xpiler_util.Vclock.stage_total clock Xpiler_util.Vclock.Auto_tuning > 0.0)

(* ---- bound-based pruning ------------------------------------------------
   The pruning proof obligation: [Costmodel.throughput_bound] must dominate
   [Costmodel.throughput] on every kernel, or the branch-and-bound scan in
   [Intra.tune] could discard the true optimum. Fuzzed over random kernels
   on every platform, plus every depth-1 tuning action applied to gemm
   (launch configurations and transformed loop structures the generator
   does not produce). *)

let admissible p k =
  Costmodel.throughput_bound p k ~shapes:[] >= Costmodel.throughput p k ~shapes:[]

let prop_bound_admissible =
  QCheck.Test.make ~name:"throughput_bound dominates throughput" ~count:40
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let k = Test_support.Kgen.kernel (Xpiler_util.Rng.create seed) in
      List.for_all (fun p -> admissible p k) Platform.all)

let test_bound_admissible_on_tuning_states () =
  let k = serial () in
  List.iter
    (fun p ->
      Alcotest.(check bool) "root admissible" true (admissible p k);
      List.iter
        (fun spec ->
          match Xpiler_passes.Pass.apply ~platform:p spec k with
          | Ok k' -> Alcotest.(check bool) "admissible after action" true (admissible p k')
          | Error _ -> ())
        (Actions.enumerate ~buffer_sizes p k))
    Platform.all

let test_intra_prune_lossless () =
  List.iter
    (fun p ->
      let v_off, s_off =
        Intra.tune_with_stats ~prune:false ~compose:false ~platform:p (serial ())
      in
      let v_on, s_on =
        Intra.tune_with_stats ~prune:true ~compose:false ~platform:p (serial ())
      in
      Alcotest.(check (float 0.0)) "same best throughput" v_off.Intra.throughput
        v_on.Intra.throughput;
      Alcotest.(check int) "every candidate accounted for" s_off.Intra.evaluated
        (s_on.Intra.evaluated + s_on.Intra.pruned);
      (* composition only ever adds candidates *)
      let v_comp, _ =
        Intra.tune_with_stats ~prune:true ~compose:true ~platform:p (serial ())
      in
      Alcotest.(check bool) "composition never loses" true
        (v_comp.Intra.throughput >= v_on.Intra.throughput))
    [ Platform.cuda; Platform.bang ]

(* ---- memo eviction ------------------------------------------------------ *)

let test_memo_eviction_traced () =
  let module Tracer = Xpiler_obs.Tracer in
  let module Trace = Xpiler_obs.Trace in
  let tracer = Tracer.create ~level:Tracer.Detail () in
  Trace.install tracer;
  Fun.protect ~finally:(fun () ->
      Intra.set_memo_limit 65536;
      Trace.uninstall ())
  @@ fun () ->
  Intra.set_memo_limit 4;
  for seed = 1 to 12 do
    ignore
      (Intra.modelled_throughput Platform.bang
         (Test_support.Kgen.kernel (Xpiler_util.Rng.create seed)))
  done;
  Alcotest.(check bool) "evictions traced" true
    (Tracer.counter_total tracer "intra.memo_evictions" > 0)

(* ---- actions ------------------------------------------------------------------ *)

let test_actions_exclude_reduction_bind () =
  let acts = Actions.enumerate ~buffer_sizes Platform.bang (serial ()) in
  List.iter
    (fun spec ->
      match spec with
      | Xpiler_passes.Pass.Loop_bind { var = "p"; _ } ->
        Alcotest.fail "reduction loop must not be bindable"
      | _ -> ())
    acts;
  Alcotest.(check bool) "has actions" true (acts <> [])

let test_actions_cache_targets_wram_for_weights () =
  (* after tensorization, the second matmul operand prefers WRAM *)
  let k = Idiom.source Platform.Bang gemm gemm_shape in
  let acts = Actions.enumerate ~buffer_sizes Platform.bang k in
  ignore acts (* staged already: no duplicate cache actions *);
  let has_dup_cache =
    List.exists
      (function Xpiler_passes.Pass.Cache { buf = "A"; _ } -> true | _ -> false)
      acts
  in
  Alcotest.(check bool) "no duplicate staging" false has_dup_cache

(* ---- MCTS ----------------------------------------------------------------------- *)

let test_mcts_improves_gemm () =
  let config = { Mcts.default_config with simulations = 64; max_depth = 8 } in
  let r = Mcts.search ~config ~buffer_sizes ~platform:Platform.bang (serial ()) in
  Alcotest.(check bool)
    (Printf.sprintf "reward improved (%.3g -> %.3g)" r.Mcts.root_reward r.Mcts.best_reward)
    true
    (r.Mcts.best_reward > (2.0 *. r.Mcts.root_reward));
  (* the best kernel compiles and is semantically equivalent *)
  (match Checker.compile Platform.bang r.Mcts.best_kernel with
  | Ok () -> ()
  | Error es -> Alcotest.fail (Checker.errors_to_string es));
  Alcotest.(check bool) "still correct" true
    (Unit_test.check gemm gemm_shape r.Mcts.best_kernel = Unit_test.Pass)

let test_mcts_deterministic () =
  let config = { Mcts.default_config with simulations = 24; max_depth = 6 } in
  let r1 = Mcts.search ~config ~buffer_sizes ~platform:Platform.bang (serial ()) in
  let r2 = Mcts.search ~config ~buffer_sizes ~platform:Platform.bang (serial ()) in
  Alcotest.(check bool) "same reward" true (r1.Mcts.best_reward = r2.Mcts.best_reward);
  Alcotest.(check bool) "same specs" true (r1.Mcts.best_specs = r2.Mcts.best_specs)

let test_mcts_budget_monotone_ish () =
  (* more simulations never lose reward (same seed, supersets of the search) *)
  let run sims =
    let config = { Mcts.default_config with simulations = sims; max_depth = 8 } in
    (Mcts.search ~config ~buffer_sizes ~platform:Platform.bang (serial ())).Mcts.best_reward
  in
  let r8 = run 8 and r64 = run 64 in
  Alcotest.(check bool) (Printf.sprintf "8 sims %.3g <= 64 sims %.3g" r8 r64) true (r8 <= r64)

(* ---- transposition sharing ---------------------------------------------- *)

let small_config = { Mcts.default_config with simulations = 16; max_depth = 6 }

let test_transposition_values_pure () =
  (* sharing changes time, never values: same result with the table off,
     cold, and fully warm *)
  Transposition.clear ();
  let r_off = Mcts.search ~config:small_config ~buffer_sizes ~share:false ~platform:Platform.bang (serial ()) in
  Transposition.clear ();
  let r_cold = Mcts.search ~config:small_config ~buffer_sizes ~share:true ~platform:Platform.bang (serial ()) in
  let cold_evals = Transposition.evals () in
  let r_warm = Mcts.search ~config:small_config ~buffer_sizes ~share:true ~platform:Platform.bang (serial ()) in
  let warm_evals = Transposition.evals () - cold_evals in
  Alcotest.(check bool) "share off = share on" true
    (r_off.Mcts.best_reward = r_cold.Mcts.best_reward
    && r_off.Mcts.best_specs = r_cold.Mcts.best_specs);
  Alcotest.(check bool) "cold = warm" true
    (r_cold.Mcts.best_reward = r_warm.Mcts.best_reward
    && r_cold.Mcts.best_specs = r_warm.Mcts.best_specs);
  Alcotest.(check bool) "cold search evaluates" true (cold_evals > 0);
  Alcotest.(check int) "warm repeat is free" 0 warm_evals;
  Alcotest.(check bool) "hits recorded" true (Transposition.hits () > 0)

(* ---- schedule database --------------------------------------------------- *)

let gemm_shape_b = List.nth gemm.Opdef.shapes 1

let test_signature_shape_invariant () =
  let pid = Platform.bang.Platform.id in
  let sig_a = Schedule_db.signature pid (serial ()) in
  let sig_b = Schedule_db.signature pid (gemm.Opdef.serial gemm_shape_b) in
  Alcotest.(check int) "same op, different shape" sig_a sig_b;
  let softmax = Registry.find_exn "softmax" in
  let sig_soft = Schedule_db.signature pid (softmax.Opdef.serial (List.hd softmax.Opdef.shapes)) in
  Alcotest.(check bool) "different op" true (sig_a <> sig_soft);
  Alcotest.(check bool) "different platform" true
    (sig_a <> Schedule_db.signature Platform.cuda.Platform.id (serial ()))

let test_warm_start_never_worse () =
  let pid = Platform.bang.Platform.id in
  let db = Schedule_db.create () in
  ignore
    (Mcts.search ~config:small_config ~buffer_sizes ~share:true ~db ~platform:Platform.bang
       (gemm.Opdef.serial gemm_shape_b));
  Alcotest.(check bool) "prime recorded" true (Schedule_db.lookup db pid (serial ()) <> None);
  Transposition.clear ();
  let cold = Mcts.search ~config:small_config ~buffer_sizes ~share:true ~platform:Platform.bang (serial ()) in
  Transposition.clear ();
  let warm = Mcts.search ~config:small_config ~buffer_sizes ~share:true ~db ~platform:Platform.bang (serial ()) in
  (* the warm trajectory runs as an extra batch, so the merge can only gain *)
  Alcotest.(check bool)
    (Printf.sprintf "warm %.4g >= cold %.4g" warm.Mcts.best_reward cold.Mcts.best_reward)
    true
    (warm.Mcts.best_reward >= cold.Mcts.best_reward);
  (* the winner was recorded back for the next similar translation *)
  Alcotest.(check bool) "result recorded" true
    (Schedule_db.lookup db pid (serial ()) = Some warm.Mcts.best_specs)

(* ---- jobs determinism ---------------------------------------------------
   The pool contract promises byte-identical observable behaviour for any
   job count. Assert it end-to-end on both pool call sites: intra-pass
   candidate evaluation and MCTS root-parallel batches — results, clock
   charge streams and trace counters all equal between jobs=1 and jobs=4,
   with the domain clamp lifted so jobs=4 really crosses domains. *)

module Vclock = Xpiler_util.Vclock
module Pool = Xpiler_util.Pool
module Trace = Xpiler_obs.Trace
module Tracer = Xpiler_obs.Tracer

let forcing_domains f =
  let saved = Pool.get_max_domains () in
  Pool.set_max_domains 4;
  Fun.protect ~finally:(fun () -> Pool.set_max_domains saved) f

let observed_run work =
  let clock = Vclock.create () in
  let charges = ref [] in
  Vclock.set_observer clock (fun st s -> charges := (Vclock.stage_name st, s) :: !charges);
  let tracer = Tracer.create ~level:Tracer.Detail () in
  Trace.install tracer;
  let v = Fun.protect ~finally:Trace.uninstall (fun () -> work clock) in
  let counters =
    List.map
      (fun c -> (c, Tracer.counter_total tracer c))
      [ "intra.variants"; "intra.pruned"; "mcts.simulations"; "mcts.expansions";
        "mcts.rollout_steps"; "mcts.warm_steps"
      ]
  in
  (v, List.rev !charges, counters, Vclock.elapsed clock, Tracer.events tracer)

let test_intra_jobs_deterministic () =
  forcing_domains @@ fun () ->
  let run jobs =
    observed_run (fun clock ->
        Intra.tune ~clock ~jobs ~prune:false ~platform:Platform.bang (serial ()))
  in
  let v1, c1, n1, e1, _ = run 1 in
  let v4, c4, n4, e4, _ = run 4 in
  Alcotest.(check bool) "same variant" true
    (v1.Intra.specs = v4.Intra.specs
    && Kernel.equal v1.Intra.kernel v4.Intra.kernel
    && v1.Intra.throughput = v4.Intra.throughput);
  Alcotest.(check (list (pair string (float 1e-9)))) "same charge stream" c1 c4;
  Alcotest.(check (list (pair string int))) "same trace counters" n1 n4;
  Alcotest.(check (float 1e-9)) "same clock" e1 e4

let test_mcts_jobs_deterministic () =
  forcing_domains @@ fun () ->
  let config =
    { Mcts.default_config with simulations = 24; max_depth = 6; root_parallel = 3 }
  in
  let run jobs =
    observed_run (fun clock ->
        Mcts.search ~config ~clock ~buffer_sizes ~jobs ~platform:Platform.bang (serial ()))
  in
  let r1, c1, n1, e1, _ = run 1 in
  let r4, c4, n4, e4, _ = run 4 in
  Alcotest.(check bool) "same result" true
    (r1.Mcts.best_reward = r4.Mcts.best_reward
    && r1.Mcts.best_specs = r4.Mcts.best_specs
    && Kernel.equal r1.Mcts.best_kernel r4.Mcts.best_kernel
    && r1.Mcts.simulations_run = r4.Mcts.simulations_run
    && r1.Mcts.nodes_expanded = r4.Mcts.nodes_expanded);
  Alcotest.(check (list (pair string (float 1e-9)))) "same charge stream" c1 c4;
  Alcotest.(check (list (pair string int))) "same trace counters" n1 n4;
  Alcotest.(check (float 1e-9)) "same clock" e1 e4

let test_mcts_jobs_deterministic_full_stack () =
  (* the PR's regression gate: pruning + composition + shared transposition
     table + warm-started search, jobs=1 vs jobs=4 — byte-identical result,
     charge stream, counters and full trace journal. The table is cleared
     before the jobs=1 run only, so the comparison also proves a cold and a
     pre-populated table are observably identical (the receipt discipline). *)
  forcing_domains @@ fun () ->
  let config =
    { Mcts.default_config with simulations = 24; max_depth = 6; root_parallel = 3 }
  in
  let prime =
    (Mcts.search ~config ~buffer_sizes ~share:false ~platform:Platform.bang
       (gemm.Opdef.serial gemm_shape_b))
      .Mcts.best_specs
  in
  Alcotest.(check bool) "prime non-trivial" true (prime <> []);
  let run ~clear jobs =
    let db = Schedule_db.create () in
    Schedule_db.record db Platform.bang.Platform.id (serial ()) ~specs:prime ~reward:1.0;
    if clear then Transposition.clear ();
    observed_run (fun clock ->
        Mcts.search ~config ~clock ~buffer_sizes ~jobs ~share:true ~db
          ~platform:Platform.bang (serial ()))
  in
  let r1, c1, n1, e1, j1 = run ~clear:true 1 in
  let r4, c4, n4, e4, j4 = run ~clear:false 4 in
  Alcotest.(check bool) "same result" true
    (r1.Mcts.best_reward = r4.Mcts.best_reward
    && r1.Mcts.best_specs = r4.Mcts.best_specs
    && Kernel.equal r1.Mcts.best_kernel r4.Mcts.best_kernel
    && r1.Mcts.simulations_run = r4.Mcts.simulations_run
    && r1.Mcts.nodes_expanded = r4.Mcts.nodes_expanded);
  Alcotest.(check (list (pair string (float 1e-9)))) "same charge stream" c1 c4;
  Alcotest.(check (list (pair string int))) "same trace counters" n1 n4;
  Alcotest.(check bool) "warm steps replayed" true (List.assoc "mcts.warm_steps" n1 > 0);
  Alcotest.(check (float 1e-9)) "same clock" e1 e4;
  Alcotest.(check bool) "same trace journal" true (j1 = j4)

let prop_mcts_best_is_valid =
  QCheck.Test.make ~name:"MCTS best kernel always compiles" ~count:6
    QCheck.(int_range 1 1000)
    (fun seed ->
      let config =
        { Mcts.default_config with simulations = 16; max_depth = 5; seed }
      in
      let r = Mcts.search ~config ~buffer_sizes ~platform:Platform.bang (serial ()) in
      Checker.compile Platform.bang r.Mcts.best_kernel = Ok ())

let () =
  Alcotest.run "tuning"
    [ ( "knobs",
        [ Alcotest.test_case "split factors" `Quick test_split_factors;
          Alcotest.test_case "splittable loops" `Quick test_splittable_loops;
          Alcotest.test_case "space-size ordering" `Quick test_space_size_ordering;
          Alcotest.test_case "bindable axes" `Quick test_bindable_axes;
          Alcotest.test_case "split-factor edges" `Quick test_split_factors_edges;
          Alcotest.test_case "splittable skips unit/parallel" `Quick
            test_splittable_skips_unit_and_parallel;
          Alcotest.test_case "reorderable needs serial nest" `Quick
            test_reorderable_requires_serial_perfect_nest;
          Alcotest.test_case "pipelinable needs copy+compute" `Quick
            test_pipelinable_needs_copy_and_compute
        ] );
      ( "intra",
        [ Alcotest.test_case "never regresses" `Quick test_intra_never_regresses;
          Alcotest.test_case "result correct" `Quick test_intra_result_correct;
          Alcotest.test_case "clock charged" `Quick test_intra_clock_charged;
          Alcotest.test_case "pruning lossless" `Quick test_intra_prune_lossless;
          Alcotest.test_case "bound admissible on tuning states" `Quick
            test_bound_admissible_on_tuning_states;
          Alcotest.test_case "memo eviction traced" `Quick test_memo_eviction_traced
        ] );
      ( "sharing",
        [ Alcotest.test_case "transposition values pure" `Quick test_transposition_values_pure;
          Alcotest.test_case "signature shape-invariant" `Quick test_signature_shape_invariant;
          Alcotest.test_case "warm start never worse" `Quick test_warm_start_never_worse
        ] );
      ( "actions",
        [ Alcotest.test_case "no reduction bind" `Quick test_actions_exclude_reduction_bind;
          Alcotest.test_case "no duplicate staging" `Quick
            test_actions_cache_targets_wram_for_weights
        ] );
      ( "mcts",
        [ Alcotest.test_case "improves gemm" `Quick test_mcts_improves_gemm;
          Alcotest.test_case "deterministic" `Quick test_mcts_deterministic;
          Alcotest.test_case "budget monotone" `Quick test_mcts_budget_monotone_ish
        ] );
      ( "jobs",
        [ Alcotest.test_case "intra jobs=1 = jobs=4" `Quick test_intra_jobs_deterministic;
          Alcotest.test_case "mcts jobs=1 = jobs=4" `Quick test_mcts_jobs_deterministic;
          Alcotest.test_case "full stack jobs=1 = jobs=4" `Quick
            test_mcts_jobs_deterministic_full_stack
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_mcts_best_is_valid;
          QCheck_alcotest.to_alcotest prop_bound_admissible
        ] )
    ]
