open Xpiler_ir
open Xpiler_machine
open Xpiler_ops
open Xpiler_tuning
open Test_support.Tcommon

let gemm = Registry.find_exn "gemm"
let gemm_shape = [ ("m", 32); ("n", 64); ("k", 64) ]
let serial () = gemm.Opdef.serial gemm_shape

let buffer_sizes =
  List.map (fun (b : Opdef.buffer_spec) -> (b.buf_name, b.size gemm_shape)) gemm.Opdef.buffers

(* ---- knobs -------------------------------------------------------------- *)

let test_split_factors () =
  let fs = Knobs.split_factors Platform.cuda ~extent:64 in
  Alcotest.(check (list int)) "divisors" [ 2; 4; 8; 16; 32 ] fs;
  List.iter
    (fun f -> Alcotest.(check bool) "divides" true (512 mod f = 0))
    (Knobs.split_factors Platform.bang ~extent:512)

let test_splittable_loops () =
  let loops = Knobs.splittable_loops (serial ()) in
  Alcotest.(check (list (pair string int))) "loops"
    [ ("i", 32); ("j", 64); ("p", 64) ]
    loops

let test_space_size_ordering () =
  let big = [ ("m", 512); ("n", 512); ("k", 512) ] in
  let k = gemm.Opdef.serial big in
  let gpu = Knobs.space_size Platform.cuda k in
  let mlu = Knobs.space_size Platform.bang k in
  Alcotest.(check bool)
    (Printf.sprintf "gpu space (%d) much larger than mlu (%d)" gpu mlu)
    true
    (gpu > 10 * mlu && mlu >= 1)

let test_bindable_axes () =
  let axes = Knobs.bindable_axes Platform.bang (serial ()) in
  Alcotest.(check bool) "taskId available" true (List.mem Axis.Task_id axes)

(* ---- intra-pass tuning ----------------------------------------------------- *)

let test_intra_never_regresses () =
  let k = serial () in
  let v = Intra.tune ~platform:Platform.cuda k in
  let base = Costmodel.throughput Platform.cuda k ~shapes:[] in
  Alcotest.(check bool) "no regression" true (v.Intra.throughput >= base)

let test_intra_result_correct () =
  let k = serial () in
  let v = Intra.tune ~platform:Platform.cuda k in
  check_equivalent ~buf_size:(fun b -> List.assoc b buffer_sizes) "intra variant" k
    v.Intra.kernel

let test_intra_clock_charged () =
  let clock = Xpiler_util.Vclock.create () in
  let _ = Intra.tune ~clock ~platform:Platform.cuda (serial ()) in
  Alcotest.(check bool) "tuning time recorded" true
    (Xpiler_util.Vclock.stage_total clock Xpiler_util.Vclock.Auto_tuning > 0.0)

(* ---- actions ------------------------------------------------------------------ *)

let test_actions_exclude_reduction_bind () =
  let acts = Actions.enumerate ~buffer_sizes Platform.bang (serial ()) in
  List.iter
    (fun spec ->
      match spec with
      | Xpiler_passes.Pass.Loop_bind { var = "p"; _ } ->
        Alcotest.fail "reduction loop must not be bindable"
      | _ -> ())
    acts;
  Alcotest.(check bool) "has actions" true (acts <> [])

let test_actions_cache_targets_wram_for_weights () =
  (* after tensorization, the second matmul operand prefers WRAM *)
  let k = Idiom.source Platform.Bang gemm gemm_shape in
  let acts = Actions.enumerate ~buffer_sizes Platform.bang k in
  ignore acts (* staged already: no duplicate cache actions *);
  let has_dup_cache =
    List.exists
      (function Xpiler_passes.Pass.Cache { buf = "A"; _ } -> true | _ -> false)
      acts
  in
  Alcotest.(check bool) "no duplicate staging" false has_dup_cache

(* ---- MCTS ----------------------------------------------------------------------- *)

let test_mcts_improves_gemm () =
  let config = { Mcts.default_config with simulations = 64; max_depth = 8 } in
  let r = Mcts.search ~config ~buffer_sizes ~platform:Platform.bang (serial ()) in
  Alcotest.(check bool)
    (Printf.sprintf "reward improved (%.3g -> %.3g)" r.Mcts.root_reward r.Mcts.best_reward)
    true
    (r.Mcts.best_reward > (2.0 *. r.Mcts.root_reward));
  (* the best kernel compiles and is semantically equivalent *)
  (match Checker.compile Platform.bang r.Mcts.best_kernel with
  | Ok () -> ()
  | Error es -> Alcotest.fail (Checker.errors_to_string es));
  Alcotest.(check bool) "still correct" true
    (Unit_test.check gemm gemm_shape r.Mcts.best_kernel = Unit_test.Pass)

let test_mcts_deterministic () =
  let config = { Mcts.default_config with simulations = 24; max_depth = 6 } in
  let r1 = Mcts.search ~config ~buffer_sizes ~platform:Platform.bang (serial ()) in
  let r2 = Mcts.search ~config ~buffer_sizes ~platform:Platform.bang (serial ()) in
  Alcotest.(check bool) "same reward" true (r1.Mcts.best_reward = r2.Mcts.best_reward);
  Alcotest.(check bool) "same specs" true (r1.Mcts.best_specs = r2.Mcts.best_specs)

let test_mcts_budget_monotone_ish () =
  (* more simulations never lose reward (same seed, supersets of the search) *)
  let run sims =
    let config = { Mcts.default_config with simulations = sims; max_depth = 8 } in
    (Mcts.search ~config ~buffer_sizes ~platform:Platform.bang (serial ())).Mcts.best_reward
  in
  let r8 = run 8 and r64 = run 64 in
  Alcotest.(check bool) (Printf.sprintf "8 sims %.3g <= 64 sims %.3g" r8 r64) true (r8 <= r64)

(* ---- jobs determinism ---------------------------------------------------
   The pool contract promises byte-identical observable behaviour for any
   job count. Assert it end-to-end on both pool call sites: intra-pass
   candidate evaluation and MCTS root-parallel batches — results, clock
   charge streams and trace counters all equal between jobs=1 and jobs=4,
   with the domain clamp lifted so jobs=4 really crosses domains. *)

module Vclock = Xpiler_util.Vclock
module Pool = Xpiler_util.Pool
module Trace = Xpiler_obs.Trace
module Tracer = Xpiler_obs.Tracer

let forcing_domains f =
  let saved = Pool.get_max_domains () in
  Pool.set_max_domains 4;
  Fun.protect ~finally:(fun () -> Pool.set_max_domains saved) f

let observed_run work =
  let clock = Vclock.create () in
  let charges = ref [] in
  Vclock.set_observer clock (fun st s -> charges := (Vclock.stage_name st, s) :: !charges);
  let tracer = Tracer.create ~level:Tracer.Detail () in
  Trace.install tracer;
  let v = Fun.protect ~finally:Trace.uninstall (fun () -> work clock) in
  let counters =
    List.map
      (fun c -> (c, Tracer.counter_total tracer c))
      [ "intra.variants"; "mcts.simulations"; "mcts.expansions"; "mcts.rollout_steps" ]
  in
  (v, List.rev !charges, counters, Vclock.elapsed clock)

let test_intra_jobs_deterministic () =
  forcing_domains @@ fun () ->
  let run jobs =
    observed_run (fun clock -> Intra.tune ~clock ~jobs ~platform:Platform.bang (serial ()))
  in
  let v1, c1, n1, e1 = run 1 in
  let v4, c4, n4, e4 = run 4 in
  Alcotest.(check bool) "same variant" true
    (v1.Intra.specs = v4.Intra.specs
    && Kernel.equal v1.Intra.kernel v4.Intra.kernel
    && v1.Intra.throughput = v4.Intra.throughput);
  Alcotest.(check (list (pair string (float 1e-9)))) "same charge stream" c1 c4;
  Alcotest.(check (list (pair string int))) "same trace counters" n1 n4;
  Alcotest.(check (float 1e-9)) "same clock" e1 e4

let test_mcts_jobs_deterministic () =
  forcing_domains @@ fun () ->
  let config =
    { Mcts.default_config with simulations = 24; max_depth = 6; root_parallel = 3 }
  in
  let run jobs =
    observed_run (fun clock ->
        Mcts.search ~config ~clock ~buffer_sizes ~jobs ~platform:Platform.bang (serial ()))
  in
  let r1, c1, n1, e1 = run 1 in
  let r4, c4, n4, e4 = run 4 in
  Alcotest.(check bool) "same result" true
    (r1.Mcts.best_reward = r4.Mcts.best_reward
    && r1.Mcts.best_specs = r4.Mcts.best_specs
    && Kernel.equal r1.Mcts.best_kernel r4.Mcts.best_kernel
    && r1.Mcts.simulations_run = r4.Mcts.simulations_run
    && r1.Mcts.nodes_expanded = r4.Mcts.nodes_expanded);
  Alcotest.(check (list (pair string (float 1e-9)))) "same charge stream" c1 c4;
  Alcotest.(check (list (pair string int))) "same trace counters" n1 n4;
  Alcotest.(check (float 1e-9)) "same clock" e1 e4

let prop_mcts_best_is_valid =
  QCheck.Test.make ~name:"MCTS best kernel always compiles" ~count:6
    QCheck.(int_range 1 1000)
    (fun seed ->
      let config =
        { Mcts.default_config with simulations = 16; max_depth = 5; seed }
      in
      let r = Mcts.search ~config ~buffer_sizes ~platform:Platform.bang (serial ()) in
      Checker.compile Platform.bang r.Mcts.best_kernel = Ok ())

let () =
  Alcotest.run "tuning"
    [ ( "knobs",
        [ Alcotest.test_case "split factors" `Quick test_split_factors;
          Alcotest.test_case "splittable loops" `Quick test_splittable_loops;
          Alcotest.test_case "space-size ordering" `Quick test_space_size_ordering;
          Alcotest.test_case "bindable axes" `Quick test_bindable_axes
        ] );
      ( "intra",
        [ Alcotest.test_case "never regresses" `Quick test_intra_never_regresses;
          Alcotest.test_case "result correct" `Quick test_intra_result_correct;
          Alcotest.test_case "clock charged" `Quick test_intra_clock_charged
        ] );
      ( "actions",
        [ Alcotest.test_case "no reduction bind" `Quick test_actions_exclude_reduction_bind;
          Alcotest.test_case "no duplicate staging" `Quick
            test_actions_cache_targets_wram_for_weights
        ] );
      ( "mcts",
        [ Alcotest.test_case "improves gemm" `Quick test_mcts_improves_gemm;
          Alcotest.test_case "deterministic" `Quick test_mcts_deterministic;
          Alcotest.test_case "budget monotone" `Quick test_mcts_budget_monotone_ish
        ] );
      ( "jobs",
        [ Alcotest.test_case "intra jobs=1 = jobs=4" `Quick test_intra_jobs_deterministic;
          Alcotest.test_case "mcts jobs=1 = jobs=4" `Quick test_mcts_jobs_deterministic
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_mcts_best_is_valid ])
    ]
