open Xpiler_ir
open Xpiler_machine

(** Tuning-knob search spaces (paper §5.1).

    Knob enumeration is what the loop-split meta-prompt of Figure 6 asks the
    LLM for: all factorizations of a loop extent that cover the iteration
    space without remainder, filtered by the platform's granularity. *)

val split_factors : Platform.t -> extent:int -> int list
(** Divisors of [extent]; on platforms with a vector granularity only factors
    that keep the inner extent aligned are kept. *)

val splittable_loops : Kernel.t -> (string * int) list
(** Serial loops with constant extents > 1, outermost first. *)

val reorderable_loops : Kernel.t -> string list
(** Loops heading a perfect 2-nest (candidates for interchange). *)

val pipelinable_loops : Kernel.t -> string list
(** Loops containing both a copy and computation. *)

val bindable_axes : Platform.t -> Kernel.t -> Axis.t list
(** Platform axes not yet bound by the kernel's launch configuration. *)

val space_size : Platform.t -> Kernel.t -> int
(** Size of the intra-pass knob space: the product over splittable loops of
    their factor counts, times the loop-order choices — the quantity the
    paper reports as ~150 for a 512³ GEMM on the GPU vs ~10 on the MLU. *)
