open Xpiler_ir
open Xpiler_machine

let split_factors (p : Platform.t) ~extent =
  if extent <= 1 then []
  else begin
    let divs = Xpiler_smt.Solver.divisors extent in
    let align = p.Platform.vector_align in
    List.filter
      (fun f ->
        f > 1 && f < extent
        &&
        (* keep the inner extent aligned when the platform has a vector
           granularity, so tensorization stays possible *)
        (align <= 1 || f mod align = 0 || extent / f >= align))
      divs
  end

let splittable_loops (k : Kernel.t) =
  Stmt.fold
    (fun acc s ->
      match s with
      | Stmt.For { var; extent = Expr.Int n; kind = Stmt.Serial; _ } when n > 1 ->
        (var, n) :: acc
      | _ -> acc)
    [] k.Kernel.body
  |> List.rev

let reorderable_loops (k : Kernel.t) =
  let found = ref [] in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.For { var; kind = Stmt.Serial; body = [ Stmt.For inner ]; _ }
        when inner.kind = Stmt.Serial
             && (not (Expr.contains_var var inner.lo))
             && not (Expr.contains_var var inner.extent) ->
        found := var :: !found
      | _ -> ())
    k.Kernel.body;
  List.rev !found

let pipelinable_loops (k : Kernel.t) =
  let found = ref [] in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.For { var; body; kind = Stmt.Serial; _ } ->
        let has_copy = List.exists (function Stmt.Memcpy _ -> true | _ -> false) body in
        let has_compute =
          List.exists (function Stmt.Memcpy _ | Stmt.Annot _ -> false | _ -> true) body
        in
        if has_copy && has_compute then found := var :: !found
      | _ -> ())
    k.Kernel.body;
  List.rev !found

let bindable_axes (p : Platform.t) (k : Kernel.t) =
  let used = List.map fst k.Kernel.launch in
  List.filter (fun ax -> not (List.mem ax used)) p.Platform.axes

let space_size (p : Platform.t) (k : Kernel.t) =
  let loops = splittable_loops k in
  match p.Platform.id with
  | Platform.Bang ->
    (* large-granularity intrinsics consume the inner nest: only the
       task-split of the outer loop is tunable, and the slice must keep the
       64-element granularity *)
    (match loops with
    | (_, n) :: _ ->
      max 1
        (List.length
           (List.filter (fun f -> (n / f) mod p.Platform.vector_align = 0)
              (split_factors p ~extent:n)))
    | [] -> 1)
  | Platform.Cuda | Platform.Hip ->
    (* block/thread tilings of the two outer loops, plus loop orders *)
    let first_two = List.filteri (fun i _ -> i < 2) loops in
    let tilings =
      List.fold_left
        (fun acc (_, n) -> acc * max 1 (List.length (split_factors p ~extent:n)))
        1 first_two
    in
    tilings * max 1 (1 + List.length (reorderable_loops k))
  | Platform.Vnni ->
    (match loops with
    | (_, n) :: _ -> max 1 (List.length (split_factors p ~extent:n))
    | [] -> 1)
