open Xpiler_ir
open Xpiler_machine
module Pass = Xpiler_passes.Pass

(** The inter-pass action space: applicable pass instantiations for a
    program state (the MCTS branching set). All 11 pass families of Table 4
    can appear, and passes may repeat along a path. *)

val enumerate :
  ?buffer_sizes:(string * int) list ->
  ?max_actions:int ->
  Platform.t ->
  Kernel.t ->
  Pass.spec list
(** [buffer_sizes] enables whole-buffer cache actions for kernel parameters
    (sizes are not recoverable from a pointer); [max_actions] caps branching
    (default 14). *)
