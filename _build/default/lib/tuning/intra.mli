open Xpiler_ir
open Xpiler_machine
module Pass = Xpiler_passes.Pass

(** Intra-pass auto-tuning (paper §5.1): brute-force search over a pass's
    tuning knobs, keeping the candidate with the best modelled throughput. *)

type variant = { specs : Pass.spec list; kernel : Kernel.t; throughput : float }

val candidates : Platform.t -> Kernel.t -> Pass.spec list list
(** The knob space: split factors per splittable loop, interchanges,
    pipelining — each entry is a short spec sequence to try on top of the
    kernel. Includes the empty sequence (keep as is). *)

val tune :
  ?clock:Xpiler_util.Vclock.t ->
  ?max_candidates:int ->
  platform:Platform.t ->
  Kernel.t ->
  variant
(** Apply every candidate (bounded by [max_candidates], default 64), keep the
    compilable variant with the highest modelled throughput; the input kernel
    itself is always a candidate, so the result never regresses. *)
