lib/tuning/actions.mli: Kernel Platform Xpiler_ir Xpiler_machine Xpiler_passes
