lib/tuning/actions.ml: Array Axis Expr Hashtbl Intrin Kernel Knobs List Option Platform Scope Stmt String Xpiler_ir Xpiler_machine Xpiler_passes
