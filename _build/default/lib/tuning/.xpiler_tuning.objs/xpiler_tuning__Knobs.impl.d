lib/tuning/knobs.ml: Expr Kernel List Platform Stmt Xpiler_ir Xpiler_machine Xpiler_smt
