lib/tuning/intra.ml: Checker Costmodel Knobs List Result Xpiler_ir Xpiler_machine Xpiler_passes Xpiler_util
