lib/tuning/knobs.mli: Axis Kernel Platform Xpiler_ir Xpiler_machine
