lib/tuning/mcts.ml: Actions Checker Float Hashtbl Intra Kernel List Marshal Xpiler_ir Xpiler_machine Xpiler_passes Xpiler_util
