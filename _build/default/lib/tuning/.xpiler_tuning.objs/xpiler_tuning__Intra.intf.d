lib/tuning/intra.mli: Kernel Platform Xpiler_ir Xpiler_machine Xpiler_passes Xpiler_util
