(** Deterministic pseudo-random number generation.

    All stochastic components of the transcompiler (the neural oracle's fault
    injection, MCTS rollouts, test-input generation) draw from this splittable
    SplitMix64 generator so that every experiment is reproducible from a
    single seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances by one step. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val choose : t -> 'a list -> 'a
(** [choose t xs] picks a uniform element. Raises [Invalid_argument] on []. *)

val choose_weighted : t -> (float * 'a) list -> 'a
(** [choose_weighted t pairs] picks an element with probability proportional
    to its weight. Raises [Invalid_argument] on an empty or zero-weight
    list. *)

val shuffle : t -> 'a list -> 'a list
(** [shuffle t xs] is a uniformly random permutation of [xs]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box-Muller normal deviate. *)
