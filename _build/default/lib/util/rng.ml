type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next t }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so Int64.to_int cannot wrap negative on 63-bit ints *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let choose_weighted t pairs =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 pairs in
  if total <= 0.0 then invalid_arg "Rng.choose_weighted: no positive weight";
  let target = float t total in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.choose_weighted: empty list"
    | [ (_, x) ] -> x
    | (w, x) :: rest -> if acc +. w > target then x else pick (acc +. w) rest
  in
  pick 0.0 pairs

let shuffle t xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let gaussian t ~mean ~stddev =
  let u1 = Stdlib.max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
