type stage =
  | Annotation
  | Llm_transform
  | Static_analysis
  | Unit_test
  | Bug_localization
  | Smt_solving
  | Auto_tuning

let all_stages =
  [ Annotation; Llm_transform; Static_analysis; Unit_test; Bug_localization; Smt_solving;
    Auto_tuning ]

let stage_name = function
  | Annotation -> "annotation"
  | Llm_transform -> "llm-transform"
  | Static_analysis -> "static-analysis"
  | Unit_test -> "unit-test"
  | Bug_localization -> "bug-localization"
  | Smt_solving -> "smt-solving"
  | Auto_tuning -> "auto-tuning"

let stage_index = function
  | Annotation -> 0
  | Llm_transform -> 1
  | Static_analysis -> 2
  | Unit_test -> 3
  | Bug_localization -> 4
  | Smt_solving -> 5
  | Auto_tuning -> 6

let n_stages = 7

type t = { totals : float array }

let create () = { totals = Array.make n_stages 0.0 }

let charge t stage seconds =
  if seconds < 0.0 then invalid_arg "Vclock.charge: negative duration";
  let i = stage_index stage in
  t.totals.(i) <- t.totals.(i) +. seconds

let elapsed t = Array.fold_left ( +. ) 0.0 t.totals
let stage_total t stage = t.totals.(stage_index stage)
let breakdown t = List.map (fun s -> (s, stage_total t s)) all_stages
let reset t = Array.fill t.totals 0 n_stages 0.0

let merge dst src =
  Array.iteri (fun i v -> dst.totals.(i) <- dst.totals.(i) +. v) src.totals
