type stage =
  | Annotation
  | Llm_transform
  | Unit_test
  | Bug_localization
  | Smt_solving
  | Auto_tuning

let all_stages =
  [ Annotation; Llm_transform; Unit_test; Bug_localization; Smt_solving; Auto_tuning ]

let stage_name = function
  | Annotation -> "annotation"
  | Llm_transform -> "llm-transform"
  | Unit_test -> "unit-test"
  | Bug_localization -> "bug-localization"
  | Smt_solving -> "smt-solving"
  | Auto_tuning -> "auto-tuning"

let stage_index = function
  | Annotation -> 0
  | Llm_transform -> 1
  | Unit_test -> 2
  | Bug_localization -> 3
  | Smt_solving -> 4
  | Auto_tuning -> 5

type t = { totals : float array }

let create () = { totals = Array.make 6 0.0 }

let charge t stage seconds =
  if seconds < 0.0 then invalid_arg "Vclock.charge: negative duration";
  let i = stage_index stage in
  t.totals.(i) <- t.totals.(i) +. seconds

let elapsed t = Array.fold_left ( +. ) 0.0 t.totals
let stage_total t stage = t.totals.(stage_index stage)
let breakdown t = List.map (fun s -> (s, stage_total t s)) all_stages
let reset t = Array.fill t.totals 0 6 0.0

let merge dst src =
  Array.iteri (fun i v -> dst.totals.(i) <- dst.totals.(i) +. v) src.totals
