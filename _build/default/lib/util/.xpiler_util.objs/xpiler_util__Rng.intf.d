lib/util/rng.mli:
