lib/util/vclock.ml: Array List
