lib/util/vclock.mli:
