lib/repair/localize.ml: Diag Expr Float Hashtbl Interp Intrin Kernel List Opdef Option Printf Stmt String Tensor Unit_test Xpiler_analysis Xpiler_ir Xpiler_machine Xpiler_ops Xpiler_util
