lib/repair/localize.ml: Expr Float Hashtbl Interp Intrin Kernel List Opdef Option Printf Stmt Tensor Unit_test Xpiler_ir Xpiler_machine Xpiler_ops Xpiler_util
