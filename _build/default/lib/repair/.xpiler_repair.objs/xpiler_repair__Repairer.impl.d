lib/repair/repairer.ml: Expr Interp Intrin Kernel Linear List Localize Platform Stmt String Tensor Unit_test Validate Xpiler_ir Xpiler_machine Xpiler_ops Xpiler_passes Xpiler_smt Xpiler_util
