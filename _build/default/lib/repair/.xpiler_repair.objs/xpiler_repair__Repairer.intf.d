lib/repair/repairer.mli: Kernel Localize Opdef Platform Xpiler_analysis Xpiler_ir Xpiler_machine Xpiler_ops Xpiler_util
