lib/repair/localize.mli: Kernel Opdef Stmt Xpiler_analysis Xpiler_ir Xpiler_ops
