lib/repair/localize.mli: Kernel Opdef Stmt Xpiler_ir Xpiler_ops
