open Xpiler_ir
open Xpiler_machine
open Xpiler_ops

(** SMT-based code repairing (paper Algorithm 3).

    For each localized site, the repairer builds a sketch with the suspect
    constant replaced by a hole, derives the hole's domain from program
    context (allocation sizes, copy lengths, sibling loop extents) and SMT
    side constraints (positivity, platform alignment granularity, dp4a
    divisibility — the Figure 5 constraint classes), solves for surviving
    candidates with the SMT-lite solver, stitches each back and accepts the
    first candidate that passes the platform checker and the unit tests. *)

type outcome =
  | Repaired of { kernel : Kernel.t; tests_run : int; site : string }
  | Gave_up of { reason : string; tests_run : int }

val candidate_values :
  platform:Platform.t -> Kernel.t -> Localize.site -> int list
(** The SMT-filtered candidate domain for a site (exposed for tests and for
    the Table 3 solving-time comparison). *)

val repair :
  ?max_tests:int ->
  ?rounds:int ->
  ?static:Xpiler_analysis.Analyzer.finding list ->
  ?clock:Xpiler_util.Vclock.t ->
  platform:Platform.t ->
  op:Opdef.t ->
  shape:Opdef.shape ->
  Kernel.t ->
  outcome
(** [rounds] (default 2) bounds how many distinct faults can be fixed in
    sequence; [max_tests] (default 200) bounds unit-test executions.
    [static] passes pre-validation analyzer findings: their sites are tried
    first at a fraction of a localization round's modelled cost ([Vclock]
    charges 30s against 240s), with the dynamic rounds as fallback. *)
