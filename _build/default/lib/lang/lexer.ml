exception Lex_error of { line : int; message : string }

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Dotted suffixes allowed after an identifier: the SIMT builtins. A dot is
   only folded into the identifier when it joins one of these families, so
   ordinary member syntax is not needed anywhere else in the dialects. *)
let dotted_families = [ "blockIdx"; "threadIdx"; "blockDim"; "gridDim" ]

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let error message = raise (Lex_error { line = !line; message }) in
  let pos = ref 0 in
  let peek off = if !pos + off < n then Some src.[!pos + off] else None in
  let rec skip_ws () =
    match peek 0 with
    | Some '\n' ->
      incr line;
      incr pos;
      skip_ws ()
    | Some (' ' | '\t' | '\r') ->
      incr pos;
      skip_ws ()
    | Some '/' when peek 1 = Some '/' ->
      while peek 0 <> None && peek 0 <> Some '\n' do
        incr pos
      done;
      skip_ws ()
    | Some '/' when peek 1 = Some '*' ->
      pos := !pos + 2;
      let rec close () =
        match (peek 0, peek 1) with
        | Some '*', Some '/' -> pos := !pos + 2
        | Some '\n', _ ->
          incr line;
          incr pos;
          close ()
        | Some _, _ ->
          incr pos;
          close ()
        | None, _ -> error "unterminated comment"
      in
      close ();
      skip_ws ()
    | _ -> ()
  in
  let read_while p =
    let start = !pos in
    while (match peek 0 with Some c -> p c | None -> false) do
      incr pos
    done;
    String.sub src start (!pos - start)
  in
  let read_number () =
    let intpart = read_while is_digit in
    let is_float = peek 0 = Some '.' && (match peek 1 with Some c -> is_digit c | None -> false) in
    if is_float then begin
      incr pos;
      let frac = read_while is_digit in
      let expo =
        match peek 0 with
        | Some ('e' | 'E') ->
          incr pos;
          let sign =
            match peek 0 with
            | Some (('+' | '-') as c) ->
              incr pos;
              String.make 1 c
            | _ -> ""
          in
          "e" ^ sign ^ read_while is_digit
        | _ -> ""
      in
      (match peek 0 with Some ('f' | 'F') -> incr pos | _ -> ());
      emit (Token.Float_lit (float_of_string (intpart ^ "." ^ frac ^ expo)))
    end
    else begin
      (* 1e-05f style without dot *)
      match peek 0 with
      | Some ('e' | 'E') when (match peek 1 with Some c -> is_digit c || c = '-' || c = '+' | None -> false) ->
        incr pos;
        let sign =
          match peek 0 with
          | Some (('+' | '-') as c) ->
            incr pos;
            String.make 1 c
          | _ -> ""
        in
        let ex = read_while is_digit in
        (match peek 0 with Some ('f' | 'F') -> incr pos | _ -> ());
        emit (Token.Float_lit (float_of_string (intpart ^ "e" ^ sign ^ ex)))
      | Some ('f' | 'F') ->
        incr pos;
        emit (Token.Float_lit (float_of_string intpart))
      | _ -> emit (Token.Int_lit (int_of_string intpart))
    end
  in
  let read_ident () =
    let base = read_while is_ident_char in
    (* namespaced identifier: wmma::mma_sync *)
    let base =
      if peek 0 = Some ':' && peek 1 = Some ':' then begin
        pos := !pos + 2;
        let rest = read_while is_ident_char in
        base ^ "::" ^ rest
      end
      else base
    in
    (* dotted builtin: blockIdx.x *)
    let base =
      if List.mem base dotted_families && peek 0 = Some '.' then begin
        incr pos;
        let field = read_while is_ident_char in
        base ^ "." ^ field
      end
      else base
    in
    emit (Token.Ident base)
  in
  let read_pragma () =
    (* at '#': only #launch is recognized *)
    incr pos;
    let word = read_while is_ident_char in
    if word = "pragma" then begin
      (match peek 0 with Some (' ' | '\t') -> incr pos | _ -> ());
      skip_ws ();
      let kind = read_while is_ident_char in
      if not (List.mem kind [ "unroll"; "pipeline"; "vectorize" ]) then
        error ("unknown #pragma " ^ kind)
      else emit (Token.Kind_pragma kind)
    end
    else if word <> "launch" then error ("unknown pragma #" ^ word)
    else begin
      let pairs = ref [] in
      let rec loop () =
        (match peek 0 with
        | Some (' ' | '\t') ->
          incr pos;
          loop ()
        | Some c when is_ident_start c ->
          let name =
            let b = read_while is_ident_char in
            if peek 0 = Some '.' then begin
              incr pos;
              b ^ "." ^ read_while is_ident_char
            end
            else b
          in
          (match peek 0 with
          | Some '=' ->
            incr pos;
            let num = read_while is_digit in
            if num = "" then error "expected extent after '=' in #launch";
            pairs := (name, int_of_string num) :: !pairs;
            loop ()
          | _ -> error "expected '=' in #launch")
        | _ -> ())
      in
      loop ();
      emit (Token.Launch_pragma (List.rev !pairs))
    end
  in
  let puncts3 = [ "<<<"; ">>>" ] in
  let puncts2 = [ "+="; "-="; "*="; "/="; "=="; "!="; "<="; ">="; "&&"; "||"; "++"; "--"; "->" ] in
  let rec loop () =
    skip_ws ();
    match peek 0 with
    | None -> ()
    | Some '#' ->
      read_pragma ();
      loop ()
    | Some c when is_digit c ->
      read_number ();
      loop ()
    | Some c when is_ident_start c ->
      read_ident ();
      loop ()
    | Some c ->
      let try3 =
        if !pos + 3 <= n then
          let s = String.sub src !pos 3 in
          if List.mem s puncts3 then Some s else None
        else None
      in
      (match try3 with
      | Some s ->
        pos := !pos + 3;
        emit (Token.Punct s)
      | None ->
        let try2 =
          if !pos + 2 <= n then
            let s = String.sub src !pos 2 in
            if List.mem s puncts2 then Some s else None
          else None
        in
        (match try2 with
        | Some s ->
          pos := !pos + 2;
          emit (Token.Punct s)
        | None ->
          if String.contains "+-*/%<>=!&|?:;,.()[]{}" c then begin
            incr pos;
            emit (Token.Punct (String.make 1 c))
          end
          else error (Printf.sprintf "unexpected character %C" c)));
      loop ()
  in
  loop ();
  emit Token.Eof;
  List.rev !tokens
