open Xpiler_ir
open Xpiler_machine

(* Peel the outer parallel nest (with interleaved shared allocations) back
   into launch metadata + hoisted declarations + per-thread body. *)
let peel_launch body =
  let is_shared_alloc = function
    | Stmt.Alloc { scope = Scope.Shared; _ } -> true
    | _ -> false
  in
  let rec peel body =
    let decls, rest = List.partition is_shared_alloc body in
    match rest with
    | [ Stmt.For { kind = Stmt.Parallel ax; var; lo = Expr.Int 0; extent = Expr.Int n; body = b } ]
      when String.equal var (Dialect.axis_var ax) ->
      let launch, inner_decls, inner = peel b in
      ((ax, n) :: launch, decls @ inner_decls, inner)
    | _ -> ([], [], body)
  in
  (* only treat the alloc prefix as hoistable when a parallel loop follows;
     otherwise keep the body untouched *)
  let rec peel_safe body =
    match body with
    | [ Stmt.For { kind = Stmt.Parallel ax; var; lo = Expr.Int 0; extent = Expr.Int n; body = b } ]
      when String.equal var (Dialect.axis_var ax) ->
      let launch, decls, inner = peel_safe b in
      ((ax, n) :: launch, decls, inner)
    | _ ->
      let decls, rest = List.partition is_shared_alloc body in
      (match rest with
      | [ Stmt.For { kind = Stmt.Parallel _; _ } ] when decls <> [] ->
        let launch, inner_decls, inner = peel rest in
        (launch, decls @ inner_decls, inner)
      | _ -> ([], [], body))
  in
  peel_safe body

(* float-ness inference for scalar declarations *)
let rec is_float_expr bufs (e : Expr.t) =
  match e with
  | Expr.Float _ -> true
  | Expr.Int _ -> false
  | Expr.Var _ -> false
  | Expr.Load (b, _) -> (
    match List.assoc_opt b bufs with Some dt -> Dtype.is_float dt | None -> true)
  | Expr.Binop (_, l, r) -> is_float_expr bufs l || is_float_expr bufs r
  | Expr.Unop ((Expr.Exp | Expr.Log | Expr.Sqrt | Expr.Rsqrt | Expr.Tanh | Expr.Erf | Expr.Recip | Expr.Floor), _)
    -> true
  | Expr.Unop (_, x) -> is_float_expr bufs x
  | Expr.Select (_, t, f) -> is_float_expr bufs t || is_float_expr bufs f
  | Expr.Cast (dt, _) -> Dtype.is_float dt

let ref_str (r : Intrin.buf_ref) =
  match Expr.simplify r.offset with
  | Expr.Int 0 -> r.buf
  | off -> Printf.sprintf "%s + %s" r.buf (Expr.to_string off)

let emit (d : Dialect.t) (k : Kernel.t) =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let launch, hoisted_decls, body = peel_launch k.Kernel.body in
  let launch = if launch = [] then k.Kernel.launch else launch in
  (* spell axis built-ins the dialect's way (e.g. hipThreadIdx_x) *)
  let body =
    List.fold_left
      (fun b (ax, _) ->
        let canonical = Dialect.axis_var ax in
        let surface = Dialect.surface_axis d ax in
        if String.equal canonical surface then b
        else Stmt.subst_var canonical (Expr.Var surface) b)
      body launch
  in
  (* buffer dtype environment for declarations and memcpy byte counts *)
  let bufs =
    List.filter_map
      (fun (p : Kernel.param) -> if p.is_buffer then Some (p.name, p.dtype) else None)
      k.Kernel.params
    @ List.map (fun (b, _, dt, _) -> (b, dt)) (Stmt.allocs k.Kernel.body)
  in
  let scopes =
    List.map (fun (p : Kernel.param) -> (p.name, Scope.Global)) k.Kernel.params
    @ List.map (fun (b, s, _, _) -> (b, s)) (Stmt.allocs k.Kernel.body)
  in
  let scope_of b = match List.assoc_opt b scopes with Some s -> s | None -> Scope.Global in
  if launch <> [] then begin
    out "#launch";
    List.iter (fun (ax, n) -> out " %s=%d" (Axis.to_string ax) n) launch;
    out "\n"
  end;
  let qual = d.Dialect.kernel_qualifier in
  let params =
    String.concat ", "
      (List.map
         (fun (p : Kernel.param) ->
           if p.is_buffer then Printf.sprintf "%s* %s" (Dtype.to_string p.dtype) p.name
           else Printf.sprintf "%s %s" (Dtype.to_string p.dtype) p.name)
         k.Kernel.params)
  in
  out "%svoid %s(%s) {\n" (if qual = "" then "" else qual ^ " ") k.Kernel.name params;
  let pad n = String.make (2 * n) ' ' in
  let emit_alloc n (r : Stmt.t) =
    match r with
    | Stmt.Alloc { buf = b; scope; dtype; size } ->
      let q = match Dialect.scope_qualifier d scope with Some q -> q ^ " " | None -> "" in
      out "%s%s%s %s[%d];\n" (pad n) q (Dtype.to_string dtype) b size
    | _ -> ()
  in
  let rec emit_block n block = List.iter (emit_stmt n) block
  and emit_stmt n stmt =
    match stmt with
    | Stmt.For r ->
      (match r.kind with
      | Stmt.Unrolled -> out "%s#pragma unroll\n" (pad n)
      | Stmt.Pipelined -> out "%s#pragma pipeline\n" (pad n)
      | Stmt.Vectorized -> out "%s#pragma vectorize\n" (pad n)
      | Stmt.Serial | Stmt.Parallel _ -> ());
      let hi = Expr.simplify (Expr.Binop (Expr.Add, r.lo, r.extent)) in
      out "%sfor (int %s = %s; %s < %s; %s++) {\n" (pad n) r.var (Expr.to_string r.lo) r.var
        (Expr.to_string hi) r.var;
      emit_block (n + 1) r.body;
      out "%s}\n" (pad n)
    | Stmt.Let { var; value } ->
      let ty = if is_float_expr bufs value then "float" else "int" in
      out "%s%s %s = %s;\n" (pad n) ty var (Expr.to_string value)
    | Stmt.Assign { var; value } -> out "%s%s = %s;\n" (pad n) var (Expr.to_string value)
    | Stmt.Store { buf = b; index; value } ->
      out "%s%s[%s] = %s;\n" (pad n) b (Expr.to_string index) (Expr.to_string value)
    | Stmt.Alloc _ -> emit_alloc n stmt
    | Stmt.If { cond; then_; else_ } ->
      out "%sif (%s) {\n" (pad n) (Expr.to_string cond);
      emit_block (n + 1) then_;
      if else_ <> [] then begin
        out "%s} else {\n" (pad n);
        emit_block (n + 1) else_
      end;
      out "%s}\n" (pad n)
    | Stmt.Memcpy { dst; src; len } -> emit_memcpy n dst src len
    | Stmt.Intrinsic i -> emit_intrinsic n i
    | Stmt.Sync ->
      let name =
        match d.Dialect.platform with
        | Platform.Bang -> "__sync_cluster"
        | _ -> "__syncthreads"
      in
      out "%s%s();\n" (pad n) name
    | Stmt.Annot { key; value } -> out "%s// @%s: %s\n" (pad n) key value
  and emit_memcpy n (dst : Intrin.buf_ref) (src : Intrin.buf_ref) len =
    let dscope = scope_of dst.buf and sscope = scope_of src.buf in
    match d.Dialect.platform with
    | Platform.Bang ->
      let dir = Dialect.memcpy_direction ~src:sscope ~dst:dscope in
      let dt =
        match List.assoc_opt dst.buf bufs with Some dt -> dt | None -> Dtype.F32
      in
      out "%s__memcpy(%s, %s, %s * sizeof(%s), %s);\n" (pad n) (ref_str dst) (ref_str src)
        (Expr.to_string (Expr.simplify len))
        (Dtype.to_string dt) dir
    | Platform.Vnni ->
      let dt =
        match List.assoc_opt dst.buf bufs with Some dt -> dt | None -> Dtype.F32
      in
      out "%smemcpy(%s, %s, %s * sizeof(%s));\n" (pad n) (ref_str dst) (ref_str src)
        (Expr.to_string (Expr.simplify len))
        (Dtype.to_string dt)
    | Platform.Cuda | Platform.Hip ->
      (* fragments move through the wmma load/store intrinsics; everything
         else uses the cooperative copy helper *)
      let frag = Scope.equal dscope Scope.Fragment || Scope.equal sscope Scope.Fragment in
      if frag && Scope.equal dscope Scope.Fragment then
        let name =
          if d.Dialect.platform = Platform.Cuda then "wmma::load_matrix_sync"
          else "__hip_load_matrix"
        in
        out "%s%s(%s, %s, %s);\n" (pad n) name (ref_str dst) (ref_str src)
          (Expr.to_string (Expr.simplify len))
      else if frag then
        let name =
          if d.Dialect.platform = Platform.Cuda then "wmma::store_matrix_sync"
          else "__hip_store_matrix"
        in
        out "%s%s(%s, %s, %s);\n" (pad n) name (ref_str dst) (ref_str src)
          (Expr.to_string (Expr.simplify len))
      else
        out "%s__copy(%s, %s, %s);\n" (pad n) (ref_str dst) (ref_str src)
          (Expr.to_string (Expr.simplify len))
  and emit_intrinsic n (i : Intrin.t) =
    let name =
      match Dialect.spelling_of_op d i.op with
      | Some s -> s
      | None -> Intrin.op_name i.op (* unsupported on this platform: will not re-parse *)
    in
    let e x = Expr.to_string (Expr.simplify x) in
    let dst = ref_str i.dst in
    let srcs = List.map ref_str i.srcs in
    let args =
      match (i.op, i.srcs, i.params) with
      | (Intrin.Mma | Intrin.Mlp), [ _; _ ], [ m; k; nn ] ->
        [ dst ] @ srcs @ [ e m; e k; e nn ]
      | Intrin.Conv2d, [ _; _ ], ps -> ([ dst ] @ srcs) @ List.map e ps
      | Intrin.Vec_fill, [], [ len; scalar ] -> [ dst; e scalar; e len ]
      | (Intrin.Vec_scale | Intrin.Vec_adds), [ _ ], [ len; scalar ] ->
        [ dst ] @ srcs @ [ e scalar; e len ]
      | _, _, [ len ] -> ([ dst ] @ srcs) @ [ e len ]
      | _, _, ps -> ([ dst ] @ srcs) @ List.map e ps
    in
    out "%s%s(%s);\n" (pad n) name (String.concat ", " args)
  in
  List.iter (emit_alloc 1) hoisted_decls;
  emit_block 1 body;
  out "}\n";
  Buffer.contents buf

let emit_platform pid k = emit (Dialect.of_platform pid) k

let lines_of_code src =
  String.split_on_char '\n' src
  |> List.filter (fun l ->
         let l = String.trim l in
         l <> "" && not (String.length l >= 2 && String.sub l 0 2 = "//"))
  |> List.length
