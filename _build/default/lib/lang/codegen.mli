open Xpiler_ir

(** Dialect back-ends: IR kernel -> source text.

    The generator peels the outer parallel-loop nest back into implicit
    built-ins (emitting a [#launch] pragma that records the grid), re-homes
    hoisted shared allocations as in-kernel declarations, and spells every
    intrinsic, qualifier and barrier in the dialect's surface syntax.
    [Parser.parse] of the produced text yields a structurally equal kernel
    for well-formed programs. *)

val emit : Dialect.t -> Kernel.t -> string
val emit_platform : Xpiler_machine.Platform.id -> Kernel.t -> string

val lines_of_code : string -> int
(** Non-blank, non-comment-only source lines; used by the productivity
    experiment (Table 8) and the benchmark inventory (Table 5). *)
