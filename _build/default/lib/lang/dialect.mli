open Xpiler_machine
open Xpiler_ir

(** Surface-syntax descriptors of the four dialects.

    A dialect maps between the unified IR and platform-specific source text:
    kernel/scope qualifiers, parallel built-in spellings, barrier calls, and
    the signature template of every intrinsic. The parser and the code
    generator share these tables, so surface syntax lives in exactly one
    place.

    The dialects are faithful miniatures of the real interfaces; two
    documented simplifications: (1) tensor-core fragments are declared as
    [__fragment__] arrays and moved with [wmma::load_matrix_sync]/
    [store_matrix_sync] carrying an explicit element count, and (2) array
    forms of per-register intrinsics ([__dp4a], [_mm512_*]) take a pointer +
    length, standing for the loop of register ops a real backend emits. *)

(** Argument signature of a surface intrinsic. *)
type signature =
  | Vec2 of Intrin.op  (** (dst, a, b, len) *)
  | Vec1 of Intrin.op  (** (dst, a, len) *)
  | Vec_scalar of Intrin.op  (** (dst, a, scalar, len) *)
  | Fill  (** (dst, scalar, len) *)
  | Reduce of Intrin.op  (** (dst, a, len) *)
  | Matmul of Intrin.op  (** (dst, a, b, m, k, n) *)
  | Conv  (** (dst, src, w, co, ci, kh, kw, ho, wo, stride) *)
  | Dp4a_sig  (** (dst, a, b, len) *)
  | Memcpy_dir  (** (dst, src, byte_count, DIRECTION) *)
  | Memcpy_plain  (** (dst, src, byte_count) *)
  | Copy_elems  (** (dst, src, len): cooperative element copy helper *)
  | Frag_load  (** (frag, src, len) *)
  | Frag_store  (** (dst, frag, len) *)
  | Sync_call

type t = {
  platform : Platform.id;
  kernel_qualifier : string;
  scope_qualifiers : (string * Scope.t) list;
  axis_idents : (string * Axis.t) list;  (** surface spelling -> axis *)
  dim_idents : (string * Axis.t) list;  (** e.g. blockDim.x -> Thread_x extent *)
  intrinsics : (string * signature) list;
  type_names : (string * Dtype.t) list;
}

val cuda : t
val bang : t
val hip : t
val vnni : t
val of_platform : Platform.id -> t
val axis_var : Axis.t -> string
(** Canonical IR loop-variable name for a parallel axis. *)

val surface_axis : t -> Axis.t -> string
(** Dialect spelling of an axis builtin (e.g. hipBlockIdx_x). *)

val find_intrinsic : t -> string -> signature option
val spelling_of_op : t -> Intrin.op -> string option
(** Surface function that implements a unified op in this dialect. *)

val scope_qualifier : t -> Scope.t -> string option
val memcpy_direction : src:Scope.t -> dst:Scope.t -> string
(** BANG-style direction tag, e.g. GDRAM2NRAM. *)
