open Xpiler_ir
open Xpiler_machine

type signature =
  | Vec2 of Intrin.op
  | Vec1 of Intrin.op
  | Vec_scalar of Intrin.op
  | Fill
  | Reduce of Intrin.op
  | Matmul of Intrin.op
  | Conv
  | Dp4a_sig
  | Memcpy_dir
  | Memcpy_plain
  | Copy_elems
  | Frag_load
  | Frag_store
  | Sync_call

type t = {
  platform : Platform.id;
  kernel_qualifier : string;
  scope_qualifiers : (string * Scope.t) list;
  axis_idents : (string * Axis.t) list;
  dim_idents : (string * Axis.t) list;
  intrinsics : (string * signature) list;
  type_names : (string * Dtype.t) list;
}

let common_types =
  [ ("float", Dtype.F32); ("half", Dtype.F16); ("int", Dtype.I32); ("int32_t", Dtype.I32);
    ("int8_t", Dtype.I8); ("char", Dtype.I8); ("bool", Dtype.Bool) ]

let cuda =
  { platform = Platform.Cuda;
    kernel_qualifier = "__global__";
    scope_qualifiers = [ ("__shared__", Scope.Shared); ("__fragment__", Scope.Fragment) ];
    axis_idents =
      [ ("blockIdx.x", Axis.Block_x); ("blockIdx.y", Axis.Block_y); ("blockIdx.z", Axis.Block_z);
        ("threadIdx.x", Axis.Thread_x); ("threadIdx.y", Axis.Thread_y);
        ("threadIdx.z", Axis.Thread_z) ];
    dim_idents =
      [ ("blockDim.x", Axis.Thread_x); ("blockDim.y", Axis.Thread_y);
        ("blockDim.z", Axis.Thread_z); ("gridDim.x", Axis.Block_x); ("gridDim.y", Axis.Block_y);
        ("gridDim.z", Axis.Block_z) ];
    intrinsics =
      [ ("wmma::mma_sync", Matmul Intrin.Mma); ("wmma::load_matrix_sync", Frag_load);
        ("wmma::store_matrix_sync", Frag_store); ("__dp4a", Dp4a_sig);
        ("__syncthreads", Sync_call); ("__copy", Copy_elems) ];
    type_names = common_types
  }

let hip =
  { platform = Platform.Hip;
    kernel_qualifier = "__global__";
    scope_qualifiers = [ ("__shared__", Scope.Shared); ("__fragment__", Scope.Fragment) ];
    axis_idents =
      [ ("hipBlockIdx_x", Axis.Block_x); ("hipBlockIdx_y", Axis.Block_y);
        ("hipBlockIdx_z", Axis.Block_z); ("hipThreadIdx_x", Axis.Thread_x);
        ("hipThreadIdx_y", Axis.Thread_y); ("hipThreadIdx_z", Axis.Thread_z) ];
    dim_idents =
      [ ("hipBlockDim_x", Axis.Thread_x); ("hipBlockDim_y", Axis.Thread_y);
        ("hipBlockDim_z", Axis.Thread_z); ("hipGridDim_x", Axis.Block_x);
        ("hipGridDim_y", Axis.Block_y); ("hipGridDim_z", Axis.Block_z) ];
    intrinsics =
      [ ("__builtin_amdgcn_mfma_f32_16x16x4f32", Matmul Intrin.Mma);
        ("__hip_load_matrix", Frag_load); ("__hip_store_matrix", Frag_store);
        ("__builtin_amdgcn_sdot4", Dp4a_sig); ("__syncthreads", Sync_call);
        ("__copy", Copy_elems) ];
    type_names = common_types
  }

let bang =
  { platform = Platform.Bang;
    kernel_qualifier = "__mlu_global__";
    scope_qualifiers =
      [ ("__nram__", Scope.Nram); ("__wram__", Scope.Wram); ("__mlu_shared__", Scope.Shared) ];
    axis_idents =
      [ ("taskId", Axis.Task_id); ("clusterId", Axis.Cluster_id); ("coreId", Axis.Core_id) ];
    dim_idents = [ ("taskDim", Axis.Task_id); ("coreDim", Axis.Core_id) ];
    intrinsics =
      [ ("__bang_add", Vec2 Intrin.Vec_add); ("__bang_sub", Vec2 Intrin.Vec_sub);
        ("__bang_mul", Vec2 Intrin.Vec_mul); ("__bang_maximum", Vec2 Intrin.Vec_max);
        ("__bang_minimum", Vec2 Intrin.Vec_min); ("__bang_active_exp", Vec1 Intrin.Vec_exp);
        ("__bang_active_log", Vec1 Intrin.Vec_log);
        ("__bang_active_sqrt", Vec1 Intrin.Vec_sqrt);
        ("__bang_active_recip", Vec1 Intrin.Vec_recip);
        ("__bang_active_tanh", Vec1 Intrin.Vec_tanh);
        ("__bang_active_erf", Vec1 Intrin.Vec_erf);
        ("__bang_active_relu", Vec1 Intrin.Vec_relu);
        ("__bang_active_sigmoid", Vec1 Intrin.Vec_sigmoid);
        ("__bang_active_gelu", Vec1 Intrin.Vec_gelu);
        ("__bang_active_sign", Vec1 Intrin.Vec_sign);
        ("__bang_mul_scalar", Vec_scalar Intrin.Vec_scale);
        ("__bang_add_scalar", Vec_scalar Intrin.Vec_adds); ("__bang_write_value", Fill);
        ("__bang_move", Vec1 Intrin.Vec_copy); ("__bang_reduce_sum", Reduce Intrin.Vec_reduce_sum);
        ("__bang_reduce_max", Reduce Intrin.Vec_reduce_max); ("__bang_mlp", Matmul Intrin.Mlp);
        ("__bang_conv", Conv); ("__memcpy", Memcpy_dir); ("__sync_cluster", Sync_call) ];
    type_names = common_types
  }

let vnni =
  { platform = Platform.Vnni;
    kernel_qualifier = "";
    scope_qualifiers = [];
    axis_idents = [];
    dim_idents = [];
    intrinsics =
      [ ("_mm512_dpbusd_epi32", Dp4a_sig); ("_mm512_add_ps", Vec2 Intrin.Vec_add);
        ("_mm512_sub_ps", Vec2 Intrin.Vec_sub); ("_mm512_mul_ps", Vec2 Intrin.Vec_mul);
        ("_mm512_max_ps", Vec2 Intrin.Vec_max); ("_mm512_min_ps", Vec2 Intrin.Vec_min);
        ("_mm512_set1_ps", Fill); ("_mm512_loadu_ps", Vec1 Intrin.Vec_copy);
        ("_mm512_reduce_add_ps", Reduce Intrin.Vec_reduce_sum);
        ("_mm512_reduce_max_ps", Reduce Intrin.Vec_reduce_max); ("memcpy", Memcpy_plain) ];
    type_names = common_types
  }

let of_platform = function
  | Platform.Cuda -> cuda
  | Platform.Bang -> bang
  | Platform.Hip -> hip
  | Platform.Vnni -> vnni

let axis_var = Axis.to_string

let surface_axis t ax =
  match List.find_opt (fun (_, a) -> Axis.equal a ax) t.axis_idents with
  | Some (name, _) -> name
  | None -> Axis.to_string ax

let find_intrinsic t name = List.assoc_opt name t.intrinsics

let spelling_of_op t op =
  let matches = function
    | Vec2 o | Vec1 o | Vec_scalar o | Reduce o | Matmul o -> Intrin.equal_op o op
    | Fill -> Intrin.equal_op Intrin.Vec_fill op
    | Conv -> Intrin.equal_op Intrin.Conv2d op
    | Dp4a_sig -> Intrin.equal_op Intrin.Dp4a op
    | Memcpy_dir | Memcpy_plain | Copy_elems | Frag_load | Frag_store | Sync_call -> false
  in
  List.find_opt (fun (_, s) -> matches s) t.intrinsics |> Option.map fst

let scope_qualifier t scope =
  List.find_opt (fun (_, s) -> Scope.equal s scope) t.scope_qualifiers |> Option.map fst

let memcpy_direction ~src ~dst =
  let tag = function
    | Scope.Global -> "GDRAM"
    | Scope.Nram -> "NRAM"
    | Scope.Wram -> "WRAM"
    | Scope.Shared -> "SRAM"
    | Scope.Local -> "LDRAM"
    | Scope.Host -> "HOST"
    | Scope.Fragment -> "FRAG"
  in
  tag src ^ "2" ^ tag dst
