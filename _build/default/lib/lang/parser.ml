open Xpiler_ir

exception Parse_error of string

exception Return_guard of Expr.t
(* internal: `if (cond) return;` — caught by the block parser, which wraps
   the remaining statements of the block in the negated guard *)

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = {
  toks : Token.t array;
  mutable i : int;
  d : Dialect.t;
  mutable bufs : (string * Dtype.t) list;
  mutable launch : (Axis.t * int) list;
}

let peek st = st.toks.(st.i)
let peek2 st = if st.i + 1 < Array.length st.toks then st.toks.(st.i + 1) else Token.Eof
let advance st = st.i <- st.i + 1

let next st =
  let t = peek st in
  advance st;
  t

let expect_punct st p =
  match next st with
  | Token.Punct q when String.equal p q -> ()
  | t -> fail "expected '%s' but found %s" p (Token.to_string t)

let expect_ident st =
  match next st with
  | Token.Ident s -> s
  | t -> fail "expected identifier but found %s" (Token.to_string t)

let accept_punct st p =
  match peek st with
  | Token.Punct q when String.equal p q ->
    advance st;
    true
  | _ -> false

let is_type_name st name = List.mem_assoc name st.d.Dialect.type_names
let dtype_of_name st name = List.assoc name st.d.Dialect.type_names

let math_unops =
  [ ("expf", Expr.Exp); ("logf", Expr.Log); ("sqrtf", Expr.Sqrt); ("rsqrtf", Expr.Rsqrt);
    ("tanhf", Expr.Tanh); ("erff", Expr.Erf); ("fabsf", Expr.Abs); ("__frcp", Expr.Recip);
    ("floorf", Expr.Floor); ("exp", Expr.Exp); ("sqrt", Expr.Sqrt); ("tanh", Expr.Tanh) ]

let math_binops = [ ("min", Expr.Min); ("max", Expr.Max); ("fminf", Expr.Min); ("fmaxf", Expr.Max) ]

(* ---- expressions -------------------------------------------------------- *)

let resolve_ident st name =
  match List.assoc_opt name st.d.Dialect.axis_idents with
  | Some ax -> Expr.Var (Dialect.axis_var ax)
  | None -> (
    match List.assoc_opt name st.d.Dialect.dim_idents with
    | Some ax -> (
      match List.assoc_opt ax st.launch with
      | Some n -> Expr.Int n
      | None -> fail "built-in %s used but %s is not in the launch configuration" name
                  (Axis.to_string ax))
    | None -> Expr.Var name)

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let c = parse_binary st 0 in
  if accept_punct st "?" then begin
    let t = parse_ternary st in
    expect_punct st ":";
    let f = parse_ternary st in
    Expr.Select (c, t, f)
  end
  else c

and binop_of_punct = function
  | "||" -> Some (1, Expr.Or)
  | "&&" -> Some (2, Expr.And)
  | "==" -> Some (3, Expr.Eq)
  | "!=" -> Some (3, Expr.Ne)
  | "<" -> Some (4, Expr.Lt)
  | "<=" -> Some (4, Expr.Le)
  | ">" -> Some (4, Expr.Gt)
  | ">=" -> Some (4, Expr.Ge)
  | "+" -> Some (5, Expr.Add)
  | "-" -> Some (5, Expr.Sub)
  | "*" -> Some (6, Expr.Mul)
  | "/" -> Some (6, Expr.Div)
  | "%" -> Some (6, Expr.Mod)
  | _ -> None

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match peek st with
    | Token.Punct p -> (
      match binop_of_punct p with
      | Some (prec, op) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary st (prec + 1) in
        loop (Expr.Binop (op, lhs, rhs))
      | _ -> lhs)
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  match peek st with
  | Token.Punct "-" ->
    advance st;
    Expr.Unop (Expr.Neg, parse_unary st)
  | Token.Punct "!" ->
    advance st;
    Expr.Unop (Expr.Not, parse_unary st)
  | Token.Punct "(" -> (
    (* cast or parenthesized expression *)
    match (peek2 st, st.toks.(min (st.i + 2) (Array.length st.toks - 1))) with
    | Token.Ident ty, Token.Punct ")" when is_type_name st ty ->
      advance st;
      advance st;
      advance st;
      Expr.Cast (dtype_of_name st ty, parse_unary st)
    | _ ->
      advance st;
      let e = parse_expr st in
      expect_punct st ")";
      e)
  | _ -> parse_postfix st

and parse_postfix st =
  match next st with
  | Token.Int_lit n -> Expr.Int n
  | Token.Float_lit f -> Expr.Float f
  | Token.Ident "sizeof" ->
    expect_punct st "(";
    let ty = expect_ident st in
    expect_punct st ")";
    if is_type_name st ty then Expr.Int (Dtype.size_in_bytes (dtype_of_name st ty))
    else fail "sizeof of unknown type %s" ty
  | Token.Ident name -> (
    match peek st with
    | Token.Punct "[" ->
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      Expr.Load (name, idx)
    | Token.Punct "(" -> (
      advance st;
      let args = parse_args st in
      match (List.assoc_opt name math_unops, args) with
      | Some op, [ a ] -> Expr.Unop (op, a)
      | Some _, _ -> fail "%s expects one argument" name
      | None, _ -> (
        match (List.assoc_opt name math_binops, args) with
        | Some op, [ a; b ] -> Expr.Binop (op, a, b)
        | Some _, _ -> fail "%s expects two arguments" name
        | None, _ -> fail "unknown function %s in expression" name))
    | _ -> resolve_ident st name)
  | t -> fail "unexpected token %s in expression" (Token.to_string t)

and parse_args st =
  if accept_punct st ")" then []
  else begin
    let rec loop acc =
      let e = parse_expr st in
      if accept_punct st "," then loop (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    loop []
  end

(* a pointer argument of an intrinsic: buf, buf + off, or &buf[off] *)
let buf_ref_of_expr (e : Expr.t) : Intrin.buf_ref =
  match e with
  | Expr.Var b -> { buf = b; offset = Expr.Int 0 }
  | Expr.Binop (Expr.Add, Expr.Var b, off) -> { buf = b; offset = off }
  | Expr.Load (b, off) -> { buf = b; offset = off }  (* &buf[off] is lexed via '&' below *)
  | _ -> fail "expected a buffer reference (buf, buf + offset, or &buf[offset])"

let parse_buf_arg st =
  if accept_punct st "&" then begin
    let b = expect_ident st in
    expect_punct st "[";
    let off = parse_expr st in
    expect_punct st "]";
    ({ buf = b; offset = off } : Intrin.buf_ref)
  end
  else buf_ref_of_expr (parse_expr st)

(* ---- statements --------------------------------------------------------- *)

let elem_size st buf =
  match List.assoc_opt buf st.bufs with
  | Some dt -> Dtype.size_in_bytes dt
  | None -> 4

let bytes_to_elems st (dst : Intrin.buf_ref) bytes =
  Expr.simplify (Expr.Binop (Expr.Div, bytes, Expr.Int (elem_size st dst.buf)))

let rec parse_stmt st : Stmt.t list =
  match peek st with
  | Token.Kind_pragma kind -> (
    advance st;
    match parse_stmt st with
    | [ Stmt.For r ] ->
      let k =
        match kind with
        | "unroll" -> Stmt.Unrolled
        | "pipeline" -> Stmt.Pipelined
        | "vectorize" -> Stmt.Vectorized
        | _ -> Stmt.Serial
      in
      [ Stmt.For { r with kind = k } ]
    | _ -> fail "#pragma %s must precede a for loop" kind)
  | Token.Punct "{" ->
    advance st;
    parse_block_rest st
  | Token.Ident "for" -> [ parse_for st ]
  | Token.Ident "if" -> [ parse_if st ]
  | Token.Ident "return" -> fail "early return is only supported as `if (cond) return;`"
  | Token.Ident name when List.mem_assoc name st.d.Dialect.scope_qualifiers ->
    parse_decl st ~scope:(Some (List.assoc name st.d.Dialect.scope_qualifiers)) ~consume_qual:true
  | Token.Ident name when is_type_name st name -> parse_decl st ~scope:None ~consume_qual:false
  | Token.Ident name when Dialect.find_intrinsic st.d name <> None -> parse_intrinsic st name
  | Token.Ident _ -> [ parse_assignment st ]
  | t -> fail "unexpected token %s at statement position" (Token.to_string t)

and parse_block st =
  expect_punct st "{";
  parse_block_rest st

and parse_block_rest st =
  let rec loop acc =
    if accept_punct st "}" then List.rev acc
    else begin
      match parse_stmt st with
      | stmts -> loop (List.rev_append stmts acc)
      | exception Return_guard cond ->
        (* everything after the guard runs only when the guard is false *)
        let rest = loop [] in
        List.rev ((Stmt.If { cond = Expr.Unop (Expr.Not, cond); then_ = rest; else_ = [] }) :: acc)
    end
  in
  loop []

and parse_body st =
  (* a loop/if body: either a block or a single statement *)
  match peek st with
  | Token.Punct "{" -> parse_block st
  | _ -> parse_stmt st

and parse_decl st ~scope ~consume_qual =
  if consume_qual then advance st;
  let ty = expect_ident st in
  if not (is_type_name st ty) then fail "expected a type, found %s" ty;
  let dt = dtype_of_name st ty in
  let _is_ptr = accept_punct st "*" in
  let name = expect_ident st in
  if accept_punct st "[" then begin
    let size =
      match next st with
      | Token.Int_lit n -> n
      | t -> fail "array size must be an integer literal, found %s" (Token.to_string t)
    in
    expect_punct st "]";
    expect_punct st ";";
    let scope = match scope with Some s -> s | None -> Scope.Local in
    st.bufs <- (name, dt) :: st.bufs;
    [ Stmt.Alloc { buf = name; scope; dtype = dt; size } ]
  end
  else if accept_punct st "=" then begin
    let value = parse_expr st in
    expect_punct st ";";
    [ Stmt.Let { var = name; value } ]
  end
  else begin
    expect_punct st ";";
    let zero = if Dtype.is_float dt then Expr.Float 0.0 else Expr.Int 0 in
    [ Stmt.Let { var = name; value = zero } ]
  end

and parse_for st =
  advance st;
  expect_punct st "(";
  (* init: [type] var = e0 *)
  let var =
    match next st with
    | Token.Ident ty when is_type_name st ty -> expect_ident st
    | Token.Ident v -> v
    | t -> fail "expected loop variable, found %s" (Token.to_string t)
  in
  expect_punct st "=";
  let lo = parse_expr st in
  expect_punct st ";";
  (* condition: var < hi *)
  let cond_var = expect_ident st in
  if not (String.equal cond_var var) then
    fail "loop condition must test the loop variable %s, found %s" var cond_var;
  expect_punct st "<";
  let hi = parse_expr st in
  expect_punct st ";";
  (* increment: var++ | ++var | var += 1 | var = var + 1 *)
  (match (next st, peek st) with
  | Token.Ident v, Token.Punct "++" when String.equal v var -> advance st
  | Token.Punct "++", Token.Ident v when String.equal v var -> advance st
  | Token.Ident v, Token.Punct "+=" when String.equal v var -> (
    advance st;
    match next st with
    | Token.Int_lit 1 -> ()
    | t -> fail "only unit loop steps are supported, found %s" (Token.to_string t))
  | t, _ -> fail "unsupported loop increment near %s" (Token.to_string t));
  expect_punct st ")";
  let body = parse_body st in
  let extent = Expr.simplify (Expr.Binop (Expr.Sub, hi, lo)) in
  Stmt.For { var; lo; extent; kind = Stmt.Serial; body }

and parse_if st =
  advance st;
  expect_punct st "(";
  let cond = parse_expr st in
  expect_punct st ")";
  (* the CUDA guard idiom `if (cond) return;` negates into a guard over the
     remainder of the enclosing block, handled by the block parser via the
     Guard marker *)
  match peek st with
  | Token.Ident "return" ->
    advance st;
    expect_punct st ";";
    raise (Return_guard cond)
  | Token.Punct "{" when (match (peek2 st, st.toks.(min (st.i + 2) (Array.length st.toks - 1))) with
                         | Token.Ident "return", Token.Punct ";" -> true
                         | _ -> false) ->
    advance st;
    advance st;
    expect_punct st ";";
    expect_punct st "}";
    raise (Return_guard cond)
  | _ ->
    let then_ = parse_body st in
    let else_ =
      match peek st with
      | Token.Ident "else" ->
        advance st;
        parse_body st
      | _ -> []
    in
    Stmt.If { cond; then_; else_ }

and parse_assignment st =
  let name = expect_ident st in
  match peek st with
  | Token.Punct "[" ->
    advance st;
    let idx = parse_expr st in
    expect_punct st "]";
    let op =
      match next st with
      | Token.Punct ("=" | "+=" | "-=" | "*=" as p) -> p
      | t -> fail "expected assignment operator, found %s" (Token.to_string t)
    in
    let rhs = parse_expr st in
    expect_punct st ";";
    let value =
      match op with
      | "=" -> rhs
      | "+=" -> Expr.Binop (Expr.Add, Expr.Load (name, idx), rhs)
      | "-=" -> Expr.Binop (Expr.Sub, Expr.Load (name, idx), rhs)
      | _ -> Expr.Binop (Expr.Mul, Expr.Load (name, idx), rhs)
    in
    Stmt.Store { buf = name; index = idx; value }
  | Token.Punct "++" ->
    advance st;
    expect_punct st ";";
    Stmt.Assign { var = name; value = Expr.Binop (Expr.Add, Expr.Var name, Expr.Int 1) }
  | _ ->
    let op =
      match next st with
      | Token.Punct ("=" | "+=" | "-=" | "*=" as p) -> p
      | t -> fail "expected assignment operator, found %s" (Token.to_string t)
    in
    let rhs = parse_expr st in
    expect_punct st ";";
    let value =
      match op with
      | "=" -> rhs
      | "+=" -> Expr.Binop (Expr.Add, Expr.Var name, rhs)
      | "-=" -> Expr.Binop (Expr.Sub, Expr.Var name, rhs)
      | _ -> Expr.Binop (Expr.Mul, Expr.Var name, rhs)
    in
    Stmt.Assign { var = name; value }

and parse_intrinsic st name =
  advance st;
  let signature =
    match Dialect.find_intrinsic st.d name with Some s -> s | None -> assert false
  in
  expect_punct st "(";
  let comma () = expect_punct st "," in
  let close () =
    expect_punct st ")";
    expect_punct st ";"
  in
  let intrin op dst srcs params =
    [ Stmt.Intrinsic { Intrin.op; dst; srcs; params } ]
  in
  match signature with
  | Dialect.Sync_call ->
    close ();
    [ Stmt.Sync ]
  | Dialect.Vec2 op ->
    let dst = parse_buf_arg st in
    comma ();
    let a = parse_buf_arg st in
    comma ();
    let b = parse_buf_arg st in
    comma ();
    let len = parse_expr st in
    close ();
    intrin op dst [ a; b ] [ len ]
  | Dialect.Vec1 op ->
    let dst = parse_buf_arg st in
    comma ();
    let a = parse_buf_arg st in
    comma ();
    let len = parse_expr st in
    close ();
    intrin op dst [ a ] [ len ]
  | Dialect.Vec_scalar op ->
    let dst = parse_buf_arg st in
    comma ();
    let a = parse_buf_arg st in
    comma ();
    let scalar = parse_expr st in
    comma ();
    let len = parse_expr st in
    close ();
    intrin op dst [ a ] [ len; scalar ]
  | Dialect.Fill ->
    let dst = parse_buf_arg st in
    comma ();
    let scalar = parse_expr st in
    comma ();
    let len = parse_expr st in
    close ();
    intrin Intrin.Vec_fill dst [] [ len; scalar ]
  | Dialect.Reduce op ->
    let dst = parse_buf_arg st in
    comma ();
    let a = parse_buf_arg st in
    comma ();
    let len = parse_expr st in
    close ();
    intrin op dst [ a ] [ len ]
  | Dialect.Matmul op ->
    let dst = parse_buf_arg st in
    comma ();
    let a = parse_buf_arg st in
    comma ();
    let b = parse_buf_arg st in
    comma ();
    let m = parse_expr st in
    comma ();
    let k = parse_expr st in
    comma ();
    let n = parse_expr st in
    close ();
    intrin op dst [ a; b ] [ m; k; n ]
  | Dialect.Conv ->
    let dst = parse_buf_arg st in
    comma ();
    let src = parse_buf_arg st in
    comma ();
    let w = parse_buf_arg st in
    let params =
      List.init 7 (fun _ ->
          comma ();
          parse_expr st)
    in
    close ();
    intrin Intrin.Conv2d dst [ src; w ] params
  | Dialect.Dp4a_sig ->
    let dst = parse_buf_arg st in
    comma ();
    let a = parse_buf_arg st in
    comma ();
    let b = parse_buf_arg st in
    comma ();
    let len = parse_expr st in
    close ();
    intrin Intrin.Dp4a dst [ a; b ] [ len ]
  | Dialect.Memcpy_dir ->
    let dst = parse_buf_arg st in
    comma ();
    let src = parse_buf_arg st in
    comma ();
    let bytes = parse_expr st in
    comma ();
    let _direction = expect_ident st in
    close ();
    [ Stmt.Memcpy { dst; src; len = bytes_to_elems st dst bytes } ]
  | Dialect.Memcpy_plain ->
    let dst = parse_buf_arg st in
    comma ();
    let src = parse_buf_arg st in
    comma ();
    let bytes = parse_expr st in
    close ();
    [ Stmt.Memcpy { dst; src; len = bytes_to_elems st dst bytes } ]
  | Dialect.Copy_elems ->
    let dst = parse_buf_arg st in
    comma ();
    let src = parse_buf_arg st in
    comma ();
    let len = parse_expr st in
    close ();
    [ Stmt.Memcpy { dst; src; len } ]
  | Dialect.Frag_load ->
    let frag = parse_buf_arg st in
    comma ();
    let src = parse_buf_arg st in
    comma ();
    let len = parse_expr st in
    close ();
    [ Stmt.Memcpy { dst = frag; src; len } ]
  | Dialect.Frag_store ->
    let dst = parse_buf_arg st in
    comma ();
    let frag = parse_buf_arg st in
    comma ();
    let len = parse_expr st in
    close ();
    [ Stmt.Memcpy { dst; src = frag; len } ]

(* ---- kernel ------------------------------------------------------------- *)

let parse_params st =
  expect_punct st "(";
  if accept_punct st ")" then []
  else begin
    let rec loop acc =
      let ty = expect_ident st in
      if not (is_type_name st ty) then fail "expected parameter type, found %s" ty;
      let dt = dtype_of_name st ty in
      let is_buffer = accept_punct st "*" in
      let name = expect_ident st in
      if is_buffer then st.bufs <- (name, dt) :: st.bufs;
      let p : Kernel.param = { name; dtype = dt; is_buffer } in
      if accept_punct st "," then loop (p :: acc)
      else begin
        expect_punct st ")";
        List.rev (p :: acc)
      end
    in
    loop []
  end

let axis_of_launch_name name =
  match List.find_opt (fun ax -> String.equal (Axis.to_string ax) name) Axis.all with
  | Some ax -> ax
  | None -> fail "unknown axis %s in #launch" name

let is_thread_like = function
  | Axis.Thread_x | Axis.Thread_y | Axis.Thread_z | Axis.Core_id -> true
  | Axis.Block_x | Axis.Block_y | Axis.Block_z | Axis.Task_id | Axis.Cluster_id -> false

(* wrap the per-thread body in the explicit parallel nest, hoisting shared
   allocations between the block-level and thread-level loops *)
let wrap_launch launch body =
  if launch = [] then body
  else begin
    let blocks, threads = List.partition (fun (ax, _) -> not (is_thread_like ax)) launch in
    let shared, rest =
      List.partition
        (function Stmt.Alloc { scope = Scope.Shared; _ } -> true | _ -> false)
        body
    in
    let wrap axes inner =
      List.fold_right
        (fun (ax, n) acc ->
          [ Stmt.For
              { var = Dialect.axis_var ax;
                lo = Expr.Int 0;
                extent = Expr.Int n;
                kind = Stmt.Parallel ax;
                body = acc
              }
          ])
        axes inner
    in
    let inner = if threads = [] then shared @ rest else shared @ wrap threads rest in
    wrap blocks inner
  end

let parse (d : Dialect.t) source =
  let toks = Array.of_list (Lexer.tokenize source) in
  let st = { toks; i = 0; d; bufs = []; launch = [] } in
  (* leading pragma *)
  (match peek st with
  | Token.Launch_pragma pairs ->
    advance st;
    st.launch <- List.map (fun (name, n) -> (axis_of_launch_name name, n)) pairs
  | _ -> ());
  (* kernel qualifier(s) *)
  let rec qualifiers () =
    match peek st with
    | Token.Ident q when String.equal q d.Dialect.kernel_qualifier && q <> "" ->
      advance st;
      qualifiers ()
    | Token.Ident q
      when String.length q >= 2 && String.sub q 0 2 = "__" && not (is_type_name st q)
           && q <> "void" ->
      fail "unknown qualifier %s for this dialect" q
    | _ -> ()
  in
  qualifiers ();
  (match next st with
  | Token.Ident "void" -> ()
  | t -> fail "expected 'void', found %s" (Token.to_string t));
  let name = expect_ident st in
  let params = parse_params st in
  let body = parse_block st in
  (match peek st with
  | Token.Eof -> ()
  | t -> fail "trailing tokens after kernel: %s" (Token.to_string t));
  let body = wrap_launch st.launch body in
  Kernel.make ~name ~params ~launch:st.launch body

let parse_platform pid source = parse (Dialect.of_platform pid) source
