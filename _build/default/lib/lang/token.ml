(** Tokens of the C-like surface dialects. *)

type t =
  | Ident of string  (** identifiers, including dotted builtins like blockIdx.x *)
  | Int_lit of int
  | Float_lit of float
  | Punct of string  (** operators and punctuation, longest-match *)
  | Launch_pragma of (string * int) list  (** [#launch axis=extent ...] *)
  | Kind_pragma of string  (** [#pragma unroll|pipeline|vectorize] *)
  | Eof

let to_string = function
  | Ident s -> Printf.sprintf "ident %s" s
  | Int_lit n -> Printf.sprintf "int %d" n
  | Float_lit f -> Printf.sprintf "float %g" f
  | Punct s -> Printf.sprintf "'%s'" s
  | Launch_pragma ps ->
    "#launch "
    ^ String.concat " " (List.map (fun (a, n) -> Printf.sprintf "%s=%d" a n) ps)
  | Kind_pragma k -> "#pragma " ^ k
  | Eof -> "<eof>"
