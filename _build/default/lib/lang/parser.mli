open Xpiler_ir

(** Dialect front-ends: source text -> IR kernel.

    The kernel body of a SIMT/MLU source is per-thread (or per-task) code;
    the parser reconstructs the explicit parallel loop nest from the
    [#launch] pragma, binding each built-in (e.g. [blockIdx.x]) as the loop
    variable, and hoists [__shared__]/[__mlu_shared__] declarations to the
    block level where they are shared by the thread group. *)

exception Parse_error of string

val parse : Dialect.t -> string -> Kernel.t
(** Raises [Parse_error] (or [Lexer.Lex_error]) on malformed input — the
    paper's "fails to compile" outcome for a source-language artifact. *)

val parse_platform : Xpiler_machine.Platform.id -> string -> Kernel.t
