lib/lang/dialect.mli: Axis Dtype Intrin Platform Scope Xpiler_ir Xpiler_machine
