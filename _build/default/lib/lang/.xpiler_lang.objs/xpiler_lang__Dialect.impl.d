lib/lang/dialect.ml: Axis Dtype Intrin List Option Platform Scope Xpiler_ir Xpiler_machine
