lib/lang/codegen.mli: Dialect Kernel Xpiler_ir Xpiler_machine
