lib/lang/codegen.ml: Axis Buffer Dialect Dtype Expr Intrin Kernel List Platform Printf Scope Stmt String Xpiler_ir Xpiler_machine
