lib/lang/parser.mli: Dialect Kernel Xpiler_ir Xpiler_machine
