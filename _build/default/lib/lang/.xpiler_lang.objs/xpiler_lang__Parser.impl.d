lib/lang/parser.ml: Array Axis Dialect Dtype Expr Intrin Kernel Lexer List Printf Scope Stmt String Token Xpiler_ir
