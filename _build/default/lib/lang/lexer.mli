(** Hand-written lexer shared by all four dialects.

    Handles C-style comments, [#launch] pragmas, dotted builtin identifiers
    ([blockIdx.x]), namespaced identifiers ([wmma::mma_sync]), and the usual
    multi-character operators with longest-match. *)

exception Lex_error of { line : int; message : string }

val tokenize : string -> Token.t list
(** Raises [Lex_error] on an unrecognized character. The final token is
    always [Token.Eof]. *)
