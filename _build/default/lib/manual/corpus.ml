open Xpiler_ir
open Xpiler_machine
open Xpiler_lang

type entry = {
  id : string;
  platform : Platform.id;
  title : string;
  body : string;
  op : Intrin.op option;
}

let op_semantics = function
  | Intrin.Vec_add -> "elementwise vector addition dst[i] = a[i] + b[i]"
  | Intrin.Vec_sub -> "elementwise vector subtraction dst[i] = a[i] - b[i]"
  | Intrin.Vec_mul -> "elementwise vector multiplication dst[i] = a[i] * b[i]"
  | Intrin.Vec_max -> "elementwise vector maximum dst[i] = max(a[i], b[i])"
  | Intrin.Vec_min -> "elementwise vector minimum dst[i] = min(a[i], b[i])"
  | Intrin.Vec_exp -> "elementwise exponential activation dst[i] = exp(a[i])"
  | Intrin.Vec_log -> "elementwise natural logarithm dst[i] = log(a[i])"
  | Intrin.Vec_sqrt -> "elementwise square root dst[i] = sqrt(a[i])"
  | Intrin.Vec_recip -> "elementwise reciprocal dst[i] = 1 / a[i]"
  | Intrin.Vec_tanh -> "elementwise hyperbolic tangent activation dst[i] = tanh(a[i])"
  | Intrin.Vec_erf -> "elementwise error function dst[i] = erf(a[i]) used by gelu"
  | Intrin.Vec_relu -> "elementwise relu activation dst[i] = max(a[i], 0)"
  | Intrin.Vec_sigmoid -> "elementwise sigmoid activation dst[i] = 1/(1+exp(-a[i]))"
  | Intrin.Vec_gelu -> "elementwise gelu activation dst[i] = 0.5 a[i] (1 + erf(a[i]/sqrt2))"
  | Intrin.Vec_sign -> "elementwise sign dst[i] in {-1, 0, 1}"
  | Intrin.Vec_scale -> "vector scalar multiplication dst[i] = a[i] * scalar"
  | Intrin.Vec_adds -> "vector scalar addition dst[i] = a[i] + scalar"
  | Intrin.Vec_fill -> "fill vector with a scalar constant dst[i] = scalar"
  | Intrin.Vec_copy -> "copy vector dst[i] = a[i]"
  | Intrin.Vec_reduce_sum -> "reduce a vector by summation dst[0] = sum of a, used by softmax layernorm pooling"
  | Intrin.Vec_reduce_max -> "reduce a vector by maximum dst[0] = max of a, used by softmax maxpool"
  | Intrin.Mma ->
    "matrix fragment multiply accumulate on the tensor core: d[m,n] += a[m,k] * b[k,n], \
     operands live in matrix_a matrix_b accumulator fragments"
  | Intrin.Mlp ->
    "matrix multiplication (fully connected layer) dst[m,n] += input[m,k] * weight[k,n], \
     matmul gemm linear layer"
  | Intrin.Conv2d -> "2d convolution with weights, conv kernel window stride"
  | Intrin.Dp4a ->
    "int8 dot product of groups of 4 accumulated into int32, used by quantized matmul \
     gemm with dl boost"

let scope_rule_text pid op =
  let dst, srcs = Platform.intrinsic_scope_rule pid op in
  Printf.sprintf "destination must reside in %s; sources in %s" (Scope.to_string dst)
    (String.concat ", " (List.map Scope.to_string srcs))

let usage_example op name =
  match op with
  | Intrin.Mlp -> Printf.sprintf "example: %s(out, in, weight, 64, 64, 64); // out[Nram], in[Nram], weight[Wram]" name
  | Intrin.Mma -> Printf.sprintf "example: %s(d_frag, a_frag, b_frag, 16, 16, 16);" name
  | Intrin.Conv2d ->
    Printf.sprintf "example: %s(out, in, w, co, ci, kh, kw, ho, wo, stride);" name
  | Intrin.Dp4a -> Printf.sprintf "example: %s(acc, a, b, 64); // 16 groups of 4 int8" name
  | Intrin.Vec_fill -> Printf.sprintf "example: %s(dst, 0.0f, 128);" name
  | Intrin.Vec_scale | Intrin.Vec_adds -> Printf.sprintf "example: %s(dst, src, 2.0f, 128);" name
  | op when Intrin.arity op = 2 -> Printf.sprintf "example: %s(dst, a, b, 128);" name
  | _ -> Printf.sprintf "example: %s(dst, src, 128);" name

let intrinsic_entries pid =
  let p = Platform.of_id pid in
  List.filter_map
    (fun op ->
      match Platform.intrinsic_spelling p op with
      | None -> None
      | Some name ->
        let align =
          if Intrin.is_vector op && p.Platform.vector_align > 1 then
            Printf.sprintf " the element count must be a multiple of %d." p.Platform.vector_align
          else ""
        in
        Some
          { id = Printf.sprintf "%s/%s" (Platform.id_to_string pid) (Intrin.op_name op);
            platform = pid;
            title = name;
            body =
              Printf.sprintf "%s: %s. %s.%s %s" name (op_semantics op)
                (scope_rule_text pid op) align (usage_example op name);
            op = Some op
          })
    p.Platform.intrinsics

let memory_entries pid =
  let p = Platform.of_id pid in
  let describe s =
    match (pid, s) with
    | Platform.Bang, Scope.Nram ->
      "NRAM neuron ram: fast on-chip memory for input and output activations of \
       vector and matrix intrinsics, declared with __nram__"
    | Platform.Bang, Scope.Wram ->
      "WRAM weight ram: dedicated on-chip storage for matmul and convolution weights, \
       declared with __wram__"
    | Platform.Bang, Scope.Global -> "GDRAM: device global memory, kernel pointer parameters"
    | Platform.Bang, Scope.Shared -> "SRAM shared across the cores of a cluster, __mlu_shared__"
    | (Platform.Cuda | Platform.Hip), Scope.Shared ->
      "shared memory: per-block scratchpad for cooperative tiles, declared __shared__, \
       synchronized with __syncthreads"
    | (Platform.Cuda | Platform.Hip), Scope.Fragment ->
      "matrix fragments: register tiles for the tensor/matrix core, matrix_a matrix_b accumulator"
    | (Platform.Cuda | Platform.Hip), Scope.Global -> "global memory: device DRAM, kernel pointers"
    | Platform.Vnni, Scope.Host -> "host memory: ordinary C arrays"
    | _, s -> Scope.to_string s ^ " memory"
  in
  List.map
    (fun s ->
      { id = Printf.sprintf "%s/mem-%s" (Platform.id_to_string pid) (Scope.to_string s);
        platform = pid;
        title = "memory " ^ Scope.to_string s;
        body = describe s;
        op = None
      })
    p.Platform.scopes

let parallel_entries pid =
  let p = Platform.of_id pid in
  let d = Dialect.of_platform pid in
  if p.Platform.axes = [] then
    [ { id = Platform.id_to_string pid ^ "/parallel";
        platform = pid;
        title = "sequential execution";
        body =
          "plain C: no parallel built-ins; loops run sequentially (the harness may \
           parallelize the outermost loop with openmp)";
        op = None
      } ]
  else
    List.map
      (fun ax ->
        { id = Printf.sprintf "%s/axis-%s" (Platform.id_to_string pid) (Axis.to_string ax);
          platform = pid;
          title = Dialect.surface_axis d ax;
          body =
            Printf.sprintf
              "parallel built-in %s: identifies this worker along the %s axis; parallel \
               loops are mapped onto it with loop binding"
              (Dialect.surface_axis d ax) (Axis.to_string ax);
          op = None
        })
      p.Platform.axes

let entries_table : (Platform.id, entry list) Hashtbl.t = Hashtbl.create 4
let index_table : (Platform.id, Bm25.index) Hashtbl.t = Hashtbl.create 4

let entries pid =
  match Hashtbl.find_opt entries_table pid with
  | Some es -> es
  | None ->
    let es = intrinsic_entries pid @ memory_entries pid @ parallel_entries pid in
    Hashtbl.add entries_table pid es;
    es

let find pid id = List.find_opt (fun e -> String.equal e.id id) (entries pid)

let index pid =
  match Hashtbl.find_opt index_table pid with
  | Some idx -> idx
  | None ->
    let idx =
      Bm25.build
        (List.map (fun e -> { Bm25.id = e.id; text = e.title ^ " " ^ e.body }) (entries pid))
    in
    Hashtbl.add index_table pid idx;
    idx

let lookup_op pid op =
  List.find_opt (fun e -> e.op = Some op) (entries pid)

let search pid query n =
  Bm25.top (index pid) query n |> List.filter_map (find pid)
