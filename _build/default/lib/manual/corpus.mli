open Xpiler_ir
open Xpiler_machine

(** The programming manuals of the four platforms.

    One entry per intrinsic / memory scope / parallel built-in, carrying the
    constraint text (operand scopes, alignment granularity) and a usage
    example. Entries are generated from the dialect and platform descriptors
    so the manual is always consistent with what the checker enforces —
    exactly the property the paper's reference annotation relies on. *)

type entry = {
  id : string;
  platform : Platform.id;
  title : string;
  body : string;
  op : Intrin.op option;  (** set for intrinsic entries *)
}

val entries : Platform.id -> entry list
val find : Platform.id -> string -> entry option
val index : Platform.id -> Bm25.index
(** BM25 index over this platform's manual (memoized). *)

val lookup_op : Platform.id -> Intrin.op -> entry option
val search : Platform.id -> string -> int -> entry list
(** Top-n manual entries for a free-text query. *)
