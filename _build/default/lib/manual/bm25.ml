type doc = { id : string; text : string }

type index = {
  docs : doc array;
  doc_tokens : string list array;
  doc_len : int array;
  avg_len : float;
  df : (string, int) Hashtbl.t;
}

let tokenize text =
  let buf = Buffer.create 16 in
  let tokens = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := String.lowercase_ascii (Buffer.contents buf) :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then
        Buffer.add_char buf c
      else flush ())
    text;
  flush ();
  List.rev !tokens

let build docs =
  let docs = Array.of_list docs in
  let doc_tokens = Array.map (fun d -> tokenize d.text) docs in
  let doc_len = Array.map List.length doc_tokens in
  let total = Array.fold_left ( + ) 0 doc_len in
  let avg_len = if Array.length docs = 0 then 1.0 else float_of_int total /. float_of_int (Array.length docs) in
  let df = Hashtbl.create 64 in
  Array.iter
    (fun toks ->
      let seen = Hashtbl.create 16 in
      List.iter
        (fun t ->
          if not (Hashtbl.mem seen t) then begin
            Hashtbl.add seen t ();
            Hashtbl.replace df t (1 + Option.value ~default:0 (Hashtbl.find_opt df t))
          end)
        toks)
    doc_tokens;
  { docs; doc_tokens; doc_len; avg_len; df }

let k1 = 1.5
let b = 0.75

let search idx query =
  let n = Array.length idx.docs in
  if n = 0 then []
  else begin
    let qtokens = tokenize query in
    let idf t =
      let d = Option.value ~default:0 (Hashtbl.find_opt idx.df t) in
      log ((float_of_int (n - d) +. 0.5) /. (float_of_int d +. 0.5) +. 1.0)
    in
    let scores =
      Array.mapi
        (fun i doc ->
          let toks = idx.doc_tokens.(i) in
          let len = float_of_int idx.doc_len.(i) in
          let tf t = List.length (List.filter (String.equal t) toks) in
          let score =
            List.fold_left
              (fun acc t ->
                let f = float_of_int (tf t) in
                if f = 0.0 then acc
                else
                  acc
                  +. idf t
                     *. (f *. (k1 +. 1.0))
                     /. (f +. (k1 *. (1.0 -. b +. (b *. len /. idx.avg_len)))))
              0.0 qtokens
          in
          (doc.id, score))
        idx.docs
    in
    Array.to_list scores
    |> List.filter (fun (_, s) -> s > 0.0)
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  end

let top idx query n =
  search idx query |> List.filteri (fun i _ -> i < n) |> List.map fst
