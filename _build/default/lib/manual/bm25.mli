(** Okapi BM25 ranking over a small document collection.

    Program annotation (Algorithm 1) retrieves the manual entry for each
    identified computation; meta-prompt construction retrieves
    platform-specific implementation examples. *)

type doc = { id : string; text : string }
type index

val build : doc list -> index
val tokenize : string -> string list
(** Lowercased alphanumeric tokens; underscores and [::] split identifiers so
    [__bang_mlp] matches the query "mlp". *)

val search : index -> string -> (string * float) list
(** [search idx query] returns (doc id, score) sorted by descending score;
    only documents with a positive score are returned. *)

val top : index -> string -> int -> string list
