lib/manual/bm25.ml: Array Buffer Float Hashtbl List Option String
