lib/manual/bm25.mli:
