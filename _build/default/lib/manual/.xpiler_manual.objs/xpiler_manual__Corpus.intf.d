lib/manual/corpus.mli: Bm25 Intrin Platform Xpiler_ir Xpiler_machine
