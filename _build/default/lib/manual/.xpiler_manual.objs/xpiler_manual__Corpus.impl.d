lib/manual/corpus.ml: Axis Bm25 Dialect Hashtbl Intrin List Platform Printf Scope String Xpiler_ir Xpiler_lang Xpiler_machine
