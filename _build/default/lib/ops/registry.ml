let all =
  [ Defs_basic.gemm; Defs_basic.gemv; Defs_basic.batch_gemm; Defs_basic.conv1d;
    Defs_basic.conv2d_nhwc; Defs_basic.conv2d_nchw; Defs_basic.depthwise_conv;
    Defs_basic.relu; Defs_llm.softmax; Defs_basic.gelu; Defs_basic.sigmoid; Defs_basic.add;
    Defs_basic.sign; Defs_basic.maxpool; Defs_basic.avgpool; Defs_basic.minpool;
    Defs_basic.sumpool; Defs_llm.layernorm; Defs_llm.deformable_attention;
    Defs_llm.self_attention; Defs_llm.rmsnorm ]

let find name = List.find_opt (fun (o : Opdef.t) -> String.equal o.name name) all

let find_exn name =
  match find name with
  | Some o -> o
  | None -> invalid_arg ("Registry.find_exn: unknown operator " ^ name)

type case = { op : Opdef.t; shape : Opdef.shape; case_id : string }

let case_id (op : Opdef.t) shape =
  Printf.sprintf "%s@%s" op.name
    (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) shape))

let cases () =
  List.concat_map
    (fun (op : Opdef.t) ->
      List.map (fun shape -> { op; shape; case_id = case_id op shape }) op.shapes)
    all

let cases_of names =
  List.filter (fun c -> List.mem c.op.Opdef.name names) (cases ())
