lib/ops/defs_llm.ml: Builder Dtype Expr Kernel Opdef Scope Stdlib Xpiler_ir
