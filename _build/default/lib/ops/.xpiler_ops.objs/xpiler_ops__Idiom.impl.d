lib/ops/idiom.ml: Axis Checker Expr Hashtbl Kernel List Memory_pass Opdef Option Pass Platform Printf Result Rewrite Scope Stmt String Xpiler_ir Xpiler_lang Xpiler_machine Xpiler_passes
