lib/ops/opdef.ml: Dtype Kernel List Xpiler_ir
