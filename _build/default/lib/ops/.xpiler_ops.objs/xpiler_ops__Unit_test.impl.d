lib/ops/unit_test.ml: Interp List Opdef Printf Tensor Xpiler_machine Xpiler_util
