lib/ops/registry.ml: Defs_basic Defs_llm List Opdef Printf String
