lib/ops/opdef.mli: Dtype Kernel Xpiler_ir
