lib/ops/unit_test.mli: Interp Kernel Opdef Tensor Xpiler_ir Xpiler_machine Xpiler_util
