lib/ops/idiom.mli: Kernel Opdef Platform Xpiler_ir Xpiler_machine Xpiler_passes
