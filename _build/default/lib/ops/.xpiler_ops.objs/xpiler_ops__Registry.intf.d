lib/ops/registry.mli: Opdef
