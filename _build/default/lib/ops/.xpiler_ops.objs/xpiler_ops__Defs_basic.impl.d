lib/ops/defs_basic.ml: Builder Dtype Expr Kernel Opdef Stdlib Xpiler_ir
