(* Operator definitions: MatMul, Convolution, Pooling, Elementwise and the
   simple activations. Shapes are baked into the kernels as constants, as is
   usual for tensor-program benchmarks. *)

open Xpiler_ir
open Opdef

let d = dim
let fbuf name size : buffer_spec = { buf_name = name; dtype = Dtype.F32; size; is_output = false }
let fout name size : buffer_spec = { buf_name = name; dtype = Dtype.F32; size; is_output = true }

let sh pairs = pairs

(* ---- MatMul family -------------------------------------------------------- *)

let gemm =
  let serial shp =
    let m = d shp "m" and n = d shp "n" and k = d shp "k" in
    let open Expr.Infix in
    Kernel.make ~name:"gemm"
      ~params:[ Builder.buffer "A"; Builder.buffer "B"; Builder.buffer "C" ]
      [ Builder.for_ "i" (int m)
          [ Builder.for_ "j" (int n)
              [ Builder.let_ "acc" (flt 0.0);
                Builder.for_ "p" (int k)
                  [ Builder.assign "acc"
                      (v "acc"
                      + (load "A" ((v "i" * int k) + v "p") * load "B" ((v "p" * int n) + v "j")))
                  ];
                Builder.store "C" ((v "i" * int n) + v "j") (v "acc")
              ]
          ]
      ]
  in
  { name = "gemm";
    cls = Matmul;
    shapes =
      [ sh [ ("m", 16); ("n", 64); ("k", 32) ]; sh [ ("m", 32); ("n", 64); ("k", 32) ];
        sh [ ("m", 8); ("n", 64); ("k", 64) ]; sh [ ("m", 16); ("n", 128); ("k", 32) ];
        sh [ ("m", 64); ("n", 64); ("k", 16) ]; sh [ ("m", 32); ("n", 64); ("k", 64) ];
        sh [ ("m", 16); ("n", 64); ("k", 64) ]; sh [ ("m", 8); ("n", 128); ("k", 32) ] ];
    buffers =
      [ fbuf "A" (fun s -> d s "m" * d s "k"); fbuf "B" (fun s -> d s "k" * d s "n");
        fout "C" (fun s -> d s "m" * d s "n") ];
    serial;
    flops = (fun s -> 2.0 *. float_of_int (d s "m" * d s "n" * d s "k"))
  }

let gemv =
  let serial shp =
    let m = d shp "m" and k = d shp "k" in
    let open Expr.Infix in
    Kernel.make ~name:"gemv"
      ~params:[ Builder.buffer "A"; Builder.buffer "x"; Builder.buffer "y" ]
      [ Builder.for_ "i" (int m)
          [ Builder.let_ "acc" (flt 0.0);
            Builder.for_ "p" (int k)
              [ Builder.assign "acc" (v "acc" + (load "A" ((v "i" * int k) + v "p") * load "x" (v "p"))) ];
            Builder.store "y" (v "i") (v "acc")
          ]
      ]
  in
  { name = "gemv";
    cls = Matmul;
    shapes =
      [ sh [ ("m", 64); ("k", 64) ]; sh [ ("m", 128); ("k", 64) ]; sh [ ("m", 64); ("k", 128) ];
        sh [ ("m", 256); ("k", 64) ]; sh [ ("m", 32); ("k", 64) ]; sh [ ("m", 64); ("k", 256) ];
        sh [ ("m", 128); ("k", 128) ]; sh [ ("m", 256); ("k", 32) ] ];
    buffers =
      [ fbuf "A" (fun s -> d s "m" * d s "k"); fbuf "x" (fun s -> d s "k");
        fout "y" (fun s -> d s "m") ];
    serial;
    flops = (fun s -> 2.0 *. float_of_int (d s "m" * d s "k"))
  }

let batch_gemm =
  let serial shp =
    let b = d shp "b" and m = d shp "m" and n = d shp "n" and k = d shp "k" in
    let mk = Stdlib.( * ) m k and kn = Stdlib.( * ) k n and mn = Stdlib.( * ) m n in
    let open Expr.Infix in
    Kernel.make ~name:"batch_gemm"
      ~params:[ Builder.buffer "A"; Builder.buffer "B"; Builder.buffer "C" ]
      [ Builder.for_ "bi" (int b)
          [ Builder.for_ "i" (int m)
              [ Builder.for_ "j" (int n)
                  [ Builder.let_ "acc" (flt 0.0);
                    Builder.for_ "p" (int k)
                      [ Builder.assign "acc"
                          (v "acc"
                          + (load "A" ((v "bi" * int mk) + (v "i" * int k) + v "p")
                            * load "B" ((v "bi" * int kn) + (v "p" * int n) + v "j")))
                      ];
                    Builder.store "C"
                      ((v "bi" * int mn) + (v "i" * int n) + v "j")
                      (v "acc")
                  ]
              ]
          ]
      ]
  in
  { name = "batch_gemm";
    cls = Matmul;
    shapes =
      [ sh [ ("b", 2); ("m", 8); ("n", 64); ("k", 16) ];
        sh [ ("b", 4); ("m", 8); ("n", 32); ("k", 32) ];
        sh [ ("b", 2); ("m", 16); ("n", 64); ("k", 16) ];
        sh [ ("b", 4); ("m", 16); ("n", 32); ("k", 16) ];
        sh [ ("b", 2); ("m", 32); ("n", 32); ("k", 16) ];
        sh [ ("b", 8); ("m", 8); ("n", 32); ("k", 16) ];
        sh [ ("b", 2); ("m", 8); ("n", 128); ("k", 16) ];
        sh [ ("b", 4); ("m", 8); ("n", 64); ("k", 16) ] ];
    buffers =
      [ fbuf "A" (fun s -> d s "b" * d s "m" * d s "k");
        fbuf "B" (fun s -> d s "b" * d s "k" * d s "n");
        fout "C" (fun s -> d s "b" * d s "m" * d s "n") ];
    serial;
    flops = (fun s -> 2.0 *. float_of_int (d s "b" * d s "m" * d s "n" * d s "k"))
  }

(* ---- Convolution family ----------------------------------------------------- *)

let conv1d =
  let serial shp =
    let n = d shp "n" and kw = d shp "kw" in
    let open Expr.Infix in
    Kernel.make ~name:"conv1d"
      ~params:[ Builder.buffer "inp"; Builder.buffer "w"; Builder.buffer "out" ]
      [ Builder.for_ "i" (int n)
          [ Builder.let_ "acc" (flt 0.0);
            Builder.for_ "q" (int kw)
              [ Builder.assign "acc" (v "acc" + (load "inp" (v "i" + v "q") * load "w" (v "q"))) ];
            Builder.store "out" (v "i") (v "acc")
          ]
      ]
  in
  { name = "conv1d";
    cls = Convolution;
    shapes =
      [ sh [ ("n", 64); ("kw", 3) ]; sh [ ("n", 128); ("kw", 3) ]; sh [ ("n", 256); ("kw", 3) ];
        sh [ ("n", 64); ("kw", 5) ]; sh [ ("n", 128); ("kw", 5) ]; sh [ ("n", 256); ("kw", 5) ];
        sh [ ("n", 64); ("kw", 7) ]; sh [ ("n", 512); ("kw", 3) ] ];
    buffers =
      [ fbuf "inp" (fun s -> d s "n" + d s "kw" - 1); fbuf "w" (fun s -> d s "kw");
        fout "out" (fun s -> d s "n") ];
    serial;
    flops = (fun s -> 2.0 *. float_of_int (d s "n" * d s "kw"))
  }

let conv_shapes =
  [ sh [ ("h", 8); ("w", 8); ("ci", 8); ("co", 16) ];
    sh [ ("h", 8); ("w", 8); ("ci", 16); ("co", 16) ];
    sh [ ("h", 16); ("w", 16); ("ci", 8); ("co", 8) ];
    sh [ ("h", 8); ("w", 8); ("ci", 4); ("co", 32) ];
    sh [ ("h", 4); ("w", 4); ("ci", 16); ("co", 32) ];
    sh [ ("h", 16); ("w", 16); ("ci", 4); ("co", 8) ];
    sh [ ("h", 8); ("w", 16); ("ci", 8); ("co", 8) ];
    sh [ ("h", 12); ("w", 12); ("ci", 8); ("co", 8) ] ]

let conv_flops s = 2.0 *. float_of_int (d s "h" * d s "w" * d s "co" * d s "ci" * 9)

let conv2d_nhwc =
  let serial shp =
    let h = d shp "h" and w = d shp "w" and ci = d shp "ci" and co = d shp "co" in
    let wi = w + 2 in
    let open Expr.Infix in
    Kernel.make ~name:"conv2d_nhwc"
      ~params:[ Builder.buffer "inp"; Builder.buffer "wgt"; Builder.buffer "out" ]
      [ Builder.for_ "oh" (int h)
          [ Builder.for_ "ow" (int w)
              [ Builder.for_ "oc" (int co)
                  [ Builder.let_ "acc" (flt 0.0);
                    Builder.for_ "r" (int 3)
                      [ Builder.for_ "q" (int 3)
                          [ Builder.for_ "c" (int ci)
                              [ Builder.assign "acc"
                                  (v "acc"
                                  + (load "inp"
                                       ((((v "oh" + v "r") * int wi) + v "ow" + v "q") * int ci
                                       + v "c")
                                    * load "wgt"
                                        ((((v "oc" * int 3) + v "r") * int 3 + v "q") * int ci
                                        + v "c")))
                              ]
                          ]
                      ];
                    Builder.store "out" ((((v "oh" * int w) + v "ow") * int co) + v "oc") (v "acc")
                  ]
              ]
          ]
      ]
  in
  { name = "conv2d_nhwc";
    cls = Convolution;
    shapes = conv_shapes;
    buffers =
      [ fbuf "inp" (fun s -> (d s "h" + 2) * (d s "w" + 2) * d s "ci");
        fbuf "wgt" (fun s -> d s "co" * 9 * d s "ci");
        fout "out" (fun s -> d s "h" * d s "w" * d s "co") ];
    serial;
    flops = conv_flops
  }

let conv2d_nchw =
  let serial shp =
    let h = d shp "h" and w = d shp "w" and ci = d shp "ci" and co = d shp "co" in
    let hi = h + 2 and wi = w + 2 in
    let hw = Stdlib.( * ) hi wi and ohw = Stdlib.( * ) h w in
    let open Expr.Infix in
    Kernel.make ~name:"conv2d_nchw"
      ~params:[ Builder.buffer "inp"; Builder.buffer "wgt"; Builder.buffer "out" ]
      [ Builder.for_ "oc" (int co)
          [ Builder.for_ "oh" (int h)
              [ Builder.for_ "ow" (int w)
                  [ Builder.let_ "acc" (flt 0.0);
                    Builder.for_ "c" (int ci)
                      [ Builder.for_ "r" (int 3)
                          [ Builder.for_ "q" (int 3)
                              [ Builder.assign "acc"
                                  (v "acc"
                                  + (load "inp"
                                       ((v "c" * int hw)
                                       + ((v "oh" + v "r") * int wi)
                                       + v "ow" + v "q")
                                    * load "wgt"
                                        ((((v "oc" * int ci) + v "c") * int 9)
                                        + (v "r" * int 3) + v "q")))
                              ]
                          ]
                      ];
                    Builder.store "out"
                      ((v "oc" * int ohw) + (v "oh" * int w) + v "ow")
                      (v "acc")
                  ]
              ]
          ]
      ]
  in
  { name = "conv2d_nchw";
    cls = Convolution;
    shapes = conv_shapes;
    buffers =
      [ fbuf "inp" (fun s -> d s "ci" * (d s "h" + 2) * (d s "w" + 2));
        fbuf "wgt" (fun s -> d s "co" * d s "ci" * 9);
        fout "out" (fun s -> d s "co" * d s "h" * d s "w") ];
    serial;
    flops = conv_flops
  }

let depthwise_conv =
  let serial shp =
    let h = d shp "h" and w = d shp "w" and c = d shp "c" in
    let wi = w + 2 in
    let open Expr.Infix in
    Kernel.make ~name:"depthwise_conv"
      ~params:[ Builder.buffer "inp"; Builder.buffer "wgt"; Builder.buffer "out" ]
      [ Builder.for_ "oh" (int h)
          [ Builder.for_ "ow" (int w)
              [ Builder.for_ "c" (int c)
                  [ Builder.let_ "acc" (flt 0.0);
                    Builder.for_ "r" (int 3)
                      [ Builder.for_ "q" (int 3)
                          [ Builder.assign "acc"
                              (v "acc"
                              + (load "inp"
                                   ((((v "oh" + v "r") * int wi) + v "ow" + v "q") * int c
                                   + v "c")
                                * load "wgt" (((v "r" * int 3) + v "q") * int c + v "c")))
                          ]
                      ];
                    Builder.store "out" ((((v "oh" * int w) + v "ow") * int c) + v "c") (v "acc")
                  ]
              ]
          ]
      ]
  in
  { name = "depthwise_conv";
    cls = Convolution;
    shapes =
      [ sh [ ("h", 16); ("w", 16); ("c", 16) ]; sh [ ("h", 8); ("w", 8); ("c", 64) ];
        sh [ ("h", 16); ("w", 16); ("c", 32) ]; sh [ ("h", 32); ("w", 32); ("c", 8) ];
        sh [ ("h", 8); ("w", 8); ("c", 32) ]; sh [ ("h", 16); ("w", 16); ("c", 64) ];
        sh [ ("h", 32); ("w", 32); ("c", 4) ]; sh [ ("h", 24); ("w", 24); ("c", 8) ] ];
    buffers =
      [ fbuf "inp" (fun s -> (d s "h" + 2) * (d s "w" + 2) * d s "c");
        fbuf "wgt" (fun s -> 9 * d s "c");
        fout "out" (fun s -> d s "h" * d s "w" * d s "c") ];
    serial;
    flops = (fun s -> 2.0 *. float_of_int (d s "h" * d s "w" * d s "c" * 9))
  }

(* ---- Activations (simple) ---------------------------------------------------- *)

let elem_shapes =
  [ sh [ ("n", 256) ]; sh [ ("n", 512) ]; sh [ ("n", 1024) ]; sh [ ("n", 2048) ];
    sh [ ("n", 4096) ]; sh [ ("n", 8192) ]; sh [ ("n", 320) ]; sh [ ("n", 640) ] ]

let unary_op name formula flops_per_elem =
  let serial shp =
    let n = d shp "n" in
    let open Expr.Infix in
    Kernel.make ~name
      ~params:[ Builder.buffer "inp"; Builder.buffer "out" ]
      [ Builder.for_ "i" (int n) [ Builder.store "out" (v "i") (formula (load "inp" (v "i"))) ] ]
  in
  { name;
    cls = Activation;
    shapes = elem_shapes;
    buffers = [ fbuf "inp" (fun s -> d s "n"); fout "out" (fun s -> d s "n") ];
    serial;
    flops = (fun s -> flops_per_elem *. float_of_int (d s "n"))
  }

let relu = unary_op "relu" (fun x -> Expr.Binop (Expr.Max, x, Expr.Float 0.0)) 1.0

let gelu =
  unary_op "gelu"
    (fun x ->
      Expr.Binop
        ( Expr.Mul,
          Expr.Binop (Expr.Mul, Expr.Float 0.5, x),
          Expr.Binop
            ( Expr.Add,
              Expr.Float 1.0,
              Expr.Unop (Expr.Erf, Expr.Binop (Expr.Mul, x, Expr.Float 0.7071067811865476)) ) ))
    10.0

let sigmoid =
  unary_op "sigmoid"
    (fun x ->
      Expr.Binop
        ( Expr.Div,
          Expr.Float 1.0,
          Expr.Binop (Expr.Add, Expr.Float 1.0, Expr.Unop (Expr.Exp, Expr.Unop (Expr.Neg, x))) ))
    10.0

(* ---- Elementwise -------------------------------------------------------------- *)

let add =
  let serial shp =
    let n = d shp "n" in
    let open Expr.Infix in
    Kernel.make ~name:"add"
      ~params:[ Builder.buffer "a"; Builder.buffer "b"; Builder.buffer "out" ]
      [ Builder.for_ "i" (int n)
          [ Builder.store "out" (v "i") (load "a" (v "i") + load "b" (v "i")) ]
      ]
  in
  { name = "add";
    cls = Elementwise;
    shapes = elem_shapes;
    buffers =
      [ fbuf "a" (fun s -> d s "n"); fbuf "b" (fun s -> d s "n"); fout "out" (fun s -> d s "n") ];
    serial;
    flops = (fun s -> float_of_int (d s "n"))
  }

let sign =
  let serial shp =
    let n = d shp "n" in
    let open Expr.Infix in
    let x = load "inp" (v "i") in
    Kernel.make ~name:"sign"
      ~params:[ Builder.buffer "inp"; Builder.buffer "out" ]
      [ Builder.for_ "i" (int n)
          [ Builder.store "out" (v "i")
              (Expr.Select
                 ( Expr.Binop (Expr.Gt, x, Expr.Float 0.0),
                   Expr.Float 1.0,
                   Expr.Select
                     (Expr.Binop (Expr.Lt, x, Expr.Float 0.0), Expr.Float (-1.0), Expr.Float 0.0)
                 ))
          ]
      ]
  in
  { name = "sign";
    cls = Elementwise;
    shapes = elem_shapes;
    buffers = [ fbuf "inp" (fun s -> d s "n"); fout "out" (fun s -> d s "n") ];
    serial;
    flops = (fun s -> 2.0 *. float_of_int (d s "n"))
  }

(* ---- Pooling -------------------------------------------------------------------- *)

let pool_shapes =
  [ sh [ ("h", 8); ("w", 8); ("c", 8) ]; sh [ ("h", 8); ("w", 8); ("c", 16) ];
    sh [ ("h", 16); ("w", 16); ("c", 4) ]; sh [ ("h", 4); ("w", 4); ("c", 32) ];
    sh [ ("h", 8); ("w", 8); ("c", 4) ]; sh [ ("h", 16); ("w", 16); ("c", 8) ];
    sh [ ("h", 4); ("w", 8); ("c", 16) ]; sh [ ("h", 12); ("w", 12); ("c", 4) ] ]

type pool_kind = Pmax | Pmin | Pavg | Psum

let pool_op name kind =
  (* 2x2 window, stride 2: (h, w, c) are output dims; input is (2h, 2w, c) *)
  let serial shp =
    let h = d shp "h" and w = d shp "w" and c = d shp "c" in
    let wi = 2 * w in
    let open Expr.Infix in
    let in_at r q =
      load "inp" (((((v "oh" * int 2) + r) * int wi) + (v "ow" * int 2) + q) * int c + v "ch")
    in
    let init =
      match kind with Pmax | Pmin -> in_at (int 0) (int 0) | Pavg | Psum -> flt 0.0
    in
    let combine acc =
      match kind with
      | Pmax -> Expr.Binop (Expr.Max, acc, in_at (v "r") (v "q"))
      | Pmin -> Expr.Binop (Expr.Min, acc, in_at (v "r") (v "q"))
      | Pavg | Psum -> acc + in_at (v "r") (v "q")
    in
    let final acc = match kind with Pavg -> acc * flt 0.25 | Pmax | Pmin | Psum -> acc in
    Kernel.make ~name
      ~params:[ Builder.buffer "inp"; Builder.buffer "out" ]
      [ Builder.for_ "oh" (int h)
          [ Builder.for_ "ow" (int w)
              [ Builder.for_ "ch" (int c)
                  [ Builder.let_ "acc" init;
                    Builder.for_ "r" (int 2)
                      [ Builder.for_ "q" (int 2) [ Builder.assign "acc" (combine (v "acc")) ] ];
                    Builder.store "out"
                      ((((v "oh" * int w) + v "ow") * int c) + v "ch")
                      (final (v "acc"))
                  ]
              ]
          ]
      ]
  in
  { name;
    cls = Pooling;
    shapes = pool_shapes;
    buffers =
      [ fbuf "inp" (fun s -> 4 * d s "h" * d s "w" * d s "c");
        fout "out" (fun s -> d s "h" * d s "w" * d s "c") ];
    serial;
    flops = (fun s -> 4.0 *. float_of_int (d s "h" * d s "w" * d s "c"))
  }

let maxpool = pool_op "maxpool" Pmax
let minpool = pool_op "minpool" Pmin
let avgpool = pool_op "avgpool" Pavg
let sumpool = pool_op "sumpool" Psum
