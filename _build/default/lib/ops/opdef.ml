open Xpiler_ir

type op_class = Matmul | Convolution | Activation | Pooling | Elementwise | Llm

type shape = (string * int) list

type buffer_spec = {
  buf_name : string;
  dtype : Dtype.t;
  size : shape -> int;
  is_output : bool;
}

type t = {
  name : string;
  cls : op_class;
  shapes : shape list;
  buffers : buffer_spec list;
  serial : shape -> Kernel.t;
  flops : shape -> float;
}

let dim sh name =
  match List.assoc_opt name sh with
  | Some v -> v
  | None -> raise (Not_found)

let class_name = function
  | Matmul -> "MatMul"
  | Convolution -> "Convolution"
  | Activation -> "Activation"
  | Pooling -> "Pooling"
  | Elementwise -> "Elementwise"
  | Llm -> "LLM"

let outputs t = List.filter (fun b -> b.is_output) t.buffers
let inputs t = List.filter (fun b -> not b.is_output) t.buffers
