open Xpiler_ir
open Xpiler_machine

(** Idiomatic per-platform source programs, derived from each operator's
    canonical sequential kernel through golden pass pipelines (split/bind for
    SIMT grids; split/bind + NRAM/WRAM staging + tensorize for the MLU;
    AVX-style tensorization for the VNNI CPU).

    Every produced kernel passes the target platform's checker and the
    operator's unit test; when a pipeline step fails on a particular shape
    (e.g. a misaligned extent) the builder falls back to a simpler but valid
    idiom, ending at the plain sequential kernel. *)

val source : Platform.id -> Opdef.t -> Opdef.shape -> Kernel.t

val source_text : Platform.id -> Opdef.t -> Opdef.shape -> string
(** The idiomatic kernel rendered in the platform's surface dialect. *)

val golden_pipeline :
  Platform.id -> Opdef.t -> Opdef.shape -> Xpiler_passes.Pass.spec list
(** The pass sequence [source] applies (empty when the serial kernel is
    already the idiom, as for plain C). *)

val pipelines_for :
  Platform.id -> Opdef.t -> Opdef.shape -> Kernel.t -> Xpiler_passes.Pass.spec list list
(** Candidate pass sequences for retargeting an arbitrary (e.g. just
    sequentialized) kernel of this operator, preferred first, ending with
    conservative fallbacks. Loop names are derived from the kernel itself. *)
