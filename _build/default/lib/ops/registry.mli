(** The evaluated benchmark (Table 5): 21 operators x 8 shapes = 168 cases. *)

val all : Opdef.t list
val find : string -> Opdef.t option
val find_exn : string -> Opdef.t

type case = { op : Opdef.t; shape : Opdef.shape; case_id : string }

val cases : unit -> case list
(** All 168 cases in a stable order; [case_id] is ["op@dim=n,..."]. *)

val cases_of : string list -> case list
(** Cases restricted to the named ops. *)
