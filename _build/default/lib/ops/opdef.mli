open Xpiler_ir

(** Operator definitions for the evaluation suite (Table 5).

    Every operator carries a canonical *sequential* kernel builder with the
    shape baked in as constants; that kernel is simultaneously (a) the
    numerical reference for unit tests, (b) the starting point from which
    idiomatic per-platform sources are derived by golden pass pipelines, and
    (c) the thing the transcompiler's correctness is judged against. *)

type op_class = Matmul | Convolution | Activation | Pooling | Elementwise | Llm

type shape = (string * int) list

type buffer_spec = {
  buf_name : string;
  dtype : Dtype.t;
  size : shape -> int;
  is_output : bool;
}

type t = {
  name : string;
  cls : op_class;
  shapes : shape list;  (** the 8 evaluated shapes *)
  buffers : buffer_spec list;
  serial : shape -> Kernel.t;
  flops : shape -> float;
}

val dim : shape -> string -> int
(** Raises [Not_found] with the dimension name for missing dims. *)

val class_name : op_class -> string
val outputs : t -> buffer_spec list
val inputs : t -> buffer_spec list
