(* LLM-class operators plus softmax: row-wise normalizations, attention, and
   the deformable-attention failure case of the paper's §7.6. *)

open Xpiler_ir
open Opdef

let d = dim
let fbuf name size : buffer_spec = { buf_name = name; dtype = Dtype.F32; size; is_output = false }
let fout name size : buffer_spec = { buf_name = name; dtype = Dtype.F32; size; is_output = true }
let sh pairs = pairs

let row_shapes =
  [ sh [ ("r", 4); ("c", 64) ]; sh [ ("r", 8); ("c", 64) ]; sh [ ("r", 4); ("c", 128) ];
    sh [ ("r", 8); ("c", 128) ]; sh [ ("r", 16); ("c", 64) ]; sh [ ("r", 2); ("c", 256) ];
    sh [ ("r", 4); ("c", 256) ]; sh [ ("r", 32); ("c", 64) ] ]

(* row-wise softmax, written as the max / subtract / exp / sum / scale loop
   sequence a BANG C programmer would use *)
let softmax_body ~rows ~cols ~inp ~out =
  let open Expr.Infix in
  let base = v "row" * int cols in
  [ Builder.for_ "row" (int rows)
      [ Builder.let_ "mx" (load inp base);
        Builder.for_ "p" (int cols)
          [ Builder.assign "mx" (Expr.Binop (Expr.Max, v "mx", load inp (base + v "p"))) ];
        Builder.for_ "p" (int cols)
          [ Builder.store out (base + v "p") (load inp (base + v "p") - v "mx") ];
        Builder.for_ "p" (int cols)
          [ Builder.store out (base + v "p") (Expr.Unop (Expr.Exp, load out (base + v "p"))) ];
        Builder.let_ "s" (flt 0.0);
        Builder.for_ "p" (int cols)
          [ Builder.assign "s" (v "s" + load out (base + v "p")) ];
        Builder.let_ "inv" (Expr.Unop (Expr.Recip, v "s"));
        Builder.for_ "p" (int cols)
          [ Builder.store out (base + v "p") (load out (base + v "p") * v "inv") ]
      ]
  ]

let softmax =
  let serial shp =
    let r = d shp "r" and c = d shp "c" in
    Kernel.make ~name:"softmax"
      ~params:[ Builder.buffer "inp"; Builder.buffer "out" ]
      (softmax_body ~rows:r ~cols:c ~inp:"inp" ~out:"out")
  in
  { name = "softmax";
    cls = Activation;
    shapes = row_shapes;
    buffers =
      [ fbuf "inp" (fun s -> d s "r" * d s "c"); fout "out" (fun s -> d s "r" * d s "c") ];
    serial;
    flops = (fun s -> 5.0 *. float_of_int (d s "r" * d s "c"))
  }

let layernorm =
  let serial shp =
    let r = d shp "r" and c = d shp "c" in
    let inv_c = 1.0 /. float_of_int c in
    let open Expr.Infix in
    let base = v "row" * int c in
    Kernel.make ~name:"layernorm"
      ~params:[ Builder.buffer "inp"; Builder.buffer "out" ]
      [ Builder.alloc "tmp" Scope.Local c;
        Builder.for_ "row" (int r)
          [ Builder.let_ "s" (flt 0.0);
            Builder.for_ "p" (int c) [ Builder.assign "s" (v "s" + load "inp" (base + v "p")) ];
            Builder.let_ "mean" (v "s" * flt inv_c);
            Builder.for_ "p" (int c)
              [ Builder.store "tmp" (v "p") (load "inp" (base + v "p") - v "mean") ];
            Builder.for_ "p" (int c)
              [ Builder.store "tmp" (v "p") (load "tmp" (v "p") * load "tmp" (v "p")) ];
            Builder.let_ "var" (flt 0.0);
            Builder.for_ "p" (int c) [ Builder.assign "var" (v "var" + load "tmp" (v "p")) ];
            Builder.let_ "rstd"
              (Expr.Unop (Expr.Rsqrt, (v "var" * flt inv_c) + flt 1e-5));
            Builder.for_ "p" (int c)
              [ Builder.store "out" (base + v "p") (load "inp" (base + v "p") - v "mean") ];
            Builder.for_ "p" (int c)
              [ Builder.store "out" (base + v "p") (load "out" (base + v "p") * v "rstd") ]
          ]
      ]
  in
  { name = "layernorm";
    cls = Llm;
    shapes = row_shapes;
    buffers =
      [ fbuf "inp" (fun s -> d s "r" * d s "c"); fout "out" (fun s -> d s "r" * d s "c") ];
    serial;
    flops = (fun s -> 7.0 *. float_of_int (d s "r" * d s "c"))
  }

let rmsnorm =
  let serial shp =
    let r = d shp "r" and c = d shp "c" in
    let inv_c = 1.0 /. float_of_int c in
    let open Expr.Infix in
    let base = v "row" * int c in
    Kernel.make ~name:"rmsnorm"
      ~params:[ Builder.buffer "inp"; Builder.buffer "out" ]
      [ Builder.alloc "tmp" Scope.Local c;
        Builder.for_ "row" (int r)
          [ Builder.for_ "p" (int c)
              [ Builder.store "tmp" (v "p") (load "inp" (base + v "p") * load "inp" (base + v "p"))
              ];
            Builder.let_ "s" (flt 0.0);
            Builder.for_ "p" (int c) [ Builder.assign "s" (v "s" + load "tmp" (v "p")) ];
            Builder.let_ "scale" (Expr.Unop (Expr.Rsqrt, (v "s" * flt inv_c) + flt 1e-5));
            Builder.for_ "p" (int c)
              [ Builder.store "out" (base + v "p") (load "inp" (base + v "p") * v "scale") ]
          ]
      ]
  in
  { name = "rmsnorm";
    cls = Llm;
    shapes = row_shapes;
    buffers =
      [ fbuf "inp" (fun s -> d s "r" * d s "c"); fout "out" (fun s -> d s "r" * d s "c") ];
    serial;
    flops = (fun s -> 4.0 *. float_of_int (d s "r" * d s "c"))
  }

let self_attention =
  (* single-head attention: scores = Q K^T / sqrt(D), row softmax, out = P V *)
  let serial shp =
    let s = d shp "s" and dm = d shp "d" in
    let inv_sqrt_d = 1.0 /. sqrt (float_of_int dm) in
    let open Expr.Infix in
    Kernel.make ~name:"self_attention"
      ~params:
        [ Builder.buffer "Q"; Builder.buffer "K"; Builder.buffer "V"; Builder.buffer "out" ]
      [ Builder.alloc "scores" Scope.Local s;
        Builder.for_ "i" (int s)
          [ Builder.for_ "j" (int s)
              [ Builder.let_ "acc" (flt 0.0);
                Builder.for_ "p" (int dm)
                  [ Builder.assign "acc"
                      (v "acc"
                      + (load "Q" ((v "i" * int dm) + v "p") * load "K" ((v "j" * int dm) + v "p")))
                  ];
                Builder.store "scores" (v "j") (v "acc" * flt inv_sqrt_d)
              ];
            (* softmax over scores[0..s) *)
            Builder.let_ "mx" (load "scores" (int 0));
            Builder.for_ "p" (int s)
              [ Builder.assign "mx" (Expr.Binop (Expr.Max, v "mx", load "scores" (v "p"))) ];
            Builder.for_ "p" (int s)
              [ Builder.store "scores" (v "p") (load "scores" (v "p") - v "mx") ];
            Builder.for_ "p" (int s)
              [ Builder.store "scores" (v "p") (Expr.Unop (Expr.Exp, load "scores" (v "p"))) ];
            Builder.let_ "sum" (flt 0.0);
            Builder.for_ "p" (int s) [ Builder.assign "sum" (v "sum" + load "scores" (v "p")) ];
            Builder.let_ "inv" (Expr.Unop (Expr.Recip, v "sum"));
            Builder.for_ "p" (int s)
              [ Builder.store "scores" (v "p") (load "scores" (v "p") * v "inv") ];
            (* weighted sum of V rows *)
            Builder.for_ "p" (int dm)
              [ Builder.let_ "acc" (flt 0.0);
                Builder.for_ "j" (int s)
                  [ Builder.assign "acc"
                      (v "acc" + (load "scores" (v "j") * load "V" ((v "j" * int dm) + v "p")))
                  ];
                Builder.store "out" ((v "i" * int dm) + v "p") (v "acc")
              ]
          ]
      ]
  in
  { name = "self_attention";
    cls = Llm;
    shapes =
      [ sh [ ("s", 64); ("d", 32) ]; sh [ ("s", 64); ("d", 64) ]; sh [ ("s", 128); ("d", 32) ];
        sh [ ("s", 128); ("d", 64) ]; sh [ ("s", 64); ("d", 16) ]; sh [ ("s", 128); ("d", 16) ];
        sh [ ("s", 64); ("d", 48) ]; sh [ ("s", 128); ("d", 48) ] ];
    buffers =
      [ fbuf "Q" (fun s -> d s "s" * d s "d"); fbuf "K" (fun s -> d s "s" * d s "d");
        fbuf "V" (fun s -> d s "s" * d s "d"); fout "out" (fun s -> d s "s" * d s "d") ];
    serial;
    flops =
      (fun s ->
        let n = float_of_int (d s "s") and dm = float_of_int (d s "d") in
        (2.0 *. n *. n *. dm) +. (5.0 *. n *. n) +. (2.0 *. n *. n *. dm))
  }

let deformable_attention =
  (* bilinear sampling with data-dependent locations and the boundary
     conditionals of Figure 9 — the paper's hardest operator *)
  let serial shp =
    let q = d shp "q" and p = d shp "p" and h = d shp "h" and w = d shp "w" and c = d shp "c" in
    let wf = float_of_int (Stdlib.( - ) w 1) and hf = float_of_int (Stdlib.( - ) h 1) in
    let open Expr.Infix in
    let in_range lo_incl e hi =
      Expr.Binop
        ( Expr.And,
          Expr.Binop (Expr.Ge, e, int lo_incl),
          Expr.Binop (Expr.Lt, e, int hi) )
    in
    let corner name xi yi weight =
      Builder.if_
        (Expr.Binop (Expr.And, in_range 0 xi w, in_range 0 yi h))
        [ Builder.for_ name (int c)
            [ Builder.store "out"
                ((v "qi" * int c) + v name)
                (load "out" ((v "qi" * int c) + v name)
                + (load "value" ((((yi * int w) + xi) * int c) + v name) * weight))
            ]
        ]
    in
    Kernel.make ~name:"deformable_attention"
      ~params:
        [ Builder.buffer "value"; Builder.buffer "loc"; Builder.buffer "attn";
          Builder.buffer "out" ]
      [ Builder.for_ "qi" (int q)
          [ Builder.for_ "cz" (int c)
              [ Builder.store "out" ((v "qi" * int c) + v "cz") (flt 0.0) ];
            Builder.for_ "pt" (int p)
              [ Builder.let_ "x" (load "loc" (((v "qi" * int p) + v "pt") * int 2) * flt wf);
                Builder.let_ "y"
                  (load "loc" ((((v "qi" * int p) + v "pt") * int 2) + int 1)
                  * flt hf);
                Builder.let_ "x0f" (Expr.Unop (Expr.Floor, v "x"));
                Builder.let_ "y0f" (Expr.Unop (Expr.Floor, v "y"));
                Builder.let_ "x0" (Expr.Cast (Dtype.I32, v "x0f"));
                Builder.let_ "y0" (Expr.Cast (Dtype.I32, v "y0f"));
                Builder.let_ "dx" (v "x" - v "x0f");
                Builder.let_ "dy" (v "y" - v "y0f");
                Builder.let_ "aw" (load "attn" ((v "qi" * int p) + v "pt"));
                corner "c0" (v "x0") (v "y0")
                  ((flt 1.0 - v "dx") * (flt 1.0 - v "dy") * v "aw");
                corner "c1" (v "x0" + int 1) (v "y0")
                  (v "dx" * (flt 1.0 - v "dy") * v "aw");
                corner "c2" (v "x0") (v "y0" + int 1)
                  ((flt 1.0 - v "dx") * v "dy" * v "aw");
                corner "c3" (v "x0" + int 1) (v "y0" + int 1)
                  (v "dx" * v "dy" * v "aw")
              ]
          ]
      ]
  in
  { name = "deformable_attention";
    cls = Llm;
    shapes =
      [ sh [ ("q", 8); ("p", 4); ("h", 8); ("w", 8); ("c", 8) ];
        sh [ ("q", 16); ("p", 4); ("h", 8); ("w", 8); ("c", 8) ];
        sh [ ("q", 8); ("p", 4); ("h", 16); ("w", 16); ("c", 8) ];
        sh [ ("q", 16); ("p", 4); ("h", 16); ("w", 16); ("c", 4) ];
        sh [ ("q", 32); ("p", 4); ("h", 8); ("w", 8); ("c", 4) ];
        sh [ ("q", 8); ("p", 4); ("h", 8); ("w", 8); ("c", 16) ];
        sh [ ("q", 16); ("p", 4); ("h", 8); ("w", 8); ("c", 4) ];
        sh [ ("q", 8); ("p", 8); ("h", 16); ("w", 16); ("c", 4) ] ];
    buffers =
      [ fbuf "value" (fun s -> d s "h" * d s "w" * d s "c");
        fbuf "loc" (fun s -> d s "q" * d s "p" * 2);
        fbuf "attn" (fun s -> d s "q" * d s "p");
        fout "out" (fun s -> d s "q" * d s "c") ];
    serial;
    flops = (fun s -> 8.0 *. float_of_int (d s "q" * d s "p" * d s "c"))
  }
