lib/smt/synth.ml: Expr List Solver String Xpiler_ir
