lib/smt/solver.ml: Expr List Xpiler_ir
