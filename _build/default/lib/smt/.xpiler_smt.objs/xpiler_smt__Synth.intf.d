lib/smt/synth.mli: Expr Solver Xpiler_ir
