lib/smt/solver.mli: Expr Xpiler_ir
