open Xpiler_ir

let is_hole name = String.length name > 0 && name.[0] = '?'
let holes_of e = List.filter is_hole (Expr.free_vars e)

type example = { env : (string * int) list; expected : int }
type result = { outcome : Solver.outcome; stats : Solver.stats }

let fill_holes ?max_steps ~holes ~sketch ~examples ?(side_constraints = []) () =
  (* each example contributes one equality constraint with the example's
     concrete variables substituted in, leaving only holes free *)
  let example_constraint { env; expected } =
    let bound =
      List.fold_left (fun e (x, v) -> Expr.subst_var x (Expr.Int v) e) sketch env
    in
    Expr.Binop (Expr.Eq, bound, Expr.Int expected)
  in
  let problem : Solver.problem =
    { vars = holes;
      constraints = List.map example_constraint examples @ side_constraints
    }
  in
  let outcome, stats = Solver.solve ?max_steps problem in
  { outcome; stats }

let apply_model model e =
  List.fold_left (fun e (h, v) -> Expr.subst_var h (Expr.Int v) e) e model

(* bottom-up enumeration, by size: terminals, then all binop combinations *)
let enumerate_affine ?(max_nodes = 200_000) ~vars ~consts ~examples () =
  let tried = ref 0 in
  let matches e =
    List.for_all
      (fun { env; expected } ->
        match Expr.eval_int (fun x -> List.assoc x env) e with
        | v -> v = expected
        | exception _ -> false)
      examples
  in
  let terminals =
    List.map (fun v -> Expr.Var v) vars @ List.map (fun c -> Expr.Int c) consts
  in
  let found = ref None in
  let check e =
    if !found = None && !tried < max_nodes then begin
      incr tried;
      if matches e then found := Some e
    end
  in
  List.iter check terminals;
  (* levels: expressions of increasing size built from smaller ones *)
  let ops = [ Expr.Add; Expr.Sub; Expr.Mul; Expr.Div; Expr.Mod ] in
  let level1 = terminals in
  let grow level_a level_b =
    let acc = ref [] in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            List.iter
              (fun op ->
                if !found = None && !tried < max_nodes then begin
                  let e = Expr.Binop (op, a, b) in
                  check e;
                  acc := e :: !acc
                end)
              ops)
          level_b)
      level_a;
    List.rev !acc
  in
  if !found = None then begin
    let level2 = grow level1 level1 in
    if !found = None then begin
      let _level3 = grow level2 level1 in
      if !found = None then ignore (grow level1 level2)
    end
  end;
  (!found, !tried)
