open Xpiler_ir

(** SMT-lite: a finite-domain constraint solver over integer expressions.

    Z3 is not available in this environment, so the fragment QiMeng-Xpiler
    actually needs — small conjunctions of (in)equalities over loop bounds,
    affine indices and intrinsic parameters (paper Figure 5) — is solved by
    backtracking enumeration with eager partial evaluation. Constraints are
    ordinary IR expressions treated as booleans (non-zero = true), so SMT
    queries read exactly like the paper's examples:
    [(i1 * 4 + i2 == i) && (0 <= i2) && (i2 < 4)]. *)

type domain =
  | Range of { lo : int; hi : int; stride : int }  (** lo, lo+stride, ..., <= hi *)
  | Enum of int list

type problem = {
  vars : (string * domain) list;  (** assignment order = listed order *)
  constraints : Expr.t list;  (** conjunction; may mention only [vars] *)
}

type stats = { steps : int; evals : int }

type outcome =
  | Sat of (string * int) list
  | Unsat
  | Timeout

val domain_values : domain -> int list
val divisors : int -> int list
(** All positive divisors, ascending — the natural domain of tiling factors. *)

val solve : ?max_steps:int -> problem -> outcome * stats
(** [max_steps] bounds assignment attempts (default 2_000_000). The returned
    model satisfies every constraint (checked before returning). *)

val solve_all : ?max_steps:int -> ?limit:int -> problem -> (string * int) list list
(** All models, up to [limit] (default 64). *)

val forall_range : string -> lo:int -> hi:int -> Expr.t -> Expr.t
(** [forall_range i ~lo ~hi body] expands a bounded universal quantifier into
    a conjunction by substituting each value of [i] in [lo, hi). *)
