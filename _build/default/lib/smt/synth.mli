open Xpiler_ir

(** Symbolic program synthesis on top of the SMT-lite solver.

    Two granularities, matching the paper's Table 3:
    - [fill_holes]: *low-level details* — given a program sketch whose
      unknown constants are holes ([Var "?h"]), small domains per hole, and
      a specification (input/output examples plus side constraints), find an
      assignment. This is fast ("+") and is what SMT-based code repairing
      (Algorithm 3) uses.
    - [enumerate_affine]: *high-level sketches* — enumerate whole candidate
      index expressions from a grammar and check them against examples.
      The search space grows combinatorially ("+++"), which is why
      QiMeng-Xpiler delegates sketch generation to the LLM. *)

val is_hole : string -> bool
(** Hole variables are spelled ["?name"]. *)

val holes_of : Expr.t -> string list

type example = { env : (string * int) list; expected : int }

type result = {
  outcome : Solver.outcome;
  stats : Solver.stats;
}

val fill_holes :
  ?max_steps:int ->
  holes:(string * Solver.domain) list ->
  sketch:Expr.t ->
  examples:example list ->
  ?side_constraints:Expr.t list ->
  unit ->
  result
(** Find hole values such that for every example, [sketch] under
    (example env + holes) evaluates to [expected], and all side constraints
    (over holes and example-independent variables) hold. *)

val apply_model : (string * int) list -> Expr.t -> Expr.t
(** Substitute solved hole values back into the sketch. *)

val enumerate_affine :
  ?max_nodes:int ->
  vars:string list ->
  consts:int list ->
  examples:example list ->
  unit ->
  (Expr.t option * int)
(** Bottom-up enumeration of affine-with-div/mod expressions over [vars] and
    [consts], smallest first, returning the first expression consistent with
    all examples and the number of candidates tried. *)
