(** Structured experiment tables: aligned text rendering plus CSV export.

    The benchmark harness builds its paper-shaped tables through this module
    and mirrors each one as a CSV under [results/] so downstream plotting
    does not have to scrape stdout. *)

type cell =
  | Pct of float  (** rendered as "97.6" *)
  | Ratio of float  (** rendered as "0.78x" *)
  | Num of float
  | Count of int
  | Text of string
  | Pair of float * float  (** compile / computation accuracy: "100.0 / 91.7" *)

type t = {
  title : string;
  col_headers : string list;  (** first column (row label) excluded *)
  rows : (string * cell list) list;
}

val make : title:string -> cols:string list -> (string * cell list) list -> t
val render : t -> string
val to_csv : t -> string

val save_csv : ?dir:string -> name:string -> t -> string
(** Writes [dir]/[name].csv (default dir "results", created if missing) and
    returns the path. *)

val cell_to_string : cell -> string
