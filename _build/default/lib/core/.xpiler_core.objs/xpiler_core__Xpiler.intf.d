lib/core/xpiler.mli: Config Kernel Opdef Platform Xpiler_ir Xpiler_machine Xpiler_neural Xpiler_ops Xpiler_passes Xpiler_util
