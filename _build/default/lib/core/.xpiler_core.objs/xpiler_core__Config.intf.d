lib/core/config.mli: Xpiler_tuning
