lib/core/report.ml: Buffer Filename List Option Printf String Sys
