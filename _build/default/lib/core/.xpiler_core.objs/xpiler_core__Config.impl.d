lib/core/config.ml: Xpiler_tuning
