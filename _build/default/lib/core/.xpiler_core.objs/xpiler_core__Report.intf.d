lib/core/report.mli:
