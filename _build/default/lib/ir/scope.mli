(** Memory scopes across the four deep learning systems.

    Each platform exposes a subset (Table 1 of the paper): GPUs have
    global/shared/registers, the MLU adds NRAM/WRAM neuron/weight memories,
    and the VNNI CPU only sees host memory plus registers. *)

type t =
  | Global  (** device DRAM (GDRAM on the MLU) *)
  | Shared  (** GPU per-block shared memory / MLU __mlu_shared__ *)
  | Local  (** registers / per-thread local storage *)
  | Nram  (** MLU neuron RAM *)
  | Wram  (** MLU weight RAM *)
  | Host  (** plain CPU memory *)
  | Fragment  (** tensor/matrix-core fragment registers *)

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val all : t list

val is_on_chip : t -> bool
(** True for scopes that live in fast on-chip storage (everything except
    [Global] and [Host]). *)
