(** Linear normalization of index expressions.

    Decomposes an expression into [const + Σ coeff·atom] where atoms are
    non-linear subterms (variables, loads, products of non-constants, …).
    Recombining after merging coefficients cancels terms like
    [(taskId*256 + i) - taskId*256], which the structural simplifier cannot
    see. The cache pass, loop split and the tensorize pattern matcher all
    rely on this. *)

type decomp = { const : int; terms : (Expr.t * int) list }
(** [terms] maps each atom to its integer coefficient; atoms are normalized
    and pairwise distinct. *)

val decompose : Expr.t -> decomp
val recompose : decomp -> Expr.t

val normalize : Expr.t -> Expr.t
(** [recompose ∘ decompose], applied recursively inside atoms. Semantics
    preserving for integer expressions. *)

val equal_linear : Expr.t -> Expr.t -> bool
(** Equality modulo linear arithmetic. *)

val coeff_of_var : string -> decomp -> int
(** Coefficient of the atom [Var v]; 0 when absent. *)

val drop_var : string -> decomp -> decomp
(** Remove the [Var v] term (i.e. evaluate the rest at v = 0). *)

val independent_of : string -> Expr.t -> bool
(** True when the expression does not mention the variable at all. *)

val match_affine : string -> Expr.t -> (int * Expr.t) option
(** [match_affine v e] returns [(coeff, base)] when [e ≡ coeff·v + base] with
    [base] independent of [v]; [None] when [v] occurs inside a non-linear
    atom. *)
