type error = { where : string; message : string }

let error_to_string e = Printf.sprintf "%s: %s" e.where e.message
let errors_to_string es = String.concat "\n" (List.map error_to_string es)

type env = { vars : string list; bufs : string list }

let check kernel =
  let errors = ref [] in
  let err where message = errors := { where; message } :: !errors in
  let check_expr env where e =
    List.iter
      (fun v -> if not (List.mem v env.vars) then err where ("unbound variable " ^ v))
      (Expr.free_vars e);
    List.iter
      (fun b -> if not (List.mem b env.bufs) then err where ("unbound buffer " ^ b))
      (Expr.buffers_read e)
  in
  let check_buf env where b =
    if not (List.mem b env.bufs) then err where ("unbound buffer " ^ b)
  in
  let launch_axes = List.map fst kernel.Kernel.launch in
  let rec check_block env block =
    ignore
      (List.fold_left
         (fun env stmt ->
           match stmt with
           | Stmt.For r ->
             let where = "for " ^ r.var in
             check_expr env where r.lo;
             check_expr env where r.extent;
             (match r.kind with
             | Stmt.Parallel ax when not (List.mem ax launch_axes) ->
               err where
                 (Printf.sprintf "parallel axis %s not in launch configuration"
                    (Axis.to_string ax))
             | _ -> ());
             check_block { env with vars = r.var :: env.vars } r.body;
             env
           | Stmt.Let r ->
             check_expr env ("let " ^ r.var) r.value;
             { env with vars = r.var :: env.vars }
           | Stmt.Assign r ->
             let where = "assign " ^ r.var in
             if not (List.mem r.var env.vars) then err where ("unbound variable " ^ r.var);
             check_expr env where r.value;
             env
           | Stmt.Store r ->
             let where = "store " ^ r.buf in
             check_buf env where r.buf;
             check_expr env where r.index;
             check_expr env where r.value;
             env
           | Stmt.Alloc r ->
             if r.size <= 0 then err ("alloc " ^ r.buf) "non-positive size";
             if List.mem r.buf env.bufs then
               err ("alloc " ^ r.buf) "buffer name shadows an existing buffer";
             { env with bufs = r.buf :: env.bufs }
           | Stmt.If r ->
             check_expr env "if" r.cond;
             check_block env r.then_;
             check_block env r.else_;
             env
           | Stmt.Memcpy r ->
             check_buf env "memcpy" r.dst.buf;
             check_buf env "memcpy" r.src.buf;
             check_expr env "memcpy" r.dst.offset;
             check_expr env "memcpy" r.src.offset;
             check_expr env "memcpy" r.len;
             env
           | Stmt.Intrinsic i ->
             let where = "intrinsic " ^ Intrin.op_name i.op in
             check_buf env where i.dst.buf;
             check_expr env where i.dst.offset;
             List.iter
               (fun (r : Intrin.buf_ref) ->
                 check_buf env where r.buf;
                 check_expr env where r.offset)
               i.srcs;
             List.iter (check_expr env where) i.params;
             if List.length i.srcs <> Intrin.arity i.op then
               err where
                 (Printf.sprintf "expected %d source buffers, got %d" (Intrin.arity i.op)
                    (List.length i.srcs));
             if List.length i.params <> Intrin.param_count i.op then
               err where
                 (Printf.sprintf "expected %d parameters, got %d" (Intrin.param_count i.op)
                    (List.length i.params));
             env
           | Stmt.Sync | Stmt.Annot _ -> env)
         env block)
  in
  let env0 =
    { vars = List.map (fun (p : Kernel.param) -> p.name) (Kernel.scalar_params kernel);
      bufs = List.map (fun (p : Kernel.param) -> p.name) (Kernel.buffer_params kernel)
    }
  in
  (* launch axes are readable as variables through their binding loops only;
     the parallel loop introduces the name, so nothing to add here. *)
  check_block env0 kernel.Kernel.body;
  match List.rev !errors with [] -> Ok () | es -> Error es
