type t =
  | Block_x
  | Block_y
  | Block_z
  | Thread_x
  | Thread_y
  | Thread_z
  | Task_id
  | Cluster_id
  | Core_id

let to_string = function
  | Block_x -> "blockIdx.x"
  | Block_y -> "blockIdx.y"
  | Block_z -> "blockIdx.z"
  | Thread_x -> "threadIdx.x"
  | Thread_y -> "threadIdx.y"
  | Thread_z -> "threadIdx.z"
  | Task_id -> "taskId"
  | Cluster_id -> "clusterId"
  | Core_id -> "coreId"

let equal (a : t) (b : t) = a = b
let compare = Stdlib.compare

let all =
  [ Block_x; Block_y; Block_z; Thread_x; Thread_y; Thread_z; Task_id; Cluster_id; Core_id ]

let is_simt = function
  | Block_x | Block_y | Block_z | Thread_x | Thread_y | Thread_z -> true
  | Task_id | Cluster_id | Core_id -> false

let is_mlu = function
  | Task_id | Cluster_id | Core_id -> true
  | Block_x | Block_y | Block_z | Thread_x | Thread_y | Thread_z -> false
