(** Convenience constructors for building IR programs. *)

val for_ : ?kind:Stmt.loop_kind -> string -> ?lo:Expr.t -> Expr.t -> Stmt.t list -> Stmt.t
(** [for_ v extent body] builds a serial loop [for v in [0, extent)]. *)

val par_for : Axis.t -> string -> Expr.t -> Stmt.t list -> Stmt.t
val let_ : string -> Expr.t -> Stmt.t
val assign : string -> Expr.t -> Stmt.t
val store : string -> Expr.t -> Expr.t -> Stmt.t
val alloc : ?dtype:Dtype.t -> string -> Scope.t -> int -> Stmt.t
val if_ : Expr.t -> ?else_:Stmt.t list -> Stmt.t list -> Stmt.t
val memcpy : dst:string -> dst_off:Expr.t -> src:string -> src_off:Expr.t -> Expr.t -> Stmt.t
val sync : Stmt.t
val annot : string -> string -> Stmt.t

val intrin :
  Intrin.op ->
  dst:string * Expr.t ->
  ?srcs:(string * Expr.t) list ->
  Expr.t list ->
  Stmt.t

val buffer : ?dtype:Dtype.t -> string -> Kernel.param
val scalar : ?dtype:Dtype.t -> string -> Kernel.param
