lib/ir/validate.mli: Kernel
