lib/ir/dtype.mli:
