lib/ir/kernel.ml: Axis Dtype List Printf Stmt String
