lib/ir/stmt.mli: Axis Dtype Expr Intrin Scope
