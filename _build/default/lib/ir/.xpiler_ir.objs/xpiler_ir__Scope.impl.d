lib/ir/scope.ml: Stdlib
