lib/ir/dtype.ml: Stdlib
