lib/ir/scope.mli:
