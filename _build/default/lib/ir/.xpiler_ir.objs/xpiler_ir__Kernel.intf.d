lib/ir/kernel.mli: Axis Dtype Stmt
