lib/ir/linear.mli: Expr
