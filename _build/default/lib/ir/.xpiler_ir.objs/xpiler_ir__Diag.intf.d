lib/ir/diag.mli:
