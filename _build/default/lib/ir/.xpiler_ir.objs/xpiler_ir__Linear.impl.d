lib/ir/linear.ml: Expr List
