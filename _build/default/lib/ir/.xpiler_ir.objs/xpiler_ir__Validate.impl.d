lib/ir/validate.ml: Axis Expr Intrin Kernel List Printf Stmt String
