lib/ir/intrin.mli: Expr
