lib/ir/builder.ml: Dtype Expr Intrin Kernel List Stmt
