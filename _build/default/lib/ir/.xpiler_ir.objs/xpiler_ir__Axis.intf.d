lib/ir/axis.mli:
