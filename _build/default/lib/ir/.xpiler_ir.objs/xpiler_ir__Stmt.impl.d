lib/ir/stmt.ml: Axis Buffer Dtype Expr Intrin List Printf Scope String
