lib/ir/axis.ml: Stdlib
