lib/ir/diag.ml: List Printf String
