lib/ir/builder.mli: Axis Dtype Expr Intrin Kernel Scope Stmt
