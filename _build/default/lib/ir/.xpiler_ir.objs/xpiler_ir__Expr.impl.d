lib/ir/expr.ml: Dtype Float Format Hashtbl List Printf Stdlib String
