lib/ir/intrin.ml: Expr List Printf String
