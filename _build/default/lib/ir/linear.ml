type decomp = { const : int; terms : (Expr.t * int) list }

let map_children f (e : Expr.t) : Expr.t =
  match e with
  | Expr.Load (b, i) -> Expr.Load (b, f i)
  | Expr.Binop (op, l, r) -> Expr.Binop (op, f l, f r)
  | Expr.Unop (op, x) -> Expr.Unop (op, f x)
  | Expr.Select (c, t, fe) -> Expr.Select (f c, f t, f fe)
  | Expr.Cast (d, x) -> Expr.Cast (d, f x)
  | Expr.Int _ | Expr.Float _ | Expr.Var _ -> e

let rec add_term_pre terms (atom, coeff) =
  match terms with
  | [] -> if coeff = 0 then [] else [ (atom, coeff) ]
  | (a, c) :: rest ->
    if Expr.equal a atom then
      let c' = c + coeff in
      if c' = 0 then rest else (a, c') :: rest
    else (a, c) :: add_term_pre rest (atom, coeff)

(* (x / c) * c + (x % c) = x : re-merge fused-loop index pairs *)
let fold_divmod terms =
  let rec go terms =
    let rec find_pair = function
      | [] -> None
      | (Expr.Binop (Expr.Div, x, Expr.Int c), cd) :: _
        when c > 0 && cd mod c = 0 && cd <> 0 ->
        let k = cd / c in
        let matching (a, cm) =
          match a with
          | Expr.Binop (Expr.Mod, x', Expr.Int c') -> c' = c && Expr.equal x x' && cm = k
          | _ -> false
        in
        if List.exists matching terms then
          Some (Expr.Binop (Expr.Div, x, Expr.Int c), cd, x, c, k)
        else None
      | _ :: rest -> find_pair rest
    in
    match find_pair terms with
    | None -> terms
    | Some (div_atom, cd, x, c, k) ->
      let removed_one_mod = ref false in
      let terms =
        List.filter
          (fun (a, cm) ->
            if Expr.equal a div_atom && cm = cd then false
            else if
              (not !removed_one_mod)
              &&
              match a with
              | Expr.Binop (Expr.Mod, x', Expr.Int c') ->
                c' = c && Expr.equal x x' && cm = k
              | _ -> false
            then begin
              removed_one_mod := true;
              false
            end
            else true)
          terms
      in
      go (add_term_pre terms (x, k))
  in
  go terms

let add_term = add_term_pre

let merge a b = { const = a.const + b.const; terms = List.fold_left add_term a.terms b.terms }
let scale d k = { const = d.const * k; terms = List.filter_map (fun (a, c) -> if c * k = 0 then None else Some (a, c * k)) d.terms }

let rec decompose_norm (e : Expr.t) : decomp =
  match e with
  | Expr.Int n -> { const = n; terms = [] }
  | Expr.Binop (Expr.Add, l, r) -> merge (decompose_norm l) (decompose_norm r)
  | Expr.Binop (Expr.Sub, l, r) -> merge (decompose_norm l) (scale (decompose_norm r) (-1))
  | Expr.Unop (Expr.Neg, x) -> scale (decompose_norm x) (-1)
  | Expr.Binop (Expr.Mul, a, b) -> (
    let da = decompose_norm a and db = decompose_norm b in
    match (da.terms, db.terms) with
    | _, [] -> scale da db.const
    | [], _ -> scale db da.const
    | _ ->
      let atom = Expr.Binop (Expr.Mul, recompose da, recompose db) in
      { const = 0; terms = [ (atom, 1) ] })
  | Expr.Float _ | Expr.Var _ | Expr.Load _ | Expr.Binop _ | Expr.Unop _ | Expr.Select _
  | Expr.Cast _ ->
    { const = 0; terms = [ (map_children normalize e, 1) ] }

and recompose { const; terms } =
  let terms = List.sort (fun (a, _) (b, _) -> Expr.compare a b) (fold_divmod terms) in
  let term_expr (atom, coeff) =
    if coeff = 1 then atom
    else if coeff = -1 then Expr.Unop (Expr.Neg, atom)
    else Expr.Binop (Expr.Mul, atom, Expr.Int coeff)
  in
  match terms with
  | [] -> Expr.Int const
  | t :: rest ->
    let sum =
      List.fold_left (fun acc t -> Expr.Binop (Expr.Add, acc, term_expr t)) (term_expr t) rest
    in
    if const = 0 then sum else Expr.Binop (Expr.Add, sum, Expr.Int const)

and normalize e = Expr.simplify (recompose (decompose_norm e))

let decompose = decompose_norm
let equal_linear a b = Expr.equal (normalize a) (normalize b)

let coeff_of_var v d =
  match List.find_opt (fun (a, _) -> Expr.equal a (Expr.Var v)) d.terms with
  | Some (_, c) -> c
  | None -> 0

let drop_var v d =
  { d with terms = List.filter (fun (a, _) -> not (Expr.equal a (Expr.Var v))) d.terms }

let independent_of v e = not (Expr.contains_var v e)

let match_affine v e =
  let d = decompose e in
  let coeff = coeff_of_var v d in
  let base = recompose (drop_var v d) in
  if independent_of v base then Some (coeff, base) else None
