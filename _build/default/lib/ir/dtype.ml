type t = F32 | F16 | I32 | I8 | Bool

let to_string = function
  | F32 -> "float"
  | F16 -> "half"
  | I32 -> "int32_t"
  | I8 -> "int8_t"
  | Bool -> "bool"

let size_in_bytes = function F32 -> 4 | F16 -> 2 | I32 -> 4 | I8 -> 1 | Bool -> 1
let is_float = function F32 | F16 -> true | I32 | I8 | Bool -> false
let is_int = function I32 | I8 -> true | F32 | F16 | Bool -> false
let equal (a : t) (b : t) = a = b
let compare = Stdlib.compare
let all = [ F32; F16; I32; I8; Bool ]
