(** Element types carried by tensor-program buffers and scalars. *)

type t = F32 | F16 | I32 | I8 | Bool

val to_string : t -> string
val size_in_bytes : t -> int
val is_float : t -> bool
val is_int : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val all : t list
