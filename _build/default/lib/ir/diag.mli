(** Shared diagnostic record.

    Both the platform checker ([Xpiler_machine.Checker]) and the static
    analyzer ([Xpiler_analysis.Analyzer]) classify findings with the same
    category vocabulary and render them through [to_string], so per-site
    reports look identical whichever stage produced them. *)

type category = [ `Parallelism | `Memory | `Instruction | `Structural ]
type severity = Error | Warning

type t = {
  category : category;
  severity : severity;
  where : string;
  message : string;
}

val category_name : category -> string

val error : category -> string -> string -> t
val warning : category -> string -> string -> t

val to_string : t -> string
(** Errors render as ["[category] where: message"] (the historical checker
    format); warnings tag the category with [|warn]. *)

val list_to_string : t list -> string
val is_error : t -> bool
val errors : t list -> t list
