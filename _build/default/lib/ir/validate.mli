(** Platform-independent well-formedness checks for kernels.

    These are the structural checks any compiler front-end performs: every
    variable and buffer is bound before use, loop variables do not shadow
    parameters, intrinsic arities match, parallel axes in the body appear in
    the launch configuration. Platform-specific legality (which scopes and
    intrinsics exist) lives in [Xpiler_machine.Checker]. *)

type error = { where : string; message : string }

val check : Kernel.t -> (unit, error list) result
val error_to_string : error -> string
val errors_to_string : error list -> string
