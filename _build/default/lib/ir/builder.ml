let for_ ?(kind = Stmt.Serial) var ?(lo = Expr.Int 0) extent body =
  Stmt.For { var; lo; extent; kind; body }

let par_for ax var extent body =
  Stmt.For { var; lo = Expr.Int 0; extent; kind = Stmt.Parallel ax; body }

let let_ var value = Stmt.Let { var; value }
let assign var value = Stmt.Assign { var; value }
let store buf index value = Stmt.Store { buf; index; value }
let alloc ?(dtype = Dtype.F32) buf scope size = Stmt.Alloc { buf; scope; dtype; size }
let if_ cond ?(else_ = []) then_ = Stmt.If { cond; then_; else_ }

let memcpy ~dst ~dst_off ~src ~src_off len =
  Stmt.Memcpy { dst = { buf = dst; offset = dst_off }; src = { buf = src; offset = src_off }; len }

let sync = Stmt.Sync
let annot key value = Stmt.Annot { key; value }

let intrin op ~dst ?(srcs = []) params =
  let mk (buf, offset) : Intrin.buf_ref = { buf; offset } in
  Stmt.Intrinsic { op; dst = mk dst; srcs = List.map mk srcs; params }

let buffer ?(dtype = Dtype.F32) name : Kernel.param = { name; dtype; is_buffer = true }
let scalar ?(dtype = Dtype.I32) name : Kernel.param = { name; dtype; is_buffer = false }
