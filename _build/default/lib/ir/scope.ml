type t = Global | Shared | Local | Nram | Wram | Host | Fragment

let to_string = function
  | Global -> "global"
  | Shared -> "shared"
  | Local -> "local"
  | Nram -> "nram"
  | Wram -> "wram"
  | Host -> "host"
  | Fragment -> "fragment"

let equal (a : t) (b : t) = a = b
let compare = Stdlib.compare
let all = [ Global; Shared; Local; Nram; Wram; Host; Fragment ]
let is_on_chip = function
  | Shared | Local | Nram | Wram | Fragment -> true
  | Global | Host -> false
