(** Built-in parallel variables of the evaluated platforms.

    CUDA/HIP expose a SIMT grid ([blockIdx]/[threadIdx]); the Cambricon MLU
    exposes task-level and multi-core parallelism ([taskId], [clusterId],
    [coreId]); the VNNI CPU has no parallel built-ins in our dialect. *)

type t =
  | Block_x
  | Block_y
  | Block_z
  | Thread_x
  | Thread_y
  | Thread_z
  | Task_id
  | Cluster_id
  | Core_id

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val all : t list

val is_simt : t -> bool
(** blockIdx.* / threadIdx.* axes. *)

val is_mlu : t -> bool
(** taskId / clusterId / coreId axes. *)
