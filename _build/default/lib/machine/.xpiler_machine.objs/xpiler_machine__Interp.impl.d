lib/machine/interp.ml: Axis Dtype Effect Expr Float Fun Intrin Kernel List Printf Stmt Tensor Xpiler_ir
