lib/machine/costmodel.mli: Kernel Platform Xpiler_ir
