lib/machine/checker.ml: Axis Diag Dtype Expr Intrin Kernel List Platform Printf Scope Stmt Validate Xpiler_ir
