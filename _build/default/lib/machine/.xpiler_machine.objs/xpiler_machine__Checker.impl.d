lib/machine/checker.ml: Axis Dtype Expr Intrin Kernel List Platform Printf Scope Stmt String Validate Xpiler_ir
