lib/machine/checker.mli: Kernel Platform Scope Xpiler_ir
