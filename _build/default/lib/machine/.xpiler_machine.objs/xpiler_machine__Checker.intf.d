lib/machine/checker.mli: Diag Kernel Platform Scope Xpiler_ir
