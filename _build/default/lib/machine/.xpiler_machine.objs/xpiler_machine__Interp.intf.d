lib/machine/interp.mli: Kernel Tensor Xpiler_ir
