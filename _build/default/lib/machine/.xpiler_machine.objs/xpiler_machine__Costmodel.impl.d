lib/machine/costmodel.ml: Axis Dtype Expr Float Hashtbl Intrin Kernel List Platform Scope Stmt Xpiler_ir
