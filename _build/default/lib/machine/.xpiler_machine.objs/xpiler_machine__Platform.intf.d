lib/machine/platform.mli: Axis Intrin Scope Xpiler_ir
