lib/machine/tensor.ml: Array Dtype Float Fun List Printf String Xpiler_ir Xpiler_util
