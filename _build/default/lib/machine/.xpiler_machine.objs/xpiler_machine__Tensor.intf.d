lib/machine/tensor.mli: Dtype Xpiler_ir Xpiler_util
