lib/machine/platform.ml: Axis Intrin List Scope Xpiler_ir
