open Xpiler_ir
(** Flat tensor buffers used by the interpreter and the test harness.

    All element types are stored as [float array]; integer dtypes hold exact
    small integers (|v| < 2^53). F16 is treated as F32 numerically — the
    accuracy experiments compare against references computed the same way, so
    precision modelling is not needed. *)

type t = { dtype : Dtype.t; data : float array }

val create : ?dtype:Dtype.t -> int -> t
(** Zero-initialized. *)

val of_array : ?dtype:Dtype.t -> float array -> t
val length : t -> int
val get : t -> int -> float
val set : t -> int -> float -> unit
val fill : t -> float -> unit
val copy : t -> t
val blit : src:t -> dst:t -> unit

val random : Xpiler_util.Rng.t -> ?dtype:Dtype.t -> int -> t
(** Uniform values: floats in [-1, 1); ints in [-8, 8). *)

val allclose : ?rtol:float -> ?atol:float -> t -> t -> bool
val max_abs_diff : t -> t -> float

val mismatched_indices : ?rtol:float -> ?atol:float -> t -> t -> int list
(** Indices where the two tensors differ beyond tolerance (used by bug
    localization). *)

val to_string : ?max_elems:int -> t -> string
