open Xpiler_ir

(* compile errors share the analyzer's diagnostic record (lib/ir/diag.ml):
   one category vocabulary, one formatter *)
type error = Diag.t = {
  category : Diag.category;
  severity : Diag.severity;
  where : string;
  message : string;
}

let error_to_string = Diag.to_string
let errors_to_string = Diag.list_to_string

let param_scope (p : Platform.t) =
  match p.id with Platform.Vnni -> Scope.Host | Platform.Cuda | Platform.Bang | Platform.Hip -> Scope.Global

let scope_env (p : Platform.t) (k : Kernel.t) =
  let params =
    List.map (fun (pr : Kernel.param) -> (pr.name, param_scope p)) (Kernel.buffer_params k)
  in
  let allocs =
    List.map (fun (b, s, _, _) -> (b, s)) (Stmt.allocs k.Kernel.body)
  in
  params @ allocs

let compile (p : Platform.t) (k : Kernel.t) =
  let errors = ref [] in
  let err category where message = errors := Diag.error category where message :: !errors in
  (* structural validity first: a kernel that is not even well-formed fails
     compilation outright *)
  (match Validate.check k with
  | Ok () -> ()
  | Error es ->
    List.iter (fun (e : Validate.error) -> err `Structural e.where e.message) es);
  let scopes = scope_env p k in
  let scope_of where b =
    match List.assoc_opt b scopes with
    | Some s -> Some s
    | None ->
      err `Structural where ("unknown buffer " ^ b);
      None
  in
  (* launch configuration must use axes the platform has *)
  List.iter
    (fun (ax, n) ->
      if not (List.mem ax p.axes) then
        err `Parallelism "launch"
          (Printf.sprintf "built-in %s does not exist on %s" (Axis.to_string ax) p.name);
      match List.assoc_opt ax p.max_axis_extent with
      | Some limit when n > limit ->
        err `Parallelism "launch"
          (Printf.sprintf "%s extent %d exceeds platform limit %d" (Axis.to_string ax) n limit)
      | _ -> ())
    k.Kernel.launch;
  (* walk the body *)
  Stmt.iter
    (fun stmt ->
      match stmt with
      | Stmt.For { kind = Stmt.Parallel ax; var; _ } ->
        if not (List.mem ax p.axes) then
          err `Parallelism ("for " ^ var)
            (Printf.sprintf "built-in %s does not exist on %s" (Axis.to_string ax) p.name)
      | Stmt.For _ -> ()
      | Stmt.Alloc r ->
        let where = "alloc " ^ r.buf in
        if not (List.mem r.scope p.scopes) then
          err `Memory where
            (Printf.sprintf "memory scope %s does not exist on %s" (Scope.to_string r.scope)
               p.name)
        else begin
          match List.assoc_opt r.scope p.scope_capacity_bytes with
          | Some cap when r.size * Dtype.size_in_bytes r.dtype > cap ->
            err `Memory where
              (Printf.sprintf "%d bytes exceed %s capacity of %d bytes"
                 (r.size * Dtype.size_in_bytes r.dtype)
                 (Scope.to_string r.scope) cap)
          | _ -> ()
        end
      | Stmt.Sync ->
        if not p.supports_sync then
          err `Parallelism "sync" (Printf.sprintf "%s has no barrier primitive" p.name)
      | Stmt.Memcpy r ->
        ignore (scope_of "memcpy" r.dst.buf);
        ignore (scope_of "memcpy" r.src.buf)
      | Stmt.Intrinsic i ->
        let where = "intrinsic " ^ Intrin.op_name i.op in
        if not (List.mem i.op p.intrinsics) then
          err `Instruction where
            (Printf.sprintf "%s has no %s intrinsic" p.name (Intrin.op_name i.op))
        else begin
          (* operand scope rules; on the CPU a stack array (Local) is host
             memory, so the two scopes are interchangeable there *)
          let scope_matches s req =
            Scope.equal s req
            || p.id = Platform.Vnni
               && List.mem s [ Scope.Host; Scope.Local ]
               && List.mem req [ Scope.Host; Scope.Local ]
          in
          let dst_req, src_req = Platform.intrinsic_scope_rule p.id i.op in
          (match scope_of where i.dst.buf with
          | Some s when not (scope_matches s dst_req) ->
            err `Memory where
              (Printf.sprintf "destination %s is in %s, %s requires %s" i.dst.buf
                 (Scope.to_string s) (Intrin.op_name i.op) (Scope.to_string dst_req))
          | _ -> ());
          List.iteri
            (fun idx (r : Intrin.buf_ref) ->
              let req =
                match List.nth_opt src_req idx with Some s -> s | None -> dst_req
              in
              match scope_of where r.buf with
              | Some s when not (scope_matches s req) ->
                err `Memory where
                  (Printf.sprintf "operand %s is in %s, %s requires %s" r.buf
                     (Scope.to_string s) (Intrin.op_name i.op) (Scope.to_string req))
              | _ -> ())
            i.srcs;
          (* alignment: vector intrinsic lengths must be multiples of the
             platform granularity when they are constant *)
          (match (Intrin.is_vector i.op, i.params) with
          | true, Expr.Int len :: _ ->
            if len <= 0 then err `Instruction where "non-positive length"
            else if len mod p.vector_align <> 0 then
              err `Instruction where
                (Printf.sprintf "length %d not a multiple of the %d-element granularity" len
                   p.vector_align)
          | _ -> ());
          (match (i.op, i.params) with
          | Intrin.Dp4a, Expr.Int len :: _ when len mod 4 <> 0 ->
            err `Instruction where (Printf.sprintf "dp4a length %d not a multiple of 4" len)
          | _ -> ())
        end
      | Stmt.Let _ | Stmt.Assign _ | Stmt.Store _ | Stmt.If _ | Stmt.Annot _ -> ())
    k.Kernel.body;
  match List.rev !errors with [] -> Ok () | es -> Error es
