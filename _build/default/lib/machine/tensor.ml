open Xpiler_ir
type t = { dtype : Dtype.t; data : float array }

let create ?(dtype = Dtype.F32) n = { dtype; data = Array.make n 0.0 }
let of_array ?(dtype = Dtype.F32) data = { dtype; data }
let length t = Array.length t.data
let get t i = t.data.(i)
let set t i v = t.data.(i) <- v
let fill t v = Array.fill t.data 0 (Array.length t.data) v
let copy t = { t with data = Array.copy t.data }

let blit ~src ~dst =
  if length src <> length dst then invalid_arg "Tensor.blit: length mismatch";
  Array.blit src.data 0 dst.data 0 (length src)

let random rng ?(dtype = Dtype.F32) n =
  let data =
    Array.init n (fun _ ->
        if Dtype.is_float dtype then Xpiler_util.Rng.float rng 2.0 -. 1.0
        else float_of_int (Xpiler_util.Rng.int_in rng (-8) 7))
  in
  { dtype; data }

let close ~rtol ~atol a b = Float.abs (a -. b) <= atol +. (rtol *. Float.abs b)

let allclose ?(rtol = 1e-4) ?(atol = 1e-5) a b =
  length a = length b
  && Array.for_all2 (fun x y -> close ~rtol ~atol x y) a.data b.data

let max_abs_diff a b =
  if length a <> length b then infinity
  else
    let m = ref 0.0 in
    Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. b.data.(i)))) a.data;
    !m

let mismatched_indices ?(rtol = 1e-4) ?(atol = 1e-5) a b =
  if length a <> length b then List.init (max (length a) (length b)) Fun.id
  else begin
    let bad = ref [] in
    for i = length a - 1 downto 0 do
      if not (close ~rtol ~atol a.data.(i) b.data.(i)) then bad := i :: !bad
    done;
    !bad
  end

let to_string ?(max_elems = 16) t =
  let n = min max_elems (length t) in
  let elems = List.init n (fun i -> Printf.sprintf "%g" t.data.(i)) in
  let suffix = if length t > n then "; ..." else "" in
  Printf.sprintf "[%s%s] (%d x %s)" (String.concat "; " elems) suffix (length t)
    (Dtype.to_string t.dtype)
