open Xpiler_ir
(** Descriptors of the four evaluated deep learning systems (Table 1).

    A platform defines which parallel axes, memory scopes and specialized
    intrinsics exist, the legality constraints on their use (compilation
    accuracy checks), the concrete surface spelling of each intrinsic, and
    the roofline parameters of the analytical cost model. *)

type id = Cuda | Bang | Hip | Vnni

type cost_params = {
  clock_ghz : float;
  num_cores : int;  (** SMs / MLU cores / CPU cores *)
  threads_per_core : int;  (** resident SIMT threads or SIMD width units *)
  scalar_flops_per_cycle : float;  (** per core, scalar pipeline *)
  vector_lanes : int;  (** SIMD lanes of the vector pipeline *)
  tensor_macs_per_cycle : float;  (** per core, tensor/matrix unit MACs *)
  dram_gbps : float;
  onchip_gbps : float;  (** shared / NRAM bandwidth *)
  launch_overhead_us : float;
}

type t = {
  id : id;
  name : string;
  interface : string;  (** the programming interface, e.g. "CUDA C" *)
  axes : Axis.t list;
  scopes : Scope.t list;
  intrinsics : Intrin.op list;
  vector_align : int;  (** intrinsic length granularity (elements) *)
  max_axis_extent : (Axis.t * int) list;
  scope_capacity_bytes : (Scope.t * int) list;
  supports_sync : bool;
  cost : cost_params;
}

val cuda : t
val bang : t
val hip : t
val vnni : t
val all : t list
val of_id : id -> t
val id_to_string : id -> string
val id_of_string : string -> id option
val equal_id : id -> id -> bool

val intrinsic_spelling : t -> Intrin.op -> string option
(** Surface name of a unified intrinsic on this platform, when supported. *)

val intrinsic_scope_rule : id -> Intrin.op -> Scope.t * Scope.t list
(** [(dst_scope, src_scopes)] required by the intrinsic on that platform,
    e.g. MLU's [mlp] needs input in NRAM, weights in WRAM, output in NRAM. *)

val default_compute_scope : id -> Scope.t
(** Where intrinsic operands must be staged before computing:
    NRAM on the MLU, Shared on GPUs, Host on the CPU. *)

val is_simt : t -> bool
