open Xpiler_ir
type id = Cuda | Bang | Hip | Vnni

type cost_params = {
  clock_ghz : float;
  num_cores : int;
  threads_per_core : int;
  scalar_flops_per_cycle : float;
  vector_lanes : int;
  tensor_macs_per_cycle : float;
  dram_gbps : float;
  onchip_gbps : float;
  launch_overhead_us : float;
}

type t = {
  id : id;
  name : string;
  interface : string;
  axes : Axis.t list;
  scopes : Scope.t list;
  intrinsics : Intrin.op list;
  vector_align : int;
  max_axis_extent : (Axis.t * int) list;
  scope_capacity_bytes : (Scope.t * int) list;
  supports_sync : bool;
  cost : cost_params;
}

let simt_axes =
  [ Axis.Block_x; Axis.Block_y; Axis.Block_z; Axis.Thread_x; Axis.Thread_y; Axis.Thread_z ]

(* Modelled after NVIDIA A100: 108 SMs, 1.41 GHz, 312 TF/s tensor,
   19.5 TF/s fp32, 1555 GB/s HBM2e. *)
let cuda =
  { id = Cuda;
    name = "NVIDIA A100 GPU with Tensor Core";
    interface = "CUDA C";
    axes = simt_axes;
    scopes = [ Scope.Global; Scope.Shared; Scope.Local; Scope.Fragment ];
    intrinsics = [ Intrin.Mma; Intrin.Dp4a ];
    vector_align = 1;
    max_axis_extent =
      [ (Axis.Block_x, 2147483647); (Axis.Block_y, 65535); (Axis.Block_z, 65535);
        (Axis.Thread_x, 1024); (Axis.Thread_y, 1024); (Axis.Thread_z, 64) ];
    scope_capacity_bytes = [ (Scope.Shared, 164 * 1024); (Scope.Local, 64 * 1024) ];
    supports_sync = true;
    cost =
      { clock_ghz = 1.41;
        num_cores = 108;
        threads_per_core = 2048;
        scalar_flops_per_cycle = 128.0;
        vector_lanes = 32;
        tensor_macs_per_cycle = 1024.0;
        dram_gbps = 1555.0;
        onchip_gbps = 19400.0;
        launch_overhead_us = 4.0
      }
  }

(* Modelled after AMD MI200 family: 110 CUs, 1.7 GHz, 383 TF/s matrix fp16,
   47.9 TF/s fp32, 1638 GB/s HBM2e. *)
let hip =
  { id = Hip;
    name = "AMD MI200 with Matrix Core";
    interface = "HIP";
    axes = simt_axes;
    scopes = [ Scope.Global; Scope.Shared; Scope.Local; Scope.Fragment ];
    intrinsics = [ Intrin.Mma; Intrin.Dp4a ];
    vector_align = 1;
    max_axis_extent =
      [ (Axis.Block_x, 2147483647); (Axis.Block_y, 65535); (Axis.Block_z, 65535);
        (Axis.Thread_x, 1024); (Axis.Thread_y, 1024); (Axis.Thread_z, 64) ];
    scope_capacity_bytes = [ (Scope.Shared, 64 * 1024); (Scope.Local, 64 * 1024) ];
    supports_sync = true;
    cost =
      { clock_ghz = 1.7;
        num_cores = 110;
        threads_per_core = 2048;
        scalar_flops_per_cycle = 256.0;
        vector_lanes = 64;
        tensor_macs_per_cycle = 512.0;
        dram_gbps = 1638.0;
        onchip_gbps = 17000.0;
        launch_overhead_us = 5.0
      }
  }

(* Modelled after a Cambricon MLU370-class device: multi-core SIMD DSA with
   per-core NRAM (768 KB) and WRAM (512 KB), large-granularity vector and
   matrix intrinsics. *)
let bang =
  { id = Bang;
    name = "Cambricon MLU";
    interface = "BANG C";
    axes = [ Axis.Task_id; Axis.Cluster_id; Axis.Core_id ];
    scopes = [ Scope.Global; Scope.Shared; Scope.Nram; Scope.Wram; Scope.Local ];
    intrinsics =
      [ Intrin.Vec_add; Intrin.Vec_sub; Intrin.Vec_mul; Intrin.Vec_max; Intrin.Vec_min;
        Intrin.Vec_exp; Intrin.Vec_log; Intrin.Vec_sqrt; Intrin.Vec_recip; Intrin.Vec_tanh;
        Intrin.Vec_erf; Intrin.Vec_relu; Intrin.Vec_sigmoid; Intrin.Vec_gelu;
        Intrin.Vec_sign; Intrin.Vec_scale; Intrin.Vec_adds; Intrin.Vec_fill;
        Intrin.Vec_copy; Intrin.Vec_reduce_sum; Intrin.Vec_reduce_max; Intrin.Mlp;
        Intrin.Conv2d ];
    vector_align = 64;
    max_axis_extent = [ (Axis.Task_id, 65536); (Axis.Cluster_id, 8); (Axis.Core_id, 4) ];
    scope_capacity_bytes =
      [ (Scope.Nram, 768 * 1024); (Scope.Wram, 512 * 1024); (Scope.Shared, 4 * 1024 * 1024) ];
    supports_sync = true;
    cost =
      { clock_ghz = 1.3;
        num_cores = 16;
        threads_per_core = 1;
        scalar_flops_per_cycle = 2.0;
        vector_lanes = 128;
        tensor_macs_per_cycle = 2048.0;
        dram_gbps = 614.0;
        onchip_gbps = 6000.0;
        launch_overhead_us = 8.0
      }
  }

(* Modelled after Intel Xeon Gold 6348 (Ice Lake, DL Boost/VNNI): 28 cores,
   2.6 GHz, AVX-512 with VNNI int8 dot products. *)
let vnni =
  { id = Vnni;
    name = "Intel DL Boost CPU";
    interface = "C with VNNI extensions";
    axes = [];
    scopes = [ Scope.Host; Scope.Local ];
    intrinsics =
      [ Intrin.Vec_add; Intrin.Vec_sub; Intrin.Vec_mul; Intrin.Vec_max; Intrin.Vec_min;
        Intrin.Vec_fill; Intrin.Vec_copy; Intrin.Vec_reduce_sum; Intrin.Vec_reduce_max;
        Intrin.Dp4a ];
    vector_align = 16;
    max_axis_extent = [];
    scope_capacity_bytes = [ (Scope.Local, 48 * 1024) ];
    supports_sync = false;
    cost =
      { clock_ghz = 2.6;
        num_cores = 28;
        threads_per_core = 1;
        scalar_flops_per_cycle = 4.0;
        vector_lanes = 16;
        tensor_macs_per_cycle = 128.0;
        dram_gbps = 204.0;
        onchip_gbps = 2000.0;
        launch_overhead_us = 0.5
      }
  }

let all = [ cuda; bang; hip; vnni ]
let of_id = function Cuda -> cuda | Bang -> bang | Hip -> hip | Vnni -> vnni

let id_to_string = function
  | Cuda -> "cuda"
  | Bang -> "bang"
  | Hip -> "hip"
  | Vnni -> "vnni"

let id_of_string = function
  | "cuda" -> Some Cuda
  | "bang" -> Some Bang
  | "hip" -> Some Hip
  | "vnni" | "c" -> Some Vnni
  | _ -> None

let equal_id (a : id) (b : id) = a = b

let intrinsic_spelling t op =
  if not (List.mem op t.intrinsics) then None
  else
    let name =
      match (t.id, op) with
      | Cuda, Intrin.Mma -> "wmma::mma_sync"
      | Cuda, Intrin.Dp4a -> "__dp4a"
      | Hip, Intrin.Mma -> "__builtin_amdgcn_mfma_f32_16x16x4f32"
      | Hip, Intrin.Dp4a -> "__builtin_amdgcn_sdot4"
      | Bang, op -> (
        match op with
        | Intrin.Mlp -> "__bang_mlp"
        | Intrin.Conv2d -> "__bang_conv"
        | Intrin.Vec_add -> "__bang_add"
        | Intrin.Vec_sub -> "__bang_sub"
        | Intrin.Vec_mul -> "__bang_mul"
        | Intrin.Vec_max -> "__bang_maximum"
        | Intrin.Vec_min -> "__bang_minimum"
        | Intrin.Vec_exp -> "__bang_active_exp"
        | Intrin.Vec_log -> "__bang_active_log"
        | Intrin.Vec_sqrt -> "__bang_active_sqrt"
        | Intrin.Vec_recip -> "__bang_active_recip"
        | Intrin.Vec_tanh -> "__bang_active_tanh"
        | Intrin.Vec_erf -> "__bang_active_erf"
        | Intrin.Vec_relu -> "__bang_active_relu"
        | Intrin.Vec_sigmoid -> "__bang_active_sigmoid"
        | Intrin.Vec_gelu -> "__bang_active_gelu"
        | Intrin.Vec_sign -> "__bang_active_sign"
        | Intrin.Vec_scale -> "__bang_mul_scalar"
        | Intrin.Vec_adds -> "__bang_add_scalar"
        | Intrin.Vec_fill -> "__bang_write_value"
        | Intrin.Vec_copy -> "__bang_move"
        | Intrin.Vec_reduce_sum -> "__bang_reduce_sum"
        | Intrin.Vec_reduce_max -> "__bang_reduce_max"
        | Intrin.Mma | Intrin.Dp4a -> "__bang_unsupported")
      | Vnni, op -> (
        match op with
        | Intrin.Dp4a -> "_mm512_dpbusd_epi32"
        | Intrin.Vec_add -> "_mm512_add_ps"
        | Intrin.Vec_sub -> "_mm512_sub_ps"
        | Intrin.Vec_mul -> "_mm512_mul_ps"
        | Intrin.Vec_max -> "_mm512_max_ps"
        | Intrin.Vec_min -> "_mm512_min_ps"
        | Intrin.Vec_fill -> "_mm512_set1_ps"
        | Intrin.Vec_copy -> "_mm512_loadu_ps"
        | Intrin.Vec_reduce_sum -> "_mm512_reduce_add_ps"
        | Intrin.Vec_reduce_max -> "_mm512_reduce_max_ps"
        | _ -> "_mm512_unsupported")
      | (Cuda | Hip), _ -> "unsupported"
    in
    Some name

let intrinsic_scope_rule id op =
  match (id, op) with
  | Bang, Intrin.Mlp -> (Scope.Nram, [ Scope.Nram; Scope.Wram ])
  | Bang, Intrin.Conv2d -> (Scope.Nram, [ Scope.Nram; Scope.Wram ])
  | Bang, _ -> (Scope.Nram, [ Scope.Nram; Scope.Nram ])
  | (Cuda | Hip), Intrin.Mma -> (Scope.Fragment, [ Scope.Fragment; Scope.Fragment ])
  | (Cuda | Hip), Intrin.Dp4a ->
    (* the array form stands for per-thread register dot products over
       global data *)
    (Scope.Global, [ Scope.Global; Scope.Global ])
  | (Cuda | Hip), _ -> (Scope.Local, [ Scope.Local; Scope.Local ])
  | Vnni, _ -> (Scope.Host, [ Scope.Host; Scope.Host ])

let default_compute_scope = function
  | Bang -> Scope.Nram
  | Cuda | Hip -> Scope.Shared
  | Vnni -> Scope.Host

let is_simt t = match t.id with Cuda | Hip -> true | Bang | Vnni -> false
