open Xpiler_ir
(** Platform compilation checker.

    Mirrors what the vendor compiler rejects: unknown parallel built-ins,
    illegal memory scopes, over-capacity on-chip allocations, unsupported or
    malformed intrinsics, operands in the wrong memory space, misaligned
    intrinsic lengths. A kernel that passes [compile] counts towards the
    paper's *compilation accuracy* metric. *)

type error = Diag.t = {
  category : Diag.category;
  severity : Diag.severity;
  where : string;
  message : string;
}
(** An alias of {!Xpiler_ir.Diag.t}: the checker and the static analyzer
    share one diagnostic record and one formatter. *)

val compile : Platform.t -> Kernel.t -> (unit, error list) result

val error_to_string : error -> string
val errors_to_string : error list -> string

val param_scope : Platform.t -> Scope.t
(** The scope kernel buffer parameters live in on this platform
    ([Global] on devices, [Host] on the CPU). *)

val scope_env : Platform.t -> Kernel.t -> (string * Scope.t) list
(** Scope of every buffer visible in the kernel (params + allocs). *)
