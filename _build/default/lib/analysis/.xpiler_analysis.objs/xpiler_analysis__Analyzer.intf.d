lib/analysis/analyzer.mli: Diag Kernel Xpiler_ir
