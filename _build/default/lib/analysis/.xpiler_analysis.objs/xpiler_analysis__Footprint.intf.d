lib/analysis/footprint.mli: Expr Xpiler_ir
