lib/analysis/analyzer.ml: Axis Diag Expr Footprint Fun Hashtbl Intrin Kernel Linear List Option Printf Scope Stmt String Xpiler_ir Xpiler_smt
