lib/analysis/footprint.ml: Expr List Option Printf Xpiler_ir
