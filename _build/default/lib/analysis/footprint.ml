(* Interval arithmetic over index expressions.

   The analyzer's cheap path: bound every affine (and mildly non-affine)
   index expression over a box environment of loop-variable ranges. Sums of
   distinct variables are exact; [v / c] and [v % c] of the same variable
   over-approximate, which is sound for the directions we use intervals in
   (proving accesses in-bounds, proving footprints disjoint). Anything the
   interval cannot decide is escalated to the bounded SMT solver. *)

open Xpiler_ir

type bound = { lo : int; hi : int }  (* inclusive *)
type env = (string * bound) list

let point n = { lo = n; hi = n }
let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let rec range (env : env) (e : Expr.t) : bound option =
  match e with
  | Expr.Int n -> Some (point n)
  | Expr.Float _ -> None
  | Expr.Var v -> List.assoc_opt v env
  | Expr.Load _ -> None
  | Expr.Cast (_, x) -> range env x
  | Expr.Select (_, t, f) -> (
    match (range env t, range env f) with
    | Some rt, Some rf -> Some (hull rt rf)
    | _ -> None)
  | Expr.Unop (Expr.Neg, x) ->
    Option.map (fun r -> { lo = -r.hi; hi = -r.lo }) (range env x)
  | Expr.Unop (Expr.Not, _) -> Some { lo = 0; hi = 1 }
  | Expr.Unop (_, _) -> None
  | Expr.Binop (op, a, b) -> (
    match (range env a, range env b) with
    | Some ra, Some rb -> (
      match op with
      | Expr.Add -> Some { lo = ra.lo + rb.lo; hi = ra.hi + rb.hi }
      | Expr.Sub -> Some { lo = ra.lo - rb.hi; hi = ra.hi - rb.lo }
      | Expr.Mul ->
        let ps = [ ra.lo * rb.lo; ra.lo * rb.hi; ra.hi * rb.lo; ra.hi * rb.hi ] in
        Some
          { lo = List.fold_left min max_int ps; hi = List.fold_left max min_int ps }
      | Expr.Div ->
        (* constant positive divisor, non-negative numerator: the only shape
           loop fusion/splitting produces *)
        if rb.lo = rb.hi && rb.lo > 0 && ra.lo >= 0 then
          Some { lo = ra.lo / rb.lo; hi = ra.hi / rb.lo }
        else None
      | Expr.Mod ->
        if rb.lo = rb.hi && rb.lo > 0 && ra.lo >= 0 then
          if ra.hi < rb.lo then Some ra else Some { lo = 0; hi = rb.lo - 1 }
        else None
      | Expr.Min -> Some { lo = min ra.lo rb.lo; hi = min ra.hi rb.hi }
      | Expr.Max -> Some { lo = max ra.lo rb.lo; hi = max ra.hi rb.hi }
      | Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge | Expr.And | Expr.Or
        -> Some { lo = 0; hi = 1 })
    | _ -> None)

(* all free variables of [e] have a known range in [env] *)
let covers env e = List.for_all (fun v -> List.mem_assoc v env) (Expr.free_vars e)

let to_string { lo; hi } = Printf.sprintf "[%d, %d]" lo hi
