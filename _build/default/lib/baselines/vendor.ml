open Xpiler_machine
open Xpiler_ops
module Mcts = Xpiler_tuning.Mcts

let advantage (op : Opdef.t) =
  match op.Opdef.cls with
  | Opdef.Matmul -> 1.35
  | Opdef.Convolution -> 1.25
  | Opdef.Pooling -> 1.10
  | Opdef.Activation -> 0.95
  | Opdef.Elementwise -> 0.90
  | Opdef.Llm -> (
    (* the long tail: vendor support is weakest for emerging operators *)
    match op.Opdef.name with
    | "deformable_attention" -> 0.50
    | "rmsnorm" -> 0.60
    | "self_attention" -> 0.75
    | _ -> 0.70)

(* the vendor library's engineers also tune their schedules: the baseline is
   the expert kernel after the same search the transcompiler gets *)
let tuned_cache : (string, float) Hashtbl.t = Hashtbl.create 64

let tuned_expert_seconds pid (op : Opdef.t) shape =
  let key =
    Printf.sprintf "%s/%s/%s" (Platform.id_to_string pid) op.Opdef.name
      (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) shape))
  in
  match Hashtbl.find_opt tuned_cache key with
  | Some s -> s
  | None ->
    let platform = Platform.of_id pid in
    let expert = Idiom.source pid op shape in
    let base = (Costmodel.estimate platform expert ~shapes:[]).Costmodel.seconds in
    let buffer_sizes =
      List.map (fun (b : Opdef.buffer_spec) -> (b.buf_name, b.size shape)) op.Opdef.buffers
    in
    let config = { Mcts.default_config with simulations = 32; max_depth = 6 } in
    let r = Mcts.search ~config ~buffer_sizes ~platform expert in
    let tuned =
      (Costmodel.estimate platform r.Mcts.best_kernel ~shapes:[]).Costmodel.seconds
    in
    let s = Float.min base tuned in
    Hashtbl.replace tuned_cache key s;
    s

let seconds pid op shape = tuned_expert_seconds pid op shape /. advantage op

let speedup_of_translated pid op shape kernel =
  let platform = Platform.of_id pid in
  let t = (Costmodel.estimate platform kernel ~shapes:[]).Costmodel.seconds in
  seconds pid op shape /. t
