open Xpiler_machine
open Xpiler_ops
open Xpiler_neural

type method_ = Gpt4_zero | Gpt4_few | O1_zero | O1_few

let method_name = function
  | Gpt4_zero -> "GPT-4 Zero-Shot"
  | Gpt4_few -> "GPT-4 Few-Shot"
  | O1_zero -> "OpenAI o1 Zero-Shot"
  | O1_few -> "OpenAI o1 Few-Shot"

let all_methods = [ Gpt4_zero; O1_zero; Gpt4_few; O1_few ]

let profile = function
  | Gpt4_zero -> Profile.gpt4_zero_shot
  | Gpt4_few -> Profile.gpt4_few_shot
  | O1_zero -> Profile.o1_zero_shot
  | O1_few -> Profile.o1_few_shot

type result = {
  compiles : bool;
  computes : bool;
  fault_categories : Fault.category list;
  compile_errors : [ `Parallelism | `Memory | `Instruction | `Structural ] list;
}

let translate ?(seed = 20250706) m ~src ~dst ~op ~shape =
  let case_seed =
    Hashtbl.hash
      (seed, method_name m, Platform.id_to_string src, Platform.id_to_string dst,
       op.Opdef.name, shape)
  in
  let llm = Llm.create ~seed:case_seed () in
  match Llm.translate_program llm ~profile:(profile m) ~src ~dst ~op ~shape with
  | Llm.Garbage ->
    { compiles = false;
      computes = false;
      fault_categories = [];
      compile_errors = [ `Structural ]
    }
  | Llm.Translated (k, faults) ->
    let target = Platform.of_id dst in
    let compile = Checker.compile target k in
    let compiles = compile = Ok () in
    let computes =
      compiles && Unit_test.check ~trials:2 op shape k = Unit_test.Pass
    in
    { compiles;
      computes;
      fault_categories = List.map (fun (f : Fault.injected) -> f.category) faults;
      compile_errors =
        (match compile with
        | Ok () -> []
        | Error es -> List.map (fun (e : Checker.error) -> e.category) es)
    }
