open Xpiler_ir
open Xpiler_machine
open Xpiler_ops
module Pass = Xpiler_passes.Pass

type result = {
  accepted : bool;
  reason : string option;
  kernel : Kernel.t option;
  compiles : bool;
  computes : bool;
}

exception Bail of string

(* is every index/bound affine in the enclosing loop variables? *)
let check_affine loops e =
  let d = Linear.decompose e in
  List.iter
    (fun (atom, _) ->
      match atom with
      | Expr.Var v when List.mem v loops -> ()
      | atom ->
        if List.exists (fun v -> Expr.contains_var v atom) loops then
          raise (Bail (Printf.sprintf "non-affine access %s" (Expr.to_string atom))))
    d.Linear.terms

(* the reduction idiom SCoP detection recognizes:
   let acc = init; <loop nest assigning only acc>; store .. acc *)
let rec is_reduction_body body =
  match body with
  | [ Stmt.Let { var; _ }; Stmt.For nest; Stmt.Store { value; _ } ] ->
    let only_assigns_var = ref true in
    Stmt.iter
      (fun s ->
        match s with
        | Stmt.Assign { var = v; _ } when String.equal v var -> ()
        | Stmt.Assign _ | Stmt.Let _ | Stmt.Store _ -> only_assigns_var := false
        | _ -> ())
      [ Stmt.For nest ];
    !only_assigns_var && Expr.contains_var var value
  | [ Stmt.For { body = inner_body; _ } ] -> is_reduction_body inner_body
  | _ -> false

let scop_compatible (k : Kernel.t) =
  let tainted = Hashtbl.create 8 in
  let expr_tainted e =
    Expr.buffers_read e <> [] || List.exists (Hashtbl.mem tainted) (Expr.free_vars e)
  in
  try
    let rec walk loops block =
      (* cross-statement scalar flow: a Let followed by more than the single
         reduction idiom defeats SCoP extraction *)
      let lets = List.filter (function Stmt.Let _ -> true | _ -> false) block in
      if List.length lets > 1 then raise (Bail "scalar temporaries across statements");
      if List.length lets = 1 && not (is_reduction_body block) then
        raise (Bail "scalar dependence is not a recognized reduction");
      List.iter
        (fun s ->
          match s with
          | Stmt.Let { var; value } | Stmt.Assign { var; value } ->
            if expr_tainted value then Hashtbl.replace tainted var ();
            Expr.fold
              (fun () e ->
                match e with Expr.Load (_, i) -> check_affine loops i | _ -> ())
              () value
          | Stmt.Store { index; value; _ } ->
            check_affine loops index;
            Expr.fold
              (fun () e ->
                match e with Expr.Load (_, i) -> check_affine loops i | _ -> ())
              () value
          | Stmt.For r -> (
            (match r.extent with
            | Expr.Int _ -> ()
            | e -> check_affine loops e);
            walk (r.var :: loops) r.body)
          | Stmt.If r ->
            if expr_tainted r.cond then raise (Bail "data-dependent control flow");
            check_affine loops r.cond;
            walk loops r.then_;
            walk loops r.else_
          | Stmt.Alloc _ -> ()
          | Stmt.Intrinsic _ -> raise (Bail "intrinsic call in the input")
          | Stmt.Memcpy _ -> raise (Bail "library call in the input")
          | Stmt.Sync -> raise (Bail "barrier in sequential input")
          | Stmt.Annot _ -> ())
        block
    in
    walk [] k.Kernel.body;
    Ok ()
  with Bail reason -> Error reason

let bind_outer_loops (k : Kernel.t) =
  (* PPCG's schedule: outermost parallel loop -> blocks, next -> threads *)
  let rec chain body =
    match body with
    | [ Stmt.For ({ kind = Stmt.Serial; lo = Expr.Int 0; extent = Expr.Int _; _ } as r) ] ->
      r.var :: chain r.body
    | _ -> []
  in
  match chain k.Kernel.body with
  | [] -> Error "no parallelizable outer loop"
  | [ outer ] -> Xpiler_passes.Loop_pass.bind ~var:outer ~axis:Axis.Block_x k
  | outer :: inner :: _ ->
    Result.bind
      (Xpiler_passes.Loop_pass.bind ~var:outer ~axis:Axis.Block_x k)
      (fun k ->
        match Xpiler_passes.Loop_pass.bind ~var:inner ~axis:Axis.Thread_x k with
        | Ok k -> Ok k
        | Error _ -> Ok k)

let translate op shape =
  let serial = op.Opdef.serial shape in
  match scop_compatible serial with
  | Error reason ->
    { accepted = false; reason = Some reason; kernel = None; compiles = false; computes = false }
  | Ok () -> (
    match bind_outer_loops serial with
    | Error reason ->
      { accepted = false; reason = Some reason; kernel = None; compiles = false;
        computes = false }
    | Ok k ->
      let compiles = Checker.compile Platform.cuda k = Ok () in
      let computes = compiles && Unit_test.check ~trials:2 op shape k = Unit_test.Pass in
      { accepted = true; reason = None; kernel = Some k; compiles; computes })
