open Xpiler_ir
open Xpiler_ops

(** PPCG-like polyhedral C -> CUDA auto-parallelization.

    PPCG extracts a static control part (SCoP) and schedules it onto the
    GPU. Our model accepts programs that are fully affine with simple
    reduction idioms; it bails out — as the real tool does on legacy code —
    when control flow is data-dependent, an index is non-affine, or scalar
    temporaries flow across sibling statements in ways the SCoP detection
    cannot privatize (the softmax/layernorm pattern). Accepted programs are
    parallelized by binding the outer loop nest to the CUDA grid. *)

type result = {
  accepted : bool;  (** a SCoP was extracted *)
  reason : string option;  (** why extraction failed *)
  kernel : Kernel.t option;
  compiles : bool;
  computes : bool;
}

val scop_compatible : Kernel.t -> (unit, string) Result.t
val translate : Opdef.t -> Opdef.shape -> result
(** Translate the operator's plain-C (sequential) kernel to CUDA. *)
