open Xpiler_machine
open Xpiler_ops

(** Single-shot LLM baselines (GPT-4 / OpenAI o1, zero- and few-shot):
    whole-program translation in one prompt, no decomposition, no repair. *)

type method_ = Gpt4_zero | Gpt4_few | O1_zero | O1_few

val method_name : method_ -> string
val all_methods : method_ list
val profile : method_ -> Xpiler_neural.Profile.t

type result = {
  compiles : bool;
  computes : bool;
  fault_categories : Xpiler_neural.Fault.category list;
      (** categories of the faults present in the output (Table 2) *)
  compile_errors : [ `Parallelism | `Memory | `Instruction | `Structural ] list;
}

val translate :
  ?seed:int ->
  method_ ->
  src:Platform.id ->
  dst:Platform.id ->
  op:Opdef.t ->
  shape:Opdef.shape ->
  result
