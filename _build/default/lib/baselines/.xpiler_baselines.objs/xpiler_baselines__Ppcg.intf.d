lib/baselines/ppcg.mli: Kernel Opdef Result Xpiler_ir Xpiler_ops
