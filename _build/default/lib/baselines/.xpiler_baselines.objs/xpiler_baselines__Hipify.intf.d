lib/baselines/hipify.mli: Kernel Opdef Xpiler_ir Xpiler_ops
