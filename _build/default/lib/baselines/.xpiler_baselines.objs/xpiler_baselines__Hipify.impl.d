lib/baselines/hipify.ml: Checker Idiom Intrin Kernel List Platform Scope Stmt Unit_test Xpiler_ir Xpiler_lang Xpiler_machine Xpiler_ops
