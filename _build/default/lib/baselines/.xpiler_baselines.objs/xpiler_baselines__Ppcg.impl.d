lib/baselines/ppcg.ml: Axis Checker Expr Hashtbl Kernel Linear List Opdef Platform Printf Result Stmt String Unit_test Xpiler_ir Xpiler_machine Xpiler_ops Xpiler_passes
