lib/baselines/llm_baseline.mli: Opdef Platform Xpiler_machine Xpiler_neural Xpiler_ops
