lib/baselines/vendor.mli: Opdef Platform Xpiler_ir Xpiler_machine Xpiler_ops
