lib/baselines/productivity.mli: Platform Xpiler_core Xpiler_machine
