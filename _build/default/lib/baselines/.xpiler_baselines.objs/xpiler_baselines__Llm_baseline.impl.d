lib/baselines/llm_baseline.ml: Checker Fault Hashtbl List Llm Opdef Platform Profile Unit_test Xpiler_machine Xpiler_neural Xpiler_ops
