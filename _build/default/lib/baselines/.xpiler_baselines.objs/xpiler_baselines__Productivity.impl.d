lib/baselines/productivity.ml: Costmodel Float Idiom List Opdef Platform Registry Xpiler_core Xpiler_ir Xpiler_lang Xpiler_machine Xpiler_ops Xpiler_passes Xpiler_util
