lib/baselines/vendor.ml: Costmodel Float Hashtbl Idiom List Opdef Platform Printf String Xpiler_machine Xpiler_ops Xpiler_tuning
