open Xpiler_ir
open Xpiler_machine
open Xpiler_ops

type result = {
  hip_text : string;
  kernel : Kernel.t option;
  compiles : bool;
  computes : bool;
}

let supported (k : Kernel.t) =
  let uses_fragment =
    List.exists (fun (_, s, _, _) -> Scope.equal s Scope.Fragment) (Stmt.allocs k.Kernel.body)
  in
  let uses_mma =
    List.exists
      (fun (i : Intrin.t) -> Intrin.equal_op i.op Intrin.Mma)
      (Stmt.intrinsics k.Kernel.body)
  in
  not (uses_fragment || uses_mma)

let translate op shape =
  let cuda_text = Idiom.source_text Platform.Cuda op shape in
  let k = Xpiler_lang.Parser.parse Xpiler_lang.Dialect.cuda cuda_text in
  if not (supported k) then
    (* no mapping rule: the wmma constructs pass through verbatim and the
       HIP toolchain rejects them *)
    { hip_text = cuda_text; kernel = None; compiles = false; computes = false }
  else begin
    let hip_text = Xpiler_lang.Codegen.emit Xpiler_lang.Dialect.hip k in
    match Xpiler_lang.Parser.parse Xpiler_lang.Dialect.hip hip_text with
    | hip_kernel ->
      let compiles = Checker.compile Platform.hip hip_kernel = Ok () in
      let computes =
        compiles && Unit_test.check ~trials:2 op shape hip_kernel = Unit_test.Pass
      in
      { hip_text; kernel = Some hip_kernel; compiles; computes }
    | exception Xpiler_lang.Parser.Parse_error _ ->
      { hip_text; kernel = None; compiles = false; computes = false }
  end
