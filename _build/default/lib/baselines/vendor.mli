open Xpiler_machine
open Xpiler_ops

(** Vendor-library performance model (DESIGN.md substitution #4).

    cuDNN/cuBLAS, CNNL, rocBLAS and oneDNN are modelled as the
    expert-written idiomatic kernel's cost scaled by a class-specific
    *vendor advantage*: mature kernels (large matmul, standard convolution)
    beat a hand-written expert kernel; long-tail LLM operators (deformable
    attention, RMSNorm, …) often ship unoptimized, which is where the paper
    reports QiMeng-Xpiler winning by up to 2x. *)

val advantage : Opdef.t -> float
(** Vendor speedup (>1) or handicap (<1) vs. the expert kernel. *)

val seconds : Platform.id -> Opdef.t -> Opdef.shape -> float
(** Modelled vendor execution time for the operator on the platform. *)

val speedup_of_translated :
  Platform.id -> Opdef.t -> Opdef.shape -> Xpiler_ir.Kernel.t -> float
(** vendor_time / translated_time — the Figure 7 metric (1.0 = parity,
    >1 = the translated program beats the vendor library). *)
