open Xpiler_machine

(** The productivity study (paper Table 8, DESIGN.md substitution #5).

    The paper's human-subject study is modelled analytically: manual
    development time comes from the target program's size and a per-line
    effort coefficient (much higher on an unfamiliar DSA, and ~5x higher for
    a junior coder); QiMeng-Xpiler's time is the measured virtual compile
    time plus a fixed manual debugging cost when the translation fails its
    unit tests (0.5 h senior / 3 h junior — the paper's numbers). Junior
    manual performance is the throughput of the naive (bind-only) kernel;
    all performance is normalized to the senior manual (expert idiom)
    kernel. *)

type coder = Senior | Junior

type entry = {
  coder : coder;
  manual_hours : float;
  manual_perf : float;  (** vs. senior manual = 1.0 *)
  xpiler_hours : float;  (** compile + debug-on-failure *)
  xpiler_perf : float;
  xpiler_correct : bool;  (** did the automatic translation pass its tests *)
  time_saving : float;  (** manual_hours / xpiler_hours *)
}

val coder_name : coder -> string

val study :
  ?config:Xpiler_core.Config.t ->
  src:Platform.id ->
  dst:Platform.id ->
  unit ->
  entry list
(** Runs the Deformable Attention case through the transcompiler and builds
    the two coder rows. *)
