open Xpiler_ir
open Xpiler_ops

(** HIPIFY-like rule-based CUDA -> HIP migration.

    A mechanical spelling translator: grid built-ins, qualifiers and barrier
    calls map one-to-one. Like the real tool, it has no rules for
    tensor-core constructs (wmma fragments / mma_sync), so kernels using the
    tensor core come out untranslated and fail HIP compilation — the gap the
    paper's Table 7 reports. *)

type result = {
  hip_text : string;
  kernel : Kernel.t option;  (** present when the output parses as HIP *)
  compiles : bool;
  computes : bool;
}

val translate : Opdef.t -> Opdef.shape -> result
(** Translate the operator's idiomatic CUDA source. *)

val supported : Kernel.t -> bool
(** Whether the mapping table covers every construct in the kernel. *)
