open Xpiler_ir
open Xpiler_machine

(** Program annotation (paper Algorithm 1).

    Two phases: *semantics annotation* marks each computational loop nest
    with its platform-agnostic operation (matmul, reduction, elementwise map,
    …); *reference annotation* retrieves the matching target-platform manual
    entry via BM25 and attaches the intrinsic's signature and constraints.
    Annotations are [Stmt.Annot] markers — inert for execution, load-bearing
    for the neural oracle's accuracy. *)

type operation =
  | Op_matmul of { m : int; k : int; n : int }
  | Op_reduction of [ `Sum | `Max ]
  | Op_elementwise of string  (** operator or activation name *)
  | Op_copy
  | Op_dot_i8

val operation_name : operation -> string

val operations_in : Kernel.t -> operation list
(** The computational operations the semantic annotator identifies. *)

val annotate : target:Platform.id -> Kernel.t -> Kernel.t
(** Insert [@operation] markers before recognized nests and one
    [@reference] marker per retrieved manual entry. Idempotent. *)

val is_annotated : Kernel.t -> bool
