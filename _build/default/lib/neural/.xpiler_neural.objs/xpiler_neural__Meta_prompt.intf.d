lib/neural/meta_prompt.mli: Kernel Platform Xpiler_ir Xpiler_machine Xpiler_passes
