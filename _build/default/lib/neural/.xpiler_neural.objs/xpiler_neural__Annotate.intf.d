lib/neural/annotate.mli: Kernel Platform Xpiler_ir Xpiler_machine
