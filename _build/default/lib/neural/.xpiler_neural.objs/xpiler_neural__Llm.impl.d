lib/neural/llm.ml: Fault Kernel List Meta_prompt Platform Profile Stmt Xpiler_ir Xpiler_machine Xpiler_ops Xpiler_passes Xpiler_util
