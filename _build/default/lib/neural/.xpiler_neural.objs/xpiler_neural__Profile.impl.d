lib/neural/profile.ml: Float Platform Xpiler_machine
