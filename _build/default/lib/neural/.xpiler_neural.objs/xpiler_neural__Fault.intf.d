lib/neural/fault.mli: Kernel Platform Xpiler_ir Xpiler_machine Xpiler_util
