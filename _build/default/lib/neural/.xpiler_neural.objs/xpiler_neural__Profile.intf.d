lib/neural/profile.mli: Platform Xpiler_machine
