lib/neural/llm.mli: Fault Kernel Meta_prompt Platform Profile Xpiler_ir Xpiler_machine Xpiler_ops Xpiler_passes Xpiler_util
