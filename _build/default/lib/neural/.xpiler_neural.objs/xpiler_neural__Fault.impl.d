lib/neural/fault.ml: Axis Expr Intrin Kernel Linear List Option Platform Printf Scope Stmt Xpiler_ir Xpiler_machine Xpiler_passes Xpiler_util
