lib/neural/annotate.ml: Expr Intrin Kernel Linear List Printf Stmt String Xpiler_ir Xpiler_manual Xpiler_passes
