lib/neural/meta_prompt.ml: Annotate Buffer Kernel List Printf Stmt String Xpiler_ir Xpiler_manual Xpiler_passes
