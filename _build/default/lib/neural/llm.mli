open Xpiler_ir
open Xpiler_machine
module Vclock = Xpiler_util.Vclock

(** The simulated code LLM.

    A deterministic-by-seed oracle substituting for GPT-4/o1 (DESIGN.md
    substitution #2): it produces structurally correct output by construction
    (the "sketch" — per Observation #2 LLMs are good at these) and then
    injects low-level faults at the rates of the active [Profile]. All
    downstream machinery — checking, unit tests, localization, SMT repair —
    only sees the faulty program. *)

type t

val create : seed:int -> ?clock:Vclock.t -> unit -> t
val seed_fork : t -> int -> t
(** An independent oracle derived from this one and a salt (to keep per-case
    results independent of evaluation order). *)

type translation =
  | Garbage  (** output is not even parseable in the target dialect *)
  | Translated of Kernel.t * Fault.injected list

val translate_program :
  t ->
  profile:Profile.t ->
  src:Platform.id ->
  dst:Platform.id ->
  op:Xpiler_ops.Opdef.t ->
  shape:Xpiler_ops.Opdef.shape ->
  translation
(** Single-shot whole-program translation (the baselines' mode). The fault
    rates are the profile's scaled by the direction difficulty. *)

val apply_pass :
  t ->
  profile:Profile.t ->
  target:Platform.t ->
  ?prompt:Meta_prompt.t ->
  Xpiler_passes.Pass.spec ->
  Kernel.t ->
  (Kernel.t * Fault.injected list, string) result
(** One LLM-assisted transformation pass (QiMeng-Xpiler's mode): the true
    pass provides the sketch; faults are injected at pass-level rates
    (lower when the program is annotated). [Error] when the pass does not
    apply to this program at all. *)
