open Xpiler_ir

type operation =
  | Op_matmul of { m : int; k : int; n : int }
  | Op_reduction of [ `Sum | `Max ]
  | Op_elementwise of string
  | Op_copy
  | Op_dot_i8

let operation_name = function
  | Op_matmul { m; k; n } -> Printf.sprintf "matmul(%dx%dx%d)" m k n
  | Op_reduction `Sum -> "reduce_sum"
  | Op_reduction `Max -> "reduce_max"
  | Op_elementwise name -> "elementwise_" ^ name
  | Op_copy -> "copy"
  | Op_dot_i8 -> "dot_product_int8"

(* classification mirrors the tensorize matchers but never rewrites *)
let classify_store v value =
  match value with
  | Expr.Binop (Expr.Max, _, Expr.Float 0.0) -> Some (Op_elementwise "relu")
  | Expr.Binop (Expr.Div, Expr.Float 1.0, Expr.Binop (Expr.Add, Expr.Float 1.0, Expr.Unop (Expr.Exp, _)))
    -> Some (Op_elementwise "sigmoid")
  | Expr.Binop (Expr.Mul, Expr.Binop (Expr.Mul, Expr.Float 0.5, _), Expr.Binop (Expr.Add, Expr.Float 1.0, Expr.Unop (Expr.Erf, _)))
    -> Some (Op_elementwise "gelu")
  | Expr.Select (Expr.Binop (Expr.Gt, _, Expr.Float 0.0), Expr.Float 1.0, _) ->
    Some (Op_elementwise "sign")
  | Expr.Binop (op, Expr.Load _, Expr.Load _) -> (
    match op with
    | Expr.Add -> Some (Op_elementwise "add")
    | Expr.Sub -> Some (Op_elementwise "sub")
    | Expr.Mul -> Some (Op_elementwise "mul")
    | Expr.Max -> Some (Op_elementwise "max")
    | Expr.Min -> Some (Op_elementwise "min")
    | _ -> None)
  | Expr.Binop ((Expr.Mul | Expr.Add | Expr.Sub), Expr.Load _, s)
    when Linear.independent_of v s ->
    Some (Op_elementwise "scalar_broadcast")
  | Expr.Unop (Expr.Exp, _) -> Some (Op_elementwise "exp")
  | Expr.Unop (Expr.Tanh, _) -> Some (Op_elementwise "tanh")
  | Expr.Unop (Expr.Erf, _) -> Some (Op_elementwise "erf")
  | Expr.Unop (Expr.Sqrt, _) -> Some (Op_elementwise "sqrt")
  | Expr.Load _ -> Some Op_copy
  | _ -> None

let classify_loop (r : (* For record fields *) string * Expr.t * Stmt.t list) =
  let v, extent, body = r in
  match body with
  | [ Stmt.Store { value; _ } ] -> classify_store v value
  | [ Stmt.Assign { var = acc; value = Expr.Binop (Expr.Add, Expr.Var acc', Expr.Load _) } ]
    when String.equal acc acc' -> Some (Op_reduction `Sum)
  | [ Stmt.Assign { var = acc; value = Expr.Binop (Expr.Max, Expr.Var acc', Expr.Load _) } ]
    when String.equal acc acc' -> Some (Op_reduction `Max)
  | [ Stmt.For jl ] -> (
    (* matmul triple nest *)
    match jl.body with
    | [ Stmt.Let _; Stmt.For kl; Stmt.Store _ ] -> (
      match
        ( Xpiler_passes.Rewrite.const_extent extent,
          Xpiler_passes.Rewrite.const_extent jl.extent,
          Xpiler_passes.Rewrite.const_extent kl.extent,
          kl.body )
      with
      | ( Ok m, Ok n, Ok kk,
          [ Stmt.Assign { value = Expr.Binop (Expr.Add, _, Expr.Binop (Expr.Mul, Expr.Load _, Expr.Load _)); _ } ] )
        -> Some (Op_matmul { m; k = kk; n })
      | _ -> None)
    | _ -> None)
  | _ -> None

let operations_in (k : Kernel.t) =
  let ops = ref [] in
  let rec walk block =
    List.iter
      (fun s ->
        match s with
        | Stmt.For r -> (
          match classify_loop (r.var, r.extent, r.body) with
          | Some op -> ops := op :: !ops
          | None -> walk r.body)
        | Stmt.If r ->
          walk r.then_;
          walk r.else_
        | Stmt.Intrinsic i -> (
          match i.op with
          | Intrin.Mlp | Intrin.Mma ->
            ops := Op_matmul { m = 0; k = 0; n = 0 } :: !ops
          | Intrin.Dp4a -> ops := Op_dot_i8 :: !ops
          | _ -> ())
        | _ -> ())
      block
  in
  walk k.Kernel.body;
  List.rev !ops

let is_annotated (k : Kernel.t) =
  Stmt.fold
    (fun acc s -> acc || match s with Stmt.Annot { key = "operation"; _ } -> true | _ -> false)
    false k.Kernel.body

let reference_for target op =
  let query =
    match op with
    | Op_matmul _ -> "matmul matrix multiplication gemm"
    | Op_reduction `Sum -> "reduce sum"
    | Op_reduction `Max -> "reduce max"
    | Op_elementwise name -> "elementwise " ^ name
    | Op_copy -> "copy vector"
    | Op_dot_i8 -> "int8 dot product"
  in
  match Xpiler_manual.Corpus.search target query 1 with
  | entry :: _ -> Some entry.Xpiler_manual.Corpus.body
  | [] -> None

let annotate ~target (k : Kernel.t) =
  if is_annotated k then k
  else begin
    let rec walk block =
      List.concat_map
        (fun s ->
          match s with
          | Stmt.For r -> (
            match classify_loop (r.var, r.extent, r.body) with
            | Some op ->
              let refs =
                match reference_for target op with
                | Some body -> [ Stmt.Annot { key = "reference"; value = body } ]
                | None -> []
              in
              (Stmt.Annot { key = "operation"; value = operation_name op } :: refs)
              @ [ Stmt.For { r with body = walk r.body } ]
            | None -> [ Stmt.For { r with body = walk r.body } ])
          | Stmt.If r -> [ Stmt.If { r with then_ = walk r.then_; else_ = walk r.else_ } ]
          | s -> [ s ])
        block
    in
    Kernel.with_body k (walk k.Kernel.body)
  end
