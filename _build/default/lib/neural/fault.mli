open Xpiler_ir
open Xpiler_machine

(** Fault injectors: the concrete error modes of §2.2's taxonomy.

    Structural faults break the program's shape (illegal built-ins or
    scopes, missing staging copies, wrong intrinsics) — these surface as
    compile errors or need re-generation. Detail faults perturb the
    low-level constants LLMs get wrong (loop bounds, index offsets,
    intrinsic lengths, Figure 2) — exactly the class SMT-based repair
    recovers. *)

type category = Parallelism | Memory | Instruction
type severity = Structural | Detail

type injected = {
  category : category;
  severity : severity;
  description : string;
}

val category_name : category -> string

val inject :
  Xpiler_util.Rng.t ->
  target:Platform.t ->
  severity ->
  category ->
  Kernel.t ->
  (Kernel.t * injected) option
(** [None] when the kernel has no applicable site for this fault class. *)

val inject_sync : Xpiler_util.Rng.t -> Kernel.t -> (Kernel.t * injected) option
(** Elide a barrier (the missing-[__syncthreads] class). Not reachable from
    [inject]'s calibrated distribution; exercised by the analyzer tests. *)

val inject_bound : Xpiler_util.Rng.t -> Kernel.t -> (Kernel.t * injected) option
val inject_index : Xpiler_util.Rng.t -> Kernel.t -> (Kernel.t * injected) option
val inject_param : Xpiler_util.Rng.t -> Kernel.t -> (Kernel.t * injected) option
