open Xpiler_ir
open Xpiler_machine

(** The transformation-pass vocabulary (paper Table 4) with a uniform
    apply interface. Each spec is one parameterized application of a pass;
    the auto-tuner's action space and the neural oracle's ground truth are
    both built from these. *)

type spec =
  | Loop_recovery
  | Loop_bind of { var : string; axis : Axis.t }
  | Loop_split of { var : string; factor : int }
  | Loop_fuse of { var : string }
  | Loop_reorder of { var : string }
  | Loop_expansion of { var : string }
  | Loop_contraction of { var : string }
  | Cache of {
      buf : string;
      scope : Scope.t;
      direction : Memory_pass.direction;
      under : string option;
      base : Expr.t;
      size : int;
    }
  | Rescope of { buf : string; scope : Scope.t }
  | Decache of { buf : string }
  | Pipeline of { var : string }
  | Tensorize
  | Detensorize

val name : spec -> string
(** The pass family name as in Table 4 (parameters omitted). *)

val describe : spec -> string
(** Full description including parameters. *)

val apply : platform:Platform.t -> spec -> Kernel.t -> (Kernel.t, string) result
(** [platform] is the *target* platform (used by tensorize and as context
    for legality). The result is simplified before being returned. *)

val family_names : string list
(** The 11 pass families of Table 4 (rescope folded under Cache). *)
