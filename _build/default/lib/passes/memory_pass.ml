open Xpiler_ir

type direction = Read | Write | Readwrite

let retarget_loads ~buf ~cache_buf ~base block =
  Stmt.map_block
    (fun stmt ->
      Some
        (Stmt.map_exprs
           (Expr.map (function
             | Expr.Load (b, idx) when String.equal b buf ->
               Some
                 (Expr.Load
                    (cache_buf, Linear.normalize (Expr.Binop (Expr.Sub, idx, base))))
             | _ -> None))
           stmt))
    block

let retarget_stores ~buf ~cache_buf ~base block =
  Stmt.map_block
    (fun stmt ->
      match stmt with
      | Stmt.Store r when String.equal r.buf buf ->
        Some
          (Stmt.Store
             { r with
               buf = cache_buf;
               index = Linear.normalize (Expr.Binop (Expr.Sub, r.index, base))
             })
      | s -> Some s)
    block

let cache ~buf ~scope ~direction ?under ~base ~size (k : Kernel.t) =
  if size <= 0 then Error "cache window must have positive size"
  else begin
    match Rewrite.buffer_dtype k buf with
    | None -> Error (Printf.sprintf "unknown buffer %s" buf)
    | Some dtype ->
      let cache_buf = Printf.sprintf "%s_%s" buf (Scope.to_string scope) in
      let stage region =
        let alloc = Stmt.Alloc { buf = cache_buf; scope; dtype; size } in
        match direction with
        | Read ->
          let copy_in =
            Stmt.Memcpy
              { dst = { buf = cache_buf; offset = Expr.Int 0 };
                src = { buf; offset = base };
                len = Expr.Int size
              }
          in
          alloc :: copy_in :: retarget_loads ~buf ~cache_buf ~base region
        | Write ->
          let copy_out =
            Stmt.Memcpy
              { dst = { buf; offset = base };
                src = { buf = cache_buf; offset = Expr.Int 0 };
                len = Expr.Int size
              }
          in
          (alloc :: retarget_stores ~buf ~cache_buf ~base region) @ [ copy_out ]
        | Readwrite ->
          let copy_in =
            Stmt.Memcpy
              { dst = { buf = cache_buf; offset = Expr.Int 0 };
                src = { buf; offset = base };
                len = Expr.Int size
              }
          in
          let copy_out =
            Stmt.Memcpy
              { dst = { buf; offset = base };
                src = { buf = cache_buf; offset = Expr.Int 0 };
                len = Expr.Int size
              }
          in
          (alloc :: copy_in
          :: retarget_stores ~buf ~cache_buf ~base (retarget_loads ~buf ~cache_buf ~base region))
          @ [ copy_out ]
      in
      match under with
      | None -> Ok (Kernel.with_body k (stage k.Kernel.body))
      | Some loop_var -> (
        let rewritten =
          Rewrite.rewrite_loop loop_var
            (fun ~var ~lo ~extent ~kind ~body ->
              [ Stmt.For { var; lo; extent; kind; body = stage body } ])
            k.Kernel.body
        in
        match rewritten with
        | Some body -> Ok (Kernel.with_body k body)
        | None -> Error (Printf.sprintf "no loop named %s" loop_var))
  end

let rescope ~buf ~scope (k : Kernel.t) =
  let changed = ref false in
  let body =
    Stmt.map_block
      (fun stmt ->
        match stmt with
        | Stmt.Alloc r when String.equal r.buf buf ->
          changed := true;
          Some (Stmt.Alloc { r with scope })
        | s -> Some s)
      k.Kernel.body
  in
  if !changed then Ok (Kernel.with_body k body)
  else Error (Printf.sprintf "no allocation of %s to rescope" buf)

(* inverse of cache: drop the staging buffer, redirect accesses to origin *)
let decache ~buf (k : Kernel.t) =
  (* locate the single whole-window copies in/out of [buf] *)
  let copy_in = ref None and copy_out = ref None and extra_copies = ref false in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Memcpy { dst; src; _ } when String.equal dst.buf buf ->
        if !copy_in = None && Expr.equal (Expr.simplify dst.offset) (Expr.Int 0) then
          copy_in := Some src
        else extra_copies := true
      | Stmt.Memcpy { dst; src; _ } when String.equal src.buf buf ->
        if !copy_out = None && Expr.equal (Expr.simplify src.offset) (Expr.Int 0) then
          copy_out := Some dst
        else extra_copies := true
      | _ -> ())
    k.Kernel.body;
  let has_alloc =
    List.exists (fun (b, _, _, _) -> String.equal b buf) (Stmt.allocs k.Kernel.body)
  in
  if not has_alloc then Error (Printf.sprintf "no allocation of %s" buf)
  else if !extra_copies then Error (Printf.sprintf "%s is not single-window staged" buf)
  else begin
    let origin =
      match (!copy_in, !copy_out) with
      | Some (r : Intrin.buf_ref), _ | None, Some r -> Some r
      | None, None -> None
    in
    match origin with
    | None -> Error (Printf.sprintf "%s has no staging copies" buf)
    | Some origin ->
      let consistent =
        match (!copy_in, !copy_out) with
        | Some (a : Intrin.buf_ref), Some (b : Intrin.buf_ref) ->
          String.equal a.buf b.buf && Expr.equal a.offset b.offset
        | _ -> true
      in
      if not consistent then Error (Printf.sprintf "%s staged from two windows" buf)
      else begin
        let redirect_idx idx =
          Linear.normalize (Expr.Binop (Expr.Add, idx, origin.offset))
        in
        let body =
          k.Kernel.body
          |> Stmt.map_block (fun s ->
                 match s with
                 | Stmt.Alloc r when String.equal r.buf buf -> Some (Stmt.Annot { key = "decached"; value = buf })
                 | Stmt.Memcpy { dst; src; _ }
                   when String.equal dst.buf buf || String.equal src.buf buf ->
                   Some (Stmt.Annot { key = "decached-copy"; value = buf })
                 | Stmt.Store r when String.equal r.buf buf ->
                   Some (Stmt.Store { r with buf = origin.buf; index = redirect_idx r.index })
                 | s -> Some s)
          |> Stmt.map_block (fun s ->
                 Some
                   (Stmt.map_exprs
                      (Expr.map (function
                        | Expr.Load (b, idx) when String.equal b buf ->
                          Some (Expr.Load (origin.buf, redirect_idx idx))
                        | _ -> None))
                      s))
          (* intrinsic operand references *)
          |> Stmt.map_block (fun s ->
                 match s with
                 | Stmt.Intrinsic i ->
                   let fix (r : Intrin.buf_ref) =
                     if String.equal r.buf buf then
                       { Intrin.buf = origin.buf; offset = redirect_idx r.offset }
                     else r
                   in
                   Some (Stmt.Intrinsic { i with dst = fix i.dst; srcs = List.map fix i.srcs })
                 | s -> Some s)
        in
        (* strip the placeholder markers left where the staging used to be *)
        let rec clean block =
          List.concat_map
            (fun s ->
              match s with
              | Stmt.Annot { key = "decached" | "decached-copy"; _ } -> []
              | Stmt.For r -> [ Stmt.For { r with body = clean r.body } ]
              | Stmt.If r -> [ Stmt.If { r with then_ = clean r.then_; else_ = clean r.else_ } ]
              | s -> [ s ])
            block
        in
        Ok (Kernel.with_body k (clean body))
      end
  end

let pipeline ~var (k : Kernel.t) =
  match
    Rewrite.rewrite_loop var
      (fun ~var ~lo ~extent ~kind:_ ~body ->
        let has_copy =
          List.exists (function Stmt.Memcpy _ -> true | _ -> false) body
        in
        let has_compute =
          List.exists
            (function Stmt.Memcpy _ | Stmt.Annot _ -> false | _ -> true)
            body
        in
        if not (has_copy && has_compute) then
          raise
            (Loop_pass.Failed
               (Printf.sprintf "loop %s has no copy/compute overlap to pipeline" var));
        [ Stmt.For { var; lo; extent; kind = Stmt.Pipelined; body } ])
      k.Kernel.body
  with
  | Some body -> Ok (Kernel.with_body k body)
  | None -> Error (Printf.sprintf "no loop named %s" var)
  | exception Loop_pass.Failed m -> Error m
