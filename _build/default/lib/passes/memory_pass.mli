open Xpiler_ir

(** Memory-conversion passes (Table 4, category 2). *)

type direction = Read | Write | Readwrite
(** [Read] stages a window of the buffer on-chip before the region uses it;
    [Write] redirects the region's stores into an on-chip buffer and copies
    it back afterwards; [Readwrite] does both (copy in, redirect loads and
    stores, copy out) for buffers the region reads and mutates. *)

val cache :
  buf:string ->
  scope:Scope.t ->
  direction:direction ->
  ?under:string ->
  base:Expr.t ->
  size:int ->
  Kernel.t ->
  (Kernel.t, string) result
(** Stage the window [base, base+size) of [buf] into a fresh on-chip buffer
    in [scope]. [under] names the loop whose body is the cached region
    (default: the whole kernel body); accesses to [buf] inside the region are
    retargeted with the base offset subtracted (linear-normalized). *)

val rescope : buf:string -> scope:Scope.t -> Kernel.t -> (Kernel.t, string) result
(** Move an existing allocation to a different memory scope — the
    memory-hierarchy adaptation used when retargeting platforms (e.g.
    __shared__ -> __nram__). *)

val decache : buf:string -> Kernel.t -> (Kernel.t, string) result
(** Inverse of [cache]: remove the staged buffer's allocation and its
    whole-window copies, redirecting accesses back to the origin buffer at
    the copy's offset. Used when retargeting removes source-platform staging
    before the target pipeline re-stages. Fails when the buffer's copies do
    not form the single-window staging pattern. *)

val pipeline : var:string -> Kernel.t -> (Kernel.t, string) result
(** Software-pipeline a loop (double buffering of its data movement against
    its compute); requires the loop body to contain both a copy and
    computation to overlap. *)
