open Xpiler_ir
open Xpiler_machine

(* ---- pattern matching helpers ------------------------------------------- *)

(* index affine in [v] with unit stride: returns the base *)
let unit_affine v e =
  match Linear.match_affine v e with
  | Some (1, base) -> Some base
  | _ -> None

let coeffs vars e =
  let d = Linear.decompose e in
  let cs = List.map (fun v -> Linear.coeff_of_var v d) vars in
  let base = Linear.recompose (List.fold_left (fun d v -> Linear.drop_var v d) d vars) in
  if List.for_all (fun v -> Linear.independent_of v base) vars then Some (cs, base)
  else None

let binop_vec_op = function
  | Expr.Add -> Some Intrin.Vec_add
  | Expr.Sub -> Some Intrin.Vec_sub
  | Expr.Mul -> Some Intrin.Vec_mul
  | Expr.Max -> Some Intrin.Vec_max
  | Expr.Min -> Some Intrin.Vec_min
  | _ -> None

let unop_vec_op = function
  | Expr.Exp -> Some Intrin.Vec_exp
  | Expr.Log -> Some Intrin.Vec_log
  | Expr.Sqrt -> Some Intrin.Vec_sqrt
  | Expr.Recip -> Some Intrin.Vec_recip
  | Expr.Tanh -> Some Intrin.Vec_tanh
  | Expr.Erf -> Some Intrin.Vec_erf
  | _ -> None

type ctx = {
  platform : Platform.t;
  scope_of : string -> Scope.t;
  mutable replaced : int;
  mutable tmp_counter : int;
}

let supported ctx op = List.mem op ctx.platform.Platform.intrinsics

(* operands must already sit in the memory spaces the intrinsic requires
   (staging is the cache pass's job, not ours) *)
let scopes_ok ctx op ~dst ~srcs =
  let pid = ctx.platform.Platform.id in
  let acceptable s req =
    Scope.equal s req
    || pid = Platform.Vnni
       && List.mem s [ Scope.Host; Scope.Local ]
       && List.mem req [ Scope.Host; Scope.Local ]
  in
  let dst_req, src_req = Platform.intrinsic_scope_rule pid op in
  acceptable (ctx.scope_of dst) dst_req
  && List.for_all2
       (fun b req -> acceptable (ctx.scope_of b) req)
       srcs
       (List.filteri (fun i _ -> i < List.length srcs)
          (src_req @ List.init (max 0 (List.length srcs - List.length src_req)) (fun _ -> dst_req)))

let aligned ctx n = n > 0 && n mod ctx.platform.Platform.vector_align = 0

let fresh_tmp ctx prefix =
  ctx.tmp_counter <- ctx.tmp_counter + 1;
  Printf.sprintf "%s_t%d" prefix ctx.tmp_counter

let intrin op dst srcs params = Stmt.Intrinsic { Intrin.op; dst; srcs; params }
let bref buf offset : Intrin.buf_ref = { buf; offset = Linear.normalize offset }

(* a zero-fill of [len] elements at [dst]: vectorized when alignment allows,
   scalar loop otherwise *)
let zero_fill ctx (dst : Intrin.buf_ref) len loop_var =
  if
    supported ctx Intrin.Vec_fill && aligned ctx len
    && scopes_ok ctx Intrin.Vec_fill ~dst:dst.buf ~srcs:[]
  then
    [ intrin Intrin.Vec_fill dst [] [ Expr.Int len; Expr.Float 0.0 ] ]
  else
    [ Stmt.For
        { var = loop_var;
          lo = Expr.Int 0;
          extent = Expr.Int len;
          kind = Stmt.Serial;
          body =
            [ Stmt.Store
                { buf = dst.buf;
                  index = Linear.normalize (Expr.Binop (Expr.Add, dst.offset, Expr.Var loop_var));
                  value = Expr.Float 0.0
                }
            ]
        }
    ]

(* ---- elementwise / broadcast / copy / fill ------------------------------- *)

let try_elementwise ctx v extent body =
  match (Rewrite.const_extent extent, body) with
  | Ok n, [ Stmt.Store { buf = d; index; value } ] when aligned ctx n -> (
    match unit_affine v index with
    | None -> None
    | Some dbase -> (
      let dst = bref d dbase in
      let len = Expr.Int n in
      let load1 e = match e with Expr.Load (a, ai) -> unit_affine v ai |> Option.map (fun b -> (a, b)) | _ -> None in
      let activation =
        (* whole-formula activations that map to one intrinsic *)
        match value with
        | Expr.Binop (Expr.Max, x, Expr.Float 0.0) | Expr.Binop (Expr.Max, Expr.Float 0.0, x)
          when supported ctx Intrin.Vec_relu ->
          load1 x |> Option.map (fun (a, ab) -> (Intrin.Vec_relu, a, ab))
        | Expr.Binop
            ( Expr.Div,
              Expr.Float 1.0,
              Expr.Binop (Expr.Add, Expr.Float 1.0, Expr.Unop (Expr.Exp, Expr.Unop (Expr.Neg, x)))
            )
          when supported ctx Intrin.Vec_sigmoid ->
          load1 x |> Option.map (fun (a, ab) -> (Intrin.Vec_sigmoid, a, ab))
        | Expr.Binop
            ( Expr.Mul,
              Expr.Binop (Expr.Mul, Expr.Float 0.5, x),
              Expr.Binop (Expr.Add, Expr.Float 1.0, Expr.Unop (Expr.Erf, Expr.Binop (Expr.Mul, x', Expr.Float _)))
            )
          when Expr.equal x x' && supported ctx Intrin.Vec_gelu ->
          load1 x |> Option.map (fun (a, ab) -> (Intrin.Vec_gelu, a, ab))
        | Expr.Select
            ( Expr.Binop (Expr.Gt, x, Expr.Float 0.0),
              Expr.Float 1.0,
              Expr.Select (Expr.Binop (Expr.Lt, x', Expr.Float 0.0), Expr.Float -1.0, Expr.Float 0.0)
            )
          when Expr.equal x x' && supported ctx Intrin.Vec_sign ->
          load1 x |> Option.map (fun (a, ab) -> (Intrin.Vec_sign, a, ab))
        | _ -> None
      in
      match activation with
      | Some (vop, a, ab) when scopes_ok ctx vop ~dst:d ~srcs:[ a ] ->
        Some [ intrin vop dst [ bref a ab ] [ len ] ]
      | Some _ -> None
      | None -> (
      match value with
      | Expr.Binop (op, l, r) -> (
        match (binop_vec_op op, load1 l, load1 r) with
        | Some vop, Some (a, ab), Some (b, bb)
          when supported ctx vop && scopes_ok ctx vop ~dst:d ~srcs:[ a; b ] ->
          Some [ intrin vop dst [ bref a ab; bref b bb ] [ len ] ]
        | _ -> (
          (* scalar broadcast: a[..] op s or s op a[..] with s independent *)
          let indep e = Linear.independent_of v e in
          let broadcast_ok a = scopes_ok ctx Intrin.Vec_scale ~dst:d ~srcs:[ a ] in
          match (op, load1 l, load1 r) with
          | Expr.Mul, Some (a, ab), None
            when indep r && supported ctx Intrin.Vec_scale && broadcast_ok a ->
            Some [ intrin Intrin.Vec_scale dst [ bref a ab ] [ len; r ] ]
          | Expr.Mul, None, Some (a, ab)
            when indep l && supported ctx Intrin.Vec_scale && broadcast_ok a ->
            Some [ intrin Intrin.Vec_scale dst [ bref a ab ] [ len; l ] ]
          | Expr.Add, Some (a, ab), None
            when indep r && supported ctx Intrin.Vec_adds && broadcast_ok a ->
            Some [ intrin Intrin.Vec_adds dst [ bref a ab ] [ len; r ] ]
          | Expr.Add, None, Some (a, ab)
            when indep l && supported ctx Intrin.Vec_adds && broadcast_ok a ->
            Some [ intrin Intrin.Vec_adds dst [ bref a ab ] [ len; l ] ]
          | Expr.Sub, Some (a, ab), None
            when indep r && supported ctx Intrin.Vec_adds && broadcast_ok a ->
            Some [ intrin Intrin.Vec_adds dst [ bref a ab ] [ len; Expr.Unop (Expr.Neg, r) ] ]
          | _ -> None))
      | Expr.Unop (op, x) -> (
        match (unop_vec_op op, load1 x) with
        | Some vop, Some (a, ab)
          when supported ctx vop && scopes_ok ctx vop ~dst:d ~srcs:[ a ] ->
          Some [ intrin vop dst [ bref a ab ] [ len ] ]
        | _ -> None)
      | Expr.Load (_, _) -> (
        match load1 value with
        | Some (a, ab)
          when supported ctx Intrin.Vec_copy && scopes_ok ctx Intrin.Vec_copy ~dst:d ~srcs:[ a ]
          ->
          Some [ intrin Intrin.Vec_copy dst [ bref a ab ] [ len ] ]
        | _ -> None)
      | e
        when Linear.independent_of v e && supported ctx Intrin.Vec_fill
             && scopes_ok ctx Intrin.Vec_fill ~dst:d ~srcs:[] ->
        Some [ intrin Intrin.Vec_fill dst [] [ len; e ] ]
      | _ -> None)))
  | _ -> None

(* ---- reductions ----------------------------------------------------------- *)

let try_reduction ctx v extent body =
  match (Rewrite.const_extent extent, body) with
  | Ok n, [ Stmt.Assign { var = acc; value } ] when aligned ctx n -> (
    let make op combine a ab =
      if not (supported ctx op && scopes_ok ctx op ~dst:a ~srcs:[ a ]) then None
      else begin
        let scope = Platform.default_compute_scope ctx.platform.Platform.id in
        let tmp = fresh_tmp ctx (a ^ "_red") in
        let align = max ctx.platform.Platform.vector_align 1 in
        Some
          [ Stmt.Alloc { buf = tmp; scope; dtype = Dtype.F32; size = align };
            intrin op (bref tmp (Expr.Int 0)) [ bref a ab ] [ Expr.Int n ];
            Stmt.Assign { var = acc; value = combine (Expr.Load (tmp, Expr.Int 0)) }
          ]
      end
    in
    match value with
    | Expr.Binop (Expr.Add, Expr.Var acc', Expr.Load (a, ai))
      when String.equal acc acc' -> (
      match unit_affine v ai with
      | Some ab ->
        make Intrin.Vec_reduce_sum
          (fun partial -> Expr.Binop (Expr.Add, Expr.Var acc, partial))
          a ab
      | None -> None)
    | Expr.Binop (Expr.Max, Expr.Var acc', Expr.Load (a, ai))
      when String.equal acc acc' -> (
      match unit_affine v ai with
      | Some ab ->
        make Intrin.Vec_reduce_max
          (fun partial -> Expr.Binop (Expr.Max, Expr.Var acc, partial))
          a ab
      | None -> None)
    | _ -> None)
  | _ -> None

(* ---- dot products ----------------------------------------------------------- *)

(* acc += a[..+v] * b[..+v]  ->  vec_mul into a temporary, then reduce_sum
   (the idiomatic BANG C spelling of a dot product) *)
let try_dot_reduction ctx v extent body =
  match (Rewrite.const_extent extent, body) with
  | ( Ok n,
      [ Stmt.Assign
          { var = acc;
            value =
              Expr.Binop
                ( Expr.Add,
                  Expr.Var acc',
                  Expr.Binop (Expr.Mul, Expr.Load (a, ai), Expr.Load (b, bi)) )
          }
      ] )
    when String.equal acc acc' && aligned ctx n
         && supported ctx Intrin.Vec_mul && supported ctx Intrin.Vec_reduce_sum -> (
    match (unit_affine v ai, unit_affine v bi) with
    | Some ab, Some bb
      when scopes_ok ctx Intrin.Vec_mul ~dst:a ~srcs:[ a; b ] ->
      let scope = Platform.default_compute_scope ctx.platform.Platform.id in
      let prod = fresh_tmp ctx (a ^ "_dot") in
      let red = fresh_tmp ctx (a ^ "_dotred") in
      let align = max ctx.platform.Platform.vector_align 1 in
      Some
        [ Stmt.Alloc { buf = prod; scope; dtype = Dtype.F32; size = n };
          Stmt.Alloc { buf = red; scope; dtype = Dtype.F32; size = align };
          intrin Intrin.Vec_mul (bref prod (Expr.Int 0)) [ bref a ab; bref b bb ]
            [ Expr.Int n ];
          intrin Intrin.Vec_reduce_sum (bref red (Expr.Int 0)) [ bref prod (Expr.Int 0) ]
            [ Expr.Int n ];
          Stmt.Assign
            { var = acc;
              value = Expr.Binop (Expr.Add, Expr.Var acc, Expr.Load (red, Expr.Int 0))
            }
        ]
    | _ -> None)
  | _ -> None

(* ---- matmul --------------------------------------------------------------- *)

let matmul_op ctx =
  if supported ctx Intrin.Mlp then Some Intrin.Mlp
  else if supported ctx Intrin.Mma then Some Intrin.Mma
  else None

(* accumulate form: for i { for j { for k { C[..] = C[..] + A[..]*B[..] } } } *)
let try_matmul_accum ctx i (i_extent : Expr.t) body =
  match (matmul_op ctx, Rewrite.const_extent i_extent, body) with
  | Some op, Ok m, [ Stmt.For jl ] when jl.kind = Stmt.Serial -> (
    match (Rewrite.const_extent jl.extent, jl.body) with
    | Ok n, [ Stmt.For kl ] when kl.kind = Stmt.Serial -> (
      match (Rewrite.const_extent kl.extent, kl.body) with
      | ( Ok kk,
          [ Stmt.Store
              { buf = c;
                index = ci;
                value =
                  Expr.Binop
                    ( Expr.Add,
                      Expr.Load (c', ci'),
                      Expr.Binop (Expr.Mul, Expr.Load (a, ai), Expr.Load (b, bi)) )
              }
          ] )
        when String.equal c c' && Linear.equal_linear ci ci' -> (
        let j = jl.var and k = kl.var in
        let vars = [ i; j; k ] in
        match (coeffs vars ai, coeffs vars bi, coeffs vars ci) with
        | Some ([ ca_i; ca_j; ca_k ], abase), Some ([ cb_i; cb_j; cb_k ], bbase),
          Some ([ cc_i; cc_j; cc_k ], cbase)
          when ca_i = kk && ca_j = 0 && ca_k = 1
               && cb_i = 0 && cb_j = 1 && cb_k = n
               && cc_i = n && cc_j = 1 && cc_k = 0
               && scopes_ok ctx op ~dst:c ~srcs:[ a; b ] ->
          Some
            [ intrin op (bref c cbase) [ bref a abase; bref b bbase ]
                [ Expr.Int m; Expr.Int kk; Expr.Int n ]
            ]
        | _ -> None)
      | _ -> None)
    | _ -> None)
  | _ -> None

(* match: for i { for j { acc = init; for k { acc += A[..]*B[..] }; C[..] = acc } } *)
let try_matmul ctx i (i_extent : Expr.t) body =
  let op = matmul_op ctx in
  match (op, Rewrite.const_extent i_extent, body) with
  | Some op, Ok m, [ Stmt.For jl ] when jl.kind = Stmt.Serial -> (
    match (Rewrite.const_extent jl.extent, jl.body) with
    | ( Ok n,
        [ Stmt.Let { var = acc; value = init };
          Stmt.For kl;
          Stmt.Store { buf = c; index = ci; value = Expr.Var acc' }
        ] )
      when String.equal acc acc' && kl.kind = Stmt.Serial -> (
      match (Rewrite.const_extent kl.extent, kl.body) with
      | ( Ok kk,
          [ Stmt.Assign
              { var = acc'';
                value =
                  Expr.Binop
                    (Expr.Add, Expr.Var acc''', Expr.Binop (Expr.Mul, Expr.Load (a, ai), Expr.Load (b, bi)))
              }
          ] )
        when String.equal acc acc'' && String.equal acc acc''' -> (
        let j = jl.var and k = kl.var in
        let vars = [ i; j; k ] in
        match (coeffs vars ai, coeffs vars bi, coeffs vars ci) with
        | Some ([ ca_i; ca_j; ca_k ], abase), Some ([ cb_i; cb_j; cb_k ], bbase),
          Some ([ cc_i; cc_j; cc_k ], cbase)
          when ca_i = kk && ca_j = 0 && ca_k = 1 (* A[i*K + k] *)
               && cb_i = 0 && cb_j = 1 && cb_k = n (* B[k*N + j] *)
               && cc_i = n && cc_j = 1 && cc_k = 0 (* C[i*N + j] *)
               && scopes_ok ctx op ~dst:c ~srcs:[ a; b ] ->
          let dst = bref c cbase in
          let fill =
            match init with
            | Expr.Float 0.0 | Expr.Int 0 -> zero_fill ctx dst (m * n) (fresh_tmp ctx "z")
            | Expr.Load (c', ci') when String.equal c c' && Linear.equal_linear ci ci' -> []
            | _ -> raise Exit
          in
          Some
            (fill
            @ [ intrin op dst [ bref a abase; bref b bbase ]
                  [ Expr.Int m; Expr.Int kk; Expr.Int n ]
              ])
        | _ -> None)
      | _ -> None)
    | _ -> None)
  | _ -> None

let try_matmul ctx i ext body = try try_matmul ctx i ext body with Exit -> None

(* ---- 2-D convolution -------------------------------------------------------- *)

(* match the NHWC direct convolution nest:
   for oh { for ow { for oc { acc = 0;
     for r { for q { for c { acc += in[((oh*s+r)*wi + ow*s+q)*ci + c]
                                  * w[((oc*kh+r)*kw+q)*ci + c] } } };
     out[((oh*wo+ow)*co)+oc] = acc } } } *)
let try_conv2d ctx oh (oh_extent : Expr.t) body =
  if not (supported ctx Intrin.Conv2d) then None
  else
    match (Rewrite.const_extent oh_extent, body) with
    | Ok ho, [ Stmt.For owl ] when owl.kind = Stmt.Serial -> (
      match (Rewrite.const_extent owl.extent, owl.body) with
      | Ok wo, [ Stmt.For ocl ] when ocl.kind = Stmt.Serial -> (
        match (Rewrite.const_extent ocl.extent, ocl.body) with
        | ( Ok co,
            [ Stmt.Let { var = acc; value = Expr.Float 0.0 | Expr.Int 0 };
              Stmt.For rl;
              Stmt.Store { buf = out; index = oi; value = Expr.Var acc' }
            ] )
          when String.equal acc acc' && rl.kind = Stmt.Serial -> (
          match (Rewrite.const_extent rl.extent, rl.body) with
          | Ok kh, [ Stmt.For ql ] when ql.kind = Stmt.Serial -> (
            match (Rewrite.const_extent ql.extent, ql.body) with
            | Ok kw, [ Stmt.For cl ] when cl.kind = Stmt.Serial -> (
              match (Rewrite.const_extent cl.extent, cl.body) with
              | ( Ok ci,
                  [ Stmt.Assign
                      { var = acc'';
                        value =
                          Expr.Binop
                            ( Expr.Add,
                              Expr.Var acc''',
                              Expr.Binop
                                (Expr.Mul, Expr.Load (inp, ii), Expr.Load (wgt, wi_idx)) )
                      }
                  ] )
                when String.equal acc acc'' && String.equal acc acc''' -> (
                let ow = owl.var and oc = ocl.var and r = rl.var and q = ql.var in
                let c = cl.var in
                let vars = [ oh; ow; oc; r; q; c ] in
                match (coeffs vars ii, coeffs vars wi_idx, coeffs vars oi) with
                | ( Some ([ i_oh; i_ow; i_oc; i_r; i_q; i_c ], ibase),
                    Some ([ w_oh; w_ow; w_oc; w_r; w_q; w_c ], wbase),
                    Some ([ o_oh; o_ow; o_oc; o_r; o_q; o_c ], obase) )
                  when i_c = 1 && w_c = 1 && i_oc = 0 && w_oh = 0 && w_ow = 0
                       && o_oc = 1 && o_r = 0 && o_q = 0 && o_c = 0
                       && i_q = ci && w_q = ci
                       && o_ow = co && o_oh = wo * co
                       && w_r = kw * ci && w_oc = kh * kw * ci
                       && i_ow > 0 && i_ow mod ci = 0 ->
                  (* stride and input width from the remaining coefficients *)
                  let stride = i_ow / ci in
                  let wi = ((wo - 1) * stride) + kw in
                  if
                    i_oh = stride * wi * ci && i_r = wi * ci
                    && scopes_ok ctx Intrin.Conv2d ~dst:out ~srcs:[ inp; wgt ]
                  then
                    Some
                      [ intrin Intrin.Conv2d (bref out obase)
                          [ bref inp ibase; bref wgt wbase ]
                          [ Expr.Int co; Expr.Int ci; Expr.Int kh; Expr.Int kw; Expr.Int ho;
                            Expr.Int wo; Expr.Int stride ]
                      ]
                  else None
                | _ -> None)
              | _ -> None)
            | _ -> None)
          | _ -> None)
        | _ -> None)
      | _ -> None)
    | _ -> None

(* ---- int8 dot product (dp4a) ---------------------------------------------- *)


(* match: for g { acc = init; for j in 4 { acc += a[g*4+j]*b[g*4+j] }; c[g] = acc } *)
let try_dp4a ctx g (g_extent : Expr.t) body =
  if not (supported ctx Intrin.Dp4a) then None
  else
    match (Rewrite.const_extent g_extent, body) with
    | ( Ok groups,
        [ Stmt.Let { var = acc; value = init };
          Stmt.For jl;
          Stmt.Store { buf = c; index = ci; value = Expr.Var acc' }
        ] )
      when String.equal acc acc' && jl.kind = Stmt.Serial -> (
      match (Rewrite.const_extent jl.extent, jl.body) with
      | ( Ok 4,
          [ Stmt.Assign
              { var = acc'';
                value =
                  Expr.Binop
                    ( Expr.Add,
                      Expr.Var acc''',
                      Expr.Binop (Expr.Mul, Expr.Load (a, ai), Expr.Load (b, bi)) )
              }
          ] )
        when String.equal acc acc'' && String.equal acc acc''' -> (
        let j = jl.var in
        let vars = [ g; j ] in
        match (coeffs vars ai, coeffs vars bi, coeffs vars ci) with
        | Some ([ 4; 1 ], abase), Some ([ 4; 1 ], bbase), Some ([ 1; 0 ], cbase)
          when scopes_ok ctx Intrin.Dp4a ~dst:c ~srcs:[ a; b ] ->
          let dst = bref c cbase in
          let fill =
            match init with
            | Expr.Int 0 | Expr.Float 0.0 ->
              zero_fill ctx dst groups (g ^ "_z")
            | Expr.Load (c', ci') when String.equal c c' && Linear.equal_linear ci ci' -> []
            | _ -> [] (* unexpected init: bail out *)
          in
          (match init with
          | Expr.Int 0 | Expr.Float 0.0 | Expr.Load _ ->
            Some
              (fill
              @ [ intrin Intrin.Dp4a dst [ bref a abase; bref b bbase ]
                    [ Expr.Int (groups * 4) ]
                ])
          | _ -> None)
        | _ -> None)
      | _ -> None)
    | _ -> None

(* accumulate form: for g { for j in 4 { c[g] = c[g] + a[g*4+j]*b[g*4+j] } } *)
let try_dp4a_accum ctx g (g_extent : Expr.t) body =
  if not (supported ctx Intrin.Dp4a) then None
  else
    match (Rewrite.const_extent g_extent, body) with
    | Ok groups, [ Stmt.For jl ] when jl.kind = Stmt.Serial -> (
      match (Rewrite.const_extent jl.extent, jl.body) with
      | ( Ok 4,
          [ Stmt.Store
              { buf = c;
                index = ci;
                value =
                  Expr.Binop
                    ( Expr.Add,
                      Expr.Load (c', ci'),
                      Expr.Binop (Expr.Mul, Expr.Load (a, ai), Expr.Load (b, bi)) )
              }
          ] )
        when String.equal c c' && Linear.equal_linear ci ci' -> (
        let j = jl.var in
        let vars = [ g; j ] in
        match (coeffs vars ai, coeffs vars bi, coeffs vars ci) with
        | Some ([ 4; 1 ], abase), Some ([ 4; 1 ], bbase), Some ([ 1; 0 ], cbase)
          when scopes_ok ctx Intrin.Dp4a ~dst:c ~srcs:[ a; b ] ->
          Some
            [ intrin Intrin.Dp4a (bref c cbase) [ bref a abase; bref b bbase ]
                [ Expr.Int (groups * 4) ]
            ]
        | _ -> None)
      | _ -> None)
    | _ -> None

(* ---- driver ---------------------------------------------------------------- *)

let tensorize ~platform (k : Kernel.t) =
  let scope_env = Checker.scope_env platform k in
  let scope_of b =
    match List.assoc_opt b scope_env with
    | Some s -> s
    | None -> Checker.param_scope platform
  in
  let ctx = { platform; scope_of; replaced = 0; tmp_counter = 0 } in
  let rec transform block = List.concat_map transform_stmt block
  and transform_stmt stmt =
    match stmt with
    | Stmt.For r when r.kind = Stmt.Serial && Expr.equal r.lo (Expr.Int 0) -> (
      let attempt =
        match try_matmul ctx r.var r.extent r.body with
        | Some repl -> Some repl
        | None -> (
          match try_matmul_accum ctx r.var r.extent r.body with
          | Some repl -> Some repl
          | None -> (
          match try_conv2d ctx r.var r.extent r.body with
          | Some repl -> Some repl
          | None -> (
          match try_dp4a ctx r.var r.extent r.body with
          | Some repl -> Some repl
          | None -> (
          match try_dp4a_accum ctx r.var r.extent r.body with
          | Some repl -> Some repl
          | None -> (
            match try_elementwise ctx r.var r.extent r.body with
            | Some repl -> Some repl
            | None -> (
              match try_dot_reduction ctx r.var r.extent r.body with
              | Some repl -> Some repl
              | None -> try_reduction ctx r.var r.extent r.body))))))
      in
      match attempt with
      | Some repl ->
        ctx.replaced <- ctx.replaced + 1;
        repl
      | None -> [ Stmt.For { r with body = transform r.body } ])
    | Stmt.For r -> [ Stmt.For { r with body = transform r.body } ]
    | Stmt.If r -> [ Stmt.If { r with then_ = transform r.then_; else_ = transform r.else_ } ]
    | s -> [ s ]
  in
  let body = transform k.Kernel.body in
  if ctx.replaced = 0 then
    Error
      (Printf.sprintf "no loop nest matches a %s intrinsic pattern" platform.Platform.name)
  else Ok (Kernel.with_body k body)

(* ---- detensorize ------------------------------------------------------------ *)

let detensorize (k : Kernel.t) =
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Printf.sprintf "%s%d" prefix !counter
  in
  let found = ref 0 in
  let loop var extent body =
    Stmt.For { var; lo = Expr.Int 0; extent; kind = Stmt.Serial; body }
  in
  let load (r : Intrin.buf_ref) idx =
    Expr.Load (r.buf, Linear.normalize (Expr.Binop (Expr.Add, r.offset, idx)))
  in
  let store (r : Intrin.buf_ref) idx value =
    Stmt.Store
      { buf = r.buf; index = Linear.normalize (Expr.Binop (Expr.Add, r.offset, idx)); value }
  in
  let expand (i : Intrin.t) =
    let p n = List.nth i.params n in
    let src n = List.nth i.srcs n in
    let vt = fresh "t" in
    let tv = Expr.Var vt in
    match i.op with
    | Intrin.Vec_add | Intrin.Vec_sub | Intrin.Vec_mul | Intrin.Vec_max | Intrin.Vec_min ->
      let op =
        match i.op with
        | Intrin.Vec_add -> Expr.Add
        | Intrin.Vec_sub -> Expr.Sub
        | Intrin.Vec_mul -> Expr.Mul
        | Intrin.Vec_max -> Expr.Max
        | _ -> Expr.Min
      in
      [ loop vt (p 0) [ store i.dst tv (Expr.Binop (op, load (src 0) tv, load (src 1) tv)) ] ]
    | Intrin.Vec_exp | Intrin.Vec_log | Intrin.Vec_sqrt | Intrin.Vec_recip | Intrin.Vec_tanh
    | Intrin.Vec_erf ->
      let op =
        match i.op with
        | Intrin.Vec_exp -> Expr.Exp
        | Intrin.Vec_log -> Expr.Log
        | Intrin.Vec_sqrt -> Expr.Sqrt
        | Intrin.Vec_recip -> Expr.Recip
        | Intrin.Vec_tanh -> Expr.Tanh
        | _ -> Expr.Erf
      in
      [ loop vt (p 0) [ store i.dst tv (Expr.Unop (op, load (src 0) tv)) ] ]
    | Intrin.Vec_copy -> [ loop vt (p 0) [ store i.dst tv (load (src 0) tv) ] ]
    | Intrin.Vec_relu ->
      [ loop vt (p 0)
          [ store i.dst tv (Expr.Binop (Expr.Max, load (src 0) tv, Expr.Float 0.0)) ]
      ]
    | Intrin.Vec_sigmoid ->
      [ loop vt (p 0)
          [ store i.dst tv
              (Expr.Binop
                 ( Expr.Div,
                   Expr.Float 1.0,
                   Expr.Binop
                     (Expr.Add, Expr.Float 1.0, Expr.Unop (Expr.Exp, Expr.Unop (Expr.Neg, load (src 0) tv)))
                 ))
          ]
      ]
    | Intrin.Vec_gelu ->
      let x = load (src 0) tv in
      [ loop vt (p 0)
          [ store i.dst tv
              (Expr.Binop
                 ( Expr.Mul,
                   Expr.Binop (Expr.Mul, Expr.Float 0.5, x),
                   Expr.Binop
                     ( Expr.Add,
                       Expr.Float 1.0,
                       Expr.Unop (Expr.Erf, Expr.Binop (Expr.Mul, x, Expr.Float 0.7071067811865476)) )
                 ))
          ]
      ]
    | Intrin.Vec_sign ->
      let x = load (src 0) tv in
      [ loop vt (p 0)
          [ store i.dst tv
              (Expr.Select
                 ( Expr.Binop (Expr.Gt, x, Expr.Float 0.0),
                   Expr.Float 1.0,
                   Expr.Select (Expr.Binop (Expr.Lt, x, Expr.Float 0.0), Expr.Float (-1.0), Expr.Float 0.0)
                 ))
          ]
      ]
    | Intrin.Vec_scale ->
      [ loop vt (p 0) [ store i.dst tv (Expr.Binop (Expr.Mul, load (src 0) tv, p 1)) ] ]
    | Intrin.Vec_adds ->
      [ loop vt (p 0) [ store i.dst tv (Expr.Binop (Expr.Add, load (src 0) tv, p 1)) ] ]
    | Intrin.Vec_fill -> [ loop vt (p 0) [ store i.dst tv (p 1) ] ]
    | Intrin.Vec_reduce_sum ->
      [ store i.dst (Expr.Int 0) (Expr.Float 0.0);
        loop vt (p 0)
          [ store i.dst (Expr.Int 0)
              (Expr.Binop (Expr.Add, load i.dst (Expr.Int 0), load (src 0) tv))
          ]
      ]
    | Intrin.Vec_reduce_max ->
      [ store i.dst (Expr.Int 0) (load (src 0) (Expr.Int 0));
        loop vt (p 0)
          [ store i.dst (Expr.Int 0)
              (Expr.Binop (Expr.Max, load i.dst (Expr.Int 0), load (src 0) tv))
          ]
      ]
    | Intrin.Mma | Intrin.Mlp ->
      let vi = fresh "mi" and vj = fresh "mj" and vk = fresh "mk" in
      let m = p 0 and kk = p 1 and n = p 2 in
      let idx_c = Expr.(Binop (Add, Binop (Mul, Var vi, n), Var vj)) in
      let idx_a = Expr.(Binop (Add, Binop (Mul, Var vi, kk), Var vk)) in
      let idx_b = Expr.(Binop (Add, Binop (Mul, Var vk, n), Var vj)) in
      [ loop vi m
          [ loop vj n
              [ loop vk kk
                  [ store i.dst idx_c
                      (Expr.Binop
                         ( Expr.Add,
                           load i.dst idx_c,
                           Expr.Binop (Expr.Mul, load (src 0) idx_a, load (src 1) idx_b) ))
                  ]
              ]
          ]
      ]
    | Intrin.Conv2d ->
      let co = p 0 and ci = p 1 and kh = p 2 and kw = p 3 and ho = p 4 and wo = p 5 in
      let stride = p 6 in
      let wi = Expr.simplify Expr.(Binop (Add, Binop (Mul, Binop (Sub, wo, Int 1), stride), kw)) in
      let voh = fresh "oh" and vow = fresh "ow" and voc = fresh "oc" in
      let vr = fresh "r" and vq = fresh "q" and vc = fresh "c" in
      let open Expr in
      let idx_out = Binop (Add, Binop (Mul, Binop (Add, Binop (Mul, Var voh, wo), Var vow), co), Var voc) in
      let idx_in =
        Binop
          ( Add,
            Binop
              ( Mul,
                Binop
                  ( Add,
                    Binop (Mul, Binop (Add, Binop (Mul, Var voh, stride), Var vr), wi),
                    Binop (Add, Binop (Mul, Var vow, stride), Var vq) ),
                ci ),
            Var vc )
      in
      let idx_w =
        Binop
          ( Add,
            Binop
              ( Mul,
                Binop
                  (Add, Binop (Mul, Binop (Add, Binop (Mul, Var voc, kh), Var vr), kw), Var vq),
                ci ),
            Var vc )
      in
      [ loop voh ho
          [ loop vow wo
              [ loop voc co
                  [ loop vr kh
                      [ loop vq kw
                          [ loop vc ci
                              [ store i.dst idx_out
                                  (Binop
                                     ( Add,
                                       load i.dst idx_out,
                                       Binop (Mul, load (src 0) idx_in, load (src 1) idx_w) ))
                              ]
                          ]
                      ]
                  ]
              ]
          ]
      ]
    | Intrin.Dp4a ->
      let vg = fresh "g" and vj = fresh "j" in
      let open Expr in
      let idx = Binop (Add, Binop (Mul, Var vg, Int 4), Var vj) in
      [ loop vg (Expr.simplify (Binop (Div, p 0, Int 4)))
          [ loop vj (Int 4)
              [ store i.dst (Var vg)
                  (Binop
                     ( Add,
                       load i.dst (Var vg),
                       Binop (Mul, load (src 0) idx, load (src 1) idx) ))
              ]
          ]
      ]
  in
  let rec expand_block block =
    List.concat_map
      (fun stmt ->
        match stmt with
        | Stmt.Intrinsic i ->
          incr found;
          expand i
        | Stmt.For r -> [ Stmt.For { r with body = expand_block r.body } ]
        | Stmt.If r ->
          [ Stmt.If { r with then_ = expand_block r.then_; else_ = expand_block r.else_ } ]
        | s -> [ s ])
      block
  in
  let body = expand_block k.Kernel.body in
  if !found = 0 then Error "kernel contains no intrinsic to detensorize"
  else Ok (Kernel.with_body k body)
