lib/passes/memory_pass.ml: Expr Intrin Kernel Linear List Loop_pass Printf Rewrite Scope Stmt String Xpiler_ir
