lib/passes/pass.mli: Axis Expr Kernel Memory_pass Platform Scope Xpiler_ir Xpiler_machine
