lib/passes/loop_pass.ml: Axis Expr Hashtbl Kernel Linear List Printf Rewrite Stmt String Xpiler_ir
