lib/passes/rewrite.mli: Dtype Expr Kernel Stmt Xpiler_ir
