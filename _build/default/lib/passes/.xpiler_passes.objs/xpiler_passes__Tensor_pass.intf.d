lib/passes/tensor_pass.mli: Kernel Platform Xpiler_ir Xpiler_machine
