lib/passes/memory_pass.mli: Expr Kernel Scope Xpiler_ir
