lib/passes/rewrite.ml: Expr Kernel List Printf Stmt String Xpiler_ir
