lib/passes/tensor_pass.ml: Checker Dtype Expr Intrin Kernel Linear List Option Platform Printf Rewrite Scope Stmt String Xpiler_ir Xpiler_machine
