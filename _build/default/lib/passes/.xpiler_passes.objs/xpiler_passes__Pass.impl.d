lib/passes/pass.ml: Axis Expr Kernel Loop_pass Memory_pass Option Printf Result Scope Stmt Tensor_pass Xpiler_ir
