lib/passes/loop_pass.mli: Axis Kernel Xpiler_ir
