open Xpiler_ir

let rec rewrite_first p f block =
  match block with
  | [] -> None
  | s :: rest ->
    if p s then Some (f s @ rest)
    else begin
      let try_inner rebuild body =
        match rewrite_first p f body with
        | Some body' -> Some (rebuild body' :: rest)
        | None -> None
      in
      let inner =
        match s with
        | Stmt.For r -> try_inner (fun b -> Stmt.For { r with body = b }) r.body
        | Stmt.If r -> (
          match rewrite_first p f r.then_ with
          | Some t -> Some (Stmt.If { r with then_ = t } :: rest)
          | None -> try_inner (fun b -> Stmt.If { r with else_ = b }) r.else_)
        | Stmt.Let _ | Stmt.Assign _ | Stmt.Store _ | Stmt.Alloc _ | Stmt.Memcpy _
        | Stmt.Intrinsic _ | Stmt.Sync | Stmt.Annot _ -> None
      in
      match inner with
      | Some _ as result -> result
      | None -> (
        match rewrite_first p f rest with
        | Some rest' -> Some (s :: rest')
        | None -> None)
    end

let rewrite_loop var f block =
  rewrite_first
    (function Stmt.For r -> String.equal r.var var | _ -> false)
    (function
      | Stmt.For r -> f ~var:r.var ~lo:r.lo ~extent:r.extent ~kind:r.kind ~body:r.body
      | _ -> assert false)
    block

let count_matching select block =
  Stmt.fold (fun acc s -> if select s then acc + 1 else acc) 0 block

let rewrite_nth n select f block =
  let count = ref (-1) in
  Stmt.map_block
    (fun s ->
      if select s then begin
        incr count;
        if !count = n then Some (f s) else Some s
      end
      else Some s)
    block

let const_extent e =
  match Expr.simplify e with
  | Expr.Int n -> Ok n
  | e -> Error (Printf.sprintf "extent %s is not a compile-time constant" (Expr.to_string e))

let fresh_serial_names k n =
  let used = ref (Kernel.param_names k) in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.For r -> used := r.var :: !used
      | Stmt.Let r -> used := r.var :: !used
      | Stmt.Alloc r -> used := r.buf :: !used
      | _ -> ())
    k.Kernel.body;
  let rec pick i count acc =
    if count = 0 then List.rev acc
    else begin
      let candidate = Printf.sprintf "i%d" i in
      if List.mem candidate !used then pick (i + 1) count acc
      else begin
        used := candidate :: !used;
        pick (i + 1) (count - 1) (candidate :: acc)
      end
    end
  in
  pick 0 n []

let buffer_dtype k b =
  match
    List.find_opt
      (fun (p : Kernel.param) -> p.is_buffer && String.equal p.name b)
      k.Kernel.params
  with
  | Some p -> Some p.dtype
  | None -> (
    match List.find_opt (fun (name, _, _, _) -> String.equal name b) (Stmt.allocs k.Kernel.body) with
    | Some (_, _, dt, _) -> Some dt
    | None -> None)

let rec inline_leading_lets = function
  | Stmt.Let { var; value } :: rest -> inline_leading_lets (Stmt.subst_var var value rest)
  | block -> block
