open Xpiler_ir

(** Sequentialization / parallelization passes (Table 4, category 1). *)

exception Failed of string
(** Internal control flow of the passes; every public function catches it and
    returns [Error] instead. *)

val recovery : Kernel.t -> (Kernel.t, string) result
(** Convert every parallel loop into ordinary sequential loops ("from CUDA C
    to C"). Barrier regions are handled by lockstep-preserving fission: a
    thread loop whose body contains [Sync]s is split at each barrier into
    consecutive loops; a barrier nested inside a serial sub-loop is reached
    by first interchanging the thread loop inside it. The launch
    configuration is cleared and axis variables get plain serial names. *)

val bind : var:string -> axis:Axis.t -> Kernel.t -> (Kernel.t, string) result
(** Bind a sequential loop to a parallel built-in; the loop variable is
    renamed to the axis name and the launch configuration is extended. *)

val split : var:string -> factor:int -> Kernel.t -> (Kernel.t, string) result
(** [for v in E] becomes [for v_0 in E/f { for v_1 in f }]; a bounds guard is
    inserted when [f] does not divide [E]. *)

val fuse : var:string -> Kernel.t -> (Kernel.t, string) result
(** Merge the perfect nest [for v { for w }] into one loop over [E_v * E_w]
    (the paper's hyper-loop). *)

val reorder : var:string -> Kernel.t -> (Kernel.t, string) result
(** Interchange [for v { for w }] to [for w { for v }]; the nest must be
    perfect. *)

val expansion : var:string -> Kernel.t -> (Kernel.t, string) result
(** Loop fission: distribute the loop over its body's statement groups (each
    group is one writing statement plus the scalar definitions before it). *)

val contraction : var:string -> Kernel.t -> (Kernel.t, string) result
(** Merge consecutive loops with identical headers named [var] back into a
    single loop (producer folded into the consumer's body). *)
