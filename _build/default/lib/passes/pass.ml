open Xpiler_ir

type spec =
  | Loop_recovery
  | Loop_bind of { var : string; axis : Axis.t }
  | Loop_split of { var : string; factor : int }
  | Loop_fuse of { var : string }
  | Loop_reorder of { var : string }
  | Loop_expansion of { var : string }
  | Loop_contraction of { var : string }
  | Cache of {
      buf : string;
      scope : Scope.t;
      direction : Memory_pass.direction;
      under : string option;
      base : Expr.t;
      size : int;
    }
  | Rescope of { buf : string; scope : Scope.t }
  | Decache of { buf : string }
  | Pipeline of { var : string }
  | Tensorize
  | Detensorize

let name = function
  | Loop_recovery -> "loop-recovery"
  | Loop_bind _ -> "loop-bind"
  | Loop_split _ -> "loop-split"
  | Loop_fuse _ -> "loop-fuse"
  | Loop_reorder _ -> "loop-reorder"
  | Loop_expansion _ -> "loop-expansion"
  | Loop_contraction _ -> "loop-contraction"
  | Cache _ | Rescope _ | Decache _ -> "cache"
  | Pipeline _ -> "pipeline"
  | Tensorize -> "tensorize"
  | Detensorize -> "detensorize"

let family_names =
  [ "loop-recovery"; "loop-bind"; "loop-split"; "loop-fuse"; "loop-reorder";
    "loop-expansion"; "loop-contraction"; "cache"; "pipeline"; "tensorize"; "detensorize" ]

let describe = function
  | Loop_recovery -> "loop-recovery"
  | Loop_bind { var; axis } -> Printf.sprintf "loop-bind(%s -> %s)" var (Axis.to_string axis)
  | Loop_split { var; factor } -> Printf.sprintf "loop-split(%s, %d)" var factor
  | Loop_fuse { var } -> Printf.sprintf "loop-fuse(%s)" var
  | Loop_reorder { var } -> Printf.sprintf "loop-reorder(%s)" var
  | Loop_expansion { var } -> Printf.sprintf "loop-expansion(%s)" var
  | Loop_contraction { var } -> Printf.sprintf "loop-contraction(%s)" var
  | Cache { buf; scope; direction; under; base; size } ->
    Printf.sprintf "cache(%s -> %s, %s, under=%s, base=%s, size=%d)" buf
      (Scope.to_string scope)
      (match direction with
      | Memory_pass.Read -> "read"
      | Memory_pass.Write -> "write"
      | Memory_pass.Readwrite -> "readwrite")
      (Option.value ~default:"-" under)
      (Expr.to_string base) size
  | Rescope { buf; scope } -> Printf.sprintf "cache-rescope(%s -> %s)" buf (Scope.to_string scope)
  | Decache { buf } -> Printf.sprintf "cache-remove(%s)" buf
  | Pipeline { var } -> Printf.sprintf "pipeline(%s)" var
  | Tensorize -> "tensorize"
  | Detensorize -> "detensorize"

let apply ~platform spec k =
  let result =
    match spec with
    | Loop_recovery -> Loop_pass.recovery k
    | Loop_bind { var; axis } -> Loop_pass.bind ~var ~axis k
    | Loop_split { var; factor } -> Loop_pass.split ~var ~factor k
    | Loop_fuse { var } -> Loop_pass.fuse ~var k
    | Loop_reorder { var } -> Loop_pass.reorder ~var k
    | Loop_expansion { var } -> Loop_pass.expansion ~var k
    | Loop_contraction { var } -> Loop_pass.contraction ~var k
    | Cache { buf; scope; direction; under; base; size } ->
      Memory_pass.cache ~buf ~scope ~direction ?under ~base ~size k
    | Rescope { buf; scope } -> Memory_pass.rescope ~buf ~scope k
    | Decache { buf } -> Memory_pass.decache ~buf k
    | Pipeline { var } -> Memory_pass.pipeline ~var k
    | Tensorize -> Tensor_pass.tensorize ~platform k
    | Detensorize -> Tensor_pass.detensorize k
  in
  Result.map (Kernel.map_body Stmt.simplify) result
