open Xpiler_ir
open Xpiler_machine

(** (De)tensorization passes (Table 4, category 3). *)

val tensorize : platform:Platform.t -> Kernel.t -> (Kernel.t, string) result
(** Replace recognizable loop nests with the platform's specialized
    intrinsics: elementwise maps and scalar broadcasts become vector
    intrinsics, sum/max reductions become reduce intrinsics, matmul triple
    nests become [mma]/[mlp], and int8 dot-product nests become [dp4a].
    Fails when nothing in the kernel matches a pattern the platform
    supports, or when a matched extent violates the platform's alignment
    granularity. *)

val detensorize : Kernel.t -> (Kernel.t, string) result
(** Restore every intrinsic back into explicit loops with identical
    semantics. Fails when the kernel contains no intrinsic. *)
