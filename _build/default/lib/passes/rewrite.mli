open Xpiler_ir

(** Shared rewriting machinery for the transformation passes. *)

val rewrite_first :
  (Stmt.t -> bool) -> (Stmt.t -> Stmt.t list) -> Stmt.t list -> Stmt.t list option
(** Replace the first statement (pre-order) satisfying the predicate;
    [None] when nothing matched. *)

val rewrite_loop :
  string -> (var:string -> lo:Expr.t -> extent:Expr.t -> kind:Stmt.loop_kind ->
             body:Stmt.t list -> Stmt.t list) ->
  Stmt.t list -> Stmt.t list option
(** Rewrite the first [For] loop with the given variable. *)

val count_matching : (Stmt.t -> bool) -> Stmt.t list -> int
val rewrite_nth :
  int -> (Stmt.t -> bool) -> (Stmt.t -> Stmt.t) -> Stmt.t list -> Stmt.t list
(** Replace the [n]-th (0-based, traversal order) statement satisfying the
    predicate. *)

val const_extent : Expr.t -> (int, string) result
(** Loop extents the passes reshape must be compile-time constants. *)

val fresh_serial_names : Kernel.t -> int -> string list
(** [i0, i1, ...] avoiding every name already used in the kernel. *)

val buffer_dtype : Kernel.t -> string -> Dtype.t option
(** Element type of a parameter or allocated buffer. *)

val inline_leading_lets : Stmt.t list -> Stmt.t list
(** Substitute leading scalar [Let]s into the remainder of the block (used
    when fissioning barrier regions during loop recovery). *)
