open Xpiler_ir

exception Failed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Failed s)) fmt

let wrap_result f = match f () with k -> Ok k | exception Failed m -> Error m

(* ---- loop recovery ----------------------------------------------------- *)

let is_thread_axis = function
  | Axis.Thread_x | Axis.Thread_y | Axis.Thread_z | Axis.Core_id -> true
  | Axis.Block_x | Axis.Block_y | Axis.Block_z | Axis.Task_id | Axis.Cluster_id -> false

let contains_sync = Stmt.has_sync

(* split a block at its top-level Syncs *)
let split_at_syncs block =
  let rec go current acc = function
    | [] -> List.rev (List.rev current :: acc)
    | Stmt.Sync :: rest -> go [] (List.rev current :: acc) rest
    | s :: rest -> go (s :: current) acc rest
  in
  go [] [] block |> List.filter (fun seg -> seg <> [])

let wrap_serial loops body =
  List.fold_right
    (fun (var, lo, extent) acc ->
      [ Stmt.For { var; lo; extent; kind = Stmt.Serial; body = acc } ])
    loops body

(* lockstep-preserving sequentialization of a thread group: the loops list is
   the (flattened) thread nest, body is executed by its cartesian space *)
let rec lockstep loops body =
  if not (contains_sync body) then wrap_serial loops body
  else begin
    let segments = split_at_syncs body in
    match segments with
    | [] -> []
    | [ single ] -> (
      (* the barrier hides inside a sub-statement: interchange the thread
         loops into the serial loop that contains it *)
      match Rewrite.inline_leading_lets single with
      | [ Stmt.For r ] when r.kind = Stmt.Serial ->
        List.iter
          (fun (v, _, _) ->
            if
              Expr.contains_var v r.lo || Expr.contains_var v r.extent
            then fail "cannot interchange: serial loop bounds depend on thread index %s" v)
          loops;
        [ Stmt.For { r with body = lockstep loops r.body } ]
      | [ Stmt.If _ ] ->
        fail "barrier under divergent control flow cannot be sequentialized"
      | _ -> fail "barrier region is not a single serial loop after let-inlining")
    | segments -> List.concat_map (fun seg -> lockstep loops seg) segments
  end

let recovery (k : Kernel.t) =
  wrap_result (fun () ->
      let rec seq block = List.concat_map seq_stmt block
      and seq_stmt stmt =
        match stmt with
        | Stmt.For ({ kind = Stmt.Parallel ax; _ } as r) when is_thread_axis ax ->
          (* flatten the immediately-nested thread chain, as the hardware
             barrier covers the whole thread block *)
          let rec chain acc body =
            match body with
            | [ Stmt.For ({ kind = Stmt.Parallel ax'; _ } as r') ] when is_thread_axis ax' ->
              chain ((r'.var, r'.lo, r'.extent) :: acc) r'.body
            | _ -> (List.rev acc, body)
          in
          let inner_loops, innermost = chain [ (r.var, r.lo, r.extent) ] r.body in
          lockstep inner_loops (seq innermost)
        | Stmt.For ({ kind = Stmt.Parallel _; _ } as r) ->
          [ Stmt.For { r with kind = Stmt.Serial; body = seq r.body } ]
        | Stmt.For r -> [ Stmt.For { r with body = seq r.body } ]
        | Stmt.If r -> [ Stmt.If { r with then_ = seq r.then_; else_ = seq r.else_ } ]
        | s -> [ s ]
      in
      (* barriers inside thread groups are consumed by [lockstep]; any
         barrier left over was outside thread-level parallelism and is a
         no-op sequentially *)
      let rec drop_syncs block =
        List.concat_map
          (fun s ->
            match s with
            | Stmt.Sync -> []
            | Stmt.For r -> [ Stmt.For { r with body = drop_syncs r.body } ]
            | Stmt.If r ->
              [ Stmt.If { r with then_ = drop_syncs r.then_; else_ = drop_syncs r.else_ } ]
            | s -> [ s ])
          block
      in
      let body = drop_syncs (seq k.Kernel.body) in
      (* rename axis-named loop variables to plain serial names *)
      let axis_names = List.map Axis.to_string Axis.all in
      let counter = ref 0 in
      let k' = Kernel.with_launch (Kernel.with_body k body) [] in
      let fresh () =
        let names = Rewrite.fresh_serial_names k' 64 in
        fun () ->
          let n = List.nth names !counter in
          incr counter;
          n
      in
      let next = fresh () in
      let rec rename block =
        List.map
          (fun stmt ->
            match stmt with
            | Stmt.For r when List.mem r.var axis_names ->
              let v = next () in
              Stmt.For
                { r with
                  var = v;
                  body = rename (Stmt.subst_var r.var (Expr.Var v) r.body)
                }
            | Stmt.For r -> Stmt.For { r with body = rename r.body }
            | Stmt.If r -> Stmt.If { r with then_ = rename r.then_; else_ = rename r.else_ }
            | s -> s)
          block
      in
      Kernel.with_body k' (rename body))

(* ---- loop bind ---------------------------------------------------------- *)

let bind ~var ~axis (k : Kernel.t) =
  wrap_result (fun () ->
      if List.mem_assoc axis k.Kernel.launch then
        fail "axis %s is already bound" (Axis.to_string axis);
      let bound = ref 0 in
      let body =
        Rewrite.rewrite_loop var
          (fun ~var:_ ~lo ~extent ~kind ~body ->
            if kind <> Stmt.Serial then fail "loop %s is not sequential" var;
            (match Expr.simplify lo with
            | Expr.Int 0 -> ()
            | _ -> fail "loop %s must start at 0 to be bound" var);
            let extent_v =
              match Rewrite.const_extent extent with Ok n -> n | Error m -> fail "%s" m
            in
            bound := extent_v;
            let axis_name = Axis.to_string axis in
            [ Stmt.For
                { var = axis_name;
                  lo = Expr.Int 0;
                  extent = Expr.Int extent_v;
                  kind = Stmt.Parallel axis;
                  body = Stmt.subst_var var (Expr.Var axis_name) body
                }
            ])
          k.Kernel.body
      in
      match body with
      | None -> fail "no loop named %s" var
      | Some body ->
        Kernel.with_launch (Kernel.with_body k body) (k.Kernel.launch @ [ (axis, !bound) ]))

(* ---- loop split ---------------------------------------------------------- *)

let split ~var ~factor (k : Kernel.t) =
  wrap_result (fun () ->
      if factor <= 0 then fail "split factor must be positive";
      let body =
        Rewrite.rewrite_loop var
          (fun ~var ~lo ~extent ~kind ~body ->
            let e =
              match Rewrite.const_extent extent with Ok n -> n | Error m -> fail "%s" m
            in
            if factor > e then fail "split factor %d exceeds extent %d" factor e;
            let outer_var = var ^ "_0" and inner_var = var ^ "_1" in
            let recomposed =
              Linear.normalize
                Expr.(
                  Binop
                    ( Add,
                      lo,
                      Binop
                        (Add, Binop (Mul, Var outer_var, Int factor), Var inner_var) ))
            in
            let inner_body = Stmt.subst_var var recomposed body in
            let divides = e mod factor = 0 in
            let outer_extent = if divides then e / factor else ((e + factor - 1) / factor) in
            let guarded =
              if divides then inner_body
              else
                [ Stmt.If
                    { cond =
                        Expr.(
                          Binop
                            ( Lt,
                              Binop
                                (Add, Binop (Mul, Var outer_var, Int factor), Var inner_var),
                              Int e ));
                      then_ = inner_body;
                      else_ = []
                    }
                ]
            in
            [ Stmt.For
                { var = outer_var;
                  lo = Expr.Int 0;
                  extent = Expr.Int outer_extent;
                  kind;
                  body =
                    [ Stmt.For
                        { var = inner_var;
                          lo = Expr.Int 0;
                          extent = Expr.Int factor;
                          kind = Stmt.Serial;
                          body = guarded
                        }
                    ]
                }
            ])
          k.Kernel.body
      in
      match body with
      | None -> fail "no loop named %s" var
      | Some body -> Kernel.with_body k body)

(* ---- loop fuse ----------------------------------------------------------- *)

let fuse ~var (k : Kernel.t) =
  wrap_result (fun () ->
      let body =
        Rewrite.rewrite_loop var
          (fun ~var ~lo ~extent ~kind ~body ->
            (match Expr.simplify lo with
            | Expr.Int 0 -> ()
            | _ -> fail "fuse requires zero lower bound");
            match body with
            | [ Stmt.For inner ] when inner.kind = Stmt.Serial ->
              (match Expr.simplify inner.lo with
              | Expr.Int 0 -> ()
              | _ -> fail "fuse requires zero lower bound on the inner loop");
              let e1 =
                match Rewrite.const_extent extent with Ok n -> n | Error m -> fail "%s" m
              in
              let e2 =
                match Rewrite.const_extent inner.extent with
                | Ok n -> n
                | Error m -> fail "%s" m
              in
              let fused_var = var ^ "_f" in
              let b =
                Stmt.subst_var var
                  Expr.(Binop (Div, Var fused_var, Int e2))
                  (Stmt.subst_var inner.var
                     Expr.(Binop (Mod, Var fused_var, Int e2))
                     inner.body)
              in
              [ Stmt.For
                  { var = fused_var;
                    lo = Expr.Int 0;
                    extent = Expr.Int (e1 * e2);
                    kind;
                    body = b
                  }
              ]
            | _ -> fail "loop %s does not perfectly nest a serial loop" var)
          k.Kernel.body
      in
      match body with
      | None -> fail "no loop named %s" var
      | Some body -> Kernel.with_body k body)

(* ---- loop reorder -------------------------------------------------------- *)

(* interchange legality: within the 2-D iteration space, no store may hit the
   same address twice (write-write order would change), and any buffer both
   read and written must only be read at the address it stores in the same
   iteration (the read-modify-write idiom). Checked by enumerating the small
   constant iteration space with other variables fixed. *)
let interchange_legal ~v1 ~e1 ~v2 ~e2 body =
  if e1 * e2 > 4096 then false
  else begin
    let written = Stmt.buffers_written body and read = Stmt.buffers_read body in
    let rmw_ok =
      List.for_all
        (fun buf ->
          if not (List.mem buf read) then true
          else begin
            (* every load of [buf] must linearly equal some same-statement
               store index; conservatively require it equals the single store
               index of that buffer *)
            let store_idx = ref None and ok = ref true in
            Stmt.iter
              (fun s ->
                match s with
                | Stmt.Store { buf = b; index; _ } when String.equal b buf -> (
                  match !store_idx with
                  | None -> store_idx := Some index
                  | Some i -> if not (Linear.equal_linear i index) then ok := false)
                | _ -> ())
              body;
            (match !store_idx with
            | None -> ()
            | Some si ->
              Stmt.iter
                (fun s ->
                  Stmt.map_exprs
                    (Expr.map (function
                      | Expr.Load (b, idx) when String.equal b buf ->
                        if not (Linear.equal_linear idx si) then ok := false;
                        None
                      | _ -> None))
                    s
                  |> ignore)
                body);
            !ok
          end)
        written
    in
    let injective =
      (* per buffer, an address may be written from at most one iteration of
         the (v1, v2) space: writes within one iteration keep their program
         order under interchange, writes from different iterations do not *)
      let stores = ref [] in
      Stmt.iter
        (fun s -> match s with Stmt.Store r -> stores := (r.buf, r.index) :: !stores | _ -> ())
        body;
      (* evaluating with outer variables at 0 is exact only when, for every
         pair of stores to the same buffer, the index difference over the
         outer variables is constant; otherwise be conservative *)
      let pairwise_outer_constant =
        let rec pairs = function
          | [] -> true
          | (buf, idx) :: rest ->
            List.for_all
              (fun (buf', idx') ->
                (not (String.equal buf buf'))
                ||
                let d = Linear.decompose (Expr.Binop (Expr.Sub, idx, idx')) in
                let d = Linear.drop_var v1 (Linear.drop_var v2 d) in
                d.Linear.terms = [])
              rest
            && pairs rest
        in
        pairs !stores
      in
      let seen : (string * int, int * int) Hashtbl.t = Hashtbl.create 64 in
      let ok = ref pairwise_outer_constant in
      (try
         for a = 0 to e1 - 1 do
           for b = 0 to e2 - 1 do
             List.iter
               (fun (buf, index) ->
                 let v =
                   Expr.eval_int
                     (fun x -> if x = v1 then a else if x = v2 then b else 0)
                     index
                 in
                 match Hashtbl.find_opt seen (buf, v) with
                 | Some (a', b') when (a', b') <> (a, b) ->
                   ok := false;
                   raise Exit
                 | _ -> Hashtbl.replace seen (buf, v) (a, b))
               !stores
           done
         done
       with
      | Exit -> ()
      | _ -> ok := false);
      !ok
    in
    rmw_ok && injective
  end

let reorder ~var (k : Kernel.t) =
  wrap_result (fun () ->
      let body =
        Rewrite.rewrite_loop var
          (fun ~var ~lo ~extent ~kind ~body ->
            match body with
            | [ Stmt.For inner ] ->
              if Expr.contains_var var inner.lo || Expr.contains_var var inner.extent then
                fail "inner loop bounds depend on %s; cannot interchange" var;
              (match (Rewrite.const_extent extent, Rewrite.const_extent inner.extent) with
              | Ok e1, Ok e2 ->
                if not (interchange_legal ~v1:var ~e1 ~v2:inner.var ~e2 inner.body) then
                  fail "interchange of %s and %s would reorder dependent writes" var inner.var
              | _ -> fail "interchange requires constant extents");
              [ Stmt.For
                  { inner with
                    body =
                      [ Stmt.For { var; lo; extent; kind; body = inner.body } ]
                  }
              ]
            | _ -> fail "loop %s does not perfectly nest another loop" var)
          k.Kernel.body
      in
      match body with
      | None -> fail "no loop named %s" var
      | Some body -> Kernel.with_body k body)

(* ---- loop expansion (fission) -------------------------------------------- *)

let expansion ~var (k : Kernel.t) =
  wrap_result (fun () ->
      let body =
        Rewrite.rewrite_loop var
          (fun ~var ~lo ~extent ~kind ~body ->
            let body = Rewrite.inline_leading_lets body in
            List.iter
              (fun s ->
                match s with
                | Stmt.Assign _ -> fail "loop %s carries scalar state; cannot distribute" var
                | Stmt.Alloc _ -> fail "loop %s allocates; cannot distribute" var
                | Stmt.Sync -> fail "loop %s contains a barrier; cannot distribute" var
                | Stmt.Let _ -> fail "interior let blocks distribution of loop %s" var
                | _ -> ())
              body;
            if List.length body < 2 then fail "loop %s has a single statement" var;
            (* distribution reorders statements across iterations: reject any
               cross-statement dataflow (a buffer written by one statement
               and touched by another) *)
            List.iteri
              (fun i s ->
                let written = Stmt.buffers_written [ s ] in
                List.iteri
                  (fun j s' ->
                    if i <> j then begin
                      let touched =
                        Stmt.buffers_read [ s' ] @ Stmt.buffers_written [ s' ]
                      in
                      List.iter
                        (fun b ->
                          if List.mem b touched then
                            fail
                              "buffer %s flows between statements of loop %s; cannot distribute"
                              b var)
                        written
                    end)
                  body)
              body;
            List.map
              (fun s -> Stmt.For { var; lo; extent; kind; body = [ s ] })
              body)
          k.Kernel.body
      in
      match body with
      | None -> fail "no loop named %s" var
      | Some body -> Kernel.with_body k body)

(* ---- loop contraction ----------------------------------------------------- *)

(* fusing adjacent loops interleaves their iterations: legal only when every
   cross-loop dependence is iteration-aligned (the producer-consumer case the
   paper's pass targets) and no buffer is written by both loops *)
let fusion_legal body1 body2 =
  let w1 = Stmt.buffers_written body1 and w2 = Stmt.buffers_written body2 in
  let r1 = Stmt.buffers_read body1 and r2 = Stmt.buffers_read body2 in
  (* no write-write sharing, no anti-dependence loop2 -> loop1 *)
  List.for_all (fun b -> not (List.mem b w2)) w1
  && List.for_all (fun b -> not (List.mem b r1)) w2
  &&
  (* flow dependences loop1 -> loop2 must be index-aligned *)
  List.for_all
    (fun b ->
      if not (List.mem b r2) then true
      else begin
        let stores = ref [] and loads = ref [] in
        Stmt.iter
          (fun s ->
            match s with
            | Stmt.Store { buf; index; _ } when String.equal buf b ->
              stores := index :: !stores
            | _ -> ())
          body1;
        Stmt.iter
          (fun s ->
            ignore
              (Stmt.map_exprs
                 (Expr.map (function
                   | Expr.Load (buf, idx) when String.equal buf b ->
                     loads := idx :: !loads;
                     None
                   | _ -> None))
                 s))
          body2;
        match !stores with
        | [ si ] -> List.for_all (fun li -> Linear.equal_linear si li) !loads
        | _ -> false
      end)
    w1

let contraction ~var (k : Kernel.t) =
  wrap_result (fun () ->
      let merged = ref false in
      let rec merge_block block =
        match block with
        | Stmt.For r1 :: Stmt.For r2 :: rest
          when String.equal r1.var var && String.equal r2.var var
               && Expr.equal r1.lo r2.lo && Expr.equal r1.extent r2.extent
               && r1.kind = r2.kind && fusion_legal r1.body r2.body ->
          merged := true;
          merge_block (Stmt.For { r1 with body = r1.body @ r2.body } :: rest)
        | Stmt.For r :: rest -> Stmt.For { r with body = merge_block r.body } :: merge_block rest
        | Stmt.If r :: rest ->
          Stmt.If { r with then_ = merge_block r.then_; else_ = merge_block r.else_ }
          :: merge_block rest
        | s :: rest -> s :: merge_block rest
        | [] -> []
      in
      let body = merge_block k.Kernel.body in
      if not !merged then fail "no adjacent loops named %s to contract" var;
      Kernel.with_body k body)
