open Xpiler_ir
open Xpiler_machine
open Xpiler_ops

let platforms = [ Platform.Cuda; Platform.Bang; Platform.Hip; Platform.Vnni ]

let test_registry () =
  Alcotest.(check int) "21 operators" 21 (List.length Registry.all);
  Alcotest.(check int) "168 cases" 168 (List.length (Registry.cases ()));
  List.iter
    (fun (op : Opdef.t) ->
      Alcotest.(check int) (op.name ^ " has 8 shapes") 8 (List.length op.shapes))
    Registry.all

let test_serial_wellformed () =
  List.iter
    (fun (c : Registry.case) ->
      let k = c.op.serial c.shape in
      match Validate.check k with
      | Ok () -> ()
      | Error es -> Alcotest.fail (c.case_id ^ ": " ^ Validate.errors_to_string es))
    (Registry.cases ())

let test_serial_passes_own_unit_test () =
  (* first shape of each op, serial kernel vs itself: oracle sanity *)
  List.iter
    (fun (op : Opdef.t) ->
      let shape = List.hd op.shapes in
      match Unit_test.check ~trials:1 op shape (op.serial shape) with
      | Unit_test.Pass -> ()
      | Unit_test.Fail m -> Alcotest.fail (op.name ^ ": " ^ m))
    Registry.all

let test_corrupted_kernel_fails () =
  let op = Registry.find_exn "gemm" in
  let shape = List.hd op.shapes in
  let k = op.serial shape in
  (* perturb a loop bound: classic instruction/boundary error *)
  let bad =
    Kernel.map_body
      (Stmt.map_block (fun s ->
           match s with
           | Stmt.For ({ var = "p"; extent = Expr.Int n; _ } as r) ->
             Some (Stmt.For { r with extent = Expr.Int (n - 1) })
           | s -> Some s))
      k
  in
  match Unit_test.check ~trials:1 op shape bad with
  | Unit_test.Fail _ -> ()
  | Unit_test.Pass -> Alcotest.fail "corrupted kernel must fail its unit test"

let idiom_case pid (op : Opdef.t) shape =
  let platform = Platform.of_id pid in
  let k = Idiom.source pid op shape in
  (match Checker.compile platform k with
  | Ok () -> ()
  | Error es ->
    Alcotest.fail
      (Printf.sprintf "%s on %s does not compile:\n%s\n%s" op.name platform.Platform.name
         (Checker.errors_to_string es) (Kernel.to_string k)));
  match Unit_test.check ~trials:1 op shape k with
  | Unit_test.Pass -> ()
  | Unit_test.Fail m ->
    Alcotest.fail
      (Printf.sprintf "%s on %s: %s\n%s" op.name platform.Platform.name m (Kernel.to_string k))

let test_idioms_first_shape () =
  List.iter
    (fun (op : Opdef.t) ->
      let shape = List.hd op.shapes in
      List.iter (fun pid -> idiom_case pid op shape) platforms)
    Registry.all

let test_bang_gemm_idiom_is_tensorized () =
  let op = Registry.find_exn "gemm" in
  let k = Idiom.source Platform.Bang op (List.hd op.shapes) in
  Alcotest.(check bool) "mlp present" true
    (List.exists
       (fun (i : Intrin.t) -> Intrin.equal_op i.op Intrin.Mlp)
       (Stmt.intrinsics k.Kernel.body))

let test_bang_gemv_idiom_is_tensorized () =
  let op = Registry.find_exn "gemv" in
  let k = Idiom.source Platform.Bang op (List.hd op.shapes) in
  let ops = List.map (fun (i : Intrin.t) -> i.op) (Stmt.intrinsics k.Kernel.body) in
  Alcotest.(check bool) "dot product vectorized" true
    (List.mem Intrin.Vec_mul ops && List.mem Intrin.Vec_reduce_sum ops)

let test_bang_batch_gemm_idiom_is_tensorized () =
  let op = Registry.find_exn "batch_gemm" in
  let k = Idiom.source Platform.Bang op (List.hd op.shapes) in
  Alcotest.(check bool) "mlp present" true
    (List.exists
       (fun (i : Intrin.t) -> Intrin.equal_op i.op Intrin.Mlp)
       (Stmt.intrinsics k.Kernel.body));
  Alcotest.(check bool) "batch bound to tasks" true
    (List.mem Axis.Task_id (Stmt.axes_used k.Kernel.body))

let test_bang_attention_idiom_is_tensorized () =
  let op = Registry.find_exn "self_attention" in
  let k = Idiom.source Platform.Bang op (List.nth op.shapes 1) in
  let ops = List.map (fun (i : Intrin.t) -> i.op) (Stmt.intrinsics k.Kernel.body) in
  List.iter
    (fun o -> Alcotest.(check bool) (Intrin.op_name o ^ " used") true (List.mem o ops))
    [ Intrin.Vec_mul; Intrin.Vec_exp; Intrin.Vec_reduce_max; Intrin.Vec_reduce_sum;
      Intrin.Vec_scale ]

let test_bang_conv_idiom_is_tensorized () =
  let op = Registry.find_exn "conv2d_nhwc" in
  let k = Idiom.source Platform.Bang op (List.hd op.shapes) in
  Alcotest.(check bool) "conv intrinsic" true
    (List.exists
       (fun (i : Intrin.t) -> Intrin.equal_op i.op Intrin.Conv2d)
       (Stmt.intrinsics k.Kernel.body))

let test_bang_softmax_idiom_is_tensorized () =
  let op = Registry.find_exn "softmax" in
  let k = Idiom.source Platform.Bang op (List.hd op.shapes) in
  let ops = List.map (fun (i : Intrin.t) -> i.op) (Stmt.intrinsics k.Kernel.body) in
  Alcotest.(check bool) "exp vectorized" true (List.mem Intrin.Vec_exp ops);
  Alcotest.(check bool) "reduce vectorized" true (List.mem Intrin.Vec_reduce_sum ops)

let test_cuda_idioms_use_grid () =
  List.iter
    (fun name ->
      let op = Registry.find_exn name in
      let k = Idiom.source Platform.Cuda op (List.hd op.shapes) in
      Alcotest.(check bool) (name ^ " uses blockIdx") true
        (List.mem Axis.Block_x (Stmt.axes_used k.Kernel.body)))
    [ "add"; "relu"; "softmax"; "conv2d_nhwc"; "self_attention" ]

let test_cuda_gemm_uses_tensor_core () =
  let op = Registry.find_exn "gemm" in
  let k = Idiom.source Platform.Cuda op (List.hd op.shapes) in
  Alcotest.(check bool) "mma present" true
    (List.exists
       (fun (i : Intrin.t) -> Intrin.equal_op i.op Intrin.Mma)
       (Stmt.intrinsics k.Kernel.body));
  (* fragments spelled with wmma in the surface text *)
  let text = Idiom.source_text Platform.Cuda op (List.hd op.shapes) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "wmma::mma_sync in source" true (contains text "wmma::mma_sync");
  Alcotest.(check bool) "__fragment__ in source" true (contains text "__fragment__")

let test_idiom_source_text_parses_back () =
  List.iter
    (fun name ->
      let op = Registry.find_exn name in
      let shape = List.hd op.shapes in
      List.iter
        (fun pid ->
          let text = Idiom.source_text pid op shape in
          match Xpiler_lang.Parser.parse_platform pid text with
          | _ -> ()
          | exception Xpiler_lang.Parser.Parse_error m ->
            Alcotest.fail
              (Printf.sprintf "%s/%s does not re-parse: %s\n%s" name
                 (Platform.id_to_string pid) m text))
        platforms)
    [ "gemm"; "add"; "softmax"; "maxpool"; "conv1d" ]

(* property: a randomly chosen case's idiom preserves semantics on every
   platform *)
let prop_random_case_idioms =
  let cases = Array.of_list (Registry.cases ()) in
  QCheck.Test.make ~name:"random case idioms are correct on all platforms" ~count:12
    (QCheck.int_range 0 (Array.length cases - 1))
    (fun i ->
      let c = cases.(i) in
      List.for_all
        (fun pid ->
          let k = Idiom.source pid c.op c.shape in
          Unit_test.check ~trials:1 c.op c.shape k = Unit_test.Pass)
        platforms)

let () =
  Alcotest.run "ops"
    [ ( "registry",
        [ Alcotest.test_case "inventory" `Quick test_registry;
          Alcotest.test_case "serial kernels well-formed" `Quick test_serial_wellformed;
          Alcotest.test_case "serial passes unit test" `Quick test_serial_passes_own_unit_test;
          Alcotest.test_case "corrupted kernel fails" `Quick test_corrupted_kernel_fails
        ] );
      ( "idioms",
        [ Alcotest.test_case "all ops, first shape, 4 platforms" `Slow test_idioms_first_shape;
          Alcotest.test_case "bang gemm tensorized" `Quick test_bang_gemm_idiom_is_tensorized;
          Alcotest.test_case "bang softmax tensorized" `Quick
            test_bang_softmax_idiom_is_tensorized;
          Alcotest.test_case "bang gemv tensorized" `Quick test_bang_gemv_idiom_is_tensorized;
          Alcotest.test_case "bang batch-gemm tensorized" `Quick
            test_bang_batch_gemm_idiom_is_tensorized;
          Alcotest.test_case "bang attention tensorized" `Quick
            test_bang_attention_idiom_is_tensorized;
          Alcotest.test_case "bang conv tensorized" `Quick test_bang_conv_idiom_is_tensorized;
          Alcotest.test_case "cuda idioms use grid" `Quick test_cuda_idioms_use_grid;
          Alcotest.test_case "cuda gemm tensor core" `Quick test_cuda_gemm_uses_tensor_core;
          Alcotest.test_case "source text re-parses" `Quick test_idiom_source_text_parses_back
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_random_case_idioms ])
    ]
