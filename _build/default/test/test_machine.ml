open Xpiler_ir
open Xpiler_machine

let rng () = Xpiler_util.Rng.create 42

(* Hand-built tiled GEMM kernel: grid over row blocks, 16 threads per block,
   cooperative load of a B column tile into shared memory with barriers. *)
let gemm_shapes = (32, 24, 16) (* M, N, K *)

let vecadd_kernel =
  let open Expr.Infix in
  Kernel.make ~name:"vecadd"
    ~params:[ Builder.buffer "a"; Builder.buffer "b"; Builder.buffer "c"; Builder.scalar "n" ]
    ~launch:[ (Axis.Block_x, 4); (Axis.Thread_x, 8) ]
    [ Builder.par_for Axis.Block_x "blockIdx.x" (int 4)
        [ Builder.par_for Axis.Thread_x "threadIdx.x" (int 8)
            [ Builder.let_ "i" ((v "blockIdx.x" * int 8) + v "threadIdx.x");
              Builder.if_
                (v "i" < v "n")
                [ Builder.store "c" (v "i") (load "a" (v "i") + load "b" (v "i")) ]
            ]
        ]
    ]

let test_vecadd () =
  let r = rng () in
  let a = Tensor.random r 32 and b = Tensor.random r 32 in
  let c = Tensor.create 32 in
  let _ =
    Interp.run vecadd_kernel
      [ ("a", Interp.Buf a); ("b", Interp.Buf b); ("c", Interp.Buf c);
        ("n", Interp.Scalar_int 32) ]
  in
  let expected = Tensor.create 32 in
  for i = 0 to 31 do
    Tensor.set expected i (Tensor.get a i +. Tensor.get b i)
  done;
  Alcotest.(check bool) "vecadd matches" true (Tensor.allclose c expected)

(* block-wise reversal through shared memory: correct only with the barrier *)
let reverse_kernel ~with_sync =
  let open Expr.Infix in
  let body_after_load =
    [ Builder.store "out" ((v "blockIdx.x" * int 16) + v "threadIdx.x")
        (load "tile" (int 15 - v "threadIdx.x"))
    ]
  in
  let thread_body =
    Builder.store "tile" (v "threadIdx.x")
      (load "inp" ((v "blockIdx.x" * int 16) + v "threadIdx.x"))
    :: (if with_sync then [ Builder.sync ] else [])
    @ body_after_load
  in
  Kernel.make ~name:"rev"
    ~params:[ Builder.buffer "inp"; Builder.buffer "out" ]
    ~launch:[ (Axis.Block_x, 2); (Axis.Thread_x, 16) ]
    [ Builder.par_for Axis.Block_x "blockIdx.x" (int 2)
        [ Builder.alloc "tile" Scope.Shared 16;
          Builder.par_for Axis.Thread_x "threadIdx.x" (int 16) thread_body
        ]
    ]

let run_reverse ~with_sync =
  let r = rng () in
  let inp = Tensor.random r 32 in
  let out = Tensor.create 32 in
  let _ =
    Interp.run (reverse_kernel ~with_sync) [ ("inp", Interp.Buf inp); ("out", Interp.Buf out) ]
  in
  let expected = Tensor.create 32 in
  for b = 0 to 1 do
    for t = 0 to 15 do
      Tensor.set expected ((b * 16) + t) (Tensor.get inp ((b * 16) + (15 - t)))
    done
  done;
  Tensor.allclose out expected

let test_sync_semantics () =
  Alcotest.(check bool) "with barrier: correct" true (run_reverse ~with_sync:true);
  Alcotest.(check bool) "without barrier: race exposed" false (run_reverse ~with_sync:false)

(* cooperative tiled GEMM with barriers inside a serial K-tile loop *)
let tiled_gemm =
  let m, n, k = gemm_shapes in
  let ts = 8 in
  let row_blocks = m / ts and k_tiles = k / ts in
  let open Expr.Infix in
  (* one block per 8 rows; 8 threads; tiles of B columns staged in shared *)
  Kernel.make ~name:"gemm"
    ~params:
      [ Builder.buffer "A"; Builder.buffer "B"; Builder.buffer "C"; Builder.scalar "M";
        Builder.scalar "N"; Builder.scalar "K" ]
    ~launch:[ (Axis.Block_x, row_blocks); (Axis.Thread_x, ts) ]
    [ Builder.par_for Axis.Block_x "blockIdx.x" (int row_blocks)
        [ Builder.alloc "Btile" Scope.Shared (Stdlib.( * ) ts n);
          Builder.par_for Axis.Thread_x "threadIdx.x" (int ts)
            [ Builder.let_ "row" ((v "blockIdx.x" * int ts) + v "threadIdx.x");
              Builder.for_ "k0" (int k_tiles)
                [ (* each thread stages one row of the B tile *)
                  Builder.for_ "j" (v "N")
                    [ Builder.store "Btile" ((v "threadIdx.x" * v "N") + v "j")
                        (load "B" ((((v "k0" * int ts) + v "threadIdx.x") * v "N") + v "j"))
                    ];
                  Builder.sync;
                  Builder.for_ "j" (v "N")
                    [ Builder.let_ "acc"
                        (Expr.Select
                           (v "k0" = int 0, Expr.Float 0.0, load "C" ((v "row" * v "N") + v "j")));
                      Builder.for_ "kk" (int ts)
                        [ Builder.assign "acc"
                            (v "acc"
                            + (load "A" ((v "row" * v "K") + (v "k0" * int ts) + v "kk")
                              * load "Btile" ((v "kk" * v "N") + v "j")))
                        ];
                      Builder.store "C" ((v "row" * v "N") + v "j") (v "acc")
                    ];
                  Builder.sync
                ]
            ]
        ]
    ]

let reference_gemm a b m n k =
  let c = Tensor.create (m * n) in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for l = 0 to k - 1 do
        acc := !acc +. (Tensor.get a ((i * k) + l) *. Tensor.get b ((l * n) + j))
      done;
      Tensor.set c ((i * n) + j) !acc
    done
  done;
  c

let test_tiled_gemm () =
  let m, n, k = gemm_shapes in
  let r = rng () in
  let a = Tensor.random r (m * k) and b = Tensor.random r (k * n) in
  let c = Tensor.create (m * n) in
  let _ =
    Interp.run tiled_gemm
      [ ("A", Interp.Buf a); ("B", Interp.Buf b); ("C", Interp.Buf c);
        ("M", Interp.Scalar_int m); ("N", Interp.Scalar_int n); ("K", Interp.Scalar_int k) ]
  in
  Alcotest.(check bool) "tiled gemm matches reference" true
    (Tensor.allclose c (reference_gemm a b m n k))

let test_intrinsic_mlp () =
  let r = rng () in
  let a = Tensor.random r 12 (* 3x4 *) and b = Tensor.random r 20 (* 4x5 *) in
  let c = Tensor.create 15 in
  let k =
    Kernel.make ~name:"mlp"
      ~params:[ Builder.buffer "a"; Builder.buffer "b"; Builder.buffer "c" ]
      [ Builder.intrin Intrin.Mlp ~dst:("c", Expr.Int 0)
          ~srcs:[ ("a", Expr.Int 0); ("b", Expr.Int 0) ]
          [ Expr.Int 3; Expr.Int 4; Expr.Int 5 ]
      ]
  in
  let _ = Interp.run k [ ("a", Interp.Buf a); ("b", Interp.Buf b); ("c", Interp.Buf c) ] in
  Alcotest.(check bool) "mlp = gemm" true (Tensor.allclose c (reference_gemm a b 3 5 4))

let test_intrinsic_dp4a () =
  let a = Tensor.of_array ~dtype:Dtype.I8 [| 1.; 2.; 3.; 4.; -1.; 0.; 2.; 5. |] in
  let b = Tensor.of_array ~dtype:Dtype.I8 [| 2.; 2.; 2.; 2.; 3.; 3.; 3.; 3. |] in
  let c = Tensor.create ~dtype:Dtype.I32 2 in
  let k =
    Kernel.make ~name:"dp4a"
      ~params:[ Builder.buffer ~dtype:Dtype.I8 "a"; Builder.buffer ~dtype:Dtype.I8 "b";
                Builder.buffer ~dtype:Dtype.I32 "c" ]
      [ Builder.intrin Intrin.Dp4a ~dst:("c", Expr.Int 0)
          ~srcs:[ ("a", Expr.Int 0); ("b", Expr.Int 0) ]
          [ Expr.Int 8 ]
      ]
  in
  let _ = Interp.run k [ ("a", Interp.Buf a); ("b", Interp.Buf b); ("c", Interp.Buf c) ] in
  Alcotest.(check (float 1e-9)) "group 0" 20.0 (Tensor.get c 0);
  Alcotest.(check (float 1e-9)) "group 1" 18.0 (Tensor.get c 1)

let test_oob_raises () =
  let k =
    Kernel.make ~name:"oob" ~params:[ Builder.buffer "a" ]
      [ Builder.store "a" (Expr.Int 100) (Expr.Float 1.0) ]
  in
  let a = Tensor.create 4 in
  Alcotest.check_raises "oob store"
    (Interp.Runtime_error "out-of-bounds write a[100] (size 4)") (fun () ->
      ignore (Interp.run k [ ("a", Interp.Buf a) ]))

let test_fuel () =
  let open Expr.Infix in
  let k =
    Kernel.make ~name:"spin" ~params:[ Builder.buffer "a" ]
      [ Builder.for_ "i" (int 1000000)
          [ Builder.for_ "j" (int 1000000) [ Builder.store "a" (int 0) (flt 1.0) ] ]
      ]
  in
  let a = Tensor.create 1 in
  match Interp.run ~fuel:10_000 k [ ("a", Interp.Buf a) ] with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_run_prefix () =
  let open Expr.Infix in
  let k =
    Kernel.make ~name:"fill" ~params:[ Builder.buffer "a" ]
      [ Builder.for_ "i" (int 10) [ Builder.store "a" (v "i") (flt 1.0) ] ]
  in
  let a = Tensor.create 10 in
  let stats = Interp.run_prefix k ~stop_after:4 [ ("a", Interp.Buf a) ] in
  Alcotest.(check int) "stopped after 4 stores" 4 stats.stores;
  Alcotest.(check (float 0.0)) "a[3] written" 1.0 (Tensor.get a 3);
  Alcotest.(check (float 0.0)) "a[4] untouched" 0.0 (Tensor.get a 4)

(* ---- checker ---------------------------------------------------------- *)

let nram_alloc_kernel =
  Kernel.make ~name:"k" ~params:[ Builder.buffer "a" ]
    [ Builder.alloc "buf" Scope.Nram 64;
      Builder.memcpy ~dst:"buf" ~dst_off:(Expr.Int 0) ~src:"a" ~src_off:(Expr.Int 0)
        (Expr.Int 64)
    ]

let test_checker_scope () =
  (match Checker.compile Platform.bang nram_alloc_kernel with
  | Ok () -> ()
  | Error es -> Alcotest.fail ("bang should accept nram: " ^ Checker.errors_to_string es));
  match Checker.compile Platform.cuda nram_alloc_kernel with
  | Ok () -> Alcotest.fail "cuda must reject nram"
  | Error es ->
    Alcotest.(check bool) "memory error" true
      (List.exists (fun (e : Checker.error) -> e.category = `Memory) es)

let test_checker_axis () =
  let k =
    Kernel.make ~name:"k" ~params:[ Builder.buffer "a" ]
      ~launch:[ (Axis.Task_id, 16) ]
      [ Builder.par_for Axis.Task_id "taskId" (Expr.Int 16)
          [ Builder.store "a" (Expr.Var "taskId") (Expr.Float 1.0) ]
      ]
  in
  (match Checker.compile Platform.bang k with
  | Ok () -> ()
  | Error es -> Alcotest.fail (Checker.errors_to_string es));
  match Checker.compile Platform.cuda k with
  | Ok () -> Alcotest.fail "cuda must reject taskId"
  | Error es ->
    Alcotest.(check bool) "parallelism error" true
      (List.exists (fun (e : Checker.error) -> e.category = `Parallelism) es)

let test_checker_intrinsic_platform () =
  let k =
    Kernel.make ~name:"k" ~params:[ Builder.buffer "x" ]
      [ Builder.alloc "n1" Scope.Nram 64; Builder.alloc "n2" Scope.Nram 64;
        Builder.intrin Intrin.Vec_add ~dst:("n1", Expr.Int 0)
          ~srcs:[ ("n1", Expr.Int 0); ("n2", Expr.Int 0) ]
          [ Expr.Int 64 ]
      ]
  in
  (match Checker.compile Platform.bang k with
  | Ok () -> ()
  | Error es -> Alcotest.fail (Checker.errors_to_string es));
  match Checker.compile Platform.vnni k with
  | Ok () -> Alcotest.fail "vnni lacks nram"
  | Error _ -> ()

let test_checker_alignment () =
  let k =
    Kernel.make ~name:"k" ~params:[ Builder.buffer "x" ]
      [ Builder.alloc "n1" Scope.Nram 70; Builder.alloc "n2" Scope.Nram 70;
        Builder.intrin Intrin.Vec_add ~dst:("n1", Expr.Int 0)
          ~srcs:[ ("n1", Expr.Int 0); ("n2", Expr.Int 0) ]
          [ Expr.Int 70 ]
      ]
  in
  match Checker.compile Platform.bang k with
  | Ok () -> Alcotest.fail "bang requires 64-element alignment"
  | Error es ->
    Alcotest.(check bool) "instruction error" true
      (List.exists (fun (e : Checker.error) -> e.category = `Instruction) es)

let test_checker_capacity () =
  let k =
    Kernel.make ~name:"k" ~params:[ Builder.buffer "x" ]
      [ Builder.alloc "big" Scope.Nram (1024 * 1024) ]
  in
  match Checker.compile Platform.bang k with
  | Ok () -> Alcotest.fail "over-capacity nram"
  | Error _ -> ()

let test_checker_sync_on_cpu () =
  let k = Kernel.make ~name:"k" ~params:[] [ Builder.sync ] in
  match Checker.compile Platform.vnni k with
  | Ok () -> Alcotest.fail "vnni has no sync"
  | Error _ -> ()

(* ---- cost model -------------------------------------------------------- *)

let test_cost_cache_reduces_traffic () =
  let open Expr.Infix in
  (* naive: read a from global N*R times; cached: one memcpy then on-chip *)
  let naive =
    Kernel.make ~name:"naive" ~params:[ Builder.buffer "a"; Builder.buffer "o" ]
      [ Builder.for_ "r" (int 64)
          [ Builder.for_ "i" (int 1024)
              [ Builder.store "o" (v "i") (load "a" (v "i") * flt 2.0) ]
          ]
      ]
  in
  let cached =
    Kernel.make ~name:"cached" ~params:[ Builder.buffer "a"; Builder.buffer "o" ]
      [ Builder.alloc "buf" Scope.Nram 1024;
        Builder.memcpy ~dst:"buf" ~dst_off:(int 0) ~src:"a" ~src_off:(int 0) (int 1024);
        Builder.for_ "r" (int 64)
          [ Builder.for_ "i" (int 1024)
              [ Builder.store "o" (v "i") (load "buf" (v "i") * flt 2.0) ]
          ]
      ]
  in
  let fn = (Costmodel.extract_features naive ~shapes:[]).offchip_bytes in
  let fc = (Costmodel.extract_features cached ~shapes:[]).offchip_bytes in
  Alcotest.(check bool) "caching reduces off-chip traffic" true
    (Stdlib.( < ) fc (fn *. 0.6))

let test_cost_parallel_speedup () =
  let open Expr.Infix in
  let seq =
    Kernel.make ~name:"seq" ~params:[ Builder.buffer "a" ]
      [ Builder.for_ "i" (int 65536) [ Builder.store "a" (int 0) (v "i" * int 3) ] ]
  in
  let par =
    Kernel.make ~name:"par" ~params:[ Builder.buffer "a" ]
      ~launch:[ (Axis.Block_x, 256); (Axis.Thread_x, 256) ]
      [ Builder.par_for Axis.Block_x "b" (int 256)
          [ Builder.par_for Axis.Thread_x "t" (int 256)
              [ Builder.store "a" (int 0) (v "b" * v "t") ]
          ]
      ]
  in
  let ts = (Costmodel.estimate Platform.cuda seq ~shapes:[]).seconds in
  let tp = (Costmodel.estimate Platform.cuda par ~shapes:[]).seconds in
  Alcotest.(check bool) "parallel faster" true (Stdlib.( < ) tp ts)

let test_cost_tensorize_faster () =
  let open Expr.Infix in
  let scalar =
    Kernel.make ~name:"s" ~params:[ Builder.buffer "a"; Builder.buffer "b"; Builder.buffer "c" ]
      [ Builder.for_ "i" (int 512)
          [ Builder.for_ "j" (int 512)
              [ Builder.let_ "acc" (flt 0.0);
                Builder.for_ "k" (int 512)
                  [ Builder.assign "acc"
                      (v "acc" + (load "a" ((v "i" * int 512) + v "k")
                                 * load "b" ((v "k" * int 512) + v "j")))
                  ];
                Builder.store "c" ((v "i" * int 512) + v "j") (v "acc")
              ]
          ]
      ]
  in
  let tensorized =
    Kernel.make ~name:"t" ~params:[ Builder.buffer "a"; Builder.buffer "b"; Builder.buffer "c" ]
      [ Builder.alloc "na" Scope.Nram 262144;
        Builder.alloc "nb" Scope.Wram 262144;
        Builder.alloc "nc" Scope.Nram 262144;
        Builder.memcpy ~dst:"na" ~dst_off:(int 0) ~src:"a" ~src_off:(int 0) (int 262144);
        Builder.memcpy ~dst:"nb" ~dst_off:(int 0) ~src:"b" ~src_off:(int 0) (int 262144);
        Builder.intrin Intrin.Mlp ~dst:("nc", int 0)
          ~srcs:[ ("na", int 0); ("nb", int 0) ]
          [ int 512; int 512; int 512 ];
        Builder.memcpy ~dst:"c" ~dst_off:(int 0) ~src:"nc" ~src_off:(int 0) (int 262144)
      ]
  in
  let ts = (Costmodel.estimate Platform.bang scalar ~shapes:[]).seconds in
  let tt = (Costmodel.estimate Platform.bang tensorized ~shapes:[]).seconds in
  Alcotest.(check bool) "tensorized much faster" true (Stdlib.( < ) (tt *. 10.0) ts)

(* the feature extractor's counts agree with what the interpreter executes *)
let test_costmodel_cross_validation () =
  let check_op name =
    let op = Xpiler_ops.Registry.find_exn name in
    let shape = List.hd op.Xpiler_ops.Opdef.shapes in
    let k = Xpiler_ops.Idiom.source Platform.Bang op shape in
    let rng = Xpiler_util.Rng.create 17 in
    let args = Xpiler_ops.Unit_test.make_args rng op shape in
    let stats = Interp.run k args in
    let f = Costmodel.extract_features k ~shapes:[] in
    let modelled = f.Costmodel.vector_elems +. f.Costmodel.tensor_macs in
    Alcotest.(check (float 1e-6))
      (name ^ ": intrinsic elements modelled = executed")
      (float_of_int stats.Interp.intrinsic_elems)
      modelled;
    (* every memcpy element moves bytes on both sides; the model must charge
       at least that much traffic *)
    Alcotest.(check bool) (name ^ ": memcpy traffic covered") true
      (f.Costmodel.offchip_bytes +. f.Costmodel.onchip_bytes
      >= 8.0 *. float_of_int stats.Interp.memcpy_elems)
  in
  List.iter check_op [ "add"; "gemm"; "softmax"; "conv2d_nhwc"; "gemv" ]

(* property: fibers with barriers always compute the same result as a
   sequential phase-by-phase reference on a family of stencil programs *)
let prop_barrier_determinism =
  QCheck.Test.make ~name:"barrier execution is deterministic" ~count:50
    QCheck.(int_range 1 30)
    (fun n ->
      let k =
        let open Expr.Infix in
        Kernel.make ~name:"shift"
          ~params:[ Builder.buffer "inp"; Builder.buffer "out" ]
          ~launch:[ (Axis.Thread_x, n) ]
          [ Builder.alloc "tile" Scope.Shared n;
            Builder.par_for Axis.Thread_x "t" (int n)
              [ Builder.store "tile" (v "t") (load "inp" (v "t"));
                Builder.sync;
                Builder.store "out" (v "t") (load "tile" ((v "t" + int 1) % int n))
              ]
          ]
      in
      let r = Xpiler_util.Rng.create n in
      let inp = Tensor.random r n in
      let out1 = Tensor.create n and out2 = Tensor.create n in
      let _ = Interp.run k [ ("inp", Interp.Buf inp); ("out", Interp.Buf out1) ] in
      let _ = Interp.run k [ ("inp", Interp.Buf inp); ("out", Interp.Buf out2) ] in
      let expected = Tensor.create n in
      for t = 0 to n - 1 do
        Tensor.set expected t (Tensor.get inp ((t + 1) mod n))
      done;
      Tensor.allclose out1 expected && Tensor.allclose out1 out2)

let () =
  Alcotest.run "machine"
    [ ( "interp",
        [ Alcotest.test_case "vecadd" `Quick test_vecadd;
          Alcotest.test_case "sync semantics" `Quick test_sync_semantics;
          Alcotest.test_case "tiled gemm" `Quick test_tiled_gemm;
          Alcotest.test_case "mlp intrinsic" `Quick test_intrinsic_mlp;
          Alcotest.test_case "dp4a intrinsic" `Quick test_intrinsic_dp4a;
          Alcotest.test_case "out-of-bounds" `Quick test_oob_raises;
          Alcotest.test_case "fuel" `Quick test_fuel;
          Alcotest.test_case "run prefix" `Quick test_run_prefix
        ] );
      ( "checker",
        [ Alcotest.test_case "scope legality" `Quick test_checker_scope;
          Alcotest.test_case "axis legality" `Quick test_checker_axis;
          Alcotest.test_case "intrinsic platform" `Quick test_checker_intrinsic_platform;
          Alcotest.test_case "alignment" `Quick test_checker_alignment;
          Alcotest.test_case "capacity" `Quick test_checker_capacity;
          Alcotest.test_case "sync on cpu" `Quick test_checker_sync_on_cpu
        ] );
      ( "costmodel",
        [ Alcotest.test_case "cache reduces traffic" `Quick test_cost_cache_reduces_traffic;
          Alcotest.test_case "cross-validation vs interpreter" `Quick
            test_costmodel_cross_validation;
          Alcotest.test_case "parallel speedup" `Quick test_cost_parallel_speedup;
          Alcotest.test_case "tensorize faster" `Quick test_cost_tensorize_faster
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_barrier_determinism ])
    ]
