open Xpiler_ir
open Xpiler_machine
open Xpiler_ops
open Xpiler_neural
open Xpiler_repair

let rng seed = Xpiler_util.Rng.create seed

let gemm = Registry.find_exn "gemm"
let gemm_shape = List.hd gemm.Opdef.shapes
let bang = Platform.bang

let bang_gemm () = Idiom.source Platform.Bang gemm gemm_shape
let cuda_gemm () = Idiom.source Platform.Cuda gemm gemm_shape

(* ---- fault injection ------------------------------------------------------- *)

let test_fault_bound_breaks () =
  let k = cuda_gemm () in
  match Fault.inject_bound (rng 5) k with
  | None -> Alcotest.fail "no bound site"
  | Some (k', f) ->
    Alcotest.(check bool) "detail severity" true (f.severity = Fault.Detail);
    Alcotest.(check bool) "unit test fails or kernel unchanged semantics" true
      (Unit_test.check ~trials:1 gemm gemm_shape k' <> Unit_test.Pass
      || Kernel.equal k k' = false)

let test_fault_param_breaks () =
  let k = bang_gemm () in
  match Fault.inject_param (rng 7) k with
  | None -> Alcotest.fail "no param site"
  | Some (k', _) ->
    Alcotest.(check bool) "fails unit test" true
      (Unit_test.check ~trials:1 gemm gemm_shape k' <> Unit_test.Pass)

let test_fault_structural_memory_compile () =
  let k = bang_gemm () in
  (* force the wrong-scope variant by trying seeds until one flips a scope *)
  let rec find seed =
    if seed > 40 then Alcotest.fail "no memory fault found"
    else
      match Fault.inject (rng seed) ~target:bang Fault.Structural Fault.Memory k with
      | Some (k', f) when f.description = "placed a buffer in the wrong memory space" ->
        (k', f)
      | _ -> find (seed + 1)
  in
  let k', _ = find 0 in
  match Checker.compile bang k' with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong scope must fail compilation"

let test_fault_foreign_axis_compile () =
  let k = bang_gemm () in
  match Fault.inject (rng 3) ~target:bang Fault.Structural Fault.Parallelism k with
  | None -> Alcotest.fail "no parallel site"
  | Some (k', _) -> (
    match Checker.compile bang k' with
    | Error es ->
      Alcotest.(check bool) "parallelism category" true
        (List.exists (fun (e : Checker.error) -> e.category = `Parallelism) es)
    | Ok () -> Alcotest.fail "foreign builtin must fail compilation")

(* ---- localization ------------------------------------------------------------ *)

let test_localize_finds_failing_buffer () =
  let k = bang_gemm () in
  match Fault.inject_param (rng 11) k with
  | None -> Alcotest.fail "no param site"
  | Some (k', _) ->
    let report = Localize.localize ~op:gemm ~shape:gemm_shape k' in
    Alcotest.(check bool) "C diverges" true (List.mem "C" report.failing_buffers);
    Alcotest.(check bool) "sites found" true (report.sites <> [])

let test_localize_clean_kernel () =
  let report = Localize.localize ~op:gemm ~shape:gemm_shape (bang_gemm ()) in
  Alcotest.(check (list string)) "no failing buffers" [] report.failing_buffers;
  Alcotest.(check (option string)) "no runtime error" None report.runtime_error

let test_localize_flags_dynamic_control_flow () =
  let da = Registry.find_exn "deformable_attention" in
  let shape = List.hd da.Opdef.shapes in
  let k = da.Opdef.serial shape in
  (* corrupt a store index inside the data-dependent corner guard *)
  let corrupted =
    Kernel.map_body
      (Stmt.map_block (fun s ->
           match s with
           | Stmt.Store ({ buf = "out"; index; _ } as r) ->
             Some (Stmt.Store { r with index = Expr.Binop (Expr.Add, index, Expr.Int 1) })
           | s -> Some s))
      k
  in
  let report = Localize.localize ~op:da ~shape corrupted in
  Alcotest.(check bool) "flagged unrepairable" true (report.unrepairable <> [])

(* ---- repair -------------------------------------------------------------------- *)

let repairable_fault ?(kernel = bang_gemm) inject seed =
  let k = kernel () in
  match inject (rng seed) k with
  | None -> Alcotest.fail "no site"
  | Some (k', _) ->
    if Unit_test.check ~trials:1 gemm gemm_shape k' = Unit_test.Pass then None else Some k'

let test_repair_bound () =
  match repairable_fault ~kernel:cuda_gemm Fault.inject_bound 21 with
  | None -> Alcotest.fail "fault did not break the kernel"
  | Some broken -> (
    match Repairer.repair ~platform:Platform.cuda ~op:gemm ~shape:gemm_shape broken with
    | Repairer.Repaired { kernel; _ } ->
      Alcotest.(check bool) "repaired kernel passes" true
        (Unit_test.check gemm gemm_shape kernel = Unit_test.Pass)
    | Repairer.Gave_up { reason; _ } -> Alcotest.fail ("gave up: " ^ reason))

let test_repair_param () =
  match repairable_fault Fault.inject_param 33 with
  | None -> Alcotest.fail "fault did not break the kernel"
  | Some broken -> (
    match Repairer.repair ~platform:bang ~op:gemm ~shape:gemm_shape broken with
    | Repairer.Repaired { kernel; _ } ->
      Alcotest.(check bool) "repaired kernel passes" true
        (Unit_test.check gemm gemm_shape kernel = Unit_test.Pass)
    | Repairer.Gave_up { reason; _ } -> Alcotest.fail ("gave up: " ^ reason))

let test_repair_index_on_elementwise () =
  let op = Registry.find_exn "add" in
  let shape = List.hd op.Opdef.shapes in
  let k = op.Opdef.serial shape in
  match Fault.inject_index (rng 9) k with
  | None -> Alcotest.fail "no store site"
  | Some (broken, _) -> (
    match
      Repairer.repair ~platform:Platform.vnni ~op ~shape broken
    with
    | Repairer.Repaired { kernel; _ } ->
      Alcotest.(check bool) "repaired" true (Unit_test.check op shape kernel = Unit_test.Pass)
    | Repairer.Gave_up { reason; _ } -> Alcotest.fail ("gave up: " ^ reason))

let test_candidates_respect_alignment () =
  let k = bang_gemm () in
  (* find a vector-intrinsic param site if any; candidates must all be 64-aligned *)
  let report = Localize.localize ~op:gemm ~shape:gemm_shape k in
  ignore report;
  let site = Localize.Param_site { nth = 0; current = 128 } in
  let values = Repairer.candidate_values ~platform:bang k site in
  Alcotest.(check bool) "non-empty" true (values <> []);
  List.iter (fun v -> Alcotest.(check bool) "positive" true (v > 0)) values

(* ---- annotation / prompts -------------------------------------------------------- *)

let test_annotate_gemm () =
  let k = gemm.Opdef.serial gemm_shape in
  let ops = Annotate.operations_in k in
  (match ops with
  | [ Annotate.Op_matmul { m = 16; k = 32; n = 64 } ] -> ()
  | _ ->
    Alcotest.fail
      ("expected one matmul, got: "
      ^ String.concat ", " (List.map Annotate.operation_name ops)));
  let annotated = Annotate.annotate ~target:Platform.Bang k in
  Alcotest.(check bool) "is annotated" true (Annotate.is_annotated annotated);
  (* the reference must mention the BANG mlp intrinsic *)
  let has_mlp = ref false in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Annot { key = "reference"; value } ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        if contains value "__bang_mlp" then has_mlp := true
      | _ -> ())
    annotated.Kernel.body;
  Alcotest.(check bool) "reference mentions __bang_mlp" true !has_mlp;
  (* idempotent *)
  Alcotest.(check bool) "idempotent" true
    (Kernel.equal annotated (Annotate.annotate ~target:Platform.Bang annotated))

let test_annotate_softmax () =
  let op = Registry.find_exn "softmax" in
  let k = op.Opdef.serial (List.hd op.Opdef.shapes) in
  let ops = Annotate.operations_in k in
  let names = List.map Annotate.operation_name ops in
  Alcotest.(check bool) "finds reduce_max" true (List.mem "reduce_max" names);
  Alcotest.(check bool) "finds reduce_sum" true (List.mem "reduce_sum" names);
  Alcotest.(check bool) "finds exp" true (List.mem "elementwise_exp" names)

let test_meta_prompt () =
  let k = gemm.Opdef.serial gemm_shape in
  let mp = Meta_prompt.build ~target:Platform.Bang Xpiler_passes.Pass.Tensorize k in
  Alcotest.(check bool) "has examples" true (mp.Meta_prompt.examples <> []);
  let rendered = Meta_prompt.render mp in
  Alcotest.(check bool) "non-trivial" true (String.length rendered > 100)

(* ---- the LLM oracle ------------------------------------------------------------------ *)

let test_llm_deterministic () =
  let t1 = Llm.create ~seed:99 () and t2 = Llm.create ~seed:99 () in
  let run t =
    Llm.translate_program t ~profile:Profile.gpt4_few_shot ~src:Platform.Cuda
      ~dst:Platform.Bang ~op:gemm ~shape:gemm_shape
  in
  match (run t1, run t2) with
  | Llm.Garbage, Llm.Garbage -> ()
  | Llm.Translated (k1, f1), Llm.Translated (k2, f2) ->
    Alcotest.(check bool) "same kernel" true (Kernel.equal k1 k2);
    Alcotest.(check int) "same faults" (List.length f1) (List.length f2)
  | _ -> Alcotest.fail "nondeterministic oracle"

let test_llm_zero_shot_worse_than_few_shot () =
  (* zero-shot must fail compilation more often than few-shot *)
  let count_compile profile =
    let compiles = ref 0 in
    for seed = 0 to 59 do
      let t = Llm.create ~seed () in
      match
        Llm.translate_program t ~profile ~src:Platform.Cuda ~dst:Platform.Bang ~op:gemm
          ~shape:gemm_shape
      with
      | Llm.Garbage -> ()
      | Llm.Translated (k, _) -> if Checker.compile bang k = Ok () then incr compiles
    done;
    !compiles
  in
  let zero = count_compile Profile.gpt4_zero_shot in
  let few = count_compile Profile.gpt4_few_shot in
  Alcotest.(check bool)
    (Printf.sprintf "zero-shot compiles (%d) < few-shot compiles (%d)" zero few)
    true (zero < few)

let test_llm_pass_level_mostly_correct () =
  let ok = ref 0 in
  for seed = 0 to 29 do
    let t = Llm.create ~seed () in
    let k = gemm.Opdef.serial gemm_shape in
    match
      Llm.apply_pass t
        ~profile:(Profile.pass_level ~annotated:true)
        ~target:bang
        (Xpiler_passes.Pass.Loop_split { var = "i"; factor = 4 })
        k
    with
    | Ok (k', faults) ->
      if faults = [] && Unit_test.check ~trials:1 gemm gemm_shape k' = Unit_test.Pass then
        incr ok
    | Error m -> Alcotest.fail m
  done;
  Alcotest.(check bool)
    (Printf.sprintf "most pass applications clean (%d/30)" !ok)
    true (!ok >= 20)

let () =
  Alcotest.run "neural+repair"
    [ ( "faults",
        [ Alcotest.test_case "bound fault" `Quick test_fault_bound_breaks;
          Alcotest.test_case "param fault" `Quick test_fault_param_breaks;
          Alcotest.test_case "wrong scope fails compile" `Quick
            test_fault_structural_memory_compile;
          Alcotest.test_case "foreign axis fails compile" `Quick
            test_fault_foreign_axis_compile
        ] );
      ( "localize",
        [ Alcotest.test_case "finds failing buffer" `Quick test_localize_finds_failing_buffer;
          Alcotest.test_case "clean kernel" `Quick test_localize_clean_kernel;
          Alcotest.test_case "dynamic control flow" `Quick
            test_localize_flags_dynamic_control_flow
        ] );
      ( "repair",
        [ Alcotest.test_case "bound" `Quick test_repair_bound;
          Alcotest.test_case "param" `Quick test_repair_param;
          Alcotest.test_case "index" `Quick test_repair_index_on_elementwise;
          Alcotest.test_case "candidate domains" `Quick test_candidates_respect_alignment
        ] );
      ( "annotation",
        [ Alcotest.test_case "gemm" `Quick test_annotate_gemm;
          Alcotest.test_case "softmax" `Quick test_annotate_softmax;
          Alcotest.test_case "meta prompt" `Quick test_meta_prompt
        ] );
      ( "oracle",
        [ Alcotest.test_case "deterministic" `Quick test_llm_deterministic;
          Alcotest.test_case "zero-shot worse" `Quick test_llm_zero_shot_worse_than_few_shot;
          Alcotest.test_case "pass level mostly clean" `Quick test_llm_pass_level_mostly_correct
        ] )
    ]
