test/test_machine.ml: Alcotest Axis Builder Checker Costmodel Dtype Expr Interp Intrin Kernel List Platform QCheck QCheck_alcotest Scope Stdlib Tensor Xpiler_ir Xpiler_machine Xpiler_ops Xpiler_util
