test/test_core.ml: Alcotest Checker Config Filename Hashtbl List Opdef Platform Printf Registry Report String Sys Xpiler Xpiler_core Xpiler_ir Xpiler_lang Xpiler_machine Xpiler_ops Xpiler_util
