test/test_repair.mli:
