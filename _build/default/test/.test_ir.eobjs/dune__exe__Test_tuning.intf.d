test/test_tuning.mli:
