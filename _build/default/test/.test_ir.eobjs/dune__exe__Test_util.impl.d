test/test_util.ml: Alcotest Float List Printf QCheck QCheck_alcotest Xpiler_util
