test/test_smt.ml: Alcotest Expr Fun List QCheck QCheck_alcotest Solver Stdlib Synth Xpiler_ir Xpiler_smt
