test/test_ir.ml: Alcotest Axis Builder Expr Intrin Kernel List QCheck QCheck_alcotest Scope Stdlib Stmt Validate Xpiler_ir
