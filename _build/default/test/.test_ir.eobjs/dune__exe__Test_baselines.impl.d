test/test_baselines.ml: Alcotest Hipify Idiom List Llm_baseline Opdef Platform Ppcg Printf Productivity Registry Vendor Xpiler_baselines Xpiler_ir Xpiler_machine Xpiler_manual Xpiler_ops
