open Xpiler_ir
open Xpiler_machine
open Xpiler_lang

let kernel = Alcotest.testable (Fmt.of_to_string Kernel.to_string) Kernel.equal

(* ---- lexer -------------------------------------------------------------- *)

let test_lex_basic () =
  let toks = Lexer.tokenize "for (int i = 0; i < 10; i++) { a[i] = 1.5f; }" in
  Alcotest.(check int) "token count" 24 (List.length toks);
  match toks with
  | Token.Ident "for" :: Token.Punct "(" :: Token.Ident "int" :: _ -> ()
  | _ -> Alcotest.fail "unexpected prefix"

let test_lex_dotted_and_ns () =
  match Lexer.tokenize "blockIdx.x wmma::mma_sync x.y" with
  | [ Token.Ident "blockIdx.x"; Token.Ident "wmma::mma_sync"; Token.Ident "x";
      Token.Punct "."; Token.Ident "y"; Token.Eof ] -> ()
  | toks ->
    Alcotest.fail (String.concat " " (List.map Token.to_string toks))

let test_lex_pragma () =
  match Lexer.tokenize "#launch blockIdx.x=4 threadIdx.x=128\nvoid" with
  | [ Token.Launch_pragma [ ("blockIdx.x", 4); ("threadIdx.x", 128) ]; Token.Ident "void";
      Token.Eof ] -> ()
  | _ -> Alcotest.fail "pragma not lexed"

let test_lex_comments () =
  match Lexer.tokenize "a /* multi \n line */ b // tail\n c" with
  | [ Token.Ident "a"; Token.Ident "b"; Token.Ident "c"; Token.Eof ] -> ()
  | _ -> Alcotest.fail "comments not skipped"

let test_lex_floats () =
  match Lexer.tokenize "1.5f 2.0 3f 1e-5f" with
  | [ Token.Float_lit a; Token.Float_lit b; Token.Float_lit c; Token.Float_lit d; Token.Eof ]
    ->
    Alcotest.(check (float 1e-9)) "1.5" 1.5 a;
    Alcotest.(check (float 1e-9)) "2.0" 2.0 b;
    Alcotest.(check (float 1e-9)) "3" 3.0 c;
    Alcotest.(check (float 1e-12)) "1e-5" 1e-5 d
  | _ -> Alcotest.fail "floats not lexed"

let test_lex_error () =
  match Lexer.tokenize "a @ b" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected lex error"

(* ---- parser ------------------------------------------------------------- *)

let cuda_vecadd_src =
  {|#launch blockIdx.x=4 threadIdx.x=64
__global__ void vecadd(float* a, float* b, float* c, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    c[i] = a[i] + b[i];
  }
}|}

let test_parse_cuda_vecadd () =
  let k = Parser.parse Dialect.cuda cuda_vecadd_src in
  Alcotest.(check string) "name" "vecadd" k.Kernel.name;
  Alcotest.(check int) "params" 4 (List.length k.Kernel.params);
  Alcotest.(check int) "parallelism" 256 (Kernel.total_parallelism k);
  (* blockDim.x resolved to the launch extent *)
  match k.Kernel.body with
  | [ Stmt.For { kind = Stmt.Parallel Axis.Block_x; body = [ Stmt.For t ]; _ } ] -> (
    match t.body with
    | Stmt.Let { value; _ } :: _ ->
      Alcotest.(check bool) "blockDim.x inlined" true
        (Expr.equal value
           Expr.(
             Binop (Add, Binop (Mul, Var "blockIdx.x", Int 64), Var "threadIdx.x")))
    | _ -> Alcotest.fail "missing let")
  | _ -> Alcotest.fail "missing parallel nest"

let test_parse_executes () =
  let k = Parser.parse Dialect.cuda cuda_vecadd_src in
  let r = Xpiler_util.Rng.create 7 in
  let a = Tensor.random r 256 and b = Tensor.random r 256 in
  let c = Tensor.create 256 in
  let _ =
    Interp.run k
      [ ("a", Interp.Buf a); ("b", Interp.Buf b); ("c", Interp.Buf c);
        ("n", Interp.Scalar_int 256) ]
  in
  let ok = ref true in
  for i = 0 to 255 do
    if Float.abs (Tensor.get c i -. (Tensor.get a i +. Tensor.get b i)) > 1e-6 then ok := false
  done;
  Alcotest.(check bool) "parsed kernel executes" true !ok

let bang_src =
  {|#launch taskId=4
__mlu_global__ void scale(float* inp, float* out, int n) {
  __nram__ float buf[256];
  int base = taskId * 256;
  __memcpy(buf, inp + base, 256 * sizeof(float), GDRAM2NRAM);
  __bang_mul_scalar(buf, buf, 2.0f, 256);
  __memcpy(out + base, buf, 256 * sizeof(float), NRAM2GDRAM);
}|}

let test_parse_bang () =
  let k = Parser.parse Dialect.bang bang_src in
  (match Checker.compile Platform.bang k with
  | Ok () -> ()
  | Error es -> Alcotest.fail (Checker.errors_to_string es));
  let r = Xpiler_util.Rng.create 3 in
  let inp = Tensor.random r 1024 in
  let out = Tensor.create 1024 in
  let _ =
    Interp.run k
      [ ("inp", Interp.Buf inp); ("out", Interp.Buf out); ("n", Interp.Scalar_int 1024) ]
  in
  let ok = ref true in
  for i = 0 to 1023 do
    if Float.abs (Tensor.get out i -. (2.0 *. Tensor.get inp i)) > 1e-6 then ok := false
  done;
  Alcotest.(check bool) "bang scale ok" true !ok

let hip_src =
  {|#launch blockIdx.x=2 threadIdx.x=32
__global__ void copy(float* a, float* b) {
  int i = hipBlockIdx_x * hipBlockDim_x + hipThreadIdx_x;
  b[i] = a[i];
}|}

let test_parse_hip () =
  let k = Parser.parse Dialect.hip hip_src in
  match Checker.compile Platform.hip k with
  | Ok () -> ()
  | Error es -> Alcotest.fail (Checker.errors_to_string es)

let vnni_src =
  {|void dot(int8_t* a, int8_t* b, int32_t* acc, int n) {
  for (int g = 0; g < n; g++) {
    acc[g] = 0;
  }
  _mm512_dpbusd_epi32(acc, a, b, n * 4);
}|}

let test_parse_vnni () =
  let k = Parser.parse Dialect.vnni vnni_src in
  (match Checker.compile Platform.vnni k with
  | Ok () -> ()
  | Error es -> Alcotest.fail (Checker.errors_to_string es));
  let a = Tensor.of_array ~dtype:Dtype.I8 [| 1.; 1.; 1.; 1.; 2.; 2.; 2.; 2. |] in
  let b = Tensor.of_array ~dtype:Dtype.I8 [| 3.; 3.; 3.; 3.; 1.; 1.; 1.; 1. |] in
  let acc = Tensor.create ~dtype:Dtype.I32 2 in
  let _ =
    Interp.run k
      [ ("a", Interp.Buf a); ("b", Interp.Buf b); ("acc", Interp.Buf acc);
        ("n", Interp.Scalar_int 2) ]
  in
  Alcotest.(check (float 0.0)) "dot0" 12.0 (Tensor.get acc 0);
  Alcotest.(check (float 0.0)) "dot1" 8.0 (Tensor.get acc 1)

let test_parse_shared_hoist () =
  let src =
    {|#launch blockIdx.x=2 threadIdx.x=16
__global__ void rev(float* inp, float* out) {
  __shared__ float tile[16];
  tile[threadIdx.x] = inp[blockIdx.x * 16 + threadIdx.x];
  __syncthreads();
  out[blockIdx.x * 16 + threadIdx.x] = tile[15 - threadIdx.x];
}|}
  in
  let k = Parser.parse Dialect.cuda src in
  (* the shared alloc must sit between the block loop and the thread loop *)
  (match k.Kernel.body with
  | [ Stmt.For { kind = Stmt.Parallel Axis.Block_x;
                 body = Stmt.Alloc { scope = Scope.Shared; _ } :: [ Stmt.For _ ]; _ } ] -> ()
  | _ -> Alcotest.fail "shared not hoisted to block level");
  (* and the barrier must make the reversal correct under execution *)
  let r = Xpiler_util.Rng.create 11 in
  let inp = Tensor.random r 32 in
  let out = Tensor.create 32 in
  let _ = Interp.run k [ ("inp", Interp.Buf inp); ("out", Interp.Buf out) ] in
  let ok = ref true in
  for b = 0 to 1 do
    for t = 0 to 15 do
      if Tensor.get out ((b * 16) + t) <> Tensor.get inp ((b * 16) + (15 - t)) then ok := false
    done
  done;
  Alcotest.(check bool) "reversal correct" true !ok

let test_parse_rejects_wrong_dialect () =
  (match Parser.parse Dialect.vnni cuda_vecadd_src with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "vnni must reject __global__");
  match Parser.parse Dialect.cuda bang_src with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "cuda must reject __mlu_global__"

let test_parse_compound_assign () =
  let src =
    {|void acc(float* a, float* c, int n) {
  float s = 0.0f;
  for (int i = 0; i < n; i++) {
    s += a[i];
    c[i] *= 2.0f;
  }
  c[0] += s;
}|}
  in
  let k = Parser.parse Dialect.vnni src in
  let a = Tensor.of_array [| 1.0; 2.0; 3.0 |] in
  let c = Tensor.of_array [| 1.0; 1.0; 1.0 |] in
  let _ =
    Interp.run k [ ("a", Interp.Buf a); ("c", Interp.Buf c); ("n", Interp.Scalar_int 3) ]
  in
  Alcotest.(check (float 1e-9)) "c0 = 2 + 6" 8.0 (Tensor.get c 0)

let test_parse_return_guard () =
  let src =
    {|#launch blockIdx.x=4 threadIdx.x=64
__global__ void vecadd(float* a, float* b, float* c, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i >= n) return;
  c[i] = a[i] + b[i];
}|}
  in
  let k = Parser.parse Dialect.cuda src in
  let a = Tensor.of_array (Array.init 256 float_of_int) in
  let b = Tensor.of_array (Array.make 256 1.0) in
  let c = Tensor.create 256 in
  let _ =
    Interp.run k
      [ ("a", Interp.Buf a); ("b", Interp.Buf b); ("c", Interp.Buf c);
        ("n", Interp.Scalar_int 200) ]
  in
  Alcotest.(check (float 1e-9)) "guarded in" 200.0 (Tensor.get c 199);
  Alcotest.(check (float 1e-9)) "guarded out" 0.0 (Tensor.get c 200)

let test_parse_pragma_kind () =
  let src =
    {|void f(float* a) {
  #pragma pipeline
  for (int i = 0; i < 4; i++) {
    a[i] = 1.0f;
  }
}|}
  in
  let k = Parser.parse Dialect.vnni src in
  match k.Kernel.body with
  | [ Stmt.For { kind = Stmt.Pipelined; _ } ] -> ()
  | _ -> Alcotest.fail "pipeline pragma lost"

(* ---- round trips --------------------------------------------------------- *)

let roundtrip d k =
  let src = Codegen.emit d k in
  try Parser.parse d src
  with Parser.Parse_error m ->
    Alcotest.fail (Printf.sprintf "re-parse failed: %s\nsource:\n%s" m src)

let test_roundtrip_cuda () =
  let k = Parser.parse Dialect.cuda cuda_vecadd_src in
  Alcotest.check kernel "cuda roundtrip" k (roundtrip Dialect.cuda k)

let test_roundtrip_bang () =
  let k = Parser.parse Dialect.bang bang_src in
  Alcotest.check kernel "bang roundtrip" k (roundtrip Dialect.bang k)

let test_roundtrip_hip () =
  let k = Parser.parse Dialect.hip hip_src in
  let k' = roundtrip Dialect.hip k in
  Alcotest.check kernel "hip roundtrip" k k';
  (* surface text must use the hip spellings *)
  let src = Codegen.emit Dialect.hip k in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "hip spelling" true (contains src "hipBlockIdx_x")

let test_roundtrip_vnni () =
  let k = Parser.parse Dialect.vnni vnni_src in
  Alcotest.check kernel "vnni roundtrip" k (roundtrip Dialect.vnni k)

let test_roundtrip_shared () =
  let src =
    {|#launch blockIdx.x=2 threadIdx.x=16
__global__ void rev(float* inp, float* out) {
  __shared__ float tile[16];
  tile[threadIdx.x] = inp[blockIdx.x * 16 + threadIdx.x];
  __syncthreads();
  out[blockIdx.x * 16 + threadIdx.x] = tile[15 - threadIdx.x];
}|}
  in
  let k = Parser.parse Dialect.cuda src in
  Alcotest.check kernel "shared roundtrip" k (roundtrip Dialect.cuda k)

let test_loc () =
  Alcotest.(check int) "lines of code" 7 (Codegen.lines_of_code cuda_vecadd_src)

let () =
  Alcotest.run "lang"
    [ ( "lexer",
        [ Alcotest.test_case "basic" `Quick test_lex_basic;
          Alcotest.test_case "dotted and namespaced" `Quick test_lex_dotted_and_ns;
          Alcotest.test_case "pragma" `Quick test_lex_pragma;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "floats" `Quick test_lex_floats;
          Alcotest.test_case "error" `Quick test_lex_error
        ] );
      ( "parser",
        [ Alcotest.test_case "cuda vecadd" `Quick test_parse_cuda_vecadd;
          Alcotest.test_case "parsed kernel executes" `Quick test_parse_executes;
          Alcotest.test_case "bang" `Quick test_parse_bang;
          Alcotest.test_case "hip" `Quick test_parse_hip;
          Alcotest.test_case "vnni" `Quick test_parse_vnni;
          Alcotest.test_case "shared hoisting" `Quick test_parse_shared_hoist;
          Alcotest.test_case "wrong dialect rejected" `Quick test_parse_rejects_wrong_dialect;
          Alcotest.test_case "compound assignment" `Quick test_parse_compound_assign;
          Alcotest.test_case "return guard" `Quick test_parse_return_guard;
          Alcotest.test_case "kind pragma" `Quick test_parse_pragma_kind
        ] );
      ( "roundtrip",
        [ Alcotest.test_case "cuda" `Quick test_roundtrip_cuda;
          Alcotest.test_case "bang" `Quick test_roundtrip_bang;
          Alcotest.test_case "hip" `Quick test_roundtrip_hip;
          Alcotest.test_case "vnni" `Quick test_roundtrip_vnni;
          Alcotest.test_case "shared" `Quick test_roundtrip_shared;
          Alcotest.test_case "lines of code" `Quick test_loc
        ] )
    ]
