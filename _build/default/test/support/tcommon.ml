(* Shared helpers for the test suites: run two kernels on identical random
   inputs and compare every buffer. *)

open Xpiler_ir
open Xpiler_machine

let make_args rng ?(buf_size = fun _ -> 1024) (k : Kernel.t) shapes =
  List.map
    (fun (p : Kernel.param) ->
      if p.is_buffer then
        (p.name, Interp.Buf (Tensor.random rng ~dtype:p.dtype (buf_size p.name)))
      else
        match List.assoc_opt p.name shapes with
        | Some v -> (p.name, Interp.Scalar_int v)
        | None -> (p.name, Interp.Scalar_int 8))
    k.Kernel.params

let clone_args args =
  List.map
    (fun (n, a) ->
      match a with
      | Interp.Buf t -> (n, Interp.Buf (Tensor.copy t))
      | s -> (n, s))
    args

let buffers args =
  List.filter_map (fun (n, a) -> match a with Interp.Buf t -> Some (n, t) | _ -> None) args

(* Run both kernels on identical inputs; return the first buffer where the
   results diverge, if any. Raises if either execution raises. *)
let divergence ?buf_size ?(seed = 1234) ?(shapes = []) k1 k2 =
  let rng = Xpiler_util.Rng.create seed in
  let args1 = make_args rng ?buf_size k1 shapes in
  let args2 = clone_args args1 in
  let _ = Interp.run k1 args1 in
  let _ = Interp.run k2 args2 in
  List.find_opt
    (fun ((n, t1) : string * Tensor.t) ->
      match List.assoc_opt n (buffers args2) with
      | Some t2 -> not (Tensor.allclose t1 t2)
      | None -> true)
    (buffers args1)
  |> Option.map fst

let check_equivalent ?buf_size ?seed ?shapes msg k1 k2 =
  match divergence ?buf_size ?seed ?shapes k1 k2 with
  | None -> ()
  | Some buf ->
    Alcotest.fail
      (Printf.sprintf "%s: buffer %s diverged\n--- before ---\n%s\n--- after ---\n%s" msg buf
         (Kernel.to_string k1) (Kernel.to_string k2))

let expect_ok = function
  | Ok v -> v
  | Error m -> Alcotest.fail ("expected Ok, got Error: " ^ m)

let expect_error msg = function
  | Ok _ -> Alcotest.fail ("expected Error: " ^ msg)
  | Error _ -> ()
