test/support/kgen.ml: Builder Expr Kernel List Printf Stmt Xpiler_ir Xpiler_util
