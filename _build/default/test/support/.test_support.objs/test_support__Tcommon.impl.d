test/support/tcommon.ml: Alcotest Interp Kernel List Option Printf Tensor Xpiler_ir Xpiler_machine Xpiler_util
