(* Random well-formed kernel generator for property-based testing.

   Generates small sequential kernels over two input buffers and one output
   buffer, with nested loops, affine indices kept in bounds by construction,
   guards, scalar accumulators and elementwise stores. Used to fuzz
   parser/printer round-trips and pass-sequence semantic preservation. *)

open Xpiler_ir
module Rng = Xpiler_util.Rng

let buf_size = 256

(* an affine in-bounds index over the loop variables in scope:
   sum coeff_i * v_i + c with the maximum value < buf_size *)
let gen_index rng vars =
  (* vars: (name, extent) innermost last *)
  let rec build budget = function
    | [] -> (Expr.Int (if budget > 0 then Rng.int rng (min budget 8) else 0), 0)
    | (v, extent) :: rest ->
      if Rng.bernoulli rng 0.7 && extent > 0 then begin
        let max_coeff = max 1 (budget / extent) in
        let coeff = 1 + Rng.int rng (min max_coeff 4) in
        let e, used = build (budget - (coeff * (extent - 1))) rest in
        ( Expr.simplify
            (Expr.Binop (Expr.Add, Expr.Binop (Expr.Mul, Expr.Var v, Expr.Int coeff), e)),
          used + (coeff * (extent - 1)) )
      end
      else build budget rest
  in
  let e, _ = build (buf_size - 1) vars in
  e

let gen_value rng vars depth =
  let leaf () =
    match Rng.int rng 4 with
    | 0 -> Expr.Float (float_of_int (Rng.int_in rng (-3) 3) /. 2.0)
    | _ ->
      let b = Rng.choose rng [ "a"; "b" ] in
      Expr.Load (b, gen_index rng vars)
  in
  let rec go depth =
    if depth = 0 then leaf ()
    else
      match Rng.int rng 6 with
      | 0 -> Expr.Binop (Expr.Add, go (depth - 1), go (depth - 1))
      | 1 -> Expr.Binop (Expr.Sub, go (depth - 1), go (depth - 1))
      | 2 -> Expr.Binop (Expr.Mul, go (depth - 1), go (depth - 1))
      | 3 -> Expr.Binop (Expr.Max, go (depth - 1), go (depth - 1))
      | 4 -> Expr.Unop (Expr.Tanh, go (depth - 1))
      | _ -> leaf ()
  in
  go depth

let gen_body rng vars fuel =
  let rec stmts vars fuel =
    if fuel <= 0 then []
    else begin
      let stmt, cost =
        match Rng.int rng 10 with
        | 0 | 1 | 2 when List.length vars < 3 ->
          (* a nested loop *)
          let extent = Rng.choose rng [ 2; 4; 8; 16 ] in
          let v = Printf.sprintf "v%d" (List.length vars + Rng.int rng 100) in
          if List.mem_assoc v vars then (None, 1)
          else begin
            let inner = stmts ((v, extent) :: vars) (fuel - 2) in
            if inner = [] then (None, 1)
            else
              ( Some
                  (Stmt.For
                     { var = v; lo = Expr.Int 0; extent = Expr.Int extent;
                       kind = Stmt.Serial; body = inner }),
                3 )
          end
        | 3 when vars <> [] ->
          (* a guard over part of the iteration space *)
          let v, extent = Rng.choose rng vars in
          let inner = stmts vars (fuel - 2) in
          if inner = [] then (None, 1)
          else
            ( Some
                (Stmt.If
                   { cond =
                       Expr.Binop (Expr.Lt, Expr.Var v, Expr.Int (max 1 (extent / 2)));
                     then_ = inner;
                     else_ = []
                   }),
              2 )
        | _ ->
          ( Some
              (Stmt.Store
                 { buf = "out"; index = gen_index rng vars; value = gen_value rng vars 2 }),
            1 )
      in
      match stmt with
      | Some s -> s :: stmts vars (fuel - cost)
      | None -> stmts vars (fuel - cost)
    end
  in
  stmts vars fuel

let kernel rng =
  let open Xpiler_ir in
  let fuel = 3 + Rng.int rng 8 in
  let body = gen_body rng [] fuel in
  let body =
    if body = [] then [ Stmt.Store { buf = "out"; index = Expr.Int 0; value = Expr.Float 1.0 } ]
    else body
  in
  Kernel.make ~name:"fuzz"
    ~params:[ Builder.buffer "a"; Builder.buffer "b"; Builder.buffer "out" ]
    body

let buffer_sizes = [ ("a", buf_size); ("b", buf_size); ("out", buf_size) ]
