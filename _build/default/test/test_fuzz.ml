(* Fuzzing over randomly generated kernels: the strongest invariants in the
   system — front-end round trips and pass-sequence semantic preservation. *)

open Xpiler_ir
open Xpiler_machine
open Xpiler_lang
module Pass = Xpiler_passes.Pass
module Rng = Xpiler_util.Rng
module Kgen = Test_support.Kgen
module Tcommon = Test_support.Tcommon

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 1_000_000)

let kernel_of_seed seed = Kgen.kernel (Rng.create seed)
let buf_size b = List.assoc b Kgen.buffer_sizes

(* every generated kernel is well-formed and executes without error *)
let prop_generator_sound =
  QCheck.Test.make ~name:"generated kernels are valid and executable" ~count:200 arb_seed
    (fun seed ->
      let k = kernel_of_seed seed in
      match Validate.check k with
      | Error _ -> false
      | Ok () -> (
        let rng = Rng.create (seed + 1) in
        let args = Tcommon.make_args rng ~buf_size k [] in
        match Interp.run k args with _ -> true | exception _ -> false))

(* printer/parser round trip on every dialect that can express the kernel *)
let roundtrip_dialect d seed =
  let k = kernel_of_seed seed in
  let text = Codegen.emit d k in
  match Parser.parse d text with
  | k' -> Tcommon.divergence ~buf_size ~seed:(seed + 7) k k' = None
  | exception Parser.Parse_error _ -> false

let prop_roundtrip_vnni =
  QCheck.Test.make ~name:"roundtrip through C (vnni dialect)" ~count:150 arb_seed
    (roundtrip_dialect Dialect.vnni)

let prop_roundtrip_cuda =
  QCheck.Test.make ~name:"roundtrip through CUDA C" ~count:150 arb_seed
    (roundtrip_dialect Dialect.cuda)

let prop_roundtrip_bang =
  QCheck.Test.make ~name:"roundtrip through BANG C" ~count:150 arb_seed
    (roundtrip_dialect Dialect.bang)

(* random applicable pass sequences preserve semantics *)
let prop_pass_sequences_preserve =
  QCheck.Test.make ~name:"random pass sequences preserve semantics" ~count:80 arb_seed
    (fun seed ->
      let k0 = kernel_of_seed seed in
      let rng = Rng.create (seed * 31 + 5) in
      let platform = Platform.bang in
      let rec apply k n =
        if n = 0 then k
        else begin
          match
            Xpiler_tuning.Actions.enumerate ~buffer_sizes:Kgen.buffer_sizes platform k
          with
          | [] -> k
          | acts -> (
            match Pass.apply ~platform (Rng.choose rng acts) k with
            | Ok k' -> apply k' (n - 1)
            | Error _ -> apply k (n - 1))
        end
      in
      let k' = apply k0 (1 + Rng.int rng 5) in
      Tcommon.divergence ~buf_size ~seed:(seed + 13) k0 k' = None)

(* the intra-pass tuner's chosen variant is always equivalent *)
let prop_intra_preserves =
  QCheck.Test.make ~name:"intra-pass tuning preserves semantics" ~count:60 arb_seed
    (fun seed ->
      let k = kernel_of_seed seed in
      let v = Xpiler_tuning.Intra.tune ~platform:Platform.cuda k in
      Tcommon.divergence ~buf_size ~seed:(seed + 3) k v.Xpiler_tuning.Intra.kernel = None)

(* analyzer soundness: any kernel the static analyzer passes clean must not
   hit an interpreter runtime error (out-of-bounds or otherwise) on random
   inputs. Two thirds of the corpus is perturbed with detail faults so the
   property also exercises genuinely broken kernels. *)
let prop_analyzer_clean_executes =
  QCheck.Test.make ~name:"analyzer-clean kernels execute without runtime errors" ~count:200
    arb_seed (fun seed ->
      let k = kernel_of_seed seed in
      let frng = Rng.create (seed + 13) in
      let k =
        match seed mod 3 with
        | 0 -> k
        | 1 -> (
          match Xpiler_neural.Fault.inject_index frng k with
          | Some (k', _) -> k'
          | None -> k)
        | _ -> (
          match Xpiler_neural.Fault.inject_bound frng k with
          | Some (k', _) -> k'
          | None -> k)
      in
      match
        Xpiler_analysis.Analyzer.errors
          (Xpiler_analysis.Analyzer.analyze ~extents:Kgen.buffer_sizes k)
      with
      | _ :: _ -> true (* diagnosed: the property claims nothing *)
      | [] -> (
        let args = Tcommon.make_args (Rng.create (seed + 2)) ~buf_size k [] in
        match Interp.run k args with
        | _ -> true
        | exception Interp.Runtime_error _ -> false))

(* detail-level fault injection + repair round trip: every repairable fault
   class the oracle injects is fixed by the repairer on these kernels *)
let prop_inject_repair =
  QCheck.Test.make ~name:"injected detail faults are repaired or benign" ~count:40 arb_seed
    (fun seed ->
      let k = kernel_of_seed seed in
      (* wrap as a pseudo-operator so the unit-test oracle applies *)
      let op : Xpiler_ops.Opdef.t =
        { name = "fuzz";
          cls = Xpiler_ops.Opdef.Elementwise;
          shapes = [ [] ];
          buffers =
            List.map
              (fun (name, size) ->
                { Xpiler_ops.Opdef.buf_name = name; dtype = Dtype.F32;
                  size = (fun _ -> size);
                  is_output = String.equal name "out"
                })
              Kgen.buffer_sizes;
          serial = (fun _ -> k);
          flops = (fun _ -> 1.0)
        }
      in
      let rng = Rng.create (seed + 99) in
      match Xpiler_neural.Fault.inject_index rng k with
      | None -> true
      | Some (broken, _) -> (
        match Xpiler_ops.Unit_test.check ~trials:1 op [] broken with
        | Xpiler_ops.Unit_test.Pass -> true (* benign *)
        | Xpiler_ops.Unit_test.Fail _ -> (
          match
            Xpiler_repair.Repairer.repair ~platform:Platform.vnni ~op ~shape:[] broken
          with
          | Xpiler_repair.Repairer.Repaired { kernel; _ } ->
            Xpiler_ops.Unit_test.check op [] kernel = Xpiler_ops.Unit_test.Pass
          | Xpiler_repair.Repairer.Gave_up _ ->
            (* acceptable only when the fault hides under control flow *)
            (Xpiler_repair.Localize.localize ~op ~shape:[] broken).Xpiler_repair.Localize
              .unrepairable
            <> [])))

let () =
  (* pinned RNG: the fuzz corpus is reproducible run to run (development used
     many seeds; see DESIGN.md for the bugs the campaign caught) *)
  let rand = Random.State.make [| 20250706 |] in
  Alcotest.run "fuzz"
    [ ( "properties",
        List.map
          (QCheck_alcotest.to_alcotest ~rand)
          [ prop_generator_sound; prop_roundtrip_vnni; prop_roundtrip_cuda;
            prop_roundtrip_bang; prop_pass_sequences_preserve; prop_intra_preserves;
            prop_analyzer_clean_executes; prop_inject_repair ] )
    ]
