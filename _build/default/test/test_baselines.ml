open Xpiler_machine
open Xpiler_ops
open Xpiler_baselines

let gemm = Registry.find_exn "gemm"
let gemm_shape = List.hd gemm.Opdef.shapes
let add = Registry.find_exn "add"
let softmax = Registry.find_exn "softmax"
let da = Registry.find_exn "deformable_attention"

(* ---- bm25 / manual ------------------------------------------------------------ *)

let test_bm25_ranking () =
  let idx =
    Xpiler_manual.Bm25.build
      [ { Xpiler_manual.Bm25.id = "mlp"; text = "matrix multiplication mlp matmul weights" };
        { id = "add"; text = "elementwise vector addition" };
        { id = "exp"; text = "exponential activation" } ]
  in
  Alcotest.(check (list string)) "matmul query" [ "mlp" ] (Xpiler_manual.Bm25.top idx "matmul" 1);
  Alcotest.(check (list string)) "add query" [ "add" ]
    (Xpiler_manual.Bm25.top idx "vector addition" 1)

let test_manual_lookup () =
  (match Xpiler_manual.Corpus.lookup_op Platform.Bang Xpiler_ir.Intrin.Mlp with
  | Some e -> Alcotest.(check string) "title" "__bang_mlp" e.title
  | None -> Alcotest.fail "no mlp entry");
  let hits = Xpiler_manual.Corpus.search Platform.Bang "gemm matrix multiplication" 3 in
  Alcotest.(check bool) "mlp among top hits" true
    (List.exists (fun (e : Xpiler_manual.Corpus.entry) -> e.title = "__bang_mlp") hits)

let test_manual_entry_counts () =
  List.iter
    (fun pid ->
      let n = List.length (Xpiler_manual.Corpus.entries pid) in
      Alcotest.(check bool)
        (Printf.sprintf "%s manual has entries (%d)" (Platform.id_to_string pid) n)
        true (n >= 8))
    [ Platform.Cuda; Platform.Bang; Platform.Hip; Platform.Vnni ]

(* ---- vendor model -------------------------------------------------------------- *)

let test_vendor_advantage_shape () =
  Alcotest.(check bool) "matmul vendor strong" true (Vendor.advantage gemm > 1.0);
  Alcotest.(check bool) "llm long-tail weak" true (Vendor.advantage da < 1.0)

let test_vendor_speedup_bounds () =
  let k = Idiom.source Platform.Bang gemm gemm_shape in
  let s = Vendor.speedup_of_translated Platform.Bang gemm gemm_shape k in
  (* the vendor is the tuned expert kernel with its advantage factor, so the
     untuned expert can reach at most 1/advantage *)
  Alcotest.(check bool)
    (Printf.sprintf "0 < %.2f <= %.2f" s (1.0 /. Vendor.advantage gemm))
    true
    (s > 0.0 && s <= (1.0 /. Vendor.advantage gemm) +. 0.01)

(* ---- hipify --------------------------------------------------------------------- *)

let test_hipify_translates_simt () =
  let r = Hipify.translate add (List.hd add.Opdef.shapes) in
  Alcotest.(check bool) "compiles" true r.Hipify.compiles;
  Alcotest.(check bool) "computes" true r.Hipify.computes

let test_hipify_fails_on_wmma () =
  let r = Hipify.translate gemm gemm_shape in
  Alcotest.(check bool) "tensor-core source unsupported" false r.Hipify.compiles

(* ---- ppcg ------------------------------------------------------------------------ *)

let test_ppcg_accepts_affine () =
  let r = Ppcg.translate add (List.hd add.Opdef.shapes) in
  Alcotest.(check bool) "accepted" true r.Ppcg.accepted;
  Alcotest.(check bool) "computes" true r.Ppcg.computes;
  let r = Ppcg.translate gemm gemm_shape in
  Alcotest.(check bool) "gemm reduction accepted" true r.Ppcg.accepted;
  Alcotest.(check bool) "gemm computes" true r.Ppcg.computes

let test_ppcg_rejects_scalar_flow () =
  let r = Ppcg.translate softmax (List.hd softmax.Opdef.shapes) in
  Alcotest.(check bool) "softmax rejected" false r.Ppcg.accepted

let test_ppcg_rejects_dynamic_control () =
  let r = Ppcg.translate da (List.hd da.Opdef.shapes) in
  Alcotest.(check bool) "deformable attention rejected" false r.Ppcg.accepted;
  match r.Ppcg.reason with
  | Some _ -> ()
  | None -> Alcotest.fail "no reason reported"

(* ---- llm baselines ----------------------------------------------------------------- *)

let test_llm_baseline_ordering () =
  (* few-shot compiles at least as often as zero-shot over a sample *)
  let cs =
    List.filter
      (fun (c : Registry.case) -> List.hd c.op.Opdef.shapes == c.shape)
      (Registry.cases ())
  in
  let count m =
    List.fold_left
      (fun acc (c : Registry.case) ->
        let r =
          Llm_baseline.translate m ~src:Platform.Cuda ~dst:Platform.Bang ~op:c.op
            ~shape:c.shape
        in
        if r.Llm_baseline.compiles then acc + 1 else acc)
      0 cs
  in
  let zero = count Llm_baseline.Gpt4_zero and few = count Llm_baseline.Gpt4_few in
  Alcotest.(check bool) (Printf.sprintf "zero %d <= few %d" zero few) true (zero <= few)

let test_llm_baseline_easy_direction () =
  (* CUDA -> HIP is nearly free even zero-shot *)
  let cs =
    List.filter
      (fun (c : Registry.case) -> List.hd c.op.Opdef.shapes == c.shape)
      (Registry.cases ())
  in
  let ok =
    List.fold_left
      (fun acc (c : Registry.case) ->
        let r =
          Llm_baseline.translate Llm_baseline.O1_zero ~src:Platform.Cuda ~dst:Platform.Hip
            ~op:c.op ~shape:c.shape
        in
        if r.Llm_baseline.computes then acc + 1 else acc)
      0 cs
  in
  Alcotest.(check bool)
    (Printf.sprintf "cuda->hip zero-shot mostly works (%d/%d)" ok (List.length cs))
    true
    (ok * 3 >= List.length cs * 2)

(* ---- productivity -------------------------------------------------------------------- *)

let test_productivity_shape () =
  let entries = Productivity.study ~src:Platform.Cuda ~dst:Platform.Bang () in
  Alcotest.(check int) "two coders" 2 (List.length entries);
  List.iter
    (fun (e : Productivity.entry) ->
      Alcotest.(check bool) "saves time" true (e.time_saving > 5.0);
      Alcotest.(check bool) "manual hours positive" true (e.manual_hours > 1.0))
    entries;
  let senior = List.find (fun (e : Productivity.entry) -> e.coder = Productivity.Senior) entries in
  let junior = List.find (fun (e : Productivity.entry) -> e.coder = Productivity.Junior) entries in
  Alcotest.(check bool) "junior manual slower" true
    (junior.manual_hours > senior.manual_hours);
  Alcotest.(check bool) "junior manual perf lower or equal" true
    (junior.manual_perf <= senior.manual_perf);
  Alcotest.(check bool) "xpiler below senior manual on the DSA" true
    (senior.xpiler_perf <= 1.0)

let () =
  Alcotest.run "baselines"
    [ ( "manual",
        [ Alcotest.test_case "bm25 ranking" `Quick test_bm25_ranking;
          Alcotest.test_case "corpus lookup" `Quick test_manual_lookup;
          Alcotest.test_case "entry counts" `Quick test_manual_entry_counts
        ] );
      ( "vendor",
        [ Alcotest.test_case "advantage shape" `Quick test_vendor_advantage_shape;
          Alcotest.test_case "speedup bounds" `Quick test_vendor_speedup_bounds
        ] );
      ( "hipify",
        [ Alcotest.test_case "translates simt" `Quick test_hipify_translates_simt;
          Alcotest.test_case "fails on wmma" `Quick test_hipify_fails_on_wmma
        ] );
      ( "ppcg",
        [ Alcotest.test_case "accepts affine" `Quick test_ppcg_accepts_affine;
          Alcotest.test_case "rejects scalar flow" `Quick test_ppcg_rejects_scalar_flow;
          Alcotest.test_case "rejects dynamic control" `Quick test_ppcg_rejects_dynamic_control
        ] );
      ( "llm",
        [ Alcotest.test_case "ordering" `Quick test_llm_baseline_ordering;
          Alcotest.test_case "easy direction" `Quick test_llm_baseline_easy_direction
        ] );
      ("productivity", [ Alcotest.test_case "table-8 shape" `Quick test_productivity_shape ])
    ]
