open Xpiler_ir

let expr = Alcotest.testable Expr.pp Expr.equal

let test_simplify_constants () =
  let open Expr.Infix in
  Alcotest.check expr "2+3" (Expr.Int 5) (Expr.simplify (int 2 + int 3));
  Alcotest.check expr "x+0" (v "x") (Expr.simplify (v "x" + int 0));
  Alcotest.check expr "x*1" (v "x") (Expr.simplify (v "x" * int 1));
  Alcotest.check expr "x*0" (Expr.Int 0) (Expr.simplify (v "x" * int 0));
  Alcotest.check expr "(x+2)+3" (v "x" + int 5) (Expr.simplify (v "x" + int 2 + int 3));
  Alcotest.check expr "x-x" (Expr.Int 0) (Expr.simplify (v "x" - v "x"))

let test_simplify_select () =
  let open Expr.Infix in
  Alcotest.check expr "select true" (v "a")
    (Expr.simplify (Expr.Select (int 1, v "a", v "b")));
  Alcotest.check expr "select false" (v "b")
    (Expr.simplify (Expr.Select (int 0, v "a", v "b")))

let test_eval_int () =
  let open Expr.Infix in
  let env = function "n" -> 10 | "i" -> 3 | x -> failwith x in
  Alcotest.(check int) "affine" 43 (Expr.eval_int env ((v "n" * int 4) + v "i"));
  Alcotest.(check int) "div" 3 (Expr.eval_int env (v "n" / int 3));
  Alcotest.(check int) "mod" 1 (Expr.eval_int env (v "n" % int 3));
  Alcotest.(check int) "cmp" 1 (Expr.eval_int env (v "i" < v "n"))

let test_free_vars () =
  let open Expr.Infix in
  let e = (v "a" * v "b") + load "buf" (v "a" + v "c") in
  Alcotest.(check (list string)) "vars" [ "a"; "b"; "c" ] (Expr.free_vars e);
  Alcotest.(check (list string)) "bufs" [ "buf" ] (Expr.buffers_read e)

let test_subst () =
  let open Expr.Infix in
  let e = v "i" + (v "j" * v "i") in
  let e' = Expr.subst_var "i" (int 7) e in
  Alcotest.check expr "subst" (int 7 + (v "j" * int 7)) e'

let test_stmt_buffers () =
  let open Expr.Infix in
  let body =
    [ Builder.alloc "tmp" Scope.Shared 64;
      Builder.for_ "i" (int 64)
        [ Builder.store "tmp" (v "i") (load "a" (v "i"));
          Builder.store "out" (v "i") (load "tmp" (v "i") + load "b" (v "i"))
        ]
    ]
  in
  Alcotest.(check (list string)) "written" [ "tmp"; "out" ] (Stmt.buffers_written body);
  Alcotest.(check (list string)) "read" [ "a"; "tmp"; "b" ] (Stmt.buffers_read body);
  Alcotest.(check int) "depth" 1 (Stmt.max_loop_depth body)

let test_stmt_subst_shadowing () =
  let open Expr.Infix in
  let body =
    [ Builder.store "o" (v "i") (int 1);
      Builder.for_ "i" (int 4) [ Builder.store "o" (v "i") (int 2) ]
    ]
  in
  let body' = Stmt.subst_var "i" (int 9) body in
  match body' with
  | [ Stmt.Store { index = Expr.Int 9; _ }; Stmt.For { body = [ Stmt.Store s ]; _ } ] ->
    Alcotest.check expr "inner untouched" (v "i") s.index
  | _ -> Alcotest.fail "unexpected shape"

let test_rename_buffer () =
  let open Expr.Infix in
  let body = [ Builder.store "a" (int 0) (load "a" (int 1)) ] in
  match Stmt.rename_buffer ~old_name:"a" ~new_name:"z" body with
  | [ Stmt.Store { buf = "z"; value = Expr.Load ("z", _); _ } ] -> ()
  | _ -> Alcotest.fail "rename failed"

let test_simplify_block () =
  let open Expr.Infix in
  let body =
    [ Builder.if_ (int 0) [ Builder.store "a" (int 0) (int 1) ]
        ~else_:[ Builder.store "a" (int 1) (int 2) ];
      Builder.for_ "i" (int 0) [ Builder.store "a" (int 2) (int 3) ]
    ]
  in
  match Stmt.simplify body with
  | [ Stmt.Store { index = Expr.Int 1; _ } ] -> ()
  | other -> Alcotest.fail ("unexpected: " ^ Stmt.to_string other)

let test_validate_ok () =
  let open Expr.Infix in
  let k =
    Kernel.make ~name:"copy"
      ~params:[ Builder.buffer "src"; Builder.buffer "dst"; Builder.scalar "n" ]
      [ Builder.for_ "i" (v "n") [ Builder.store "dst" (v "i") (load "src" (v "i")) ] ]
  in
  match Validate.check k with
  | Ok () -> ()
  | Error es -> Alcotest.fail (Validate.errors_to_string es)

let test_validate_unbound () =
  let open Expr.Infix in
  let at_least_two es = Stdlib.( >= ) (List.length es) 2 in
  let k =
    Kernel.make ~name:"bad" ~params:[ Builder.buffer "dst" ]
      [ Builder.store "dst" (v "i") (load "ghost" (int 0)) ]
  in
  match Validate.check k with
  | Ok () -> Alcotest.fail "expected errors"
  | Error es -> Alcotest.(check bool) "two errors" true (at_least_two es)

let test_validate_intrinsic_arity () =
  let k =
    Kernel.make ~name:"bad" ~params:[ Builder.buffer "a"; Builder.buffer "b" ]
      [ Builder.intrin Intrin.Vec_add ~dst:("a", Expr.Int 0)
          ~srcs:[ ("b", Expr.Int 0) ]
          [ Expr.Int 64 ]
      ]
  in
  match Validate.check k with
  | Ok () -> Alcotest.fail "expected arity error"
  | Error _ -> ()

let test_kernel_helpers () =
  let k =
    Kernel.make ~name:"k"
      ~params:[ Builder.buffer "a"; Builder.scalar "n" ]
      ~launch:[ (Axis.Block_x, 4); (Axis.Thread_x, 32) ]
      []
  in
  Alcotest.(check int) "parallelism" 128 (Kernel.total_parallelism k);
  Alcotest.(check (option int)) "extent" (Some 4) (Kernel.axis_extent k Axis.Block_x);
  Alcotest.(check int) "buffers" 1 (List.length (Kernel.buffer_params k))

(* property tests *)

let gen_expr =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [ map (fun i -> Expr.Int i) (int_range (-20) 20);
                oneofl [ Expr.Var "x"; Expr.Var "y" ]
              ]
          else
            frequency
              [ (1, map (fun i -> Expr.Int i) (int_range (-20) 20));
                (1, oneofl [ Expr.Var "x"; Expr.Var "y" ]);
                ( 3,
                  map3
                    (fun op a b -> Expr.Binop (op, a, b))
                    (oneofl
                       [ Expr.Add; Expr.Sub; Expr.Mul; Expr.Min; Expr.Max; Expr.Lt; Expr.Le ])
                    (self (n / 2)) (self (n / 2)) );
                (1, map (fun a -> Expr.Unop (Expr.Neg, a)) (self (n - 1)))
              ])
        n)

let arb_expr = QCheck.make ~print:Expr.to_string gen_expr

let prop_simplify_preserves_value =
  QCheck.Test.make ~name:"simplify preserves integer value" ~count:500 arb_expr (fun e ->
      let env = function "x" -> 5 | "y" -> -3 | _ -> 0 in
      Expr.eval_int env e = Expr.eval_int env (Expr.simplify e))

let prop_simplify_idempotent =
  QCheck.Test.make ~name:"simplify is idempotent" ~count:500 arb_expr (fun e ->
      let s = Expr.simplify e in
      Expr.equal s (Expr.simplify s))

let prop_subst_removes_var =
  QCheck.Test.make ~name:"subst removes the variable" ~count:500 arb_expr (fun e ->
      not (Expr.contains_var "x" (Expr.subst_var "x" (Expr.Int 1) e)))

let () =
  Alcotest.run "ir"
    [ ( "expr",
        [ Alcotest.test_case "simplify constants" `Quick test_simplify_constants;
          Alcotest.test_case "simplify select" `Quick test_simplify_select;
          Alcotest.test_case "eval int" `Quick test_eval_int;
          Alcotest.test_case "free vars" `Quick test_free_vars;
          Alcotest.test_case "subst" `Quick test_subst
        ] );
      ( "stmt",
        [ Alcotest.test_case "buffers" `Quick test_stmt_buffers;
          Alcotest.test_case "subst shadowing" `Quick test_stmt_subst_shadowing;
          Alcotest.test_case "rename buffer" `Quick test_rename_buffer;
          Alcotest.test_case "simplify block" `Quick test_simplify_block
        ] );
      ( "validate",
        [ Alcotest.test_case "ok kernel" `Quick test_validate_ok;
          Alcotest.test_case "unbound names" `Quick test_validate_unbound;
          Alcotest.test_case "intrinsic arity" `Quick test_validate_intrinsic_arity;
          Alcotest.test_case "kernel helpers" `Quick test_kernel_helpers
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_simplify_preserves_value; prop_simplify_idempotent; prop_subst_removes_var ]
      )
    ]
