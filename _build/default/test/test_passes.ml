open Xpiler_ir
open Xpiler_machine
open Xpiler_passes
open Test_support.Tcommon

let e = Expr.Infix.int

(* scalar vecadd over 256 elements on a SIMT grid *)
let cuda_vecadd =
  let open Expr.Infix in
  Kernel.make ~name:"vecadd"
    ~params:[ Builder.buffer "a"; Builder.buffer "b"; Builder.buffer "c" ]
    ~launch:[ (Axis.Block_x, 4); (Axis.Thread_x, 64) ]
    [ Builder.par_for Axis.Block_x "blockIdx.x" (int 4)
        [ Builder.par_for Axis.Thread_x "threadIdx.x" (int 64)
            [ Builder.let_ "i" ((v "blockIdx.x" * int 64) + v "threadIdx.x");
              Builder.store "c" (v "i") (load "a" (v "i") + load "b" (v "i"))
            ]
        ]
    ]

(* barrier kernel: block-wise reversal through shared memory *)
let cuda_reverse =
  let open Expr.Infix in
  Kernel.make ~name:"rev"
    ~params:[ Builder.buffer "inp"; Builder.buffer "out" ]
    ~launch:[ (Axis.Block_x, 4); (Axis.Thread_x, 16) ]
    [ Builder.par_for Axis.Block_x "blockIdx.x" (int 4)
        [ Builder.alloc "tile" Scope.Shared 16;
          Builder.par_for Axis.Thread_x "threadIdx.x" (int 16)
            [ Builder.store "tile" (v "threadIdx.x")
                (load "inp" ((v "blockIdx.x" * int 16) + v "threadIdx.x"));
              Builder.sync;
              Builder.store "out"
                ((v "blockIdx.x" * int 16) + v "threadIdx.x")
                (load "tile" (int 15 - v "threadIdx.x"))
            ]
        ]
    ]

(* barrier nested inside a serial loop (tiled-GEMM shape) *)
let cuda_nested_sync =
  let open Expr.Infix in
  Kernel.make ~name:"nested"
    ~params:[ Builder.buffer "inp"; Builder.buffer "out" ]
    ~launch:[ (Axis.Thread_x, 8) ]
    [ Builder.alloc "tile" Scope.Shared 8;
      Builder.par_for Axis.Thread_x "threadIdx.x" (int 8)
        [ Builder.for_ "r" (int 4)
            [ Builder.store "tile" (v "threadIdx.x")
                (load "inp" ((v "r" * int 8) + v "threadIdx.x"));
              Builder.sync;
              Builder.store "out"
                ((v "r" * int 8) + v "threadIdx.x")
                (load "tile" (int 7 - v "threadIdx.x"));
              Builder.sync
            ]
        ]
    ]

let serial_scale =
  let open Expr.Infix in
  Kernel.make ~name:"scale"
    ~params:[ Builder.buffer "a"; Builder.buffer "c" ]
    [ Builder.for_ "i" (int 256) [ Builder.store "c" (v "i") (load "a" (v "i") * flt 2.0) ] ]

let serial_gemm m n k =
  let open Expr.Infix in
  Kernel.make ~name:"gemm"
    ~params:[ Builder.buffer "A"; Builder.buffer "B"; Builder.buffer "C" ]
    [ Builder.for_ "i" (int m)
        [ Builder.for_ "j" (int n)
            [ Builder.let_ "acc" (flt 0.0);
              Builder.for_ "k"(int k)
                [ Builder.assign "acc"
                    (v "acc" + (load "A" ((v "i" * int k) + v "k")
                               * load "B" ((v "k" * int n) + v "j")))
                ];
              Builder.store "C" ((v "i" * int n) + v "j") (v "acc")
            ]
        ]
    ]

let sz_for name =
  (* buffer sizes for the GEMM kernels: A 16x8, B 8x12, C 16x12 *)
  match name with
  | "A" -> 16 * 8
  | "B" -> 8 * 12
  | "C" -> 16 * 12
  | _ -> 1024

(* ---- loop recovery -------------------------------------------------------- *)

let test_recovery_vecadd () =
  let k' = expect_ok (Loop_pass.recovery cuda_vecadd) in
  Alcotest.(check int) "launch cleared" 1 (Kernel.total_parallelism k');
  Alcotest.(check (list string)) "no axes" [] (List.map Axis.to_string (Stmt.axes_used k'.Kernel.body));
  check_equivalent "recovery vecadd" cuda_vecadd k'

let test_recovery_barrier () =
  let k' = expect_ok (Loop_pass.recovery cuda_reverse) in
  Alcotest.(check bool) "no syncs" false (Stmt.has_sync k'.Kernel.body);
  check_equivalent "recovery barrier" cuda_reverse k'

let test_recovery_nested_sync () =
  let k' = expect_ok (Loop_pass.recovery cuda_nested_sync) in
  check_equivalent "recovery nested sync" cuda_nested_sync k'

let test_recovery_names_are_serial () =
  let k' = expect_ok (Loop_pass.recovery cuda_vecadd) in
  List.iter
    (fun var ->
      Alcotest.(check bool)
        (var ^ " is a plain name")
        false
        (String.contains var '.'))
    (Stmt.loop_vars k'.Kernel.body)

(* ---- loop bind ------------------------------------------------------------- *)

let test_bind_roundtrip () =
  let seq = expect_ok (Loop_pass.recovery cuda_vecadd) in
  let outer = List.hd (Stmt.loop_vars seq.Kernel.body) in
  let bound = expect_ok (Loop_pass.bind ~var:outer ~axis:Axis.Block_x seq) in
  Alcotest.(check (option int)) "launch recorded" (Some 4)
    (Kernel.axis_extent bound Axis.Block_x);
  check_equivalent "bind preserves semantics" seq bound

let test_bind_rejects_duplicate () =
  expect_error "axis taken"
    (Loop_pass.bind ~var:"i" ~axis:Axis.Block_x cuda_vecadd)

(* ---- loop split ------------------------------------------------------------- *)

let test_split_divisible () =
  let k' = expect_ok (Loop_pass.split ~var:"i" ~factor:32 serial_scale) in
  Alcotest.(check int) "two loops now" 2 (List.length (Stmt.loop_vars k'.Kernel.body));
  check_equivalent "split divisible" serial_scale k'

let test_split_with_guard () =
  let k' = expect_ok (Loop_pass.split ~var:"i" ~factor:48 serial_scale) in
  let has_guard = ref false in
  Stmt.iter (fun s -> match s with Stmt.If _ -> has_guard := true | _ -> ()) k'.Kernel.body;
  Alcotest.(check bool) "guard inserted" true !has_guard;
  check_equivalent "split guarded" serial_scale k'

let test_split_too_large () =
  expect_error "factor > extent" (Loop_pass.split ~var:"i" ~factor:512 serial_scale)

(* ---- fuse / reorder / expansion / contraction ------------------------------- *)

let test_fuse () =
  let split = expect_ok (Loop_pass.split ~var:"i" ~factor:16 serial_scale) in
  let fused = expect_ok (Loop_pass.fuse ~var:"i_0" split) in
  Alcotest.(check int) "single loop" 1 (List.length (Stmt.loop_vars fused.Kernel.body));
  check_equivalent "fuse" serial_scale fused

let test_reorder () =
  let g = serial_gemm 16 12 8 in
  let r = expect_ok (Loop_pass.reorder ~var:"i" g) in
  (match r.Kernel.body with
  | [ Stmt.For { var = "j"; body = [ Stmt.For { var = "i"; _ } ]; _ } ] -> ()
  | _ -> Alcotest.fail "loops not interchanged");
  check_equivalent ~buf_size:sz_for "reorder" g r

let test_reorder_imperfect () =
  expect_error "imperfect nest" (Loop_pass.reorder ~var:"j" (serial_gemm 4 4 4))

let test_expansion_contraction () =
  let open Expr.Infix in
  let k =
    Kernel.make ~name:"two"
      ~params:[ Builder.buffer "a"; Builder.buffer "b"; Builder.buffer "c" ]
      [ Builder.for_ "i" (int 64)
          [ Builder.store "b" (v "i") (load "a" (v "i") * flt 2.0);
            Builder.store "c" (v "i") (load "a" (v "i") + flt 1.0)
          ]
      ]
  in
  let fissioned = expect_ok (Loop_pass.expansion ~var:"i" k) in
  Alcotest.(check int) "two loops" 2
    (List.length
       (List.filter (function Stmt.For _ -> true | _ -> false) fissioned.Kernel.body));
  check_equivalent "expansion" k fissioned;
  let merged = expect_ok (Loop_pass.contraction ~var:"i" fissioned) in
  check_equivalent "contraction" k merged

let test_expansion_rejects_accumulator () =
  let open Expr.Infix in
  let k =
    Kernel.make ~name:"acc" ~params:[ Builder.buffer "a"; Builder.buffer "c" ]
      [ Builder.let_ "s" (flt 0.0);
        Builder.for_ "i" (int 8)
          [ Builder.assign "s" (v "s" + load "a" (v "i"));
            Builder.store "c" (v "i") (v "s")
          ]
      ]
  in
  expect_error "loop-carried state" (Loop_pass.expansion ~var:"i" k)

(* ---- cache / rescope / pipeline ---------------------------------------------- *)

let test_cache_read () =
  let k' =
    expect_ok
      (Memory_pass.cache ~buf:"a" ~scope:Scope.Nram ~direction:Memory_pass.Read
         ~base:(e 0) ~size:256 serial_scale)
  in
  (match Stmt.allocs k'.Kernel.body with
  | [ ("a_nram", Scope.Nram, _, 256) ] -> ()
  | _ -> Alcotest.fail "cache alloc missing");
  check_equivalent "cache read" serial_scale k'

let test_cache_write () =
  let k' =
    expect_ok
      (Memory_pass.cache ~buf:"c" ~scope:Scope.Nram ~direction:Memory_pass.Write
         ~base:(e 0) ~size:256 serial_scale)
  in
  check_equivalent "cache write" serial_scale k'

let test_cache_under_loop () =
  let open Expr.Infix in
  (* per-task staging: each task handles a 64-element slice *)
  let k =
    Kernel.make ~name:"tasks" ~params:[ Builder.buffer "a"; Builder.buffer "c" ]
      ~launch:[ (Axis.Task_id, 4) ]
      [ Builder.par_for Axis.Task_id "taskId" (int 4)
          [ Builder.for_ "i" (int 64)
              [ Builder.store "c"
                  ((v "taskId" * int 64) + v "i")
                  (load "a" ((v "taskId" * int 64) + v "i") * flt 3.0)
              ]
          ]
      ]
  in
  let k' =
    expect_ok
      (Memory_pass.cache ~buf:"a" ~scope:Scope.Nram ~direction:Memory_pass.Read
         ~under:"taskId"
         ~base:Expr.Infix.(v "taskId" * int 64)
         ~size:64 k)
  in
  (* the staged load index must reduce to just [i] *)
  let reduced = ref false in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Store { value; _ } ->
        (match value with
        | Expr.Binop (_, Expr.Load ("a_nram", Expr.Var "i"), _) -> reduced := true
        | _ -> ())
      | _ -> ())
    k'.Kernel.body;
  Alcotest.(check bool) "index cancelled to i" true !reduced;
  check_equivalent ~buf_size:(fun _ -> 256) "cache under loop" k k'

let test_rescope () =
  let open Expr.Infix in
  let k =
    Kernel.make ~name:"r" ~params:[ Builder.buffer "a" ]
      [ Builder.alloc "buf" Scope.Shared 64;
        Builder.memcpy ~dst:"buf" ~dst_off:(int 0) ~src:"a" ~src_off:(int 0) (int 64)
      ]
  in
  let k' = expect_ok (Memory_pass.rescope ~buf:"buf" ~scope:Scope.Nram k) in
  match Stmt.allocs k'.Kernel.body with
  | [ (_, Scope.Nram, _, _) ] -> ()
  | _ -> Alcotest.fail "rescope failed"

let test_pipeline () =
  let open Expr.Infix in
  let k =
    Kernel.make ~name:"p" ~params:[ Builder.buffer "a"; Builder.buffer "c" ]
      [ Builder.alloc "buf" Scope.Nram 64;
        Builder.for_ "t" (int 4)
          [ Builder.memcpy ~dst:"buf" ~dst_off:(int 0) ~src:"a" ~src_off:(v "t" * int 64)
              (int 64);
            Builder.intrin Intrin.Vec_scale ~dst:("buf", int 0) ~srcs:[ ("buf", int 0) ]
              [ int 64; flt 2.0 ];
            Builder.memcpy ~dst:"c" ~dst_off:(v "t" * int 64) ~src:"buf" ~src_off:(int 0)
              (int 64)
          ]
      ]
  in
  let k' = expect_ok (Memory_pass.pipeline ~var:"t" k) in
  (match k'.Kernel.body with
  | [ _; Stmt.For { kind = Stmt.Pipelined; _ } ] -> ()
  | _ -> Alcotest.fail "loop not pipelined");
  check_equivalent "pipeline semantics unchanged" k k';
  expect_error "nothing to overlap" (Memory_pass.pipeline ~var:"i" serial_scale)

let test_decache () =
  (* staging introduced by a cache pass can be removed again *)
  let cached =
    expect_ok
      (Memory_pass.cache ~buf:"a" ~scope:Scope.Nram ~direction:Memory_pass.Read ~base:(e 0)
         ~size:256 serial_scale)
  in
  let removed = expect_ok (Memory_pass.decache ~buf:"a_nram" cached) in
  Alcotest.(check int) "alloc gone" 0 (List.length (Stmt.allocs removed.Kernel.body));
  check_equivalent "decache" serial_scale removed

let test_decache_window_offset () =
  let open Expr.Infix in
  (* window staged at a non-zero base: accesses must be redirected there *)
  let k =
    Kernel.make ~name:"w" ~params:[ Builder.buffer "a"; Builder.buffer "c" ]
      [ Builder.alloc "buf" Scope.Nram 64;
        Builder.memcpy ~dst:"buf" ~dst_off:(int 0) ~src:"a" ~src_off:(int 128) (int 64);
        Builder.for_ "i" (int 64)
          [ Builder.store "c" (v "i") (load "buf" (v "i") * flt 2.0) ]
      ]
  in
  let removed = expect_ok (Memory_pass.decache ~buf:"buf" k) in
  check_equivalent ~buf_size:(fun _ -> 256) "decache offset" k removed;
  (* and the redirected index reads the origin at base + i *)
  let redirected = ref false in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Store { value = Expr.Binop (_, Expr.Load ("a", _), _); _ } -> redirected := true
      | _ -> ())
    removed.Kernel.body;
  Alcotest.(check bool) "origin accessed" true !redirected

let test_decache_rejects_scratch () =
  let open Expr.Infix in
  (* a genuine temporary with no staging copies cannot be decached *)
  let k =
    Kernel.make ~name:"t" ~params:[ Builder.buffer "a" ]
      [ Builder.alloc "tmp" Scope.Local 8;
        Builder.for_ "i" (int 8) [ Builder.store "tmp" (v "i") (load "a" (v "i")) ]
      ]
  in
  expect_error "no staging pattern" (Memory_pass.decache ~buf:"tmp" k)

let test_linear_divmod_fold () =
  let open Expr.Infix in
  (* (x / 16) * 16 + x % 16 == x : produced by loop fusion *)
  let fused = ((v "x" / int 16) * int 16) + (v "x" % int 16) in
  Alcotest.(check bool) "folds to x" true (Expr.equal (Linear.normalize fused) (v "x"));
  (* scaled variant: 3*(x/16)*16 + 3*(x%16) == 3x *)
  let scaled = ((v "x" / int 16) * int 48) + ((v "x" % int 16) * int 3) in
  Alcotest.(check bool) "scaled folds" true
    (Expr.equal (Linear.normalize scaled) (Linear.normalize (v "x" * int 3)))

let test_tensorize_conv2d () =
  (* whole-buffer staged NHWC convolution becomes one conv intrinsic *)
  let op = Xpiler_ops.Registry.find_exn "conv2d_nhwc" in
  let shape = List.hd op.Xpiler_ops.Opdef.shapes in
  let k = Xpiler_ops.Idiom.source Platform.Bang op shape in
  Alcotest.(check bool) "conv intrinsic" true
    (List.exists
       (fun (i : Intrin.t) -> Intrin.equal_op i.op Intrin.Conv2d)
       (Stmt.intrinsics k.Kernel.body))

(* ---- tensorize / detensorize --------------------------------------------------- *)

let bang = Platform.bang
let vnni = Platform.vnni

(* On the MLU, vector intrinsics require NRAM operands, so the kernels under
   test stage their data on-chip first (as the cache pass would). *)
let staged_scale =
  let open Expr.Infix in
  Kernel.make ~name:"scale"
    ~params:[ Builder.buffer "a"; Builder.buffer "c" ]
    [ Builder.alloc "an" Scope.Nram 256;
      Builder.alloc "cn" Scope.Nram 256;
      Builder.memcpy ~dst:"an" ~dst_off:(int 0) ~src:"a" ~src_off:(int 0) (int 256);
      Builder.for_ "i" (int 256) [ Builder.store "cn" (v "i") (load "an" (v "i") * flt 2.0) ];
      Builder.memcpy ~dst:"c" ~dst_off:(int 0) ~src:"cn" ~src_off:(int 0) (int 256)
    ]

let test_tensorize_elementwise () =
  let k' = expect_ok (Tensor_pass.tensorize ~platform:bang staged_scale) in
  (match Stmt.intrinsics k'.Kernel.body with
  | [ { op = Intrin.Vec_scale; _ } ] -> ()
  | _ -> Alcotest.fail ("expected vec_scale:\n" ^ Kernel.to_string k'));
  check_equivalent "tensorize scale" staged_scale k'

let test_tensorize_scope_blindness_rejected () =
  (* un-staged global operands must NOT be tensorized on the MLU *)
  expect_error "global operands" (Tensor_pass.tensorize ~platform:bang serial_scale)

let test_tensorize_binary_and_unary () =
  let open Expr.Infix in
  let k =
    Kernel.make ~name:"act"
      ~params:[ Builder.buffer "a"; Builder.buffer "b"; Builder.buffer "c" ]
      [ Builder.alloc "an" Scope.Nram 128;
        Builder.alloc "bn" Scope.Nram 128;
        Builder.alloc "cn" Scope.Nram 128;
        Builder.memcpy ~dst:"an" ~dst_off:(int 0) ~src:"a" ~src_off:(int 0) (int 128);
        Builder.memcpy ~dst:"bn" ~dst_off:(int 0) ~src:"b" ~src_off:(int 0) (int 128);
        Builder.for_ "i" (int 128)
          [ Builder.store "cn" (v "i") (load "an" (v "i") + load "bn" (v "i")) ];
        Builder.for_ "i" (int 128)
          [ Builder.store "bn" (v "i") (Expr.Unop (Expr.Exp, load "cn" (v "i"))) ];
        Builder.memcpy ~dst:"c" ~dst_off:(int 0) ~src:"cn" ~src_off:(int 0) (int 128);
        Builder.memcpy ~dst:"b" ~dst_off:(int 0) ~src:"bn" ~src_off:(int 0) (int 128)
      ]
  in
  let k' = expect_ok (Tensor_pass.tensorize ~platform:bang k) in
  Alcotest.(check int) "two intrinsics" 2 (List.length (Stmt.intrinsics k'.Kernel.body));
  check_equivalent "tensorize add+exp" k k'

let staged_gemm m n k =
  let open Expr.Infix in
  let mk = Stdlib.( * ) m k and kn = Stdlib.( * ) k n and mn = Stdlib.( * ) m n in
  Kernel.make ~name:"gemm"
    ~params:[ Builder.buffer "A"; Builder.buffer "B"; Builder.buffer "C" ]
    [ Builder.alloc "An" Scope.Nram mk;
      Builder.alloc "Bw" Scope.Wram kn;
      Builder.alloc "Cn" Scope.Nram mn;
      Builder.memcpy ~dst:"An" ~dst_off:(int 0) ~src:"A" ~src_off:(int 0) (int mk);
      Builder.memcpy ~dst:"Bw" ~dst_off:(int 0) ~src:"B" ~src_off:(int 0) (int kn);
      Builder.for_ "i" (int m)
        [ Builder.for_ "j" (int n)
            [ Builder.let_ "acc" (flt 0.0);
              Builder.for_ "p" (int k)
                [ Builder.assign "acc"
                    (v "acc" + (load "An" ((v "i" * int k) + v "p")
                               * load "Bw" ((v "p" * int n) + v "j")))
                ];
              Builder.store "Cn" ((v "i" * int n) + v "j") (v "acc")
            ]
        ];
      Builder.memcpy ~dst:"C" ~dst_off:(int 0) ~src:"Cn" ~src_off:(int 0) (int mn)
    ]

let test_tensorize_matmul () =
  let g = staged_gemm 16 12 8 in
  let k' = expect_ok (Tensor_pass.tensorize ~platform:bang g) in
  (match
     List.filter
       (fun (i : Intrin.t) -> Intrin.equal_op i.op Intrin.Mlp)
       (Stmt.intrinsics k'.Kernel.body)
   with
  | [ { params = [ Expr.Int 16; Expr.Int 8; Expr.Int 12 ]; _ } ] -> ()
  | _ -> Alcotest.fail ("expected mlp(16,8,12):\n" ^ Kernel.to_string k'));
  check_equivalent ~buf_size:sz_for "tensorize matmul" g k'

let test_tensorize_matmul_accumulate_form () =
  (* zero fill + direct accumulation, the shape detensorization produces *)
  let open Expr.Infix in
  let g =
    Kernel.make ~name:"gemm"
      ~params:[ Builder.buffer "A"; Builder.buffer "B"; Builder.buffer "C" ]
      [ Builder.alloc "An" Scope.Nram 128;
        Builder.alloc "Bw" Scope.Wram 96;
        Builder.alloc "Cn" Scope.Nram 192;
        Builder.memcpy ~dst:"An" ~dst_off:(int 0) ~src:"A" ~src_off:(int 0) (int 128);
        Builder.memcpy ~dst:"Bw" ~dst_off:(int 0) ~src:"B" ~src_off:(int 0) (int 96);
        Builder.intrin Intrin.Vec_fill ~dst:("Cn", int 0) [ int 192; flt 0.0 ];
        Builder.for_ "i" (int 16)
          [ Builder.for_ "j" (int 12)
              [ Builder.for_ "p" (int 8)
                  [ Builder.store "Cn" ((v "i" * int 12) + v "j")
                      (load "Cn" ((v "i" * int 12) + v "j")
                      + (load "An" ((v "i" * int 8) + v "p")
                        * load "Bw" ((v "p" * int 12) + v "j")))
                  ]
              ]
          ];
        Builder.memcpy ~dst:"C" ~dst_off:(int 0) ~src:"Cn" ~src_off:(int 0) (int 192)
      ]
  in
  let k' = expect_ok (Tensor_pass.tensorize ~platform:bang g) in
  Alcotest.(check bool) "mlp present" true
    (List.exists
       (fun (i : Intrin.t) -> Intrin.equal_op i.op Intrin.Mlp)
       (Stmt.intrinsics k'.Kernel.body));
  check_equivalent ~buf_size:sz_for "accumulate-form matmul" g k'

let test_tensorize_reduction () =
  let open Expr.Infix in
  let k =
    Kernel.make ~name:"sum" ~params:[ Builder.buffer "a"; Builder.buffer "out" ]
      [ Builder.alloc "an" Scope.Nram 128;
        Builder.memcpy ~dst:"an" ~dst_off:(int 0) ~src:"a" ~src_off:(int 0) (int 128);
        Builder.let_ "acc" (flt 0.0);
        Builder.for_ "i" (int 128) [ Builder.assign "acc" (v "acc" + load "an" (v "i")) ];
        Builder.store "out" (int 0) (v "acc")
      ]
  in
  let k' = expect_ok (Tensor_pass.tensorize ~platform:bang k) in
  (match Stmt.intrinsics k'.Kernel.body with
  | [ { op = Intrin.Vec_reduce_sum; _ } ] -> ()
  | _ -> Alcotest.fail "expected reduce_sum");
  check_equivalent "tensorize reduction" k k'

let test_tensorize_dot_product () =
  let open Expr.Infix in
  (* acc += a[i]*b[i] over NRAM operands becomes vec_mul + reduce_sum *)
  let k =
    Kernel.make ~name:"dot" ~params:[ Builder.buffer "a"; Builder.buffer "b"; Builder.buffer "y" ]
      [ Builder.alloc "an" Scope.Nram 128;
        Builder.alloc "bn" Scope.Nram 128;
        Builder.memcpy ~dst:"an" ~dst_off:(int 0) ~src:"a" ~src_off:(int 0) (int 128);
        Builder.memcpy ~dst:"bn" ~dst_off:(int 0) ~src:"b" ~src_off:(int 0) (int 128);
        Builder.let_ "acc" (flt 0.0);
        Builder.for_ "p" (int 128)
          [ Builder.assign "acc" (v "acc" + (load "an" (v "p") * load "bn" (v "p"))) ];
        Builder.store "y" (int 0) (v "acc")
      ]
  in
  let k' = expect_ok (Tensor_pass.tensorize ~platform:bang k) in
  let ops = List.map (fun (i : Intrin.t) -> i.op) (Stmt.intrinsics k'.Kernel.body) in
  Alcotest.(check bool) "vec_mul" true (List.mem Intrin.Vec_mul ops);
  Alcotest.(check bool) "reduce_sum" true (List.mem Intrin.Vec_reduce_sum ops);
  check_equivalent "dot product" k k'

let test_tensorize_dp4a () =
  let open Expr.Infix in
  let k =
    Kernel.make ~name:"dot"
      ~params:
        [ Builder.buffer ~dtype:Dtype.I8 "a"; Builder.buffer ~dtype:Dtype.I8 "b";
          Builder.buffer ~dtype:Dtype.I32 "c" ]
      [ Builder.for_ "g" (int 32)
          [ Builder.let_ "acc" (int 0);
            Builder.for_ "j" (int 4)
              [ Builder.assign "acc"
                  (v "acc"
                  + (load "a" ((v "g" * int 4) + v "j") * load "b" ((v "g" * int 4) + v "j")))
              ];
            Builder.store "c" (v "g") (v "acc")
          ]
      ]
  in
  let k' = expect_ok (Tensor_pass.tensorize ~platform:vnni k) in
  (match
     List.filter
       (fun (i : Intrin.t) -> Intrin.equal_op i.op Intrin.Dp4a)
       (Stmt.intrinsics k'.Kernel.body)
   with
  | [ { params = [ Expr.Int 128 ]; _ } ] -> ()
  | intrs ->
    Alcotest.fail
      (Printf.sprintf "expected dp4a(128), got %d:\n%s" (List.length intrs)
         (Kernel.to_string k')));
  check_equivalent "tensorize dp4a" k k'

let test_tensorize_alignment_guard () =
  let open Expr.Infix in
  (* 100 elements: not a multiple of the MLU's 64-element granularity *)
  let k =
    Kernel.make ~name:"odd" ~params:[ Builder.buffer "a"; Builder.buffer "c" ]
      [ Builder.alloc "an" Scope.Nram 128;
        Builder.alloc "cn" Scope.Nram 128;
        Builder.memcpy ~dst:"an" ~dst_off:(int 0) ~src:"a" ~src_off:(int 0) (int 100);
        Builder.for_ "i" (int 100) [ Builder.store "cn" (v "i") (load "an" (v "i") * flt 2.0) ];
        Builder.memcpy ~dst:"c" ~dst_off:(int 0) ~src:"cn" ~src_off:(int 0) (int 100)
      ]
  in
  expect_error "misaligned extent" (Tensor_pass.tensorize ~platform:bang k)

let test_detensorize_inverse () =
  let g = staged_gemm 16 12 8 in
  let t = expect_ok (Tensor_pass.tensorize ~platform:bang g) in
  let d = expect_ok (Tensor_pass.detensorize t) in
  Alcotest.(check int) "no intrinsics left" 0 (List.length (Stmt.intrinsics d.Kernel.body));
  check_equivalent ~buf_size:sz_for "detensorize gemm" g d

let test_detensorize_all_ops () =
  let open Expr.Infix in
  let mk op srcs params =
    Kernel.make ~name:"k"
      ~params:[ Builder.buffer "x"; Builder.buffer "y"; Builder.buffer "z" ]
      [ Builder.intrin op ~dst:("z", int 0) ~srcs params ]
  in
  let cases =
    [ mk Intrin.Vec_add [ ("x", e 0); ("y", e 0) ] [ e 64 ];
      mk Intrin.Vec_sub [ ("x", e 0); ("y", e 0) ] [ e 64 ];
      mk Intrin.Vec_mul [ ("x", e 0); ("y", e 0) ] [ e 64 ];
      mk Intrin.Vec_max [ ("x", e 0); ("y", e 0) ] [ e 64 ];
      mk Intrin.Vec_min [ ("x", e 0); ("y", e 0) ] [ e 64 ];
      mk Intrin.Vec_exp [ ("x", e 0) ] [ e 64 ];
      mk Intrin.Vec_tanh [ ("x", e 0) ] [ e 64 ];
      mk Intrin.Vec_copy [ ("x", e 0) ] [ e 64 ];
      mk Intrin.Vec_scale [ ("x", e 0) ] [ e 64; Expr.Float 1.5 ];
      mk Intrin.Vec_adds [ ("x", e 0) ] [ e 64; Expr.Float 0.5 ];
      mk Intrin.Vec_fill [] [ e 64; Expr.Float 7.0 ];
      mk Intrin.Vec_reduce_sum [ ("x", e 0) ] [ e 64 ];
      mk Intrin.Vec_reduce_max [ ("x", e 0) ] [ e 64 ];
      mk Intrin.Dp4a [ ("x", e 0); ("y", e 0) ] [ e 64 ]
    ]
  in
  List.iteri
    (fun idx k ->
      let d = expect_ok (Tensor_pass.detensorize k) in
      check_equivalent ~buf_size:(fun _ -> 64)
        (Printf.sprintf "detensorize case %d" idx)
        k d)
    cases

(* ---- pass dispatch / composition ------------------------------------------------ *)

let test_full_pipeline_gemm_to_bang () =
  (* sequential GEMM -> split rows across tasks -> cache -> tensorize:
     a miniature of the paper's CUDA->BANG pipeline *)
  let g = serial_gemm 16 12 8 in
  let apply spec k = expect_ok (Pass.apply ~platform:bang spec k) in
  let k = apply (Pass.Loop_split { var = "i"; factor = 4 }) g in
  let k = apply (Pass.Loop_bind { var = "i_0"; axis = Axis.Task_id }) k in
  let k =
    apply
      (Pass.Cache
         { buf = "A"; scope = Scope.Nram; direction = Memory_pass.Read;
           under = Some "taskId";
           base = Expr.Infix.(v "taskId" * int 32);
           size = 32
         })
      k
  in
  let k =
    apply
      (Pass.Cache
         { buf = "B"; scope = Scope.Wram; direction = Memory_pass.Read; under = Some "taskId";
           base = e 0; size = 96
         })
      k
  in
  let k =
    apply
      (Pass.Cache
         { buf = "C"; scope = Scope.Nram; direction = Memory_pass.Write;
           under = Some "taskId";
           base = Expr.Infix.(v "taskId" * int 48);
           size = 48
         })
      k
  in
  let k = apply Pass.Tensorize k in
  (match Stmt.intrinsics k.Kernel.body with
  | [ { op = Intrin.Mlp; _ } ] -> ()
  | _ -> Alcotest.fail ("pipeline did not tensorize:\n" ^ Kernel.to_string k));
  (* the final program must compile on the MLU and stay correct *)
  (match Checker.compile bang k with
  | Ok () -> ()
  | Error es -> Alcotest.fail (Checker.errors_to_string es));
  check_equivalent ~buf_size:sz_for "pipeline preserves gemm" g k

(* ---- property tests -------------------------------------------------------------- *)

let arb_factor = QCheck.oneofl [ 2; 4; 8; 16; 32; 3; 5; 7 ]

let prop_split_preserves =
  QCheck.Test.make ~name:"split preserves semantics for any factor" ~count:40 arb_factor
    (fun factor ->
      match Loop_pass.split ~var:"i" ~factor serial_scale with
      | Ok k' -> divergence serial_scale k' = None
      | Error _ -> factor > 256)

let prop_split_then_fuse_identity =
  QCheck.Test.make ~name:"fuse after divisible split is semantically identity" ~count:20
    (QCheck.oneofl [ 2; 4; 8; 16 ])
    (fun factor ->
      match Loop_pass.split ~var:"i" ~factor serial_scale with
      | Error _ -> false
      | Ok split -> (
        match Loop_pass.fuse ~var:"i_0" split with
        | Error _ -> false
        | Ok fused -> divergence serial_scale fused = None))

let prop_cache_any_window =
  (* the cached window must cover the region's accesses, so the kernel under
     test reads exactly [base, base+size) *)
  QCheck.Test.make ~name:"cache of any covering window preserves semantics" ~count:30
    (QCheck.pair (QCheck.int_range 0 3) (QCheck.oneofl [ 64; 128; 256 ]))
    (fun (q, size) ->
      let base = q * 64 in
      if base + size > 1024 then true
      else begin
        let k =
          let open Expr.Infix in
          Kernel.make ~name:"window"
            ~params:[ Builder.buffer "a"; Builder.buffer "c" ]
            [ Builder.for_ "i" (int size)
                [ Builder.store "c" (v "i") (load "a" (v "i" + int base) * flt 2.0) ]
            ]
        in
        match
          Memory_pass.cache ~buf:"a" ~scope:Scope.Nram ~direction:Memory_pass.Read
            ~base:(e base) ~size k
        with
        | Ok k' -> divergence k k' = None
        | Error _ -> false
      end)

let () =
  Alcotest.run "passes"
    [ ( "recovery",
        [ Alcotest.test_case "vecadd" `Quick test_recovery_vecadd;
          Alcotest.test_case "barrier fission" `Quick test_recovery_barrier;
          Alcotest.test_case "nested sync interchange" `Quick test_recovery_nested_sync;
          Alcotest.test_case "serial names" `Quick test_recovery_names_are_serial
        ] );
      ( "bind",
        [ Alcotest.test_case "roundtrip" `Quick test_bind_roundtrip;
          Alcotest.test_case "duplicate axis" `Quick test_bind_rejects_duplicate
        ] );
      ( "split",
        [ Alcotest.test_case "divisible" `Quick test_split_divisible;
          Alcotest.test_case "guarded" `Quick test_split_with_guard;
          Alcotest.test_case "too large" `Quick test_split_too_large
        ] );
      ( "reshape",
        [ Alcotest.test_case "fuse" `Quick test_fuse;
          Alcotest.test_case "reorder" `Quick test_reorder;
          Alcotest.test_case "reorder imperfect" `Quick test_reorder_imperfect;
          Alcotest.test_case "expansion+contraction" `Quick test_expansion_contraction;
          Alcotest.test_case "expansion accumulator" `Quick test_expansion_rejects_accumulator
        ] );
      ( "memory",
        [ Alcotest.test_case "cache read" `Quick test_cache_read;
          Alcotest.test_case "cache write" `Quick test_cache_write;
          Alcotest.test_case "cache under loop" `Quick test_cache_under_loop;
          Alcotest.test_case "rescope" `Quick test_rescope;
          Alcotest.test_case "decache" `Quick test_decache;
          Alcotest.test_case "decache window offset" `Quick test_decache_window_offset;
          Alcotest.test_case "decache rejects scratch" `Quick test_decache_rejects_scratch;
          Alcotest.test_case "linear div/mod fold" `Quick test_linear_divmod_fold;
          Alcotest.test_case "conv2d tensorize" `Quick test_tensorize_conv2d;
          Alcotest.test_case "pipeline" `Quick test_pipeline
        ] );
      ( "tensorize",
        [ Alcotest.test_case "elementwise" `Quick test_tensorize_elementwise;
          Alcotest.test_case "scope blindness rejected" `Quick
            test_tensorize_scope_blindness_rejected;
          Alcotest.test_case "binary+unary" `Quick test_tensorize_binary_and_unary;
          Alcotest.test_case "matmul accumulate form" `Quick
            test_tensorize_matmul_accumulate_form;
          Alcotest.test_case "matmul" `Quick test_tensorize_matmul;
          Alcotest.test_case "reduction" `Quick test_tensorize_reduction;
          Alcotest.test_case "dot product" `Quick test_tensorize_dot_product;
          Alcotest.test_case "dp4a" `Quick test_tensorize_dp4a;
          Alcotest.test_case "alignment guard" `Quick test_tensorize_alignment_guard;
          Alcotest.test_case "detensorize inverse" `Quick test_detensorize_inverse;
          Alcotest.test_case "detensorize all ops" `Quick test_detensorize_all_ops
        ] );
      ("pipeline", [ Alcotest.test_case "gemm to bang" `Quick test_full_pipeline_gemm_to_bang ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_split_preserves; prop_split_then_fuse_identity; prop_cache_any_window ] )
    ]
