module Rng = Xpiler_util.Rng
module Vclock = Xpiler_util.Vclock

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail (Printf.sprintf "out of range: %d" v)
  done

let test_rng_int_in () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.int_in r (-5) 5 in
    if v < -5 || v > 5 then Alcotest.fail "range"
  done

let test_rng_split_independent () =
  let r = Rng.create 1 in
  let a = Rng.split r in
  let b = Rng.split r in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_choose_weighted () =
  let r = Rng.create 3 in
  let hits = ref 0 in
  for _ = 1 to 1000 do
    if Rng.choose_weighted r [ (0.9, `A); (0.1, `B) ] = `A then incr hits
  done;
  Alcotest.(check bool) "weighting respected" true (!hits > 800)

let test_rng_shuffle_permutation () =
  let r = Rng.create 5 in
  let xs = [ 1; 2; 3; 4; 5; 6; 7 ] in
  let ys = Rng.shuffle r xs in
  Alcotest.(check (list int)) "same multiset" xs (List.sort compare ys)

let test_vclock () =
  let c = Vclock.create () in
  Vclock.charge c Vclock.Annotation 10.0;
  Vclock.charge c Vclock.Smt_solving 5.0;
  Vclock.charge c Vclock.Annotation 2.5;
  Alcotest.(check (float 1e-9)) "stage total" 12.5 (Vclock.stage_total c Vclock.Annotation);
  Alcotest.(check (float 1e-9)) "elapsed" 17.5 (Vclock.elapsed c);
  let d = Vclock.create () in
  Vclock.charge d Vclock.Unit_test 1.0;
  Vclock.merge c d;
  Alcotest.(check (float 1e-9)) "merged" 18.5 (Vclock.elapsed c);
  Vclock.reset c;
  Alcotest.(check (float 1e-9)) "reset" 0.0 (Vclock.elapsed c)

let test_vclock_negative () =
  let c = Vclock.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Vclock.charge: negative duration")
    (fun () -> Vclock.charge c Vclock.Annotation (-1.0))

let prop_bernoulli_frequency =
  QCheck.Test.make ~name:"bernoulli frequency tracks p" ~count:20
    QCheck.(float_range 0.1 0.9)
    (fun p ->
      let r = Rng.create 77 in
      let hits = ref 0 in
      let n = 5000 in
      for _ = 1 to n do
        if Rng.bernoulli r p then incr hits
      done;
      Float.abs ((float_of_int !hits /. float_of_int n) -. p) < 0.05)

let () =
  Alcotest.run "util"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "weighted choice" `Quick test_rng_choose_weighted;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation
        ] );
      ( "vclock",
        [ Alcotest.test_case "charge/merge/reset" `Quick test_vclock;
          Alcotest.test_case "negative rejected" `Quick test_vclock_negative
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_bernoulli_frequency ])
    ]
