examples/repair_demo.ml: Expr Idiom Intrin Kernel List Localize Platform Printf Registry Repairer Stmt String Unit_test Xpiler_ir Xpiler_lang Xpiler_machine Xpiler_ops Xpiler_repair
