examples/quantized_dot.mli:
