examples/gemm_tour.mli:
