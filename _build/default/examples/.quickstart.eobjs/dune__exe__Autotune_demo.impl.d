examples/autotune_demo.ml: Float List Opdef Platform Printf Registry String Unit_test Xpiler_lang Xpiler_machine Xpiler_ops Xpiler_passes Xpiler_tuning
