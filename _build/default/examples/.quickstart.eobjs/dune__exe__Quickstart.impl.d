examples/quickstart.ml: List Platform Printf Registry String Xpiler Xpiler_core Xpiler_ir Xpiler_lang Xpiler_machine Xpiler_ops Xpiler_passes
