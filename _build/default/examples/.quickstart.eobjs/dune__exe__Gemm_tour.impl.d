examples/gemm_tour.ml: Config Idiom List Platform Printf Registry String Xpiler Xpiler_baselines Xpiler_core Xpiler_machine Xpiler_ops
