examples/repair_demo.mli:
