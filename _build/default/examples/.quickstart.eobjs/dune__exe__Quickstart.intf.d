examples/quickstart.mli:
