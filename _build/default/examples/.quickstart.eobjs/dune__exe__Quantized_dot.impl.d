examples/quantized_dot.ml: Codegen Dialect Dtype Interp Parser Platform Printf Tensor Xpiler_ir Xpiler_lang Xpiler_machine Xpiler_passes Xpiler_util
