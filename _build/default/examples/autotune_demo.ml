(* Hierarchical auto-tuning: from a naive sequential GEMM to a staged,
   tensorized MLU kernel, discovered by inter-pass MCTS over the 11
   transformation passes with intra-pass brute force on each state.

   Run with: dune exec examples/autotune_demo.exe *)

open Xpiler_machine
open Xpiler_ops
module Mcts = Xpiler_tuning.Mcts
module Knobs = Xpiler_tuning.Knobs

let () =
  let op = Registry.find_exn "gemm" in
  let shape = [ ("m", 32); ("n", 64); ("k", 64) ] in
  let serial = op.Opdef.serial shape in
  let platform = Platform.bang in
  Printf.printf "intra-pass knob space on %s: %d configurations\n\n" platform.Platform.name
    (Knobs.space_size platform serial);
  let buffer_sizes =
    List.map (fun (b : Opdef.buffer_spec) -> (b.buf_name, b.size shape)) op.Opdef.buffers
  in
  List.iter
    (fun sims ->
      let config = { Mcts.default_config with simulations = sims; max_depth = 8 } in
      let r = Mcts.search ~config ~buffer_sizes ~platform serial in
      Printf.printf
        "MCTS %4d simulations: %3d nodes, reward %.3g -> %.3g (%.1fx), sequence: %s\n%!"
        sims r.Mcts.nodes_expanded r.Mcts.root_reward r.Mcts.best_reward
        (r.Mcts.best_reward /. Float.max r.Mcts.root_reward 1e-9)
        (String.concat " | " (List.map Xpiler_passes.Pass.describe r.Mcts.best_specs)))
    [ 8; 32; 128 ];
  (* show the best program at the largest budget *)
  let r =
    Mcts.search
      ~config:{ Mcts.default_config with simulations = 128; max_depth = 8 }
      ~buffer_sizes ~platform serial
  in
  (* the tuner only explores semantics-preserving passes; confirm anyway *)
  (match Unit_test.check op shape r.Mcts.best_kernel with
  | Unit_test.Pass -> print_endline "\nbest kernel passes the unit tests"
  | Unit_test.Fail m -> Printf.printf "\nbest kernel FAILS: %s\n" m);
  print_endline "\n--- best kernel (BANG C) ---";
  print_string (Xpiler_lang.Codegen.emit Xpiler_lang.Dialect.bang r.Mcts.best_kernel)
