(* Neural-symbolic repair in action: the Figure 2(c) scenario.

   The "LLM" tensorizes a kernel but gets the intrinsic length parameter
   wrong (1024 instead of the staged window size). The unit test catches it,
   bug localization narrows the fault to the parameter, and SMT-based code
   repairing recovers the correct constant from the program's own context
   (allocation sizes, copy lengths) under the platform's alignment
   constraints.

   Run with: dune exec examples/repair_demo.exe *)

open Xpiler_ir
open Xpiler_machine
open Xpiler_ops
open Xpiler_repair

let () =
  let op = Registry.find_exn "add" in
  let shape = [ ("n", 256) ] in
  let good = Idiom.source Platform.Bang op shape in
  print_endline "--- correct BANG C kernel ---";
  print_string (Idiom.source_text Platform.Bang op shape);

  (* break it the way Figure 2(c) shows: a plausible-but-wrong length *)
  let broken =
    Kernel.map_body
      (Stmt.map_block (fun s ->
           match s with
           | Stmt.Intrinsic ({ op = Intrin.Vec_add; params = _ :: rest; _ } as i) ->
             Some (Stmt.Intrinsic { i with params = Expr.Int 1024 :: rest })
           | s -> Some s))
      good
  in
  print_endline "\n--- after the (simulated) LLM's mistake: vec_add length 1024 ---";
  (match Unit_test.check op shape broken with
  | Unit_test.Pass -> print_endline "unit test: PASS (unexpected!)"
  | Unit_test.Fail m -> Printf.printf "unit test: FAIL (%s)\n" m);

  (* Algorithm 2: localize *)
  let report = Localize.localize ~op ~shape broken in
  Printf.printf "\nbug localization: failing buffers [%s], %d candidate sites\n"
    (String.concat "; " report.Localize.failing_buffers)
    (List.length report.Localize.sites);
  List.iter
    (fun site -> Printf.printf "  site: %s\n" (Localize.site_to_string site))
    report.Localize.sites;

  (* Algorithm 3: SMT-based repair *)
  match Repairer.repair ~platform:Platform.bang ~op ~shape broken with
  | Repairer.Repaired { kernel; tests_run; site } ->
    Printf.printf "\nrepaired at %s after %d unit-test runs\n" site tests_run;
    (match Unit_test.check op shape kernel with
    | Unit_test.Pass -> print_endline "unit test: PASS";
    | Unit_test.Fail m -> Printf.printf "unit test: still failing (%s)\n" m);
    print_endline "\n--- repaired kernel ---";
    print_string (Xpiler_lang.Codegen.emit Xpiler_lang.Dialect.bang kernel)
  | Repairer.Gave_up { reason; tests_run } ->
    Printf.printf "\nrepair gave up after %d tests: %s\n" tests_run reason
