(* Quickstart: translate a CUDA C kernel you wrote by hand to BANG C.

   Run with: dune exec examples/quickstart.exe *)

open Xpiler_machine
open Xpiler_ops
open Xpiler_core

(* A CUDA kernel as you would write it: a ReLU over 1024 elements. The
   #launch pragma records the grid (our miniature of <<<grid, block>>>). *)
let my_cuda_kernel =
  {|#launch blockIdx.x=4 threadIdx.x=256
__global__ void relu(float* inp, float* out) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  out[i] = max(inp[i], 0.0f);
}|}

let () =
  print_endline "--- source (CUDA C) ---";
  print_endline my_cuda_kernel;

  (* parse it to check it round-trips through the front-end *)
  let kernel = Xpiler_lang.Parser.parse Xpiler_lang.Dialect.cuda my_cuda_kernel in
  Printf.printf "\nparsed kernel `%s` with %d-way parallelism\n" kernel.Xpiler_ir.Kernel.name
    (Xpiler_ir.Kernel.total_parallelism kernel);

  (* translate: the transcompiler validates every pass against the operator's
     unit tests, so we tell it which operator (and shape) this kernel is *)
  let op = Registry.find_exn "relu" in
  let shape = [ ("n", 1024) ] in
  let outcome =
    Xpiler.transcompile ~src:Platform.Cuda ~dst:Platform.Bang ~op ~shape ()
  in
  Printf.printf "\ntranslation: %s\n" (Xpiler.status_to_string outcome.Xpiler.status);
  Printf.printf "passes applied: %s\n\n"
    (String.concat " | "
       (List.map Xpiler_passes.Pass.describe outcome.Xpiler.specs_applied));
  print_endline "--- target (BANG C) ---";
  match outcome.Xpiler.target_text with
  | Some text -> print_endline text
  | None -> print_endline "(no output)"
