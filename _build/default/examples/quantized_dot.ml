(* Cross-ISA intrinsic mapping on quantized (int8) code: the DL Boost
   VNNI dot-product intrinsic `_mm512_dpbusd_epi32` is restored to loops by
   the detensorize pass and re-tensorized as CUDA's `__dp4a`.

   Run with: dune exec examples/quantized_dot.exe *)

open Xpiler_ir
open Xpiler_machine
open Xpiler_lang
module Pass = Xpiler_passes.Pass

let vnni_source =
  {|void qdot(int8_t* a, int8_t* b, int32_t* acc) {
  for (int g = 0; g < 64; g++) {
    acc[g] = 0;
  }
  _mm512_dpbusd_epi32(acc, a, b, 256);
}|}

let () =
  print_endline "--- source: C with VNNI (int8 dot products) ---";
  print_endline vnni_source;

  let k = Parser.parse Dialect.vnni vnni_source in

  (* detensorize: restore the intrinsic to explicit loops *)
  let serial =
    match Pass.apply ~platform:Platform.cuda Pass.Detensorize k with
    | Ok k -> k
    | Error m -> failwith m
  in
  print_endline "\n--- after detensorize (plain C) ---";
  print_string (Codegen.emit Dialect.vnni serial);

  (* tensorize for the GPU: the same groups-of-4 pattern becomes __dp4a *)
  let cuda =
    match Pass.apply ~platform:Platform.cuda Pass.Tensorize serial with
    | Ok k -> k
    | Error m -> failwith m
  in
  print_endline "\n--- after tensorize for NVIDIA (CUDA C) ---";
  print_string (Codegen.emit Dialect.cuda cuda);

  (* all three programs agree on random int8 inputs *)
  let rng = Xpiler_util.Rng.create 99 in
  let a = Tensor.random rng ~dtype:Dtype.I8 256 in
  let b = Tensor.random rng ~dtype:Dtype.I8 256 in
  let run kernel =
    let acc = Tensor.create ~dtype:Dtype.I32 64 in
    let _ =
      Interp.run kernel
        [ ("a", Interp.Buf (Tensor.copy a)); ("b", Interp.Buf (Tensor.copy b));
          ("acc", Interp.Buf acc) ]
    in
    acc
  in
  let r0 = run k and r1 = run serial and r2 = run cuda in
  Printf.printf "\nall three agree: %b (sample acc[0] = %g)\n"
    (Tensor.allclose r0 r1 && Tensor.allclose r1 r2)
    (Tensor.get r0 0)
