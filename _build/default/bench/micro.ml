(* Bechamel micro-benchmarks: the latency of every pipeline stage the
   compile-time model charges for — one Test.make per experiment family. *)

open Bechamel
open Toolkit
open Xpiler_machine
open Xpiler_ops

let gemm = Registry.find_exn "gemm"
let gemm_shape = List.hd gemm.Opdef.shapes
let serial = gemm.Opdef.serial gemm_shape
let cuda_text = Idiom.source_text Platform.Cuda gemm gemm_shape
let bang_kernel = Idiom.source Platform.Bang gemm gemm_shape

let test_parse =
  Test.make ~name:"table6:parse-cuda-source" (Staged.stage (fun () ->
      ignore (Xpiler_lang.Parser.parse Xpiler_lang.Dialect.cuda cuda_text)))

let test_checker =
  Test.make ~name:"table6:platform-checker" (Staged.stage (fun () ->
      ignore (Checker.compile Platform.bang bang_kernel)))

let test_interp =
  Test.make ~name:"table2:unit-test-oracle" (Staged.stage (fun () ->
      ignore (Unit_test.check ~trials:1 gemm gemm_shape serial)))

let test_pass =
  Test.make ~name:"table7:loop-split-pass" (Staged.stage (fun () ->
      ignore (Xpiler_passes.Loop_pass.split ~var:"i" ~factor:4 serial)))

let test_solver =
  Test.make ~name:"table3:smt-lite-solver" (Staged.stage (fun () ->
      ignore
        (Xpiler_smt.Solver.solve
           { vars = [ ("x", Xpiler_smt.Solver.Range { lo = 1; hi = 512; stride = 1 }) ];
             constraints =
               Xpiler_ir.Expr.
                 [ Binop (Eq, Binop (Mod, Var "x", Int 64), Int 0);
                   Binop (Gt, Var "x", Int 128) ]
           })))

let test_costmodel =
  Test.make ~name:"fig7:cost-model" (Staged.stage (fun () ->
      ignore (Costmodel.estimate Platform.bang bang_kernel ~shapes:[])))

let test_bm25 =
  Test.make ~name:"fig8:bm25-retrieval" (Staged.stage (fun () ->
      ignore (Xpiler_manual.Corpus.search Platform.Bang "matmul gemm" 3)))

let all_tests =
  [ test_parse; test_checker; test_interp; test_pass; test_solver; test_costmodel; test_bm25 ]

let run () =
  Printf.printf "\n=== Bechamel micro-benchmarks (pipeline-stage latencies) ===\n%!";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.2) ~kde:(Some 100) () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" ~fmt:"%s %s" [ test ])
      in
      let ols =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ t ] -> Printf.printf "  %-32s %12.1f ns/run\n%!" name t
          | _ -> Printf.printf "  %-32s (no estimate)\n%!" name)
        ols)
    all_tests
