bench/main.ml: Ablation Array List Micro Printf String Sys Tables Unix
