bench/main.mli:
