(* Command-line front-end for the QiMeng-Xpiler transcompiler. *)

open Cmdliner
open Xpiler_machine
open Xpiler_ops
open Xpiler_core

let platform_conv =
  let parse s =
    match Platform.id_of_string (String.lowercase_ascii s) with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown platform %s (cuda|bang|hip|vnni|c)" s))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Platform.id_to_string p))

let op_arg =
  let doc = "Operator name (see `xpiler list-ops`)." in
  Arg.(required & opt (some string) None & info [ "op" ] ~docv:"OP" ~doc)

let shape_arg =
  let doc = "Shape as comma-separated dims, e.g. m=16,n=64,k=32. Default: the operator's first benchmark shape." in
  Arg.(value & opt (some string) None & info [ "shape" ] ~docv:"SHAPE" ~doc)

let src_arg =
  let doc = "Source platform (cuda, bang, hip, vnni)." in
  Arg.(required & opt (some platform_conv) None & info [ "from" ] ~docv:"SRC" ~doc)

let dst_arg =
  let doc = "Target platform (cuda, bang, hip, vnni)." in
  Arg.(required & opt (some platform_conv) None & info [ "to" ] ~docv:"DST" ~doc)

let tune_arg =
  let doc = "Run hierarchical auto-tuning on the accepted translation." in
  Arg.(value & flag & info [ "tune" ] ~doc)

let seed_arg =
  let doc = "Seed for the (simulated) neural oracle." in
  Arg.(value & opt int 20250706 & info [ "seed" ] ~doc)

let parse_shape op = function
  | None -> List.hd op.Opdef.shapes
  | Some s ->
    String.split_on_char ',' s
    |> List.map (fun kv ->
           match String.split_on_char '=' kv with
           | [ k; v ] -> (String.trim k, int_of_string (String.trim v))
           | _ -> failwith ("bad shape component " ^ kv))

let find_op name =
  match Registry.find name with
  | Some op -> op
  | None ->
    Printf.eprintf "unknown operator %s; try `xpiler list-ops`\n" name;
    exit 2

(* ---- translate ------------------------------------------------------------ *)

let translate op_name shape src dst tune seed =
  let op = find_op op_name in
  let shape = parse_shape op shape in
  let config =
    let base = if tune then Config.tuned else Config.default in
    Config.with_seed base seed
  in
  Printf.printf "// source (%s):\n%s\n" (Platform.id_to_string src)
    (Idiom.source_text src op shape);
  let o = Xpiler.transcompile ~config ~src ~dst ~op ~shape () in
  Printf.printf "// status: %s\n" (Xpiler.status_to_string o.Xpiler.status);
  Printf.printf "// passes: %s\n"
    (String.concat " | " (List.map Xpiler_passes.Pass.describe o.Xpiler.specs_applied));
  Printf.printf "// repairs: %d attempted, %d succeeded\n" o.Xpiler.repairs_attempted
    o.Xpiler.repairs_succeeded;
  Printf.printf "// modelled compile time: %.2f h\n"
    (Xpiler_util.Vclock.elapsed o.Xpiler.clock /. 3600.0);
  (match o.Xpiler.throughput with
  | Some t -> Printf.printf "// modelled throughput: %.3g ops/s\n" t
  | None -> ());
  match o.Xpiler.target_text with
  | Some text -> Printf.printf "\n// target (%s):\n%s" (Platform.id_to_string dst) text
  | None -> ()

let translate_cmd =
  let info = Cmd.info "translate" ~doc:"Transcompile an operator between platforms." in
  Cmd.v info Term.(const translate $ op_arg $ shape_arg $ src_arg $ dst_arg $ tune_arg $ seed_arg)

(* ---- show-source ----------------------------------------------------------- *)

let show_source op_name shape platform =
  let op = find_op op_name in
  let shape = parse_shape op shape in
  print_string (Idiom.source_text platform op shape)

let show_source_cmd =
  let info = Cmd.info "show-source" ~doc:"Print an operator's idiomatic source program." in
  let platform_pos =
    Arg.(required & pos 0 (some platform_conv) None & info [] ~docv:"PLATFORM")
  in
  Cmd.v info Term.(const show_source $ op_arg $ shape_arg $ platform_pos)

(* ---- list-ops --------------------------------------------------------------- *)

let list_ops () =
  List.iter
    (fun (op : Opdef.t) ->
      Printf.printf "%-22s %-12s shapes: %s\n" op.name (Opdef.class_name op.cls)
        (String.concat " | "
           (List.map
              (fun sh -> String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) sh))
              (List.filteri (fun i _ -> i < 2) op.shapes))))
    Registry.all;
  Printf.printf "(%d operators, %d benchmark cases)\n" (List.length Registry.all)
    (List.length (Registry.cases ()))

let list_ops_cmd =
  let info = Cmd.info "list-ops" ~doc:"List the benchmark operators." in
  Cmd.v info Term.(const list_ops $ const ())

(* ---- manual ------------------------------------------------------------------ *)

let manual platform query =
  List.iter
    (fun (e : Xpiler_manual.Corpus.entry) -> Printf.printf "%-40s %s\n" e.id e.body)
    (Xpiler_manual.Corpus.search platform query 5)

let manual_cmd =
  let info = Cmd.info "manual" ~doc:"Search a platform's programming manual (BM25)." in
  let platform_pos =
    Arg.(required & pos 0 (some platform_conv) None & info [] ~docv:"PLATFORM")
  in
  let query_pos = Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v info Term.(const manual $ platform_pos $ query_pos)

let () =
  let info = Cmd.info "xpiler" ~version:"1.0.0" ~doc:"Neural-symbolic tensor-program transcompiler." in
  exit (Cmd.eval (Cmd.group info [ translate_cmd; show_source_cmd; list_ops_cmd; manual_cmd ]))
