(** Process-global solver memo: canonical problem hash → outcome/models.

    Entries carry the original search's [stats] as an effect *receipt*
    (same trick as the tuner's transposition table): [Solver] replays a
    hit's receipt through the same metrics/trace path a fresh solve uses,
    so cold-vs-warm and jobs=1-vs-jobs=N runs emit byte-identical
    observable streams. [max_steps] (and [limit] for [Models]) are part of
    the key, which is what makes memoizing [Unsat] and [Timeout] sound.

    [Solver] is the only intended writer; benches and tests use
    [set_enabled]/[clear]/[reset_stats] to build cold baselines. *)

type mode = Solve | Models of { limit : int }

type payload =
  | Outcome of Problem.outcome
  | Model_list of (string * int) list list

type entry = { payload : payload; stats : Problem.stats  (** the receipt *) }

val find : mode:mode -> max_steps:int -> Problem.t -> entry option
(** [None] when absent or when the memo is disabled. Counts a hit/miss
    (registry + [hits]/[misses]) only while enabled. *)

val store : mode:mode -> max_steps:int -> Problem.t -> entry -> unit
(** No-op while disabled. Evicts half the table at capacity. *)

val set_enabled : bool -> unit
(** Default enabled; benches disable it for the cold/naive baseline arm. *)

val is_enabled : unit -> bool

val hits : unit -> int
val misses : unit -> int
val size : unit -> int
val reset_stats : unit -> unit
val clear : unit -> unit
