(** Process-global solver memo: canonical problem hash → outcome/models.

    Entries carry the original search's [stats] as an effect *receipt*
    (same trick as the tuner's transposition table): [Solver] replays a
    hit's receipt through the same metrics/trace path a fresh solve uses,
    so cold-vs-warm and jobs=1-vs-jobs=N runs emit byte-identical
    observable streams. [max_steps] (and [limit] for [Models]) are part of
    the key, which is what makes memoizing [Unsat] and [Timeout] sound.

    [Solver] is the only intended writer; benches and tests use
    [set_enabled]/[clear]/[reset_stats] to build cold baselines. *)

type mode = Solve | Models of { limit : int }

(** The full memo key, exposed for the durable store (snapshot dumps,
    write-ahead-log records and last-wins compaction). *)
module Key : sig
  type t = { mode : mode; max_steps : int; problem : Problem.t }

  val equal : t -> t -> bool
  val hash : t -> int
end

type payload =
  | Outcome of Problem.outcome
  | Model_list of (string * int) list list

type entry = { payload : payload; stats : Problem.stats  (** the receipt *) }

val find : mode:mode -> max_steps:int -> Problem.t -> entry option
(** [None] when absent or when the memo is disabled. Counts a hit/miss
    (registry + [hits]/[misses]) only while enabled. *)

val store : mode:mode -> max_steps:int -> Problem.t -> entry -> unit
(** No-op while disabled. Evicts half the table at capacity. *)

val set_enabled : bool -> unit
(** Default enabled; benches disable it for the cold/naive baseline arm. *)

val is_enabled : unit -> bool

val hits : unit -> int
val misses : unit -> int
val size : unit -> int
val reset_stats : unit -> unit
val clear : unit -> unit

(** {2 Durable-store integration} (see [Xpiler_store.Store]) *)

val restore : Key.t -> entry -> unit
(** Reinsert a persisted entry — silent (no hit/miss counts, no observer),
    and unconditional: it works even while the memo is disabled, so a
    bench's cold arm can still be rebuilt explicitly. Capacity eviction
    still applies. *)

val fold : (Key.t -> entry -> 'a -> 'a) -> 'a -> 'a
(** Fold over the live entries (order unspecified), for snapshot dumps. *)

val set_observer : (Key.t -> entry -> unit) option -> unit
(** Hook called (outside the memo mutex) on every fresh {!store} while the
    memo is enabled; the durable store uses it to append to its
    write-ahead log. *)
