open Xpiler_ir

(* the public problem vocabulary lives in [Problem] so [Memo] can key on it
   without a dependency cycle; re-export to keep client code unchanged *)
type domain = Problem.domain =
  | Range of { lo : int; hi : int; stride : int }
  | Enum of int list

type problem = Problem.t = { vars : (string * domain) list; constraints : Expr.t list }
type stats = Problem.stats = { steps : int; evals : int }
type outcome = Problem.outcome = Sat of (string * int) list | Unsat | Timeout

let domain_values = Problem.domain_values

(* paired enumeration up to sqrt n: every divisor d <= sqrt n pairs with
   n/d >= sqrt n, so both halves come out ascending and concatenate *)
let divisors n =
  if n <= 0 then invalid_arg "Solver.divisors: non-positive";
  let rec go d small large =
    if d * d > n then List.rev_append small large
    else if n mod d = 0 then
      let q = n / d in
      go (d + 1) (d :: small) (if q = d then large else q :: large)
    else go (d + 1) small large
  in
  go 1 [] []

(* evaluate a constraint under a partial assignment: Some b when all its
   variables are bound, None otherwise *)
let try_eval assignment e =
  match Expr.eval_int (fun x -> List.assoc x assignment) e with
  | v -> Some (v <> 0)
  | exception _ -> None

let forall_range var ~lo ~hi body =
  let rec go i acc =
    if i >= hi then acc
    else
      go (i + 1)
        (Expr.Binop (Expr.And, acc, Expr.subst_var var (Expr.Int i) body))
  in
  if lo >= hi then Expr.Int 1 else go (lo + 1) (Expr.subst_var var (Expr.Int lo) body)

let default_max_steps = 2_000_000

(* ---- naive reference search ----------------------------------------------

   The pre-overhaul engine, retained verbatim: re-materializes domains at
   every visit and re-checks the whole constraint list at every assignment
   step. It is the differential-fuzz oracle for the incremental engine and
   the baseline arm of bench/repair_bench.ml (via [set_engine `Naive]). *)

let search_naive ?(max_steps = default_max_steps) problem ~on_model =
  let steps = ref 0 and evals = ref 0 in
  let timeout = ref false in
  let rec assign acc = function
    | [] ->
      let model = List.rev acc in
      let satisfied =
        List.for_all
          (fun c ->
            incr evals;
            match try_eval model c with Some b -> b | None -> false)
          problem.constraints
      in
      satisfied && on_model model
    | (v, dom) :: rest ->
      let values = domain_values dom in
      let continue_search = ref true in
      List.iter
        (fun value ->
          if !continue_search && not !timeout then begin
            incr steps;
            if !steps > max_steps then timeout := true
            else begin
              let acc' = (v, value) :: acc in
              (* prune: any fully-bound constraint that is false kills the branch *)
              let ok =
                List.for_all
                  (fun c ->
                    incr evals;
                    match try_eval acc' c with Some b -> b | None -> true)
                  problem.constraints
              in
              if ok then if assign acc' rest then continue_search := false
            end
          end)
        values;
      not !continue_search
  in
  let found = assign [] problem.vars in
  (found, !timeout, { steps = !steps; evals = !evals })

(* ---- incremental search --------------------------------------------------

   Same search tree, much less work per node:
   - domains are materialized into arrays once per problem (the naive engine
     rebuilt full [Range] lists on every re-visit under a new parent);
   - the environment is a slot-indexed int array instead of a [List.assoc]
     chain probed through an exception handler;
   - constraints are simplified once (shared across the near-identical
     problems a repair pass builds, via a process-global cache) and indexed
     by their last-bound variable, watched-literal style: binding slot [i]
     evaluates only the constraints that *became* fully bound at [i].
     Constraints bound earlier were already checked true on the ancestor
     step, and later ones would be skipped as partial by the naive engine
     anyway, so pruning decisions — and hence outcomes, model sets and
     model order — are identical. [steps] counts the same assignment
     attempts, keeping [max_steps]/[Timeout] behaviour aligned; only
     [evals] shrinks.

   One deliberate divergence: a fully-bound constraint that *raises* (e.g.
   division by zero) prunes here, where the naive engine kept exploring the
   subtree and rejected every leaf below it. The model set is the same;
   steps under such constraints differ. *)

module ETbl = Hashtbl.Make (struct
  type t = Expr.t

  let equal = Expr.equal
  let hash = Expr.hash
end)

(* once-per-pass simplification shared across candidate holes: the repairer
   poses the same alignment/positivity constraints for every candidate site
   of a kernel, so this cache turns N simplify passes into 1 *)
let simp_capacity = 8192
let simp_mutex = Mutex.create ()
let simp_cache : Expr.t ETbl.t = ETbl.create 256

let simplify_shared e =
  Mutex.protect simp_mutex (fun () ->
      match ETbl.find_opt simp_cache e with
      | Some s -> s
      | None ->
        let s = Expr.simplify e in
        if ETbl.length simp_cache >= simp_capacity then ETbl.reset simp_cache;
        ETbl.add simp_cache e s;
        s)

type prepared = {
  p_names : string array;
  p_domains : int array array;
  p_watched : Expr.t array array;  (** by last-bound slot *)
  p_skipped : int array;  (** constraints a naive step would eval but slot [i] skips *)
  p_slots : (string, int) Hashtbl.t;
  p_const_false : bool;  (** some constant constraint folded to false *)
  p_residual : bool;  (** some constraint mentions a variable outside [vars] *)
}

let prepare (problem : problem) =
  let n = List.length problem.vars in
  let p_names = Array.make n "" in
  let p_domains = Array.make n [||] in
  let p_slots = Hashtbl.create (2 * n + 1) in
  List.iteri
    (fun i (name, dom) ->
      p_names.(i) <- name;
      p_domains.(i) <- Array.of_list (domain_values dom);
      Hashtbl.replace p_slots name i)
    problem.vars;
  let watched = Array.make (max n 1) [] in
  let const_false = ref false in
  let residual = ref false in
  let n_constraints = List.length problem.constraints in
  List.iter
    (fun c0 ->
      let c = simplify_shared c0 in
      let last =
        List.fold_left
          (fun acc v ->
            match (acc, Hashtbl.find_opt p_slots v) with
            | Some m, Some i -> Some (max m i)
            | _ -> None)
          (Some (-1)) (Expr.free_vars c)
      in
      match last with
      | None -> residual := true
      | Some (-1) -> (
        (* constant: fold once instead of re-evaluating at every step *)
        match Expr.eval_int (fun _ -> raise Not_found) c with
        | v -> if v = 0 then const_false := true
        | exception _ -> const_false := true)
      | Some i -> watched.(i) <- c :: watched.(i))
    problem.constraints;
  let p_watched = Array.map (fun cs -> Array.of_list (List.rev cs)) watched in
  let p_skipped = Array.map (fun cs -> n_constraints - Array.length cs) p_watched in
  { p_names; p_domains; p_watched; p_skipped; p_slots;
    p_const_false = !const_false; p_residual = !residual }

let search_incremental ?(max_steps = default_max_steps) problem ~on_model =
  let prep = prepare problem in
  let n = Array.length prep.p_names in
  if prep.p_const_false || prep.p_residual then (false, false, { steps = 0; evals = 0 }, 0)
  else if n = 0 then (on_model [], false, { steps = 0; evals = 0 }, 0)
  else begin
    let values = Array.make n 0 in
    let lookup name = values.(Hashtbl.find prep.p_slots name) in
    let steps = ref 0 and evals = ref 0 and skipped = ref 0 in
    let timeout = ref false in
    let model () = List.init n (fun j -> (prep.p_names.(j), values.(j))) in
    let rec assign i =
      if i = n then on_model (model ())
      else begin
        let dom = prep.p_domains.(i) in
        let watched = prep.p_watched.(i) in
        let skip_here = prep.p_skipped.(i) in
        let stop = ref false in
        let k = ref 0 in
        let len = Array.length dom in
        while (not !stop) && (not !timeout) && !k < len do
          incr steps;
          if !steps > max_steps then timeout := true
          else begin
            values.(i) <- dom.(!k);
            let ok =
              Array.for_all
                (fun c ->
                  incr evals;
                  match Expr.eval_int lookup c with
                  | v -> v <> 0
                  | exception _ -> false)
                watched
            in
            skipped := !skipped + skip_here;
            if ok then if assign (i + 1) then stop := true
          end;
          incr k
        done;
        !stop
      end
    in
    let found = assign 0 in
    (found, !timeout, { steps = !steps; evals = !evals }, !skipped)
  end

(* ---- observability -------------------------------------------------------- *)

module Trace = Xpiler_obs.Trace
module Metrics = Xpiler_obs.Metrics

(* Stable: the solver runs on the master domain inside the escalation
   ladder, so query counts and step distributions are workload-determined. *)
let m_queries verdict =
  Metrics.counter ~help:"SMT queries by verdict" ~labels:[ ("verdict", verdict) ]
    "xpiler_smt_queries_total"

let m_sat = m_queries "sat"
let m_unsat = m_queries "unsat"
let m_timeout = m_queries "timeout"

let m_steps =
  Metrics.histogram ~help:"search steps per SMT query"
    ~bounds:[| 1.0; 10.0; 100.0; 1000.0; 10000.0; 100000.0 |] "xpiler_smt_steps"

let m_skipped =
  Metrics.counter ~help:"constraint evaluations avoided by last-bound-variable indexing"
    "xpiler_smt_constraints_skipped_total"

let record_query (stats : stats) verdict =
  Metrics.inc
    (match verdict with "sat" -> m_sat | "unsat" -> m_unsat | _ -> m_timeout);
  Metrics.observe m_steps (float_of_int stats.steps);
  Trace.count "smt.queries";
  Trace.count ("smt." ^ verdict);
  Trace.observe "smt.steps" (float_of_int stats.steps)

(* ---- engine selection and fresh-work meters ------------------------------- *)

type engine = Incremental | Naive

let current_engine = ref Incremental
let set_engine e = current_engine := e
let engine () = !current_engine

type work = {
  fresh_solves : int;
  fresh_steps : int;
  fresh_evals : int;
  fresh_wall : float;
}

(* counts real searches under either engine (memo hits excluded), so the
   repair bench compares baseline and overhauled arms with one meter —
   mirroring the transposition table's [eval_count] *)
let w_solves = ref 0
let w_steps = ref 0
let w_evals = ref 0
let w_wall = ref 0.0

let note_fresh (s : stats) =
  incr w_solves;
  w_steps := !w_steps + s.steps;
  w_evals := !w_evals + s.evals

let work_totals () =
  { fresh_solves = !w_solves;
    fresh_steps = !w_steps;
    fresh_evals = !w_evals;
    fresh_wall = !w_wall
  }

let reset_work_totals () =
  w_solves := 0;
  w_steps := 0;
  w_evals := 0;
  w_wall := 0.0

(* ---- public solve entry points -------------------------------------------- *)

let run_search ~max_steps problem ~on_model =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> w_wall := !w_wall +. (Unix.gettimeofday () -. t0))
  @@ fun () ->
  match !current_engine with
  | Naive ->
    let found, timeout, stats = search_naive ~max_steps problem ~on_model in
    note_fresh stats;
    (found, timeout, stats)
  | Incremental ->
    let found, timeout, stats, skipped = search_incremental ~max_steps problem ~on_model in
    note_fresh stats;
    if skipped > 0 then Metrics.inc ~n:skipped m_skipped;
    (found, timeout, stats)

let verdict_of_outcome = function Sat _ -> "sat" | Unsat -> "unsat" | Timeout -> "timeout"

(* the memo only fronts the incremental engine: naive mode exists to model
   the pre-overhaul solver for benches, which must not see warm entries
   (and whose stats under the same key could differ on the raising-
   constraint edge documented above) *)
let memo_active () = !current_engine = Incremental

let solve ?(max_steps = default_max_steps) problem =
  let fresh () =
    let result = ref Unsat in
    let found, timeout, stats =
      run_search ~max_steps problem ~on_model:(fun model ->
          result := Sat model;
          true)
    in
    let outcome = if found then !result else if timeout then Timeout else Unsat in
    (outcome, stats)
  in
  let outcome, stats =
    if not (memo_active ()) then fresh ()
    else begin
      match Memo.find ~mode:Memo.Solve ~max_steps problem with
      | Some { Memo.payload = Outcome outcome; stats } -> (outcome, stats)
      | Some { Memo.payload = Model_list _; _ } | None ->
        let outcome, stats = fresh () in
        Memo.store ~mode:Memo.Solve ~max_steps problem { Memo.payload = Outcome outcome; stats };
        (outcome, stats)
    end
  in
  record_query stats (verdict_of_outcome outcome);
  (outcome, stats)

let solve_all ?(max_steps = default_max_steps) ?(limit = 64) problem =
  let fresh () =
    let models = ref [] in
    let count = ref 0 in
    let _, _, stats =
      run_search ~max_steps problem ~on_model:(fun model ->
          models := model :: !models;
          incr count;
          !count >= limit)
    in
    (List.rev !models, stats)
  in
  let mode = Memo.Models { limit } in
  let models, stats =
    if not (memo_active ()) then fresh ()
    else begin
      match Memo.find ~mode ~max_steps problem with
      | Some { Memo.payload = Model_list models; stats } -> (models, stats)
      | Some { Memo.payload = Outcome _; _ } | None ->
        let models, stats = fresh () in
        Memo.store ~mode ~max_steps problem { Memo.payload = Model_list models; stats };
        (models, stats)
    end
  in
  record_query stats (if models <> [] then "sat" else "unsat");
  Trace.count ~n:(List.length models) "smt.models";
  models

(* ---- silent reference entry points (differential tests) ------------------- *)

let solve_naive ?max_steps problem =
  let result = ref Unsat in
  let found, timeout, stats =
    search_naive ?max_steps problem ~on_model:(fun model ->
        result := Sat model;
        true)
  in
  ((if found then !result else if timeout then Timeout else Unsat), stats)

let solve_all_naive ?max_steps ?(limit = 64) problem =
  let models = ref [] in
  let count = ref 0 in
  let _, _, stats =
    search_naive ?max_steps problem ~on_model:(fun model ->
        models := model :: !models;
        incr count;
        !count >= limit)
  in
  (List.rev !models, stats)
