open Xpiler_ir

type domain = Range of { lo : int; hi : int; stride : int } | Enum of int list

type problem = { vars : (string * domain) list; constraints : Expr.t list }
type stats = { steps : int; evals : int }
type outcome = Sat of (string * int) list | Unsat | Timeout

let domain_values = function
  | Enum xs -> xs
  | Range { lo; hi; stride } ->
    if stride <= 0 then invalid_arg "Solver.domain_values: non-positive stride";
    let rec go v acc = if v > hi then List.rev acc else go (v + stride) (v :: acc) in
    go lo []

let divisors n =
  if n <= 0 then invalid_arg "Solver.divisors: non-positive";
  let rec go d acc = if d > n then List.rev acc else go (d + 1) (if n mod d = 0 then d :: acc else acc) in
  go 1 []

(* evaluate a constraint under a partial assignment: Some b when all its
   variables are bound, None otherwise *)
let try_eval assignment e =
  match Expr.eval_int (fun x -> List.assoc x assignment) e with
  | v -> Some (v <> 0)
  | exception _ -> None

let forall_range var ~lo ~hi body =
  let rec go i acc =
    if i >= hi then acc
    else
      go (i + 1)
        (Expr.Binop (Expr.And, acc, Expr.subst_var var (Expr.Int i) body))
  in
  if lo >= hi then Expr.Int 1 else go (lo + 1) (Expr.subst_var var (Expr.Int lo) body)

let search ?(max_steps = 2_000_000) problem ~on_model =
  let steps = ref 0 and evals = ref 0 in
  let timeout = ref false in
  let rec assign acc = function
    | [] ->
      let model = List.rev acc in
      let satisfied =
        List.for_all
          (fun c ->
            incr evals;
            match try_eval model c with Some b -> b | None -> false)
          problem.constraints
      in
      satisfied && on_model model
    | (v, dom) :: rest ->
      let values = domain_values dom in
      let continue_search = ref true in
      List.iter
        (fun value ->
          if !continue_search && not !timeout then begin
            incr steps;
            if !steps > max_steps then timeout := true
            else begin
              let acc' = (v, value) :: acc in
              (* prune: any fully-bound constraint that is false kills the branch *)
              let ok =
                List.for_all
                  (fun c ->
                    incr evals;
                    match try_eval acc' c with Some b -> b | None -> true)
                  problem.constraints
              in
              if ok then if assign acc' rest then continue_search := false
            end
          end)
        values;
      not !continue_search
  in
  let found = assign [] problem.vars in
  (found, !timeout, { steps = !steps; evals = !evals })

module Trace = Xpiler_obs.Trace
module Metrics = Xpiler_obs.Metrics

(* Stable: the solver runs on the master domain inside the escalation
   ladder, so query counts and step distributions are workload-determined. *)
let m_queries verdict =
  Metrics.counter ~help:"SMT queries by verdict" ~labels:[ ("verdict", verdict) ]
    "xpiler_smt_queries_total"

let m_sat = m_queries "sat"
let m_unsat = m_queries "unsat"
let m_timeout = m_queries "timeout"

let m_steps =
  Metrics.histogram ~help:"search steps per SMT query"
    ~bounds:[| 1.0; 10.0; 100.0; 1000.0; 10000.0; 100000.0 |] "xpiler_smt_steps"

let record_query (stats : stats) verdict =
  Metrics.inc
    (match verdict with "sat" -> m_sat | "unsat" -> m_unsat | _ -> m_timeout);
  Metrics.observe m_steps (float_of_int stats.steps);
  Trace.count "smt.queries";
  Trace.count ("smt." ^ verdict);
  Trace.observe "smt.steps" (float_of_int stats.steps)

let solve ?max_steps problem =
  let result = ref Unsat in
  let found, timeout, stats =
    search ?max_steps problem ~on_model:(fun model ->
        result := Sat model;
        true)
  in
  let outcome = if found then !result else if timeout then Timeout else Unsat in
  record_query stats (match outcome with Sat _ -> "sat" | Unsat -> "unsat" | Timeout -> "timeout");
  (outcome, stats)

let solve_all ?max_steps ?(limit = 64) problem =
  let models = ref [] in
  let count = ref 0 in
  let _, _, stats =
    search ?max_steps problem ~on_model:(fun model ->
        models := model :: !models;
        incr count;
        !count >= limit)
  in
  record_query stats (if !count > 0 then "sat" else "unsat");
  Trace.count ~n:!count "smt.models";
  List.rev !models
