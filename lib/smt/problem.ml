(* Shared problem vocabulary for the SMT-lite stack.

   [Solver] and [Memo] both need the problem/outcome types: the solver to
   search, the memo to key its table. Keeping them in a leaf module avoids a
   dependency cycle and gives the memo a canonical structural equality and
   full-depth hash (via [Expr.hash], mirroring the tuner's transposition
   key) so near-identical repair problems never alias by accident. *)

open Xpiler_ir

type domain = Range of { lo : int; hi : int; stride : int } | Enum of int list

type t = { vars : (string * domain) list; constraints : Expr.t list }
type stats = { steps : int; evals : int }
type outcome = Sat of (string * int) list | Unsat | Timeout

let domain_values = function
  | Enum xs -> xs
  | Range { lo; hi; stride } ->
    if stride <= 0 then invalid_arg "Solver.domain_values: non-positive stride";
    let rec go v acc = if v > hi then List.rev acc else go (v + stride) (v :: acc) in
    go lo []

let equal_domain a b =
  match (a, b) with
  | Range a, Range b -> a.lo = b.lo && a.hi = b.hi && a.stride = b.stride
  | Enum a, Enum b -> a = b
  | _ -> false

let equal a b =
  List.equal (fun (n1, d1) (n2, d2) -> String.equal n1 n2 && equal_domain d1 d2) a.vars b.vars
  && List.equal Expr.equal a.constraints b.constraints

let hash_domain h = function
  | Range { lo; hi; stride } -> Expr.hash_comb (Expr.hash_comb (Expr.hash_comb h 3) lo) (Expr.hash_comb hi stride)
  | Enum xs -> List.fold_left Expr.hash_comb (Expr.hash_comb h 5) xs

let hash p =
  let h =
    List.fold_left
      (fun h (name, dom) -> hash_domain (Expr.hash_comb h (Hashtbl.hash name)) dom)
      0x51 p.vars
  in
  List.fold_left (fun h c -> Expr.hash_comb h (Expr.hash c)) h p.constraints
