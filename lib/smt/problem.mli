open Xpiler_ir

(** Shared vocabulary of the SMT-lite stack: problem, stats and outcome
    types, plus the canonical structural equality/hash that keys the solver
    memo. [Solver] re-exports these types, so client code keeps writing
    [Solver.problem] / [Solver.Sat]; depend on this module directly only
    when you need the hash (e.g. [Memo]). *)

type domain =
  | Range of { lo : int; hi : int; stride : int }  (** lo, lo+stride, ..., <= hi *)
  | Enum of int list

type t = {
  vars : (string * domain) list;  (** assignment order = listed order *)
  constraints : Expr.t list;  (** conjunction; may mention only [vars] *)
}

type stats = { steps : int; evals : int }

type outcome =
  | Sat of (string * int) list
  | Unsat
  | Timeout

val domain_values : domain -> int list

val equal : t -> t -> bool
(** Structural: same variables in the same order with equal domains, same
    constraint list up to [Expr.equal]. *)

val hash : t -> int
(** Full-depth structural hash consistent with [equal] (built on
    [Expr.hash], like the tuner's transposition key). *)
