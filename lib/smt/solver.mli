open Xpiler_ir

(** SMT-lite: a finite-domain constraint solver over integer expressions.

    Z3 is not available in this environment, so the fragment QiMeng-Xpiler
    actually needs — small conjunctions of (in)equalities over loop bounds,
    affine indices and intrinsic parameters (paper Figure 5) — is solved by
    backtracking enumeration with eager partial evaluation. Constraints are
    ordinary IR expressions treated as booleans (non-zero = true), so SMT
    queries read exactly like the paper's examples:
    [(i1 * 4 + i2 == i) && (0 <= i2) && (i2 < 4)].

    Two engines share the entry points: the default incremental engine
    (domains materialized once per problem, slot-indexed array environment,
    constraints simplified once and indexed by last-bound variable so each
    assignment step evaluates only newly-fully-bound constraints) and the
    retained naive reference they are differentially fuzzed against.
    Incremental solves are additionally memoized process-globally
    ({!Memo}), with effect receipts keeping cold and warm runs observably
    byte-identical. *)

type domain = Problem.domain =
  | Range of { lo : int; hi : int; stride : int }  (** lo, lo+stride, ..., <= hi *)
  | Enum of int list

type problem = Problem.t = {
  vars : (string * domain) list;  (** assignment order = listed order *)
  constraints : Expr.t list;  (** conjunction; may mention only [vars] *)
}

type stats = Problem.stats = { steps : int; evals : int }

type outcome = Problem.outcome =
  | Sat of (string * int) list
  | Unsat
  | Timeout

val domain_values : domain -> int list

val divisors : int -> int list
(** All positive divisors, ascending — the natural domain of tiling
    factors. O(√n) paired enumeration. *)

val solve : ?max_steps:int -> problem -> outcome * stats
(** [max_steps] bounds assignment attempts (default 2_000_000). The returned
    model satisfies every constraint (checked before returning). *)

val solve_all : ?max_steps:int -> ?limit:int -> problem -> (string * int) list list
(** All models, up to [limit] (default 64), in enumeration order. *)

val forall_range : string -> lo:int -> hi:int -> Expr.t -> Expr.t
(** [forall_range i ~lo ~hi body] expands a bounded universal quantifier into
    a conjunction by substituting each value of [i] in [lo, hi). *)

(** {2 Engine selection and work meters (benches, tests)} *)

type engine =
  | Incremental  (** default: prepared problems + process-global memo *)
  | Naive  (** the pre-overhaul engine; bypasses the memo *)

val set_engine : engine -> unit
val engine : unit -> engine

type work = {
  fresh_solves : int;
  fresh_steps : int;
  fresh_evals : int;
  fresh_wall : float;  (** wall seconds inside fresh searches *)
}

val work_totals : unit -> work
(** Real search work since the last reset, under either engine; memo hits
    do not count. One meter for both bench arms, like the transposition
    table's eval counter. *)

val reset_work_totals : unit -> unit

val solve_naive : ?max_steps:int -> problem -> outcome * stats
(** The naive reference, silent (no metrics/trace/memo) — the differential
    oracle for property tests. *)

val solve_all_naive :
  ?max_steps:int -> ?limit:int -> problem -> (string * int) list list * stats
