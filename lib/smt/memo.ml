(* Process-global solver memo.

   The repair loop re-poses the same finite-domain problems over and over:
   every localization round rebuilds each site's candidate problem, every
   escalation rung re-enters repair on similar kernels, and bench sweeps
   repeat the whole thing across seeds. A solve is pure — outcome and
   models depend only on (problem, budget) — so one table can serve every
   query, exactly like the tuner's transposition table
   (lib/tuning/transposition.ml).

   Determinism contract (the receipts trick): each entry stores the
   canonical [stats] the original search produced. A hit replays those
   stats through the same [Solver.record_query] effect path a fresh solve
   uses, so the emitted charge/trace/metrics stream is a function of the
   query trajectory alone — cold vs. warm runs and jobs=1 vs. jobs=N runs
   are observably byte-identical. Only the registry hit/miss meters below
   (and wall time) reveal that the table exists.

   [max_steps] (and [limit] for model enumeration) are part of the key:
   a [Timeout] under a small budget says nothing about a larger one, so
   budgets never alias. That also makes memoizing [Timeout] and [Unsat]
   outcomes safe — they are as pure as [Sat]. *)

module Metrics = Xpiler_obs.Metrics

(* Stable: solver queries are issued from the master domain only (the
   escalation ladder and synthesis run outside the pool; speculative repair
   parallelizes candidate *testing*, not solving), so hit/miss counts are a
   deterministic function of the workload and stay jobs-invariant. *)
let m_hits =
  Metrics.counter ~help:"solver memo lookups by result" ~labels:[ ("result", "hit") ]
    "xpiler_smt_memo_lookups_total"

let m_misses =
  Metrics.counter ~labels:[ ("result", "miss") ] "xpiler_smt_memo_lookups_total"

let m_entries = Metrics.gauge ~help:"live solver memo entries" "xpiler_smt_memo_entries"

type mode = Solve | Models of { limit : int }

module Key = struct
  type t = { mode : mode; max_steps : int; problem : Problem.t }

  let equal a b = a.mode = b.mode && a.max_steps = b.max_steps && Problem.equal a.problem b.problem

  let hash k =
    let comb = Xpiler_ir.Expr.hash_comb in
    comb (comb (Hashtbl.hash k.mode) k.max_steps) (Problem.hash k.problem)
end

module KTbl = Hashtbl.Make (Key)

type payload =
  | Outcome of Problem.outcome
  | Model_list of (string * int) list list

type entry = { payload : payload; stats : Problem.stats  (** the receipt *) }

(* a repair pass touches a few dozen distinct problems; whole bench sweeps a
   few thousand — same sizing logic as the transposition table *)
let capacity = 65536
let mutex = Mutex.create ()
let table : entry KTbl.t = KTbl.create 256
let enabled = ref true
let hit_count = ref 0
let miss_count = ref 0

(* durable-store hook: called outside the mutex on every fresh [store];
   [restore] bypasses it so log replay never echoes back to disk *)
let observer : (Key.t -> entry -> unit) option ref = ref None
let set_observer o = Mutex.protect mutex (fun () -> observer := o)

let set_enabled b = Mutex.protect mutex (fun () -> enabled := b)
let is_enabled () = Mutex.protect mutex (fun () -> !enabled)

let find_locked key =
  match KTbl.find_opt table key with
  | Some e ->
    incr hit_count;
    Metrics.inc m_hits;
    Some e
  | None ->
    incr miss_count;
    Metrics.inc m_misses;
    None

let find ~mode ~max_steps problem =
  Mutex.protect mutex (fun () ->
      if not !enabled then None else find_locked { Key.mode; max_steps; problem })

(* evict arbitrary half rather than resetting (no recency recorded); a reset
   would turn every in-flight repair's next lookups into recomputes at once *)
let evict_half_locked () =
  let keys = KTbl.fold (fun k _ acc -> k :: acc) table [] in
  List.iteri (fun i k -> if i land 1 = 0 then KTbl.remove table k) keys

let store ~mode ~max_steps problem entry =
  let key = { Key.mode; max_steps; problem } in
  let obs =
    Mutex.protect mutex (fun () ->
        if !enabled then begin
          if KTbl.length table >= capacity then evict_half_locked ();
          KTbl.replace table key entry;
          Metrics.set m_entries (float_of_int (KTbl.length table));
          !observer
        end
        else None)
  in
  match obs with Some f -> f key entry | None -> ()

let restore key entry =
  Mutex.protect mutex (fun () ->
      (* capacity still applies, but silently (no eviction effects) *)
      if KTbl.length table >= capacity then evict_half_locked ();
      KTbl.replace table key entry;
      Metrics.set m_entries (float_of_int (KTbl.length table)))

let fold f acc = Mutex.protect mutex (fun () -> KTbl.fold f table acc)

let hits () = Mutex.protect mutex (fun () -> !hit_count)
let misses () = Mutex.protect mutex (fun () -> !miss_count)
let size () = Mutex.protect mutex (fun () -> KTbl.length table)

let reset_stats () =
  Mutex.protect mutex (fun () ->
      hit_count := 0;
      miss_count := 0)

let clear () =
  Mutex.protect mutex (fun () ->
      KTbl.reset table;
      Metrics.set m_entries 0.0)
