open Xpiler_machine

(** Shared transposition table for MCTS reward evaluations.

    Maps a state — [(platform, intra budget, prune, compose, kernel)], keyed
    by the structural {!Xpiler_ir.Kernel.hash}/[equal] — to the reward of
    its intra-pass tuning plus a *receipt* of the effects the original
    evaluation emitted (variants measured, variants pruned). The table is
    mutex-protected and process-global: root-parallel MCTS batches and
    successive searches all share it, so a state is intra-tuned once per
    process instead of once per searcher.

    Rewards are pure, so sharing changes wall-clock time only, never values.
    Observable effects are kept deterministic by the receipt discipline (see
    {!Mcts}): both a table hit and a fresh evaluation emit exactly the
    receipt's canonical stream, so charges and trace counters depend only on
    the search trajectory, not on which searcher populated the table first —
    preserving the byte-identical [--jobs] guarantee.

    At capacity (65536 entries) half the table is evicted (never a full
    reset), traced as [mcts.tt_evictions]. *)

type entry = {
  reward : float;  (** best intra-tuned throughput; 0 for non-compiling states *)
  evaluated : int;  (** intra variants measured by the original evaluation *)
  pruned : int;  (** intra variants skipped by bound-based pruning *)
}

(** The full table key, exposed for the durable store (snapshot dumps,
    write-ahead-log records and last-wins compaction). *)
module Key : sig
  type t = {
    platform : Platform.id;
    budget : int;
    prune : bool;
    compose : bool;
    kernel : Xpiler_ir.Kernel.t;
  }

  val equal : t -> t -> bool
  val hash : t -> int
end

val find :
  platform:Platform.id -> budget:int -> prune:bool -> compose:bool ->
  Xpiler_ir.Kernel.t -> entry option
(** Counted as a hit or a miss in {!hits}/{!misses}. *)

val store :
  platform:Platform.id -> budget:int -> prune:bool -> compose:bool ->
  Xpiler_ir.Kernel.t -> entry -> unit

val count_eval : unit -> unit
(** Record one fresh reward evaluation (an actual [Intra.tune] run). {!Mcts}
    calls this on every table miss *and* when sharing is disabled, so
    benches can compare search modes with a single meter. *)

val size : unit -> int
val hits : unit -> int
val misses : unit -> int
val evals : unit -> int

val reset_stats : unit -> unit
(** Zero the hit/miss/eval counters, keeping the entries. *)

val clear : unit -> unit
(** Drop all entries and zero the counters (bench/test isolation). *)

(** {2 Durable-store integration} (see [Xpiler_store.Store]) *)

val restore : Key.t -> entry -> unit
(** Reinsert a persisted entry. Silent — no hit/miss counts, no eviction
    traces, no observer — so replaying a log emits none of the effects the
    original run already journaled. Capacity eviction still applies. *)

val fold : (Key.t -> entry -> 'a -> 'a) -> 'a -> 'a
(** Fold over the live entries (order unspecified), for snapshot dumps. *)

val set_observer : (Key.t -> entry -> unit) option -> unit
(** Hook called on every fresh {!store} — outside the table mutex, possibly
    from pool worker domains, so the observer must synchronize internally.
    The durable store uses it to append to its write-ahead log. *)
