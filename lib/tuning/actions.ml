open Xpiler_ir
open Xpiler_machine
module Pass = Xpiler_passes.Pass
module Memory_pass = Xpiler_passes.Memory_pass

let take = Xpiler_util.Listx.take

let pick_factors factors =
  (* bound branching: smallest, middle, largest *)
  match factors with
  | [] -> []
  | [ f ] -> [ f ]
  | fs ->
    let arr = Array.of_list fs in
    let n = Array.length arr in
    List.sort_uniq compare [ arr.(0); arr.(n / 2); arr.(n - 1) ]

let is_block_axis = function
  | Axis.Block_x | Axis.Block_y | Axis.Block_z | Axis.Task_id | Axis.Cluster_id -> true
  | Axis.Thread_x | Axis.Thread_y | Axis.Thread_z | Axis.Core_id -> false

let enumerate ?(buffer_sizes = []) ?(max_actions = 14) (platform : Platform.t) (k : Kernel.t) =
  let splits =
    Knobs.splittable_loops k
    |> take 2
    |> List.concat_map (fun (var, extent) ->
           List.map
             (fun factor -> Pass.Loop_split { var; factor })
             (pick_factors (Knobs.split_factors platform ~extent)))
  in
  let binds =
    let axes = Knobs.bindable_axes platform k in
    let block_axis = List.find_opt is_block_axis axes in
    let thread_axis = List.find_opt (fun a -> not (is_block_axis a)) axes in
    (* only zero-based loops with independent iterations are bindable: a
       loop carrying a scalar accumulator declared outside it, or storing at
       indices that do not vary with it, would race on real hardware *)
    let independent (r_var : string) body =
      let outer_assign = ref false and invariant_store = ref false in
      let declared = Hashtbl.create 8 in
      Stmt.iter
        (fun s ->
          match s with
          | Stmt.Let { var; _ } -> Hashtbl.replace declared var ()
          | Stmt.Assign { var; _ } when not (Hashtbl.mem declared var) -> outer_assign := true
          | Stmt.Store { index; _ } when not (Expr.contains_var r_var index) ->
            invariant_store := true
          | Stmt.Memcpy { dst; _ } when not (Expr.contains_var r_var dst.offset) ->
            invariant_store := true
          | Stmt.Intrinsic i when not (Expr.contains_var r_var i.dst.offset) ->
            invariant_store := true
          | _ -> ())
        body;
      not (!outer_assign || !invariant_store)
    in
    let top_loops =
      let rec collect block =
        List.concat_map
          (function
            | Stmt.For ({ kind = Stmt.Serial; lo = Expr.Int 0; extent = Expr.Int _; _ } as r)
              ->
              (if independent r.var r.body then [ r.var ] else []) @ collect r.body
            | Stmt.For r -> collect r.body
            | _ -> [])
          block
      in
      take 2 (collect k.Kernel.body)
    in
    List.concat_map
      (fun var ->
        List.filter_map
          (fun axis -> Option.map (fun axis -> Pass.Loop_bind { var; axis }) axis)
          [ block_axis; thread_axis ])
      top_loops
  in
  let reorders = List.map (fun var -> Pass.Loop_reorder { var }) (take 1 (Knobs.reorderable_loops k)) in
  let expansions =
    (* loops with several statements are fission candidates; the pass itself
       rejects unsound distributions *)
    let found = ref [] in
    Stmt.iter
      (fun s ->
        match s with
        | Stmt.For { var; body; kind = Stmt.Serial; _ }
          when List.length body >= 2 && !found = [] ->
          found := [ Pass.Loop_expansion { var } ]
        | _ -> ())
      k.Kernel.body;
    !found
  in
  let contractions =
    let rec adjacent block =
      match block with
      | Stmt.For r1 :: Stmt.For r2 :: _
        when String.equal r1.var r2.var && Expr.equal r1.extent r2.extent ->
        [ Pass.Loop_contraction { var = r1.var } ]
      | s :: rest -> (
        match s with
        | Stmt.For r -> (
          match adjacent r.body with [] -> adjacent rest | found -> found)
        | _ -> adjacent rest)
      | [] -> []
    in
    adjacent k.Kernel.body
  in
  let pipelines = List.map (fun var -> Pass.Pipeline { var }) (take 1 (Knobs.pipelinable_loops k)) in
  let existing_allocs = List.map (fun (b, _, _, _) -> b) (Stmt.allocs k.Kernel.body) in
  let caches =
    let reads = Stmt.buffers_read k.Kernel.body in
    let writes = Stmt.buffers_written k.Kernel.body in
    let scope = Platform.default_compute_scope platform.Platform.id in
    List.filter_map
      (fun (buf, size) ->
        let cache_name s = buf ^ "_" ^ Scope.to_string s in
        if List.mem (cache_name scope) existing_allocs || List.mem (cache_name Scope.Wram) existing_allocs
        then None
        else if List.mem buf writes then
          (* Readwrite staging is the sound generic choice: Write-only would
             clobber cells the kernel never writes *)
          Some
            (Pass.Cache
               { buf; scope; direction = Memory_pass.Readwrite; under = None;
                 base = Expr.Int 0; size })
        else if List.mem buf reads then begin
          let scope =
            (* second read operand of a matmul prefers WRAM on the MLU *)
            if Platform.equal_id platform.Platform.id Platform.Bang
               && List.exists
                    (fun (i : Intrin.t) ->
                      Intrin.is_matrix i.op
                      && List.exists (fun (r : Intrin.buf_ref) -> String.equal r.buf buf)
                           (match i.srcs with _ :: rest -> rest | [] -> []))
                    (Stmt.intrinsics k.Kernel.body)
            then Scope.Wram
            else scope
          in
          Some
            (Pass.Cache
               { buf; scope; direction = Memory_pass.Read; under = None; base = Expr.Int 0;
                 size })
        end
        else None)
      buffer_sizes
  in
  let tensorize = if platform.Platform.intrinsics <> [] then [ Pass.Tensorize ] else [] in
  let detensorize = if Stmt.intrinsics k.Kernel.body <> [] then [ Pass.Detensorize ] else [] in
  let recovery = if Stmt.axes_used k.Kernel.body <> [] then [ Pass.Loop_recovery ] else [] in
  take max_actions
    (tensorize @ caches @ binds @ splits @ pipelines @ reorders @ expansions @ contractions
    @ detensorize @ recovery)
