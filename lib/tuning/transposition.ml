(* Shared transposition table for the hierarchical auto-tuner.

   MCTS root-parallel batches and repeated searches keep rediscovering the
   same (platform, kernel) states; the reward of a state — its best
   intra-tuned throughput — is pure, so one table can serve every searcher.
   Sharing therefore changes *time*, never values. The observable stream
   (virtual-clock charges, trace counters) must additionally not depend on
   who filled the table first, so entries carry a *receipt*: the canonical
   effect counts the original evaluation emitted. A hit replays the receipt,
   a miss evaluates and then emits the same receipt — the emitted stream is
   a function of the search trajectory alone, which is what preserves the
   byte-identical [--jobs] determinism guarantee.

   The reward depends on the intra-tuning parameters (candidate budget,
   pruning, composition), so they are part of the key: searches with
   different configurations never alias. *)

open Xpiler_machine
module Trace = Xpiler_obs.Trace
module Metrics = Xpiler_obs.Metrics

(* Registry metrics are unstable: lookups run inside pooled worker domains,
   so which searcher sees a hit vs. a miss depends on the schedule. The
   deterministic view of the same activity is the receipt-replayed trace
   counter stream. *)
let m_hits =
  Metrics.counter ~stable:false ~help:"transposition table lookups by result"
    ~labels:[ ("result", "hit") ] "xpiler_transposition_lookups_total"

let m_misses =
  Metrics.counter ~stable:false ~labels:[ ("result", "miss") ] "xpiler_transposition_lookups_total"

let m_evals =
  Metrics.counter ~stable:false ~help:"fresh reward evaluations (sharing on or off)"
    "xpiler_transposition_evals_total"

let m_evictions =
  Metrics.counter ~stable:false ~help:"entries dropped by capacity eviction"
    "xpiler_transposition_evictions_total"

let m_entries =
  Metrics.gauge ~stable:false ~help:"live transposition table entries" "xpiler_transposition_entries"

type entry = {
  reward : float;  (** best intra-tuned throughput; 0 for non-compiling states *)
  evaluated : int;  (** intra variants measured by the original evaluation *)
  pruned : int;  (** intra variants skipped by bound-based pruning *)
}

module Key = struct
  type t = {
    platform : Platform.id;
    budget : int;
    prune : bool;
    compose : bool;
    kernel : Xpiler_ir.Kernel.t;
  }

  let equal a b =
    a.platform = b.platform && a.budget = b.budget && a.prune = b.prune
    && a.compose = b.compose
    && Xpiler_ir.Kernel.equal a.kernel b.kernel

  let hash k =
    let comb = Xpiler_ir.Expr.hash_comb in
    comb
      (comb
         (comb (Hashtbl.hash k.platform) k.budget)
         (Hashtbl.hash (k.prune, k.compose)))
      (Xpiler_ir.Kernel.hash k.kernel)
end

module KTbl = Hashtbl.Make (Key)

(* sized like the intra memos: a full search touches a few thousand states *)
let capacity = 65536
let mutex = Mutex.create ()
let table : entry KTbl.t = KTbl.create 1024

(* durable-store hook: called outside the mutex on every fresh [store]
   (worker domains included — the observer must synchronize internally);
   [restore] bypasses it so log replay never echoes back to disk *)
let observer : (Key.t -> entry -> unit) option ref = ref None
let set_observer o = Mutex.protect mutex (fun () -> observer := o)

(* stats are plain counters under the same mutex; [evals] additionally
   counts fresh reward evaluations (including ones made with sharing off, so
   benches can compare baseline and shared searches with one meter) *)
let hit_count = ref 0
let miss_count = ref 0
let eval_count = ref 0

let key ~platform ~budget ~prune ~compose kernel =
  { Key.platform; budget; prune; compose; kernel }

let find ~platform ~budget ~prune ~compose kernel =
  Mutex.protect mutex (fun () ->
      match KTbl.find_opt table (key ~platform ~budget ~prune ~compose kernel) with
      | Some e ->
        incr hit_count;
        Metrics.inc m_hits;
        Some e
      | None ->
        incr miss_count;
        Metrics.inc m_misses;
        None)

(* evict half (arbitrary members; the table records no recency) rather than
   resetting: a reset would turn every live searcher's next lookups into
   recomputes at once *)
let evict_half_locked () =
  let keys = KTbl.fold (fun k _ acc -> k :: acc) table [] in
  let dropped = ref 0 in
  List.iteri
    (fun i k ->
      if i land 1 = 0 then begin
        KTbl.remove table k;
        incr dropped
      end)
    keys;
  !dropped

let store ~platform ~budget ~prune ~compose kernel entry =
  let k = key ~platform ~budget ~prune ~compose kernel in
  let dropped, entries, obs =
    Mutex.protect mutex (fun () ->
        let dropped = if KTbl.length table >= capacity then evict_half_locked () else 0 in
        KTbl.replace table k entry;
        (dropped, KTbl.length table, !observer))
  in
  Metrics.set m_entries (float_of_int entries);
  if dropped > 0 then begin
    Metrics.inc ~n:dropped m_evictions;
    Trace.count ~n:dropped "mcts.tt_evictions"
  end;
  match obs with Some f -> f k entry | None -> ()

let restore k entry =
  let entries =
    Mutex.protect mutex (fun () ->
        (* capacity still applies, but silently: a replay must not emit the
           eviction trace counts the original run never produced *)
        if KTbl.length table >= capacity then ignore (evict_half_locked ());
        KTbl.replace table k entry;
        KTbl.length table)
  in
  Metrics.set m_entries (float_of_int entries)

let fold f acc = Mutex.protect mutex (fun () -> KTbl.fold f table acc)

let count_eval () =
  Metrics.inc m_evals;
  Mutex.protect mutex (fun () -> incr eval_count)
let size () = Mutex.protect mutex (fun () -> KTbl.length table)
let hits () = Mutex.protect mutex (fun () -> !hit_count)
let misses () = Mutex.protect mutex (fun () -> !miss_count)
let evals () = Mutex.protect mutex (fun () -> !eval_count)

let reset_stats () =
  Mutex.protect mutex (fun () ->
      hit_count := 0;
      miss_count := 0;
      eval_count := 0)

let clear () =
  Metrics.set m_entries 0.0;
  Mutex.protect mutex (fun () ->
      KTbl.reset table;
      hit_count := 0;
      miss_count := 0;
      eval_count := 0)
