open Xpiler_ir
open Xpiler_machine
module Pass = Xpiler_passes.Pass

(** Intra-pass auto-tuning (paper §5.1): brute-force search over a pass's
    tuning knobs, keeping the candidate with the best modelled throughput. *)

type variant = { specs : Pass.spec list; kernel : Kernel.t; throughput : float }

val candidates : Platform.t -> Kernel.t -> Pass.spec list list
(** The knob space: split factors per splittable loop, interchanges,
    pipelining — each entry is a short spec sequence to try on top of the
    kernel. Includes the empty sequence (keep as is). *)

val compiles : Platform.t -> Kernel.t -> bool
(** Memoized [Checker.compile] success, keyed by the kernel's structural
    hash per platform. The checker is pure, so the shared bounded table is
    safe for concurrent tuner workers. *)

val modelled_throughput : Platform.t -> Kernel.t -> float
(** Memoized [Costmodel.throughput] with empty shape bindings (the tuner's
    reward), same keying and sharing discipline as {!compiles}. *)

val tune :
  ?clock:Xpiler_util.Vclock.t ->
  ?charge:(float -> unit) ->
  ?jobs:int ->
  ?max_candidates:int ->
  platform:Platform.t ->
  Kernel.t ->
  variant
(** Apply every candidate (bounded by [max_candidates], default 64), keep the
    compilable variant with the highest modelled throughput; the input kernel
    itself is always a candidate, so the result never regresses.

    [charge] overrides the cost sink (default: charge [clock]'s
    [Auto_tuning] stage) — the batched MCTS passes the pool's deferred
    charge so worker batches never touch the master clock. [jobs] evaluates
    candidates on a domain pool; results, trace counts and clock charges are
    replayed in candidate order, so any job count produces the byte-identical
    observable stream. *)
