open Xpiler_ir
open Xpiler_machine
module Pass = Xpiler_passes.Pass

(** Intra-pass auto-tuning (paper §5.1): search over a pass's tuning knobs,
    keeping the candidate with the best modelled throughput. Two search
    refinements over plain brute force:

    - {b bound-based pruning} (on by default): candidates are sorted by a
      cheap admissible throughput bound ({!Costmodel.throughput_bound}) and
      scanned best-bound-first; once a bound cannot beat the incumbent the
      whole remaining suffix is skipped without running the checker or the
      full cost model. Lossless by the bound's admissibility (fuzzed in
      test_tuning.ml); skips are traced as [intra.pruned].
    - {b composed candidates} (on by default): the top measured depth-1
      split variants seed depth-2 compositions (split x reorder,
      split x pipeline) generated against their *transformed* kernels, so
      the search reaches schedules single-spec enumeration cannot express.
*)

type variant = { specs : Pass.spec list; kernel : Kernel.t; throughput : float }

type stats = {
  evaluated : int;  (** variants measured (checker + full cost model) *)
  pruned : int;  (** variants skipped by bound-based pruning *)
}

val candidates : Platform.t -> Kernel.t -> Pass.spec list list
(** The depth-1 knob space: split factors per splittable loop, interchanges,
    pipelining — each entry is a short spec sequence to try on top of the
    kernel. Includes the empty sequence (keep as is). *)

val composed_candidates : variant list -> limit:int -> Pass.spec list list
(** Depth-2 compositions seeded from measured single-split survivors (best
    first): reorders and pipelines applicable to each survivor's transformed
    kernel, appended to its specs; at most [limit] results. *)

val compiles : Platform.t -> Kernel.t -> bool
(** Memoized [Checker.compile] success, keyed by the kernel's structural
    hash per platform. The checker is pure, so the shared bounded table is
    safe for concurrent tuner workers. *)

val modelled_throughput : Platform.t -> Kernel.t -> float
(** Memoized [Costmodel.throughput] with empty shape bindings (the tuner's
    reward), same keying and sharing discipline as {!compiles}. *)

val set_memo_limit : int -> unit
(** Override the shared memo capacity (default 65536). At capacity, half
    the table is evicted — never a full reset, which would turn every
    subsequent lookup mid-search into a recompute — and the eviction is
    traced as [intra.memo_evictions]. Exposed for tests. *)

val tune_with_stats :
  ?clock:Xpiler_util.Vclock.t ->
  ?charge:(float -> unit) ->
  ?jobs:int ->
  ?max_candidates:int ->
  ?prune:bool ->
  ?compose:bool ->
  platform:Platform.t ->
  Kernel.t ->
  variant * stats
(** Like {!tune}, additionally returning the evaluation/pruning counts —
    the receipt {!Mcts} stores in the transposition table so cache hits can
    replay the canonical effect stream of the original evaluation. *)

val tune :
  ?clock:Xpiler_util.Vclock.t ->
  ?charge:(float -> unit) ->
  ?jobs:int ->
  ?max_candidates:int ->
  ?prune:bool ->
  ?compose:bool ->
  platform:Platform.t ->
  Kernel.t ->
  variant
(** Search the candidate space (each phase bounded by [max_candidates],
    default 64), keep the compilable variant with the highest modelled
    throughput; the input kernel itself is always a candidate, so the result
    never regresses.

    [charge] overrides the cost sink (default: charge [clock]'s
    [Auto_tuning] stage) — the batched MCTS passes the pool's deferred
    charge so worker batches never touch the master clock. With
    [prune:false] every candidate is evaluated on a domain pool of [jobs]
    workers; results, trace counts and clock charges are replayed in
    candidate order, so any job count produces the byte-identical observable
    stream. With [prune:true] (default) the scan is sequential — the
    incumbent is the pruning threshold — and [jobs] is ignored; the
    observable stream is canonical: one [intra.variants] count plus one
    charge per measured variant, then a single aggregated [intra.pruned]
    count. *)
