open Xpiler_ir
open Xpiler_machine
module Pass = Xpiler_passes.Pass

(** Inter-pass auto-tuning with Monte-Carlo tree search (paper §5.2).

    The transcompilation is a Markov decision process: states are tensor
    programs, actions are pass applications, and the reward is the best
    modelled throughput of the state's intra-pass tuning space (Equations
    3-4). UCT selection, random expansion, random rollout to the depth
    limit, reward backpropagation along the path. The paper's defaults are
    depth N = 13 and 512 simulations.

    Search-efficiency mechanisms (each independently switchable):

    - {b Transposition sharing} ([share], default on): rewards are served
      from the process-global {!Transposition} table, shared across
      root-parallel batches and successive searches, on top of a per-search
      first-touch table. Rewards are pure, so sharing changes wall-clock
      only; observable charges/trace counts replay from per-entry receipts,
      so they depend on the search trajectory alone — [jobs] determinism is
      preserved bit-for-bit.
    - {b Bound-based pruning and composed candidates}
      ([config.prune]/[config.compose], default on): forwarded to
      {!Intra.tune_with_stats} for every reward evaluation.
    - {b Warm start} ([db]): when a {!Schedule_db} holds a best-spec
      sequence for the kernel's signature (same operator structure and
      platform, any shape), a dedicated extra search batch replays the
      prefix as a guaranteed-expanded first trajectory and then refines
      around it. The base batches never see the prefix, so a database hit
      can only improve the merged result over the cold search — it never
      redirects it (warm-start is monotone by construction). The search
      result is recorded back for the next similar translation; replayed
      steps are traced as [mcts.warm_steps].

    With [root_parallel > 1] the simulation budget is split over that many
    independent searches (distinct seeds, private first-touch tables) whose
    best result is kept — deterministically, whatever the [jobs] count used
    to run them. *)

type config = {
  max_depth : int;
  simulations : int;
  exploration : float;
  seed : int;
  intra_candidates : int;  (** intra-pass variants measured per new state *)
  root_parallel : int;
      (** independent root-parallel search batches; 1 = classic single tree *)
  prune : bool;  (** bound-based pruning inside intra-pass tuning *)
  compose : bool;  (** depth-2 composed intra candidates *)
}

val default_config : config

type result = {
  best_kernel : Kernel.t;
  best_specs : Pass.spec list;
  best_reward : float;
  root_reward : float;  (** reward of the untransformed program *)
  nodes_expanded : int;
  simulations_run : int;
}

val search :
  ?config:config ->
  ?clock:Xpiler_util.Vclock.t ->
  ?buffer_sizes:(string * int) list ->
  ?jobs:int ->
  ?share:bool ->
  ?db:Schedule_db.t ->
  platform:Platform.t ->
  Kernel.t ->
  result
(** Only compilable states receive a positive reward, so the returned best
    kernel always passes the platform checker (it may equal the input when
    nothing better is found).

    [jobs] sizes the domain pool. With [root_parallel = 1] it parallelizes
    intra-pass candidate evaluation inside each reward (only when
    [config.prune] is off — the pruned scan is sequential); with
    [root_parallel > 1] it runs the search batches themselves in parallel.
    Results, virtual-clock totals and trace summaries are identical for any
    [jobs] value, including with [share] on and a warm-start [db]. *)
