open Xpiler_ir
open Xpiler_machine
module Pass = Xpiler_passes.Pass

(** Inter-pass auto-tuning with Monte-Carlo tree search (paper §5.2).

    The transcompilation is a Markov decision process: states are tensor
    programs, actions are pass applications, and the reward is the best
    modelled throughput of the state's intra-pass tuning space (Equations
    3-4). UCT selection, random expansion, random rollout to the depth
    limit, reward backpropagation along the path. The paper's defaults are
    depth N = 13 and 512 simulations.

    Rewards are cached per search on the kernel's structural hash
    ({!Kernel.hash}), and with [root_parallel > 1] the simulation budget is
    split over that many independent searches (distinct seeds, private
    reward caches) whose best result is kept — deterministically, whatever
    the [jobs] count used to run them. *)

type config = {
  max_depth : int;
  simulations : int;
  exploration : float;
  seed : int;
  intra_candidates : int;  (** intra-pass variants measured per new state *)
  root_parallel : int;
      (** independent root-parallel search batches; 1 = classic single tree *)
}

val default_config : config

type result = {
  best_kernel : Kernel.t;
  best_specs : Pass.spec list;
  best_reward : float;
  root_reward : float;  (** reward of the untransformed program *)
  nodes_expanded : int;
  simulations_run : int;
}

val search :
  ?config:config ->
  ?clock:Xpiler_util.Vclock.t ->
  ?buffer_sizes:(string * int) list ->
  ?jobs:int ->
  platform:Platform.t ->
  Kernel.t ->
  result
(** Only compilable states receive a positive reward, so the returned best
    kernel always passes the platform checker (it may equal the input when
    nothing better is found).

    [jobs] sizes the domain pool. With [root_parallel = 1] it parallelizes
    intra-pass candidate evaluation inside each reward; with
    [root_parallel > 1] it runs the search batches themselves in parallel.
    Results, virtual-clock totals and trace summaries are identical for any
    [jobs] value. *)
