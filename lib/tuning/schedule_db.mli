open Xpiler_ir
open Xpiler_machine
module Pass = Xpiler_passes.Pass

(** In-memory schedule database for warm-started MCTS.

    Records the best spec sequence found by prior searches, keyed by a
    kernel {!signature} — operator structure plus platform, with every
    integer literal (loop extents, indices, allocation and launch sizes)
    wildcarded, so the same operator at different shapes shares one entry.
    {!Mcts.search} consults it to replay the recorded prefix as a
    guaranteed-expanded first trajectory, which makes repeated or batch
    translations of similar kernels converge in far fewer simulations.

    Conflicts resolve most-recent-wins: rewards are not comparable across
    shapes, so the last completed search owns the entry. All operations are
    mutex-protected; lookups happen once per search on the master domain, so
    the database never perturbs the deterministic [--jobs] replay. *)

type entry = { specs : Pass.spec list; reward : float }
type t

val create : unit -> t

val default : t
(** The process-global database used by [Core.Xpiler] when
    [Config.tuning_warm_start] is on. Tests and benches should {!create}
    private instances (or {!clear} this one) for isolation. *)

val signature : Platform.id -> Kernel.t -> int
(** Structural hash invariant under integer-literal changes: the same
    operator at two shapes collides (by design); different operators or
    platforms do not (modulo hashing). *)

val lookup : t -> Platform.id -> Kernel.t -> Pass.spec list option
(** The recorded best spec sequence for the kernel's signature, if any. *)

val record : t -> Platform.id -> Kernel.t -> specs:Pass.spec list -> reward:float -> unit
(** Save a search result. Empty spec lists and zero rewards are not
    recorded (nothing to replay). *)

val size : t -> int
val clear : t -> unit

(** {2 Durable-store integration} (see [Xpiler_store.Store]) *)

val restore : t -> signature:int -> entry -> unit
(** Reinsert a persisted entry under its recorded signature. Unlike
    {!record} this is silent — no metrics, no observer — so replaying a
    log never re-journals or re-counts what the original run already did. *)

val fold : t -> (int -> entry -> 'a -> 'a) -> 'a -> 'a
(** Fold over [(signature, entry)] pairs (order unspecified), for snapshot
    dumps. *)

val set_observer : t -> (int -> entry -> unit) option -> unit
(** Hook called (outside the database mutex) with every entry {!record}
    actually inserts; the durable store uses it to append to its
    write-ahead log. At most one observer; [None] detaches. *)
