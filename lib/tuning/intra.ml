open Xpiler_machine
module Pass = Xpiler_passes.Pass
module Vclock = Xpiler_util.Vclock

type variant = { specs : Pass.spec list; kernel : Xpiler_ir.Kernel.t; throughput : float }

let candidates platform k =
  let splits =
    List.concat_map
      (fun (var, extent) ->
        List.map
          (fun factor -> [ Pass.Loop_split { var; factor } ])
          (Knobs.split_factors platform ~extent))
      (Knobs.splittable_loops k)
  in
  let reorders = List.map (fun var -> [ Pass.Loop_reorder { var } ]) (Knobs.reorderable_loops k) in
  let pipelines = List.map (fun var -> [ Pass.Pipeline { var } ]) (Knobs.pipelinable_loops k) in
  [ [] ] @ splits @ reorders @ pipelines

let tune ?clock ?(max_candidates = 64) ~platform k =
  let charge s =
    match clock with Some c -> Vclock.charge c Vclock.Auto_tuning s | None -> ()
  in
  let throughput kernel = Costmodel.throughput platform kernel ~shapes:[] in
  let base = { specs = []; kernel = k; throughput = throughput k } in
  let cands =
    candidates platform k |> List.filteri (fun i _ -> i < max_candidates)
  in
  List.fold_left
    (fun best specs ->
      Xpiler_obs.Trace.count "intra.variants";
      charge 10.0 (* one variant measured on the device *);
      let applied =
        List.fold_left
          (fun acc spec -> Result.bind acc (Pass.apply ~platform spec))
          (Ok k) specs
      in
      match applied with
      | Error _ -> best
      | Ok kernel -> (
        match Checker.compile platform kernel with
        | Error _ -> best
        | Ok () ->
          let t = throughput kernel in
          if t > best.throughput then { specs; kernel; throughput = t } else best))
    base cands
