open Xpiler_machine
module Pass = Xpiler_passes.Pass
module Vclock = Xpiler_util.Vclock
module Pool = Xpiler_util.Pool
module Listx = Xpiler_util.Listx
module Trace = Xpiler_obs.Trace
module Metrics = Xpiler_obs.Metrics

(* Unstable: memo lookups race between pool worker domains, so hit/miss
   splits are schedule-dependent (values never are). *)
let memo_metrics table =
  let lbl = [ ("table", table) ] in
  ( Metrics.counter ~stable:false ~help:"intra memo lookups by table and result"
      ~labels:(("result", "hit") :: lbl) "xpiler_intra_memo_lookups_total",
    Metrics.counter ~stable:false ~labels:(("result", "miss") :: lbl)
      "xpiler_intra_memo_lookups_total",
    Metrics.counter ~stable:false ~help:"intra memo entries dropped by capacity eviction"
      ~labels:lbl "xpiler_intra_memo_evictions_total" )

let compile_metrics = memo_metrics "compile"
let throughput_metrics = memo_metrics "throughput"

type variant = { specs : Pass.spec list; kernel : Xpiler_ir.Kernel.t; throughput : float }
type stats = { evaluated : int; pruned : int }

let candidates platform k =
  let splits =
    List.concat_map
      (fun (var, extent) ->
        List.map
          (fun factor -> [ Pass.Loop_split { var; factor } ])
          (Knobs.split_factors platform ~extent))
      (Knobs.splittable_loops k)
  in
  let reorders = List.map (fun var -> [ Pass.Loop_reorder { var } ]) (Knobs.reorderable_loops k) in
  let pipelines = List.map (fun var -> [ Pass.Pipeline { var } ]) (Knobs.pipelinable_loops k) in
  [ [] ] @ splits @ reorders @ pipelines

(* Depth-2 compositions seeded from measured depth-1 survivors: each
   surviving split opens reorder/pipeline opportunities on its *transformed*
   kernel (the split loop pair is what becomes interchangeable or
   pipelineable), which single-spec enumeration can never see. *)
let composed_candidates survivors ~limit =
  survivors
  |> List.concat_map (fun v ->
         match v.specs with
         | [ Pass.Loop_split _ ] ->
           let reorders =
             List.map
               (fun var -> v.specs @ [ Pass.Loop_reorder { var } ])
               (Knobs.reorderable_loops v.kernel)
           in
           let pipelines =
             List.map
               (fun var -> v.specs @ [ Pass.Pipeline { var } ])
               (Knobs.pipelinable_loops v.kernel)
           in
           reorders @ pipelines
         | _ -> [])
  |> Listx.take limit

(* ---- checker/cost-model memo ------------------------------------------- *)

(* The tuner revisits the same (platform, kernel) states constantly: MCTS
   rollouts rediscover states the tree already expanded, and intra candidates
   collide across rewards. Both functions are pure, so memoizing them is
   invisible except in time — which also makes the tables safe to share
   between pool workers (values are equal no matter who computes them). *)
module PK = struct
  type t = Platform.id * Xpiler_ir.Kernel.t

  let equal (aid, ak) (bid, bk) = aid = bid && Xpiler_ir.Kernel.equal ak bk
  let hash (id, k) = Xpiler_ir.Expr.hash_comb (Hashtbl.hash id) (Xpiler_ir.Kernel.hash k)
end

module PTbl = Hashtbl.Make (PK)

(* generous: a full MCTS search touches a few thousand states, and losing
   entries mid-search turns subsequent lookups into recomputes. Mutable so
   tests can force the eviction path. *)
let memo_limit = ref 65536
let set_memo_limit n = if n > 0 then memo_limit := n
let memo_mutex = Mutex.create ()
let compile_memo : bool PTbl.t = PTbl.create 256
let throughput_memo : float PTbl.t = PTbl.create 256

(* At capacity, evict half (arbitrary members — the memo records no
   recency) instead of resetting: a reset silently dropped the whole table
   mid-search, turning every later lookup into a recompute. Evictions are
   traced so capacity pressure is visible in journals. *)
let evict_half_locked tbl =
  let keys = PTbl.fold (fun key _ acc -> key :: acc) tbl [] in
  let dropped = ref 0 in
  List.iteri
    (fun i key ->
      if i land 1 = 0 then begin
        PTbl.remove tbl key;
        incr dropped
      end)
    keys;
  !dropped

(* compute runs outside the lock: a concurrent duplicate costs time, never
   correctness *)
let memoized tbl (m_hit, m_miss, m_evict) compute key =
  match Mutex.protect memo_mutex (fun () -> PTbl.find_opt tbl key) with
  | Some v ->
    Metrics.inc m_hit;
    v
  | None ->
    Metrics.inc m_miss;
    let v = compute () in
    let dropped =
      Mutex.protect memo_mutex (fun () ->
          let dropped = if PTbl.length tbl >= !memo_limit then evict_half_locked tbl else 0 in
          PTbl.replace tbl key v;
          dropped)
    in
    if dropped > 0 then begin
      Metrics.inc ~n:dropped m_evict;
      Trace.count ~n:dropped "intra.memo_evictions"
    end;
    v

let compiles platform k =
  memoized compile_memo compile_metrics
    (fun () -> Result.is_ok (Checker.compile platform k))
    (platform.Platform.id, k)

let modelled_throughput platform k =
  memoized throughput_memo throughput_metrics
    (fun () -> Costmodel.throughput platform k ~shapes:[])
    (platform.Platform.id, k)

(* ---- the tuning loop ---------------------------------------------------- *)

(* how many measured depth-1 split variants seed the composition phase *)
let compose_seeds = 4

let tune_with_stats ?clock ?charge ?(jobs = 1) ?(max_candidates = 64) ?(prune = true)
    ?(compose = true) ~platform k =
  let charge_fn =
    match charge with
    | Some f -> f
    | None -> (
      match clock with
      | Some c -> fun s -> Vclock.charge c Vclock.Auto_tuning s
      | None -> fun _ -> ())
  in
  let base = { specs = []; kernel = k; throughput = modelled_throughput platform k } in
  let best = ref base in
  let measured = ref [] (* successful variants, newest first *) in
  let evaluated = ref 0 and pruned = ref 0 in
  if prune then begin
    (* Branch-and-bound: apply every candidate and compute a cheap
       admissible throughput bound (Costmodel.throughput_bound), sort by
       bound descending (stable, so ties keep enumeration order), then scan
       sequentially. Once a bound cannot beat the incumbent, no later bound
       can either — the whole suffix is pruned without the expensive
       checker + full cost-model walk. The scan is sequential by nature
       (the incumbent is the pruning threshold), so [jobs] is ignored here;
       MCTS-level parallelism (root batches) is unaffected.

       All computation runs under [Trace.without]; only the canonical
       effect stream — per measured variant a count + charge, then one
       aggregated [intra.pruned] count — is emitted. That exact stream is
       what transposition receipts replay, keeping hits and misses
       observably identical. *)
    let prep specs_list =
      Trace.without (fun () ->
          List.filter_map
            (fun specs ->
              let applied =
                List.fold_left
                  (fun acc spec -> Result.bind acc (Pass.apply ~platform spec))
                  (Ok k) specs
              in
              match applied with
              | Error _ -> None
              | Ok kernel ->
                Some (specs, kernel, Costmodel.throughput_bound platform kernel ~shapes:[]))
            specs_list
          |> List.stable_sort (fun (_, _, a) (_, _, b) -> compare (b : float) a))
    in
    let rec scan = function
      | [] -> ()
      | (specs, kernel, bound) :: rest ->
        if bound <= !best.throughput then
          (* sorted descending: the entire suffix is also beaten *)
          pruned := !pruned + 1 + List.length rest
        else begin
          incr evaluated;
          Trace.count "intra.variants";
          charge_fn 10.0 (* one variant measured on the device *);
          Trace.without (fun () ->
              if compiles platform kernel then begin
                let throughput = modelled_throughput platform kernel in
                let v = { specs; kernel; throughput } in
                measured := v :: !measured;
                if throughput > !best.throughput then best := v
              end);
          scan rest
        end
    in
    scan (prep (Listx.take max_candidates (candidates platform k)));
    if compose then begin
      let seeds =
        Listx.top_k ~k:compose_seeds ~score:(fun v -> v.throughput) (List.rev !measured)
      in
      scan (prep (composed_candidates seeds ~limit:max_candidates))
    end;
    if !pruned > 0 then Trace.count ~n:!pruned "intra.pruned"
  end
  else begin
    (* exhaustive mode: every candidate goes through the pool (inline when
       jobs=1); trace counts and clock charges are deferred and replayed in
       candidate order, so the observable stream is independent of the job
       count *)
    let pool_eval specs_list =
      evaluated := !evaluated + List.length specs_list;
      Pool.map ~jobs
        (fun task specs ->
          Trace.without (fun () ->
              Pool.defer task (fun () ->
                  Trace.count "intra.variants";
                  charge_fn 10.0 (* one variant measured on the device *));
              let applied =
                List.fold_left
                  (fun acc spec -> Result.bind acc (Pass.apply ~platform spec))
                  (Ok k) specs
              in
              match applied with
              | Error _ -> None
              | Ok kernel ->
                if compiles platform kernel then
                  Some { specs; kernel; throughput = modelled_throughput platform kernel }
                else None))
        specs_list
      |> List.iter (function
           | Some v ->
             measured := v :: !measured;
             if v.throughput > !best.throughput then best := v
           | None -> ())
    in
    pool_eval (Listx.take max_candidates (candidates platform k));
    if compose then begin
      let seeds =
        Listx.top_k ~k:compose_seeds ~score:(fun v -> v.throughput) (List.rev !measured)
      in
      match composed_candidates seeds ~limit:max_candidates with
      | [] -> ()
      | composed -> pool_eval composed
    end
  end;
  (!best, { evaluated = !evaluated; pruned = !pruned })

let tune ?clock ?charge ?jobs ?max_candidates ?prune ?compose ~platform k =
  fst (tune_with_stats ?clock ?charge ?jobs ?max_candidates ?prune ?compose ~platform k)
