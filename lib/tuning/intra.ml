open Xpiler_machine
module Pass = Xpiler_passes.Pass
module Vclock = Xpiler_util.Vclock
module Pool = Xpiler_util.Pool
module Trace = Xpiler_obs.Trace

type variant = { specs : Pass.spec list; kernel : Xpiler_ir.Kernel.t; throughput : float }

let candidates platform k =
  let splits =
    List.concat_map
      (fun (var, extent) ->
        List.map
          (fun factor -> [ Pass.Loop_split { var; factor } ])
          (Knobs.split_factors platform ~extent))
      (Knobs.splittable_loops k)
  in
  let reorders = List.map (fun var -> [ Pass.Loop_reorder { var } ]) (Knobs.reorderable_loops k) in
  let pipelines = List.map (fun var -> [ Pass.Pipeline { var } ]) (Knobs.pipelinable_loops k) in
  [ [] ] @ splits @ reorders @ pipelines

(* ---- checker/cost-model memo ------------------------------------------- *)

(* The tuner revisits the same (platform, kernel) states constantly: MCTS
   rollouts rediscover states the tree already expanded, and intra candidates
   collide across rewards. Both functions are pure, so memoizing them is
   invisible except in time — which also makes the tables safe to share
   between pool workers (values are equal no matter who computes them). *)
module PK = struct
  type t = Platform.id * Xpiler_ir.Kernel.t

  let equal (aid, ak) (bid, bk) = aid = bid && Xpiler_ir.Kernel.equal ak bk
  let hash (id, k) = Xpiler_ir.Expr.hash_comb (Hashtbl.hash id) (Xpiler_ir.Kernel.hash k)
end

module PTbl = Hashtbl.Make (PK)

(* generous: a full MCTS search touches a few thousand states, and a reset
   mid-search turns every subsequent lookup into a recompute *)
let memo_limit = 65536
let memo_mutex = Mutex.create ()
let compile_memo : bool PTbl.t = PTbl.create 256
let throughput_memo : float PTbl.t = PTbl.create 256

(* compute runs outside the lock: a concurrent duplicate costs time, never
   correctness *)
let memoized tbl compute key =
  match Mutex.protect memo_mutex (fun () -> PTbl.find_opt tbl key) with
  | Some v -> v
  | None ->
    let v = compute () in
    Mutex.protect memo_mutex (fun () ->
        if PTbl.length tbl >= memo_limit then PTbl.reset tbl;
        PTbl.replace tbl key v);
    v

let compiles platform k =
  memoized compile_memo
    (fun () -> Result.is_ok (Checker.compile platform k))
    (platform.Platform.id, k)

let modelled_throughput platform k =
  memoized throughput_memo
    (fun () -> Costmodel.throughput platform k ~shapes:[])
    (platform.Platform.id, k)

(* ---- the tuning loop ---------------------------------------------------- *)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let tune ?clock ?charge ?(jobs = 1) ?(max_candidates = 64) ~platform k =
  let charge_fn =
    match charge with
    | Some f -> f
    | None -> (
      match clock with
      | Some c -> fun s -> Vclock.charge c Vclock.Auto_tuning s
      | None -> fun _ -> ())
  in
  let base = { specs = []; kernel = k; throughput = modelled_throughput platform k } in
  let cands = take max_candidates (candidates platform k) in
  (* every candidate goes through the pool (inline when jobs=1): trace counts
     and clock charges are deferred and replayed in candidate order, so the
     observable stream is independent of the job count *)
  let evaluated =
    Pool.map ~jobs
      (fun task specs ->
        Trace.without (fun () ->
            Pool.defer task (fun () ->
                Trace.count "intra.variants";
                charge_fn 10.0 (* one variant measured on the device *));
            let applied =
              List.fold_left
                (fun acc spec -> Result.bind acc (Pass.apply ~platform spec))
                (Ok k) specs
            in
            match applied with
            | Error _ -> None
            | Ok kernel ->
              if compiles platform kernel then
                Some { specs; kernel; throughput = modelled_throughput platform kernel }
              else None))
      cands
  in
  List.fold_left
    (fun best -> function
      | Some v when v.throughput > best.throughput -> v
      | _ -> best)
    base evaluated
