(* In-memory schedule database for warm-started MCTS.

   Batch translation workloads keep tuning *similar* kernels: the same
   operator at another shape, or the same structure after a different repair
   path. Their best spec sequences transfer almost verbatim, so we record
   [best_specs] per kernel *signature* — a structural hash of the operator
   and platform with every integer literal wildcarded, so exact shapes do
   not fragment the key space — and replay the recorded prefix as a
   guaranteed-expanded first trajectory in the next search.

   Most-recent-wins on conflict: rewards are not comparable across shapes
   (larger problems model as lower throughput), so "the last search that
   completed" is the only ordering that is meaningful and deterministic. *)

open Xpiler_ir
open Xpiler_machine
module Pass = Xpiler_passes.Pass
module Metrics = Xpiler_obs.Metrics

(* Stable: lookups and records happen on the master domain, once per search,
   so the counts are a pure function of the workload. *)
let m_hits =
  Metrics.counter ~help:"schedule DB warm-start lookups by result" ~labels:[ ("result", "hit") ]
    "xpiler_schedule_db_lookups_total"

let m_misses = Metrics.counter ~labels:[ ("result", "miss") ] "xpiler_schedule_db_lookups_total"
let m_records = Metrics.counter ~help:"schedule DB entries recorded" "xpiler_schedule_db_records_total"

type entry = { specs : Pass.spec list; reward : float }

type t = {
  mutex : Mutex.t;
  tbl : (int, entry) Hashtbl.t;
  (* durable-store hook: called (outside the mutex) with the signature of
     every entry a search actually records, so the store can append it to
     its write-ahead log; [restore] bypasses it to avoid echoing replayed
     records back to disk *)
  mutable observer : (int -> entry -> unit) option;
}

let create () = { mutex = Mutex.create (); tbl = Hashtbl.create 64; observer = None }
let default = create ()
let set_observer t o = Mutex.protect t.mutex (fun () -> t.observer <- o)

(* structural hash with integer literals wildcarded; mirrors Kernel.hash
   but folds every [Int _] (loop extents, indices, alloc sizes, launch
   extents) into one constant tag *)
let comb = Expr.hash_comb

let rec sig_expr h (e : Expr.t) =
  match e with
  | Expr.Int _ -> comb h 0x5157 (* any constant: shapes are not structure *)
  | Expr.Float _ -> comb h 0x464c
  | Expr.Var v -> comb (comb h 1) (Hashtbl.hash v)
  | Expr.Load (b, i) -> sig_expr (comb (comb h 2) (Hashtbl.hash b)) i
  | Expr.Binop (op, l, r) -> sig_expr (sig_expr (comb (comb h 3) (Hashtbl.hash op)) l) r
  | Expr.Unop (op, x) -> sig_expr (comb (comb h 4) (Hashtbl.hash op)) x
  | Expr.Select (c, t, f) -> sig_expr (sig_expr (sig_expr (comb h 5) c) t) f
  | Expr.Cast (dt, x) -> sig_expr (comb (comb h 6) (Hashtbl.hash dt)) x

let rec sig_stmt h (s : Stmt.t) =
  match s with
  | Stmt.For r ->
    let h = comb (comb h 10) (Hashtbl.hash (r.var, r.kind)) in
    sig_block (sig_expr (sig_expr h r.lo) r.extent) r.body
  | Stmt.Let r -> sig_expr (comb (comb h 11) (Hashtbl.hash r.var)) r.value
  | Stmt.Assign r -> sig_expr (comb (comb h 12) (Hashtbl.hash r.var)) r.value
  | Stmt.Store r -> sig_expr (sig_expr (comb (comb h 13) (Hashtbl.hash r.buf)) r.index) r.value
  | Stmt.Alloc r ->
    (* size is a shape artifact: wildcarded like the integer literals *)
    comb (comb h 14) (Hashtbl.hash (r.buf, r.scope, r.dtype))
  | Stmt.If r -> sig_block (sig_block (sig_expr (comb h 15) r.cond) r.then_) r.else_
  | Stmt.Memcpy r ->
    let buf_ref h (b : Intrin.buf_ref) = sig_expr (comb h (Hashtbl.hash b.buf)) b.offset in
    sig_expr (buf_ref (buf_ref (comb h 16) r.dst) r.src) r.len
  | Stmt.Intrinsic i ->
    let buf_ref h (b : Intrin.buf_ref) = sig_expr (comb h (Hashtbl.hash b.buf)) b.offset in
    let h = comb (comb h 17) (Hashtbl.hash i.op) in
    let h = buf_ref h i.dst in
    let h = List.fold_left buf_ref h i.srcs in
    List.fold_left sig_expr h i.params
  | Stmt.Sync -> comb h 18
  | Stmt.Annot r -> comb (comb h 19) (Hashtbl.hash (r.key, r.value))

and sig_block h block = List.fold_left sig_stmt (comb h 20) block

let signature (platform : Platform.id) (k : Kernel.t) =
  let h = comb (Hashtbl.hash platform) (Hashtbl.hash k.Kernel.name) in
  let h =
    List.fold_left
      (fun h (p : Kernel.param) -> comb h (Hashtbl.hash (p.name, p.dtype, p.is_buffer)))
      h k.Kernel.params
  in
  let h = List.fold_left (fun h (ax, _) -> comb h (Hashtbl.hash ax)) (comb h 21) k.Kernel.launch in
  sig_block h k.Kernel.body

let lookup t platform k =
  let r =
    Mutex.protect t.mutex (fun () ->
        Option.map (fun e -> e.specs) (Hashtbl.find_opt t.tbl (signature platform k)))
  in
  Metrics.inc (match r with Some _ -> m_hits | None -> m_misses);
  r

let record t platform k ~specs ~reward =
  if specs <> [] && reward > 0.0 then begin
    Metrics.inc m_records;
    let s = signature platform k in
    let e = { specs; reward } in
    let observer =
      Mutex.protect t.mutex (fun () ->
          Hashtbl.replace t.tbl s e;
          t.observer)
    in
    match observer with Some f -> f s e | None -> ()
  end

let restore t ~signature entry =
  Mutex.protect t.mutex (fun () -> Hashtbl.replace t.tbl signature entry)

let fold t f acc =
  Mutex.protect t.mutex (fun () -> Hashtbl.fold f t.tbl acc)

let size t = Mutex.protect t.mutex (fun () -> Hashtbl.length t.tbl)
let clear t = Mutex.protect t.mutex (fun () -> Hashtbl.reset t.tbl)
