open Xpiler_ir
module Pass = Xpiler_passes.Pass
module Rng = Xpiler_util.Rng
module Vclock = Xpiler_util.Vclock
module Pool = Xpiler_util.Pool
module Trace = Xpiler_obs.Trace

type config = {
  max_depth : int;
  simulations : int;
  exploration : float;
  seed : int;
  intra_candidates : int;
  root_parallel : int;
  prune : bool;
  compose : bool;
}

let default_config =
  { max_depth = 13; simulations = 512; exploration = 1.2; seed = 7;
    intra_candidates = 12; root_parallel = 1; prune = true; compose = true }

type result = {
  best_kernel : Kernel.t;
  best_specs : Pass.spec list;
  best_reward : float;
  root_reward : float;
  nodes_expanded : int;
  simulations_run : int;
}

(* [rspecs] is the spec path from the root in reverse: children prepend, so
   extension is O(1) instead of the quadratic [specs @ [spec]]. [untried] is
   an array with live prefix [untried_n]; selection swap-removes in O(1). *)
type node = {
  kernel : Kernel.t;
  rspecs : Pass.spec list;
  depth : int;
  untried : Pass.spec array;
  mutable untried_n : int;
  mutable children : node list;
  mutable visits : int;
  mutable total : float;
}

module KTbl = Hashtbl.Make (struct
  type t = Kernel.t

  let equal = Kernel.equal
  let hash = Kernel.hash
end)

(* One independent search: own rng, own first-touch table, cost sink
   abstracted as [charge] so batched runs route charges through the pool's
   deferred replay. Returns the result plus the rollout-step and
   warm-replay-step counts (for deferred trace aggregation).

   Reward lookup is two-level. The per-search [seen] table (L1) keeps the
   trajectory's own repeats free, exactly like the old private reward
   cache. On an L1 miss the shared {!Transposition} table (L2) may already
   hold the state — computed by another batch, another search, or an
   earlier translation. Values are pure, so L2 only changes wall-clock
   time; observable effects stay deterministic because both the L2-hit and
   the fresh-evaluation paths emit the *same* canonical stream, replayed
   from the entry's receipt: nothing for invalid states, else one 5.0
   charge, then a count + 10.0 charge per measured intra variant, then one
   aggregated [intra.pruned] count. Fresh evaluations run under
   [Trace.without] with a null charge sink so the only effects are that
   canonical stream — whoever fills the table first is unobservable. *)
let search_one ~config ~sims ~seed ~charge ?(jobs = 1) ~share ~prefix ~buffer_sizes
    ~platform kernel =
  let rng = Rng.create seed in
  let nodes = ref 0 in
  let rollout_steps = ref 0 in
  let warm_steps = ref 0 in
  let best = ref (kernel, [], 0.0) in
  (* L1: reward by state for this search's own repeats *)
  let seen : float KTbl.t = KTbl.create 128 in
  let platform_id = platform.Xpiler_machine.Platform.id in
  let tt_find k =
    if share then
      Transposition.find ~platform:platform_id ~budget:config.intra_candidates
        ~prune:config.prune ~compose:config.compose k
    else None
  in
  let tt_store k e =
    if share then
      Transposition.store ~platform:platform_id ~budget:config.intra_candidates
        ~prune:config.prune ~compose:config.compose k e
  in
  (* reward = best intra-tuned throughput of the state; 0 for invalid states *)
  let reward (k : Kernel.t) rspecs =
    let r =
      match KTbl.find_opt seen k with
      | Some r -> r
      | None ->
        let entry =
          match tt_find k with
          | Some e -> e
          | None ->
            Transposition.count_eval ();
            let e =
              Trace.without (fun () ->
                  if not (Intra.compiles platform k) then
                    { Transposition.reward = 0.0; evaluated = 0; pruned = 0 }
                  else begin
                    let v, st =
                      Intra.tune_with_stats
                        ~charge:(fun _ -> ())
                        ~jobs ~prune:config.prune ~compose:config.compose
                        ~max_candidates:config.intra_candidates ~platform k
                    in
                    { Transposition.reward = v.Intra.throughput;
                      evaluated = st.Intra.evaluated;
                      pruned = st.Intra.pruned
                    }
                  end)
            in
            tt_store k e;
            e
        in
        (* canonical receipt replay — identical for hits and fresh runs *)
        if entry.Transposition.reward > 0.0 then begin
          charge 5.0 (* state set-up on the device *);
          for _ = 1 to entry.Transposition.evaluated do
            Trace.count "intra.variants";
            charge 10.0 (* one variant measured on the device *)
          done;
          if entry.Transposition.pruned > 0 then
            Trace.count ~n:entry.Transposition.pruned "intra.pruned"
        end;
        KTbl.replace seen k entry.Transposition.reward;
        entry.Transposition.reward
    in
    Trace.observe "mcts.reward" r;
    let _, _, b = !best in
    if r > b then begin
      best := (k, rspecs, r);
      (* best-so-far trajectory: one sample per improvement *)
      Trace.observe "mcts.best_reward" r
    end;
    r
  in
  let actions k = Actions.enumerate ~buffer_sizes platform k in
  let mk_node kernel rspecs depth =
    incr nodes;
    Trace.count "mcts.expansions";
    let untried =
      if depth >= config.max_depth then [||] else Array.of_list (actions kernel)
    in
    { kernel; rspecs; depth; untried; untried_n = Array.length untried;
      children = []; visits = 0; total = 0.0
    }
  in
  let root = mk_node kernel [] 0 in
  let root_reward = reward kernel [] in
  let uct parent_visits n =
    let mean = if n.visits = 0 then 0.0 else n.total /. float_of_int n.visits in
    mean
    +. config.exploration
       *. sqrt (log (float_of_int (max parent_visits 1)) /. float_of_int (max n.visits 1))
  in
  let apply k spec = Pass.apply ~platform spec k in
  (* Warm start: replay a recorded spec prefix (from Schedule_db) as a
     guaranteed-expanded first trajectory before UCT simulation. Each step
     removes the spec from the node's untried set *by identity* (no rng
     drawn, so the simulation stream is untouched), expands the child and
     evaluates its reward; the best reward along the replayed chain
     backpropagates once, like a single simulation. Replay stops early when
     the prefix diverges — the spec is not in the action space or fails to
     apply (recorded schedules come from *similar* kernels, not equal
     ones). *)
  let replay_prefix () =
    let rec go node k = function
      | [] -> []
      | spec :: rest when node.depth < config.max_depth -> (
        let idx = ref (-1) in
        for i = 0 to node.untried_n - 1 do
          if !idx < 0 && node.untried.(i) = spec then idx := i
        done;
        if !idx < 0 then []
        else
          match apply k spec with
          | Error _ -> []
          | Ok k' ->
            node.untried.(!idx) <- node.untried.(node.untried_n - 1);
            node.untried_n <- node.untried_n - 1;
            incr warm_steps;
            Trace.count "mcts.warm_steps";
            let child = mk_node k' (spec :: node.rspecs) (node.depth + 1) in
            node.children <- child :: node.children;
            let r = reward k' child.rspecs in
            (child, r) :: go child k' rest)
      | _ -> []
    in
    match go root kernel prefix with
    | [] -> ()
    | chain ->
      let br = List.fold_left (fun acc (_, r) -> Float.max acc r) root_reward chain in
      List.iter
        (fun (n, _) ->
          n.visits <- n.visits + 1;
          n.total <- n.total +. br)
        chain;
      root.visits <- root.visits + 1;
      root.total <- root.total +. br
  in
  replay_prefix ();
  (* random rollout from a state, returning the best reward encountered *)
  let rec rollout k rspecs depth best_r =
    if depth >= config.max_depth then best_r
    else begin
      incr rollout_steps;
      Trace.count "mcts.rollout_steps";
      match actions k with
      | [] -> best_r
      | acts -> (
        let spec = Rng.choose rng acts in
        match apply k spec with
        | Error _ -> best_r
        | Ok k' ->
          let rspecs' = spec :: rspecs in
          let r = reward k' rspecs' in
          rollout k' rspecs' (depth + 1) (Float.max best_r r))
    end
  in
  let rec simulate node =
    let r =
      if node.untried_n > 0 then begin
        (* expansion: O(1) swap-remove of a uniformly chosen untried action *)
        let i = Rng.int rng node.untried_n in
        let spec = node.untried.(i) in
        node.untried.(i) <- node.untried.(node.untried_n - 1);
        node.untried_n <- node.untried_n - 1;
        match apply node.kernel spec with
        | Error _ ->
          (* inapplicable action: learn its 0 reward *)
          0.0
        | Ok k' ->
          let child = mk_node k' (spec :: node.rspecs) (node.depth + 1) in
          node.children <- child :: node.children;
          let r0 = reward k' child.rspecs in
          let r = rollout k' child.rspecs child.depth r0 in
          child.visits <- child.visits + 1;
          child.total <- child.total +. r;
          r
      end
      else begin
        match node.children with
        | [] -> rollout node.kernel node.rspecs node.depth (reward node.kernel node.rspecs)
        | children ->
          let chosen =
            List.fold_left
              (fun acc c -> if uct node.visits c > uct node.visits acc then c else acc)
              (List.hd children) (List.tl children)
          in
          simulate chosen
      end
    in
    (* backpropagation *)
    node.visits <- node.visits + 1;
    node.total <- node.total +. r;
    r
  in
  let simulated = ref 0 in
  for _ = 1 to sims do
    incr simulated;
    Trace.count "mcts.simulations";
    ignore (simulate root)
  done;
  let bk, bs, br = !best in
  ( { best_kernel = bk;
      best_specs = List.rev bs;
      best_reward = br;
      root_reward;
      nodes_expanded = !nodes;
      simulations_run = !simulated
    },
    !rollout_steps,
    !warm_steps )

let search ?(config = default_config) ?clock ?(buffer_sizes = []) ?(jobs = 1) ?(share = true)
    ?db ~platform kernel =
  Trace.span ~cat:"phase"
    ~attrs:
      [ ("simulations", string_of_int config.simulations);
        ("max_depth", string_of_int config.max_depth) ]
    "mcts"
  @@ fun () ->
  let platform_id = platform.Xpiler_machine.Platform.id in
  (* warm start: one database lookup on the master domain, before any
     batch spawns — the prefix is replayed by a dedicated extra batch *)
  let prefix =
    match db with
    | None -> []
    | Some db -> (
      match Schedule_db.lookup db platform_id kernel with
      | Some specs -> specs
      | None -> [])
  in
  let result =
    let b = max config.root_parallel 1 in
    if b <= 1 && prefix = [] then begin
      let charge s =
        match clock with Some c -> Vclock.charge c Vclock.Auto_tuning s | None -> ()
      in
      let result, _, _ =
        search_one ~config ~sims:config.simulations ~seed:config.seed ~charge ~jobs ~share
          ~prefix:[] ~buffer_sizes ~platform kernel
      in
      result
    end
    else begin
      (* root parallelism: independent searches over distinct seeds, each
         with a private first-touch table over the shared transposition
         table, merged on the master domain. Simulations split evenly over
         the [b] base batches (remainder to the early ones). The warm-start
         trajectory runs as one *extra* batch — the base batches never see
         the prefix, so a schedule-database hit can only improve the merged
         result relative to the cold search, never redirect it. Per-batch
         trace counts and clock charges are buffered and replayed in batch
         order, so the result and the observable stream do not depend on
         [jobs]. *)
      let n = b + if prefix = [] then 0 else 1 in
      let sims_of i =
        if i >= b then max 1 (config.simulations / b)
        else (config.simulations / b) + if i < config.simulations mod b then 1 else 0
      in
      let prefix_of i = if i >= b then prefix else [] in
      let results =
        Pool.map ~jobs ?clock
          (fun task i ->
            Trace.without (fun () ->
                let res, steps, warm =
                  search_one ~config ~sims:(sims_of i) ~seed:(config.seed + (7919 * i))
                    ~charge:(fun s -> Pool.charge task Vclock.Auto_tuning s)
                    ~jobs:1 ~share ~prefix:(prefix_of i) ~buffer_sizes ~platform kernel
                in
                Pool.defer task (fun () ->
                    Trace.count ~n:res.nodes_expanded "mcts.expansions";
                    Trace.count ~n:res.simulations_run "mcts.simulations";
                    Trace.count ~n:steps "mcts.rollout_steps";
                    if warm > 0 then Trace.count ~n:warm "mcts.warm_steps";
                    Trace.observe "mcts.reward" res.best_reward);
                res))
          (List.init n Fun.id)
      in
      match results with
      | [] -> assert false
      | r0 :: rest ->
        let merged =
          List.fold_left
            (fun acc r ->
              let acc =
                { acc with
                  nodes_expanded = acc.nodes_expanded + r.nodes_expanded;
                  simulations_run = acc.simulations_run + r.simulations_run
                }
              in
              (* strict > keeps the earliest batch on ties *)
              if r.best_reward > acc.best_reward then
                { acc with
                  best_kernel = r.best_kernel;
                  best_specs = r.best_specs;
                  best_reward = r.best_reward
                }
              else acc)
            r0 rest
        in
        Trace.observe "mcts.best_reward" merged.best_reward;
        merged
    end
  in
  (* record the winner for the next similar translation *)
  (match db with
  | Some db ->
    Schedule_db.record db platform_id kernel ~specs:result.best_specs
      ~reward:result.best_reward
  | None -> ());
  result
