open Xpiler_ir
open Xpiler_machine
module Pass = Xpiler_passes.Pass
module Rng = Xpiler_util.Rng
module Vclock = Xpiler_util.Vclock
module Trace = Xpiler_obs.Trace

type config = {
  max_depth : int;
  simulations : int;
  exploration : float;
  seed : int;
  intra_candidates : int;
}

let default_config =
  { max_depth = 13; simulations = 512; exploration = 1.2; seed = 7; intra_candidates = 12 }

type result = {
  best_kernel : Kernel.t;
  best_specs : Pass.spec list;
  best_reward : float;
  root_reward : float;
  nodes_expanded : int;
  simulations_run : int;
}

type node = {
  kernel : Kernel.t;
  specs : Pass.spec list;  (** from root *)
  depth : int;
  mutable untried : Pass.spec list;
  mutable children : node list;
  mutable visits : int;
  mutable total : float;
}

let search ?(config = default_config) ?clock ?(buffer_sizes = []) ~platform kernel =
  Trace.span ~cat:"phase"
    ~attrs:
      [ ("simulations", string_of_int config.simulations);
        ("max_depth", string_of_int config.max_depth) ]
    "mcts"
  @@ fun () ->
  let rng = Rng.create config.seed in
  let charge s =
    match clock with Some c -> Vclock.charge c Vclock.Auto_tuning s | None -> ()
  in
  let nodes = ref 0 in
  let best = ref (kernel, [], 0.0) in
  (* reward = best intra-tuned throughput of the state; 0 for invalid states *)
  let reward_cache : (string, float) Hashtbl.t = Hashtbl.create 128 in
  let reward (k : Kernel.t) specs =
    let key = Marshal.to_string k [] in
    let r =
      match Hashtbl.find_opt reward_cache key with
      | Some r -> r
      | None ->
        let r =
          match Checker.compile platform k with
          | Error _ -> 0.0
          | Ok () ->
            charge 5.0;
            let v = Intra.tune ?clock ~max_candidates:config.intra_candidates ~platform k in
            v.Intra.throughput
        in
        Hashtbl.replace reward_cache key r;
        r
    in
    Trace.observe "mcts.reward" r;
    let _, _, b = !best in
    if r > b then begin
      best := (k, specs, r);
      (* best-so-far trajectory: one sample per improvement *)
      Trace.observe "mcts.best_reward" r
    end;
    r
  in
  let actions k = Actions.enumerate ~buffer_sizes platform k in
  let mk_node kernel specs depth =
    incr nodes;
    Trace.count "mcts.expansions";
    { kernel; specs; depth;
      untried = (if depth >= config.max_depth then [] else actions kernel);
      children = []; visits = 0; total = 0.0
    }
  in
  let root = mk_node kernel [] 0 in
  let root_reward = reward kernel [] in
  let uct parent_visits n =
    let mean = if n.visits = 0 then 0.0 else n.total /. float_of_int n.visits in
    mean
    +. config.exploration
       *. sqrt (log (float_of_int (max parent_visits 1)) /. float_of_int (max n.visits 1))
  in
  let apply k spec = Pass.apply ~platform spec k in
  (* random rollout from a state, returning the best reward encountered *)
  let rec rollout k specs depth best_r =
    if depth >= config.max_depth then best_r
    else begin
      Trace.count "mcts.rollout_steps";
      match actions k with
      | [] -> best_r
      | acts -> (
        let spec = Rng.choose rng acts in
        match apply k spec with
        | Error _ -> best_r
        | Ok k' ->
          let r = reward k' (specs @ [ spec ]) in
          rollout k' (specs @ [ spec ]) (depth + 1) (Float.max best_r r))
    end
  in
  let rec simulate node =
    let r =
      if node.untried <> [] then begin
        (* expansion *)
        let i = Rng.int rng (List.length node.untried) in
        let spec = List.nth node.untried i in
        node.untried <- List.filteri (fun j _ -> j <> i) node.untried;
        match apply node.kernel spec with
        | Error _ ->
          (* inapplicable action: learn its 0 reward *)
          0.0
        | Ok k' ->
          let child = mk_node k' (node.specs @ [ spec ]) (node.depth + 1) in
          node.children <- child :: node.children;
          let r0 = reward k' child.specs in
          let r = rollout k' child.specs child.depth r0 in
          child.visits <- child.visits + 1;
          child.total <- child.total +. r;
          r
      end
      else begin
        match node.children with
        | [] -> rollout node.kernel node.specs node.depth (reward node.kernel node.specs)
        | children ->
          let chosen =
            List.fold_left
              (fun acc c -> if uct node.visits c > uct node.visits acc then c else acc)
              (List.hd children) (List.tl children)
          in
          simulate chosen
      end
    in
    (* backpropagation *)
    node.visits <- node.visits + 1;
    node.total <- node.total +. r;
    r
  in
  let sims = ref 0 in
  for _ = 1 to config.simulations do
    incr sims;
    Trace.count "mcts.simulations";
    ignore (simulate root)
  done;
  let bk, bs, br = !best in
  { best_kernel = bk;
    best_specs = bs;
    best_reward = br;
    root_reward;
    nodes_expanded = !nodes;
    simulations_run = !sims
  }
