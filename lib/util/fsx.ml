(* Shared filesystem helpers. See fsx.mli. *)

let rec mkdir_p d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    (* tolerate a concurrent creator winning the race between the
       [file_exists] probe and here: EEXIST/EISDIR means the directory is
       there, which is all we wanted *)
    try Unix.mkdir d 0o755 with Unix.Unix_error ((EEXIST | EISDIR), _, _) -> ()
  end

let read_file path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> Ok s
        | exception End_of_file -> Error (path ^ ": truncated while reading"))
