(* Deterministic domain pool: parallel map whose observable behaviour is
   byte-identical for any job count. See pool.mli for the contract. *)

type deferred = Thunk of (unit -> unit) | Charge of Vclock.stage * float

type task = { index : int; rng : Rng.t; fx : deferred Queue.t }

let index t = t.index
let rng t = t.rng
let defer t f = Queue.add (Thunk f) t.fx
let charge t stage s = Queue.add (Charge (stage, s)) t.fx

let default_jobs =
  ref
    (match Sys.getenv_opt "XPILER_JOBS" with
    | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 1)
    | None -> 1)

let jobs () = !default_jobs
let set_jobs n = if n > 0 then default_jobs := n

(* Effective parallelism is capped by the cores actually available: extra
   domains on an oversubscribed host cannot run concurrently, yet every live
   domain must join each stop-the-world minor collection, so they make things
   strictly slower. The replay contract makes the clamp invisible except in
   wall-clock. Overridable (tests force real domains even on one core). *)
let max_domains =
  ref
    (match Sys.getenv_opt "XPILER_MAX_DOMAINS" with
    | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> n
      | _ -> Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ())

let get_max_domains () = !max_domains
let set_max_domains n = if n > 0 then max_domains := n

(* Nested [map] calls (a pooled task that itself pools) run inline: domains
   spawning domains would oversubscribe, and the replay contract already
   guarantees the results are the same either way. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* ---- self-stats ---------------------------------------------------------
   The pool cannot depend on the metrics registry (xpiler_obs depends on
   xpiler_util), so it keeps its own counters and the registry pulls them at
   snapshot time. Wall-clock numbers are inherently schedule-dependent; the
   registry classifies everything derived from here as unstable. *)

let latency_bounds = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]

type stats = {
  maps : int;  (** completed [map] calls *)
  tasks : int;  (** tasks executed across all maps *)
  busy_seconds : float;  (** sum of per-task wall time across all domains *)
  wall_seconds : float;  (** sum of wall time of the [map] calls themselves *)
  max_jobs : int;  (** largest effective job count seen *)
  latency_counts : int array;  (** task latencies, per {!latency_bounds} bucket, plus overflow *)
}

let stats_lock = Mutex.create ()
let s_maps = ref 0
let s_tasks = ref 0
let s_busy = ref 0.0
let s_wall = ref 0.0
let s_max_jobs = ref 0
let s_latency = Array.make (Array.length latency_bounds + 1) 0

let note_task dt =
  Mutex.protect stats_lock (fun () ->
      incr s_tasks;
      s_busy := !s_busy +. dt;
      let n = Array.length latency_bounds in
      let rec bucket i = if i >= n || dt <= latency_bounds.(i) then i else bucket (i + 1) in
      let b = bucket 0 in
      s_latency.(b) <- s_latency.(b) + 1)

let note_map ~jobs dt =
  Mutex.protect stats_lock (fun () ->
      incr s_maps;
      s_wall := !s_wall +. dt;
      if jobs > !s_max_jobs then s_max_jobs := jobs)

let stats () =
  Mutex.protect stats_lock (fun () ->
      {
        maps = !s_maps;
        tasks = !s_tasks;
        busy_seconds = !s_busy;
        wall_seconds = !s_wall;
        max_jobs = !s_max_jobs;
        latency_counts = Array.copy s_latency;
      })

let reset_stats () =
  Mutex.protect stats_lock (fun () ->
      s_maps := 0;
      s_tasks := 0;
      s_busy := 0.0;
      s_wall := 0.0;
      s_max_jobs := 0;
      Array.fill s_latency 0 (Array.length s_latency) 0)

(* Independent per-task streams: a task's RNG depends on (seed, index) only,
   never on the job count or the schedule. *)
let task_seed seed i = Hashtbl.hash (seed, i, "xpiler-pool")

(* ---- worker lifetime ----------------------------------------------------
   Helper domains are spawned per [map] call and joined before it returns.
   A persistent pool (workers parked on a condition variable between jobs)
   was tried and rejected: on OCaml 5 every live domain takes part in
   stop-the-world minor collections, and measurement showed idle domains —
   blocked or spinning — slowing allocation-heavy *serial* code elsewhere in
   the process by 20-100x. [Domain.spawn]+[join] costs ~1ms per helper,
   which a parallel section worth parallelising amortises easily, and joined
   domains leave no residue. *)

let map ?jobs:j ?(seed = 0) ?clock f inputs =
  let j = min (match j with Some j -> j | None -> jobs ()) !max_domains in
  let items = Array.of_list inputs in
  let n = Array.length items in
  let tasks =
    Array.init n (fun i -> { index = i; rng = Rng.create (task_seed seed i); fx = Queue.create () })
  in
  let results = Array.make n None in
  let run i =
    let t0 = Unix.gettimeofday () in
    let r =
      try Ok (f tasks.(i) items.(i))
      with e -> Error (e, Printexc.get_raw_backtrace ())
    in
    note_task (Unix.gettimeofday () -. t0);
    results.(i) <- Some r
  in
  let map_t0 = Unix.gettimeofday () in
  (if j <= 1 || n <= 1 || Domain.DLS.get in_worker then
     for i = 0 to n - 1 do
       run i
     done
   else begin
     let next = Atomic.make 0 in
     let pull () =
       let rec loop () =
         let i = Atomic.fetch_and_add next 1 in
         if i < n then begin
           run i;
           loop ()
         end
       in
       loop ()
     in
     let helpers =
       List.init
         (min (j - 1) (n - 1))
         (fun _ ->
           Domain.spawn (fun () ->
               Domain.DLS.set in_worker true;
               pull ()))
     in
     (* the caller works too; its tasks must still see nested maps as inline *)
     let saved = Domain.DLS.get in_worker in
     Domain.DLS.set in_worker true;
     Fun.protect
       ~finally:(fun () ->
         Domain.DLS.set in_worker saved;
         List.iter Domain.join helpers)
       (fun () -> pull ())
   end);
  note_map ~jobs:(max 1 (min j (max n 1))) (Unix.gettimeofday () -. map_t0);
  (* Deterministic replay: per-task effect buffers drain in input order on
     the calling domain, so clock observers and deferred trace emission see
     the exact sequential event stream. The first failing task (by input
     order) re-raises after the effects of the tasks before it. *)
  let out = ref [] in
  for i = 0 to n - 1 do
    Queue.iter
      (function
        | Thunk g -> g ()
        | Charge (stage, s) -> (
          match clock with Some c -> Vclock.charge c stage s | None -> ()))
      tasks.(i).fx;
    match results.(i) with
    | Some (Ok v) -> out := v :: !out
    | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
    | None -> invalid_arg "Pool.map: task did not run"
  done;
  List.rev !out
