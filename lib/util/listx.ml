(* Small list helpers shared across the tuner and benches. *)

let take n xs =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: go (n - 1) tl
  in
  go n xs

let dedup xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let top_k ~k ~score xs =
  let scored = List.map (fun x -> (score x, x)) xs in
  (* stable: equal scores keep input order, so callers stay deterministic *)
  let sorted = List.stable_sort (fun (a, _) (b, _) -> compare (b : float) a) scored in
  take k (List.map snd sorted)
