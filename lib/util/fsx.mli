(** Shared filesystem helpers.

    Every subsystem that writes results or caches to disk ([Report] CSVs,
    the bench-history journal, the native artifact cache, the durable
    knowledge store) needs the same two things: recursive directory
    creation that tolerates concurrent creators, and whole-file reads.
    They live here so the check-then-create TOCTOU race is fixed in one
    place. *)

val mkdir_p : string -> unit
(** Create [dir] and every missing ancestor, [0o755]. Safe against
    concurrent creators: an [EEXIST]/[EISDIR] from another process (or
    thread) winning the race is success, not an error — unlike the
    [Sys.file_exists]-then-[mkdir] pattern this replaces, which raced and
    also failed outright on nested paths. *)

val read_file : string -> (string, string) result
(** Whole file as a string (binary mode); [Error] carries the failing path
    and reason. *)
