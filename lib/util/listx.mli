(** List helpers shared by the tuner's candidate enumerators. *)

val take : int -> 'a list -> 'a list
(** First [n] elements ([] when [n <= 0]); total, unlike [List.filteri]-based
    variants it stops walking at [n]. *)

val top_k : k:int -> score:('a -> float) -> 'a list -> 'a list
(** The [k] highest-scoring elements, best first. The sort is stable, so
    ties keep input order — callers relying on deterministic candidate
    streams can use it freely. *)
