(** List helpers shared by the tuner's candidate enumerators. *)

val take : int -> 'a list -> 'a list
(** First [n] elements ([] when [n <= 0]); total, unlike [List.filteri]-based
    variants it stops walking at [n]. *)

val dedup : 'a list -> 'a list
(** Order-preserving deduplication: the first occurrence of each element is
    kept, later duplicates dropped. O(n) via structural hashing — replaces
    the quadratic [List.mem]-plus-append folds that used to be re-derived at
    every call site. Elements must be hashable/comparable structurally (no
    functions or cyclic values). *)

val top_k : k:int -> score:('a -> float) -> 'a list -> 'a list
(** The [k] highest-scoring elements, best first. The sort is stable, so
    ties keep input order — callers relying on deterministic candidate
    streams can use it freely. *)
