(** Deterministic virtual clock.

    The paper reports wall-clock compilation times (Figure 8) dominated by
    LLM calls, SMT solving and auto-tuning measurements. In this sealed
    reproduction each stage charges a modelled duration to a virtual clock so
    that the breakdown is reproducible. Durations are in seconds. *)

type t

(** Stage labels matching Figure 8's breakdown, plus [Static_analysis] for
    the pre-validation analyzer (much cheaper than an interpreter run) and
    [Symbolic_fallback] for rewrite-only pass application on the escalation
    ladder (no LLM in the loop, so it is charged separately). *)
type stage =
  | Annotation
  | Llm_transform
  | Static_analysis
  | Unit_test
  | Bug_localization
  | Smt_solving
  | Symbolic_fallback
  | Auto_tuning

val stage_name : stage -> string
val all_stages : stage list

val create : unit -> t
val charge : t -> stage -> float -> unit
val elapsed : t -> float
val stage_total : t -> stage -> float

val breakdown : t -> (stage * float) list
(** Per-stage totals in canonical stage order; stages with a zero total are
    omitted so reports stay compact. *)

val reset : t -> unit
val merge : t -> t -> unit
(** [merge dst src] adds all of [src]'s charges into [dst]. Merged charges
    do not fire [dst]'s observer: they were already observed (if at all) on
    [src]'s timeline. *)

val set_observer : t -> (stage -> float -> unit) -> unit
(** [set_observer t f] makes every subsequent [charge t stage s] also call
    [f stage s] — the hook the tracing layer uses to advance its virtual
    timeline in lock-step with the clock, keeping span durations and
    [breakdown] consistent by construction. At most one observer; a second
    call replaces the first. *)

val clear_observer : t -> unit
