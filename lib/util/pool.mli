(** Deterministic domain pool.

    [map] evaluates a function over a list on up to [jobs] OCaml 5 domains
    and returns the results in input order. The contract is stronger than
    plain parallel map: every observable output — results, virtual-clock
    charges, deferred trace events, exceptions — is byte-identical whatever
    the job count, so [jobs=8] runs produce the same CSVs, journals and
    tuning decisions as [jobs=1].

    How determinism is achieved:
    - each task gets an independently seeded {!Rng.t} derived from
      [(seed, index)] only — never from the schedule;
    - tasks must not mutate shared state or emit ambient traces; instead
      they buffer effects with {!charge} / {!defer}, and the buffers are
      replayed on the calling domain in input order after all tasks finish
      (callers in this repo additionally wrap task bodies in
      [Obs.Trace.without], which is what makes [jobs=1] — inline execution —
      match [jobs>1], where worker domains have no ambient tracer);
    - the first failing task by input order re-raises after the effects of
      the tasks preceding it; later tasks' results and effects are dropped.

    Nested [map] calls from inside a task run inline on the worker. *)

type task

val index : task -> int
val rng : task -> Rng.t
(** Per-task deterministic RNG, a pure function of [(seed, index)]. *)

val defer : task -> (unit -> unit) -> unit
(** Buffer a side effect (e.g. a trace emission); runs on the calling domain
    during the input-order replay phase. *)

val charge : task -> Vclock.stage -> float -> unit
(** Buffer a virtual-clock charge against [map]'s [?clock]; replayed in
    input order so clock observers fire deterministically. *)

val map :
  ?jobs:int -> ?seed:int -> ?clock:Vclock.t -> (task -> 'a -> 'b) -> 'a list -> 'b list
(** [map f inputs] with results in input order. [jobs] defaults to
    {!jobs}[ ()]; [seed] (default 0) derives the per-task RNGs; [clock]
    receives the replayed {!charge}s.

    The effective job count is additionally clamped to {!get_max_domains}
    (default [Domain.recommended_domain_count ()]): oversubscribed domains
    cannot run concurrently but still join every stop-the-world collection,
    so on a single-core host [jobs > 1] degrades to inline execution — with
    identical observable behaviour, by the replay contract. Helper domains
    are spawned per call and joined before [map] returns; idle parked
    domains were measured to slow unrelated serial code 20-100x. *)

val jobs : unit -> int
(** The process default used when [map]'s [?jobs] is omitted: last
    {!set_jobs} value, else [XPILER_JOBS], else 1. *)

val set_jobs : int -> unit

val get_max_domains : unit -> int
(** Cap on real worker domains per [map]: last {!set_max_domains} value,
    else [XPILER_MAX_DOMAINS], else [Domain.recommended_domain_count ()]. *)

val set_max_domains : int -> unit
(** Override the domain cap — tests use this to force cross-domain execution
    even on a single-core host. *)

(** {2 Self-stats}

    The pool keeps wall-clock usage counters for the observability layer,
    which pulls them at snapshot time ([Obs.Metrics] cannot be called from
    here without a dependency cycle). All values are schedule-dependent:
    identical *results* across job counts, but busy/wall seconds and latency
    buckets differ run to run. *)

val latency_bounds : float array
(** Upper bounds (seconds, inclusive) of the task-latency histogram buckets;
    [latency_counts] has one extra trailing overflow bucket. *)

type stats = {
  maps : int;  (** completed [map] calls *)
  tasks : int;  (** tasks executed across all maps *)
  busy_seconds : float;  (** sum of per-task wall time across all domains *)
  wall_seconds : float;  (** sum of wall time of the [map] calls themselves *)
  max_jobs : int;  (** largest effective job count seen *)
  latency_counts : int array;  (** per-bucket task counts, plus overflow *)
}

val stats : unit -> stats
val reset_stats : unit -> unit
