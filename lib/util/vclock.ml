type stage =
  | Annotation
  | Llm_transform
  | Static_analysis
  | Unit_test
  | Bug_localization
  | Smt_solving
  | Symbolic_fallback
  | Auto_tuning

let all_stages =
  [ Annotation; Llm_transform; Static_analysis; Unit_test; Bug_localization; Smt_solving;
    Symbolic_fallback; Auto_tuning ]

let stage_name = function
  | Annotation -> "annotation"
  | Llm_transform -> "llm-transform"
  | Static_analysis -> "static-analysis"
  | Unit_test -> "unit-test"
  | Bug_localization -> "bug-localization"
  | Smt_solving -> "smt-solving"
  | Symbolic_fallback -> "symbolic-fallback"
  | Auto_tuning -> "auto-tuning"

let stage_index = function
  | Annotation -> 0
  | Llm_transform -> 1
  | Static_analysis -> 2
  | Unit_test -> 3
  | Bug_localization -> 4
  | Smt_solving -> 5
  | Symbolic_fallback -> 6
  | Auto_tuning -> 7

let n_stages = 8

type t = {
  totals : float array;
  mutable observer : (stage -> float -> unit) option;
}

let create () = { totals = Array.make n_stages 0.0; observer = None }

let set_observer t f = t.observer <- Some f
let clear_observer t = t.observer <- None

let charge t stage seconds =
  if seconds < 0.0 then invalid_arg "Vclock.charge: negative duration";
  let i = stage_index stage in
  t.totals.(i) <- t.totals.(i) +. seconds;
  match t.observer with Some f -> f stage seconds | None -> ()

let elapsed t = Array.fold_left ( +. ) 0.0 t.totals
let stage_total t stage = t.totals.(stage_index stage)

let breakdown t =
  List.filter_map
    (fun s ->
      let v = stage_total t s in
      if v > 0.0 then Some (s, v) else None)
    all_stages

let reset t = Array.fill t.totals 0 n_stages 0.0

let merge dst src =
  Array.iteri (fun i v -> dst.totals.(i) <- dst.totals.(i) +. v) src.totals
