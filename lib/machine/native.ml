open Xpiler_ir

(* Native kernel backend: lower a kernel to OCaml source, compile it
   out-of-process with [ocamlfind ocamlopt -shared], [Dynlink] the resulting
   [.cmxs], and run it through a positional ABI record. The generated plugin
   is fully self-contained: it carries a private copy of the evaluation
   runtime (value type, scalar operators, intrinsic semantics, the barrier
   effect and fiber scheduler), transcribed verbatim from [Compile], so the
   two engines agree statement-for-statement — same numerical results, same
   statistics, same error messages, same fiber interleaving.

   Artifacts are content-addressed by [Kernel.cache_key] salted with
   [codegen_version] and live on disk (XPILER_CACHE_DIR, default
   ~/.cache/xpiler) behind an in-process memo. Every infrastructure failure
   (no toolchain, bytecode host, compile error, corrupt artifact) degrades to
   [None] so [Interp.run] can fall back to the closure engine. *)

module Metrics = Xpiler_obs.Metrics
module Prof = Xpiler_obs.Prof
module Trace = Xpiler_obs.Trace

let codegen_version = "native-codegen-v1"

(* The host half of the plugin handshake: the plugin registers its entry
   closure under a well-known name; [caml_named_value] retrieves it. *)
external named_value : string -> Obj.t option = "xpiler_native_named_value"

(* Referencing [Callback] here guarantees Stdlib__Callback (and its
   registration table) is linked into any host executable, which the plugin's
   own [Callback.register] requires. *)
let () = Callback.register "xpiler.native.host" (Obj.repr ())

(* Must stay field-for-field identical (names, order, types) to the [abi]
   record declared in the generated plugin prelude below: the plugin entry is
   cast with [Obj.magic], so agreement is purely structural. *)
type abi = {
  bufs : float array array;
  buf_isf : bool array;
  s_int : int array;
  s_flt : float array;
  s_isf : bool array;
  fuel : int;
  store_limit : int;
  counters : int array;  (** steps stores intrinsic_elems memcpy_elems barriers *)
  fail0 : string -> unit;
  halt0 : unit -> unit;
  trace_on : bool;
  trace : string -> int -> float -> unit;
  tally_on : bool;
  tally : string -> int -> unit;
}

(* ---- instrumentation (all schedule/host dependent, hence unstable) ------ *)

let small_seconds = [| 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5 |]

let m_fallbacks =
  Metrics.counter ~stable:false ~help:"runs that fell back to the closure engine"
    "xpiler_native_fallbacks_total"

let m_memo_hit =
  Metrics.counter ~stable:false ~help:"native artifact lookups by result"
    ~labels:[ ("result", "memo_hit") ] "xpiler_native_cache_lookups_total"

let m_disk_hit =
  Metrics.counter ~stable:false ~labels:[ ("result", "disk_hit") ]
    "xpiler_native_cache_lookups_total"

let m_miss =
  Metrics.counter ~stable:false ~labels:[ ("result", "miss") ] "xpiler_native_cache_lookups_total"

let m_evictions =
  Metrics.counter ~stable:false ~help:"artifacts evicted by the size-bounded LRU"
    "xpiler_native_cache_evictions_total"

let m_corrupt =
  Metrics.counter ~stable:false ~help:"cached artifacts that failed to dynlink and were dropped"
    "xpiler_native_cache_corrupt_total"

let h_codegen =
  Metrics.histogram ~stable:false ~help:"kernel-to-OCaml-source lowering wall seconds"
    ~bounds:small_seconds "xpiler_native_codegen_seconds"

let h_compile =
  Metrics.histogram ~stable:false ~help:"out-of-process ocamlopt wall seconds"
    ~bounds:small_seconds "xpiler_native_compile_seconds"

let h_dynlink =
  Metrics.histogram ~stable:false ~help:"Dynlink.loadfile wall seconds" ~bounds:small_seconds
    "xpiler_native_dynlink_seconds"

(* ---- switches ----------------------------------------------------------- *)

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "XPILER_NATIVE" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | _ -> false)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let toolchain_override = ref None
let set_toolchain_override o = toolchain_override := o

let toolchain_probe =
  lazy (Sys.command "ocamlfind ocamlopt -version > /dev/null 2>&1" = 0)

let available () =
  match !toolchain_override with
  | Some b -> b
  | None -> Dynlink.is_native && Lazy.force toolchain_probe

(* ---- cache location and budget ------------------------------------------ *)

let cache_dir () =
  match Sys.getenv_opt "XPILER_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
    match Sys.getenv_opt "HOME" with
    | Some h when h <> "" -> Filename.concat (Filename.concat h ".cache") "xpiler"
    | _ -> Filename.concat (Filename.get_temp_dir_name ()) "xpiler-cache")

let limit_override = ref None
let set_cache_limit_bytes o = limit_override := o

let cache_limit_bytes () =
  match !limit_override with
  | Some n -> n
  | None -> (
    match Sys.getenv_opt "XPILER_CACHE_LIMIT_MB" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some mb when mb > 0 -> mb * 1024 * 1024
      | _ -> 512 * 1024 * 1024)
    | None -> 512 * 1024 * 1024)

let mkdir_p = Xpiler_util.Fsx.mkdir_p

let kernel_key k = Kernel.cache_key ~salt:codegen_version k

(* ---- codegen ------------------------------------------------------------ *)

(* The fixed plugin prelude. Everything below the [abi] record is a
   transcription of the shared runtime in [Compile] — keep the two in sync
   (the differential fuzzer cross-checks them end to end). [Fail]/[err]
   replace [Runtime_error]: the entry point converts at its boundary through
   [abi.fail0] so the host surfaces the exact same exception. *)
let prelude =
  {pre|type v = I of int | F of float

type abi = {
  bufs : float array array;
  buf_isf : bool array;
  s_int : int array;
  s_flt : float array;
  s_isf : bool array;
  fuel : int;
  store_limit : int;
  counters : int array;
  fail0 : string -> unit;
  halt0 : unit -> unit;
  trace_on : bool;
  trace : string -> int -> float -> unit;
  tally_on : bool;
  tally : string -> int -> unit;
}

exception Fail of string

let err fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt
let to_float = function I n -> float_of_int n | F f -> f
let to_int = function I n -> n | F f -> int_of_float f
let vf = to_float
let vi = to_int
let vb = function I n -> n <> 0 | F f -> f <> 0.0
let of_bool b = I (if b then 1 else 0)

let buf_get (d : float array) b i =
  if i < 0 || i >= Array.length d then
    err "out-of-bounds read %s[%d] (size %d)" b i (Array.length d)
  else Array.unsafe_get d i

let buf_set (d : float array) b i x =
  if i < 0 || i >= Array.length d then
    err "out-of-bounds write %s[%d] (size %d)" b i (Array.length d)
  else Array.unsafe_set d i x

type binop = Add | Sub | Mul | Div | Mod | Min | Max | Eq | Ne | Lt | Le | Gt | Ge | And | Or

let int_binop op a b =
  match op with
  | Add -> I (a + b)
  | Sub -> I (a - b)
  | Mul -> I (a * b)
  | Div -> if b = 0 then err "integer division by zero" else I (a / b)
  | Mod -> if b = 0 then err "integer modulo by zero" else I (a mod b)
  | Min -> I (min a b)
  | Max -> I (max a b)
  | Eq -> of_bool (a = b)
  | Ne -> of_bool (a <> b)
  | Lt -> of_bool (a < b)
  | Le -> of_bool (a <= b)
  | Gt -> of_bool (a > b)
  | Ge -> of_bool (a >= b)
  | And -> of_bool (a <> 0 && b <> 0)
  | Or -> of_bool (a <> 0 || b <> 0)

let float_binop op a b =
  match op with
  | Add -> F (a +. b)
  | Sub -> F (a -. b)
  | Mul -> F (a *. b)
  | Div -> F (a /. b)
  | Mod -> F (Float.rem a b)
  | Min -> F (Float.min a b)
  | Max -> F (Float.max a b)
  | Eq -> of_bool (a = b)
  | Ne -> of_bool (a <> b)
  | Lt -> of_bool (a < b)
  | Le -> of_bool (a <= b)
  | Gt -> of_bool (a > b)
  | Ge -> of_bool (a >= b)
  | And -> of_bool (a <> 0.0 && b <> 0.0)
  | Or -> of_bool (a <> 0.0 || b <> 0.0)

let v_bin op a b =
  match (a, b) with
  | I x, I y -> int_binop op x y
  | _ -> float_binop op (to_float a) (to_float b)

let erf_approx x =
  let s = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let y =
    1.0
    -. (((((1.061405429 *. t -. 1.453152027) *. t) +. 1.421413741) *. t -. 0.284496736)
         *. t +. 0.254829592)
       *. t *. exp (-.x *. x)
  in
  s *. y

type _ Effect.t += Barrier : unit Effect.t

type fiber_state = Done | Suspended of (unit -> fiber_state)

let run_fiber_group fibers =
  let open Effect.Deep in
  let start f =
    match_with f ()
      { retc = (fun () -> Done);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Barrier ->
              Some (fun (k : (a, _) continuation) -> Suspended (fun () -> continue k ()))
            | _ -> None)
      }
  in
  let rec rounds states =
    let pending =
      List.filter_map (function Done -> None | Suspended r -> Some r) states
    in
    if pending <> [] then rounds (List.rev_map (fun r -> r ()) pending)
  in
  rounds (List.rev_map start fibers)

type iop =
  | Vec_add | Vec_sub | Vec_mul | Vec_max | Vec_min
  | Vec_exp | Vec_log | Vec_sqrt | Vec_recip | Vec_tanh | Vec_erf
  | Vec_relu | Vec_sigmoid | Vec_gelu | Vec_sign
  | Vec_scale | Vec_adds | Vec_fill | Vec_copy
  | Vec_reduce_sum | Vec_reduce_max
  | Mma | Mlp | Conv2d | Dp4a

let intrinsic_exec (intr : int ref) ~name ~(op : iop) ~(dst_t : float array) ~dname ~dst_off
    ~(srcs : (float array * string * int) array) ~(params : int array) ~fparam =
  let src n =
    if n < Array.length srcs then srcs.(n) else err "intrinsic %s: missing source %d" name n
  in
  let param n =
    if n < Array.length params then params.(n)
    else err "intrinsic %s: missing parameter %d" name n
  in
  let map2 f =
    let len = param 0 in
    let at, an, ao = src 0 in
    let bt, bn, bo = src 1 in
    for k = 0 to len - 1 do
      buf_set dst_t dname (dst_off + k) (f (buf_get at an (ao + k)) (buf_get bt bn (bo + k)))
    done;
    intr := !intr + len
  in
  let map1 f =
    let len = param 0 in
    let at, an, ao = src 0 in
    for k = 0 to len - 1 do
      buf_set dst_t dname (dst_off + k) (f (buf_get at an (ao + k)))
    done;
    intr := !intr + len
  in
  match op with
  | Vec_add -> map2 ( +. )
  | Vec_sub -> map2 ( -. )
  | Vec_mul -> map2 ( *. )
  | Vec_max -> map2 Float.max
  | Vec_min -> map2 Float.min
  | Vec_exp -> map1 exp
  | Vec_log -> map1 log
  | Vec_sqrt -> map1 sqrt
  | Vec_recip -> map1 (fun x -> 1.0 /. x)
  | Vec_tanh -> map1 tanh
  | Vec_erf -> map1 erf_approx
  | Vec_relu -> map1 (fun x -> Float.max x 0.0)
  | Vec_sigmoid -> map1 (fun x -> 1.0 /. (1.0 +. exp (-.x)))
  | Vec_gelu -> map1 (fun x -> 0.5 *. x *. (1.0 +. erf_approx (x *. 0.7071067811865476)))
  | Vec_sign -> map1 (fun x -> if x > 0.0 then 1.0 else if x < 0.0 then -1.0 else 0.0)
  | Vec_copy -> map1 Fun.id
  | Vec_scale ->
    let len = param 0 in
    let s = fparam () in
    let at, an, ao = src 0 in
    for k = 0 to len - 1 do
      buf_set dst_t dname (dst_off + k) (buf_get at an (ao + k) *. s)
    done;
    intr := !intr + len
  | Vec_adds ->
    let len = param 0 in
    let s = fparam () in
    let at, an, ao = src 0 in
    for k = 0 to len - 1 do
      buf_set dst_t dname (dst_off + k) (buf_get at an (ao + k) +. s)
    done;
    intr := !intr + len
  | Vec_fill ->
    let len = param 0 in
    let s = fparam () in
    for k = 0 to len - 1 do
      buf_set dst_t dname (dst_off + k) s
    done;
    intr := !intr + len
  | Vec_reduce_sum ->
    let len = param 0 in
    let at, an, ao = src 0 in
    let acc = ref 0.0 in
    for k = 0 to len - 1 do
      acc := !acc +. buf_get at an (ao + k)
    done;
    buf_set dst_t dname dst_off !acc;
    intr := !intr + len
  | Vec_reduce_max ->
    let len = param 0 in
    if len <= 0 then err "vec_reduce_max: empty input";
    let at, an, ao = src 0 in
    let acc = ref (buf_get at an ao) in
    for k = 1 to len - 1 do
      acc := Float.max !acc (buf_get at an (ao + k))
    done;
    buf_set dst_t dname dst_off !acc;
    intr := !intr + len
  | Mma | Mlp ->
    let m = param 0 and k = param 1 and n = param 2 in
    let at, an, ao = src 0 in
    let bt, bn, bo = src 1 in
    for r = 0 to m - 1 do
      for c = 0 to n - 1 do
        let acc = ref (buf_get dst_t dname (dst_off + (r * n) + c)) in
        for l = 0 to k - 1 do
          acc :=
            !acc +. (buf_get at an (ao + (r * k) + l) *. buf_get bt bn (bo + (l * n) + c))
        done;
        buf_set dst_t dname (dst_off + (r * n) + c) !acc
      done
    done;
    intr := !intr + (m * n * k)
  | Conv2d ->
    let co = param 0 and ci = param 1 and kh = param 2 and kw = param 3 in
    let ho = param 4 and wo = param 5 and stride = param 6 in
    let wi = ((wo - 1) * stride) + kw in
    let it, iname, io = src 0 in
    let wt, wname, wo_ = src 1 in
    for oh = 0 to ho - 1 do
      for ow = 0 to wo - 1 do
        for oc = 0 to co - 1 do
          let acc = ref (buf_get dst_t dname (dst_off + (((oh * wo) + ow) * co) + oc)) in
          for r = 0 to kh - 1 do
            for q = 0 to kw - 1 do
              for c = 0 to ci - 1 do
                let iv =
                  buf_get it iname
                    (io + (((((oh * stride) + r) * wi) + (ow * stride) + q) * ci) + c)
                in
                let wv = buf_get wt wname (wo_ + (((((oc * kh) + r) * kw) + q) * ci) + c) in
                acc := !acc +. (iv *. wv)
              done
            done
          done;
          buf_set dst_t dname (dst_off + (((oh * wo) + ow) * co) + oc) !acc
        done
      done
    done;
    intr := !intr + (ho * wo * co * kh * kw * ci)
  | Dp4a ->
    let len = param 0 in
    if len mod 4 <> 0 then err "dp4a: length %d not a multiple of 4" len;
    let at, an, ao = src 0 in
    let bt, bn, bo = src 1 in
    for g = 0 to (len / 4) - 1 do
      let acc = ref (buf_get dst_t dname (dst_off + g)) in
      for j = 0 to 3 do
        acc :=
          !acc
          +. (buf_get at an (ao + (g * 4) + j) *. buf_get bt bn (bo + (g * 4) + j))
      done;
      buf_set dst_t dname (dst_off + g) !acc
    done;
    intr := !intr + len

|pre}

let iop_ctor : Intrin.op -> string = function
  | Vec_add -> "Vec_add"
  | Vec_sub -> "Vec_sub"
  | Vec_mul -> "Vec_mul"
  | Vec_max -> "Vec_max"
  | Vec_min -> "Vec_min"
  | Vec_exp -> "Vec_exp"
  | Vec_log -> "Vec_log"
  | Vec_sqrt -> "Vec_sqrt"
  | Vec_recip -> "Vec_recip"
  | Vec_tanh -> "Vec_tanh"
  | Vec_erf -> "Vec_erf"
  | Vec_relu -> "Vec_relu"
  | Vec_sigmoid -> "Vec_sigmoid"
  | Vec_gelu -> "Vec_gelu"
  | Vec_sign -> "Vec_sign"
  | Vec_scale -> "Vec_scale"
  | Vec_adds -> "Vec_adds"
  | Vec_fill -> "Vec_fill"
  | Vec_copy -> "Vec_copy"
  | Vec_reduce_sum -> "Vec_reduce_sum"
  | Vec_reduce_max -> "Vec_reduce_max"
  | Mma -> "Mma"
  | Mlp -> "Mlp"
  | Conv2d -> "Conv2d"
  | Dp4a -> "Dp4a"

(* codegen environment: IR names resolved to generated identifiers. [KInt]
   and [KFloat] mirror the closure compiler's [Unboxed]/[Fboxed] slots (the
   licences for the unboxed compilation paths); [KVal] is an immutable boxed
   binding, [KRef] a mutable one ([Assign]ed somewhere in the kernel). *)
type kind = KInt | KFloat | KVal | KRef
type bisf = Bstat of bool | Bdyn of string
type genv = { sv : (string * (string * kind)) list; bv : (string * (string * bisf)) list }

let sanitize s =
  String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_') s

let flit f =
  if f <> f then "(Float.nan)"
  else if f = infinity then "Float.infinity"
  else if f = neg_infinity then "Float.neg_infinity"
  else Printf.sprintf "(%h)" f

let ilit n = Printf.sprintf "(%d)" n

let funop_txt (op : Expr.unop) x =
  match op with
  | Exp -> "exp " ^ x
  | Log -> "log " ^ x
  | Sqrt -> "sqrt " ^ x
  | Rsqrt -> "1.0 /. sqrt " ^ x
  | Tanh -> "tanh " ^ x
  | Erf -> "erf_approx " ^ x
  | Recip -> "1.0 /. " ^ x
  | Floor -> "Float.floor " ^ x
  | Neg | Not | Abs -> invalid_arg "funop_txt"

let bname : Expr.binop -> string = function
  | Add -> "Add"
  | Sub -> "Sub"
  | Mul -> "Mul"
  | Div -> "Div"
  | Mod -> "Mod"
  | Min -> "Min"
  | Max -> "Max"
  | Eq -> "Eq"
  | Ne -> "Ne"
  | Lt -> "Lt"
  | Le -> "Le"
  | Gt -> "Gt"
  | Ge -> "Ge"
  | And -> "And"
  | Or -> "Or"

let emit_source (k : Kernel.t) : string =
  let sp = Printf.sprintf in
  (* names ever targeted by an Assign: same name-based scan as the closure
     compiler, so the two engines pick identical boxed/unboxed paths *)
  let assigned = Hashtbl.create 16 in
  let rec scan = function
    | Stmt.Assign { var; _ } -> Hashtbl.replace assigned var ()
    | Stmt.For { body; _ } -> List.iter scan body
    | Stmt.If { then_; else_; _ } ->
      List.iter scan then_;
      List.iter scan else_
    | _ -> ()
  in
  List.iter scan k.Kernel.body;
  let never_assigned v = not (Hashtbl.mem assigned v) in
  let ctr = ref 0 in
  let fresh pfx nm =
    incr ctr;
    sp "%s%d_%s" pfx !ctr (sanitize nm)
  in
  let tmp () =
    incr ctr;
    sp "t%d" !ctr
  in
  (* static analyses, mirroring [Compile]'s [static_int]/[static_float] *)
  let rec s_int env (e : Expr.t) =
    match e with
    | Int _ -> true
    | Float _ | Load _ -> false
    | Var x -> ( match List.assoc_opt x env.sv with Some (_, KInt) -> true | _ -> false)
    | Binop ((Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> true
    | Binop (_, l, r) -> s_int env l && s_int env r
    | Unop (Not, _) -> true
    | Unop ((Neg | Abs), x) -> s_int env x
    | Unop (_, _) -> false
    | Select (_, t, f) -> s_int env t && s_int env f
    | Cast (d, _) -> not (Dtype.is_float d)
  in
  let rec s_flt env (e : Expr.t) =
    match e with
    | Float _ -> true
    | Int _ | Load _ -> false
    | Var x -> ( match List.assoc_opt x env.sv with Some (_, KFloat) -> true | _ -> false)
    | Binop ((Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> false
    | Binop (_, l, r) -> s_flt env l || s_flt env r
    | Unop ((Exp | Log | Sqrt | Rsqrt | Tanh | Erf | Recip | Floor), _) -> true
    | Unop ((Neg | Abs), x) -> s_flt env x
    | Unop (Not, _) -> false
    | Select (_, t, f) -> s_flt env t && s_flt env f
    | Cast (d, _) -> Dtype.is_float d
  in
  let isf_txt = function Bstat true -> "true" | Bstat false -> "false" | Bdyn id -> id in
  (* expression generators, one per compilation mode of the closure engine
     ([comp] / [comp_iint] / [comp_int] / [comp_ffloat]), matching its match
     arms case for case. Binop operands are always let-sequenced left-first,
     fixing the evaluation order the closures get from their [let a = cl fr]
     bindings. *)
  let rec gen_v env (e : Expr.t) : string =
    match e with
    | Int n -> sp "(I %s)" (ilit n)
    | Float f -> sp "(F %s)" (flit f)
    | Var x -> (
      match List.assoc_opt x env.sv with
      | Some (id, KInt) -> sp "(I %s)" id
      | Some (id, KFloat) -> sp "(F %s)" id
      | Some (id, KVal) -> id
      | Some (id, KRef) -> sp "(!%s)" id
      | None -> sp "(err %S %S)" "unbound variable %s" x)
    | Load (b, i) -> (
      let ix = gen_int env i in
      match List.assoc_opt b env.bv with
      | Some (bid, isf) ->
        let t = tmp () and vv = tmp () in
        sp "(let %s : int = %s in let %s : float = buf_get %s %S %s in if %s then F %s else I (int_of_float %s))"
          t ix vv bid b t (isf_txt isf) vv vv
      | None -> sp "(let %s : int = %s in err %S %S)" (tmp ()) ix "unbound buffer %s" b)
    | Binop _ when s_int env e -> sp "(I %s)" (gen_iint env e)
    | Binop (op, l, r) ->
      let a = tmp () and b = tmp () in
      sp "(let %s : v = %s in let %s : v = %s in v_bin %s %s %s)" a (gen_v env l) b
        (gen_v env r) (bname op) a b
    | Unop (((Exp | Log | Sqrt | Rsqrt | Tanh | Erf | Recip | Floor) as op), x) ->
      sp "(F (%s))" (funop_txt op (gen_f env x))
    | Unop (Neg, x) ->
      let t = tmp () in
      sp "(match %s with I %s -> I (- %s) | F %s -> F (-. %s))" (gen_v env x) t t t t
    | Unop (Not, x) -> sp "(of_bool (not (vb %s)))" (gen_v env x)
    | Unop (Abs, x) ->
      let t = tmp () in
      sp "(match %s with I %s -> I (abs %s) | F %s -> F (Float.abs %s))" (gen_v env x) t t t t
    | Select (c, t, f) ->
      sp "(if vb %s then %s else %s)" (gen_v env c) (gen_v env t) (gen_v env f)
    | Cast (d, x) ->
      if Dtype.is_float d then sp "(F %s)" (gen_f env x) else sp "(I (vi %s))" (gen_v env x)
  and gen_iint env (e : Expr.t) : string =
    match e with
    | Int n -> ilit n
    | Var x -> (
      match List.assoc_opt x env.sv with
      | Some (id, KInt) -> id
      | Some (id, KFloat) -> sp "(int_of_float %s)" id
      | Some (id, KVal) -> sp "(vi %s)" id
      | Some (id, KRef) -> sp "(vi !%s)" id
      | None -> sp "(err %S %S)" "unbound variable %s" x)
    | Binop (op, l, r) when s_int env l && s_int env r ->
      let x = tmp () and y = tmp () in
      let body =
        match op with
        | Add -> sp "%s + %s" x y
        | Sub -> sp "%s - %s" x y
        | Mul -> sp "%s * %s" x y
        | Div -> sp "if %s = 0 then err %S else %s / %s" y "integer division by zero" x y
        | Mod -> sp "if %s = 0 then err %S else %s mod %s" y "integer modulo by zero" x y
        | Min -> sp "if %s <= %s then %s else %s" x y x y
        | Max -> sp "if %s >= %s then %s else %s" x y x y
        | Eq -> sp "if %s = %s then 1 else 0" x y
        | Ne -> sp "if %s <> %s then 1 else 0" x y
        | Lt -> sp "if %s < %s then 1 else 0" x y
        | Le -> sp "if %s <= %s then 1 else 0" x y
        | Gt -> sp "if %s > %s then 1 else 0" x y
        | Ge -> sp "if %s >= %s then 1 else 0" x y
        | And -> sp "if %s <> 0 && %s <> 0 then 1 else 0" x y
        | Or -> sp "if %s <> 0 || %s <> 0 then 1 else 0" x y
      in
      sp "(let %s : int = %s in let %s : int = %s in %s)" x (gen_iint env l) y (gen_iint env r)
        body
    | Binop (op, l, r) ->
      let a = tmp () and b = tmp () in
      sp "(let %s : v = %s in let %s : v = %s in vi (v_bin %s %s %s))" a (gen_v env l) b
        (gen_v env r) (bname op) a b
    | Unop (Neg, x) when s_int env x -> sp "(- %s)" (gen_iint env x)
    | Unop (Abs, x) when s_int env x -> sp "(abs %s)" (gen_iint env x)
    | Unop (Not, x) -> sp "(if vb %s then 0 else 1)" (gen_v env x)
    | Select (c, t, f) when s_int env t && s_int env f ->
      sp "(if vb %s then %s else %s)" (gen_v env c) (gen_iint env t) (gen_iint env f)
    | _ -> sp "(vi %s)" (gen_v env e)
  and gen_int env (e : Expr.t) : string =
    match e with
    | Int n -> ilit n
    | _ when s_int env e -> gen_iint env e
    | _ -> sp "(vi %s)" (gen_v env e)
  and gen_f env (e : Expr.t) : string =
    match e with
    | Int n -> flit (float_of_int n)
    | Float f -> flit f
    | Var x -> (
      match List.assoc_opt x env.sv with
      | Some (id, KFloat) -> id
      | Some (id, KInt) -> sp "(float_of_int %s)" id
      | Some (id, KVal) -> sp "(vf %s)" id
      | Some (id, KRef) -> sp "(vf !%s)" id
      | None -> sp "(err %S %S)" "unbound variable %s" x)
    | Load (b, i) -> (
      let ix = gen_int env i in
      match List.assoc_opt b env.bv with
      | Some (bid, isf) ->
        let t = tmp () and vv = tmp () in
        sp "(let %s : int = %s in let %s : float = buf_get %s %S %s in if %s then %s else float_of_int (int_of_float %s))"
          t ix vv bid b t (isf_txt isf) vv vv
      | None -> sp "(let %s : int = %s in err %S %S)" (tmp ()) ix "unbound buffer %s" b)
    | _ when s_int env e -> sp "(float_of_int %s)" (gen_iint env e)
    | Binop (((Add | Sub | Mul | Div | Mod | Min | Max) as op), l, r)
      when s_flt env l || s_flt env r ->
      let x = tmp () and y = tmp () in
      let body =
        match op with
        | Add -> sp "%s +. %s" x y
        | Sub -> sp "%s -. %s" x y
        | Mul -> sp "%s *. %s" x y
        | Div -> sp "%s /. %s" x y
        | Mod -> sp "Float.rem %s %s" x y
        | Min -> sp "Float.min %s %s" x y
        | Max -> sp "Float.max %s %s" x y
        | _ -> assert false
      in
      sp "(let %s : float = %s in let %s : float = %s in %s)" x (gen_f env l) y (gen_f env r)
        body
    | Unop (((Exp | Log | Sqrt | Rsqrt | Tanh | Erf | Recip | Floor) as op), x) ->
      sp "(%s)" (funop_txt op (gen_f env x))
    | Unop (Neg, x) when s_flt env x -> sp "(-. %s)" (gen_f env x)
    | Unop (Abs, x) when s_flt env x -> sp "(Float.abs %s)" (gen_f env x)
    | Select (c, t, f) when s_flt env t && s_flt env f ->
      sp "(if vb %s then %s else %s)" (gen_v env c) (gen_f env t) (gen_f env f)
    | _ -> sp "(vf %s)" (gen_v env e)
  in
  let barr env b =
    match List.assoc_opt b env.bv with
    | Some (id, _) -> id
    | None -> sp "(err %S %S : float array)" "unbound buffer %s" b
  in
  (* statement generation: every statement starts with [stp ()] (step count +
     fuel check), exactly like the closure engine's per-statement wrapper *)
  let rec gen_block env (stmts : Stmt.t list) : string =
    match stmts with [] -> "()" | st :: rest -> gen_stmt env st rest
  and gen_stmt env (st : Stmt.t) rest : string =
    let cont env = gen_block env rest in
    match st with
    | Stmt.Annot _ -> "stp ();\n" ^ cont env
    | Stmt.Let { var; value } ->
      if s_int env value && never_assigned var then
        let id = fresh "x" var in
        sp "stp (); let %s : int = %s in\n%s" id (gen_iint env value)
          (cont { env with sv = (var, (id, KInt)) :: env.sv })
      else if s_flt env value && never_assigned var then
        let id = fresh "x" var in
        sp "stp (); let %s : float = %s in\n%s" id (gen_f env value)
          (cont { env with sv = (var, (id, KFloat)) :: env.sv })
      else if never_assigned var then
        let id = fresh "x" var in
        sp "stp (); let %s : v = %s in\n%s" id (gen_v env value)
          (cont { env with sv = (var, (id, KVal)) :: env.sv })
      else
        let id = fresh "x" var in
        sp "stp (); let %s : v ref = ref %s in\n%s" id (gen_v env value)
          (cont { env with sv = (var, (id, KRef)) :: env.sv })
    | Stmt.Assign { var; value } -> (
      match List.assoc_opt var env.sv with
      | Some (id, KRef) -> sp "stp (); %s := %s;\n%s" id (gen_v env value) (cont env)
      | Some _ | None ->
        (* Some _ is unreachable (immutable kinds require [never_assigned]);
           keep the closure engine's unbound-assignment message for both *)
        sp "stp (); (err %S %S : unit);\n%s" "assignment to unbound variable %s" var (cont env))
    | Stmt.Store { buf; index; value } -> (
      match List.assoc_opt buf env.bv with
      | Some (bid, isf) ->
        let i = tmp () and x = tmp () in
        let trunc =
          match isf with
          | Bstat true -> ""
          | Bstat false -> sp "let %s : float = float_of_int (int_of_float %s) in " x x
          | Bdyn f ->
            sp "let %s : float = if %s then %s else float_of_int (int_of_float %s) in " x f x x
        in
        sp
          "stp (); (let %s : int = %s in let %s : float = %s in %sbuf_set %s %S %s %s; st_stores := !st_stores + 1; (if tally_on then tally %S 1); (if trace_on then trace %S %s %s); if !st_stores >= store_limit then halt0 ());\n%s"
          i (gen_int env index) x (gen_f env value) trunc bid buf i x buf buf i x (cont env)
      | None -> sp "stp (); (err %S %S : unit);\n%s" "unbound buffer %s" buf (cont env))
    | Stmt.Alloc { buf; dtype; size; _ } ->
      let bid = fresh "b" buf in
      sp "stp (); let %s : float array = Array.make %s 0.0 in\n%s" bid (ilit size)
        (cont { env with bv = (buf, (bid, Bstat (Dtype.is_float dtype))) :: env.bv })
    | Stmt.If { cond; then_; else_ } ->
      sp "stp (); (if vb %s then (\n%s) else (\n%s));\n%s" (gen_v env cond)
        (gen_block env then_) (gen_block env else_) (cont env)
    | Stmt.Memcpy { dst; src; len } ->
      let d = tmp () and s = tmp () and doff = tmp () and soff = tmp () in
      let n = tmp () and kk = tmp () in
      sp
        "stp (); (let %s : float array = %s in let %s : float array = %s in let %s : int = %s in let %s : int = %s in let %s : int = %s in if %s < 0 then err %S %s; for %s = 0 to %s - 1 do buf_set %s %S (%s + %s) (buf_get %s %S (%s + %s)) done; st_mem := !st_mem + %s; (if tally_on then tally %S %s));\n%s"
        d (barr env dst.buf) s (barr env src.buf) doff (gen_int env dst.offset) soff
        (gen_int env src.offset) n (gen_int env len) n "memcpy: negative length %d" n kk n d
        dst.buf doff kk s src.buf soff kk n dst.buf n (cont env)
    | Stmt.Intrinsic i ->
      let name = Intrin.op_name i.op in
      let before = tmp () and d = tmp () and doff = tmp () in
      let srcs = List.map (fun (r : Intrin.buf_ref) -> (r, tmp (), tmp ())) i.srcs in
      let params = List.map (fun p -> (p, tmp ())) i.params in
      let b = Buffer.create 256 in
      Buffer.add_string b (sp "stp (); (let %s : int = !st_intr in " before);
      Buffer.add_string b (sp "let %s : float array = %s in " d (barr env i.dst.buf));
      Buffer.add_string b (sp "let %s : int = %s in " doff (gen_int env i.dst.offset));
      List.iter
        (fun ((r : Intrin.buf_ref), t, o) ->
          Buffer.add_string b (sp "let %s : float array = %s in " t (barr env r.buf));
          Buffer.add_string b (sp "let %s : int = %s in " o (gen_int env r.offset)))
        srcs;
      List.iter
        (fun (p, id) -> Buffer.add_string b (sp "let %s : int = %s in " id (gen_int env p)))
        params;
      let srcs_arr =
        match srcs with
        | [] -> "[||]"
        | _ ->
          "[| "
          ^ String.concat "; "
              (List.map (fun ((r : Intrin.buf_ref), t, o) -> sp "(%s, %S, %s)" t r.buf o) srcs)
          ^ " |]"
      in
      let params_arr =
        match params with
        | [] -> "[||]"
        | _ -> "[| " ^ String.concat "; " (List.map snd params) ^ " |]"
      in
      let fparam =
        match i.params with
        | _ :: e :: _ -> sp "(fun () -> %s)" (gen_f env e)
        | _ -> sp "(fun () -> err %S %S)" "%s: no scalar" name
      in
      Buffer.add_string b
        (sp
           "intrinsic_exec st_intr ~name:%S ~op:%s ~dst_t:%s ~dname:%S ~dst_off:%s ~srcs:%s ~params:%s ~fparam:%s; "
           name (iop_ctor i.op) d i.dst.buf doff srcs_arr params_arr fparam);
      Buffer.add_string b (sp "(if tally_on then tally %S (!st_intr - %s)));\n" i.dst.buf before);
      Buffer.contents b ^ cont env
    | Stmt.Sync ->
      sp
        "stp (); st_bar := !st_bar + 1; (try Effect.perform Barrier with Effect.Unhandled _ -> ());\n%s"
        (cont env)
    | Stmt.For { var; lo; extent; kind = Stmt.Parallel ax; body } when Compile.is_thread_axis ax
      ->
      (* maximal immediately-nested thread-parallel chain: one fiber group so
         a barrier synchronizes the whole thread block, like the closure
         engine's chained spawn *)
      let rec chain acc body =
        match body with
        | [ Stmt.For { var; lo; extent; kind = Stmt.Parallel ax; body = inner } ]
          when Compile.is_thread_axis ax ->
          chain ((var, lo, extent) :: acc) inner
        | _ -> (List.rev acc, body)
      in
      let loops, innermost = chain [ (var, lo, extent) ] body in
      let rec emit_chain env = function
        | [] ->
          (* fiber body: every mutable scalar in scope is privatized at fiber
             entry, the analogue of the closure engine's per-fiber frame copy
             (no mutation can happen between spawn and first run, so the
             snapshot is taken at the same observable point) *)
          let rebinds =
            List.filter_map (fun (_, (id, kd)) -> if kd = KRef then Some id else None) env.sv
            |> List.sort_uniq compare
            |> List.map (fun id -> sp "let %s = ref !%s in " id id)
            |> String.concat ""
          in
          sp "[ (fun () -> %s(\n%s)) ]" rebinds (gen_block env innermost)
        | (v, lo_e, ext_e) :: rest ->
          let lo_i = tmp () and ext_i = tmp () and q = tmp () in
          let bind, env' =
            if never_assigned v then
              let id = fresh "x" v in
              ( sp "let %s : int = %s + %s in " id lo_i q,
                { env with sv = (v, (id, KInt)) :: env.sv } )
            else
              let id = fresh "x" v in
              ( sp "let %s : v ref = ref (I (%s + %s)) in " id lo_i q,
                { env with sv = (v, (id, KRef)) :: env.sv } )
          in
          sp
            "let %s : int = %s in let %s : int = %s in if %s < 0 then err %S %S; List.concat (List.init %s (fun %s -> %s\n%s))"
            lo_i (gen_int env lo_e) ext_i (gen_int env ext_e) ext_i "negative loop extent in %s"
            v ext_i q bind (emit_chain env' rest)
      in
      sp "stp (); run_fiber_group (\n%s);\n%s" (emit_chain env loops) (cont env)
    | Stmt.For { var; lo; extent; body; _ } ->
      let lo_i = tmp () and ext_i = tmp () in
      if never_assigned var then
        let id = fresh "x" var in
        sp
          "stp (); (let %s : int = %s in let %s : int = %s in if %s < 0 then err %S %S; for %s = %s to %s + %s - 1 do\n%s done);\n%s"
          lo_i (gen_int env lo) ext_i (gen_int env extent) ext_i "negative loop extent in %s"
          var id lo_i lo_i ext_i
          (gen_block { env with sv = (var, (id, KInt)) :: env.sv } body)
          (cont env)
      else
        let q = tmp () and id = fresh "x" var in
        sp
          "stp (); (let %s : int = %s in let %s : int = %s in if %s < 0 then err %S %S; for %s = %s to %s + %s - 1 do let %s : v ref = ref (I %s) in\n%s done);\n%s"
          lo_i (gen_int env lo) ext_i (gen_int env extent) ext_i "negative loop extent in %s"
          var q lo_i lo_i ext_i id q
          (gen_block { env with sv = (var, (id, KRef)) :: env.sv } body)
          (cont env)
  in
  (* parameter bindings, in declaration order like [Compile.bind_args]; the
     host fills s_int/s_flt/s_isf (resp. bufs/buf_isf) in the same order *)
  let param_lets = Buffer.create 128 in
  let env0 = ref { sv = []; bv = [] } in
  let bi = ref 0 and si = ref 0 in
  List.iter
    (fun (p : Kernel.param) ->
      if p.is_buffer then begin
        let id = fresh "b" p.name in
        Buffer.add_string param_lets
          (sp "        let %s : float array = a.bufs.(%d) in\n        let %sf : bool = a.buf_isf.(%d) in\n"
             id !bi id !bi);
        env0 := { !env0 with bv = (p.name, (id, Bdyn (id ^ "f"))) :: !env0.bv };
        incr bi
      end
      else begin
        let id = fresh "x" p.name in
        let init =
          sp "(if a.s_isf.(%d) then F a.s_flt.(%d) else I a.s_int.(%d))" !si !si !si
        in
        if never_assigned p.name then begin
          Buffer.add_string param_lets (sp "        let %s : v = %s in\n" id init);
          env0 := { !env0 with sv = (p.name, (id, KVal)) :: !env0.sv }
        end
        else begin
          Buffer.add_string param_lets (sp "        let %s : v ref = ref %s in\n" id init);
          env0 := { !env0 with sv = (p.name, (id, KRef)) :: !env0.sv }
        end;
        incr si
      end)
    k.Kernel.params;
  let body = gen_block !env0 k.Kernel.body in
  String.concat ""
    [ sp "(* generated by the xpiler native backend (%s)\n   kernel: %s *)\n\n" codegen_version
        k.Kernel.name;
      prelude;
      "let run (a : abi) =\n";
      "  let st_steps = ref 0 in\n";
      "  let st_stores = ref 0 in\n";
      "  let st_intr = ref 0 in\n";
      "  let st_mem = ref 0 in\n";
      "  let st_bar = ref 0 in\n";
      "  let fuel = a.fuel in\n";
      "  let store_limit = a.store_limit in\n";
      "  let halt0 = a.halt0 in\n";
      "  let tally_on = a.tally_on in\n";
      "  let tally = a.tally in\n";
      "  let trace_on = a.trace_on in\n";
      "  let trace = a.trace in\n";
      "  let stp () =\n";
      "    let s = !st_steps + 1 in\n";
      "    st_steps := s;\n";
      "    if s > fuel then err \"fuel exhausted (non-terminating program?)\"\n";
      "  in\n";
      "  Fun.protect\n";
      "    ~finally:(fun () ->\n";
      "      a.counters.(0) <- !st_steps;\n";
      "      a.counters.(1) <- !st_stores;\n";
      "      a.counters.(2) <- !st_intr;\n";
      "      a.counters.(3) <- !st_mem;\n";
      "      a.counters.(4) <- !st_bar)\n";
      "    (fun () ->\n";
      "      try\n";
      Buffer.contents param_lets;
      "        (\n";
      body;
      "        )\n";
      "      with Fail m -> a.fail0 m; assert false)\n";
      "\n";
      "let () = Callback.register \"xpiler.native.run\" (Obj.repr run)\n"
    ]

(* ---- compile, load, cache ----------------------------------------------- *)

let lock = Mutex.create ()
let memo : (string, (abi -> unit) option) Hashtbl.t = Hashtbl.create 32
let memo_limit = 1024
let warned = ref false

let reset_memo_for_testing () =
  Mutex.protect lock (fun () ->
      Hashtbl.reset memo;
      warned := false)

let log_fallback_once what msg =
  if not !warned then begin
    warned := true;
    Printf.eprintf "xpiler: native backend falling back to the closure engine (%s): %s\n%!" what
      msg
  end

let read_capped path cap =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = min cap (in_channel_length ic) in
        really_input_string ic n)
  with _ -> ""

let rm_rf_flat dir =
  if Sys.file_exists dir then begin
    (try Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ()) (Sys.readdir dir)
     with Sys_error _ -> ());
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let timed hist f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> Metrics.observe hist (Unix.gettimeofday () -. t0)) f

(* mtime is the LRU clock: refresh on every disk hit *)
let touch path = try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ()

let evict_if_needed dir =
  let limit = cache_limit_bytes () in
  let entries =
    match Sys.readdir dir with
    | exception Sys_error _ -> []
    | files ->
      Array.to_list files
      |> List.filter (fun f -> Filename.check_suffix f ".cmxs")
      |> List.filter_map (fun f ->
             let p = Filename.concat dir f in
             match Unix.stat p with
             | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } -> Some (p, st_mtime, st_size)
             | _ -> None
             | exception Unix.Unix_error _ -> None)
  in
  let total = List.fold_left (fun a (_, _, s) -> a + s) 0 entries in
  if total > limit then begin
    let by_age = List.sort (fun (_, m1, _) (_, m2, _) -> compare m1 m2) entries in
    let rec drop total = function
      | (p, _, s) :: rest when total > limit ->
        (try Sys.remove p with Sys_error _ -> ());
        (try Sys.remove (Filename.chop_suffix p ".cmxs" ^ ".ml") with Sys_error _ -> ());
        Metrics.inc m_evictions;
        drop (total - s) rest
      | _ -> ()
    in
    drop total by_age
  end

(* Dynlink + entry retrieval. [loadfile_private] (not [loadfile]) so the same
   unit name can be loaded again within one process — required for the
   cold-vs-warm cache tests, and harmless otherwise since each artifact's
   unit name embeds its content key. Caller holds [lock] (the named-value
   slot is a process-wide rendezvous). *)
let load_entry path : ((abi -> unit), string) result =
  timed h_dynlink @@ fun () ->
  Prof.span "native.dynlink" @@ fun () ->
  try
    Dynlink.loadfile_private path;
    match named_value "xpiler.native.run" with
    | Some o -> Ok (Obj.magic o : abi -> unit)
    | None -> Error "plugin registered no entry point"
  with
  | Dynlink.Error e -> Error (Dynlink.error_message e)
  | exn -> Error (Printexc.to_string exn)

let compile_artifact k key dir path : (unit, string) result =
  let src = timed h_codegen (fun () -> Prof.span "native.codegen" (fun () -> emit_source k)) in
  let unit_name = "xpiler_native_" ^ key in
  let bdir = Filename.concat dir (Printf.sprintf "build.%d.%s" (Unix.getpid ()) key) in
  mkdir_p bdir;
  let ml = Filename.concat bdir (unit_name ^ ".ml") in
  let oc = open_out_bin ml in
  output_string oc src;
  close_out oc;
  let out = Filename.concat bdir (unit_name ^ ".cmxs") in
  let logf = Filename.concat bdir "log" in
  let cmd =
    Printf.sprintf "ocamlfind ocamlopt -shared -w -a -o %s %s > %s 2>&1" (Filename.quote out)
      (Filename.quote ml) (Filename.quote logf)
  in
  let rc = timed h_compile (fun () -> Prof.span "native.compile" (fun () -> Sys.command cmd)) in
  if rc <> 0 then begin
    let log = read_capped logf 2000 in
    rm_rf_flat bdir;
    Error (Printf.sprintf "ocamlopt exited with %d: %s" rc (String.trim log))
  end
  else begin
    (* keep the source next to the artifact for debuggability; rename is
       atomic within the cache filesystem so concurrent processes never see
       a truncated .cmxs *)
    (try Sys.rename ml (Filename.concat dir (key ^ ".ml")) with Sys_error _ -> ());
    match Sys.rename out path with
    | () ->
      rm_rf_flat bdir;
      Ok ()
    | exception Sys_error e ->
      rm_rf_flat bdir;
      Error ("installing artifact failed: " ^ e)
  end

let get_entry (k : Kernel.t) : (abi -> unit) option =
  if not (available ()) then begin
    log_fallback_once k.Kernel.name "ocamlfind ocamlopt unavailable or bytecode host";
    None
  end
  else
    let key = kernel_key k in
    Mutex.protect lock @@ fun () ->
    match Hashtbl.find_opt memo key with
    | Some entry ->
      Metrics.inc m_memo_hit;
      entry
    | None ->
      let dir = cache_dir () in
      mkdir_p dir;
      let path = Filename.concat dir (key ^ ".cmxs") in
      let from_disk =
        if Sys.file_exists path then begin
          match load_entry path with
          | Ok fn ->
            touch path;
            Metrics.inc m_disk_hit;
            Some fn
          | Error _ ->
            (* corrupted or stale artifact: drop it and recompile (a miss) *)
            Metrics.inc m_corrupt;
            (try Sys.remove path with Sys_error _ -> ());
            None
        end
        else None
      in
      let entry =
        match from_disk with
        | Some fn -> Some fn
        | None -> (
          Metrics.inc m_miss;
          match compile_artifact k key dir path with
          | Error msg ->
            log_fallback_once k.Kernel.name msg;
            None
          | Ok () -> (
            match load_entry path with
            | Ok fn ->
              evict_if_needed dir;
              Some fn
            | Error msg ->
              log_fallback_once k.Kernel.name msg;
              None))
      in
      if Hashtbl.length memo >= memo_limit then Hashtbl.reset memo;
      Hashtbl.replace memo key entry;
      entry

(* ---- cache maintenance (the [xpiler cache] subcommand) ------------------ *)

type cache_info = { dir : string; files : int; bytes : int; limit_bytes : int }

let cache_info () =
  let dir = cache_dir () in
  let files, bytes =
    match Sys.readdir dir with
    | exception Sys_error _ -> (0, 0)
    | fs ->
      Array.fold_left
        (fun (n, b) f ->
          if Filename.check_suffix f ".cmxs" || Filename.check_suffix f ".ml" then begin
            match Unix.stat (Filename.concat dir f) with
            | { Unix.st_kind = Unix.S_REG; st_size; _ } -> (n + 1, b + st_size)
            | _ -> (n, b)
            | exception Unix.Unix_error _ -> (n, b)
          end
          else (n, b))
        (0, 0) fs
  in
  { dir; files; bytes; limit_bytes = cache_limit_bytes () }

let cache_clear () =
  Mutex.protect lock @@ fun () ->
  let dir = cache_dir () in
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | fs ->
    Array.fold_left
      (fun n f ->
        let p = Filename.concat dir f in
        if Filename.check_suffix f ".cmxs" || Filename.check_suffix f ".ml" then begin
          match Sys.remove p with () -> n + 1 | exception Sys_error _ -> n
        end
        else if String.length f >= 6 && String.sub f 0 6 = "build." then begin
          rm_rf_flat p;
          n
        end
        else n)
      0 fs

(* ---- execution ---------------------------------------------------------- *)

let run ?(fuel = 200_000_000) ?trace (k : Kernel.t) (args : (string * Compile.arg) list) :
    Compile.stats option =
  match get_entry k with
    | None ->
      Metrics.inc m_fallbacks;
      None
    | Some entry ->
      (* bind arguments in parameter order with [Compile.bind_args]'s exact
         error messages, before any profiling hook engages (same as the
         closure engine, whose bind happens before its Fun.protect) *)
      let bufs = ref [] and b_isf = ref [] in
      let s_int = ref [] and s_flt = ref [] and s_isf = ref [] in
      List.iter
        (fun (p : Kernel.param) ->
          match List.assoc_opt p.name args with
          | None -> Compile.err "missing argument for parameter %s" p.name
          | Some (Compile.Buf t) ->
            if p.is_buffer then begin
              bufs := t.Tensor.data :: !bufs;
              b_isf := Dtype.is_float t.Tensor.dtype :: !b_isf
            end
            else Compile.err "parameter %s is scalar but got a buffer" p.name
          | Some (Compile.Scalar_int n) ->
            if p.is_buffer then Compile.err "parameter %s is a buffer but got a scalar" p.name
            else begin
              s_int := n :: !s_int;
              s_flt := 0.0 :: !s_flt;
              s_isf := false :: !s_isf
            end
          | Some (Compile.Scalar_float f) ->
            if p.is_buffer then Compile.err "parameter %s is a buffer but got a scalar" p.name
            else begin
              s_int := 0 :: !s_int;
              s_flt := f :: !s_flt;
              s_isf := true :: !s_isf
            end)
        k.Kernel.params;
      let stats = Compile.fresh_stats () in
      let traffic = if Trace.enabled () then Some (Hashtbl.create 8) else None in
      let counters = Array.make 5 0 in
      let abi =
        { bufs = Array.of_list (List.rev !bufs);
          buf_isf = Array.of_list (List.rev !b_isf);
          s_int = Array.of_list (List.rev !s_int);
          s_flt = Array.of_list (List.rev !s_flt);
          s_isf = Array.of_list (List.rev !s_isf);
          fuel;
          store_limit = max_int;
          counters;
          fail0 = (fun m -> raise (Compile.Runtime_error m));
          halt0 = (fun () -> raise Compile.Halt);
          trace_on = trace <> None;
          trace = (match trace with Some f -> f | None -> fun _ _ _ -> ());
          tally_on = traffic <> None;
          tally =
            (match traffic with
            | Some tbl ->
              fun buf n ->
                Hashtbl.replace tbl buf (n + Option.value ~default:0 (Hashtbl.find_opt tbl buf))
            | None -> fun _ _ -> ())
        }
      in
      Fun.protect
        ~finally:(fun () ->
          stats.steps <- counters.(0);
          stats.stores <- counters.(1);
          stats.intrinsic_elems <- counters.(2);
          stats.memcpy_elems <- counters.(3);
          stats.barriers <- counters.(4);
          Compile.profile stats traffic)
        (fun () -> try entry abi with Compile.Halt -> ());
      Some stats
