(** Native kernel backend: OCaml-source codegen + out-of-process [ocamlopt]
    + [Dynlink], with an on-disk content-addressed artifact cache.

    A kernel is lowered to a self-contained OCaml compilation unit (flat
    loops over unboxed [float array]s, intrinsics specialized in a private
    runtime, barriers compiled to a private copy of the shared fiber
    scheduler), compiled with [ocamlfind ocamlopt -shared] and loaded with
    [Dynlink.loadfile_private]. Artifacts live under [XPILER_CACHE_DIR]
    (default [~/.cache/xpiler]) keyed by {!Kernel.cache_key} salted with
    {!codegen_version}; an in-process memo sits in front of the disk cache.

    The backend is best-effort by contract: {!run} returns [None] whenever it
    cannot produce a native execution (toolchain absent, bytecode host,
    compile or dynlink failure), and the caller falls back to the closure
    engine. Kernel-level runtime errors are NOT a fallback — they raise
    {!Compile.Runtime_error} with byte-identical messages, and statistics,
    tracing and profiling behave exactly as in {!Compile.run}. *)

open Xpiler_ir

val codegen_version : string
(** Salt mixed into the artifact cache key; bump on any codegen change. *)

val enabled : unit -> bool
(** Whether {!Interp.run} should try the native backend. Initialized from
    [XPILER_NATIVE] (["1"]/["true"]/["on"]/["yes"]). Only gates the
    [Interp] dispatch — calling {!run} directly always attempts native
    execution. *)

val set_enabled : bool -> unit

val available : unit -> bool
(** Native dynlink supported and [ocamlfind ocamlopt] answers (probed once,
    lazily). Independent of {!enabled}. *)

val set_toolchain_override : bool option -> unit
(** Test hook: force {!available} to a fixed verdict ([None] restores the
    real probe). [Some false] exercises the fallback path deterministically. *)

val kernel_key : Kernel.t -> string
(** [Kernel.cache_key ~salt:codegen_version] — the artifact file stem. *)

val emit_source : Kernel.t -> string
(** The generated plugin source (deterministic for a given kernel). *)

val cache_dir : unit -> string
(** Resolved per call so tests can repoint [XPILER_CACHE_DIR]. *)

val set_cache_limit_bytes : int option -> unit
(** Test hook overriding [XPILER_CACHE_LIMIT_MB] (default 512 MiB). *)

type cache_info = { dir : string; files : int; bytes : int; limit_bytes : int }

val cache_info : unit -> cache_info
val cache_clear : unit -> int
(** Remove every cached artifact (and kept sources); returns files removed. *)

val reset_memo_for_testing : unit -> unit
(** Drop the in-process entry memo (loaded plugin code itself cannot be
    unloaded) and re-arm the log-once fallback warning. *)

val run :
  ?fuel:int ->
  ?trace:(string -> int -> float -> unit) ->
  Kernel.t ->
  (string * Compile.arg) list ->
  Compile.stats option
(** Same contract as {!Compile.run} when it returns [Some]; [None] means
    "no native execution happened" (toolchain absent or compile/dynlink
    infrastructure failure — counted in [xpiler_native_fallbacks_total] and
    logged once). Kernel runtime errors are never a fallback. *)
