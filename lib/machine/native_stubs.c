/* Host side of the native-plugin handshake: a dynlinked kernel registers its
   entry closure under a well-known name with Callback.register (the only
   channel a fully self-contained plugin shares with its host), and the host
   retrieves it here via caml_named_value, which the stdlib does not expose
   to OCaml code. Returns [None] when nothing is registered. */

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/alloc.h>
#include <caml/callback.h>

CAMLprim value xpiler_native_named_value(value name)
{
  CAMLparam1(name);
  CAMLlocal1(some);
  const value *v = caml_named_value(String_val(name));
  if (v == NULL) CAMLreturn(Val_int(0)); /* None */
  some = caml_alloc_small(1, 0);
  Field(some, 0) = *v;
  CAMLreturn(some);
}
