open Xpiler_ir

(** Analytical roofline cost model.

    Converts a scheduled kernel into an execution-time estimate on a
    platform. The model walks the loop nest with symbolic trip counts and
    accumulates: scalar arithmetic, vector-intrinsic elements, tensor-unit
    MACs, off-chip traffic (direct global loads/stores plus global-side
    memcpys) and on-chip traffic. Time is compute vs. memory roofline with
    an overlap bonus for software-pipelined loops.

    The model deliberately responds to exactly the schedule features the
    paper's transformation passes manipulate — parallel binding (occupancy),
    caching (traffic reduction), tensorization (tensor vs. scalar pipes),
    pipelining (overlap), tiling (per-iteration footprint) — so pass/knob
    choices change the estimate the way they change real execution time. *)

type features = {
  scalar_flops : float;
  vector_elems : float;
  tensor_macs : float;
  offchip_bytes : float;
  onchip_bytes : float;
  blocks : int;  (** block-level parallel iterations (grid / tasks) *)
  threads : int;  (** thread-level parallel iterations per block *)
  pipelined : bool;
  launches : int;
}

type estimate = {
  seconds : float;
  compute_seconds : float;
  memory_seconds : float;
  features : features;
}

val extract_features : Kernel.t -> shapes:(string * int) list -> features
(** [shapes] binds the kernel's scalar parameters (problem sizes). *)

val estimate : Platform.t -> Kernel.t -> shapes:(string * int) list -> estimate

val throughput : Platform.t -> Kernel.t -> shapes:(string * int) list -> float
(** The auto-tuner's reward (Equations 3-4 of the paper): inverse modelled
    execution time, scaled to an ops/s-like magnitude. *)

val throughput_bound : Platform.t -> Kernel.t -> shapes:(string * int) list -> float
(** Cheap admissible upper bound on {!throughput}: a structural walk that
    skips the per-expression flop and load-traffic folds (the dominant cost
    of {!extract_features}), under-counting work with the same rates and
    occupancy. Guaranteed [throughput_bound p k >= throughput p k] on every
    kernel (fuzzed), which makes branch-and-bound pruning on it lossless.
    Emits no trace events, so pruning stays observably silent. *)
