open Xpiler_ir
(** Reference interpreter for tensor-program kernels.

    Executes a kernel with full numerical semantics. SIMT thread groups
    (threadIdx.* / coreId parallel loops) run as cooperating fibers built on
    OCaml effect handlers: all fibers of a group advance to the next [Sync]
    barrier before any continues, so cooperative shared-memory tiling
    executes exactly as on hardware. Within a round, fibers run in *reverse*
    thread order, which deterministically exposes missing-barrier races as
    stale reads instead of letting in-order execution hide them.

    Block-level axes (blockIdx.*, taskId, clusterId) carry no barrier on real
    hardware and run as ordinary sequential loops.

    Outcomes map onto the paper's metrics: raising [Runtime_error] (out of
    bounds, unbound name, fuel exhausted, division by zero) means the
    translated kernel fails its unit test.

    [run] and [run_prefix] execute through {!Compile}: the kernel is lowered
    once into OCaml closures over slot-indexed frames (memoized on the
    kernel's structural hash) and then executed without walking the statement
    tree. When {!Native.enabled} is on, [run] first tries the native backend
    (OCaml-source codegen + [Dynlink], artifacts cached on disk) and falls
    back to the closure engine whenever it returns [None]. {!run_tree} keeps
    the direct tree-walker; the differential property in [test/test_fuzz.ml]
    holds all engines to identical outputs, stats and error messages. *)

exception Runtime_error of string

type arg = Compile.arg = Buf of Tensor.t | Scalar_int of int | Scalar_float of float

type stats = Compile.stats = {
  mutable steps : int;  (** executed statements *)
  mutable stores : int;
  mutable intrinsic_elems : int;  (** elements processed by intrinsics *)
  mutable memcpy_elems : int;
  mutable barriers : int;
}

val run :
  ?fuel:int ->
  ?trace:(string -> int -> float -> unit) ->
  Kernel.t ->
  (string * arg) list ->
  stats
(** [run kernel args] executes the kernel, mutating the [Buf] arguments in
    place. [args] must bind every kernel parameter. [trace], when given, is
    called as [trace buf index value] on every scalar store (not on bulk
    memcpy/intrinsic writes) — bug localization uses it as its "insert print
    statements" probe. [fuel] bounds executed statements (default 200M). *)

val run_prefix :
  ?fuel:int -> Kernel.t -> stop_after:int -> (string * arg) list -> stats
(** Execute only the first [stop_after] store operations, then halt cleanly.
    Used by bug localization's binary search over program points. *)

val run_tree :
  ?fuel:int ->
  ?trace:(string -> int -> float -> unit) ->
  Kernel.t ->
  (string * arg) list ->
  stats
(** The tree-walking reference engine, same contract as {!run}. Kept as the
    baseline for differential testing and for the evaluation-engine
    benchmark; not memoized. *)
