open Xpiler_ir

type features = {
  scalar_flops : float;
  vector_elems : float;
  tensor_macs : float;
  offchip_bytes : float;
  onchip_bytes : float;
  blocks : int;
  threads : int;
  pipelined : bool;
  launches : int;
}

type estimate = {
  seconds : float;
  compute_seconds : float;
  memory_seconds : float;
  features : features;
}

type acc = {
  mutable f_scalar : float;
  mutable f_vector : float;
  mutable f_tensor : float;
  mutable b_off : float;
  mutable b_on : float;
  mutable blocks : int;
  mutable threads : int;
  mutable pipelined : bool;
}

let is_offchip = function Scope.Global | Scope.Host -> true | _ -> false

(* count arithmetic operators in a value expression *)
let rec flop_count (e : Expr.t) =
  match e with
  | Int _ | Float _ | Var _ -> 0.0
  | Load (_, i) -> flop_count i
  | Binop (_, l, r) -> 1.0 +. flop_count l +. flop_count r
  | Unop ((Exp | Log | Sqrt | Rsqrt | Tanh | Erf | Recip), x) -> 8.0 +. flop_count x
  | Unop (_, x) -> 1.0 +. flop_count x
  | Select (c, t, f) -> 1.0 +. flop_count c +. flop_count t +. flop_count f
  | Cast (_, x) -> flop_count x

(* bytes of off-chip / on-chip traffic implied by the loads in [e] *)
let load_bytes scope_of (e : Expr.t) =
  Expr.fold
    (fun (off, on) e ->
      match e with
      | Expr.Load (b, _) ->
        let sz =
          match scope_of b with
          | Some (s, dt) -> (is_offchip s, float_of_int (Dtype.size_in_bytes dt))
          | None -> (true, 4.0)
        in
        (match sz with
        | true, bytes -> (off +. bytes, on)
        | false, bytes -> (off, on +. bytes))
      | _ -> (off, on))
    (0.0, 0.0) e

let extract_features (k : Kernel.t) ~shapes =
  let acc =
    { f_scalar = 0.0; f_vector = 0.0; f_tensor = 0.0; b_off = 0.0; b_on = 0.0;
      blocks = 1; threads = 1; pipelined = false }
  in
  (* buffer scope/dtype environment *)
  let buf_info = Hashtbl.create 16 in
  List.iter
    (fun (p : Kernel.param) ->
      if p.is_buffer then Hashtbl.replace buf_info p.name (Scope.Global, p.dtype))
    k.Kernel.params;
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Alloc r -> Hashtbl.replace buf_info r.buf (r.scope, r.dtype)
      | _ -> ())
    k.Kernel.body;
  let scope_of b = Hashtbl.find_opt buf_info b in
  (* integer environment for trip counts *)
  let env = Hashtbl.create 16 in
  List.iter (fun (n, v) -> Hashtbl.replace env n v) shapes;
  let eval_opt e =
    try Some (Expr.eval_int (fun x -> Hashtbl.find env x) e) with _ -> None
  in
  let extent_of e = match eval_opt e with Some n -> max n 0 | None -> 8 in
  let byte_size b = match scope_of b with Some (_, dt) -> float_of_int (Dtype.size_in_bytes dt) | None -> 4.0 in
  let charge_loads trips e =
    let off, on = load_bytes scope_of e in
    acc.b_off <- acc.b_off +. (trips *. off);
    acc.b_on <- acc.b_on +. (trips *. on)
  in
  let rec walk trips block =
    List.iter
      (fun stmt ->
        match stmt with
        | Stmt.For r ->
          let n = extent_of r.extent in
          (match r.kind with
          | Stmt.Parallel (Axis.Block_x | Axis.Block_y | Axis.Block_z | Axis.Task_id | Axis.Cluster_id) ->
            acc.blocks <- acc.blocks * max n 1
          | Stmt.Parallel (Axis.Thread_x | Axis.Thread_y | Axis.Thread_z | Axis.Core_id) ->
            acc.threads <- acc.threads * max n 1
          | Stmt.Pipelined -> acc.pipelined <- true
          | Stmt.Serial | Stmt.Unrolled | Stmt.Vectorized -> ());
          (* loop overhead: one integer op per iteration *)
          acc.f_scalar <- acc.f_scalar +. (trips *. float_of_int n *. 0.25);
          walk (trips *. float_of_int n) r.body
        | Stmt.Let { value; _ } | Stmt.Assign { value; _ } ->
          acc.f_scalar <- acc.f_scalar +. (trips *. flop_count value);
          charge_loads trips value
        | Stmt.Store r ->
          acc.f_scalar <- acc.f_scalar +. (trips *. flop_count r.value);
          charge_loads trips r.value;
          let bytes = byte_size r.buf in
          (match scope_of r.buf with
          | Some (s, _) when is_offchip s -> acc.b_off <- acc.b_off +. (trips *. bytes)
          | _ -> acc.b_on <- acc.b_on +. (trips *. bytes))
        | Stmt.If r ->
          charge_loads trips r.cond;
          walk trips r.then_;
          walk (trips *. 0.25) r.else_
        | Stmt.Memcpy r ->
          let n = float_of_int (extent_of r.len) in
          let offchip buf =
            match scope_of buf with Some (s, _) -> is_offchip s | None -> true
          in
          let charge buf =
            let total = trips *. n *. byte_size buf in
            if offchip buf then acc.b_off <- acc.b_off +. total
            else acc.b_on <- acc.b_on +. total
          in
          charge r.dst.buf;
          charge r.src.buf
        | Stmt.Intrinsic i ->
          let p n = match List.nth_opt i.params n with Some e -> float_of_int (extent_of e) | None -> 1.0 in
          (match i.op with
          | Intrin.Mma | Intrin.Mlp -> acc.f_tensor <- acc.f_tensor +. (trips *. p 0 *. p 1 *. p 2)
          | Intrin.Conv2d ->
            acc.f_tensor <- acc.f_tensor +. (trips *. p 0 *. p 1 *. p 2 *. p 3 *. p 4 *. p 5)
          | Intrin.Dp4a -> acc.f_tensor <- acc.f_tensor +. (trips *. p 0)
          | _ -> acc.f_vector <- acc.f_vector +. (trips *. p 0));
          (* intrinsic operands stream through on-chip memory *)
          acc.b_on <- acc.b_on +. (trips *. p 0 *. 4.0)
        | Stmt.Sync -> acc.f_scalar <- acc.f_scalar +. (trips *. 2.0)
        | Stmt.Alloc _ | Stmt.Annot _ -> ())
      block
  in
  walk 1.0 k.Kernel.body;
  { scalar_flops = acc.f_scalar;
    vector_elems = acc.f_vector;
    tensor_macs = acc.f_tensor;
    offchip_bytes = acc.b_off;
    onchip_bytes = acc.b_on;
    blocks = acc.blocks;
    threads = acc.threads;
    pipelined = acc.pipelined;
    launches = 1
  }

let estimate (p : Platform.t) k ~shapes =
  Xpiler_obs.Trace.count "costmodel.evals";
  let f = extract_features k ~shapes in
  let c = p.Platform.cost in
  let clock = c.clock_ghz *. 1e9 in
  (* effective parallel resources *)
  let blocks = max f.blocks 1 and threads = max f.threads 1 in
  let cores_used, occupancy =
    match p.Platform.id with
    | Platform.Cuda | Platform.Hip ->
      let cores = min c.num_cores blocks in
      let occ = Float.min 1.0 (float_of_int threads /. 256.0) in
      (float_of_int cores, Float.max occ 0.03125)
    | Platform.Bang ->
      (float_of_int (min c.num_cores (blocks * threads)), 1.0)
    | Platform.Vnni ->
      (* the harness OpenMP-parallelizes CPU kernels (as oneDNN does), so
         core count is a property of the machine, not the kernel *)
      ignore threads;
      (float_of_int c.num_cores, 1.0)
  in
  let scalar_rate = cores_used *. c.scalar_flops_per_cycle *. occupancy *. clock in
  let vector_rate = cores_used *. float_of_int c.vector_lanes *. clock in
  let tensor_rate = cores_used *. c.tensor_macs_per_cycle *. clock in
  let compute =
    (f.scalar_flops /. scalar_rate) +. (f.vector_elems /. vector_rate)
    +. (f.tensor_macs /. tensor_rate)
  in
  let memory =
    (f.offchip_bytes /. (c.dram_gbps *. 1e9)) +. (f.onchip_bytes /. (c.onchip_gbps *. 1e9))
  in
  let body =
    if f.pipelined then Float.max compute memory +. (0.15 *. Float.min compute memory)
    else compute +. memory
  in
  let seconds = body +. (c.launch_overhead_us *. 1e-6 *. float_of_int f.launches) in
  (* roofline balance in [0, 1]: 1 = pure compute-bound, 0 = pure memory-bound *)
  if compute +. memory > 0.0 then
    Xpiler_obs.Trace.observe "costmodel.balance" (compute /. (compute +. memory));
  { seconds; compute_seconds = compute; memory_seconds = memory; features = f }

let throughput p k ~shapes =
  (* the tuning reward: inverse modelled time (scaled to an ops/s-like
     magnitude). Counting executed operations instead would reward padding
     the schedule with overhead work. *)
  let e = estimate p k ~shapes in
  1e9 /. e.seconds

(* ---- cheap admissible bound --------------------------------------------

   [throughput_bound] is a branch-and-bound pruning oracle: an upper bound
   on [throughput] computed by a structural walk that skips every
   per-expression fold ([flop_count] and [load_bytes] — the dominant cost of
   [extract_features]). Soundness argument, term by term against [estimate]:

   - blocks / threads / pipelined / launches are structural and computed
     identically, so the rates and occupancy match exactly;
   - scalar flops are under-counted (loop overhead and syncs only — no
     expression arithmetic), vector/tensor work is counted exactly, so
     [compute' <= compute];
   - traffic is under-counted (stores, memcpys and intrinsic streaming only
     — no loads), with the same scope attribution, so [memory' <= memory];
   - the body time is lower-bounded by [max compute' memory']: the
     unpipelined body is [compute + memory >= max], and the pipelined body
     is [max + 0.15 * min >= max].

   Hence [bound_seconds <= seconds] and the returned throughput is [>=] the
   true modelled throughput on every kernel (fuzzed in test_tuning.ml).
   Emits no trace events: pruning decisions replay from transposition
   receipts, so the bound must be observably silent. *)
let throughput_bound (p : Platform.t) (k : Kernel.t) ~shapes =
  let acc =
    { f_scalar = 0.0; f_vector = 0.0; f_tensor = 0.0; b_off = 0.0; b_on = 0.0;
      blocks = 1; threads = 1; pipelined = false }
  in
  let buf_info = Hashtbl.create 16 in
  List.iter
    (fun (prm : Kernel.param) ->
      if prm.is_buffer then Hashtbl.replace buf_info prm.name (Scope.Global, prm.dtype))
    k.Kernel.params;
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Alloc r -> Hashtbl.replace buf_info r.buf (r.scope, r.dtype)
      | _ -> ())
    k.Kernel.body;
  let scope_of b = Hashtbl.find_opt buf_info b in
  let env = Hashtbl.create 16 in
  List.iter (fun (n, v) -> Hashtbl.replace env n v) shapes;
  let eval_opt e =
    try Some (Expr.eval_int (fun x -> Hashtbl.find env x) e) with _ -> None
  in
  let extent_of e = match eval_opt e with Some n -> max n 0 | None -> 8 in
  let byte_size b =
    match scope_of b with Some (_, dt) -> float_of_int (Dtype.size_in_bytes dt) | None -> 4.0
  in
  let charge_bytes trips buf =
    let total = trips *. byte_size buf in
    match scope_of buf with
    | Some (s, _) when not (is_offchip s) -> acc.b_on <- acc.b_on +. total
    | Some _ -> acc.b_off <- acc.b_off +. total
    | None -> acc.b_off <- acc.b_off +. total
  in
  let rec walk trips block =
    List.iter
      (fun stmt ->
        match stmt with
        | Stmt.For r ->
          let n = extent_of r.extent in
          (match r.kind with
          | Stmt.Parallel (Axis.Block_x | Axis.Block_y | Axis.Block_z | Axis.Task_id | Axis.Cluster_id) ->
            acc.blocks <- acc.blocks * max n 1
          | Stmt.Parallel (Axis.Thread_x | Axis.Thread_y | Axis.Thread_z | Axis.Core_id) ->
            acc.threads <- acc.threads * max n 1
          | Stmt.Pipelined -> acc.pipelined <- true
          | Stmt.Serial | Stmt.Unrolled | Stmt.Vectorized -> ());
          acc.f_scalar <- acc.f_scalar +. (trips *. float_of_int n *. 0.25);
          walk (trips *. float_of_int n) r.body
        | Stmt.Let _ | Stmt.Assign _ -> ()
        | Stmt.Store r -> charge_bytes trips r.buf
        | Stmt.If r ->
          walk trips r.then_;
          walk (trips *. 0.25) r.else_
        | Stmt.Memcpy r ->
          let n = float_of_int (extent_of r.len) in
          charge_bytes (trips *. n) r.dst.buf;
          charge_bytes (trips *. n) r.src.buf
        | Stmt.Intrinsic i ->
          let p n = match List.nth_opt i.params n with Some e -> float_of_int (extent_of e) | None -> 1.0 in
          (match i.op with
          | Intrin.Mma | Intrin.Mlp -> acc.f_tensor <- acc.f_tensor +. (trips *. p 0 *. p 1 *. p 2)
          | Intrin.Conv2d ->
            acc.f_tensor <- acc.f_tensor +. (trips *. p 0 *. p 1 *. p 2 *. p 3 *. p 4 *. p 5)
          | Intrin.Dp4a -> acc.f_tensor <- acc.f_tensor +. (trips *. p 0)
          | _ -> acc.f_vector <- acc.f_vector +. (trips *. p 0));
          acc.b_on <- acc.b_on +. (trips *. p 0 *. 4.0)
        | Stmt.Sync -> acc.f_scalar <- acc.f_scalar +. (trips *. 2.0)
        | Stmt.Alloc _ | Stmt.Annot _ -> ())
      block
  in
  walk 1.0 k.Kernel.body;
  let c = p.Platform.cost in
  let clock = c.clock_ghz *. 1e9 in
  let blocks = max acc.blocks 1 and threads = max acc.threads 1 in
  let cores_used, occupancy =
    match p.Platform.id with
    | Platform.Cuda | Platform.Hip ->
      let cores = min c.num_cores blocks in
      let occ = Float.min 1.0 (float_of_int threads /. 256.0) in
      (float_of_int cores, Float.max occ 0.03125)
    | Platform.Bang -> (float_of_int (min c.num_cores (blocks * threads)), 1.0)
    | Platform.Vnni ->
      ignore threads;
      (float_of_int c.num_cores, 1.0)
  in
  let scalar_rate = cores_used *. c.scalar_flops_per_cycle *. occupancy *. clock in
  let vector_rate = cores_used *. float_of_int c.vector_lanes *. clock in
  let tensor_rate = cores_used *. c.tensor_macs_per_cycle *. clock in
  let compute =
    (acc.f_scalar /. scalar_rate) +. (acc.f_vector /. vector_rate)
    +. (acc.f_tensor /. tensor_rate)
  in
  let memory =
    (acc.b_off /. (c.dram_gbps *. 1e9)) +. (acc.b_on /. (c.onchip_gbps *. 1e9))
  in
  let bound_seconds =
    Float.max compute memory +. (c.launch_overhead_us *. 1e-6)
  in
  if bound_seconds <= 0.0 then infinity else 1e9 /. bound_seconds
