open Xpiler_ir
exception Runtime_error of string
exception Halt

type arg = Buf of Tensor.t | Scalar_int of int | Scalar_float of float

type stats = {
  mutable steps : int;
  mutable stores : int;
  mutable intrinsic_elems : int;
  mutable memcpy_elems : int;
  mutable barriers : int;
}

type value = I of int | F of float

type ctx = {
  stats : stats;
  fuel : int;
  trace : (string -> int -> float -> unit) option;
  store_limit : int;  (** max stores before Halt; max_int = unlimited *)
  traffic : (string, int) Hashtbl.t option;
      (** per-buffer written elements, tallied only when profiling *)
}

type env = { scalars : (string * value ref) list; bufs : (string * Tensor.t) list }

type _ Effect.t += Barrier : unit Effect.t

let to_float = function I n -> float_of_int n | F f -> f
let to_int = function I n -> n | F f -> int_of_float f
let truthy = function I n -> n <> 0 | F f -> f <> 0.0
let of_bool b = I (if b then 1 else 0)

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let tally ctx buf n =
  match ctx.traffic with
  | None -> ()
  | Some tbl -> Hashtbl.replace tbl buf (n + Option.value ~default:0 (Hashtbl.find_opt tbl buf))

let lookup_scalar env x =
  match List.assoc_opt x env.scalars with
  | Some r -> !r
  | None -> err "unbound variable %s" x

let lookup_buf env b =
  match List.assoc_opt b env.bufs with
  | Some t -> t
  | None -> err "unbound buffer %s" b

let buf_get t b i =
  if i < 0 || i >= Tensor.length t then err "out-of-bounds read %s[%d] (size %d)" b i (Tensor.length t)
  else Tensor.get t i

let buf_set t b i v =
  if i < 0 || i >= Tensor.length t then
    err "out-of-bounds write %s[%d] (size %d)" b i (Tensor.length t)
  else Tensor.set t i v

let load env b i =
  let t = lookup_buf env b in
  let v = buf_get t b i in
  if Dtype.is_float t.Tensor.dtype then F v else I (int_of_float v)

let int_binop op a b =
  match (op : Expr.binop) with
  | Add -> I (a + b)
  | Sub -> I (a - b)
  | Mul -> I (a * b)
  | Div -> if b = 0 then err "integer division by zero" else I (a / b)
  | Mod -> if b = 0 then err "integer modulo by zero" else I (a mod b)
  | Min -> I (min a b)
  | Max -> I (max a b)
  | Eq -> of_bool (a = b)
  | Ne -> of_bool (a <> b)
  | Lt -> of_bool (a < b)
  | Le -> of_bool (a <= b)
  | Gt -> of_bool (a > b)
  | Ge -> of_bool (a >= b)
  | And -> of_bool (a <> 0 && b <> 0)
  | Or -> of_bool (a <> 0 || b <> 0)

let float_binop op a b =
  match (op : Expr.binop) with
  | Add -> F (a +. b)
  | Sub -> F (a -. b)
  | Mul -> F (a *. b)
  | Div -> F (a /. b)
  | Mod -> F (Float.rem a b)
  | Min -> F (Float.min a b)
  | Max -> F (Float.max a b)
  | Eq -> of_bool (a = b)
  | Ne -> of_bool (a <> b)
  | Lt -> of_bool (a < b)
  | Le -> of_bool (a <= b)
  | Gt -> of_bool (a > b)
  | Ge -> of_bool (a >= b)
  | And -> of_bool (a <> 0.0 && b <> 0.0)
  | Or -> of_bool (a <> 0.0 || b <> 0.0)

let unop op v =
  match (op : Expr.unop) with
  | Neg -> ( match v with I n -> I (-n) | F f -> F (-.f))
  | Not -> of_bool (not (truthy v))
  | Exp -> F (exp (to_float v))
  | Log -> F (log (to_float v))
  | Sqrt -> F (sqrt (to_float v))
  | Rsqrt -> F (1.0 /. sqrt (to_float v))
  | Tanh -> F (tanh (to_float v))
  | Erf ->
    (* Abramowitz & Stegun 7.1.26 rational approximation *)
    let x = to_float v in
    let s = if x < 0.0 then -1.0 else 1.0 in
    let x = Float.abs x in
    let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
    let y =
      1.0
      -. (((((1.061405429 *. t -. 1.453152027) *. t) +. 1.421413741) *. t -. 0.284496736)
           *. t +. 0.254829592)
         *. t *. exp (-.x *. x)
    in
    F (s *. y)
  | Abs -> ( match v with I n -> I (abs n) | F f -> F (Float.abs f))
  | Recip -> F (1.0 /. to_float v)
  | Floor -> F (Float.floor (to_float v))

let rec eval env (e : Expr.t) : value =
  match e with
  | Int n -> I n
  | Float f -> F f
  | Var x -> lookup_scalar env x
  | Load (b, i) -> load env b (to_int (eval env i))
  | Binop (op, l, r) -> (
    let a = eval env l and b = eval env r in
    match (a, b) with
    | I x, I y -> int_binop op x y
    | _ -> float_binop op (to_float a) (to_float b))
  | Unop (op, x) -> unop op (eval env x)
  | Select (c, t, f) -> if truthy (eval env c) then eval env t else eval env f
  | Cast (d, x) ->
    let v = eval env x in
    if Dtype.is_float d then F (to_float v) else I (to_int v)

let eval_int env e = to_int (eval env e)
let eval_float env e = to_float (eval env e)

(* ---- intrinsic semantics ---------------------------------------------- *)

let intrinsic_exec ctx env (i : Intrin.t) =
  let dst_t = lookup_buf env i.dst.buf in
  let dst_off = eval_int env i.dst.offset in
  let srcs =
    List.map
      (fun (r : Intrin.buf_ref) -> (lookup_buf env r.buf, r.buf, eval_int env r.offset))
      i.srcs
  in
  let params = List.map (eval_int env) i.params in
  let src n =
    match List.nth_opt srcs n with
    | Some s -> s
    | None -> err "intrinsic %s: missing source %d" (Intrin.op_name i.op) n
  in
  let param n =
    match List.nth_opt params n with
    | Some p -> p
    | None -> err "intrinsic %s: missing parameter %d" (Intrin.op_name i.op) n
  in
  let dname = i.dst.buf in
  let map2 f =
    let len = param 0 in
    let at, an, ao = src 0 and bt, bn, bo = src 1 in
    for k = 0 to len - 1 do
      buf_set dst_t dname (dst_off + k) (f (buf_get at an (ao + k)) (buf_get bt bn (bo + k)))
    done;
    ctx.stats.intrinsic_elems <- ctx.stats.intrinsic_elems + len
  in
  let map1 f =
    let len = param 0 in
    let at, an, ao = src 0 in
    for k = 0 to len - 1 do
      buf_set dst_t dname (dst_off + k) (f (buf_get at an (ao + k)))
    done;
    ctx.stats.intrinsic_elems <- ctx.stats.intrinsic_elems + len
  in
  let float_param n = float_of_int (param n) in
  match i.op with
  | Vec_add -> map2 ( +. )
  | Vec_sub -> map2 ( -. )
  | Vec_mul -> map2 ( *. )
  | Vec_max -> map2 Float.max
  | Vec_min -> map2 Float.min
  | Vec_exp -> map1 exp
  | Vec_log -> map1 log
  | Vec_sqrt -> map1 sqrt
  | Vec_recip -> map1 (fun x -> 1.0 /. x)
  | Vec_tanh -> map1 tanh
  | Vec_erf -> map1 (fun x -> to_float (unop Expr.Erf (F x)))
  | Vec_relu -> map1 (fun x -> Float.max x 0.0)
  | Vec_sigmoid -> map1 (fun x -> 1.0 /. (1.0 +. exp (-.x)))
  | Vec_gelu ->
    map1 (fun x -> 0.5 *. x *. (1.0 +. to_float (unop Expr.Erf (F (x *. 0.7071067811865476)))))
  | Vec_sign -> map1 (fun x -> if x > 0.0 then 1.0 else if x < 0.0 then -1.0 else 0.0)
  | Vec_copy -> map1 Fun.id
  | Vec_scale ->
    (* params are expressions; scalar may be float-valued *)
    let len = param 0 in
    let s =
      match i.params with _ :: e :: _ -> eval_float env e | _ -> err "vec_scale: no scalar"
    in
    let at, an, ao = src 0 in
    for k = 0 to len - 1 do
      buf_set dst_t dname (dst_off + k) (buf_get at an (ao + k) *. s)
    done;
    ctx.stats.intrinsic_elems <- ctx.stats.intrinsic_elems + len
  | Vec_adds ->
    let len = param 0 in
    let s =
      match i.params with _ :: e :: _ -> eval_float env e | _ -> err "vec_adds: no scalar"
    in
    let at, an, ao = src 0 in
    for k = 0 to len - 1 do
      buf_set dst_t dname (dst_off + k) (buf_get at an (ao + k) +. s)
    done;
    ctx.stats.intrinsic_elems <- ctx.stats.intrinsic_elems + len
  | Vec_fill ->
    let len = param 0 in
    let s =
      match i.params with _ :: e :: _ -> eval_float env e | _ -> err "vec_fill: no scalar"
    in
    for k = 0 to len - 1 do
      buf_set dst_t dname (dst_off + k) s
    done;
    ctx.stats.intrinsic_elems <- ctx.stats.intrinsic_elems + len
  | Vec_reduce_sum ->
    let len = param 0 in
    let at, an, ao = src 0 in
    let acc = ref 0.0 in
    for k = 0 to len - 1 do
      acc := !acc +. buf_get at an (ao + k)
    done;
    buf_set dst_t dname dst_off !acc;
    ctx.stats.intrinsic_elems <- ctx.stats.intrinsic_elems + len
  | Vec_reduce_max ->
    let len = param 0 in
    if len <= 0 then err "vec_reduce_max: empty input";
    let at, an, ao = src 0 in
    let acc = ref (buf_get at an ao) in
    for k = 1 to len - 1 do
      acc := Float.max !acc (buf_get at an (ao + k))
    done;
    buf_set dst_t dname dst_off !acc;
    ctx.stats.intrinsic_elems <- ctx.stats.intrinsic_elems + len
  | Mma | Mlp ->
    let m = param 0 and k = param 1 and n = param 2 in
    let at, an, ao = src 0 and bt, bn, bo = src 1 in
    for r = 0 to m - 1 do
      for c = 0 to n - 1 do
        let acc = ref (buf_get dst_t dname (dst_off + (r * n) + c)) in
        for l = 0 to k - 1 do
          acc :=
            !acc +. (buf_get at an (ao + (r * k) + l) *. buf_get bt bn (bo + (l * n) + c))
        done;
        buf_set dst_t dname (dst_off + (r * n) + c) !acc
      done
    done;
    ctx.stats.intrinsic_elems <- ctx.stats.intrinsic_elems + (m * n * k)
  | Conv2d ->
    let co = param 0 and ci = param 1 and kh = param 2 and kw = param 3 in
    let ho = param 4 and wo = param 5 and stride = param 6 in
    let wi = ((wo - 1) * stride) + kw in
    let it, iname, io = src 0 and wt, wname, wo_ = src 1 in
    ignore float_param;
    for oh = 0 to ho - 1 do
      for ow = 0 to wo - 1 do
        for oc = 0 to co - 1 do
          let acc = ref (buf_get dst_t dname (dst_off + (((oh * wo) + ow) * co) + oc)) in
          for r = 0 to kh - 1 do
            for q = 0 to kw - 1 do
              for c = 0 to ci - 1 do
                let iv =
                  buf_get it iname
                    (io + (((((oh * stride) + r) * wi) + (ow * stride) + q) * ci) + c)
                in
                let wv = buf_get wt wname (wo_ + (((((oc * kh) + r) * kw) + q) * ci) + c) in
                acc := !acc +. (iv *. wv)
              done
            done
          done;
          buf_set dst_t dname (dst_off + (((oh * wo) + ow) * co) + oc) !acc
        done
      done
    done;
    ctx.stats.intrinsic_elems <- ctx.stats.intrinsic_elems + (ho * wo * co * kh * kw * ci)
  | Dp4a ->
    let len = param 0 in
    if len mod 4 <> 0 then err "dp4a: length %d not a multiple of 4" len;
    let at, an, ao = src 0 and bt, bn, bo = src 1 in
    for g = 0 to (len / 4) - 1 do
      let acc = ref (buf_get dst_t dname (dst_off + g)) in
      for j = 0 to 3 do
        acc :=
          !acc
          +. (buf_get at an (ao + (g * 4) + j) *. buf_get bt bn (bo + (g * 4) + j))
      done;
      buf_set dst_t dname (dst_off + g) !acc
    done;
    ctx.stats.intrinsic_elems <- ctx.stats.intrinsic_elems + len

(* ---- statement execution ---------------------------------------------- *)

let is_thread_axis = function
  | Axis.Thread_x | Axis.Thread_y | Axis.Thread_z | Axis.Core_id -> true
  | Axis.Block_x | Axis.Block_y | Axis.Block_z | Axis.Task_id | Axis.Cluster_id -> false

type fiber_state = Done | Suspended of (unit -> fiber_state)

let run_fiber_group fibers =
  let open Effect.Deep in
  let start f =
    match_with f ()
      { retc = (fun () -> Done);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Barrier ->
              Some
                (fun (k : (a, _) continuation) -> Suspended (fun () -> continue k ()))
            | _ -> None)
      }
  in
  (* reverse order within each round deterministically exposes
     missing-barrier races *)
  let rec rounds states =
    let pending =
      List.filter_map (function Done -> None | Suspended r -> Some r) states
    in
    if pending <> [] then rounds (List.rev_map (fun r -> r ()) pending)
  in
  rounds (List.rev_map start fibers)

let copy_scalars scalars = List.map (fun (n, r) -> (n, ref !r)) scalars

let rec exec_block ctx env block = ignore (List.fold_left (exec_stmt ctx) env block)

and exec_stmt ctx env stmt : env =
  ctx.stats.steps <- ctx.stats.steps + 1;
  if ctx.stats.steps > ctx.fuel then err "fuel exhausted (non-terminating program?)";
  match stmt with
  | Stmt.Annot _ -> env
  | Stmt.Let { var; value } ->
    { env with scalars = (var, ref (eval env value)) :: env.scalars }
  | Stmt.Assign { var; value } ->
    (match List.assoc_opt var env.scalars with
    | Some r -> r := eval env value
    | None -> err "assignment to unbound variable %s" var);
    env
  | Stmt.Store { buf; index; value } ->
    let t = lookup_buf env buf in
    let i = eval_int env index in
    let v = eval env value in
    let v = if Dtype.is_float t.Tensor.dtype then to_float v else float_of_int (to_int v) in
    buf_set t buf i v;
    ctx.stats.stores <- ctx.stats.stores + 1;
    tally ctx buf 1;
    (match ctx.trace with Some f -> f buf i v | None -> ());
    if ctx.stats.stores >= ctx.store_limit then raise Halt;
    env
  | Stmt.Alloc { buf; dtype; size; _ } ->
    { env with bufs = (buf, Tensor.create ~dtype size) :: env.bufs }
  | Stmt.If { cond; then_; else_ } ->
    if truthy (eval env cond) then exec_block ctx env then_ else exec_block ctx env else_;
    env
  | Stmt.Memcpy { dst; src; len } ->
    let dt = lookup_buf env dst.buf and st = lookup_buf env src.buf in
    let doff = eval_int env dst.offset and soff = eval_int env src.offset in
    let n = eval_int env len in
    if n < 0 then err "memcpy: negative length %d" n;
    for k = 0 to n - 1 do
      buf_set dt dst.buf (doff + k) (buf_get st src.buf (soff + k))
    done;
    ctx.stats.memcpy_elems <- ctx.stats.memcpy_elems + n;
    tally ctx dst.buf n;
    env
  | Stmt.Intrinsic i ->
    let before = ctx.stats.intrinsic_elems in
    intrinsic_exec ctx env i;
    tally ctx i.Intrin.dst.Intrin.buf (ctx.stats.intrinsic_elems - before);
    env
  | Stmt.Sync ->
    ctx.stats.barriers <- ctx.stats.barriers + 1;
    (try Effect.perform Barrier with Effect.Unhandled _ -> ());
    env
  | Stmt.For { var; lo; extent; kind = Stmt.Parallel ax; body } when is_thread_axis ax ->
    (* collect the maximal immediately-nested chain of thread-parallel loops
       so a barrier synchronizes the whole thread block *)
    let rec chain acc body =
      match body with
      | [ Stmt.For { var; lo; extent; kind = Stmt.Parallel ax; body = inner } ]
        when is_thread_axis ax ->
        chain ((var, lo, extent) :: acc) inner
      | _ -> (List.rev acc, body)
    in
    let loops, innermost = chain [ (var, lo, extent) ] body in
    let rec spawn scalars = function
      | [] -> [ (fun () -> exec_block ctx { env with scalars } innermost) ]
      | (v, lo_e, ext_e) :: rest ->
        let lo_v = eval_int { env with scalars } lo_e in
        let ext_v = eval_int { env with scalars } ext_e in
        if ext_v < 0 then err "negative loop extent in %s" v;
        List.concat
          (List.init ext_v (fun i ->
               spawn ((v, ref (I (lo_v + i))) :: copy_scalars scalars) rest))
    in
    run_fiber_group (spawn env.scalars loops);
    env
  | Stmt.For { var; lo; extent; body; _ } ->
    let lo_v = eval_int env lo in
    let ext_v = eval_int env extent in
    if ext_v < 0 then err "negative loop extent in %s" var;
    let cell = ref (I lo_v) in
    let env' = { env with scalars = (var, cell) :: env.scalars } in
    for i = lo_v to lo_v + ext_v - 1 do
      cell := I i;
      exec_block ctx env' body
    done;
    env

(* ---- entry points ------------------------------------------------------ *)

let fresh_stats () = { steps = 0; stores = 0; intrinsic_elems = 0; memcpy_elems = 0; barriers = 0 }

let build_env (kernel : Kernel.t) args =
  let scalars = ref [] and bufs = ref [] in
  List.iter
    (fun (p : Kernel.param) ->
      match List.assoc_opt p.name args with
      | None -> err "missing argument for parameter %s" p.name
      | Some (Buf t) ->
        if not p.is_buffer then err "parameter %s is scalar but got a buffer" p.name;
        bufs := (p.name, t) :: !bufs
      | Some (Scalar_int n) ->
        if p.is_buffer then err "parameter %s is a buffer but got a scalar" p.name;
        scalars := (p.name, ref (I n)) :: !scalars
      | Some (Scalar_float f) ->
        if p.is_buffer then err "parameter %s is a buffer but got a scalar" p.name;
        scalars := (p.name, ref (F f)) :: !scalars)
    kernel.Kernel.params;
  { scalars = !scalars; bufs = !bufs }

module Trace = Xpiler_obs.Trace

(* profiling hook: per-run op counts and per-buffer write traffic, emitted
   to the ambient tracer so unit-test and localization executions show up
   in the per-translation trace *)
let profile stats traffic =
  if Trace.enabled () then begin
    Trace.count "interp.runs";
    Trace.count ~n:stats.steps "interp.steps";
    Trace.count ~n:stats.stores "interp.stores";
    Trace.count ~n:stats.intrinsic_elems "interp.intrinsic_elems";
    Trace.count ~n:stats.memcpy_elems "interp.memcpy_elems";
    Trace.count ~n:stats.barriers "interp.barriers";
    match traffic with
    | None -> ()
    | Some tbl ->
      Hashtbl.fold (fun buf n acc -> (buf, n) :: acc) tbl []
      |> List.sort compare
      |> List.iter (fun (buf, n) -> Trace.count ~n ("interp.traffic." ^ buf))
  end

let run ?(fuel = 200_000_000) ?trace kernel args =
  let stats = fresh_stats () in
  let traffic = if Trace.enabled () then Some (Hashtbl.create 8) else None in
  let ctx = { stats; fuel; trace; store_limit = max_int; traffic } in
  let env = build_env kernel args in
  Fun.protect ~finally:(fun () -> profile stats traffic) (fun () ->
      exec_block ctx env kernel.Kernel.body);
  stats

let run_prefix ?(fuel = 200_000_000) kernel ~stop_after args =
  let stats = fresh_stats () in
  let ctx = { stats; fuel; trace = None; store_limit = stop_after; traffic = None } in
  let env = build_env kernel args in
  (try exec_block ctx env kernel.Kernel.body with Halt -> ());
  stats
