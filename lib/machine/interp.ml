open Xpiler_ir

(* The shared runtime (value/stat types, operator and intrinsic semantics,
   barrier effect, fiber scheduler) lives in Compile so the closure-compiled
   engine and this reference tree-walker agree by construction. [run] and
   [run_prefix] dispatch to the compiled engine; [run_tree] keeps the direct
   tree-walker as the differential-testing baseline. *)

exception Runtime_error = Compile.Runtime_error
exception Halt = Compile.Halt

type arg = Compile.arg = Buf of Tensor.t | Scalar_int of int | Scalar_float of float

type stats = Compile.stats = {
  mutable steps : int;
  mutable stores : int;
  mutable intrinsic_elems : int;
  mutable memcpy_elems : int;
  mutable barriers : int;
}

type value = Compile.value = I of int | F of float

type ctx = Compile.ctx = {
  stats : stats;
  fuel : int;
  trace : (string -> int -> float -> unit) option;
  store_limit : int;
  traffic : (string, int) Hashtbl.t option;
}

let to_float = Compile.to_float
let to_int = Compile.to_int
let truthy = Compile.truthy
let err fmt = Compile.err fmt
let tally = Compile.tally
let buf_get = Compile.buf_get
let buf_set = Compile.buf_set
let int_binop = Compile.int_binop
let float_binop = Compile.float_binop
let unop = Compile.unop
let is_thread_axis = Compile.is_thread_axis
let run_fiber_group = Compile.run_fiber_group
let fresh_stats = Compile.fresh_stats

(* ---- the compiled fast path -------------------------------------------- *)

let run ?fuel ?trace kernel args =
  (* the native backend is best-effort: [None] (disabled, toolchain absent,
     compile/dynlink failure) falls back to the closure engine, while kernel
     runtime errors propagate from either engine identically *)
  match if Native.enabled () then Native.run ?fuel ?trace kernel args else None with
  | Some stats -> stats
  | None -> Compile.run ?fuel ?trace (Compile.cached kernel) args

let run_prefix ?fuel kernel ~stop_after args =
  Compile.run_prefix ?fuel (Compile.cached kernel) ~stop_after args

(* ---- tree-walking reference interpreter -------------------------------- *)

(* Environments are hash tables with [Hashtbl.add]/[remove] as push/pop:
   lookup is O(1) instead of a linear assoc-list scan, and shadowing keeps
   the exact stack discipline of the original cons-based environment. *)
type env = { scalars : (string, value ref) Hashtbl.t; bufs : (string, Tensor.t) Hashtbl.t }

let lookup_scalar env x =
  match Hashtbl.find_opt env.scalars x with
  | Some r -> !r
  | None -> err "unbound variable %s" x

let lookup_buf env b =
  match Hashtbl.find_opt env.bufs b with
  | Some t -> t
  | None -> err "unbound buffer %s" b

let load env b i =
  let t = lookup_buf env b in
  let v = buf_get t b i in
  if Dtype.is_float t.Tensor.dtype then F v else I (int_of_float v)

let rec eval env (e : Expr.t) : value =
  match e with
  | Int n -> I n
  | Float f -> F f
  | Var x -> lookup_scalar env x
  | Load (b, i) -> load env b (to_int (eval env i))
  | Binop (op, l, r) -> (
    let a = eval env l in
    let b = eval env r in
    match (a, b) with
    | I x, I y -> int_binop op x y
    | _ -> float_binop op (to_float a) (to_float b))
  | Unop (op, x) -> unop op (eval env x)
  | Select (c, t, f) -> if truthy (eval env c) then eval env t else eval env f
  | Cast (d, x) ->
    let v = eval env x in
    if Dtype.is_float d then F (to_float v) else I (to_int v)

let eval_int env e = to_int (eval env e)
let eval_float env e = to_float (eval env e)

let intrinsic_exec ctx env (i : Intrin.t) =
  let name = Intrin.op_name i.op in
  let dst_t = lookup_buf env i.dst.buf in
  let dst_off = eval_int env i.dst.offset in
  let srcs =
    Array.of_list
      (List.map
         (fun (r : Intrin.buf_ref) -> (lookup_buf env r.buf, r.buf, eval_int env r.offset))
         i.srcs)
  in
  let params = Array.of_list (List.map (eval_int env) i.params) in
  let fparam () =
    match i.params with _ :: e :: _ -> eval_float env e | _ -> err "%s: no scalar" name
  in
  Compile.intrinsic_exec ctx.stats ~name ~op:i.op ~dst_t ~dname:i.dst.buf ~dst_off ~srcs
    ~params ~fparam

(* per-fiber private scalars: rebuild the table with fresh refs, preserving
   each name's shadowing stack *)
let copy_scalars scalars =
  let fresh = Hashtbl.create (Hashtbl.length scalars) in
  let seen = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name _ ->
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.add seen name ();
        (* find_all returns most-recent first; re-add oldest first *)
        List.iter
          (fun r -> Hashtbl.add fresh name (ref !r))
          (List.rev (Hashtbl.find_all scalars name))
      end)
    scalars;
  fresh

let rec exec_block ctx env block =
  let pushed_s = ref [] and pushed_b = ref [] in
  List.iter
    (fun stmt ->
      match exec_stmt ctx env stmt with
      | None -> ()
      | Some (`Scalar v) -> pushed_s := v :: !pushed_s
      | Some (`Buf b) -> pushed_b := b :: !pushed_b)
    block;
  (* bindings scope to the end of the block *)
  List.iter (Hashtbl.remove env.scalars) !pushed_s;
  List.iter (Hashtbl.remove env.bufs) !pushed_b

and exec_stmt ctx env stmt : [ `Scalar of string | `Buf of string ] option =
  ctx.stats.steps <- ctx.stats.steps + 1;
  if ctx.stats.steps > ctx.fuel then err "fuel exhausted (non-terminating program?)";
  match stmt with
  | Stmt.Annot _ -> None
  | Stmt.Let { var; value } ->
    let v = eval env value in
    Hashtbl.add env.scalars var (ref v);
    Some (`Scalar var)
  | Stmt.Assign { var; value } ->
    (match Hashtbl.find_opt env.scalars var with
    | Some r -> r := eval env value
    | None -> err "assignment to unbound variable %s" var);
    None
  | Stmt.Store { buf; index; value } ->
    let t = lookup_buf env buf in
    let i = eval_int env index in
    let v = eval env value in
    let v = if Dtype.is_float t.Tensor.dtype then to_float v else float_of_int (to_int v) in
    buf_set t buf i v;
    ctx.stats.stores <- ctx.stats.stores + 1;
    tally ctx buf 1;
    (match ctx.trace with Some f -> f buf i v | None -> ());
    if ctx.stats.stores >= ctx.store_limit then raise Halt;
    None
  | Stmt.Alloc { buf; dtype; size; _ } ->
    Hashtbl.add env.bufs buf (Tensor.create ~dtype size);
    Some (`Buf buf)
  | Stmt.If { cond; then_; else_ } ->
    if truthy (eval env cond) then exec_block ctx env then_ else exec_block ctx env else_;
    None
  | Stmt.Memcpy { dst; src; len } ->
    let dt = lookup_buf env dst.buf in
    let st = lookup_buf env src.buf in
    let doff = eval_int env dst.offset in
    let soff = eval_int env src.offset in
    let n = eval_int env len in
    if n < 0 then err "memcpy: negative length %d" n;
    for k = 0 to n - 1 do
      buf_set dt dst.buf (doff + k) (buf_get st src.buf (soff + k))
    done;
    ctx.stats.memcpy_elems <- ctx.stats.memcpy_elems + n;
    tally ctx dst.buf n;
    None
  | Stmt.Intrinsic i ->
    let before = ctx.stats.intrinsic_elems in
    intrinsic_exec ctx env i;
    tally ctx i.Intrin.dst.Intrin.buf (ctx.stats.intrinsic_elems - before);
    None
  | Stmt.Sync ->
    ctx.stats.barriers <- ctx.stats.barriers + 1;
    (try Effect.perform Compile.Barrier with Effect.Unhandled _ -> ());
    None
  | Stmt.For { var; lo; extent; kind = Stmt.Parallel ax; body } when is_thread_axis ax ->
    (* collect the maximal immediately-nested chain of thread-parallel loops
       so a barrier synchronizes the whole thread block *)
    let rec chain acc body =
      match body with
      | [ Stmt.For { var; lo; extent; kind = Stmt.Parallel ax; body = inner } ]
        when is_thread_axis ax ->
        chain ((var, lo, extent) :: acc) inner
      | _ -> (List.rev acc, body)
    in
    let loops, innermost = chain [ (var, lo, extent) ] body in
    let rec spawn scalars = function
      | [] ->
        [ (fun () -> exec_block ctx { env with scalars } innermost) ]
      | (v, lo_e, ext_e) :: rest ->
        let fenv = { env with scalars } in
        let lo_v = eval_int fenv lo_e in
        let ext_v = eval_int fenv ext_e in
        if ext_v < 0 then err "negative loop extent in %s" v;
        List.concat
          (List.init ext_v (fun i ->
               let scalars' = copy_scalars scalars in
               Hashtbl.add scalars' v (ref (I (lo_v + i)));
               spawn scalars' rest))
    in
    run_fiber_group (spawn env.scalars loops);
    None
  | Stmt.For { var; lo; extent; body; _ } ->
    let lo_v = eval_int env lo in
    let ext_v = eval_int env extent in
    if ext_v < 0 then err "negative loop extent in %s" var;
    let cell = ref (I lo_v) in
    Hashtbl.add env.scalars var cell;
    Fun.protect
      ~finally:(fun () -> Hashtbl.remove env.scalars var)
      (fun () ->
        for i = lo_v to lo_v + ext_v - 1 do
          cell := I i;
          exec_block ctx env body
        done);
    None

let build_env (kernel : Kernel.t) args =
  let env = { scalars = Hashtbl.create 16; bufs = Hashtbl.create 16 } in
  List.iter
    (fun (p : Kernel.param) ->
      match List.assoc_opt p.name args with
      | None -> err "missing argument for parameter %s" p.name
      | Some (Buf t) ->
        if not p.is_buffer then err "parameter %s is scalar but got a buffer" p.name;
        Hashtbl.add env.bufs p.name t
      | Some (Scalar_int n) ->
        if p.is_buffer then err "parameter %s is a buffer but got a scalar" p.name;
        Hashtbl.add env.scalars p.name (ref (I n))
      | Some (Scalar_float f) ->
        if p.is_buffer then err "parameter %s is a buffer but got a scalar" p.name;
        Hashtbl.add env.scalars p.name (ref (F f)))
    kernel.Kernel.params;
  env

let run_tree ?(fuel = 200_000_000) ?trace kernel args =
  let stats = fresh_stats () in
  let traffic = if Xpiler_obs.Trace.enabled () then Some (Hashtbl.create 8) else None in
  let ctx = { stats; fuel; trace; store_limit = max_int; traffic } in
  let env = build_env kernel args in
  Fun.protect
    ~finally:(fun () -> Compile.profile stats traffic)
    (fun () -> exec_block ctx env kernel.Kernel.body);
  stats
