(** The fast evaluation engine: one-shot lowering of a kernel into OCaml
    closures over slot-indexed frames.

    Variable and buffer names are resolved to array slots at compile time, so
    execution never walks an association list or the statement tree. The
    numerical semantics, error messages, statistics accounting, fuel
    discipline and SIMT fiber scheduling are byte-for-byte those of the
    tree-walking reference interpreter — {!Interp.run} is a thin wrapper over
    {!cached}, and [test/test_fuzz.ml] checks the two engines differentially.

    This module also owns the runtime pieces both engines share (value and
    statistics types, scalar operators, intrinsic semantics, the barrier
    effect and the fiber scheduler), so the engines cannot drift apart. *)

open Xpiler_ir

exception Runtime_error of string
(** Raised for dynamic errors: out-of-bounds accesses, unbound names,
    division by zero, fuel exhaustion, negative extents, argument-binding
    mismatches. *)

exception Halt
(** Internal: raised when the store limit of {!run_prefix} is reached. *)

type arg = Buf of Tensor.t | Scalar_int of int | Scalar_float of float

type stats = {
  mutable steps : int;
  mutable stores : int;
  mutable intrinsic_elems : int;
  mutable memcpy_elems : int;
  mutable barriers : int;
}

type value = I of int | F of float

type ctx = {
  stats : stats;
  fuel : int;
  trace : (string -> int -> float -> unit) option;
  store_limit : int;  (** max stores before Halt; max_int = unlimited *)
  traffic : (string, int) Hashtbl.t option;
      (** per-buffer written elements, tallied only when profiling *)
}

(** {1 Shared runtime — used by the tree-walking reference interpreter} *)

val to_float : value -> float
val to_int : value -> int
val truthy : value -> bool
val of_bool : bool -> value
val err : ('a, unit, string, 'b) format4 -> 'a
val tally : ctx -> string -> int -> unit
val buf_get : Tensor.t -> string -> int -> float
val buf_set : Tensor.t -> string -> int -> float -> unit
val int_binop : Expr.binop -> int -> int -> value
val float_binop : Expr.binop -> float -> float -> value
val unop : Expr.unop -> value -> value

type _ Effect.t += Barrier : unit Effect.t

val is_thread_axis : Axis.t -> bool

type fiber_state = Done | Suspended of (unit -> fiber_state)

val run_fiber_group : (unit -> unit) list -> unit
(** Runs SIMT fibers round-robin between barriers, reversing order each
    round to deterministically expose missing-barrier races. *)

val intrinsic_exec :
  stats ->
  name:string ->
  op:Intrin.op ->
  dst_t:Tensor.t ->
  dname:string ->
  dst_off:int ->
  srcs:(Tensor.t * string * int) array ->
  params:int array ->
  fparam:(unit -> float) ->
  unit
(** Execute one intrinsic against already-evaluated operands. [fparam]
    re-evaluates the second parameter as a float (for
    [Vec_scale]/[Vec_adds]/[Vec_fill]); it must raise
    ["%s: no scalar"] when absent. *)

val fresh_stats : unit -> stats
val profile : stats -> (string, int) Hashtbl.t option -> unit

(** {1 The compiler} *)

type frame = { scalars : value array; ints : int array; bufs : Tensor.t array }
(** A runtime activation: every binding site of the kernel got a distinct
    slot at compile time. Variables proven always-integer (loop counters,
    int-valued lets that are never reassigned) live unboxed in [ints];
    everything else is a boxed [value] in [scalars]. Fibers copy all three
    arrays (cheap — the tensors themselves stay shared). *)

type t
(** A compiled kernel. *)

val compile : Kernel.t -> t
val kernel : t -> Kernel.t
val bind_args : t -> (string * arg) list -> frame

val run : ?fuel:int -> ?trace:(string -> int -> float -> unit) -> t -> (string * arg) list -> stats
(** Same contract as [Interp.run]. *)

val run_prefix : ?fuel:int -> t -> stop_after:int -> (string * arg) list -> stats
(** Same contract as [Interp.run_prefix]. *)

val cached : Kernel.t -> t
(** Bounded thread-safe memo keyed by [Kernel.cache_key] (the same helper
    that addresses the native backend's on-disk artifact cache); the tuner
    re-executes the same candidate kernels many times, so this makes
    compilation cost amortize to zero. *)
