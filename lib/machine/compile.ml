open Xpiler_ir

(* The fast evaluation engine: lowers a kernel once into OCaml closures over
   slot-indexed frames (arrays, not assoc lists). The runtime pieces shared
   with the tree-walking reference interpreter — value/stat types, scalar
   operator semantics, intrinsic semantics, the barrier effect and fiber
   scheduler — live here so both engines agree by construction. *)

exception Runtime_error of string
exception Halt

type arg = Buf of Tensor.t | Scalar_int of int | Scalar_float of float

type stats = {
  mutable steps : int;
  mutable stores : int;
  mutable intrinsic_elems : int;
  mutable memcpy_elems : int;
  mutable barriers : int;
}

type value = I of int | F of float

type ctx = {
  stats : stats;
  fuel : int;
  trace : (string -> int -> float -> unit) option;
  store_limit : int;  (** max stores before Halt; max_int = unlimited *)
  traffic : (string, int) Hashtbl.t option;
      (** per-buffer written elements, tallied only when profiling *)
}

let to_float = function I n -> float_of_int n | F f -> f
let to_int = function I n -> n | F f -> int_of_float f
let truthy = function I n -> n <> 0 | F f -> f <> 0.0
let of_bool b = I (if b then 1 else 0)

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let tally ctx buf n =
  match ctx.traffic with
  | None -> ()
  | Some tbl -> Hashtbl.replace tbl buf (n + Option.value ~default:0 (Hashtbl.find_opt tbl buf))

(* single bounds check, then unsafe access: these run once per simulated
   element so the double check of Tensor.get/set is measurable *)
let buf_get t b i =
  let data = t.Tensor.data in
  if i < 0 || i >= Array.length data then
    err "out-of-bounds read %s[%d] (size %d)" b i (Array.length data)
  else Array.unsafe_get data i

let buf_set t b i v =
  let data = t.Tensor.data in
  if i < 0 || i >= Array.length data then
    err "out-of-bounds write %s[%d] (size %d)" b i (Array.length data)
  else Array.unsafe_set data i v

let int_binop op a b =
  match (op : Expr.binop) with
  | Add -> I (a + b)
  | Sub -> I (a - b)
  | Mul -> I (a * b)
  | Div -> if b = 0 then err "integer division by zero" else I (a / b)
  | Mod -> if b = 0 then err "integer modulo by zero" else I (a mod b)
  | Min -> I (min a b)
  | Max -> I (max a b)
  | Eq -> of_bool (a = b)
  | Ne -> of_bool (a <> b)
  | Lt -> of_bool (a < b)
  | Le -> of_bool (a <= b)
  | Gt -> of_bool (a > b)
  | Ge -> of_bool (a >= b)
  | And -> of_bool (a <> 0 && b <> 0)
  | Or -> of_bool (a <> 0 || b <> 0)

let float_binop op a b =
  match (op : Expr.binop) with
  | Add -> F (a +. b)
  | Sub -> F (a -. b)
  | Mul -> F (a *. b)
  | Div -> F (a /. b)
  | Mod -> F (Float.rem a b)
  | Min -> F (Float.min a b)
  | Max -> F (Float.max a b)
  | Eq -> of_bool (a = b)
  | Ne -> of_bool (a <> b)
  | Lt -> of_bool (a < b)
  | Le -> of_bool (a <= b)
  | Gt -> of_bool (a > b)
  | Ge -> of_bool (a >= b)
  | And -> of_bool (a <> 0.0 && b <> 0.0)
  | Or -> of_bool (a <> 0.0 || b <> 0.0)

(* Abramowitz & Stegun 7.1.26 rational approximation *)
let erf_approx x =
  let s = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let y =
    1.0
    -. (((((1.061405429 *. t -. 1.453152027) *. t) +. 1.421413741) *. t -. 0.284496736)
         *. t +. 0.254829592)
       *. t *. exp (-.x *. x)
  in
  s *. y

let unop op v =
  match (op : Expr.unop) with
  | Neg -> ( match v with I n -> I (-n) | F f -> F (-.f))
  | Not -> of_bool (not (truthy v))
  | Exp -> F (exp (to_float v))
  | Log -> F (log (to_float v))
  | Sqrt -> F (sqrt (to_float v))
  | Rsqrt -> F (1.0 /. sqrt (to_float v))
  | Tanh -> F (tanh (to_float v))
  | Erf -> F (erf_approx (to_float v))
  | Abs -> ( match v with I n -> I (abs n) | F f -> F (Float.abs f))
  | Recip -> F (1.0 /. to_float v)
  | Floor -> F (Float.floor (to_float v))

(* the float-to-float function of the unops that always produce [F _] *)
let float_unop op : float -> float =
  match (op : Expr.unop) with
  | Exp -> exp
  | Log -> log
  | Sqrt -> sqrt
  | Rsqrt -> fun x -> 1.0 /. sqrt x
  | Tanh -> tanh
  | Erf -> erf_approx
  | Recip -> fun x -> 1.0 /. x
  | Floor -> Float.floor
  | Neg | Not | Abs -> invalid_arg "float_unop"

(* ---- fibers ------------------------------------------------------------ *)

type _ Effect.t += Barrier : unit Effect.t

let is_thread_axis = function
  | Axis.Thread_x | Axis.Thread_y | Axis.Thread_z | Axis.Core_id -> true
  | Axis.Block_x | Axis.Block_y | Axis.Block_z | Axis.Task_id | Axis.Cluster_id -> false

type fiber_state = Done | Suspended of (unit -> fiber_state)

let run_fiber_group fibers =
  let open Effect.Deep in
  let start f =
    match_with f ()
      { retc = (fun () -> Done);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Barrier ->
              Some
                (fun (k : (a, _) continuation) -> Suspended (fun () -> continue k ()))
            | _ -> None)
      }
  in
  (* reverse order within each round deterministically exposes
     missing-barrier races *)
  let rec rounds states =
    let pending =
      List.filter_map (function Done -> None | Suspended r -> Some r) states
    in
    if pending <> [] then rounds (List.rev_map (fun r -> r ()) pending)
  in
  rounds (List.rev_map start fibers)

(* ---- intrinsic semantics (shared by both engines) ---------------------- *)

let intrinsic_exec stats ~name ~(op : Intrin.op) ~dst_t ~dname ~dst_off ~srcs ~params ~fparam =
  let src n =
    if n < Array.length srcs then srcs.(n) else err "intrinsic %s: missing source %d" name n
  in
  let param n =
    if n < Array.length params then params.(n)
    else err "intrinsic %s: missing parameter %d" name n
  in
  let map2 f =
    let len = param 0 in
    let at, an, ao = src 0 in
    let bt, bn, bo = src 1 in
    for k = 0 to len - 1 do
      buf_set dst_t dname (dst_off + k) (f (buf_get at an (ao + k)) (buf_get bt bn (bo + k)))
    done;
    stats.intrinsic_elems <- stats.intrinsic_elems + len
  in
  let map1 f =
    let len = param 0 in
    let at, an, ao = src 0 in
    for k = 0 to len - 1 do
      buf_set dst_t dname (dst_off + k) (f (buf_get at an (ao + k)))
    done;
    stats.intrinsic_elems <- stats.intrinsic_elems + len
  in
  match op with
  | Vec_add -> map2 ( +. )
  | Vec_sub -> map2 ( -. )
  | Vec_mul -> map2 ( *. )
  | Vec_max -> map2 Float.max
  | Vec_min -> map2 Float.min
  | Vec_exp -> map1 exp
  | Vec_log -> map1 log
  | Vec_sqrt -> map1 sqrt
  | Vec_recip -> map1 (fun x -> 1.0 /. x)
  | Vec_tanh -> map1 tanh
  | Vec_erf -> map1 erf_approx
  | Vec_relu -> map1 (fun x -> Float.max x 0.0)
  | Vec_sigmoid -> map1 (fun x -> 1.0 /. (1.0 +. exp (-.x)))
  | Vec_gelu -> map1 (fun x -> 0.5 *. x *. (1.0 +. erf_approx (x *. 0.7071067811865476)))
  | Vec_sign -> map1 (fun x -> if x > 0.0 then 1.0 else if x < 0.0 then -1.0 else 0.0)
  | Vec_copy -> map1 Fun.id
  | Vec_scale ->
    (* the scalar parameter may be float-valued: re-evaluated via [fparam] *)
    let len = param 0 in
    let s = fparam () in
    let at, an, ao = src 0 in
    for k = 0 to len - 1 do
      buf_set dst_t dname (dst_off + k) (buf_get at an (ao + k) *. s)
    done;
    stats.intrinsic_elems <- stats.intrinsic_elems + len
  | Vec_adds ->
    let len = param 0 in
    let s = fparam () in
    let at, an, ao = src 0 in
    for k = 0 to len - 1 do
      buf_set dst_t dname (dst_off + k) (buf_get at an (ao + k) +. s)
    done;
    stats.intrinsic_elems <- stats.intrinsic_elems + len
  | Vec_fill ->
    let len = param 0 in
    let s = fparam () in
    for k = 0 to len - 1 do
      buf_set dst_t dname (dst_off + k) s
    done;
    stats.intrinsic_elems <- stats.intrinsic_elems + len
  | Vec_reduce_sum ->
    let len = param 0 in
    let at, an, ao = src 0 in
    let acc = ref 0.0 in
    for k = 0 to len - 1 do
      acc := !acc +. buf_get at an (ao + k)
    done;
    buf_set dst_t dname dst_off !acc;
    stats.intrinsic_elems <- stats.intrinsic_elems + len
  | Vec_reduce_max ->
    let len = param 0 in
    if len <= 0 then err "vec_reduce_max: empty input";
    let at, an, ao = src 0 in
    let acc = ref (buf_get at an ao) in
    for k = 1 to len - 1 do
      acc := Float.max !acc (buf_get at an (ao + k))
    done;
    buf_set dst_t dname dst_off !acc;
    stats.intrinsic_elems <- stats.intrinsic_elems + len
  | Mma | Mlp ->
    let m = param 0 and k = param 1 and n = param 2 in
    let at, an, ao = src 0 in
    let bt, bn, bo = src 1 in
    for r = 0 to m - 1 do
      for c = 0 to n - 1 do
        let acc = ref (buf_get dst_t dname (dst_off + (r * n) + c)) in
        for l = 0 to k - 1 do
          acc :=
            !acc +. (buf_get at an (ao + (r * k) + l) *. buf_get bt bn (bo + (l * n) + c))
        done;
        buf_set dst_t dname (dst_off + (r * n) + c) !acc
      done
    done;
    stats.intrinsic_elems <- stats.intrinsic_elems + (m * n * k)
  | Conv2d ->
    let co = param 0 and ci = param 1 and kh = param 2 and kw = param 3 in
    let ho = param 4 and wo = param 5 and stride = param 6 in
    let wi = ((wo - 1) * stride) + kw in
    let it, iname, io = src 0 in
    let wt, wname, wo_ = src 1 in
    for oh = 0 to ho - 1 do
      for ow = 0 to wo - 1 do
        for oc = 0 to co - 1 do
          let acc = ref (buf_get dst_t dname (dst_off + (((oh * wo) + ow) * co) + oc)) in
          for r = 0 to kh - 1 do
            for q = 0 to kw - 1 do
              for c = 0 to ci - 1 do
                let iv =
                  buf_get it iname
                    (io + (((((oh * stride) + r) * wi) + (ow * stride) + q) * ci) + c)
                in
                let wv = buf_get wt wname (wo_ + (((((oc * kh) + r) * kw) + q) * ci) + c) in
                acc := !acc +. (iv *. wv)
              done
            done
          done;
          buf_set dst_t dname (dst_off + (((oh * wo) + ow) * co) + oc) !acc
        done
      done
    done;
    stats.intrinsic_elems <- stats.intrinsic_elems + (ho * wo * co * kh * kw * ci)
  | Dp4a ->
    let len = param 0 in
    if len mod 4 <> 0 then err "dp4a: length %d not a multiple of 4" len;
    let at, an, ao = src 0 in
    let bt, bn, bo = src 1 in
    for g = 0 to (len / 4) - 1 do
      let acc = ref (buf_get dst_t dname (dst_off + g)) in
      for j = 0 to 3 do
        acc :=
          !acc
          +. (buf_get at an (ao + (g * 4) + j) *. buf_get bt bn (bo + (g * 4) + j))
      done;
      buf_set dst_t dname (dst_off + g) !acc
    done;
    stats.intrinsic_elems <- stats.intrinsic_elems + len

(* ---- profiling --------------------------------------------------------- *)

module Trace = Xpiler_obs.Trace

let fresh_stats () = { steps = 0; stores = 0; intrinsic_elems = 0; memcpy_elems = 0; barriers = 0 }

(* profiling hook: per-run op counts and per-buffer write traffic, emitted
   to the ambient tracer so unit-test and localization executions show up
   in the per-translation trace *)
let profile stats traffic =
  if Trace.enabled () then begin
    Trace.count "interp.runs";
    Trace.count ~n:stats.steps "interp.steps";
    Trace.count ~n:stats.stores "interp.stores";
    Trace.count ~n:stats.intrinsic_elems "interp.intrinsic_elems";
    Trace.count ~n:stats.memcpy_elems "interp.memcpy_elems";
    Trace.count ~n:stats.barriers "interp.barriers";
    match traffic with
    | None -> ()
    | Some tbl ->
      Hashtbl.fold (fun buf n acc -> (buf, n) :: acc) tbl []
      |> List.sort compare
      |> List.iter (fun (buf, n) -> Trace.count ~n ("interp.traffic." ^ buf))
  end

(* ---- the closure compiler ---------------------------------------------- *)

(* [ints] holds the variables proven always-integer (loop counters, int lets):
   writing an [int array] slot allocates nothing and skips the generational
   write barrier that boxed [value array] writes pay on every loop iteration *)
type frame = { scalars : value array; ints : int array; bufs : Tensor.t array }

type slot = Scalar_slot of int | Buffer_slot of int

type t = {
  kernel : Kernel.t;
  code : ctx -> frame -> unit;
  nscalars : int;
  nints : int;
  nbufs : int;
  param_binds : (Kernel.param * slot) list;
}

(* compile-time environment: binding sites resolved to slots; shadowing =
   most recent binding first, exactly the tree-walker's cons discipline.
   [Unboxed] slots live in [frame.ints]: every runtime write to them is an
   integer (loop counters, int-valued lets never reassigned), which licenses
   the unboxed integer compilation path below. [Fboxed] slots are ordinary
   [frame.scalars] slots additionally proven to always hold [F _], which
   licenses the unboxed float path. *)
type sref = Boxed of int | Fboxed of int | Unboxed of int

type cenv = { svars : (string * sref) list; bvars : (string * int) list }

let dummy_tensor = Tensor.create 0

let compile (k : Kernel.t) : t =
  let nscalars = ref 0 and nints = ref 0 and nbufs = ref 0 in
  let fresh_scalar () =
    let s = !nscalars in
    incr nscalars;
    s
  in
  let fresh_int () =
    let s = !nints in
    incr nints;
    s
  in
  let fresh_buf () =
    let s = !nbufs in
    incr nbufs;
    s
  in
  (* names ever targeted by an Assign anywhere in the kernel: a variable not
     in this set whose binding only ever writes integers can never observe a
     float, so expressions over it compile to unboxed int closures *)
  let assigned = Hashtbl.create 16 in
  let rec scan_stmt = function
    | Stmt.Assign { var; _ } -> Hashtbl.replace assigned var ()
    | Stmt.For { body; _ } -> List.iter scan_stmt body
    | Stmt.If { then_; else_; _ } ->
      List.iter scan_stmt then_;
      List.iter scan_stmt else_
    | _ -> ()
  in
  List.iter scan_stmt k.Kernel.body;
  let never_assigned v = not (Hashtbl.mem assigned v) in
  (* a reference to a buffer name: raising closure when unbound, so unbound
     names fail at execution time (a never-executed branch must not fail) *)
  let buf_slot cenv b : frame -> Tensor.t =
    match List.assoc_opt b cenv.bvars with
    | Some s -> fun fr -> fr.bufs.(s)
    | None -> fun _ -> err "unbound buffer %s" b
  in
  (* [static_int cenv e]: evaluation provably yields [I _]. Comparisons and
     logical ops always do ([of_bool]); arithmetic does iff both operands do. *)
  let rec static_int cenv (e : Expr.t) =
    match e with
    | Int _ -> true
    | Float _ | Load _ -> false
    | Var x -> ( match List.assoc_opt x cenv.svars with Some (Unboxed _) -> true | _ -> false)
    | Binop ((Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> true
    | Binop (_, l, r) -> static_int cenv l && static_int cenv r
    | Unop (Not, _) -> true
    | Unop ((Neg | Abs), x) -> static_int cenv x
    | Unop (_, _) -> false
    | Select (_, t, f) -> static_int cenv t && static_int cenv f
    | Cast (d, _) -> not (Dtype.is_float d)
  in
  (* [static_float cenv e]: evaluation provably yields [F _]. Transcendental
     unops always do; arithmetic does if either operand does (the mixed case
     takes [float_binop]). Matters only as the licence to evaluate a [Binop]'s
     operands unboxed: an [I , I] pair must keep taking the [int_binop] path,
     so only a proof that one side is [F] lets both sides skip boxing. *)
  let rec static_float cenv (e : Expr.t) =
    match e with
    | Float _ -> true
    | Int _ | Load _ -> false
    | Var x -> ( match List.assoc_opt x cenv.svars with Some (Fboxed _) -> true | _ -> false)
    | Binop ((Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> false
    | Binop (_, l, r) -> static_float cenv l || static_float cenv r
    | Unop ((Exp | Log | Sqrt | Rsqrt | Tanh | Erf | Recip | Floor), _) -> true
    | Unop ((Neg | Abs), x) -> static_float cenv x
    | Unop (Not, _) -> false
    | Select (_, t, f) -> static_float cenv t && static_float cenv f
    | Cast (d, _) -> Dtype.is_float d
  in
  let rec comp cenv (e : Expr.t) : frame -> value =
    match e with
    | Int n ->
      let v = I n in
      fun _ -> v
    | Float f ->
      let v = F f in
      fun _ -> v
    | Var x -> (
      match List.assoc_opt x cenv.svars with
      | Some (Boxed s) | Some (Fboxed s) -> fun fr -> fr.scalars.(s)
      | Some (Unboxed s) -> fun fr -> I fr.ints.(s)
      | None -> fun _ -> err "unbound variable %s" x)
    | Load (b, i) ->
      let ci = comp_int cenv i in
      let get = buf_slot cenv b in
      fun fr ->
        let idx = ci fr in
        let t = get fr in
        let v = buf_get t b idx in
        if Dtype.is_float t.Tensor.dtype then F v else I (int_of_float v)
    | Binop _ when static_int cenv e ->
      (* the whole integer subtree evaluates unboxed; one box at the root *)
      let ci = comp_iint cenv e in
      fun fr -> I (ci fr)
    | Binop (op, l, r) ->
      let cl = comp cenv l in
      let cr = comp cenv r in
      (* op resolved at compile time for the hot arithmetic cases; the
         int/int → int_binop, otherwise-float dispatch is unchanged *)
      (match op with
      | Add ->
        fun fr ->
          let a = cl fr in
          let b = cr fr in
          (match (a, b) with
          | I x, I y -> I (x + y)
          | F x, F y -> F (x +. y)
          | _ -> F (to_float a +. to_float b))
      | Sub ->
        fun fr ->
          let a = cl fr in
          let b = cr fr in
          (match (a, b) with
          | I x, I y -> I (x - y)
          | F x, F y -> F (x -. y)
          | _ -> F (to_float a -. to_float b))
      | Mul ->
        fun fr ->
          let a = cl fr in
          let b = cr fr in
          (match (a, b) with
          | I x, I y -> I (x * y)
          | F x, F y -> F (x *. y)
          | _ -> F (to_float a *. to_float b))
      | _ ->
        fun fr ->
          let a = cl fr in
          let b = cr fr in
          (match (a, b) with
          | I x, I y -> int_binop op x y
          | _ -> float_binop op (to_float a) (to_float b)))
    | Unop (((Exp | Log | Sqrt | Rsqrt | Tanh | Erf | Recip | Floor) as op), x) ->
      (* [unop] converts the operand with [to_float] for these, so the operand
         evaluates unboxed; only the result is boxed *)
      let cx = comp_ffloat cenv x in
      let f = float_unop op in
      fun fr -> F (f (cx fr))
    | Unop (op, x) ->
      let cx = comp cenv x in
      fun fr -> unop op (cx fr)
    | Select (c, t, f) ->
      let cc = comp cenv c in
      let ct = comp cenv t in
      let cf = comp cenv f in
      fun fr -> if truthy (cc fr) then ct fr else cf fr
    | Cast (d, x) ->
      if Dtype.is_float d then begin
        let cx = comp_ffloat cenv x in
        fun fr -> F (cx fr)
      end
      else begin
        let cx = comp cenv x in
        fun fr -> I (to_int (cx fr))
      end
  (* unboxed integer compilation: closures of type [frame -> int], no [value]
     allocation anywhere in the subtree. Only reached via [static_int] (or the
     final catch-all, which unboxes a generic evaluation). Evaluation order and
     error behaviour replicate [int_binop] / [unop] exactly. *)
  and comp_iint cenv (e : Expr.t) : frame -> int =
    match e with
    | Int n -> fun _ -> n
    | Var x -> (
      match List.assoc_opt x cenv.svars with
      | Some (Unboxed s) -> fun fr -> Array.unsafe_get fr.ints s
      | Some (Boxed s) | Some (Fboxed s) -> fun fr -> to_int fr.scalars.(s)
      | None -> fun _ -> err "unbound variable %s" x)
    | Binop (op, l, r) when static_int cenv l && static_int cenv r ->
      let il = comp_iint cenv l in
      let ir = comp_iint cenv r in
      (* each case written out so the arithmetic is a direct instruction in
         the closure body, not an indirect call through a shared combinator *)
      (match op with
      | Add ->
        fun fr ->
          let x = il fr in
          let y = ir fr in
          x + y
      | Sub ->
        fun fr ->
          let x = il fr in
          let y = ir fr in
          x - y
      | Mul ->
        fun fr ->
          let x = il fr in
          let y = ir fr in
          x * y
      | Div ->
        fun fr ->
          let x = il fr in
          let y = ir fr in
          if y = 0 then err "integer division by zero" else x / y
      | Mod ->
        fun fr ->
          let x = il fr in
          let y = ir fr in
          if y = 0 then err "integer modulo by zero" else x mod y
      | Min ->
        fun fr ->
          let x = il fr in
          let y = ir fr in
          if x <= y then x else y
      | Max ->
        fun fr ->
          let x = il fr in
          let y = ir fr in
          if x >= y then x else y
      | Eq ->
        fun fr ->
          let x = il fr in
          let y = ir fr in
          if x = y then 1 else 0
      | Ne ->
        fun fr ->
          let x = il fr in
          let y = ir fr in
          if x <> y then 1 else 0
      | Lt ->
        fun fr ->
          let x = il fr in
          let y = ir fr in
          if x < y then 1 else 0
      | Le ->
        fun fr ->
          let x = il fr in
          let y = ir fr in
          if x <= y then 1 else 0
      | Gt ->
        fun fr ->
          let x = il fr in
          let y = ir fr in
          if x > y then 1 else 0
      | Ge ->
        fun fr ->
          let x = il fr in
          let y = ir fr in
          if x >= y then 1 else 0
      | And ->
        fun fr ->
          let x = il fr in
          let y = ir fr in
          if x <> 0 && y <> 0 then 1 else 0
      | Or ->
        fun fr ->
          let x = il fr in
          let y = ir fr in
          if x <> 0 || y <> 0 then 1 else 0)
    | Binop (op, l, r) ->
      (* comparisons/logic over non-static operands: the result is still an
         int, but the operands need the generic int/float dispatch (a float
         comparison must compare as floats). Must be handled here, not by the
         catch-all — [comp] routes every static_int binop back to this
         function, and arithmetic is static only when both sides are *)
      let cl = comp cenv l in
      let cr = comp cenv r in
      fun fr ->
        let a = cl fr in
        let b = cr fr in
        to_int
          (match (a, b) with
          | I x, I y -> int_binop op x y
          | _ -> float_binop op (to_float a) (to_float b))
    | Unop (Neg, x) when static_int cenv x ->
      let ix = comp_iint cenv x in
      fun fr -> -ix fr
    | Unop (Abs, x) when static_int cenv x ->
      let ix = comp_iint cenv x in
      fun fr -> abs (ix fr)
    | Unop (Not, x) ->
      let cx = comp cenv x in
      fun fr -> if truthy (cx fr) then 0 else 1
    | Select (c, t, f) when static_int cenv t && static_int cenv f ->
      let cc = comp cenv c in
      let it = comp_iint cenv t in
      let if_ = comp_iint cenv f in
      fun fr -> if truthy (cc fr) then it fr else if_ fr
    | _ ->
      let c = comp cenv e in
      fun fr -> to_int (c fr)
  and comp_int cenv (e : Expr.t) : frame -> int =
    match e with
    | Int n -> fun _ -> n
    | _ when static_int cenv e -> comp_iint cenv e
    | _ ->
      let c = comp cenv e in
      fun fr -> to_int (c fr)
  (* unboxed float compilation: [comp_ffloat cenv e fr = to_float (comp cenv
     e fr)] by construction, without boxing where representable. Used wherever
     the consumer applies [to_float] anyway (store values, float unop
     operands, intrinsic scalar params), so only representation changes. *)
  and comp_ffloat cenv (e : Expr.t) : frame -> float =
    match e with
    | Int n ->
      let v = float_of_int n in
      fun _ -> v
    | Float f -> fun _ -> f
    | Var x -> (
      match List.assoc_opt x cenv.svars with
      | Some (Boxed s) | Some (Fboxed s) -> fun fr -> to_float fr.scalars.(s)
      | Some (Unboxed s) -> fun fr -> float_of_int (Array.unsafe_get fr.ints s)
      | None -> fun _ -> err "unbound variable %s" x)
    | Load (b, i) ->
      let ci = comp_int cenv i in
      let get = buf_slot cenv b in
      fun fr ->
        let idx = ci fr in
        let t = get fr in
        let v = buf_get t b idx in
        (* int dtypes truncate on load ([I (int_of_float v)] in [comp]) *)
        if Dtype.is_float t.Tensor.dtype then v else float_of_int (int_of_float v)
    | _ when static_int cenv e ->
      let ci = comp_iint cenv e in
      fun fr -> float_of_int (ci fr)
    | Binop (((Add | Sub | Mul | Div | Mod | Min | Max) as op), l, r)
      when static_float cenv l || static_float cenv r ->
      (* one side provably [F _]: the generic engine would take [float_binop]
         whatever the other side is, so both operands evaluate unboxed *)
      let fl = comp_ffloat cenv l in
      let frr = comp_ffloat cenv r in
      (match op with
      | Add ->
        fun fr ->
          let x = fl fr in
          let y = frr fr in
          x +. y
      | Sub ->
        fun fr ->
          let x = fl fr in
          let y = frr fr in
          x -. y
      | Mul ->
        fun fr ->
          let x = fl fr in
          let y = frr fr in
          x *. y
      | Div ->
        fun fr ->
          let x = fl fr in
          let y = frr fr in
          x /. y
      | Mod ->
        fun fr ->
          let x = fl fr in
          let y = frr fr in
          Float.rem x y
      | Min ->
        fun fr ->
          let x = fl fr in
          let y = frr fr in
          Float.min x y
      | Max ->
        fun fr ->
          let x = fl fr in
          let y = frr fr in
          Float.max x y
      | _ -> assert false)
    | Unop (((Exp | Log | Sqrt | Rsqrt | Tanh | Erf | Recip | Floor) as op), x) ->
      let cx = comp_ffloat cenv x in
      let f = float_unop op in
      fun fr -> f (cx fr)
    | Unop (Neg, x) when static_float cenv x ->
      let cx = comp_ffloat cenv x in
      fun fr -> -.cx fr
    | Unop (Abs, x) when static_float cenv x ->
      let cx = comp_ffloat cenv x in
      fun fr -> Float.abs (cx fr)
    | Select (c, t, f) when static_float cenv t && static_float cenv f ->
      let cc = comp cenv c in
      let ct = comp_ffloat cenv t in
      let cf = comp_ffloat cenv f in
      fun fr -> if truthy (cc fr) then ct fr else cf fr
    | _ ->
      let c = comp cenv e in
      fun fr -> to_float (c fr)
  in
  let rec comp_block cenv block : ctx -> frame -> unit =
    let codes =
      let _, rev =
        List.fold_left
          (fun (env, acc) st ->
            let env', c = comp_stmt env st in
            (env', c :: acc))
          (cenv, []) block
      in
      Array.of_list (List.rev rev)
    in
    match Array.length codes with
    | 0 -> fun _ _ -> ()
    | 1 -> codes.(0)
    | n ->
      fun ctx fr ->
        for i = 0 to n - 1 do
          (Array.unsafe_get codes i) ctx fr
        done
  and comp_stmt cenv (stmt : Stmt.t) : cenv * (ctx -> frame -> unit) =
    let cenv', body = comp_stmt_body cenv stmt in
    ( cenv',
      fun ctx fr ->
        let st = ctx.stats in
        st.steps <- st.steps + 1;
        if st.steps > ctx.fuel then err "fuel exhausted (non-terminating program?)";
        body ctx fr )
  and comp_stmt_body cenv (stmt : Stmt.t) : cenv * (ctx -> frame -> unit) =
    match stmt with
    | Stmt.Annot _ -> (cenv, fun _ _ -> ())
    | Stmt.Let { var; value } ->
      if static_int cenv value && never_assigned var then begin
        let civ = comp_iint cenv value in
        let s = fresh_int () in
        ({ cenv with svars = (var, Unboxed s) :: cenv.svars }, fun _ fr -> fr.ints.(s) <- civ fr)
      end
      else begin
        let r =
          if static_float cenv value && never_assigned var then Fboxed (fresh_scalar ())
          else Boxed (fresh_scalar ())
        in
        let cv = comp cenv value in
        let s = match r with Boxed s | Fboxed s -> s | Unboxed _ -> assert false in
        ({ cenv with svars = (var, r) :: cenv.svars }, fun _ fr -> fr.scalars.(s) <- cv fr)
      end
    | Stmt.Assign { var; value } -> (
      match List.assoc_opt var cenv.svars with
      | Some (Boxed s) ->
        let cv = comp cenv value in
        (cenv, fun _ fr -> fr.scalars.(s) <- cv fr)
      | Some (Unboxed _) | Some (Fboxed _) ->
        (* unreachable: both require [never_assigned] over the whole kernel,
           which is name-based and thus covers every binding of [var] *)
        (cenv, fun _ _ -> err "assignment to unbound variable %s" var)
      | None -> (cenv, fun _ _ -> err "assignment to unbound variable %s" var))
    | Stmt.Store { buf; index; value } ->
      let get = buf_slot cenv buf in
      let ci = comp_int cenv index in
      let cv = comp_ffloat cenv value in
      ( cenv,
        fun ctx fr ->
          let t = get fr in
          let i = ci fr in
          let v = cv fr in
          (* int dtypes truncate: [float_of_int (to_int v)] in value terms *)
          let v =
            if Dtype.is_float t.Tensor.dtype then v else float_of_int (int_of_float v)
          in
          buf_set t buf i v;
          ctx.stats.stores <- ctx.stats.stores + 1;
          tally ctx buf 1;
          (match ctx.trace with Some f -> f buf i v | None -> ());
          if ctx.stats.stores >= ctx.store_limit then raise Halt )
    | Stmt.Alloc { buf; dtype; size; _ } ->
      let s = fresh_buf () in
      ( { cenv with bvars = (buf, s) :: cenv.bvars },
        fun _ fr -> fr.bufs.(s) <- Tensor.create ~dtype size )
    | Stmt.If { cond; then_; else_ } ->
      let cc = comp cenv cond in
      let ct = comp_block cenv then_ in
      let ce = comp_block cenv else_ in
      (cenv, fun ctx fr -> if truthy (cc fr) then ct ctx fr else ce ctx fr)
    | Stmt.Memcpy { dst; src; len } ->
      let gdst = buf_slot cenv dst.buf in
      let gsrc = buf_slot cenv src.buf in
      let cdoff = comp_int cenv dst.offset in
      let csoff = comp_int cenv src.offset in
      let clen = comp_int cenv len in
      let dname = dst.buf and sname = src.buf in
      ( cenv,
        fun ctx fr ->
          let dt = gdst fr in
          let st = gsrc fr in
          let doff = cdoff fr in
          let soff = csoff fr in
          let n = clen fr in
          if n < 0 then err "memcpy: negative length %d" n;
          for k = 0 to n - 1 do
            buf_set dt dname (doff + k) (buf_get st sname (soff + k))
          done;
          ctx.stats.memcpy_elems <- ctx.stats.memcpy_elems + n;
          tally ctx dname n )
    | Stmt.Intrinsic i ->
      let name = Intrin.op_name i.op in
      let gdst = buf_slot cenv i.dst.buf in
      let cdoff = comp_int cenv i.dst.offset in
      let csrcs =
        Array.of_list
          (List.map
             (fun (r : Intrin.buf_ref) -> (buf_slot cenv r.buf, r.buf, comp_int cenv r.offset))
             i.srcs)
      in
      let cparams = Array.of_list (List.map (comp_int cenv) i.params) in
      let cfparam =
        match i.params with
        | _ :: e :: _ -> comp_ffloat cenv e
        | _ -> fun _ -> err "%s: no scalar" name
      in
      let dname = i.dst.buf in
      let op = i.op in
      ( cenv,
        fun ctx fr ->
          let before = ctx.stats.intrinsic_elems in
          let dst_t = gdst fr in
          let dst_off = cdoff fr in
          let srcs =
            Array.map
              (fun (g, nm, co) ->
                let t = g fr in
                let o = co fr in
                (t, nm, o))
              csrcs
          in
          let params = Array.map (fun c -> c fr) cparams in
          intrinsic_exec ctx.stats ~name ~op ~dst_t ~dname ~dst_off ~srcs ~params
            ~fparam:(fun () -> cfparam fr);
          tally ctx dname (ctx.stats.intrinsic_elems - before) )
    | Stmt.Sync ->
      ( cenv,
        fun ctx _ ->
          ctx.stats.barriers <- ctx.stats.barriers + 1;
          try Effect.perform Barrier with Effect.Unhandled _ -> () )
    | Stmt.For { var; lo; extent; kind = Stmt.Parallel ax; body } when is_thread_axis ax ->
      (* collect the maximal immediately-nested chain of thread-parallel
         loops so a barrier synchronizes the whole thread block *)
      let rec chain acc body =
        match body with
        | [ Stmt.For { var; lo; extent; kind = Stmt.Parallel ax; body = inner } ]
          when is_thread_axis ax ->
          chain ((var, lo, extent) :: acc) inner
        | _ -> (List.rev acc, body)
      in
      let loops, innermost = chain [ (var, lo, extent) ] body in
      (* each loop's bounds compile in the scope of the outer chain vars *)
      let env, rev_loops =
        List.fold_left
          (fun (env, acc) (v, lo_e, ext_e) ->
            let clo = comp_int env lo_e in
            let cext = comp_int env ext_e in
            let r = if never_assigned v then Unboxed (fresh_int ()) else Boxed (fresh_scalar ()) in
            ({ env with svars = (v, r) :: env.svars }, (v, r, clo, cext) :: acc))
          (cenv, []) loops
      in
      let cloops = List.rev rev_loops in
      let cbody = comp_block env innermost in
      ( cenv,
        fun ctx fr ->
          let rec spawn fr = function
            | [] -> [ (fun () -> cbody ctx fr) ]
            | (v, r, clo, cext) :: rest ->
              let lo_v = clo fr in
              let ext_v = cext fr in
              if ext_v < 0 then err "negative loop extent in %s" v;
              List.concat
                (List.init ext_v (fun i ->
                     (* per-fiber frame: private scalars and buffer bindings,
                        shared tensors (allocs before the chain are shared;
                        allocs inside rebind the fiber's own slot copy) *)
                     let fr' =
                       { scalars = Array.copy fr.scalars;
                         ints = Array.copy fr.ints;
                         bufs = Array.copy fr.bufs
                       }
                     in
                     (match r with
                     | Unboxed s -> fr'.ints.(s) <- lo_v + i
                     | Boxed s | Fboxed s -> fr'.scalars.(s) <- I (lo_v + i));
                     spawn fr' rest))
          in
          run_fiber_group (spawn fr cloops) )
    | Stmt.For { var; lo; extent; body; _ } ->
      let clo = comp_int cenv lo in
      let cext = comp_int cenv extent in
      if never_assigned var then begin
        let s = fresh_int () in
        let cbody = comp_block { cenv with svars = (var, Unboxed s) :: cenv.svars } body in
        ( cenv,
          fun ctx fr ->
            let lo_v = clo fr in
            let ext_v = cext fr in
            if ext_v < 0 then err "negative loop extent in %s" var;
            for i = lo_v to lo_v + ext_v - 1 do
              Array.unsafe_set fr.ints s i;
              cbody ctx fr
            done )
      end
      else begin
        let s = fresh_scalar () in
        let cbody = comp_block { cenv with svars = (var, Boxed s) :: cenv.svars } body in
        ( cenv,
          fun ctx fr ->
            let lo_v = clo fr in
            let ext_v = cext fr in
            if ext_v < 0 then err "negative loop extent in %s" var;
            for i = lo_v to lo_v + ext_v - 1 do
              fr.scalars.(s) <- I i;
              cbody ctx fr
            done )
      end
  in
  let cenv0, rev_binds =
    List.fold_left
      (fun (cenv, binds) (p : Kernel.param) ->
        if p.is_buffer then begin
          let s = fresh_buf () in
          ({ cenv with bvars = (p.name, s) :: cenv.bvars }, (p, Buffer_slot s) :: binds)
        end
        else begin
          (* scalar parameters may be bound to floats at call time *)
          let s = fresh_scalar () in
          ({ cenv with svars = (p.name, Boxed s) :: cenv.svars }, (p, Scalar_slot s) :: binds)
        end)
      ({ svars = []; bvars = [] }, [])
      k.Kernel.params
  in
  let code = comp_block cenv0 k.Kernel.body in
  { kernel = k;
    code;
    nscalars = !nscalars;
    nints = !nints;
    nbufs = !nbufs;
    param_binds = List.rev rev_binds
  }

let kernel c = c.kernel

let bind_args c args =
  let scalars = Array.make (max c.nscalars 1) (I 0) in
  let ints = Array.make (max c.nints 1) 0 in
  let bufs = Array.make (max c.nbufs 1) dummy_tensor in
  List.iter
    (fun ((p : Kernel.param), slot) ->
      match List.assoc_opt p.name args with
      | None -> err "missing argument for parameter %s" p.name
      | Some (Buf t) -> (
        match slot with
        | Buffer_slot s -> bufs.(s) <- t
        | Scalar_slot _ -> err "parameter %s is scalar but got a buffer" p.name)
      | Some (Scalar_int n) -> (
        match slot with
        | Scalar_slot s -> scalars.(s) <- I n
        | Buffer_slot _ -> err "parameter %s is a buffer but got a scalar" p.name)
      | Some (Scalar_float f) -> (
        match slot with
        | Scalar_slot s -> scalars.(s) <- F f
        | Buffer_slot _ -> err "parameter %s is a buffer but got a scalar" p.name))
    c.param_binds;
  { scalars; ints; bufs }

let run ?(fuel = 200_000_000) ?trace c args =
  let stats = fresh_stats () in
  let traffic = if Trace.enabled () then Some (Hashtbl.create 8) else None in
  let ctx = { stats; fuel; trace; store_limit = max_int; traffic } in
  let frame = bind_args c args in
  Fun.protect ~finally:(fun () -> profile stats traffic) (fun () -> c.code ctx frame);
  stats

let run_prefix ?(fuel = 200_000_000) c ~stop_after args =
  let stats = fresh_stats () in
  let ctx = { stats; fuel; trace = None; store_limit = stop_after; traffic = None } in
  let frame = bind_args c args in
  (try c.code ctx frame with Halt -> ());
  stats

(* ---- bounded compile memo ---------------------------------------------- *)

(* Keyed by [Kernel.cache_key] — the same helper that addresses the native
   backend's on-disk artifact cache — so the two caches cannot diverge on a
   collision. *)
let cache : (string, t) Hashtbl.t = Hashtbl.create 64
let cache_mutex = Mutex.create ()
let cache_limit = 4096

module Metrics = Xpiler_obs.Metrics

(* Stable: [cached] is called from the master domain's unit-test path, so
   hit/miss counts are a pure function of the workload. *)
let m_cache_hits =
  Metrics.counter ~help:"compile cache lookups by result" ~labels:[ ("result", "hit") ]
    "xpiler_compile_cache_lookups_total"

let m_cache_misses =
  Metrics.counter ~labels:[ ("result", "miss") ] "xpiler_compile_cache_lookups_total"

let m_cache_resets =
  Metrics.counter ~help:"full cache resets under capacity pressure" "xpiler_compile_cache_resets_total"

let cached k =
  let key = Kernel.cache_key k in
  Mutex.protect cache_mutex (fun () ->
      match Hashtbl.find_opt cache key with
      | Some c ->
        Metrics.inc m_cache_hits;
        c
      | None ->
        Metrics.inc m_cache_misses;
        if Hashtbl.length cache >= cache_limit then begin
          Metrics.inc m_cache_resets;
          Hashtbl.reset cache
        end;
        let c = compile k in
        Hashtbl.add cache key c;
        c)
