open Xpiler_ir
open Xpiler_machine
open Xpiler_ops
module Rng = Xpiler_util.Rng

type site =
  | Param_site of { nth : int; current : int }
  | Bound_site of { nth : int; var : string; current : int }
  | Index_site of { nth : int; buf : string }

type report = {
  failing_buffers : string list;
  runtime_error : string option;
  first_divergent_store : int option;
  sites : site list;
  unrepairable : string list;
}

let site_to_string = function
  | Param_site { nth; current } -> Printf.sprintf "param#%d (=%d)" nth current
  | Bound_site { nth; var; current } -> Printf.sprintf "bound#%d %s (=%d)" nth var current
  | Index_site { nth; buf } -> Printf.sprintf "index#%d -> %s" nth buf

(* selectors shared with the repairer (same traversal = same numbering) *)
let is_param_site = function
  | Stmt.Intrinsic { params = Expr.Int _ :: _; _ } -> true
  | Stmt.Memcpy { len = Expr.Int _; _ } -> true
  | _ -> false

let is_bound_site = function
  | Stmt.For { extent = Expr.Int _; kind = Stmt.Serial; _ } -> true
  | _ -> false

let is_index_site = function Stmt.Store _ -> true | _ -> false

(* enumerate matching statements in map_block order, with the enclosing
   data-dependent-control-flow flag *)
let enumerate select (k : Kernel.t) =
  let found = ref [] in
  (* scalar variables whose value depends on buffer contents make any
     conditional over them data-dependent (the Figure 9 pattern) *)
  let tainted = Hashtbl.create 8 in
  let expr_tainted e =
    Expr.buffers_read e <> []
    || List.exists (Hashtbl.mem tainted) (Expr.free_vars e)
  in
  let rec walk in_dyn block =
    List.iter
      (fun s ->
        (match s with
        | Stmt.Let { var; value } | Stmt.Assign { var; value } ->
          if expr_tainted value then Hashtbl.replace tainted var ()
        | _ -> ());
        (match s with
        | Stmt.For r -> walk in_dyn r.body
        | Stmt.If r ->
          let dyn = in_dyn || expr_tainted r.cond in
          walk dyn r.then_;
          walk dyn r.else_
        | _ -> ());
        if select s then found := (s, in_dyn) :: !found)
      block
  in
  walk false k.Kernel.body;
  List.rev !found

let tol_ok a b = Float.abs (a -. b) <= 1e-4 +. (1e-3 *. Float.abs b)

let localize ?(seed = 20250706) ~op ~shape (kernel : Kernel.t) =
  let args, expected = Unit_test.reference_outputs_seeded ~seed op shape in
  (* trace of output-buffer stores: our "print statements" probe *)
  let out_names = List.map fst expected in
  let store_counter = ref 0 in
  let first_div = ref None in
  let trace buf idx value =
    incr store_counter;
    if !first_div = None && List.mem buf out_names then begin
      match List.assoc_opt buf expected with
      | Some t when idx >= 0 && idx < Tensor.length t ->
        if not (tol_ok value (Tensor.get t idx)) then first_div := Some !store_counter
      | _ -> first_div := Some !store_counter
    end
  in
  let runtime_error =
    match Interp.run ~trace kernel args with
    | _ -> None
    | exception Interp.Runtime_error m -> Some m
  in
  let outs =
    List.filter_map
      (fun (b : Opdef.buffer_spec) ->
        if b.is_output then
          match List.assoc_opt b.buf_name args with
          | Some (Interp.Buf t) -> Some (b.buf_name, t)
          | _ -> None
        else None)
      op.Opdef.buffers
  in
  let failing_buffers =
    match runtime_error with
    | Some _ -> out_names
    | None ->
      List.filter_map
        (fun (name, t) ->
          match List.assoc_opt name expected with
          | Some e when Tensor.allclose ~rtol:1e-3 ~atol:1e-4 t e -> None
          | _ -> Some name)
        outs
  in
  (* dataflow cone of the failing buffers *)
  let cone = ref failing_buffers in
  let grew = ref true in
  while !grew do
    grew := false;
    Stmt.iter
      (fun s ->
        let writes = Stmt.buffers_written [ s ] in
        if List.exists (fun b -> List.mem b !cone) writes then
          List.iter
            (fun b ->
              if not (List.mem b !cone) then begin
                cone := b :: !cone;
                grew := true
              end)
            (Stmt.buffers_read [ s ]))
      kernel.Kernel.body
  done;
  let in_cone b = List.mem b !cone in
  let unrepairable = ref [] in
  let keep kind (s, dyn) relevant =
    if not relevant then None
    else if dyn then begin
      unrepairable := (kind ^ " under data-dependent control flow") :: !unrepairable;
      ignore s;
      None
    end
    else Some ()
  in
  let params =
    enumerate is_param_site kernel
    |> List.mapi (fun nth entry -> (nth, entry))
    |> List.filter_map (fun (nth, ((s, _) as entry)) ->
           let current, relevant =
             match s with
             | Stmt.Intrinsic ({ params = Expr.Int n :: _; _ } as i) ->
               (n, List.exists in_cone (Intrin.buffers i))
             | Stmt.Memcpy { len = Expr.Int n; dst; src; _ } ->
               (n, in_cone dst.buf || in_cone src.buf)
             | _ -> (0, false)
           in
           keep "intrinsic parameter" entry relevant
           |> Option.map (fun () -> Param_site { nth; current }))
  in
  let bounds =
    enumerate is_bound_site kernel
    |> List.mapi (fun nth entry -> (nth, entry))
    |> List.filter_map (fun (nth, ((s, _) as entry)) ->
           match s with
           | Stmt.For { var; extent = Expr.Int n; body; _ } ->
             (* a loop matters if its subtree writes a failing buffer, or if
                it accumulates into a scalar (reduction loops write buffers
                only after they finish) *)
             let has_assign =
               Stmt.fold
                 (fun acc s -> acc || match s with Stmt.Assign _ -> true | _ -> false)
                 false body
             in
             let relevant = has_assign || List.exists in_cone (Stmt.buffers_written body) in
             keep "loop bound" entry relevant
             |> Option.map (fun () -> Bound_site { nth; var; current = n })
           | _ -> None)
  in
  let indices =
    enumerate is_index_site kernel
    |> List.mapi (fun nth entry -> (nth, entry))
    |> List.filter_map (fun (nth, ((s, _) as entry)) ->
           match s with
           | Stmt.Store { buf; _ } ->
             keep "store index" entry (in_cone buf)
             |> Option.map (fun () -> Index_site { nth; buf })
           | _ -> None)
  in
  { failing_buffers;
    runtime_error;
    first_divergent_store = !first_div;
    sites = params @ bounds @ indices;
    unrepairable = !unrepairable
  }

(* ---- static localization ------------------------------------------------------ *)

(* translate analyzer findings into a report without running a single probe:
   the analyzer's site ordinals use the same post-order numbering as
   [enumerate], so they can be consumed directly by the repairer *)
let of_findings (findings : Xpiler_analysis.Analyzer.finding list) =
  let module A = Xpiler_analysis.Analyzer in
  let convert = function
    | A.Param_site { nth; current } -> Param_site { nth; current }
    | A.Bound_site { nth; var; current } -> Bound_site { nth; var; current }
    | A.Index_site { nth; buf } -> Index_site { nth; buf }
  in
  let sites =
    List.concat_map (fun (f : A.finding) -> List.map convert f.A.sites) findings
    |> List.fold_left (fun acc s -> if List.mem s acc then acc else s :: acc) []
    |> List.rev
  in
  let failing_buffers =
    List.concat_map (fun (f : A.finding) -> f.A.buffers) findings
    |> List.sort_uniq String.compare
  in
  let runtime_error =
    List.find_map
      (fun (f : A.finding) ->
        match f.A.check with
        | A.Barrier_divergence ->
          Some ("modelled deadlock: " ^ f.A.diag.Diag.message)
        | _ -> None)
      findings
  in
  let unrepairable =
    List.filter_map
      (fun (f : A.finding) ->
        if f.A.sites = [] then Some f.A.diag.Diag.message else None)
      findings
  in
  { failing_buffers;
    runtime_error;
    first_divergent_store = None;
    sites;
    unrepairable
  }
