open Xpiler_ir
open Xpiler_ops

(** Bug localization (paper Algorithm 2).

    Given a transformed program that fails its unit tests, narrow the fault
    to a ranked list of repair sites. The steps mirror the paper:
    (1) run the unit test to learn which output buffers diverge (or where a
    runtime error occurs); (2) binary-search over executed stores — our
    version of "inserting print statements after relevant memory locations" —
    to find the earliest store whose value contradicts the reference output;
    (3) restrict candidate sites to the dataflow cone of the failing buffers
    and rank them (intrinsic/copy lengths, then loop bounds, then store
    indices). Sites under data-dependent control flow are reported
    separately: the SMT stage cannot extract constraints for them (§7.6). *)

type site =
  | Param_site of { nth : int; current : int }
      (** the [nth] intrinsic/memcpy with a constant leading length *)
  | Bound_site of { nth : int; var : string; current : int }
      (** the [nth] serial loop with a constant extent *)
  | Index_site of { nth : int; buf : string }  (** the [nth] store *)

type report = {
  failing_buffers : string list;
  runtime_error : string option;
  first_divergent_store : int option;
  sites : site list;
  unrepairable : string list;
      (** descriptions of fault locations under data-dependent control flow *)
}

val site_to_string : site -> string
val localize : ?seed:int -> op:Opdef.t -> shape:Opdef.shape -> Kernel.t -> report
(** [seed] selects the probe inputs; the default matches the unit-test
    oracle's, so localization sees exactly the failure validation saw. *)

(** Site selectors, shared with the repairer so statement numbering stays
    consistent between localization and stitching. *)

val is_param_site : Stmt.t -> bool
val is_bound_site : Stmt.t -> bool
val is_index_site : Stmt.t -> bool

val of_findings : Xpiler_analysis.Analyzer.finding list -> report
(** Build a report from static-analyzer findings alone — no probe runs, no
    binary search. Site ordinals transfer directly because the analyzer and
    [enumerate] share one statement numbering. Findings without sites land
    in [unrepairable]; barrier-divergence findings surface as a modelled
    [runtime_error]. *)
