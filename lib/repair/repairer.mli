open Xpiler_ir
open Xpiler_machine
open Xpiler_ops

(** SMT-based code repairing (paper Algorithm 3).

    For each localized site, the repairer builds a sketch with the suspect
    constant replaced by a hole, derives the hole's domain from program
    context (allocation sizes, copy lengths, sibling loop extents) and SMT
    side constraints (positivity, platform alignment granularity, dp4a
    divisibility — the Figure 5 constraint classes), solves for surviving
    candidates with the SMT-lite solver, stitches each back and accepts the
    first candidate that passes the platform checker and the unit tests. *)

type outcome =
  | Repaired of { kernel : Kernel.t; tests_run : int; site : string }
  | Gave_up of { reason : string; tests_run : int }

val candidate_values :
  platform:Platform.t -> Kernel.t -> Localize.site -> int list
(** The SMT-filtered candidate domain for a site (exposed for tests and for
    the Table 3 solving-time comparison). *)

val repair :
  ?max_tests:int ->
  ?rounds:int ->
  ?static:Xpiler_analysis.Analyzer.finding list ->
  ?clock:Xpiler_util.Vclock.t ->
  ?speculative:bool ->
  ?jobs:int ->
  platform:Platform.t ->
  op:Opdef.t ->
  shape:Opdef.shape ->
  Kernel.t ->
  outcome
(** [rounds] (default 2) bounds how many distinct faults can be fixed in
    sequence; [max_tests] (default 200) bounds unit-test executions.
    [static] passes pre-validation analyzer findings: their sites are tried
    first at a fraction of a localization round's modelled cost ([Vclock]
    charges 30s against 240s), with the dynamic rounds as fallback.

    [speculative] (default false; the pipeline enables it via
    [Config.speculative_repair]) evaluates each site's candidate batch over
    the domain pool with deterministic lowest-index-wins selection and
    cancellation of losers; [jobs] is the pool width. The selected repair
    equals serial testing's (first passing candidate), and the emitted
    charge/trace stream is byte-identical across job counts. *)

(** {2 Bench meters} *)

type spec_stats = { batches : int; won : int; cancelled : int }

val speculation_totals : unit -> spec_stats
(** Logical speculation accounting (cancelled = losers above each winning
    index), jobs-invariant by construction. *)

val reset_speculation_totals : unit -> unit

val reset_verdict_memo : unit -> unit
(** Drop the process-global candidate verdict/score memo (unit-test trial
    verdicts and mismatch scores keyed by structural kernel identity). The
    memo obeys [Xpiler_smt.Memo.set_enabled] and bypasses itself while
    tracing, so traced journals are byte-identical cold vs warm. *)

type wall_stats = {
  repairs : int;
  wall_seconds : float;  (** total time inside {!repair} *)
  localize_seconds : float;  (** dynamic bug localization *)
  solve_seconds : float;  (** SMT candidate-domain solving *)
  test_seconds : float;  (** serial-path unit testing (master domain only) *)
  score_seconds : float;  (** mismatch scoring for partial-repair ranking *)
}

val wall_totals : unit -> wall_stats
(** Wall-clock time spent inside {!repair} since the last reset, with a
    per-component breakdown. Component meters only cover work on the master
    domain — speculative task internals run unattributed — so they need not
    sum to [wall_seconds]. *)

val reset_wall_totals : unit -> unit
