open Xpiler_ir
open Xpiler_machine
open Xpiler_ops
module Rewrite = Xpiler_passes.Rewrite
module Solver = Xpiler_smt.Solver
module Vclock = Xpiler_util.Vclock
module Pool = Xpiler_util.Pool
module Trace = Xpiler_obs.Trace
module Metrics = Xpiler_obs.Metrics

type outcome =
  | Repaired of { kernel : Kernel.t; tests_run : int; site : string }
  | Gave_up of { reason : string; tests_run : int }

let dedup = Xpiler_util.Listx.dedup

(* constants visible in the program: the context Algorithm 3 harvests *)
let context_constants (k : Kernel.t) =
  Stmt.fold
    (fun acc s ->
      match s with
      | Stmt.Alloc { size; _ } -> size :: acc
      | Stmt.Memcpy { len = Expr.Int n; _ } -> n :: acc
      | Stmt.For { extent = Expr.Int n; _ } -> n :: acc
      | Stmt.Intrinsic { params = Expr.Int n :: _; _ } -> n :: acc
      | _ -> acc)
    [] k.Kernel.body
  |> dedup

(* the statement a Param/Bound site refers to, for alignment constraints;
   children are visited before their parent so match numbering agrees with
   [Rewrite.rewrite_nth] (which selects on the post-order rebuild), and the
   walk stops as soon as the nth match is found *)
let nth_matching select nth (k : Kernel.t) =
  let exception Found of Stmt.t in
  let count = ref (-1) in
  let check s =
    if select s then begin
      incr count;
      if !count = nth then raise (Found s)
    end
  in
  let rec go_block b = List.iter go_stmt b
  and go_stmt s =
    (match s with
    | Stmt.For r -> go_block r.body
    | Stmt.If r ->
      go_block r.then_;
      go_block r.else_
    | _ -> ());
    check s
  in
  try
    go_block k.Kernel.body;
    None
  with Found s -> Some s

let candidate_values ~platform (k : Kernel.t) (site : Localize.site) =
  match site with
  | Localize.Index_site _ -> [ -2; -1; 1; 2 ]  (* deltas on the index constant *)
  | Localize.Bound_site { current; _ } ->
    let ctx = context_constants k in
    let raw =
      [ current - 1; current + 1; current - 2; current + 2; current / 2; current * 2 ]
      @ List.filter (fun c -> abs (c - current) <= 8 && c <> current) ctx
    in
    let problem : Solver.problem =
      { vars = [ ("?b", Solver.Enum (dedup raw)) ];
        constraints = [ Expr.Binop (Expr.Gt, Expr.Var "?b", Expr.Int 0) ]
      }
    in
    Solver.solve_all problem |> List.filter_map (List.assoc_opt "?b")
  | Localize.Param_site { nth; current } ->
    let stmt = nth_matching Localize.is_param_site nth k in
    let align_c =
      match stmt with
      | Some (Stmt.Intrinsic i) when Intrin.is_vector i.op && platform.Platform.vector_align > 1
        ->
        [ Expr.Binop
            ( Expr.Eq,
              Expr.Binop (Expr.Mod, Expr.Var "?p", Expr.Int platform.Platform.vector_align),
              Expr.Int 0 )
        ]
      | Some (Stmt.Intrinsic { op = Intrin.Dp4a; _ }) ->
        [ Expr.Binop (Expr.Eq, Expr.Binop (Expr.Mod, Expr.Var "?p", Expr.Int 4), Expr.Int 0) ]
      | _ -> []
    in
    let ctx = context_constants k in
    let raw =
      ctx
      @ [ current / 2; current * 2; current - 1; current + 1; current - 64; current + 64 ]
    in
    let problem : Solver.problem =
      { vars = [ ("?p", Solver.Enum (dedup (List.filter (fun v -> v > 0 && v <> current) raw))) ];
        constraints = Expr.Binop (Expr.Gt, Expr.Var "?p", Expr.Int 0) :: align_c
      }
    in
    Solver.solve_all ~limit:24 problem |> List.filter_map (List.assoc_opt "?p")

let apply_candidate (k : Kernel.t) (site : Localize.site) value =
  match site with
  | Localize.Param_site { nth; _ } ->
    Kernel.map_body
      (Rewrite.rewrite_nth nth Localize.is_param_site (fun s ->
           match s with
           | Stmt.Intrinsic ({ params = Expr.Int _ :: rest; _ } as i) ->
             Stmt.Intrinsic { i with params = Expr.Int value :: rest }
           | Stmt.Memcpy r -> Stmt.Memcpy { r with len = Expr.Int value }
           | s -> s))
      k
  | Localize.Bound_site { nth; _ } ->
    Kernel.map_body
      (Rewrite.rewrite_nth nth Localize.is_bound_site (fun s ->
           match s with
           | Stmt.For r -> Stmt.For { r with extent = Expr.Int value }
           | s -> s))
      k
  | Localize.Index_site { nth; _ } ->
    Kernel.map_body
      (Rewrite.rewrite_nth nth Localize.is_index_site (fun s ->
           match s with
           | Stmt.Store r ->
             Stmt.Store
               { r with
                 index = Linear.normalize (Expr.Binop (Expr.Add, r.index, Expr.Int value))
               }
           | s -> s))
      k

let charge clock stage s = match clock with Some c -> Vclock.charge c stage s | None -> ()

(* ---- candidate verdict memo ------------------------------------------------

   Repair rounds, ladder retries and repeated bench seeds regenerate the
   same candidate kernels, and both oracles below are pure functions of
   (op, shape, kernel): the per-trial unit-test verdict and the mismatch
   score. Cache them process-globally, keyed by structural kernel identity
   (with physical op identity, like [Unit_test.reference_outputs_seeded],
   so regenerated fuzz ops that reuse a name cannot collide).

   Gated by the same switch as the solver memo ([Memo.set_enabled]) so the
   bench's baseline arm really is the pre-overhaul stack — and bypassed
   while tracing: a fresh run emits interp.* trace counts that a memo hit
   could not replay, and cold-vs-warm journal byte-identity outranks
   speed. Speculative task bodies run under [Trace.without], so candidate
   testing over the pool always qualifies. *)

module VKey = struct
  type t = { trial : int; op : Opdef.t; shape : Opdef.shape; kernel : Kernel.t }

  let equal a b =
    a.trial = b.trial && a.op == b.op && a.shape = b.shape && Kernel.equal a.kernel b.kernel

  let hash a = Hashtbl.hash (a.trial, a.op.Opdef.name, a.shape, Kernel.hash a.kernel)
end

module VTbl = Hashtbl.Make (VKey)

let vmemo_mutex = Mutex.create ()
let vmemo_capacity = 8192
let verdict_tbl : Unit_test.verdict VTbl.t = VTbl.create 256
let score_tbl : int VTbl.t = VTbl.create 256

let reset_verdict_memo () =
  Mutex.protect vmemo_mutex (fun () ->
      VTbl.reset verdict_tbl;
      VTbl.reset score_tbl)

(* hit/miss order races between speculating domains -> unstable class *)
let m_vmemo_hit =
  Metrics.counter ~stable:false ~help:"repair verdict-memo lookups by result"
    ~labels:[ ("result", "hit") ] "xpiler_repair_verdict_memo_lookups_total"

let m_vmemo_miss =
  Metrics.counter ~stable:false ~labels:[ ("result", "miss") ]
    "xpiler_repair_verdict_memo_lookups_total"

let vmemo_cached tbl key compute =
  match Mutex.protect vmemo_mutex (fun () -> VTbl.find_opt tbl key) with
  | Some v ->
    Metrics.inc m_vmemo_hit;
    v
  | None ->
    Metrics.inc m_vmemo_miss;
    let v = compute () in
    Mutex.protect vmemo_mutex (fun () ->
        if VTbl.length tbl >= vmemo_capacity then VTbl.reset tbl;
        VTbl.replace tbl key v);
    v

let vmemo_active () = Xpiler_smt.Memo.is_enabled () && not (Trace.enabled ())

(* equivalent to [Unit_test.check ~trials] — trial [i] draws from seed
   [20250706 + i*7919] and checking stops at the first failing trial —
   but with each trial memoized separately, so a [~trials:2] confirmation
   reuses the winning candidate's [~trials:1] verdict as its first trial *)
let check_cached ~trials op shape kernel =
  if not (vmemo_active ()) then Unit_test.check ~trials op shape kernel
  else begin
    let rec go i =
      if i >= trials then Unit_test.Pass
      else
        let v =
          vmemo_cached verdict_tbl { VKey.trial = i; op; shape; kernel } (fun () ->
              Unit_test.check ~trials:1 ~seed:(20250706 + (i * 7919)) op shape kernel)
        in
        match v with Unit_test.Pass -> go (i + 1) | fail -> fail
    in
    go 0
  end

(* how wrong is a kernel? used to hill-climb when several faults coexist.
   The oracle is the cached seeded reference ([Rng.create 20250706] either
   way), so scoring N candidates costs one serial reference run, not N *)
let mismatch_score_fresh ~op ~shape kernel =
  let args, expected = Unit_test.reference_outputs_seeded ~seed:20250706 op shape in
  match Interp.run kernel args with
  | exception Interp.Runtime_error _ -> max_int
  | _ ->
    List.fold_left
      (fun acc (name, e) ->
        match List.assoc_opt name args with
        | Some (Interp.Buf t) -> acc + List.length (Tensor.mismatched_indices t e)
        | _ -> acc + Tensor.length e)
      0 expected

let mismatch_score ~op ~shape kernel =
  if not (vmemo_active ()) then mismatch_score_fresh ~op ~shape kernel
  else
    vmemo_cached score_tbl { VKey.trial = -1; op; shape; kernel } (fun () ->
        mismatch_score_fresh ~op ~shape kernel)

(* fused trial-0 verdict + mismatch score in one interpreter run (both draw
   on the seed-20250706 reference), populating both memo tables so a later
   [~trials:2] confirmation or hill-climb score re-read hits *)
let eval_scored_cached ~op ~shape kernel =
  if not (vmemo_active ()) then Unit_test.check_scored op shape kernel
  else begin
    let vkey = { VKey.trial = 0; op; shape; kernel } in
    let skey = { VKey.trial = -1; op; shape; kernel } in
    let hit =
      Mutex.protect vmemo_mutex (fun () ->
          match (VTbl.find_opt verdict_tbl vkey, VTbl.find_opt score_tbl skey) with
          | Some v, Some s -> Some (v, s)
          | _ -> None)
    in
    match hit with
    | Some r ->
      Metrics.inc m_vmemo_hit;
      r
    | None ->
      Metrics.inc m_vmemo_miss;
      let v, s = Unit_test.check_scored op shape kernel in
      Mutex.protect vmemo_mutex (fun () ->
          if VTbl.length verdict_tbl >= vmemo_capacity then VTbl.reset verdict_tbl;
          if VTbl.length score_tbl >= vmemo_capacity then VTbl.reset score_tbl;
          VTbl.replace verdict_tbl vkey v;
          VTbl.replace score_tbl skey s);
      (v, s)
  end

(* candidates must stay structurally well-formed; full platform checking
   happens on the final program (intermediate pipeline states legitimately
   mix source and target features) *)
let compile_ok k = match Validate.check k with Ok () -> true | Error _ -> false

(* ---- speculative candidate evaluation -------------------------------------

   One localized site yields a batch of SMT-filtered candidate values; the
   serial engine tests them one by one and stops at the first pass. The
   speculative engine runs the whole batch over [Pool.map] and selects the
   *lowest-index* passing candidate — the same one serial testing would
   have accepted — so the repair result is independent of the schedule.

   Determinism contract:
   - a task may abort only when a success at a *strictly lower* index has
     already been published, so no task at or below the final winning index
     is ever cancelled: every result the replay below reads is complete;
   - task bodies run under [Trace.without] and buffer nothing through the
     pool (worker-side emission order is schedule-dependent); instead they
     return plain result records and the master replays the canonical
     effect stream — candidate counts, test charges, hill-climb updates —
     in index order for exactly the candidates serial testing would have
     attempted (everything up to the winner, or the whole batch on a miss);
   - won/cancelled meters are computed *logically* from the result vector
     (cancelled = batch size - winner - 1), not from which tasks physically
     aborted, so they are jobs-invariant too. *)

type spec_result =
  | Spec_cancelled  (** a lower-index success was already published *)
  | Spec_rejected  (** failed the structural compile check; consumes no test *)
  | Spec_passed of Kernel.t
  | Spec_failed of Kernel.t * int  (** unit test failed; mismatch score, [max_int] if unscored *)

let spec_batches = ref 0
let spec_won = ref 0
let spec_cancelled = ref 0

type spec_stats = { batches : int; won : int; cancelled : int }

let speculation_totals () =
  { batches = !spec_batches; won = !spec_won; cancelled = !spec_cancelled }

let reset_speculation_totals () =
  spec_batches := 0;
  spec_won := 0;
  spec_cancelled := 0

(* Stable: see the determinism contract above — these count logical, not
   physical, cancellations. *)
let m_spec_won =
  Metrics.counter ~help:"speculative repair batches by result" ~labels:[ ("result", "won") ]
    "xpiler_repair_speculative_total"

let m_spec_cancelled =
  Metrics.counter ~labels:[ ("result", "cancelled") ] "xpiler_repair_speculative_total"

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let eval_site_speculative ~jobs ~want_score ~op ~shape k site values =
  let winner = Atomic.make max_int in
  Pool.map ~jobs
    (fun task value ->
      let idx = Pool.index task in
      Trace.without (fun () ->
          if Atomic.get winner < idx then Spec_cancelled
          else begin
            let candidate = apply_candidate k site value in
            if not (compile_ok candidate) then Spec_rejected
            else if Atomic.get winner < idx then Spec_cancelled
            else begin
              match eval_scored_cached ~op ~shape candidate with
              | Unit_test.Pass, _ ->
                let rec publish () =
                  let cur = Atomic.get winner in
                  if idx < cur && not (Atomic.compare_and_set winner cur idx) then publish ()
                in
                publish ();
                Spec_passed candidate
              | Unit_test.Fail _, score ->
                Spec_failed (candidate, if want_score then score else max_int)
            end
          end))
    values

let winner_index results =
  let rec go i = function
    | [] -> None
    | Spec_passed _ :: _ -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 results

let spec_site ~jobs ~clock ~tests ~op ~shape ~want_score ~on_failed k site values =
  let results = eval_site_speculative ~jobs ~want_score ~op ~shape k site values in
  incr spec_batches;
  (match winner_index results with
  | Some w ->
    incr spec_won;
    Metrics.inc m_spec_won;
    Trace.count "repair.speculative_won";
    let cancelled = List.length results - w - 1 in
    if cancelled > 0 then begin
      spec_cancelled := !spec_cancelled + cancelled;
      Metrics.inc ~n:cancelled m_spec_cancelled;
      Trace.count ~n:cancelled "repair.speculative_cancelled"
    end
  | None -> ());
  (* master-side replay in index order; stops at the winner, so cancelled
     losers (which only ever sit above it) are never replayed *)
  let rec replay = function
    | [] -> None
    | r :: rest ->
      Trace.count "repair.candidates";
      (match r with
      | Spec_rejected | Spec_cancelled -> replay rest
      | Spec_passed candidate ->
        incr tests;
        charge clock Vclock.Unit_test 45.0;
        Some candidate
      | Spec_failed (candidate, score) ->
        incr tests;
        charge clock Vclock.Unit_test 45.0;
        on_failed candidate score;
        replay rest)
  in
  replay results

(* ---- wall-clock accounting (bench/repair_bench.ml) ------------------------ *)

let repair_count = ref 0
let wall_total = ref 0.0
let wall_localize = ref 0.0
let wall_solve = ref 0.0
let wall_test = ref 0.0
let wall_score = ref 0.0

type wall_stats = {
  repairs : int;
  wall_seconds : float;
  localize_seconds : float;
  solve_seconds : float;
  test_seconds : float;
  score_seconds : float;
}

let wall_totals () =
  { repairs = !repair_count;
    wall_seconds = !wall_total;
    localize_seconds = !wall_localize;
    solve_seconds = !wall_solve;
    test_seconds = !wall_test;
    score_seconds = !wall_score
  }

let reset_wall_totals () =
  repair_count := 0;
  wall_total := 0.0;
  wall_localize := 0.0;
  wall_solve := 0.0;
  wall_test := 0.0;
  wall_score := 0.0

(* component meters are master-domain only: speculative task bodies run
   their tests/scores inside the pool, where per-component attribution
   would be schedule-dependent — their cost still lands in [wall_seconds] *)
let timed acc f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> acc := !acc +. (Unix.gettimeofday () -. t0)) f

(* ---------------------------------------------------------------------------- *)

let repair ?(max_tests = 200) ?(rounds = 2) ?(static = []) ?clock ?(speculative = false)
    ?(jobs = 1) ~platform ~op ~shape kernel =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () ->
      incr repair_count;
      wall_total := !wall_total +. (Unix.gettimeofday () -. t0))
  @@ fun () ->
  Trace.span ~cat:"phase" "repair" @@ fun () ->
  let total_rounds = rounds in
  let tests = ref 0 in
  let unit_ok k =
    incr tests;
    charge clock Vclock.Unit_test 45.0;
    timed wall_test (fun () -> check_cached ~trials:1 op shape k) = Unit_test.Pass
  in
  let fully_ok k =
    incr tests;
    charge clock Vclock.Unit_test 90.0;
    timed wall_test (fun () -> check_cached ~trials:2 op shape k) = Unit_test.Pass
  in
  (* evaluate one site's candidate batch; [on_failed] feeds the hill-climb.
     The speculative path clamps the batch to the remaining test budget up
     front (serial testing re-checks the budget per candidate, but cannot
     learn the batch's compile failures in advance), so it can attempt
     slightly fewer candidates than serial testing near exhaustion — never
     more *)
  let eval_site k site values ~want_score ~on_failed =
    if speculative then begin
      let remaining = max_tests - !tests in
      if remaining <= 0 then None
      else
        spec_site ~jobs ~clock ~tests ~op ~shape ~want_score ~on_failed k site
          (take remaining values)
    end
    else
      List.fold_left
        (fun found value ->
          match found with
          | Some _ -> found
          | None ->
            if !tests >= max_tests then None
            else begin
              Trace.count "repair.candidates";
              let candidate = apply_candidate k site value in
              if not (compile_ok candidate) then None
              else if unit_ok candidate then Some candidate
              else begin
                (if want_score then
                   let score = timed wall_score (fun () -> mismatch_score ~op ~shape candidate) in
                   on_failed candidate score);
                None
              end
            end)
        None values
  in
  let rec round n k last_reason =
    if n <= 0 then Gave_up { reason = last_reason; tests_run = !tests }
    else begin
      Trace.count "repair.rounds";
      Trace.count "repair.localizations";
      charge clock Vclock.Bug_localization 240.0;
      (* fresh localization inputs each round: a fault masked on one input
         draw shows up on another *)
      let report =
        timed wall_localize (fun () ->
            Localize.localize ~seed:(20250706 + ((total_rounds - n) * 7717)) ~op ~shape k)
      in
      if report.Localize.failing_buffers = [] && report.Localize.runtime_error = None then
        if fully_ok k then Repaired { kernel = k; tests_run = !tests; site = "none" }
        else round (n - 1) k "divergence not reproduced on localization inputs"
      else if report.Localize.sites = [] then
        Gave_up
          { reason =
              (if report.Localize.unrepairable <> [] then
                 "complex control flow: " ^ String.concat "; " report.Localize.unrepairable
               else "no repair sites in the failing cone");
            tests_run = !tests
          }
      else begin
        let base_score = timed wall_score (fun () -> mismatch_score ~op ~shape k) in
        let best_partial = ref None in
        (* several faults may coexist: remember the candidate that brings
           the output closest to the reference *)
        let on_failed candidate score =
          match !best_partial with
          | Some (s, _) when s <= score -> ()
          | _ -> if score < base_score then best_partial := Some (score, candidate)
        in
        let try_site found site =
          match found with
          | Some _ -> found
          | None ->
            charge clock Vclock.Smt_solving 90.0;
            let values = timed wall_solve (fun () -> candidate_values ~platform k site) in
            match eval_site k site values ~want_score:true ~on_failed with
            | Some fixed -> Some (fixed, site)
            | None -> None
        in
        match List.fold_left try_site None report.Localize.sites with
        | Some (fixed, site) ->
          if fully_ok fixed then
            Repaired
              { kernel = fixed; tests_run = !tests; site = Localize.site_to_string site }
          else round (n - 1) fixed "single-trial fix did not generalize"
        | None ->
          if !tests >= max_tests then
            Gave_up { reason = "test budget exhausted"; tests_run = !tests }
          else begin
            match !best_partial with
            | Some (_, improved) -> round (n - 1) improved "partial fix did not converge"
            | None -> Gave_up { reason = "no single-constant repair found"; tests_run = !tests }
          end
      end
    end
  in
  (* static fast path: analyzer findings already name the suspect sites, so
     skip the probe-execution binary search entirely (reading a report is
     ~30 modelled seconds against 240 for a localization round). Dynamic
     rounds below remain the untouched fallback. *)
  let static_attempt () =
    let report = Localize.of_findings static in
    if report.Localize.sites = [] then None
    else begin
      Trace.count "repair.static_localizations";
      charge clock Vclock.Bug_localization 30.0;
      let try_site found site =
        match found with
        | Some _ -> found
        | None ->
          charge clock Vclock.Smt_solving 90.0;
          let values = timed wall_solve (fun () -> candidate_values ~platform kernel site) in
          match
            eval_site kernel site values ~want_score:false ~on_failed:(fun _ _ -> ())
          with
          | Some fixed -> Some (fixed, site)
          | None -> None
      in
      match List.fold_left try_site None report.Localize.sites with
      | Some (fixed, site) when fully_ok fixed ->
        Some (Repaired { kernel = fixed; tests_run = !tests; site = Localize.site_to_string site })
      | _ -> None
    end
  in
  let outcome =
    match if static = [] then None else static_attempt () with
    | Some outcome ->
      Trace.count "repair.static_fastpath";
      outcome
    | None -> round rounds kernel "no rounds"
  in
  (match outcome with
  | Repaired { site; tests_run; _ } ->
    Trace.instant ~attrs:[ ("site", site) ] "repair.repaired";
    Trace.observe "repair.tests_run" (float_of_int tests_run)
  | Gave_up { reason; tests_run } ->
    Trace.instant ~attrs:[ ("reason", reason) ] "repair.gave_up";
    Trace.observe "repair.tests_run" (float_of_int tests_run));
  outcome
